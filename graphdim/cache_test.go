package graphdim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

// cacheTestCollection builds a small cached collection.
func cacheTestCollection(t *testing.T, cache CacheOptions) (*Collection, []*Graph) {
	t.Helper()
	db := dataset.Chemical(dataset.ChemConfig{N: 24, MinVertices: 8, MaxVertices: 12, Seed: 41})
	idx, err := Build(db, Options{Dimensions: 10, Tau: 0.2, MCSBudget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(StoreOptions{})
	t.Cleanup(s.Close)
	coll, err := s.CreateFromIndex("cached", idx, CollectionOptions{
		Shards: 2,
		Build:  Options{Dimensions: 10, Tau: 0.2, MCSBudget: 1000},
		Cache:  cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coll, db
}

func mustStats(t *testing.T, c *Collection) CacheStats {
	t.Helper()
	st, ok := c.CacheStats()
	if !ok {
		t.Fatal("CacheStats: cache disabled")
	}
	return st
}

func TestCacheHitsRepeatAndStaysCorrect(t *testing.T) {
	coll, db := cacheTestCollection(t, CacheOptions{MaxEntries: 64})
	ctx := context.Background()
	opt := SearchOptions{K: 6}

	first, err := coll.Search(ctx, db[3], opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, coll); st.Hits != 0 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after miss: %+v", st)
	}
	second, err := coll.Search(ctx, db[3], opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, coll); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after hit: %+v", st)
	}
	if !reflect.DeepEqual(first.Results, second.Results) ||
		first.Candidates != second.Candidates || first.Engine != second.Engine {
		t.Fatalf("cached result diverged: %+v vs %+v", first, second)
	}
	// A caller mutating its result must not corrupt the cache.
	second.Results[0].ID = -1
	third, err := coll.Search(ctx, db[3], opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Results, third.Results) {
		t.Fatal("mutating a returned result corrupted the cache")
	}
	// Different options are different entries.
	if _, err := coll.Search(ctx, db[3], SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, coll); st.Entries != 2 {
		t.Fatalf("k=3 should be a new entry: %+v", st)
	}
	// Equivalent spellings share one entry: the mapped engine ignores
	// VerifyFactor/MaxCandidates/Metric, so setting them must still hit
	// the k=3 entry, and verified factor 0 means 3.
	if _, err := coll.Search(ctx, db[3], SearchOptions{K: 3, VerifyFactor: 7, MaxCandidates: 9}); err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, coll); st.Entries != 2 || st.Hits != 3 {
		t.Fatalf("ignored-field spelling missed the cache: %+v", st)
	}
	if _, err := coll.Search(ctx, db[3], SearchOptions{K: 3, Engine: EngineVerified}); err != nil {
		t.Fatal(err)
	}
	if _, err := coll.Search(ctx, db[3], SearchOptions{K: 3, Engine: EngineVerified, VerifyFactor: 3}); err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, coll); st.Entries != 3 || st.Hits != 4 {
		t.Fatalf("verified factor 0 and 3 did not share an entry: %+v", st)
	}

	// Predicate queries bypass the cache entirely: no lookup, no entry.
	before := mustStats(t, coll)
	if _, err := coll.Search(ctx, db[3], SearchOptions{K: 3, Predicate: func(int, *Graph) bool { return true }}); err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, coll); st != before {
		t.Fatalf("predicate query touched the cache: %+v then %+v", before, st)
	}
}

func TestCacheInvalidatesOnMutationAndCompaction(t *testing.T) {
	coll, db := cacheTestCollection(t, CacheOptions{MaxEntries: 64})
	ctx := context.Background()
	opt := SearchOptions{K: 50}

	if _, err := coll.Search(ctx, db[0], opt); err != nil {
		t.Fatal(err)
	}
	// Add: the same query must see the new graph, not the cached set.
	extra := dataset.Chemical(dataset.ChemConfig{N: 1, MinVertices: 8, MaxVertices: 12, Seed: 42})
	ids, err := coll.Add(ctx, extra...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coll.Search(ctx, db[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Results {
		if r.ID == ids[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("search after Add served a stale cached result")
	}
	// Remove: the removed id must disappear immediately.
	if err := coll.Remove(ids[0]); err != nil {
		t.Fatal(err)
	}
	res, err = coll.Search(ctx, db[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.ID == ids[0] {
			t.Fatal("search after Remove served a stale cached result")
		}
	}
	st := mustStats(t, coll)
	if st.Invalidations == 0 {
		t.Fatalf("generation moves produced no invalidations: %+v", st)
	}
	// Compaction swaps bump generations too: a forced compact must not
	// let the pre-compaction entry serve again. (The add+remove above
	// cancelled out staleness-wise, so create some real staleness first —
	// force still skips shards with nothing stale.)
	if _, err := coll.Add(ctx, dataset.Chemical(dataset.ChemConfig{N: 3, MinVertices: 8, MaxVertices: 12, Seed: 43})...); err != nil {
		t.Fatal(err)
	}
	if _, err := coll.Search(ctx, db[0], opt); err != nil {
		t.Fatal(err)
	}
	st = mustStats(t, coll)
	pre := coll.generations()
	if _, err := coll.Compact(ctx, true); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(pre, coll.generations()) {
		t.Fatal("forced compaction did not move any shard generation")
	}
	if _, err := coll.Search(ctx, db[0], opt); err != nil {
		t.Fatal(err)
	}
	if got := mustStats(t, coll); got.Invalidations <= st.Invalidations {
		t.Fatalf("compaction swap did not invalidate: %+v then %+v", st, got)
	}
}

func TestCacheBounds(t *testing.T) {
	coll, db := cacheTestCollection(t, CacheOptions{MaxEntries: 2})
	ctx := context.Background()
	for k := 1; k <= 4; k++ {
		if _, err := coll.Search(ctx, db[1], SearchOptions{K: k}); err != nil {
			t.Fatal(err)
		}
	}
	st := mustStats(t, coll)
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("entry bound not enforced: %+v", st)
	}
	// k=4 (most recent) must still be cached; k=1 must have been evicted.
	if _, err := coll.Search(ctx, db[1], SearchOptions{K: 4}); err != nil {
		t.Fatal(err)
	}
	if got := mustStats(t, coll); got.Hits != st.Hits+1 {
		t.Fatalf("most recent entry was evicted: %+v", got)
	}

	// A byte bound small enough excludes everything without erroring.
	tiny, db2 := cacheTestCollection(t, CacheOptions{MaxEntries: 8, MaxBytes: 1})
	if _, err := tiny.Search(ctx, db2[0], SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, tiny); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry was cached: %+v", st)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	coll, db := cacheTestCollection(t, CacheOptions{})
	if _, ok := coll.CacheStats(); ok {
		t.Fatal("zero CacheOptions enabled a cache")
	}
	if _, err := coll.Search(context.Background(), db[0], SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	if st := coll.Stats(); st.Cache != nil {
		t.Fatalf("stats report a cache on an uncached collection: %+v", st.Cache)
	}
}

func TestCacheOptionsValidate(t *testing.T) {
	for _, opt := range []CacheOptions{{MaxEntries: -1}, {MaxEntries: 1, MaxBytes: -5}} {
		if err := (CollectionOptions{Cache: opt}).validate(); err == nil {
			t.Errorf("CacheOptions %+v accepted", opt)
		}
	}
}

// TestCacheSurvivesStoreReload pins that cache *configuration* persists
// while cache *contents* do not: a reloaded store starts cold with the
// same bounds.
func TestCacheSurvivesStoreReload(t *testing.T) {
	coll, db := cacheTestCollection(t, CacheOptions{MaxEntries: 16, MaxBytes: 1 << 20})
	ctx := context.Background()
	if _, err := coll.Search(ctx, db[0], SearchOptions{K: 4}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := coll.store.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rc, ok := re.Collection("cached")
	if !ok {
		t.Fatal("collection missing after reload")
	}
	st, ok := rc.CacheStats()
	if !ok {
		t.Fatal("cache configuration did not persist")
	}
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("reloaded cache is not cold: %+v", st)
	}
	if rc.cacheOpt != coll.cacheOpt {
		t.Fatalf("cache bounds changed across reload: %+v vs %+v", rc.cacheOpt, coll.cacheOpt)
	}
	// And it works: same query twice, second is a hit.
	for i := 0; i < 2; i++ {
		if _, err := rc.Search(ctx, db[0], SearchOptions{K: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if st := mustStats(t, rc); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("reloaded cache not serving: %+v", st)
	}
}
