package graphdim

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/wal"
)

// Replication unit suite: the follower applier and snapshot bootstrap,
// driven in-process by pumping records straight from a primary
// collection's log into a follower's ReplicaApplier — the same flow the
// HTTP tail endpoint and internal/repl tailer drive in production. The
// randomized kill-and-resume property test is in replication_prop_test.go.

// bootstrapFollower snapshots the primary store into a fresh directory
// and opens it, returning the follower store and its collection's
// applier.
func bootstrapFollower(t *testing.T, primary *Store, coll string) (*Store, *Collection, *ReplicaApplier, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := primary.WriteSnapshotTar(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "follower")
	if err := ExtractSnapshotTar(dir, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("extract: %v", err)
	}
	fs, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	fc, ok := fs.Collection(coll)
	if !ok {
		t.Fatalf("follower has no collection %q", coll)
	}
	rep, err := fc.Replica()
	if err != nil {
		t.Fatal(err)
	}
	return fs, fc, rep, dir
}

// pump streams every settled record the follower is missing from the
// primary collection into the applier, then settles — one catch-up
// round, exactly what the tailer does per heartbeat.
func pump(t *testing.T, pc *Collection, rep *ReplicaApplier) int {
	t.Helper()
	ctx := context.Background()
	st, err := pc.StreamWAL(rep.AckSeq())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	upper := pc.AppliedSeq()
	var recs []wal.Record
	for {
		rec, ok, err := st.Next(upper)
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if len(recs) > 0 {
		if err := rep.Apply(ctx, recs); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	if err := rep.Settle(ctx); err != nil {
		t.Fatalf("settle: %v", err)
	}
	return len(recs)
}

func TestFollowerConvergesAndSurvivesRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	idx, _ := equivBuild(t, rng, 40)
	ctx := context.Background()
	pdir := t.TempDir()
	ps, err := CreateStore(pdir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	pc, err := ps.CreateFromIndex("c", idx, CollectionOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	fs, fc, rep, fdir := bootstrapFollower(t, ps, "c")
	if got, want := rep.AckSeq(), pc.AppliedSeq(); got != want {
		t.Fatalf("bootstrapped follower acks %d, primary applied is %d", got, want)
	}

	// A mixed write history: clean adds, removes, a partial add, a
	// fully voided add.
	extra := dataset.Synthetic(dataset.SynthConfig{N: 18, AvgEdges: 9, Labels: 5, Seed: 99})
	ids, err := pc.Add(ctx, extra[:6]...)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Remove(ids[1], ids[4]); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("shard down")
	pc.failShard = func(sh int) error {
		if sh == 1 {
			return boom
		}
		return nil
	}
	if _, err := pc.Add(ctx, extra[6:12]...); !errors.Is(err, boom) {
		t.Fatalf("partial add returned %v", err)
	}
	pc.failShard = func(int) error { return boom }
	if _, err := pc.Add(ctx, extra[12:15]...); !errors.Is(err, boom) {
		t.Fatalf("voided add returned %v", err)
	}
	pc.failShard = nil
	if _, err := pc.Add(ctx, extra[15:]...); err != nil {
		t.Fatal(err)
	}

	if n := pump(t, pc, rep); n == 0 {
		t.Fatal("pump shipped nothing")
	}
	if got, want := rep.AppliedSeq(), pc.AppliedSeq(); got != want {
		t.Fatalf("follower applied %d, primary %d", got, want)
	}
	queries := dataset.Synthetic(dataset.SynthConfig{N: 12, AvgEdges: 6, Labels: 5, Seed: 7})
	assertSameSearch(t, "caught-up follower", fc, pc, queries)

	// NextID converges too — voided ids burned identically on both
	// sides, so later assignments can never collide.
	if got, want := fc.Stats().NextID, pc.Stats().NextID; got != want {
		t.Fatalf("follower NextID %d, primary %d", got, want)
	}

	// Restart the follower: the mirrored log replays over the local
	// checkpoint and the applier resumes exactly where the mirror ends.
	// Reopen mapped explicitly: a restarted follower serves its
	// checkpointed base straight from the shipped segment files while the
	// mirrored log tail replays on top.
	ack := rep.AckSeq()
	fs.Close()
	fs2, err := OpenStore(fdir, StoreOptions{Memory: MemoryMap})
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	defer fs2.Close()
	fc2, _ := fs2.Collection("c")
	rep2, err := fc2.Replica()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.AckSeq() != ack {
		t.Fatalf("restarted follower acks %d, want %d", rep2.AckSeq(), ack)
	}
	assertSameSearch(t, "restarted follower", fc2, pc, queries)

	// And it keeps following.
	if _, err := pc.Add(ctx, queries[:3]...); err != nil {
		t.Fatal(err)
	}
	pump(t, pc, rep2)
	assertSameSearch(t, "follower after restart catch-up", fc2, pc, queries)
}

// TestFollowerReconcilesAmendmentAcrossRestart exercises the one replica
// path normal streaming never takes: the follower dies having mirrored
// a TypeAdd but not the amendment that voids or trims it, restarts
// (crash-replay applies the batch in full), and then receives the
// amendment — which must walk the extra graphs back as tombstones.
func TestFollowerReconcilesAmendmentAcrossRestart(t *testing.T) {
	for _, tc := range []struct {
		name string
		fail func(sh int) error // primary per-shard failure injection
	}{
		{"partial", func(sh int) error {
			if sh == 0 {
				return errors.New("shard down")
			}
			return nil
		}},
		{"voided", func(sh int) error { return errors.New("all down") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(72))
			idx, _ := equivBuild(t, rng, 30)
			ctx := context.Background()
			ps, err := CreateStore(t.TempDir(), StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer ps.Close()
			pc, err := ps.CreateFromIndex("c", idx, CollectionOptions{Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			fs, _, rep, fdir := bootstrapFollower(t, ps, "c")

			extra := dataset.Synthetic(dataset.SynthConfig{N: 6, AvgEdges: 9, Labels: 5, Seed: 3})
			pc.failShard = tc.fail
			if _, err := pc.Add(ctx, extra...); err == nil {
				t.Fatal("injected add failure did not fail")
			}
			pc.failShard = nil

			// Ship ONLY the add record, withholding its amendment — the
			// stream can do this mid-batch — then kill the follower with
			// the pair half-mirrored.
			st, err := pc.StreamWAL(rep.AckSeq())
			if err != nil {
				t.Fatal(err)
			}
			rec, ok, err := st.Next(pc.AppliedSeq())
			st.Close()
			if err != nil || !ok || rec.Type != wal.TypeAdd {
				t.Fatalf("first shipped record: %+v ok=%v err=%v", rec, ok, err)
			}
			if err := rep.Apply(ctx, []wal.Record{rec}); err != nil {
				t.Fatal(err)
			}
			fs.Close()

			fs2, err := OpenStore(fdir, StoreOptions{})
			if err != nil {
				t.Fatalf("reopen follower: %v", err)
			}
			defer fs2.Close()
			fc2, _ := fs2.Collection("c")
			rep2, err := fc2.Replica()
			if err != nil {
				t.Fatal(err)
			}
			// Crash-replay applied the unpaired batch in full; the
			// amendment now arrives and reconciles it.
			pump(t, pc, rep2)
			queries := dataset.Synthetic(dataset.SynthConfig{N: 10, AvgEdges: 6, Labels: 5, Seed: 8})
			assertSameSearch(t, "reconciled follower", fc2, pc, queries)
			if got, want := fc2.Stats().NextID, pc.Stats().NextID; got != want {
				t.Fatalf("follower NextID %d, primary %d", got, want)
			}
		})
	}
}

func TestFollowerPendingWaitsForSettle(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	idx, _ := equivBuild(t, rng, 30)
	ctx := context.Background()
	ps, err := CreateStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	pc, err := ps.CreateFromIndex("c", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs, fc, rep, _ := bootstrapFollower(t, ps, "c")
	defer fs.Close()

	base := rep.AppliedSeq()
	extra := dataset.Synthetic(dataset.SynthConfig{N: 3, AvgEdges: 9, Labels: 5, Seed: 4})
	if _, err := pc.Add(ctx, extra...); err != nil {
		t.Fatal(err)
	}
	st, err := pc.StreamWAL(rep.AckSeq())
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, err := st.Next(pc.AppliedSeq())
	st.Close()
	if err != nil || !ok {
		t.Fatalf("stream: ok=%v err=%v", ok, err)
	}
	if err := rep.Apply(ctx, []wal.Record{rec}); err != nil {
		t.Fatal(err)
	}
	// Mirrored (durable, ackable) but buffered against a possible
	// amendment: not yet applied.
	if rep.AckSeq() != rec.Seq {
		t.Fatalf("AckSeq %d after mirror, want %d", rep.AckSeq(), rec.Seq)
	}
	if rep.AppliedSeq() != base {
		t.Fatalf("AppliedSeq %d while pending, want %d", rep.AppliedSeq(), base)
	}
	if live := fc.Stats().Live; live != pc.Stats().Live-len(extra) {
		t.Fatalf("pending batch already visible: follower live %d", live)
	}
	if err := rep.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	if rep.AppliedSeq() != rec.Seq {
		t.Fatalf("AppliedSeq %d after settle, want %d", rep.AppliedSeq(), rec.Seq)
	}
	queries := dataset.Synthetic(dataset.SynthConfig{N: 8, AvgEdges: 6, Labels: 5, Seed: 9})
	assertSameSearch(t, "settled follower", fc, pc, queries)
}

func TestPrimaryRetainsSegmentsForFollowers(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	idx, _ := equivBuild(t, rng, 30)
	ctx := context.Background()
	ps, err := CreateStore(t.TempDir(), StoreOptions{WAL: WALOptions{SegmentBytes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	pc, err := ps.CreateFromIndex("c", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A follower registered at the current position, then a pile of
	// writes and a checkpoint: every segment after the hold must survive
	// for the follower to stream, even though the checkpoint covers them.
	hold := pc.AppliedSeq()
	pc.WALRetain("f1", hold)
	extra := dataset.Synthetic(dataset.SynthConfig{N: 8, AvgEdges: 8, Labels: 5, Seed: 5})
	for _, g := range extra {
		if _, err := pc.Add(ctx, g); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := pc.StreamWAL(hold)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n := 0
	for {
		_, ok, err := st.Next(pc.AppliedSeq())
		if err != nil {
			t.Fatalf("stream after checkpoint: %v", err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != len(extra) {
		t.Fatalf("streamed %d records after checkpoint, want %d", n, len(extra))
	}
	if followers, minAcked, ok := pc.WALRetention(); !ok || followers != 1 || minAcked != hold {
		t.Fatalf("retention reports %d/%d/%v", followers, minAcked, ok)
	}
	// Releasing the hold lets the next checkpoint reclaim: the stream
	// position then reports truncation.
	pc.WALUnretain("f1")
	if err := ps.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st2, err := pc.StreamWAL(hold)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok, err := st2.Next(pc.AppliedSeq()); ok || !errors.Is(err, wal.ErrTruncated) {
		t.Fatalf("released stream: ok=%v err=%v, want ErrTruncated", ok, err)
	}
}

func TestFreshnessCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	idx, _ := equivBuild(t, rng, 30)
	ctx := context.Background()
	ps, err := CreateStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	pc, err := ps.CreateFromIndex("c", idx, CollectionOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	applied, gens := pc.Freshness()
	if len(gens) != 3 {
		t.Fatalf("freshness vector has %d entries for 3 shards", len(gens))
	}
	extra := dataset.Synthetic(dataset.SynthConfig{N: 4, AvgEdges: 8, Labels: 5, Seed: 6})
	if _, err := pc.Add(ctx, extra...); err != nil {
		t.Fatal(err)
	}
	applied2, _ := pc.Freshness()
	if applied2 != applied+1 {
		t.Fatalf("applied moved %d -> %d across one add", applied, applied2)
	}
	if pc.LastWALSeq() != applied2 {
		t.Fatalf("idle primary: LastWALSeq %d != AppliedSeq %d", pc.LastWALSeq(), applied2)
	}
}
