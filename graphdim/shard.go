package graphdim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// A collection splits its database across shards by hashing global ids, so
// every shard holds a near-uniform slice of the graphs and Add, Search,
// persistence, and compaction parallelize per shard. Each shard wraps its
// own *Index over local ids [0, n) plus the strictly ascending table
// translating local ids back to collection-global ids.
//
// Readers are lock-free: they load one shardState and work entirely off
// it. Writers (Add, Remove, the compaction swap) serialize on shard.mu and
// publish new state atomically, so a Search keeps serving the generation
// it started on even while compaction replaces the whole index underneath.

// placeID maps a global id to its shard. The hash is SplitMix64 — cheap,
// well-mixed, and fixed forever for a given manifest version: the
// placement of every persisted id must survive reload.
func placeID(id, shards int) int {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// shardState is one immutable generation of a shard: the index and the
// local→global id table. globals is strictly ascending — ids are placed
// and appended in increasing global order, and compaction preserves the
// order — which keeps per-shard tie-breaking (ascending local id)
// consistent with the collection-level tie-break (ascending global id).
type shardState struct {
	idx *Index
	// globals[local] is the collection-global id of the shard-local id.
	// It may momentarily run longer than the index (an Add publishes the
	// extended table before mapping lands, and rolls back on error);
	// translation is always guarded by the index's own extent.
	globals []int
}

// localOf returns the local id of global id g, or -1.
func (st *shardState) localOf(g int) int {
	i := sort.SearchInts(st.globals, g)
	if i < len(st.globals) && st.globals[i] == g && i < st.idx.TotalGraphs() {
		return i
	}
	return -1
}

type shard struct {
	mu    sync.Mutex // serializes writers: add, remove, the compaction swap
	state atomic.Pointer[shardState]

	// gen is the shard's generation: a monotonic counter bumped after
	// every committed mutation (add, remove) and every compaction swap —
	// always after the new state publishes and before the operation
	// returns. That ordering is the query cache's fence: once a write
	// returns to its caller, every later generation read observes the
	// bump, so a cached result keyed on the old generation vector can
	// never be served after the write is committed. (In the window
	// between publish and bump a concurrent reader may still hit the old
	// key — indistinguishable from a search that raced the write, hence
	// linearizable.)
	gen atomic.Uint64

	compacting  atomic.Bool  // one compaction at a time per shard
	compactions atomic.Int64 // completed compactions

	lastErrMu sync.Mutex
	lastErr   error // most recent compaction failure, cleared on success
}

// generation reads the shard's mutation counter.
func (sh *shard) generation() uint64 { return sh.gen.Load() }

func newShard(st *shardState) *shard {
	sh := &shard{}
	sh.state.Store(st)
	return sh
}

// add appends graphs with the given (ascending) global ids. The extended
// id table is published before the mapping runs so a racing reader can
// never observe an index entry its table does not cover; on error the
// table rolls back under the writer lock.
func (sh *shard) add(ctx context.Context, gs []*Graph, globals []int) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.state.Load()
	next := &shardState{
		idx:     cur.idx,
		globals: append(append(make([]int, 0, len(cur.globals)+len(globals)), cur.globals...), globals...),
	}
	sh.state.Store(next)
	if _, err := cur.idx.AddContext(ctx, gs...); err != nil {
		sh.state.Store(cur)
		return err
	}
	sh.gen.Add(1)
	return nil
}

// remove tombstones the given global ids, all-or-nothing for this shard.
func (sh *shard) remove(globals []int) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.state.Load()
	locals := make([]int, len(globals))
	for i, g := range globals {
		local := st.localOf(g)
		if local < 0 {
			return fmt.Errorf("graphdim: id %d not in store", g)
		}
		locals[i] = local
	}
	if err := st.idx.Remove(locals...); err != nil {
		return err
	}
	sh.gen.Add(1)
	return nil
}

// graph resolves a global id to its graph, alive or tombstoned.
func (sh *shard) graph(g int) (*Graph, bool) {
	st := sh.state.Load()
	local := st.localOf(g)
	if local < 0 {
		return nil, false
	}
	return st.idx.Graph(local), true
}

// errShardTooSmall marks a shard compaction skipped because the live
// database is below Build's minimum; the shard keeps serving as-is.
var errShardTooSmall = fmt.Errorf("graphdim: shard too small to rebuild (need at least 2 live graphs)")

// compact rebuilds the shard off to the side with BuildContext — a fresh
// mining + dimension selection over the shard's live graphs — and
// atomically swaps the new index in. Readers keep serving the old
// generation throughout; writes that land during the (slow) rebuild are
// replayed onto the new index under the writer lock before the swap, so
// nothing is lost. The caller must hold the shard's compacting flag.
//
// The rebuild itself uses opt.Workers (compactions run one shard at a
// time, so the full bound is right); the rebuilt index's steady-state
// worker bound is then lowered to idxWorkers, the collection's per-shard
// share, so shard-internal fan-out keeps not multiplying with the shard
// count.
//
// On any error the shard is left exactly as it was.
func (sh *shard) compact(ctx context.Context, opt Options, idxWorkers int) error {
	// Snapshot the base generation. The lock is held only long enough to
	// read consistent (index, table) state, not for the rebuild.
	sh.mu.Lock()
	base := sh.state.Load()
	baseTotal := base.idx.TotalGraphs()
	baseDead := make([]bool, baseTotal)
	live := make([]*Graph, 0, baseTotal)
	liveGlobals := make([]int, 0, baseTotal)
	for i := 0; i < baseTotal; i++ {
		if base.idx.IsRemoved(i) {
			baseDead[i] = true
			continue
		}
		live = append(live, base.idx.Graph(i))
		liveGlobals = append(liveGlobals, base.globals[i])
	}
	sh.mu.Unlock()

	if len(live) < 2 {
		return errShardTooSmall
	}
	opt.Progress = nil // rebuilds run in the background; no progress sink
	next, err := BuildContext(ctx, live, opt)
	if err != nil {
		return err
	}
	if idxWorkers > 0 {
		next.workers = idxWorkers
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.state.Load() // same idx as base (only compaction replaces it), possibly grown
	newGlobals := liveGlobals

	// Replay graphs added while the rebuild ran.
	curTotal := cur.idx.TotalGraphs()
	var lateGraphs []*Graph
	var lateGlobals []int
	for i := baseTotal; i < curTotal; i++ {
		if cur.idx.IsRemoved(i) {
			continue
		}
		lateGraphs = append(lateGraphs, cur.idx.Graph(i))
		lateGlobals = append(lateGlobals, cur.globals[i])
	}
	if len(lateGraphs) > 0 {
		if _, err := next.AddContext(ctx, lateGraphs...); err != nil {
			return err
		}
		newGlobals = append(append(make([]int, 0, len(liveGlobals)+len(lateGlobals)), liveGlobals...), lateGlobals...)
	}

	// Replay removals of base-live graphs: their position in the rebuilt
	// index is their rank among the base-live ids.
	var removeLocals []int
	pos := 0
	for i := 0; i < baseTotal; i++ {
		if baseDead[i] {
			continue
		}
		if cur.idx.IsRemoved(i) {
			removeLocals = append(removeLocals, pos)
		}
		pos++
	}
	if len(removeLocals) > 0 {
		if err := next.Remove(removeLocals...); err != nil {
			return err
		}
	}

	sh.state.Store(&shardState{idx: next, globals: newGlobals})
	// The swap replaces the whole index (often with a re-selected
	// dimension space), so it must fence cached results like any
	// mutation.
	sh.gen.Add(1)
	sh.compactions.Add(1)
	return nil
}

// tryCompact runs compact if no other compaction of this shard is in
// flight, recording the outcome for stats. It reports whether a compaction
// ran to completion.
func (sh *shard) tryCompact(ctx context.Context, opt Options, idxWorkers int) (bool, error) {
	if !sh.compacting.CompareAndSwap(false, true) {
		return false, nil
	}
	defer sh.compacting.Store(false)
	err := sh.compact(ctx, opt, idxWorkers)
	// A too-small shard is a skip, not a failure: it neither clears nor
	// sets the sticky last-error the stats report.
	if err != errShardTooSmall {
		sh.lastErrMu.Lock()
		sh.lastErr = err
		sh.lastErrMu.Unlock()
	}
	return err == nil, err
}

// staleRatio exposes the shard index's stale ratio.
func (sh *shard) staleRatio() float64 { return sh.state.Load().idx.StaleRatio() }

// lastCompactionErr returns the most recent compaction failure, if any.
func (sh *shard) lastCompactionErr() error {
	sh.lastErrMu.Lock()
	defer sh.lastErrMu.Unlock()
	return sh.lastErr
}
