package graphdim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
)

// PR 6's durability contract, exercised from the store layer: many
// writers racing through the group-committed WAL with fsyncs failing at
// random, then a kill and a torn tail — recovery must surface exactly
// the acknowledged subset, nothing more and nothing less.

// TestCrashRecoveryConcurrentRandomized races G writers against a log
// whose fsync fails with ~30% probability, kills the store, tears the
// newest segment, and checks the recovered collection graph-by-graph
// against what the writers saw acknowledged. Replay a failure with
// GRAPHDIM_EQUIV_SEED=<seed>.
func TestCrashRecoveryConcurrentRandomized(t *testing.T) {
	seed := equivSeed(t)
	rng := rand.New(rand.NewSource(seed))
	idx, db := equivBuild(t, rng, 30)
	ctx := context.Background()

	const rounds = 2
	for round := 0; round < rounds; round++ {
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			dir := t.TempDir()
			// failSync runs under the log's commit lock but from whichever
			// goroutine is the group leader, so its rng needs its own lock.
			errInjected := errors.New("injected fsync failure")
			var failMu sync.Mutex
			frng := rand.New(rand.NewSource(rng.Int63()))
			s, err := CreateStore(dir, StoreOptions{WAL: WALOptions{
				failSync: func() error {
					failMu.Lock()
					defer failMu.Unlock()
					if frng.Float64() < 0.3 {
						return errInjected
					}
					return nil
				},
			}})
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.CreateFromIndex("cc", idx, CollectionOptions{Shards: 2})
			if err != nil {
				t.Fatal(err)
			}

			// Pre-draw every writer's payloads and decisions so the run is
			// replayable from the logged seed even though the interleaving
			// is not.
			const writers, opsPerWriter = 6, 8
			type plan struct {
				batches [][]*Graph
				remove  []bool // after a successful add, drop its first id?
			}
			plans := make([]plan, writers)
			for w := range plans {
				for op := 0; op < opsPerWriter; op++ {
					n := 1 + rng.Intn(3)
					plans[w].batches = append(plans[w].batches,
						dataset.Synthetic(dataset.SynthConfig{N: n, AvgEdges: 9, Labels: 5, Seed: rng.Int63()}))
					plans[w].remove = append(plans[w].remove, rng.Float64() < 0.25)
				}
			}

			// acked maps id -> canonical graph text for every write the
			// store acknowledged; removed holds acked ids later dropped.
			var (
				mu      sync.Mutex
				acked   = map[int]string{}
				removed = map[int]bool{}
			)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(p plan) {
					defer wg.Done()
					for op, batch := range p.batches {
						ids, err := c.Add(ctx, batch...)
						if err != nil {
							continue // not acked: must not survive
						}
						mu.Lock()
						for i, id := range ids {
							acked[id] = batch[i].String()
						}
						mu.Unlock()
						if p.remove[op] {
							if err := c.Remove(ids[0]); err == nil {
								mu.Lock()
								removed[ids[0]] = true
								mu.Unlock()
							}
						}
					}
				}(plans[w])
			}
			wg.Wait()

			// Kill, tear the tail, recover.
			s.Close()
			tearWAL(t, dir, "cc")
			re, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatalf("reopen after kill: %v", err)
			}
			defer re.Close()
			rc, ok := re.Collection("cc")
			if !ok {
				t.Fatal("collection lost")
			}

			// Exhaustive membership sweep. Three disjoint classes: live
			// (seed graphs plus acked-and-kept writes, identical bytes),
			// tombstoned (acked writes later acked-removed — Graph still
			// resolves them, flagged removed), and absent (everything that
			// never got an ack, failed fsync included).
			wantLive := map[int]string{}
			for id, g := range db {
				wantLive[id] = g.String()
			}
			for id, text := range acked {
				if !removed[id] {
					wantLive[id] = text
				}
			}
			st := rc.Stats()
			if st.Live != len(wantLive) {
				t.Fatalf("recovered %d live graphs, want %d (acked %d, removed %d)", st.Live, len(wantLive), len(acked), len(removed))
			}
			for id := 0; id < st.NextID; id++ {
				sh := rc.shards[placeID(id, len(rc.shards))]
				sst := sh.state.Load()
				local := sst.localOf(id)
				switch {
				case removed[id]:
					if local < 0 || !sst.idx.IsRemoved(local) {
						t.Fatalf("id %d: acked remove lost across recovery (local=%d)", id, local)
					}
				case wantLive[id] != "":
					if local < 0 || sst.idx.IsRemoved(local) {
						t.Fatalf("id %d: acked write lost across recovery (local=%d)", id, local)
					}
					if g, ok := rc.Graph(id); !ok || g.String() != wantLive[id] {
						t.Fatalf("id %d recovered with different content:\n%s\nvs acked\n%s", id, g, wantLive[id])
					}
				default:
					if local >= 0 {
						t.Fatalf("id %d: unacked write resurrected by replay", id)
					}
				}
			}
			// The recovered store still takes writes.
			if _, err := rc.Add(ctx, plans[0].batches[0]...); err != nil {
				t.Fatalf("Add after recovery: %v", err)
			}
		})
	}
}

// TestTornIngestBatchReplaysCommittedPrefix is the store-level half of
// the ingest torn-batch story: batch 1 is acknowledged, batch 2's
// group commit dies at fsync (so it was never acknowledged), the
// process is killed and the log tail torn. Recovery must replay exactly
// the committed prefix — batch 1 — and keep the id sequence consistent
// for the retry.
func TestTornIngestBatchReplaysCommittedPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	idx, _ := equivBuild(t, rng, 30)
	ctx := context.Background()
	dir := t.TempDir()

	errBoom := errors.New("disk pulled")
	var failNow atomic.Bool
	s, err := CreateStore(dir, StoreOptions{WAL: WALOptions{
		failSync: func() error {
			if failNow.Load() {
				return errBoom
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("ingest", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	first := int(c.nextID.Load())

	batch1 := dataset.Synthetic(dataset.SynthConfig{N: 3, AvgEdges: 9, Labels: 5, Seed: 21})
	ids1, err := c.Add(ctx, batch1...)
	if err != nil {
		t.Fatal(err)
	}

	batch2 := dataset.Synthetic(dataset.SynthConfig{N: 3, AvgEdges: 9, Labels: 5, Seed: 22})
	failNow.Store(true)
	if _, err := c.Add(ctx, batch2...); !errors.Is(err, errBoom) {
		t.Fatalf("Add with dead fsync returned %v; want the injected failure", err)
	}
	failNow.Store(false)
	// The failed batch committed nothing, so its ids are not burned.
	if got := int(c.nextID.Load()); got != first+len(batch1) {
		t.Fatalf("nextID %d after failed batch, want %d", got, first+len(batch1))
	}

	// Kill with a torn tail on top: the failed batch's truncated bytes
	// plus garbage must both be ignored by replay.
	s.Close()
	tearWAL(t, dir, "ingest")

	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer re.Close()
	rc, ok := re.Collection("ingest")
	if !ok {
		t.Fatal("collection lost")
	}
	for _, id := range ids1 {
		g, ok := rc.Graph(id)
		if !ok {
			t.Fatalf("acked id %d lost across crash", id)
		}
		if g.String() != batch1[id-first].String() {
			t.Fatalf("id %d recovered with different content", id)
		}
	}
	st := rc.Stats()
	if st.NextID != first+len(batch1) {
		t.Fatalf("recovered NextID %d, want %d (unacked batch must not burn ids)", st.NextID, first+len(batch1))
	}
	// The retry lands on the same ids the torn batch would have used.
	ids2, err := rc.Add(ctx, batch2...)
	if err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	if ids2[0] != first+len(batch1) {
		t.Fatalf("retry got id %d, want %d", ids2[0], first+len(batch1))
	}
}
