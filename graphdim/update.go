package graphdim

import (
	"context"
	"fmt"

	"repro/internal/pool"
	"repro/internal/vecspace"
)

// Add maps new graphs into the existing dimension space and makes them
// searchable. This is the operation the DS-preserved mapping was designed
// to make cheap: placing an unseen graph costs p subgraph-isomorphism
// tests (the same VF2 pass queries pay), not a re-run of mining or DSPM.
// The returned slice holds the id assigned to each graph, aligned with
// gs.
//
// Add never blocks readers: it maps the new graphs, then publishes a new
// snapshot with one atomic swap, so concurrent Search calls keep scanning
// the snapshot they started on. Writers (Add/Remove) are serialized with
// each other. The dimension set stays fixed — as the added fraction
// grows, mapped-space accuracy can drift from what a fresh dimension
// selection would give; watch StaleRatio.
func (ix *Index) Add(gs ...*Graph) ([]int, error) {
	return ix.AddContext(context.Background(), gs...)
}

// AddContext is Add with cancellation: the per-graph VF2 mapping checks
// ctx, and a cancelled call returns (nil, ctx.Err()) without publishing
// anything — an Add is all-or-nothing.
func (ix *Index) AddContext(ctx context.Context, gs ...*Graph) ([]int, error) {
	for i, g := range gs {
		if g == nil {
			return nil, fmt.Errorf("graphdim: nil graph at index %d", i)
		}
	}
	if len(gs) == 0 {
		return nil, nil
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()

	// Map outside any reader-visible state, under the writer lock so two
	// Adds cannot interleave id assignment.
	newVecs := make([]*vecspace.BitVector, len(gs))
	errs := make([]error, len(gs))
	if err := pool.ForContext(ctx, ix.workers, len(gs), func(i int) {
		newVecs[i], errs[i] = ix.mapper.MapContext(ctx, gs[i])
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	cur := ix.snap.Load()
	next := &snapshot{
		db:        append(append(make([]*Graph, 0, len(cur.db)+len(gs)), cur.db...), gs...),
		vectors:   append(append(make([]*vecspace.BitVector, 0, len(cur.vectors)+len(gs)), cur.vectors...), newVecs...),
		dead:      append(append(make([]bool, 0, len(cur.dead)+len(gs)), cur.dead...), make([]bool, len(gs))...),
		deadCount: cur.deadCount,
		seg:       cur.seg,
		// Posting maintenance is incremental: the new ids are the highest
		// yet, so appending keeps every per-dimension list sorted. The
		// linear snapshot chain Append requires is exactly what ix.mu
		// enforces.
		post:     cur.post.Append(newVecs),
		baseN:    cur.baseN,
		baseDead: cur.baseDead,
	}
	// The label index is lazy: extend it only if a filtered query already
	// paid to build it; otherwise it stays nil and lazy.
	if l := cur.labels.Load(); l != nil {
		next.labels.Store(l.Append(gs))
	}
	// The SoA scan block is maintained incrementally too, but only if a
	// scan already paid to build it — Append shares every full tile with
	// the current block (which on a mapped snapshot aliases the segment
	// file: Append never writes a shared tile, so the overlay is pure
	// copy-on-write on top of the read-only mapping). A never-demanded
	// block stays nil and the next scan packs the whole snapshot once.
	if b := cur.block.Load(); b != nil {
		next.block.Store(b.Append(newVecs))
	}
	ids := make([]int, len(gs))
	for i := range gs {
		ids[i] = len(cur.db) + i
	}
	ix.snap.Store(next)
	ix.gen.Add(1)
	return ids, nil
}

// Remove tombstones the given ids: the graphs stay addressable (Graph,
// historical results) but no engine returns them again. The call is
// all-or-nothing — an out-of-range or already-removed id fails the whole
// batch before anything is tombstoned. Like Add, Remove publishes a new
// snapshot atomically and never blocks readers; a Search already in
// flight may still return a just-removed id.
func (ix *Index) Remove(ids ...int) error {
	if len(ids) == 0 {
		return nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()

	cur := ix.snap.Load()
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(cur.db) {
			return fmt.Errorf("graphdim: id %d out of range [0,%d)", id, len(cur.db))
		}
		if cur.dead[id] || seen[id] {
			return fmt.Errorf("graphdim: id %d already removed", id)
		}
		seen[id] = true
	}
	// db, vectors, and the posting lists are immutable and shared with
	// the previous snapshot; only the tombstone set is copied. Removal is
	// not a posting event — tombstoned ids stay listed and every scan
	// (pruned or flat) filters them through the same alive predicate.
	next := &snapshot{
		db:        cur.db,
		vectors:   cur.vectors,
		dead:      append([]bool(nil), cur.dead...),
		deadCount: cur.deadCount + len(ids),
		seg:       cur.seg,
		post:      cur.post,
		baseN:     cur.baseN,
		baseDead:  cur.baseDead,
	}
	// Removal is not a block event either: the SoA lanes keep the
	// tombstoned vectors and the scan filters the ids out.
	next.block.Store(cur.block.Load())
	next.labels.Store(cur.labels.Load())
	for _, id := range ids {
		next.dead[id] = true
		if id < next.baseN {
			next.baseDead++
		}
	}
	ix.snap.Store(next)
	ix.gen.Add(1)
	return nil
}

// StaleRatio reports how far the index has drifted from its dimension
// selection, in [0, 1]: the fraction of id slots that are either live
// graphs the selection never saw (added after Build, or after the
// persisted build this index was loaded from, and not since removed) or
// build-time graphs that are gone (tombstoned). A fresh Build reports 0,
// as does an index whose post-build additions have all been removed
// again — the live database then is exactly the one the dimensions were
// optimized for. Accuracy degrades as the ratio grows; re-Build when it
// crosses an operator-chosen threshold (EXPERIMENTS.md uses 0.3 as a
// starting point).
func (ix *Index) StaleRatio() float64 {
	s := ix.snap.Load()
	if len(s.db) == 0 {
		return 0
	}
	addedAlive := (len(s.db) - s.baseN) - (s.deadCount - s.baseDead)
	return float64(addedAlive+s.baseDead) / float64(len(s.db))
}

// Removed returns the number of tombstoned ids.
func (ix *Index) Removed() int { return ix.snap.Load().deadCount }
