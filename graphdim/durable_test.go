package graphdim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// The durability suite: WAL-backed stores must recover exactly the
// committed writes after a kill at any instant — no checkpoint needed,
// torn tails dropped, partial applies honoured.

// tearWAL appends garbage to the newest segment of the collection's log,
// simulating a record that was mid-write when the process died.
func tearWAL(t *testing.T, dir, coll string) {
	t.Helper()
	wdir := filepath.Join(dir, coll, walDirName)
	entries, err := os.ReadDir(wdir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range entries {
		if e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatalf("no wal segments under %s", wdir)
	}
	f, err := os.OpenFile(filepath.Join(wdir, newest), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x01, 0xc4, 0x00, 0x9d, 0x11}); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// assertSameSearch requires bit-identical rankings from both collections
// for every query: same ids, bitwise-equal distances.
func assertSameSearch(t *testing.T, label string, got, want *Collection, queries []*Graph) {
	t.Helper()
	ctx := context.Background()
	for qi, q := range queries {
		g, err := got.Search(ctx, q, SearchOptions{K: 10})
		if err != nil {
			t.Fatalf("%s: query %d on recovered store: %v", label, qi, err)
		}
		w, err := want.Search(ctx, q, SearchOptions{K: 10})
		if err != nil {
			t.Fatalf("%s: query %d on replica: %v", label, qi, err)
		}
		if !reflect.DeepEqual(g.Results, w.Results) {
			t.Fatalf("%s: query %d diverges after recovery:\nrecovered: %v\nreplica:   %v", label, qi, g.Results, w.Results)
		}
	}
}

// assertSameContent requires identical membership: same NextID, same
// live count, and id-by-id agreement on presence and tombstone state.
func assertSameContent(t *testing.T, label string, got, want *Collection) {
	t.Helper()
	gs, ws := got.Stats(), want.Stats()
	if gs.NextID != ws.NextID {
		t.Fatalf("%s: NextID %d after recovery, replica has %d", label, gs.NextID, ws.NextID)
	}
	if gs.Live != ws.Live {
		t.Fatalf("%s: %d live graphs after recovery, replica has %d", label, gs.Live, ws.Live)
	}
	for id := 0; id < ws.NextID; id++ {
		gg, gok := got.Graph(id)
		wg, wok := want.Graph(id)
		if gok != wok {
			t.Fatalf("%s: id %d present=%v after recovery, replica present=%v", label, id, gok, wok)
		}
		if gok && gg.String() != wg.String() {
			t.Fatalf("%s: id %d differs after recovery:\n%s\nvs\n%s", label, id, gg, wg)
		}
	}
}

func TestDurableAddSurvivesRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	idx, db := equivBuild(t, rng, 30)
	extra := dataset.Synthetic(dataset.SynthConfig{N: 6, AvgEdges: 9, Labels: 5, Seed: 7})
	ctx := context.Background()
	dir := t.TempDir()

	s, err := CreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("main", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c.Add(ctx, extra...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ids[0]); err != nil {
		t.Fatal(err)
	}
	// No checkpoint. Close == kill -9 as far as the directory goes: the
	// writes exist only as fsynced log records.
	s.Close()

	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rc, ok := re.Collection("main")
	if !ok {
		t.Fatal("collection lost across restart")
	}
	if got, want := rc.Size(), len(db)+len(extra)-1; got != want {
		t.Fatalf("recovered %d live graphs, want %d", got, want)
	}
	for i, id := range ids {
		g, ok := rc.Graph(id)
		if !ok {
			t.Fatalf("added id %d lost across restart", id)
		}
		if g.String() != extra[i].String() {
			t.Fatalf("id %d recovered wrong graph", id)
		}
	}
	// The removed id must stay removed: it may never surface in results.
	res, err := rc.Search(ctx, extra[0], SearchOptions{K: len(db) + len(extra)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.ID == ids[0] {
			t.Fatalf("tombstoned id %d resurfaced after restart", ids[0])
		}
	}
}

// TestCrashRecoveryRandomized is the crash-recovery property test: a
// scripted random interleaving of adds, removes, and checkpoints runs
// against a durable store and an in-memory replica; the durable store is
// then killed — after any record boundary, and on odd rounds with a torn
// record appended (a write cut mid-record) — reopened, and must serve
// bit-identical Search results to the replica's committed prefix.
// Replay a failure with GRAPHDIM_EQUIV_SEED=<seed>.
func TestCrashRecoveryRandomized(t *testing.T) {
	seed := equivSeed(t)
	rng := rand.New(rand.NewSource(seed))
	idx, db := equivBuild(t, rng, 40)
	pool := dataset.Synthetic(dataset.SynthConfig{N: 80, AvgEdges: 9, Labels: 5, Seed: rng.Int63()})
	ctx := context.Background()

	rounds := 5
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			shards := 1 + rng.Intn(3)
			dir := t.TempDir()
			s, err := CreateStore(dir, StoreOptions{WAL: WALOptions{SegmentBytes: 1 << 12}})
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.CreateFromIndex("c", idx, CollectionOptions{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			replicaStore := NewStore(StoreOptions{})
			defer replicaStore.Close()
			replica, err := replicaStore.CreateFromIndex("c", idx, CollectionOptions{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}

			var alive []int
			next := 0
			nOps := 6 + rng.Intn(10)
			for op := 0; op < nOps; op++ {
				switch k := rng.Intn(5); {
				case k <= 2: // add a batch
					bs := 1 + rng.Intn(3)
					if next+bs > len(pool) {
						continue
					}
					batch := pool[next : next+bs]
					next += bs
					ids, err := c.Add(ctx, batch...)
					if err != nil {
						t.Fatalf("op %d: durable Add: %v", op, err)
					}
					rids, err := replica.Add(ctx, batch...)
					if err != nil {
						t.Fatalf("op %d: replica Add: %v", op, err)
					}
					if !reflect.DeepEqual(ids, rids) {
						t.Fatalf("op %d: id divergence %v vs %v", op, ids, rids)
					}
					alive = append(alive, ids...)
				case k == 3: // remove a live id
					if len(alive) == 0 {
						continue
					}
					i := rng.Intn(len(alive))
					id := alive[i]
					alive = append(alive[:i], alive[i+1:]...)
					if err := c.Remove(id); err != nil {
						t.Fatalf("op %d: durable Remove(%d): %v", op, id, err)
					}
					if err := replica.Remove(id); err != nil {
						t.Fatalf("op %d: replica Remove(%d): %v", op, id, err)
					}
				default: // checkpoint
					if err := s.Checkpoint(); err != nil {
						t.Fatalf("op %d: Checkpoint: %v", op, err)
					}
				}
			}

			// Kill the process at this record boundary; on odd rounds a
			// torn record (a write that never finished) trails the log.
			s.Close()
			if round%2 == 1 {
				tearWAL(t, dir, "c")
			}

			// Rotate the recovery memory mode so the property holds for
			// mapped serving (checkpointed base faulted from the segment)
			// as well as full heap rehydration.
			mode := [...]MemoryMode{MemoryMap, MemoryHeap, MemoryAuto}[round%3]
			re, err := OpenStore(dir, StoreOptions{Memory: mode})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer re.Close()
			rc, ok := re.Collection("c")
			if !ok {
				t.Fatal("collection lost across crash")
			}
			label := fmt.Sprintf("seed=%d round=%d", seed, round)
			assertSameContent(t, label, rc, replica)
			queries := []*Graph{db[rng.Intn(len(db))], db[rng.Intn(len(db))]}
			if next > 0 {
				queries = append(queries, pool[rng.Intn(next)])
			}
			assertSameSearch(t, label, rc, replica, queries)

			// The recovered store must keep accepting durable writes.
			if next < len(pool) {
				if _, err := rc.Add(ctx, pool[next]); err != nil {
					t.Fatalf("Add after recovery: %v", err)
				}
			}
		})
	}
}

func TestPartialAddLogsExactlyAppliedIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx, _ := equivBuild(t, rng, 30)
	ctx := context.Background()
	dir := t.TempDir()
	s, err := CreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("p", idx, CollectionOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A batch big enough to hit at least two shards, and a victim shard
	// that owns some but not all of its ids.
	batch := dataset.Synthetic(dataset.SynthConfig{N: 8, AvgEdges: 9, Labels: 5, Seed: 11})
	first := int(c.nextID.Load())
	byShard := map[int][]int{}
	for i := range batch {
		sh := placeID(first+i, 4)
		byShard[sh] = append(byShard[sh], first+i)
	}
	if len(byShard) < 2 {
		t.Fatalf("batch landed on %d shards; need >= 2", len(byShard))
	}
	victim := -1
	for sh, ids := range byShard {
		if len(ids) < len(batch) {
			victim = sh
			break
		}
	}
	boom := errors.New("injected shard failure")
	c.failShard = func(sh int) error {
		if sh == victim {
			return boom
		}
		return nil
	}
	_, err = c.Add(ctx, batch...)
	var pe *PartialAddError
	if !errors.As(err, &pe) {
		t.Fatalf("Add returned %v; want *PartialAddError", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("PartialAddError does not wrap the cause: %v", err)
	}
	var wantApplied []int
	for sh, ids := range byShard {
		if sh != victim {
			wantApplied = append(wantApplied, ids...)
		}
	}
	sort.Ints(wantApplied)
	if !reflect.DeepEqual(pe.Applied, wantApplied) || pe.Total != len(batch) {
		t.Fatalf("PartialAddError{Applied: %v, Total: %d}, want {%v, %d}", pe.Applied, pe.Total, wantApplied, len(batch))
	}
	// The batch's ids are burned even though part of it failed.
	if got := int(c.nextID.Load()); got != first+len(batch) {
		t.Fatalf("nextID %d after partial add, want %d", got, first+len(batch))
	}

	// Crash and recover: exactly the applied subset comes back — the WAL
	// compensator must stop replay from resurrecting the failed slices.
	s.Close()
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rc, _ := re.Collection("p")
	for _, id := range wantApplied {
		if _, ok := rc.Graph(id); !ok {
			t.Fatalf("applied id %d lost across crash", id)
		}
	}
	for _, id := range byShard[victim] {
		if _, ok := rc.Graph(id); ok {
			t.Fatalf("failed id %d resurrected by replay", id)
		}
	}
	if got := rc.Stats().NextID; got != first+len(batch) {
		t.Fatalf("recovered NextID %d, want %d (ids stay burned)", got, first+len(batch))
	}
	// And the recovered collection keeps assigning fresh ids.
	ids, err := rc.Add(ctx, batch[0])
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != first+len(batch) {
		t.Fatalf("post-recovery add got id %d, want %d", ids[0], first+len(batch))
	}
}

func TestTotalAddFailureIsVoidedInLog(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	idx, _ := equivBuild(t, rng, 30)
	ctx := context.Background()
	dir := t.TempDir()
	s, err := CreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("v", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := dataset.Synthetic(dataset.SynthConfig{N: 4, AvgEdges: 9, Labels: 5, Seed: 13})
	first := int(c.nextID.Load())
	boom := errors.New("all shards down")
	c.failShard = func(int) error { return boom }
	if _, err := c.Add(ctx, batch...); !errors.Is(err, boom) {
		t.Fatalf("Add returned %v; want the injected failure", err)
	}
	var pe *PartialAddError
	if errors.As(err, &pe) {
		t.Fatalf("total failure reported as partial: %v", err)
	}
	// Nothing landed, but the batch is in the log, and logged ids are
	// never reassigned (the invariant replication reconciliation leans
	// on): the ids burn...
	if got := int(c.nextID.Load()); got != first+len(batch) {
		t.Fatalf("nextID %d after voided add, want %d", got, first+len(batch))
	}
	// ...and the retry gets fresh ones.
	c.failShard = nil
	ids, err := c.Add(ctx, batch...)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != first+len(batch) {
		t.Fatalf("retry got id %d, want %d", ids[0], first+len(batch))
	}

	// Crash and recover: only the retry's graphs exist, under the same
	// ids — replay must skip the voided record's graphs while still
	// burning its ids.
	s.Close()
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after voided add: %v", err)
	}
	defer re.Close()
	rc, _ := re.Collection("v")
	st := rc.Stats()
	if st.NextID != first+2*len(batch) {
		t.Fatalf("recovered NextID %d, want %d", st.NextID, first+2*len(batch))
	}
	for i, id := range ids {
		g, ok := rc.Graph(id)
		if !ok || g.String() != batch[i].String() {
			t.Fatalf("retry id %d not recovered intact", id)
		}
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	idx, _ := equivBuild(t, rng, 30)
	ctx := context.Background()
	dir := t.TempDir()
	// Tiny segments so a handful of adds spans several files.
	s, err := CreateStore(dir, StoreOptions{WAL: WALOptions{SegmentBytes: 256}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := s.CreateFromIndex("t", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool := dataset.Synthetic(dataset.SynthConfig{N: 12, AvgEdges: 9, Labels: 5, Seed: 17})
	for _, g := range pool[:8] {
		if _, err := c.Add(ctx, g); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats().WAL
	if before == nil {
		t.Fatal("durable collection reports no WAL stats")
	}
	if before.Segments < 2 {
		t.Fatalf("expected several segments at 256-byte roll threshold, got %d", before.Segments)
	}
	if before.LastSeq != 8 || before.Appends != 8 {
		t.Fatalf("wal stats before checkpoint: %+v", before)
	}

	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.Checkpoints(); got < 1 {
		t.Fatalf("Checkpoints() = %d", got)
	}
	after := c.Stats().WAL
	if after.CheckpointSeq != 8 || after.Segments != 1 || after.Bytes >= before.Bytes {
		t.Fatalf("checkpoint did not truncate the log: %+v (before %+v)", after, before)
	}

	// Post-checkpoint writes land in the fresh tail and survive a crash.
	if _, err := c.Add(ctx, pool[8]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rc, _ := re.Collection("t")
	if got, want := rc.Stats().NextID, c.Stats().NextID; got != want {
		t.Fatalf("recovered NextID %d, want %d", got, want)
	}
}

// TestSaveInterrupted injects a write error into Save and requires the
// directory to come back exactly as the previous successful save left
// it: same manifest, same shard files, no debris — and the next save to
// succeed.
func TestSaveInterrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	idx, db := equivBuild(t, rng, 30)
	ctx := context.Background()
	s := NewStore(StoreOptions{})
	defer s.Close()
	c, err := s.CreateFromIndex("main", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	listing := func() []string {
		var out []string
		filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() {
				out = append(out, p)
			}
			return nil
		})
		sort.Strings(out)
		return out
	}
	before := listing()
	manifestBefore, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}

	// Grow the store, then make the manifest write fail: a directory
	// squatting on the temp-manifest path turns os.WriteFile into EISDIR
	// after the fresh shard files are already on disk.
	extra := dataset.Synthetic(dataset.SynthConfig{N: 3, AvgEdges: 9, Labels: 5, Seed: 19})
	if _, err := c.Add(ctx, extra...); err != nil {
		t.Fatal(err)
	}
	blocker := filepath.Join(dir, manifestName+".tmp")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err == nil {
		t.Fatal("interrupted Save reported success")
	}

	// The failed attempt must have cleaned up after itself...
	os.RemoveAll(blocker) // in case the cleanup's os.Remove didn't take it
	if got := listing(); !reflect.DeepEqual(got, before) {
		t.Fatalf("failed save left debris:\nbefore: %v\nafter:  %v", before, got)
	}
	manifestAfter, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil || string(manifestAfter) != string(manifestBefore) {
		t.Fatalf("failed save disturbed the manifest (err %v)", err)
	}
	// ...and the directory must reopen to the pre-failure state.
	re, err := OpenStore(dir, StoreOptions{WAL: WALOptions{Disabled: true}})
	if err != nil {
		t.Fatalf("reopen after interrupted save: %v", err)
	}
	rc, _ := re.Collection("main")
	if rc.Size() != len(db) {
		t.Fatalf("recovered %d graphs, want the checkpointed %d", rc.Size(), len(db))
	}
	re.Close()

	// With the blocker gone the next save lands the grown state, and the
	// sweep retires the superseded generation.
	if err := s.Save(dir); err != nil {
		t.Fatalf("save after recovery: %v", err)
	}
	re2, err := OpenStore(dir, StoreOptions{WAL: WALOptions{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	rc2, _ := re2.Collection("main")
	if rc2.Size() != len(db)+len(extra) {
		t.Fatalf("post-recovery save lost writes: %d graphs, want %d", rc2.Size(), len(db)+len(extra))
	}
}

// TestCrashDebrisIsSwept covers the crash flavour of an interrupted
// save: a stale temp manifest and an unreferenced shard file are left on
// disk, the store must open cleanly past them, and the next save sweeps
// them.
func TestCrashDebrisIsSwept(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	idx, _ := equivBuild(t, rng, 30)
	s := NewStore(StoreOptions{})
	defer s.Close()
	if _, err := s.CreateFromIndex("main", idx, CollectionOptions{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	debrisManifest := filepath.Join(dir, manifestName+".tmp")
	debrisShard := filepath.Join(dir, "main", "shard-0000-crashed.gdx")
	os.WriteFile(debrisManifest, []byte("{half a manifest"), 0o644)
	os.WriteFile(debrisShard, []byte("torn shard bytes"), 0o644)

	re, err := OpenStore(dir, StoreOptions{WAL: WALOptions{Disabled: true}})
	if err != nil {
		t.Fatalf("open over crash debris: %v", err)
	}
	re.Close()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debrisShard); !os.IsNotExist(err) {
		t.Fatalf("sweep left the orphan shard file (stat err %v)", err)
	}
}

func TestDurableDropDoesNotResurrect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	idx, _ := equivBuild(t, rng, 30)
	dir := t.TempDir()
	s, err := CreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateFromIndex("keep", idx, CollectionOptions{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateFromIndex("gone", idx, CollectionOptions{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	// A foreign directory in the data dir — name matching the collection
	// grammar, contents not ours — must survive every sweep untouched.
	foreign := filepath.Join(dir, "backups")
	if err := os.MkdirAll(foreign, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(foreign, "precious.tar"), []byte("irreplaceable"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone")); !os.IsNotExist(err) {
		t.Fatalf("dropped collection's directory survives (stat err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(foreign, "precious.tar")); err != nil {
		t.Fatalf("sweep touched a foreign directory: %v", err)
	}
	s.Close()
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Collection("gone"); ok {
		t.Fatal("dropped collection resurrected by restart")
	}
	if _, ok := re.Collection("keep"); !ok {
		t.Fatal("surviving collection lost")
	}
}

// TestCompactionCoordinatesWithRecovery: a compaction swap between a
// checkpoint and a crash must strand no log records — the replayed tail
// applies cleanly over the (uncompacted) checkpoint image, and the
// recovered store serves the same live set and the same exact-engine
// ranking as an uncrashed replica.
func TestCompactionCoordinatesWithRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	idx, db := equivBuild(t, rng, 30)
	pool := dataset.Synthetic(dataset.SynthConfig{N: 10, AvgEdges: 9, Labels: 5, Seed: 23})
	ctx := context.Background()
	dir := t.TempDir()
	s, err := CreateStore(dir, StoreOptions{Compaction: CompactionPolicy{StaleThreshold: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("c", idx, CollectionOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	replicaStore := NewStore(StoreOptions{})
	defer replicaStore.Close()
	replica, err := replicaStore.CreateFromIndex("c", idx, CollectionOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}

	ids, err := c.Add(ctx, pool[:4]...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Add(ctx, pool[:4]...); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: a remove, a compaction swap (which reclaims
	// the tombstone in memory but must not touch the log), more adds.
	if err := c.Remove(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := replica.Remove(ids[1]); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Compact(ctx, true); err != nil || n != 1 {
		t.Fatalf("Compact rebuilt %d shards, err %v", n, err)
	}
	if _, err := c.Add(ctx, pool[4:7]...); err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Add(ctx, pool[4:7]...); err != nil {
		t.Fatal(err)
	}

	s.Close() // crash: no checkpoint since the compaction
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after compact+crash: %v", err)
	}
	defer re.Close()
	rc, _ := re.Collection("c")
	if got, want := rc.Size(), replica.Size(); got != want {
		t.Fatalf("recovered %d live graphs, want %d", got, want)
	}
	if g := rc.Stats(); g.NextID != replica.Stats().NextID {
		t.Fatalf("recovered NextID %d, want %d", g.NextID, replica.Stats().NextID)
	}
	// The compacted shard re-selected its dimensions before the crash,
	// so mapped-space scores may legitimately differ from the replica's;
	// the exact engine must agree bit-for-bit.
	exact := SearchOptions{K: 8, Engine: EngineExact}
	for _, q := range []*Graph{db[3], pool[5]} {
		g, err := rc.Search(ctx, q, exact)
		if err != nil {
			t.Fatal(err)
		}
		w, err := replica.Search(ctx, q, exact)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.Results, w.Results) {
			t.Fatalf("exact ranking diverges after compact+crash:\nrecovered: %v\nreplica:   %v", g.Results, w.Results)
		}
	}
}

func TestOpenOrCreateStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh")
	s, err := OpenOrCreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("create branch: %v", err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	s.Close()
	// Second open takes the open branch.
	s2, err := OpenOrCreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("open branch: %v", err)
	}
	s2.Close()
	// CreateStore refuses a directory that already holds a store.
	if _, err := CreateStore(dir, StoreOptions{}); err == nil {
		t.Fatal("CreateStore over an existing store succeeded")
	}
	// A memory store cannot checkpoint.
	m := NewStore(StoreOptions{})
	defer m.Close()
	if err := m.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a memory store succeeded")
	}
}

// TestDisabledOpenRefusesUnreplayedTail: opening a durable directory
// with the WAL disabled must not silently drop acknowledged records the
// checkpoint does not cover.
func TestDisabledOpenRefusesUnreplayedTail(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	idx, _ := equivBuild(t, rng, 30)
	ctx := context.Background()
	dir := t.TempDir()
	s, err := CreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("d", idx, CollectionOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	extra := dataset.Synthetic(dataset.SynthConfig{N: 2, AvgEdges: 9, Labels: 5, Seed: 29})
	if _, err := c.Add(ctx, extra...); err != nil {
		t.Fatal(err)
	}
	s.Close() // tail record exists, no checkpoint

	if _, err := OpenStore(dir, StoreOptions{WAL: WALOptions{Disabled: true}}); err == nil {
		t.Fatal("disabled open over an unreplayed tail succeeded")
	}

	// Recover properly, checkpoint, and the disabled open is fine — and
	// its own checkpoints must preserve wal_seq rather than reset it.
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re.Close()
	rd, err := OpenStore(dir, StoreOptions{WAL: WALOptions{Disabled: true}})
	if err != nil {
		t.Fatalf("disabled open after full checkpoint: %v", err)
	}
	if err := rd.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rd.Close()
	// Re-enabling the WAL replays nothing stale: the store still holds
	// exactly one copy of everything.
	final, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	fc, _ := final.Collection("d")
	if got, want := fc.Size(), 30+len(extra); got != want {
		t.Fatalf("size %d after disabled round-trip, want %d", got, want)
	}
}

// TestExportedStoreReplaysItsOwnLog: a Save to a foreign directory ships
// the snapshot without the source's log, so the copy's manifest must not
// claim the source's log position — writes to the opened copy get a
// fresh log starting at sequence 1 and must survive a crash.
func TestExportedStoreReplaysItsOwnLog(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	idx, db := equivBuild(t, rng, 30)
	ctx := context.Background()
	extra := dataset.Synthetic(dataset.SynthConfig{N: 4, AvgEdges: 9, Labels: 5, Seed: 31})

	src := t.TempDir()
	s, err := CreateStore(src, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("e", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Push the source log's sequence forward so a copied wal_seq would
	// mask the copy's fresh low-sequence records.
	if _, err := c.Add(ctx, extra[:2]...); err != nil {
		t.Fatal(err)
	}
	export := t.TempDir()
	if err := s.Save(export); err != nil {
		t.Fatal(err)
	}
	s.Close()

	e1, err := OpenStore(export, StoreOptions{})
	if err != nil {
		t.Fatalf("open exported copy: %v", err)
	}
	ec, _ := e1.Collection("e")
	// The export includes the source's committed writes...
	if got, want := ec.Size(), len(db)+2; got != want {
		t.Fatalf("exported copy has %d graphs, want %d", got, want)
	}
	// ...and logs its own writes durably.
	ids, err := ec.Add(ctx, extra[2:]...)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close() // crash, no checkpoint

	e2, err := OpenStore(export, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen exported copy after crash: %v", err)
	}
	defer e2.Close()
	rc, _ := e2.Collection("e")
	for _, id := range ids {
		if _, ok := rc.Graph(id); !ok {
			t.Fatalf("acknowledged write %d to the exported copy lost across crash", id)
		}
	}
}

// TestCheckpointConcurrentWithWrites hammers checkpoints against a
// stream of adds and removes — the checkpoint path captures snapshots
// under the writer lock but encodes them lock-free, and every image it
// installs (any of which a crash could surface) must be loadable and
// consistent with the log tail. Meaningful under -race.
func TestCheckpointConcurrentWithWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	idx, db := equivBuild(t, rng, 30)
	pool := dataset.Synthetic(dataset.SynthConfig{N: 40, AvgEdges: 9, Labels: 5, Seed: 37})
	ctx := context.Background()
	dir := t.TempDir()
	s, err := CreateStore(dir, StoreOptions{WAL: WALOptions{SegmentBytes: 1 << 12}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("w", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < len(pool); i += 2 {
			if _, err := c.Add(ctx, pool[i:i+2]...); err != nil {
				t.Errorf("concurrent Add: %v", err)
				return
			}
			if i%8 == 0 {
				if err := c.Remove(len(db) + i); err != nil {
					t.Errorf("concurrent Remove: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 8; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d racing writes: %v", i, err)
		}
	}
	<-done
	s.Close() // crash: whatever the last checkpoint missed is in the log

	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after racing checkpoints: %v", err)
	}
	defer re.Close()
	rc, _ := re.Collection("w")
	removed := (len(pool) + 7) / 8
	if got, want := rc.Size(), len(db)+len(pool)-removed; got != want {
		t.Fatalf("recovered %d live graphs, want %d", got, want)
	}
	for i := range pool {
		id := len(db) + i
		g, ok := rc.Graph(id)
		if !ok || g.String() != pool[i].String() {
			t.Fatalf("acknowledged id %d lost or corrupted across racing checkpoints", id)
		}
	}
}

// TestDataDirSingleOwner: two live stores on one data directory would
// corrupt each other's logs, so the second open must fail — while
// read-only (WAL-disabled) opens stay allowed alongside a live owner.
func TestDataDirSingleOwner(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); err == nil {
		t.Fatal("second owner of the data directory was admitted")
	}
	// A read-only open may inspect the live directory.
	ro, err := OpenStore(dir, StoreOptions{WAL: WALOptions{Disabled: true}})
	if err != nil {
		t.Fatalf("read-only open alongside the owner: %v", err)
	}
	ro.Close()
	// Close releases the lock; the next owner gets in.
	s.Close()
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("open after the owner closed: %v", err)
	}
	s2.Close()
}
