package graphdim

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/pipeline"
	"repro/internal/pool"
	"repro/internal/topk"
	"repro/internal/vecspace"
)

// Engine selects the query engine behind Search — the paper's retrieve /
// verify split surfaced as a per-query dial.
type Engine int

const (
	// EngineMapped is the paper's online path: map the query onto the
	// dimensions with VF2 feature matching, then scan the vector space by
	// normalized Euclidean distance. Milliseconds per query; accuracy
	// comes from the DS-preserved mapping.
	EngineMapped Engine = iota
	// EngineVerified retrieves VerifyFactor·K candidates in the mapped
	// space and re-ranks just those with the exact (budgeted) MCS
	// dissimilarity — the accuracy/latency dial between the mapped scan
	// and exact search.
	EngineVerified
	// EngineExact ranks the whole database by MCS dissimilarity — orders
	// of magnitude slower; ground truth.
	EngineExact
)

// String implements fmt.Stringer with the names ParseEngine accepts.
func (e Engine) String() string {
	switch e {
	case EngineMapped:
		return "mapped"
	case EngineVerified:
		return "verified"
	case EngineExact:
		return "exact"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine converts an engine name ("mapped", "verified", "exact") to
// its Engine — the inverse of String, used by the HTTP and CLI frontends.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "mapped":
		return EngineMapped, nil
	case "verified":
		return EngineVerified, nil
	case "exact":
		return EngineExact, nil
	}
	return 0, fmt.Errorf("graphdim: unknown engine %q (want mapped, verified or exact)", s)
}

// MetricChoice optionally overrides the index's dissimilarity metric for
// one query. The zero value keeps the metric the index was built with, so
// SearchOptions{} always means "the index defaults".
type MetricChoice int

const (
	// MetricIndexDefault scores with the metric the index was built with.
	MetricIndexDefault MetricChoice = iota
	// MetricDelta1 forces Eq. (1), normalization by the larger graph.
	MetricDelta1
	// MetricDelta2 forces Eq. (2), normalization by the average size.
	MetricDelta2
)

// SearchOptions configures one Search call. Zero values select defaults
// (noted per field); K is the only required field.
type SearchOptions struct {
	// K is the number of results wanted. Required: Validate rejects
	// K <= 0. Fewer than K results are returned only when the (filtered)
	// database is smaller than K.
	K int
	// Engine picks the query engine; default EngineMapped.
	Engine Engine
	// VerifyFactor is EngineVerified's candidate multiplier: the engine
	// retrieves VerifyFactor·K mapped-space candidates and verifies each
	// with an MCS search. Zero means 3. Values overshooting the database
	// degrade to verifying everything (= exact search). Ignored by the
	// other engines.
	VerifyFactor int
	// MaxCandidates caps the number of candidates EngineVerified verifies
	// regardless of VerifyFactor·K — a hard latency bound, since each
	// verification is one MCS search. Zero means no cap. Ignored by the
	// other engines.
	MaxCandidates int
	// Metric overrides the dissimilarity metric for EngineVerified and
	// EngineExact scoring; default MetricIndexDefault (the build-time
	// metric). EngineMapped ranks by mapped-space distance and ignores it.
	Metric MetricChoice
	// Predicate, when non-nil, restricts the search to graphs it admits:
	// ids failing the predicate are skipped before scoring, so the top-K
	// is taken over the admitted subset. It is called with the graph's id
	// and the graph itself; it must be cheap (it runs inside the scan)
	// and safe for concurrent calls (SearchBatch fans out).
	Predicate func(id int, g *Graph) bool
	// Filters restricts the search with declarative structural
	// predicates (see pipeline.Filter), ANDed with each other and with
	// Predicate. Unlike Predicate, filters push down: the parts a
	// posting list or ones-count bucket can answer restrict the scan to
	// the matching ids before any distance is computed, and the whole
	// chain serializes canonically, so filtered queries stay cacheable
	// where a Predicate closure must bypass the cache.
	Filters []*pipeline.Filter
	// NoPrune disables posting-list candidate pruning for this query,
	// forcing the flat scan of every live vector. Results are identical
	// either way — pruning is an exact accelerator, and an adaptive cost
	// model already falls back to the flat scan when the query's matched
	// dimensions cover too much of the collection — so the knob exists
	// for measurement (benchmarks pin the pruned/flat ratio with it) and
	// as an operational escape hatch. Ignored by EngineExact, which
	// never scans the vector space.
	NoPrune bool
	// NoDefaults disables the collection-level defaults overlay in
	// Collection.Search: zero-valued fields then mean the library
	// defaults, exactly as in Index.Search. It lets a caller request the
	// zero-valued settings (EngineMapped, VerifyFactor 3, …) explicitly
	// on a collection whose defaults say otherwise. Index.Search ignores
	// it.
	NoDefaults bool
}

// Validate reports whether the options are usable: K must be positive,
// VerifyFactor and MaxCandidates non-negative, Engine and Metric known
// values.
func (o SearchOptions) Validate() error {
	if o.K <= 0 {
		return fmt.Errorf("graphdim: k must be positive, got %d", o.K)
	}
	if o.Engine != EngineMapped && o.Engine != EngineVerified && o.Engine != EngineExact {
		return fmt.Errorf("graphdim: unknown engine %d", int(o.Engine))
	}
	if o.VerifyFactor < 0 {
		return fmt.Errorf("graphdim: VerifyFactor must be >= 0 (0 = default 3), got %d", o.VerifyFactor)
	}
	if o.MaxCandidates < 0 {
		return fmt.Errorf("graphdim: MaxCandidates must be >= 0 (0 = uncapped), got %d", o.MaxCandidates)
	}
	if o.Metric != MetricIndexDefault && o.Metric != MetricDelta1 && o.Metric != MetricDelta2 {
		return fmt.Errorf("graphdim: unknown metric choice %d", int(o.Metric))
	}
	for i, f := range o.Filters {
		if f == nil {
			return fmt.Errorf("graphdim: nil filter at index %d", i)
		}
		if err := f.Validate(); err != nil {
			return fmt.Errorf("graphdim: filter %d: %v", i, err)
		}
	}
	return nil
}

// DimensionBits is the set of index dimensions a query graph contains —
// the query's binary vector, exposed read-only. Bit r corresponds to
// Index.Dimensions()[r].
type DimensionBits struct {
	words []uint64
	n     int
}

// Len returns the dimensionality p of the space.
func (b DimensionBits) Len() int { return b.n }

// Contains reports whether dimension r is matched.
func (b DimensionBits) Contains(r int) bool {
	if r < 0 || r >= b.n {
		return false
	}
	return b.words[r/64]&(1<<(uint(r)%64)) != 0
}

// Count returns the number of matched dimensions.
func (b DimensionBits) Count() int {
	// Bits at or beyond n are never set (the words come from a
	// BitVector of dimension n), so a plain popcount is exact.
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Indices returns the matched dimensions in ascending order.
func (b DimensionBits) Indices() []int {
	var out []int
	for r := 0; r < b.n; r++ {
		if b.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}

func dimensionBits(v *vecspace.BitVector) DimensionBits {
	return DimensionBits{
		words: append([]uint64(nil), v.Words()...),
		n:     v.Len(),
	}
}

// SearchResult is one query's answer plus the metadata a serving layer
// needs: which engine ran, how much work it did, and how the query landed
// in the dimension space.
type SearchResult struct {
	// Results holds up to K answers, most similar first.
	Results []Result
	// Engine is the engine that produced Results.
	Engine Engine
	// Candidates is how many graphs the final ranking stage scored: the
	// ids the mapped scan actually computed a distance for (the admitted
	// scan size when the flat scan ran, minus whole zones the SoA
	// block's zone map proved irrelevant; with posting-list pruning, the
	// matched candidates plus however much of the unmatched stream the
	// top-K needed — possibly far fewer), the admitted scan size for
	// EngineExact, and the number of MCS verifications for
	// EngineVerified.
	Candidates int
	// Matched is the query's binary vector over the index dimensions —
	// which of Index.Dimensions() the query contains. A query matching
	// few dimensions carries little signal in the mapped space; serving
	// layers can use Count() to route such queries to EngineVerified.
	Matched DimensionBits
	// Elapsed is the wall-clock time Search spent on this query,
	// including the VF2 mapping step.
	Elapsed time.Duration
}

// planCandidates asks the snapshot's posting index for a pruned scan
// plan covering the top wantK of the mapped ranking, translating it
// into the iterator topk takes. It returns nil — meaning "flat scan" —
// when pruning is disabled, or when the cost model concludes the
// query's matched dimensions cover too much of the collection for
// pruning to pay (see posting.Plan).
func (s *snapshot) planCandidates(qv *vecspace.BitVector, wantK int, noPrune bool) *topk.Candidates {
	if noPrune || s.post == nil {
		return nil
	}
	pl := s.post.Plan(qv, wantK)
	if pl == nil {
		return nil
	}
	return &topk.Candidates{
		K:         wantK,
		QueryOnes: pl.QueryOnes,
		Matched:   pl.Matched,
		Rest:      pl.Rest,
	}
}

// catalog exposes the snapshot's pushdown structures to the filter
// compiler. It is only called on filtered paths: the label index it
// resolves is built lazily, and on a mapped snapshot that build is the
// one whole-corpus fault (see labelIndex).
func (s *snapshot) catalog() pipeline.Catalog {
	return pipeline.Catalog{N: len(s.db), Post: s.post, Labels: s.labelIndex()}
}

// composePredicate ANDs a compiled filter residual with a caller
// predicate, keeping nil when both are nil.
func composePredicate(residual func(id int, g *Graph) bool, pred func(id int, g *Graph) bool) func(id int, g *Graph) bool {
	if residual == nil {
		return pred
	}
	if pred == nil {
		return residual
	}
	return func(id int, g *Graph) bool {
		return residual(id, g) && pred(id, g)
	}
}

// memberFunc builds an O(1) membership test over a sorted id list — a
// bitmap when the id space is known, so the flat/exact scans can take a
// pushdown intersection as a predicate.
func memberFunc(ids []int32, n int) func(int) bool {
	words := make([]uint64, (n+63)/64)
	for _, id := range ids {
		if int(id) < n {
			words[id/64] |= 1 << (uint(id) % 64)
		}
	}
	return func(id int) bool {
		return id < n && words[id/64]&(1<<(uint(id)%64)) != 0
	}
}

// Search answers a top-k similarity query with per-query options: engine
// choice, verification factor, metric override, and a result predicate
// (see SearchOptions). It reads an immutable snapshot, so a Search
// observes a consistent database even while Add/Remove run concurrently,
// and it honours ctx — a cancelled search returns ctx.Err() promptly,
// which bounds the tail latency of the MCS-based engines.
func (ix *Index) Search(ctx context.Context, q *Graph, opt SearchOptions) (*SearchResult, error) {
	start := time.Now()
	if q == nil {
		return nil, fmt.Errorf("graphdim: nil query")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}

	metric := ix.metric
	switch opt.Metric {
	case MetricDelta1:
		metric = Delta1
	case MetricDelta2:
		metric = Delta2
	}

	qv, err := ix.mapper.MapContext(ctx, q)
	if err != nil {
		return nil, err
	}

	s := ix.snap.Load()
	pred := opt.Predicate
	var filtered []int32 // pushdown ids for the pruned plan, nil = none
	if len(opt.Filters) > 0 {
		comp, cerr := pipeline.CompileFilters(opt.Filters, s.catalog())
		if cerr != nil {
			return nil, fmt.Errorf("graphdim: %v", cerr)
		}
		pred = composePredicate(comp.Residual, pred)
		if comp.Restricted {
			if opt.Engine != EngineExact && !opt.NoPrune {
				// The pruned scan takes the pushed-down ids directly:
				// score exactly these (same distance expression as the
				// flat scan), stream nothing else. IDs may include
				// zero-overlap ids — harmless, they are scored from
				// their vectors like any matched id.
				filtered = comp.IDs
			} else {
				// Flat and exact paths take membership as a predicate.
				member := memberFunc(comp.IDs, len(s.db))
				inner := pred
				pred = func(id int, g *Graph) bool {
					return member(id) && (inner == nil || inner(id, g))
				}
			}
		}
	}
	alive := s.alive(pred)
	plan := func(wantK int) *topk.Candidates {
		if filtered != nil {
			return &topk.Candidates{
				K:         wantK,
				QueryOnes: qv.Ones(),
				Matched:   filtered,
				Rest:      func(func(id, ones int32) bool) {},
			}
		}
		return s.planCandidates(qv, wantK, opt.NoPrune)
	}
	// Both vector-space engines scan through the snapshot's SoA block and
	// a pooled scratch arena: rankings they return alias scr, so results
	// are copied into []Result below before the deferred Release.
	scr := topk.NewScratch()
	defer scr.Release()
	var (
		ranking    topk.Ranking
		candidates int
	)
	switch opt.Engine {
	case EngineMapped:
		ranking, candidates, err = topk.MappedTopKContext(ctx, s.vectors,
			s.soaBlock(ix.mapper.Dim()), qv, alive, opt.K, plan(opt.K), scr)
	case EngineVerified:
		factor := opt.VerifyFactor
		if factor == 0 {
			factor = 3
		}
		// The retrieval stage needs a factor·K-deep ranking; size the
		// pruning plan's cost model for that depth (VerifiedContext
		// re-derives the exact clamped count itself).
		wantEstimate := opt.K * factor
		if wantEstimate/factor != opt.K {
			wantEstimate = ix.TotalGraphs() // overflow: verify everything
		}
		if opt.MaxCandidates > 0 && wantEstimate > opt.MaxCandidates {
			wantEstimate = opt.MaxCandidates
		}
		ranking, candidates, err = topk.VerifiedContext(ctx, s.graphAt, s.vectors,
			s.soaBlock(ix.mapper.Dim()), q, qv,
			opt.K, factor, opt.MaxCandidates, metric, ix.mcsOpt, alive,
			plan(wantEstimate), scr)
	case EngineExact:
		ranking, err = topk.ExactContext(ctx, len(s.db), s.graphAt, q, metric, ix.mcsOpt, alive)
		candidates = len(ranking)
	}
	if err != nil {
		return nil, err
	}

	k := opt.K
	if k > len(ranking) {
		k = len(ranking)
	}
	results := make([]Result, k)
	for i := 0; i < k; i++ {
		results[i] = Result{ID: ranking[i].ID, Distance: ranking[i].Score}
	}
	return &SearchResult{
		Results:    results,
		Engine:     opt.Engine,
		Candidates: candidates,
		Matched:    dimensionBits(qv),
		Elapsed:    time.Since(start),
	}, nil
}

// SearchBatch answers many queries with the same options, fanning them
// across the index's worker pool (the Workers value Build was configured
// with, or one worker per CPU for a loaded index). Result i corresponds
// to queries[i]. The batch is validated up front (nil queries, bad
// options) and fails as a unit: if any query errors — including ctx
// cancellation — SearchBatch returns the first error in query order and
// no partial results.
func (ix *Index) SearchBatch(ctx context.Context, queries []*Graph, opt SearchOptions) ([]*SearchResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	for i, q := range queries {
		if q == nil {
			return nil, fmt.Errorf("graphdim: nil query at index %d", i)
		}
	}
	out := make([]*SearchResult, len(queries))
	errs := make([]error, len(queries))
	poolErr := pool.ForContext(ctx, ix.queryWorkers(), len(queries), func(i int) {
		out[i], errs[i] = ix.Search(ctx, queries[i], opt)
	})
	// Per-query errors take precedence in query order; a pool-level error
	// can only be ctx.Err(), which the per-query errors already reflect
	// for every query that started.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if poolErr != nil {
		return nil, poolErr
	}
	return out, nil
}
