package graphdim

import (
	"context"
	"math/rand"
	"testing"
)

// TestSearchAllocsBounded pins the O(1)-allocations property of a warm
// query on the uncached Index path: after the lazy SoA block and the
// scratch pool have been primed, a repeated mapped Search — flat and
// pruned — must stay under a small fixed allocation ceiling per call,
// independent of the database size. The ceiling covers only per-query
// fixed costs (the query's mapped vector, the copied-out results, the
// SearchResult, a pruned plan's slices); it fails loudly if a future
// change reintroduces per-candidate allocation, which would scale with
// n and blow far past it.
func TestSearchAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(42))
	idx, _ := equivBuild(t, rng, 500)
	ctx := context.Background()
	// A minimal query: the VF2 mapping's size filter rejects every
	// multi-vertex dimension immediately, so the measurement isolates
	// the scan, not the matcher (whose state is per-call by design).
	q := NewGraph(1)

	for _, tc := range []struct {
		name string
		opt  SearchOptions
	}{
		{"flat", SearchOptions{K: 10, NoPrune: true}},
		{"pruned", SearchOptions{K: 10}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Warm up: build the SoA block, grow the pooled scratch to the
			// collection's high-water mark, and fault in the pool caches.
			for i := 0; i < 5; i++ {
				if _, err := idx.Search(ctx, q, tc.opt); err != nil {
					t.Fatal(err)
				}
			}
			const ceiling = 40
			avg := testing.AllocsPerRun(50, func() {
				if _, err := idx.Search(ctx, q, tc.opt); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s: %.1f allocs per warm query", tc.name, avg)
			if avg > ceiling {
				t.Fatalf("%s: warm Search allocates %.1f objects per query, ceiling %d — "+
					"a per-candidate allocation has crept back into the scan", tc.name, avg, ceiling)
			}
		})
	}
}
