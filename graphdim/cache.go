package graphdim

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/pipeline"
)

// CacheOptions configures a collection's query-result cache (see
// CollectionOptions.Cache): an LRU over complete Search results, keyed
// by the canonical query bytes plus the effective SearchOptions, and
// fenced by the collection's shard generation vector — every shard
// carries a monotonic counter that moves when a mutation or compaction
// swap commits, so a cached entry is served only while every shard is
// exactly as it was when the entry was computed. Invalidation is
// therefore free: no mutation ever walks the cache; entries whose
// generation vector no longer matches simply miss (and are dropped on
// touch).
//
// Queries with a Predicate closure bypass the cache (a function cannot
// be canonicalized); declarative Filters serialize to canonical bytes
// and cache normally. All three engines cache; the MCS-based ones gain
// the most, since a hit skips their verification work entirely.
type CacheOptions struct {
	// MaxEntries bounds the number of cached results. Zero disables the
	// cache entirely — the zero value of CacheOptions means "no cache".
	MaxEntries int
	// MaxBytes bounds the cache's approximate memory footprint (keys +
	// results + bookkeeping). Zero means no byte bound: only MaxEntries
	// limits the cache. A single result larger than MaxBytes is not
	// cached at all.
	MaxBytes int64
}

func (o CacheOptions) validate() error {
	if o.MaxEntries < 0 {
		return fmt.Errorf("graphdim: Cache.MaxEntries must be >= 0 (0 = no cache), got %d", o.MaxEntries)
	}
	if o.MaxBytes < 0 {
		return fmt.Errorf("graphdim: Cache.MaxBytes must be >= 0 (0 = no byte bound), got %d", o.MaxBytes)
	}
	return nil
}

func (o CacheOptions) enabled() bool { return o.MaxEntries > 0 }

// CacheStats is a point-in-time snapshot of a collection's query cache.
type CacheStats struct {
	// Entries and Bytes describe the current contents.
	Entries int
	Bytes   int64
	// Hits and Misses count cache lookups; Misses includes lookups that
	// found a generation-stale entry (also counted in Invalidations).
	Hits, Misses int64
	// Evictions counts entries dropped by the LRU bounds; Invalidations
	// counts entries dropped because a shard generation moved.
	Evictions, Invalidations int64
}

// queryCache is the per-collection LRU. All state is guarded by mu —
// lookups are O(1) map hits and the critical sections are tiny compared
// to even a cached search's JSON encoding, so a sharded RWMutex scheme
// would buy nothing.
type queryCache struct {
	maxEntries int
	maxBytes   int64

	mu      sync.Mutex
	lru     *list.List // front = most recently used
	byKey   map[string]*list.Element
	bytes   int64
	hits    int64
	misses  int64
	evicted int64
	staled  int64
}

// cacheEntry is one cached result. res is treated as immutable: hits
// hand out shallow copies of the SearchResult with a fresh Results
// slice, so a caller mutating its result cannot corrupt the cache.
type cacheEntry struct {
	key  string
	gens []uint64
	res  *SearchResult
	size int64
}

func newQueryCache(opt CacheOptions) *queryCache {
	if !opt.enabled() {
		return nil
	}
	return &queryCache{
		maxEntries: opt.MaxEntries,
		maxBytes:   opt.MaxBytes,
		lru:        list.New(),
		byKey:      make(map[string]*list.Element),
	}
}

// cacheKey canonicalizes a query + effective options into the cache
// key: the scalar knobs that change a result (engine, k, verification
// dials, metric, the NoPrune escape hatch — it alters the Candidates
// work counter) followed by the query graph in the deterministic binary
// codec. Two structurally identical Graph values always collide
// (desired); isomorphic graphs built differently may not (a miss, never
// a wrong answer).
func cacheKey(q *Graph, opt SearchOptions) (string, bool) {
	if opt.Predicate != nil {
		return "", false
	}
	// Canonicalize spellings that cannot change the result, so they share
	// one entry: fields an engine ignores are zeroed, and the verified
	// engine's zero factor becomes the 3 it resolves to.
	switch opt.Engine {
	case EngineMapped:
		opt.VerifyFactor, opt.MaxCandidates, opt.Metric = 0, 0, MetricIndexDefault
	case EngineExact:
		opt.VerifyFactor, opt.MaxCandidates = 0, 0
	case EngineVerified:
		if opt.VerifyFactor == 0 {
			opt.VerifyFactor = 3
		}
	}
	var b bytes.Buffer
	var hdr [binary.MaxVarintLen64*4 + 2]byte
	n := 0
	hdr[n] = byte(opt.Engine)
	n++
	n += binary.PutUvarint(hdr[n:], uint64(opt.K))
	n += binary.PutUvarint(hdr[n:], uint64(opt.VerifyFactor))
	n += binary.PutUvarint(hdr[n:], uint64(opt.MaxCandidates))
	hdr[n] = byte(opt.Metric)<<1 | b2u(opt.NoPrune)
	n++
	b.Write(hdr[:n])
	if err := graph.WriteBinary(&b, q); err != nil {
		return "", false
	}
	// Declarative filters canonicalize — unlike a Predicate closure they
	// do not force a bypass. The count prefix (0 when unfiltered) keeps
	// filtered and unfiltered spellings from ever colliding.
	b.Write(pipeline.CanonFilters(opt.Filters, nil))
	return b.String(), true
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// get returns a copy of the entry under key if it exists and its
// generation vector still matches gens. A stale entry is removed on the
// spot (the "free" invalidation: nothing scans the cache on mutation).
func (c *queryCache) get(key string, gens []uint64) (*SearchResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := e.Value.(*cacheEntry)
	if !slices.Equal(ent.gens, gens) {
		c.removeLocked(e)
		c.staled++
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(e)
	c.hits++
	res := *ent.res
	res.Results = append([]Result(nil), ent.res.Results...)
	return &res, true
}

// put stores a result computed against the given generation vector,
// evicting from the LRU tail until the bounds hold.
func (c *queryCache) put(key string, gens []uint64, res *SearchResult) {
	stored := *res
	stored.Results = append([]Result(nil), res.Results...)
	ent := &cacheEntry{
		key:  key,
		gens: append([]uint64(nil), gens...),
		res:  &stored,
		// Approximate footprint: the key, the result rows, the fence
		// vector, the Matched bitset, and list/map bookkeeping.
		size: int64(len(key)) + int64(len(stored.Results))*16 +
			int64(len(gens))*8 + int64(len(stored.Matched.words))*8 + 96,
	}
	if c.maxBytes > 0 && ent.size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.byKey[key]; ok {
		c.removeLocked(old)
	}
	c.byKey[key] = c.lru.PushFront(ent)
	c.bytes += ent.size
	for c.lru.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		c.removeLocked(c.lru.Back())
		c.evicted++
	}
}

func (c *queryCache) removeLocked(e *list.Element) {
	ent := c.lru.Remove(e).(*cacheEntry)
	delete(c.byKey, ent.key)
	c.bytes -= ent.size
}

func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.lru.Len(),
		Bytes:         c.bytes,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evicted,
		Invalidations: c.staled,
	}
}

// cachedSearch wraps a search with the lookup/store protocol. The
// generation vector is read before the search runs: if a mutation
// commits in between, the stored vector is already stale and the entry
// ages out on first touch — the race costs a cache miss, never a stale
// answer (see shard.bumpGen for the ordering argument).
func (c *queryCache) cachedSearch(key string, gens []uint64, start time.Time,
	search func() (*SearchResult, error)) (*SearchResult, error) {
	if res, ok := c.get(key, gens); ok {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	res, err := search()
	if err != nil {
		return nil, err
	}
	c.put(key, gens, res)
	return res, nil
}
