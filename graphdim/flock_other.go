//go:build !unix

package graphdim

import "os"

// flockExclusive is a no-op on platforms without flock semantics: the
// single-owner guard degrades to unenforced there (an O_EXCL lock file
// would strand after a kill, which is worse than no lock). The library
// still builds and runs; the operator owns the one-process discipline.
func flockExclusive(*os.File) error { return nil }
