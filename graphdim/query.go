package graphdim

import (
	"context"
	"time"

	"repro/internal/pipeline"
)

// Query runs a composable pipeline — filter stages, an optional
// similarity stage, aggregate stages — against the collection in one
// call (see internal/pipeline for the stage model).
//
// Pipelines with a similarity stage run it through the collection's
// regular Search path: declarative filters travel as SearchOptions.
// Filters, so they push down into posting intersections inside each
// shard and the whole query stays eligible for the generation-fenced
// result cache; aggregation then folds the globally merged top-k.
// Pipelines without a similarity stage are scans: every shard compiles
// the filters against its own snapshot, streams the matching graphs
// through a partial aggregator, and the partials merge associatively
// into the single answer — matched rows are never materialized.
//
// Errors caused by the pipeline itself (a bad query graph, a dimension
// predicate out of range) are *pipeline.StageError values naming the
// offending stage.
func (c *Collection) Query(ctx context.Context, p *pipeline.Pipeline) (*pipeline.Result, error) {
	start := time.Now()
	pl, err := p.Plan()
	if err != nil {
		return nil, err
	}
	// Dimension predicates are range-checked up front against the shared
	// build-time dimension set so the wire surface can reject them as
	// the client's fault; the j-th filter is the j-th stage (filters are
	// the only stages allowed before everything else).
	dims := c.shards[0].state.Load().idx.Dimensions()
	for j, f := range pl.Filters {
		if err := f.CheckDims(len(dims)); err != nil {
			return nil, &pipeline.StageError{Index: j, Name: "filter", Err: err}
		}
	}

	var res *pipeline.Result
	if pl.Search != nil {
		res, err = c.querySearch(ctx, pl)
	} else {
		res, err = c.queryScan(ctx, pl)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.PushedPredicates, res.Stats.FallbackPredicates =
		pipeline.AnalyzeFilters(pl.Filters, true, true)
	res.Stats.ElapsedMS = msSince(start)
	return res, nil
}

// querySearch runs a pipeline whose row source is the similarity stage.
func (c *Collection) querySearch(ctx context.Context, pl *pipeline.Plan) (*pipeline.Result, error) {
	ps := pl.Search
	q, err := ps.QueryGraph()
	if err != nil {
		return nil, &pipeline.StageError{Index: len(pl.Filters), Name: "search", Err: err}
	}
	// NoDefaults: the stage spells its dials completely, so a
	// collection-default Predicate closure cannot sneak in and spoil
	// cacheability under the operator's feet.
	opt := SearchOptions{
		K:             ps.K,
		VerifyFactor:  ps.VerifyFactor,
		MaxCandidates: ps.MaxCandidates,
		NoPrune:       ps.NoPrune,
		Filters:       pl.Filters,
		NoDefaults:    true,
	}
	if ps.Engine != "" {
		if opt.Engine, err = ParseEngine(ps.Engine); err != nil {
			return nil, &pipeline.StageError{Index: len(pl.Filters), Name: "search", Err: err}
		}
	}
	switch ps.Metric {
	case "delta1":
		opt.Metric = MetricDelta1
	case "delta2":
		opt.Metric = MetricDelta2
	}

	t0 := time.Now()
	sr, err := c.Search(ctx, q, opt)
	if err != nil {
		return nil, err
	}
	searchMS := msSince(t0)

	t1 := time.Now()
	agg := pipeline.NewAggregator(pl)
	needG := pl.NeedsGraphs()
	engine := sr.Engine.String()
	for _, r := range sr.Results {
		row := pipeline.Row{ID: r.ID, Distance: r.Distance, HasDistance: true, Engine: engine}
		if needG {
			if g, ok := c.Graph(r.ID); ok {
				row.G = g
			}
		}
		agg.Add(row)
	}
	res := agg.Finish()
	res.Stats.Matched = int64(len(sr.Results))
	res.Stats.Candidates = int64(sr.Candidates)
	res.Stats.Engine = engine
	res.Stats.Stages = []pipeline.StageTiming{
		{Stage: "search", ElapsedMS: searchMS},
		{Stage: "aggregate", ElapsedMS: msSince(t1)},
	}
	return res, nil
}

// queryScan runs a searchless pipeline: a filtered enumeration of the
// database, fanned out one partial aggregator per shard and merged.
func (c *Collection) queryScan(ctx context.Context, pl *pipeline.Plan) (*pipeline.Result, error) {
	t0 := time.Now()
	aggs := make([]*pipeline.Aggregator, len(c.shards))
	cands := make([]int64, len(c.shards))
	errs := make([]error, len(c.shards))
	_ = c.store.budget.ForContext(ctx, len(c.shards), func(i int) {
		aggs[i], cands[i], errs[i] = c.scanShard(ctx, i, pl)
	})
	for i := range errs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if aggs[i] == nil { // fan-out cut short by cancellation
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	scanMS := msSince(t0)

	t1 := time.Now()
	total := aggs[0]
	candidates := cands[0]
	for _, a := range aggs[1:] {
		total.Merge(a)
	}
	for _, cd := range cands[1:] {
		if candidates < 0 || cd < 0 {
			candidates = -1
		} else {
			candidates += cd
		}
	}
	res := total.Finish()
	res.Stats.Matched = total.Matched()
	res.Stats.Candidates = candidates
	res.Stats.Stages = []pipeline.StageTiming{
		{Stage: "scan", ElapsedMS: scanMS},
		{Stage: "aggregate", ElapsedMS: msSince(t1)},
	}
	return res, nil
}

// scanShardStride bounds how long a shard scan runs between ctx checks.
const scanShardStride = 4096

// scanShard streams one shard's matching graphs through a partial
// aggregator. The reported candidates count is the pushdown
// intersection size, -1 when the filters did not restrict the scan.
func (c *Collection) scanShard(ctx context.Context, i int, pl *pipeline.Plan) (*pipeline.Aggregator, int64, error) {
	st := c.shards[i].state.Load()
	s := st.idx.snap.Load()
	comp, err := pipeline.CompileFilters(pl.Filters, s.catalog())
	if err != nil {
		return nil, 0, err
	}
	agg := pipeline.NewAggregator(pl)
	needG := pl.NeedsGraphs()
	// The table bound keeps (snapshot, globals) consistent if an Add
	// publishes between the two loads, mirroring searchShards.
	m := len(s.db)
	if len(st.globals) < m {
		m = len(st.globals)
	}
	emit := func(id int) {
		row := pipeline.Row{ID: st.globals[id]}
		if needG {
			row.G = s.graph(id)
		}
		agg.Add(row)
	}
	step := 0
	check := func() error {
		if step%scanShardStride == 0 {
			return ctx.Err()
		}
		return nil
	}
	if comp.Restricted {
		for _, id32 := range comp.IDs {
			if err := check(); err != nil {
				return nil, 0, err
			}
			step++
			id := int(id32)
			if id >= m || s.dead[id] {
				continue
			}
			if comp.Residual != nil && !comp.Residual(id, s.graph(id)) {
				continue
			}
			emit(id)
		}
		return agg, int64(len(comp.IDs)), nil
	}
	for id := 0; id < m; id++ {
		if err := check(); err != nil {
			return nil, 0, err
		}
		step++
		if s.dead[id] {
			continue
		}
		if comp.Residual != nil && !comp.Residual(id, s.graph(id)) {
			continue
		}
		emit(id)
	}
	return agg, -1, nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}
