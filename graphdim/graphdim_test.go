package graphdim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func buildSmall(t *testing.T, algo Algorithm) (*Index, []*Graph) {
	t.Helper()
	db := dataset.Chemical(dataset.ChemConfig{N: 40, MinVertices: 8, MaxVertices: 14, Seed: 5})
	idx, err := Build(db, Options{
		Dimensions: 20,
		Tau:        0.1,
		MCSBudget:  3000,
		Algorithm:  algo,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx, db
}

func TestBuildAndQueryDSPM(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	if len(idx.Dimensions()) == 0 || len(idx.Dimensions()) > 20 {
		t.Fatalf("dimension count %d out of range", len(idx.Dimensions()))
	}
	if len(idx.Weights()) != len(idx.Dimensions()) {
		t.Fatalf("weights not aligned with dimensions")
	}
	if idx.Size() != len(db) {
		t.Fatalf("Size = %d, want %d", idx.Size(), len(db))
	}
	// Self query: graph 7 must be its own nearest neighbour (distance 0).
	res, err := idx.TopK(db[7], 3)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if res[0].Distance != 0 {
		t.Errorf("self query distance %v, want 0", res[0].Distance)
	}
	found := false
	for _, r := range res {
		if r.ID == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("self graph not in top-3 (ties possible, but id-tiebreak should include it): %v", res)
	}
}

func TestBuildAndQueryDSPMap(t *testing.T) {
	idx, db := buildSmall(t, DSPMap)
	res, err := idx.TopK(db[3], 5)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Distance < res[i-1].Distance {
			t.Errorf("results not sorted by distance")
		}
	}
}

func TestTopKExactAgreesOnSelf(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	res, err := idx.TopKExact(db[2], 2)
	if err != nil {
		t.Fatalf("TopKExact: %v", err)
	}
	if res[0].ID != 2 || res[0].Distance != 0 {
		t.Errorf("exact self query should return itself first, got %v", res[0])
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Errorf("empty database must error")
	}
	db := dataset.Chemical(dataset.ChemConfig{N: 1, Seed: 1})
	if _, err := Build(db, Options{}); err == nil {
		t.Errorf("single graph must error")
	}
	db = dataset.Chemical(dataset.ChemConfig{N: 5, Seed: 1})
	if _, err := Build(db, Options{Algorithm: Algorithm(9)}); err == nil {
		t.Errorf("unknown algorithm must error")
	}
}

func TestQueryValidation(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	if _, err := idx.TopK(nil, 3); err == nil {
		t.Errorf("nil query must error")
	}
	if _, err := idx.TopK(db[0], 0); err == nil {
		t.Errorf("k=0 must error")
	}
	if _, err := idx.TopKExact(nil, 3); err == nil {
		t.Errorf("nil exact query must error")
	}
	if _, err := idx.TopKExact(db[0], -1); err == nil {
		t.Errorf("negative k must error")
	}
	res, err := idx.TopK(db[0], 10_000)
	if err != nil {
		t.Fatalf("huge k: %v", err)
	}
	if len(res) != idx.Size() {
		t.Errorf("huge k should clamp to database size")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if loaded.Size() != idx.Size() || len(loaded.Dimensions()) != len(idx.Dimensions()) {
		t.Fatalf("round trip changed shapes")
	}
	// Same query must produce the same ranking.
	a, _ := idx.TopK(db[9], 5)
	b, _ := loaded.TopK(db[9], 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip changed query results: %v vs %v", a, b)
		}
	}
}

func TestReadIndexRejectsCorrupt(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99}`,
		`{"version": 1, "db": ["t # 0\nv 0 1\n"], "vectors": []}`,
		`{"version": 1, "features": ["t # 0\nv 0 1\n"], "weights": []}`,
		`{"version": 1, "features": ["garbage"], "weights": [1]}`,
		`{"version": 1, "features": ["t # 0\nv 0 1\n"], "weights": [1], "db": ["t # 0\nv 0 1\n"], "vectors": [[5]]}`,
	}
	for i, c := range cases {
		if _, err := ReadIndex(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt index accepted", i)
		}
	}
}

func TestContainsWrapper(t *testing.T) {
	target := NewGraph(3)
	target.MustAddEdge(0, 1, 0)
	target.MustAddEdge(1, 2, 0)
	pattern := NewGraph(2)
	pattern.MustAddEdge(0, 1, 0)
	if !Contains(target, pattern) {
		t.Errorf("edge pattern should be contained in path")
	}
}

func TestReadWriteGraphs(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 4, Seed: 2})
	var buf bytes.Buffer
	if err := WriteGraphs(&buf, db); err != nil {
		t.Fatalf("WriteGraphs: %v", err)
	}
	back, err := ReadGraphs(&buf)
	if err != nil {
		t.Fatalf("ReadGraphs: %v", err)
	}
	if len(back) != len(db) {
		t.Fatalf("round trip count mismatch")
	}
	for i := range db {
		if db[i].N() != back[i].N() || db[i].M() != back[i].M() {
			t.Fatalf("graph %d changed shape", i)
		}
	}
}
