package graphdim_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/graphdim"
	"repro/internal/dataset"
)

func buildSmall(t *testing.T, opt graphdim.Options) (*graphdim.Index, []*graphdim.Graph) {
	t.Helper()
	db := dataset.Chemical(dataset.ChemConfig{N: 30, MinVertices: 8, MaxVertices: 12, Seed: 11})
	idx, err := graphdim.Build(db, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx, db
}

// TestConcurrentReaders hammers a single Index from many goroutines mixing
// TopK and TopKBatch — the contract documented on Index, checked under
// -race in CI. Every goroutine must also observe the same answers a
// sequential caller gets.
func TestConcurrentReaders(t *testing.T) {
	idx, db := buildSmall(t, graphdim.Options{Dimensions: 15, Tau: 0.15, MCSBudget: 2000})

	want := make([][]graphdim.Result, 5)
	for i := range want {
		r, err := idx.TopK(db[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	batch := db[:5]

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				if w%2 == 0 {
					q := (w + rep) % 5
					got, err := idx.TopK(db[q], 3)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, want[q]) {
						t.Errorf("worker %d: TopK(db[%d]) diverged under concurrency", w, q)
						return
					}
				} else {
					got, err := idx.TopKBatch(batch, 3)
					if err != nil {
						errs <- err
						return
					}
					for q := range got {
						if !reflect.DeepEqual(got[q], want[q]) {
							t.Errorf("worker %d: TopKBatch query %d diverged under concurrency", w, q)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBuildDeterministicAcrossWorkers asserts the core contract of the
// parallel build: Workers is a performance knob, not a semantics knob.
// Identical inputs must select identical dimensions with identical
// weights at any parallelism.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	for _, algo := range []graphdim.Algorithm{graphdim.DSPM, graphdim.DSPMap} {
		base := graphdim.Options{
			Dimensions: 15,
			Tau:        0.15,
			MCSBudget:  2000,
			Algorithm:  algo,
			Seed:       3,
		}
		seqOpt, parOpt := base, base
		seqOpt.Workers = 1
		parOpt.Workers = 8
		seq, _ := buildSmall(t, seqOpt)
		par, _ := buildSmall(t, parOpt)

		if !reflect.DeepEqual(graphsToStrings(seq.Dimensions()), graphsToStrings(par.Dimensions())) {
			t.Fatalf("algo %v: Workers=1 and Workers=8 selected different dimensions", algo)
		}
		if !reflect.DeepEqual(seq.Weights(), par.Weights()) {
			t.Fatalf("algo %v: Workers=1 and Workers=8 produced different weights", algo)
		}
	}
}

func graphsToStrings(gs []*graphdim.Graph) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.String()
	}
	return out
}

// TestTopKBatchMatchesTopK checks batch answers equal one-at-a-time
// answers and that validation rejects bad batches atomically.
func TestTopKBatchMatchesTopK(t *testing.T) {
	idx, db := buildSmall(t, graphdim.Options{Dimensions: 15, Tau: 0.15, MCSBudget: 2000})

	queries := db[:8]
	batch, err := idx.TopKBatch(queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d result lists for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		single, err := idx.TopK(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], single) {
			t.Fatalf("query %d: batch and single answers differ", i)
		}
	}

	if _, err := idx.TopKBatch(queries, 0); err == nil {
		t.Fatal("TopKBatch accepted k=0")
	}
	if _, err := idx.TopKBatch([]*graphdim.Graph{db[0], nil}, 3); err == nil {
		t.Fatal("TopKBatch accepted a nil query")
	}
	empty, err := idx.TopKBatch(nil, 3)
	if err != nil || len(empty) != 0 {
		t.Fatalf("TopKBatch(nil) = %v, %v; want empty, nil", empty, err)
	}
}
