// Package graphdim is the public API of this repository: an online graph
// search library that selects a small structural dimension — a set of
// frequent subgraphs — from a graph database so that top-k similarity
// queries can run in a multidimensional vector space instead of computing
// NP-hard maximum-common-subgraph dissimilarities per query.
//
// It implements the DS-preserved mapping of Zhu, Yu and Qin, "Leveraging
// Graph Dimensions in Online Graph Search" (PVLDB 8(1), 2014): the DSPM
// dimension-selection algorithm, its scalable approximation DSPMap, the
// gSpan miner that produces the candidate subgraphs, the VF2 matcher that
// maps unseen queries into the space, and exact MCS-based search for
// ground truth.
//
// Typical use:
//
//	db, _ := graphdim.ReadGraphs(f)
//	idx, _ := graphdim.Build(db, graphdim.Options{Dimensions: 200})
//	res, _ := idx.Search(ctx, query, graphdim.SearchOptions{K: 10})
//
// Search unifies the three query engines — the paper's mapped-space scan,
// the filter-and-verify hybrid, and exact MCS search — behind per-query
// options (engine, verification factor, metric override, result
// predicate) and honours context cancellation. BuildContext parallelizes
// the offline path (mining, the pairwise MCS matrix, vector
// materialization) across Options.Workers goroutines, reports progress
// per stage, and is cancellable.
//
// The paper's DS-preserved mapping places unseen graphs into the fixed
// dimension space with a cheap VF2 pass, so an index can also grow
// online: Add maps new graphs onto the existing dimensions, Remove
// tombstones graphs, and StaleRatio tells operators when enough of the
// database postdates the dimension selection that a full re-Build is
// warranted. Readers are never blocked — updates swap an immutable
// snapshot. WriteTo/ReadIndex persist an index in a compact versioned
// binary format (v1 JSON files remain readable) so query servers
// (cmd/gserve) can load it without re-mining or re-running DSPM.
//
// Above the single index, Store manages named collections sharded across
// parallel indexes: graphs place onto shards by a fixed hash of their
// global id, Search fans out and merges per-shard top-k heaps into one
// globally ranked result (exactly the unsharded ranking — see
// Collection.Search), Add and Save/OpenStore parallelize per shard, and a
// background compactor rebuilds any shard whose StaleRatio crosses a
// policy threshold while readers keep serving.
//
// Two accelerators keep the hot path sublinear without changing any
// ranked result: per-dimension posting lists prune the mapped-space
// scan to the graphs sharing a dimension with the query (an adaptive
// cost model falls back to the flat scan for dense queries; see
// SearchOptions.NoPrune), and collections built with CacheOptions serve
// repeat queries from an LRU fenced by per-shard generation counters,
// so any committed mutation or compaction invalidates affected entries
// for free (see Index.Generation).
package graphdim

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gspan"
	"repro/internal/mcs"
	"repro/internal/pool"
	"repro/internal/posting"
	"repro/internal/subiso"
	"repro/internal/vecspace"
)

// Graph is an undirected labeled simple graph (vertices and edges carry
// integer labels). Construct with NewGraph / AddVertex / AddEdge or parse
// with ReadGraphs.
type Graph = graph.Graph

// Label is a vertex or edge label.
type Label = graph.Label

// Edge is a normalized undirected edge.
type Edge = graph.Edge

// NewGraph returns an empty graph with n vertices labeled 0.
func NewGraph(n int) *Graph { return graph.New(n) }

// ReadGraphs parses a sequence of graphs in the standard text format
// ("t # id" / "v id label" / "e u v label").
func ReadGraphs(r io.Reader) ([]*Graph, error) { return graph.ReadAll(r) }

// WriteGraphs writes graphs in the same text format.
func WriteGraphs(w io.Writer, gs []*Graph) error { return graph.WriteAll(w, gs) }

// Metric selects the MCS-based graph dissimilarity.
type Metric = mcs.Metric

// Dissimilarity metrics (Eq. 1 and Eq. 2 of the paper).
const (
	// Delta1 normalizes by the larger graph (Bunke–Shearer).
	Delta1 = mcs.Delta1
	// Delta2 normalizes by the average size; the paper's default.
	Delta2 = mcs.Delta2
)

// Algorithm selects the dimension-computation algorithm.
type Algorithm int

const (
	// DSPM is the exact iterative algorithm (Section 5.1); it needs the
	// full pairwise dissimilarity matrix — O(n²) MCS computations.
	DSPM Algorithm = iota
	// DSPMap is the partition-based approximation (Section 5.2); its cost
	// grows linearly with the database size.
	DSPMap
)

// BuildStage identifies a stage of the offline build pipeline, in
// execution order.
type BuildStage int

const (
	// StageMining is frequent-subgraph candidate mining (gSpan).
	StageMining BuildStage = iota
	// StageMatrix is the pairwise MCS dissimilarity matrix (DSPM only —
	// DSPMap evaluates dissimilarities lazily inside partitions).
	StageMatrix
	// StageDSPM is the dimension computation (DSPM iterations or the
	// DSPMap partition/combine recursion).
	StageDSPM
	// StageVectors is the materialization of the database's binary
	// vectors over the selected dimensions.
	StageVectors
)

// String implements fmt.Stringer.
func (s BuildStage) String() string {
	switch s {
	case StageMining:
		return "mining"
	case StageMatrix:
		return "matrix"
	case StageDSPM:
		return "dspm"
	case StageVectors:
		return "vectors"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Options configures Build. The zero value of every field selects the
// paper's default (noted per field); Validate rejects values outside a
// field's domain instead of silently substituting the default.
type Options struct {
	// Dimensions is p, the number of subgraph dimensions to select.
	// Zero means 200 (a mid-range value from the paper's sweep).
	Dimensions int
	// Tau is the minimum-support ratio for frequent subgraph mining, in
	// (0, 1]; zero means 0.05, the paper's setting.
	Tau float64
	// MaxPatternEdges caps mined subgraph size; zero means 6.
	MaxPatternEdges int
	// MaxCandidates caps the mined candidate set m; zero means unlimited.
	MaxCandidates int
	// Metric is the graph dissimilarity; default Delta2.
	Metric Metric
	// Algorithm picks DSPM (default) or DSPMap.
	Algorithm Algorithm
	// PartitionSize is DSPMap's b; zero means max(20, n/20).
	PartitionSize int
	// MCSBudget bounds each MCS search in branch-and-bound nodes; zero
	// means 200000 (effectively exact for molecule-sized graphs).
	MCSBudget int64
	// Seed drives DSPMap's random choices.
	Seed int64
	// Iterations caps DSPM's majorization loop; zero means 30.
	Iterations int
	// Workers bounds the worker pools used by the offline build path
	// (gSpan mining, the DSPM pairwise MCS matrix, vector
	// materialization) and inherited by the index for batch fan-out.
	// Zero or negative means one worker per CPU. Build output is
	// identical for every worker count — parallelism changes only
	// wall-clock time. Note the DSPMap algorithm evaluates its
	// dissimilarities lazily inside sequential partition passes, so
	// Workers accelerates only its mining and vector stages; the
	// MCS-dominated stage Workers speeds up most is DSPM's matrix.
	Workers int
	// Progress, when non-nil, is called as the build advances: at the
	// start of each stage with (stage, 0, total) and at its end with
	// (stage, total, total), plus per-unit updates where the stage has
	// natural units (matrix rows, DSPM iterations). total is 0 when the
	// stage's size is unknown up front (mining, DSPMap dimension
	// computation). Calls are serialized; the callback must be fast, as
	// it runs on the build path.
	Progress func(stage BuildStage, done, total int)
}

// Validate reports whether every option is inside its domain. Zero values
// are always valid ("use the paper default"); out-of-domain values — a
// negative dimension count, Tau outside (0, 1], a negative budget — are
// rejected rather than silently replaced.
func (o Options) Validate() error {
	if o.Dimensions < 0 {
		return fmt.Errorf("graphdim: Dimensions must be >= 0 (0 = default 200), got %d", o.Dimensions)
	}
	// Negated comparison so NaN (for which every comparison is false)
	// is rejected too.
	if !(o.Tau >= 0 && o.Tau <= 1) {
		return fmt.Errorf("graphdim: Tau must be in (0, 1] (0 = default 0.05), got %v", o.Tau)
	}
	if o.MaxPatternEdges < 0 {
		return fmt.Errorf("graphdim: MaxPatternEdges must be >= 0 (0 = default 6), got %d", o.MaxPatternEdges)
	}
	if o.MaxCandidates < 0 {
		return fmt.Errorf("graphdim: MaxCandidates must be >= 0 (0 = unlimited), got %d", o.MaxCandidates)
	}
	if o.Metric != Delta1 && o.Metric != Delta2 {
		return fmt.Errorf("graphdim: unknown metric %d", int(o.Metric))
	}
	if o.Algorithm != DSPM && o.Algorithm != DSPMap {
		return fmt.Errorf("graphdim: unknown algorithm %d", int(o.Algorithm))
	}
	if o.PartitionSize < 0 {
		return fmt.Errorf("graphdim: PartitionSize must be >= 0 (0 = default max(20, n/20)), got %d", o.PartitionSize)
	}
	if o.MCSBudget < 0 {
		return fmt.Errorf("graphdim: MCSBudget must be >= 0 (0 = default 200000), got %d", o.MCSBudget)
	}
	if o.Iterations < 0 {
		return fmt.Errorf("graphdim: Iterations must be >= 0 (0 = default 30), got %d", o.Iterations)
	}
	return nil
}

func (o Options) withDefaults(n int) Options {
	if o.Dimensions == 0 {
		o.Dimensions = 200
	}
	if o.Tau == 0 {
		o.Tau = 0.05
	}
	if o.MaxPatternEdges == 0 {
		o.MaxPatternEdges = 6
	}
	if o.MCSBudget == 0 {
		o.MCSBudget = 200000
	}
	if o.PartitionSize == 0 {
		o.PartitionSize = n / 20
		if o.PartitionSize < 20 {
			o.PartitionSize = 20
		}
	}
	o.Workers = pool.DefaultWorkers(o.Workers)
	return o
}

// snapshot is the immutable state a query reads: the database graphs,
// their binary vectors over the index dimensions, and the tombstone set.
// Updates (Add/Remove) never mutate a published snapshot — they copy,
// then atomically swap — so any number of readers proceed lock-free while
// writers are serialized by Index.mu.
type snapshot struct {
	// db and vectors always span every id slot, but a snapshot served
	// from a mapped segment keeps nil placeholders below seg's size:
	// vectors live packed in the mapping (the block below), and graph
	// payloads are faulted in on demand through graph/graphAt. Ids added
	// after the segment was written (WAL replay, Add) overlay as ordinary
	// heap values. Heap-mode snapshots (seg == nil) have no nils.
	db        []*Graph
	vectors   []*vecspace.BitVector
	dead      []bool
	deadCount int
	// seg, when non-nil, is the mapped segment the base of this snapshot
	// is served from — shared, with its decoded-graph cache, across every
	// snapshot descended from the same open.
	seg *segSource
	// post holds the per-dimension posting lists and ones buckets over
	// vectors — the candidate-pruning accelerator internal/posting
	// implements. It always covers exactly the ids of vectors
	// (tombstoned included; the scan filters those), and like the rest
	// of the snapshot it is immutable to readers: Add extends it via
	// posting.Append under the writer lock.
	post *posting.Index
	// labels holds the per-label inverted lists over db — the pushdown
	// accelerator for declarative label filters (internal/pipeline).
	// Built lazily by the first filtered query that needs it
	// (labelIndex), because building it reads every graph — which on a
	// mapped snapshot would fault in the whole corpus at open. Once
	// built it is carried copy-on-write like post: Add extends it under
	// the writer lock, an unbuilt nil just stays lazy.
	labels atomic.Pointer[posting.LabelIndex]
	// baseN is how many of the graphs were part of the database the
	// dimension selection (Build) or persisted file saw; ids >= baseN
	// entered through Add. baseDead counts the tombstoned ids below
	// baseN. StaleRatio derives from both.
	baseN    int
	baseDead int
	// block caches the SoA form of vectors the batched scan kernel
	// streams (vecspace.Block). It is built lazily by the first scan
	// that needs it — soaBlock — and carried copy-on-write through
	// Add/Remove like post and labels: Add extends an already-built
	// block via Block.Append under the writer lock, Remove shares it
	// unchanged (tombstones are filtered by alive, not block events).
	// A snapshot whose block was never demanded swaps nil forward and
	// the next scan packs from scratch.
	block atomic.Pointer[vecspace.Block]
}

// soaBlock returns the snapshot's SoA scan block, packing the vectors
// on first demand. Racing first readers may each pack; the content is
// deterministic and CompareAndSwap publishes exactly one.
func (s *snapshot) soaBlock(p int) *vecspace.Block {
	if b := s.block.Load(); b != nil {
		return b
	}
	b := vecspace.Pack(s.vectors, p)
	if s.block.CompareAndSwap(nil, b) {
		return b
	}
	return s.block.Load()
}

// alive adapts the snapshot's tombstones plus an optional caller
// predicate into the scan filter the query engines take. Predicates
// resolve graphs through graph(), so on a mapped snapshot a predicate
// faults in only the payloads of ids that survive the tombstone check.
func (s *snapshot) alive(pred func(id int, g *Graph) bool) func(int) bool {
	if s.deadCount == 0 && pred == nil {
		return nil
	}
	return func(id int) bool {
		return !s.dead[id] && (pred == nil || pred(id, s.graph(id)))
	}
}

// graph returns graph id, faulting it from the mapped segment on first
// demand. It is the infallible accessor for paths whose signatures
// cannot carry an error (predicates, accessors): a payload that cannot
// be decoded — possible only when the segment file was corrupted after
// its checkpoint, since open validates the trailer — panics with a
// descriptive message rather than returning nil into user code. The
// engines use graphAt and surface the error instead.
func (s *snapshot) graph(id int) *Graph {
	if g := s.db[id]; g != nil || s.seg == nil {
		return g
	}
	g, err := s.seg.graphAt(id)
	if err != nil {
		panic(fmt.Sprintf("graphdim: %v", err))
	}
	return g
}

// graphAt is graph with the decode error surfaced — the form the
// verified and exact engines thread through topk.GraphAt so a corrupt
// mapped payload fails the query, not the process.
func (s *snapshot) graphAt(id int) (*Graph, error) {
	if g := s.db[id]; g != nil || s.seg == nil {
		return g, nil
	}
	return s.seg.graphAt(id)
}

// vectorAt returns id's vector, unpacking it from the SoA block when the
// snapshot serves vectors from a mapped segment (the block is always
// materialized there — it IS the mapping).
func (s *snapshot) vectorAt(id int) *vecspace.BitVector {
	if v := s.vectors[id]; v != nil {
		return v
	}
	return s.block.Load().Vector(id)
}

// labelIndex returns the label pushdown index, building it on first
// demand. The build reads every graph — on a mapped snapshot this is
// the one operation that faults in the whole corpus, which is why it is
// deferred to the first query with a label filter rather than done at
// open. Racing builders may duplicate work; CompareAndSwap publishes
// exactly one, and Add keeps extending whichever one won.
func (s *snapshot) labelIndex() *posting.LabelIndex {
	if l := s.labels.Load(); l != nil {
		return l
	}
	gs := s.db
	if s.seg != nil {
		gs = make([]*Graph, len(s.db))
		for i := range gs {
			gs[i] = s.graph(i)
		}
	}
	l := posting.LabelsFromGraphs(gs)
	if s.labels.CompareAndSwap(nil, l) {
		return l
	}
	return s.labels.Load()
}

// Index is a built graph-dimension index over a database: the selected
// subgraph dimensions, the database graphs, and their binary vectors. It
// answers top-k similarity queries with a feature-matching step (VF2)
// plus a scan of the vector space, optionally re-ranked by exact MCS
// verification (see Search).
//
// An Index is safe for any number of concurrent readers and writers
// without external locking: queries and accessors read an immutable
// snapshot, and Add/Remove publish a new snapshot atomically
// (copy-on-write), so long-running scans keep seeing the state they
// started on. The dimension set is fixed at Build time and never changes;
// only the database below it grows and shrinks.
type Index struct {
	features []*Graph
	mapper   *vecspace.Mapper
	weights  []float64
	metric   Metric
	mcsOpt   mcs.Options
	workers  int // batch fan-out bound; always >= 1

	mu   sync.Mutex // serializes Add/Remove snapshot swaps
	snap atomic.Pointer[snapshot]
	// gen counts committed mutations: Add and Remove bump it once, after
	// publishing their snapshot and before returning. Generation-keyed
	// caches use it as a fence — see Generation.
	gen atomic.Uint64
}

func newIndex(features []*Graph, weights []float64, metric Metric, mcsOpt mcs.Options, workers int, snap *snapshot) *Index {
	ix := &Index{
		features: features,
		mapper:   vecspace.NewMapper(features),
		weights:  weights,
		metric:   metric,
		mcsOpt:   mcsOpt,
		workers:  workers,
	}
	if snap.post == nil {
		snap.post = posting.FromVectors(snap.vectors, len(features))
	}
	ix.snap.Store(snap)
	return ix
}

// Build mines frequent subgraphs from db, selects the dimension set with
// DSPM or DSPMap, and maps the database into the resulting space. It is
// BuildContext with a background context.
func Build(db []*Graph, opt Options) (*Index, error) {
	return BuildContext(context.Background(), db, opt)
}

// BuildContext is Build with cancellation: every stage of the offline
// pipeline (mining, the pairwise MCS matrix, the DSPM/DSPMap dimension
// computation, vector materialization) checks ctx and a cancelled build
// returns (nil, ctx.Err()) promptly instead of running to completion.
func BuildContext(ctx context.Context, db []*Graph, opt Options) (*Index, error) {
	if len(db) < 2 {
		return nil, fmt.Errorf("graphdim: need at least 2 graphs, got %d", len(db))
	}
	for i, g := range db {
		if g == nil {
			return nil, fmt.Errorf("graphdim: nil graph at index %d", i)
		}
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(len(db))
	progress := opt.Progress
	report := func(stage BuildStage, done, total int) {
		if progress != nil {
			progress(stage, done, total)
		}
	}

	report(StageMining, 0, 0)
	feats, err := gspan.MineContext(ctx, db, gspan.Options{
		MinSupport:  gspan.MinSupportRatio(opt.Tau, len(db)),
		MaxEdges:    opt.MaxPatternEdges,
		MaxFeatures: opt.MaxCandidates,
		Workers:     opt.Workers,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("graphdim: mining candidates: %w", err)
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("graphdim: no frequent subgraphs at tau=%v", opt.Tau)
	}
	report(StageMining, len(feats), len(feats))

	idx := vecspace.BuildIndex(len(db), feats)
	p := opt.Dimensions
	if p > idx.P {
		p = idx.P
	}

	mcsOpt := mcs.Options{MaxNodes: opt.MCSBudget}
	var res *core.Result
	switch opt.Algorithm {
	case DSPM:
		report(StageMatrix, 0, len(db))
		delta, err := opt.Metric.MatrixContext(ctx, db, mcsOpt, opt.Workers, func(done, total int) {
			report(StageMatrix, done, total)
		})
		if err != nil {
			return nil, err
		}
		iters := opt.Iterations
		if iters == 0 {
			iters = core.DefaultMaxIter
		}
		report(StageDSPM, 0, iters)
		res, err = core.DSPMContext(ctx, idx, delta, core.Config{
			P:       p,
			MaxIter: opt.Iterations,
			OnIteration: func(k int, _ float64) {
				report(StageDSPM, k, iters)
			},
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("graphdim: dimension computation: %w", err)
		}
		// iters was the cap; the run may converge earlier. Close the
		// stage with the iterations actually executed so done == total.
		report(StageDSPM, res.Iterations, res.Iterations)
	case DSPMap:
		dis := func(i, j int) float64 {
			return opt.Metric.DissimilarityBudget(db[i], db[j], mcsOpt)
		}
		report(StageDSPM, 0, 0)
		res, err = core.DSPMapContext(ctx, idx, dis, core.MapConfig{
			Core: core.Config{P: p, MaxIter: opt.Iterations},
			B:    opt.PartitionSize,
			Seed: opt.Seed,
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("graphdim: dimension computation: %w", err)
		}
		report(StageDSPM, 1, 1)
	}

	features := make([]*Graph, len(res.Selected))
	weights := make([]float64, len(res.Selected))
	for i, r := range res.Selected {
		features[i] = feats[r].Graph
		weights[i] = res.C[r]
	}
	sub := idx.Subindex(res.Selected)
	report(StageVectors, 0, sub.N)
	vectors := make([]*vecspace.BitVector, sub.N)
	if err := pool.ForContext(ctx, opt.Workers, sub.N, func(i int) {
		vectors[i] = sub.Vector(i)
	}); err != nil {
		return nil, err
	}
	report(StageVectors, sub.N, sub.N)

	return newIndex(features, weights, opt.Metric, mcsOpt, opt.Workers, &snapshot{
		db:      db,
		vectors: vectors,
		dead:    make([]bool, len(db)),
		baseN:   len(db),
	}), nil
}

// Dimensions returns the selected subgraph dimensions, most informative
// first.
func (ix *Index) Dimensions() []*Graph { return ix.features }

// Weights returns the DSPM weight of each dimension, aligned with
// Dimensions.
func (ix *Index) Weights() []float64 { return ix.weights }

// Size returns the number of live (searchable) graphs: every id ever
// assigned, minus the graphs tombstoned by Remove.
func (ix *Index) Size() int {
	s := ix.snap.Load()
	return len(s.db) - s.deadCount
}

// TotalGraphs returns the number of id slots — live graphs plus
// tombstones. Ids are stable for the lifetime of an index (and across
// persistence), so valid ids are exactly [0, TotalGraphs()).
func (ix *Index) TotalGraphs() int { return len(ix.snap.Load().db) }

// Graph returns the graph with id i. Removed graphs remain addressable so
// historical results can still be resolved; use IsRemoved to check. On a
// memory-mapped index the payload is decoded from the segment on first
// access.
func (ix *Index) Graph(i int) *Graph { return ix.snap.Load().graph(i) }

// IsRemoved reports whether id i has been tombstoned by Remove.
func (ix *Index) IsRemoved(i int) bool { return ix.snap.Load().dead[i] }

// Generation returns a monotonic counter of committed mutations: it
// starts at 0 and moves (by at least one) after every Add or Remove
// publishes and before that call returns. Two equal Generation reads
// with an operation between them therefore guarantee the operation saw
// every mutation committed before the first read — the fence the
// query-result cache keys on (see CacheOptions). The counter is not
// persisted; a loaded index starts at 0 again.
func (ix *Index) Generation() uint64 { return ix.gen.Load() }

// Result is one top-k answer.
type Result struct {
	// ID is the database id of the matched graph.
	ID int
	// Distance is the score the engine ranked by: the normalized
	// Euclidean distance in the mapped space for EngineMapped (0 =
	// identical feature profile), the MCS dissimilarity for
	// EngineVerified and EngineExact.
	Distance float64
}

// TopK answers a top-k similarity query in the mapped space.
//
// Deprecated: TopK is the v1 entry point, kept so existing callers
// compile. Use Search, which adds engine selection, cancellation, and
// richer results.
func (ix *Index) TopK(q *Graph, k int) ([]Result, error) {
	res, err := ix.Search(context.Background(), q, SearchOptions{K: k})
	if err != nil {
		return nil, err
	}
	return res.Results, nil
}

// TopKBatch answers many top-k queries at once. Result i corresponds to
// queries[i].
//
// Deprecated: TopKBatch is the v1 entry point, kept so existing callers
// compile. Use SearchBatch.
func (ix *Index) TopKBatch(queries []*Graph, k int) ([][]Result, error) {
	batch, err := ix.SearchBatch(context.Background(), queries, SearchOptions{K: k})
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(batch))
	for i, res := range batch {
		out[i] = res.Results
	}
	return out, nil
}

// TopKExact answers the query with the exact MCS-based engine — orders of
// magnitude slower; intended for ground-truth comparisons.
//
// Deprecated: TopKExact is the v1 entry point, kept so existing callers
// compile. Use Search with Engine: EngineExact.
func (ix *Index) TopKExact(q *Graph, k int) ([]Result, error) {
	res, err := ix.Search(context.Background(), q, SearchOptions{K: k, Engine: EngineExact})
	if err != nil {
		return nil, err
	}
	return res.Results, nil
}

func (ix *Index) queryWorkers() int {
	if ix.workers > 0 {
		return ix.workers
	}
	return pool.DefaultWorkers(0)
}

// Dissimilarity computes the exact metric value δ(a, b) — exposed for
// applications that verify or re-rank candidates.
func (ix *Index) Dissimilarity(a, b *Graph) float64 {
	return ix.metric.DissimilarityBudget(a, b, ix.mcsOpt)
}

// Contains reports whether pattern is subgraph-isomorphic to target —
// the containment primitive the mapping is built on.
func Contains(target, pattern *Graph) bool {
	return subiso.Contains(target, pattern)
}
