// Package graphdim is the public API of this repository: an online graph
// search library that selects a small structural dimension — a set of
// frequent subgraphs — from a graph database so that top-k similarity
// queries can run in a multidimensional vector space instead of computing
// NP-hard maximum-common-subgraph dissimilarities per query.
//
// It implements the DS-preserved mapping of Zhu, Yu and Qin, "Leveraging
// Graph Dimensions in Online Graph Search" (PVLDB 8(1), 2014): the DSPM
// dimension-selection algorithm, its scalable approximation DSPMap, the
// gSpan miner that produces the candidate subgraphs, the VF2 matcher that
// maps unseen queries into the space, and exact MCS-based search for
// ground truth.
//
// Typical use:
//
//	db, _ := graphdim.ReadGraphs(f)
//	idx, _ := graphdim.Build(db, graphdim.Options{Dimensions: 200})
//	results, _ := idx.TopK(query, 10)
//
// Build parallelizes the offline path (mining, the pairwise MCS matrix,
// vector materialization) across Options.Workers goroutines, defaulting
// to one per CPU. The returned Index is immutable and safe for concurrent
// readers; TopKBatch fans a query batch across the same worker bound, and
// WriteTo/ReadIndex persist an index so query servers (cmd/gserve) can
// load it without re-mining or re-running DSPM.
package graphdim

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gspan"
	"repro/internal/mcs"
	"repro/internal/pool"
	"repro/internal/subiso"
	"repro/internal/topk"
	"repro/internal/vecspace"
)

// Graph is an undirected labeled simple graph (vertices and edges carry
// integer labels). Construct with NewGraph / AddVertex / AddEdge or parse
// with ReadGraphs.
type Graph = graph.Graph

// Label is a vertex or edge label.
type Label = graph.Label

// Edge is a normalized undirected edge.
type Edge = graph.Edge

// NewGraph returns an empty graph with n vertices labeled 0.
func NewGraph(n int) *Graph { return graph.New(n) }

// ReadGraphs parses a sequence of graphs in the standard text format
// ("t # id" / "v id label" / "e u v label").
func ReadGraphs(r io.Reader) ([]*Graph, error) { return graph.ReadAll(r) }

// WriteGraphs writes graphs in the same text format.
func WriteGraphs(w io.Writer, gs []*Graph) error { return graph.WriteAll(w, gs) }

// Metric selects the MCS-based graph dissimilarity.
type Metric = mcs.Metric

// Dissimilarity metrics (Eq. 1 and Eq. 2 of the paper).
const (
	// Delta1 normalizes by the larger graph (Bunke–Shearer).
	Delta1 = mcs.Delta1
	// Delta2 normalizes by the average size; the paper's default.
	Delta2 = mcs.Delta2
)

// Algorithm selects the dimension-computation algorithm.
type Algorithm int

const (
	// DSPM is the exact iterative algorithm (Section 5.1); it needs the
	// full pairwise dissimilarity matrix — O(n²) MCS computations.
	DSPM Algorithm = iota
	// DSPMap is the partition-based approximation (Section 5.2); its cost
	// grows linearly with the database size.
	DSPMap
)

// Options configures Build.
type Options struct {
	// Dimensions is p, the number of subgraph dimensions to select.
	// Zero means 200 (a mid-range value from the paper's sweep).
	Dimensions int
	// Tau is the minimum-support ratio for frequent subgraph mining;
	// zero means 0.05, the paper's setting.
	Tau float64
	// MaxPatternEdges caps mined subgraph size; zero means 6.
	MaxPatternEdges int
	// MaxCandidates caps the mined candidate set m; zero means unlimited.
	MaxCandidates int
	// Metric is the graph dissimilarity; default Delta2.
	Metric Metric
	// Algorithm picks DSPM (default) or DSPMap.
	Algorithm Algorithm
	// PartitionSize is DSPMap's b; zero means max(20, n/20).
	PartitionSize int
	// MCSBudget bounds each MCS search in branch-and-bound nodes; zero
	// means 200000 (effectively exact for molecule-sized graphs).
	MCSBudget int64
	// Seed drives DSPMap's random choices.
	Seed int64
	// Iterations caps DSPM's majorization loop; zero means 30.
	Iterations int
	// Workers bounds the worker pools used by the offline build path
	// (gSpan mining, the DSPM pairwise MCS matrix, vector
	// materialization) and inherited by the index for TopKBatch fan-out.
	// Zero or negative means one worker per CPU. Build output is
	// identical for every worker count — parallelism changes only
	// wall-clock time. Note the DSPMap algorithm evaluates its
	// dissimilarities lazily inside sequential partition passes, so
	// Workers accelerates only its mining and vector stages; the
	// MCS-dominated stage Workers speeds up most is DSPM's matrix.
	Workers int
}

func (o Options) withDefaults(n int) Options {
	if o.Dimensions == 0 {
		o.Dimensions = 200
	}
	if o.Tau == 0 {
		o.Tau = 0.05
	}
	if o.MaxPatternEdges == 0 {
		o.MaxPatternEdges = 6
	}
	if o.MCSBudget == 0 {
		o.MCSBudget = 200000
	}
	if o.PartitionSize == 0 {
		o.PartitionSize = n / 20
		if o.PartitionSize < 20 {
			o.PartitionSize = 20
		}
	}
	o.Workers = pool.DefaultWorkers(o.Workers)
	return o
}

// Index is a built graph-dimension index over a database: the selected
// subgraph dimensions and the database's binary vectors. It answers top-k
// similarity queries with a feature-matching step (VF2) plus a linear
// scan of the vector space.
//
// An Index is immutable once returned by Build or ReadIndex and is safe
// for any number of concurrent readers: TopK, TopKBatch, TopKExact,
// Dissimilarity and all accessors may be called from multiple goroutines
// without external locking. Every query allocates its own matcher and
// ranking state; the shared fields (graphs, features, bit vectors,
// weights) are only ever read.
type Index struct {
	db       []*Graph
	features []*Graph
	mapper   *vecspace.Mapper
	vectors  []*vecspace.BitVector
	metric   Metric
	mcsOpt   mcs.Options
	weights  []float64
	workers  int // TopKBatch fan-out bound; always >= 1
}

// Build mines frequent subgraphs from db, selects the dimension set with
// DSPM or DSPMap, and maps the database into the resulting space.
func Build(db []*Graph, opt Options) (*Index, error) {
	if len(db) < 2 {
		return nil, fmt.Errorf("graphdim: need at least 2 graphs, got %d", len(db))
	}
	opt = opt.withDefaults(len(db))

	feats, err := gspan.Mine(db, gspan.Options{
		MinSupport:  gspan.MinSupportRatio(opt.Tau, len(db)),
		MaxEdges:    opt.MaxPatternEdges,
		MaxFeatures: opt.MaxCandidates,
		Workers:     opt.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("graphdim: mining candidates: %w", err)
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("graphdim: no frequent subgraphs at tau=%v", opt.Tau)
	}
	idx := vecspace.BuildIndex(len(db), feats)
	p := opt.Dimensions
	if p > idx.P {
		p = idx.P
	}

	mcsOpt := mcs.Options{MaxNodes: opt.MCSBudget}
	var res *core.Result
	switch opt.Algorithm {
	case DSPM:
		delta := opt.Metric.MatrixWorkers(db, mcsOpt, opt.Workers)
		res, err = core.DSPM(idx, delta, core.Config{P: p, MaxIter: opt.Iterations})
	case DSPMap:
		dis := func(i, j int) float64 {
			return opt.Metric.DissimilarityBudget(db[i], db[j], mcsOpt)
		}
		res, err = core.DSPMap(idx, dis, core.MapConfig{
			Core: core.Config{P: p, MaxIter: opt.Iterations},
			B:    opt.PartitionSize,
			Seed: opt.Seed,
		})
	default:
		return nil, fmt.Errorf("graphdim: unknown algorithm %d", opt.Algorithm)
	}
	if err != nil {
		return nil, fmt.Errorf("graphdim: dimension computation: %w", err)
	}

	features := make([]*Graph, len(res.Selected))
	weights := make([]float64, len(res.Selected))
	for i, r := range res.Selected {
		features[i] = feats[r].Graph
		weights[i] = res.C[r]
	}
	sub := idx.Subindex(res.Selected)
	vectors := make([]*vecspace.BitVector, sub.N)
	pool.For(opt.Workers, sub.N, func(i int) {
		vectors[i] = sub.Vector(i)
	})
	return &Index{
		db:       db,
		features: features,
		mapper:   vecspace.NewMapper(features),
		vectors:  vectors,
		metric:   opt.Metric,
		mcsOpt:   mcsOpt,
		weights:  weights,
		workers:  opt.Workers,
	}, nil
}

// Dimensions returns the selected subgraph dimensions, most informative
// first.
func (ix *Index) Dimensions() []*Graph { return ix.features }

// Weights returns the DSPM weight of each dimension, aligned with
// Dimensions.
func (ix *Index) Weights() []float64 { return ix.weights }

// Size returns the number of indexed graphs.
func (ix *Index) Size() int { return len(ix.db) }

// Graph returns the i-th indexed graph.
func (ix *Index) Graph(i int) *Graph { return ix.db[i] }

// Result is one top-k answer.
type Result struct {
	// ID is the database index of the matched graph.
	ID int
	// Distance is the normalized Euclidean distance in the mapped space
	// (0 = identical feature profile).
	Distance float64
}

// TopK answers a top-k similarity query in the mapped space: map q onto
// the dimensions (VF2 feature matching), then scan the vector database.
func (ix *Index) TopK(q *Graph, k int) ([]Result, error) {
	if q == nil {
		return nil, fmt.Errorf("graphdim: nil query")
	}
	if k <= 0 {
		return nil, fmt.Errorf("graphdim: k must be positive, got %d", k)
	}
	qv := ix.mapper.Map(q)
	ranking := topk.Mapped(ix.vectors, qv)
	if k > len(ranking) {
		k = len(ranking)
	}
	out := make([]Result, k)
	for i := 0; i < k; i++ {
		out[i] = Result{ID: ranking[i].ID, Distance: ranking[i].Score}
	}
	return out, nil
}

// TopKBatch answers many top-k queries at once, fanning them across the
// index's worker pool (the Workers value Build was configured with, or
// one worker per CPU for a loaded index). Result i corresponds to
// queries[i]. The whole batch is validated up front: a nil query or
// non-positive k fails the batch before any work is spent, so a partial
// result is never returned.
func (ix *Index) TopKBatch(queries []*Graph, k int) ([][]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("graphdim: k must be positive, got %d", k)
	}
	for i, q := range queries {
		if q == nil {
			return nil, fmt.Errorf("graphdim: nil query at index %d", i)
		}
	}
	out := make([][]Result, len(queries))
	pool.For(ix.queryWorkers(), len(queries), func(i int) {
		res, err := ix.TopK(queries[i], k)
		if err != nil {
			// Unreachable: inputs were validated above and TopK has no
			// other failure mode. Keep the batch shape regardless.
			res = nil
		}
		out[i] = res
	})
	return out, nil
}

func (ix *Index) queryWorkers() int {
	if ix.workers > 0 {
		return ix.workers
	}
	return pool.DefaultWorkers(0)
}

// TopKExact answers the query with the exact MCS-based engine — orders of
// magnitude slower; intended for ground-truth comparisons.
func (ix *Index) TopKExact(q *Graph, k int) ([]Result, error) {
	if q == nil {
		return nil, fmt.Errorf("graphdim: nil query")
	}
	if k <= 0 {
		return nil, fmt.Errorf("graphdim: k must be positive, got %d", k)
	}
	ranking := topk.Exact(ix.db, q, ix.metric, ix.mcsOpt)
	if k > len(ranking) {
		k = len(ranking)
	}
	out := make([]Result, k)
	for i := 0; i < k; i++ {
		out[i] = Result{ID: ranking[i].ID, Distance: ranking[i].Score}
	}
	return out, nil
}

// Dissimilarity computes the exact metric value δ(a, b) — exposed for
// applications that verify or re-rank candidates.
func (ix *Index) Dissimilarity(a, b *Graph) float64 {
	return ix.metric.DissimilarityBudget(a, b, ix.mcsOpt)
}

// Contains reports whether pattern is subgraph-isomorphic to target —
// the containment primitive the mapping is built on.
func Contains(target, pattern *Graph) bool {
	return subiso.Contains(target, pattern)
}
