package graphdim

import (
	"fmt"

	"repro/internal/wal"
)

// Replication accessors — the narrow surface a serving process needs to
// run a collection as a replication primary: stream the settled log
// tail, pin retention while followers catch up, and read the freshness
// coordinates every search response advertises. The follower half
// (mirroring and replaying a primary's stream) is in follower.go; the
// snapshot a follower bootstraps from is in snapshot.go.

// AppliedSeq returns the collection's settled watermark: the highest
// write-ahead-log sequence whose outcome is final and visible in shard
// state. Zero for collections without a log.
func (c *Collection) AppliedSeq() uint64 { return c.applied.Load() }

// Freshness returns the collection's read-consistency coordinates: the
// settled watermark and the per-shard generation vector. The watermark
// is the comparable half — it advances in the primary's total write
// order on every replica, so "replica at least as fresh as X" is
// exactly applied >= X. The generation vector rides along for
// observability; it is process-local (generations restart at zero on
// load and advance on compaction), so it is not comparable across
// processes.
func (c *Collection) Freshness() (applied uint64, gens []uint64) {
	return c.applied.Load(), c.generations()
}

// StreamWAL returns an incremental reader over the collection's
// write-ahead log positioned after seq — the feed behind a replication
// tail endpoint. Callers gate delivery at AppliedSeq (pass it as
// Next's upper bound) so no record ships before its outcome is settled,
// and wait on WALCommits between polls. Errors on a collection without
// a log.
func (c *Collection) StreamWAL(after uint64) (*wal.Stream, error) {
	if c.wal == nil {
		return nil, fmt.Errorf("graphdim: collection %q has no write-ahead log to stream", c.name)
	}
	return c.wal.StreamFrom(after), nil
}

// WALCommits returns a channel closed after the next log commit — the
// long-poll primitive a streaming endpoint waits on when it has caught
// up. Nil (blocks forever) without a log.
func (c *Collection) WALCommits() <-chan struct{} {
	if c.wal == nil {
		return nil
	}
	return c.wal.Commits()
}

// WALRetain records that the named follower has acknowledged records
// through acked and pins every later record against checkpoint
// truncation: segments holding records a registered follower still
// needs are never deleted, though the checkpoint position itself keeps
// advancing. Acknowledgements never move backwards. Holds are in-memory
// only — a restarted primary forgets them, and a follower that then
// finds its position truncated re-bootstraps from a snapshot. No-op
// without a log.
func (c *Collection) WALRetain(follower string, acked uint64) {
	if c.wal != nil {
		c.wal.Retain(follower, acked)
	}
}

// WALUnretain drops the named follower's retention hold. No-op without
// a log.
func (c *Collection) WALUnretain(follower string) {
	if c.wal != nil {
		c.wal.Unretain(follower)
	}
}

// WALRetention reports the retention holds pinning this collection's
// log: how many followers are registered and the lowest acknowledged
// sequence among them (ok false when there are none). For stats.
func (c *Collection) WALRetention() (followers int, minAcked uint64, ok bool) {
	if c.wal == nil {
		return 0, 0, false
	}
	st := c.wal.Stats()
	return st.Retained, st.RetainSeq, st.Retained > 0
}

// LastWALSeq returns the newest record's sequence in the collection's
// log (zero without one) — with AppliedSeq, the primary-side lag
// coordinates a replication endpoint reports.
func (c *Collection) LastWALSeq() uint64 {
	if c.wal == nil {
		return 0
	}
	return c.wal.LastSeq()
}
