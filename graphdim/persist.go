package graphdim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/mcs"
	"repro/internal/pool"
	"repro/internal/vecspace"
)

// indexFile is the on-disk JSON layout of an Index. Graphs are embedded in
// the standard text format so the files remain grep-able and diff-able.
type indexFile struct {
	Version   int       `json:"version"`
	Metric    int       `json:"metric"`
	MCSBudget int64     `json:"mcs_budget"`
	Features  []string  `json:"features"`
	Weights   []float64 `json:"weights"`
	DB        []string  `json:"db"`
	Vectors   [][]int   `json:"vectors"` // set bit positions per graph
}

const indexFileVersion = 1

// WriteTo serializes the index (selected dimensions, weights, database
// graphs and their vectors) so it can be reloaded without re-mining or
// re-running DSPM. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	f := indexFile{
		Version:   indexFileVersion,
		Metric:    int(ix.metric),
		MCSBudget: ix.mcsOpt.MaxNodes,
		Weights:   ix.weights,
	}
	for _, g := range ix.features {
		f.Features = append(f.Features, g.String())
	}
	for _, g := range ix.db {
		f.DB = append(f.DB, g.String())
	}
	for _, v := range ix.vectors {
		var bits []int
		for r := 0; r < v.Len(); r++ {
			if v.Get(r) {
				bits = append(bits, r)
			}
		}
		if bits == nil {
			bits = []int{}
		}
		f.Vectors = append(f.Vectors, bits)
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return 0, fmt.Errorf("graphdim: encode index: %w", err)
	}
	n, err := w.Write(data)
	return int64(n), err
}

// ReadIndex loads an index previously written with WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graphdim: read index: %w", err)
	}
	var f indexFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("graphdim: decode index: %w", err)
	}
	if f.Version != indexFileVersion {
		return nil, fmt.Errorf("graphdim: unsupported index version %d", f.Version)
	}
	if len(f.Vectors) != len(f.DB) {
		return nil, fmt.Errorf("graphdim: corrupt index: %d vectors for %d graphs", len(f.Vectors), len(f.DB))
	}
	if len(f.Weights) != len(f.Features) {
		return nil, fmt.Errorf("graphdim: corrupt index: %d weights for %d features", len(f.Weights), len(f.Features))
	}
	ix := &Index{
		metric:  Metric(f.Metric),
		mcsOpt:  mcs.Options{MaxNodes: f.MCSBudget},
		weights: f.Weights,
		workers: pool.DefaultWorkers(0),
	}
	for i, s := range f.Features {
		g, err := parseOne(s)
		if err != nil {
			return nil, fmt.Errorf("graphdim: feature %d: %w", i, err)
		}
		ix.features = append(ix.features, g)
	}
	for i, s := range f.DB {
		g, err := parseOne(s)
		if err != nil {
			return nil, fmt.Errorf("graphdim: graph %d: %w", i, err)
		}
		ix.db = append(ix.db, g)
	}
	p := len(ix.features)
	for i, bits := range f.Vectors {
		v := vecspace.NewBitVector(p)
		for _, b := range bits {
			if b < 0 || b >= p {
				return nil, fmt.Errorf("graphdim: corrupt index: vector %d has bit %d outside [0,%d)", i, b, p)
			}
			v.Set(b)
		}
		ix.vectors = append(ix.vectors, v)
	}
	ix.mapper = vecspace.NewMapper(ix.features)
	return ix, nil
}

func parseOne(s string) (*Graph, error) {
	gs, err := ReadGraphs(strings.NewReader(s))
	if err != nil {
		return nil, err
	}
	if len(gs) != 1 {
		return nil, fmt.Errorf("expected 1 graph, found %d", len(gs))
	}
	return gs[0], nil
}
