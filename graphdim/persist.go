package graphdim

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"

	"repro/internal/graph"
	"repro/internal/mcs"
	"repro/internal/pool"
	"repro/internal/posting"
	"repro/internal/segment"
	"repro/internal/vecspace"
)

// The on-disk index has four formats. The current checkpoint layout is
// v4 — the mmap-able segment format of internal/segment (magic
// "GDIMIDX4"), written by Index.writeSegment and documented there;
// ReadIndex loads it onto the heap, and the store's shard opener serves
// it mapped in place. The three formats below are what WriteTo still
// writes (v3) and what legacy files look like:
//
// v1 (legacy, read-only): a JSON document embedding graphs in the text
// format and vectors as set-bit lists — grep-able, but ~10× the size of
// v2 and decoded only after buffering the whole file.
//
// v2 (legacy, read-only): a streaming binary format. After the 8-byte
// magic "GDIMIDX2", the payload is
//
//	metric      1 byte (0 = delta1, 1 = delta2)
//	mcsBudget   uvarint
//	p           uvarint — number of dimensions
//	p ×         weight (float64 bits, little-endian) + feature graph
//	            (binary codec of internal/graph)
//	total       uvarint — id slots, live + tombstoned
//	baseN       uvarint — slots predating the last Build (StaleRatio)
//	total ×     database graph (binary codec)
//	⌈total/8⌉   tombstone bitmap, id i at byte i/8 bit i%8
//	total ×     ⌈p/8⌉-byte packed binary vector, dimension r at byte
//	            r/8 bit r%8
//	crc32       IEEE checksum of the payload, little-endian
//
// v3 (written by WriteTo): the v2 payload under the magic "GDIMIDX3"
// plus, between the vectors and the checksum, an optional posting-list
// section so query servers can skip the transpose on load:
//
//	present     1 byte (0 = absent, 1 = present)
//	p ×         uvarint count, then count × uvarint gap — dimension r's
//	            ascending posting list delta-encoded as id − prev with
//	            prev starting at −1, so every gap is >= 1
//
// The decoder cross-checks a present section against the vectors (every
// listed id must have the bit, and the total posting count must equal
// the vectors' total set-bit count), which proves the lists are exactly
// the vector transpose; files without the section — v3 with present=0,
// every v2 and v1 file — get their postings rebuilt in memory.
//
// All binary variants encode and decode stream graph-by-graph; nothing
// buffers the whole database. ReadIndex sniffs the magic to pick the
// decoder, so v1 and v2 files keep loading.

const (
	magicV2 = "GDIMIDX2"
	magicV3 = "GDIMIDX3"
	// maxFileElems bounds decoded counts so a corrupt length prefix
	// cannot force a huge allocation before the checksum is verified.
	// Shared with the graph codec so the two decoders of the stream
	// cannot drift.
	maxFileElems = graph.MaxBinaryElems
)

var crcTable = crc32.IEEETable

// indexFile is the legacy v1 JSON layout.
type indexFile struct {
	Version   int       `json:"version"`
	Metric    int       `json:"metric"`
	MCSBudget int64     `json:"mcs_budget"`
	Features  []string  `json:"features"`
	Weights   []float64 `json:"weights"`
	DB        []string  `json:"db"`
	Vectors   [][]int   `json:"vectors"` // set bit positions per graph
}

const indexFileVersion = 1

// WriteTo serializes the index in the v3 binary format: the selected
// dimensions and weights, every database graph (including tombstoned ids,
// so ids stay stable across a save/load), the tombstone bitmap, the
// packed binary vectors, and the per-dimension posting lists. The
// encoding streams through a buffered writer — memory use is independent
// of database size. It implements io.WriterTo.
//
// WriteTo reads one immutable snapshot, so it may run concurrently with
// queries and updates; updates racing the call are either fully included
// or fully excluded.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	return ix.writeBinary(w, true)
}

// writeToV2 emits the previous binary format — no postings section. It
// is kept (unexported) so tests can produce v2 fixtures and pin the
// rebuild-on-load path.
func (ix *Index) writeToV2(w io.Writer) (int64, error) {
	return ix.writeBinary(w, false)
}

func (ix *Index) writeBinary(w io.Writer, postings bool) (int64, error) {
	return ix.writeSnapshot(w, ix.snap.Load(), postings)
}

// writeSnapshot encodes one explicit (already captured) snapshot — the
// store's checkpoint path pins a snapshot under the writer lock and
// encodes it later, lock-free, while the index keeps moving.
func (ix *Index) writeSnapshot(w io.Writer, s *snapshot, postings bool) (int64, error) {
	magic := magicV3
	if !postings {
		magic = magicV2
	}
	cw := &countingWriter{w: w}
	if _, err := io.WriteString(cw, magic); err != nil {
		return cw.n, fmt.Errorf("graphdim: encode index: %w", err)
	}
	crc := &crcWriter{w: cw}
	bw := bufio.NewWriter(crc)

	enc := &v2Encoder{w: bw}
	enc.byte(byte(ix.metric))
	enc.uvarint(uint64(ix.mcsOpt.MaxNodes))
	enc.uvarint(uint64(len(ix.features)))
	for i, f := range ix.features {
		enc.float64(ix.weights[i])
		enc.graph(f)
	}
	enc.uvarint(uint64(len(s.db)))
	enc.uvarint(uint64(s.baseN))
	for i := range s.db {
		enc.graph(s.graph(i))
	}
	enc.bytes(packBools(s.dead))
	p := len(ix.features)
	for i := range s.vectors {
		enc.bytes(packWords(s.vectorAt(i).Words(), p))
	}
	if postings {
		enc.byte(1)
		for r := 0; r < p; r++ {
			l := s.post.List(r)
			enc.uvarint(uint64(len(l)))
			prev := int32(-1)
			for _, id := range l {
				enc.uvarint(uint64(id - prev))
				prev = id
			}
		}
	}
	if enc.err == nil {
		enc.err = bw.Flush()
	}
	if enc.err != nil {
		return cw.n, fmt.Errorf("graphdim: encode index: %w", enc.err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.sum)
	if _, err := cw.Write(sum[:]); err != nil {
		return cw.n, fmt.Errorf("graphdim: encode index: %w", err)
	}
	return cw.n, nil
}

// ReadIndex loads an index previously written with WriteTo or a store
// checkpoint — any format: the v4 segment layout (rehydrated onto the
// heap; open a Store to serve it mapped), the v3 binary layout, the
// legacy v2 binary layout (postings are rebuilt in memory), or a legacy
// v1 JSON file.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magicV3))
	if err == nil && bytes.Equal(head, []byte(segment.Magic)) {
		return readIndexSegment(br)
	}
	if err == nil && bytes.Equal(head, []byte(magicV3)) {
		return readIndexBinary(br, true)
	}
	if err == nil && bytes.Equal(head, []byte(magicV2)) {
		return readIndexBinary(br, false)
	}
	// Not a binary format (or shorter than the magic): try legacy JSON.
	return readIndexV1(br)
}

func readIndexBinary(br *bufio.Reader, v3 bool) (*Index, error) {
	if _, err := br.Discard(len(magicV3)); err != nil {
		return nil, fmt.Errorf("graphdim: read index: %w", err)
	}
	dec := &v2Decoder{r: &crcReader{br: br}}

	metric := dec.byte()
	if dec.err == nil && metric > byte(Delta2) {
		return nil, fmt.Errorf("graphdim: corrupt index: unknown metric %d", metric)
	}
	budget := dec.uvarint()
	if dec.err == nil && budget > math.MaxInt64 {
		return nil, fmt.Errorf("graphdim: corrupt index: MCS budget %d overflows", budget)
	}
	p := dec.count("dimension count")
	features := make([]*Graph, 0, min(p, 1<<16))
	weights := make([]float64, 0, min(p, 1<<16))
	for i := 0; i < p; i++ {
		weights = append(weights, dec.float64())
		g := dec.graph()
		if dec.err != nil {
			return nil, fmt.Errorf("graphdim: corrupt index: feature %d: %w", i, dec.err)
		}
		features = append(features, g)
	}
	total := dec.count("graph count")
	baseN := dec.count("base count")
	if dec.err == nil && baseN > total {
		return nil, fmt.Errorf("graphdim: corrupt index: baseN %d > %d graphs", baseN, total)
	}
	db := make([]*Graph, 0, min(total, 1<<16))
	for i := 0; i < total; i++ {
		g := dec.graph()
		if dec.err != nil {
			return nil, fmt.Errorf("graphdim: corrupt index: graph %d: %w", i, dec.err)
		}
		db = append(db, g)
	}
	dead, deadCount, err := unpackBools(dec.bytes((total+7)/8), total)
	if err != nil {
		return nil, fmt.Errorf("graphdim: corrupt index: tombstones: %w", err)
	}
	baseDead := 0
	for i := 0; i < baseN; i++ {
		if dead[i] {
			baseDead++
		}
	}
	vectors := make([]*vecspace.BitVector, 0, min(total, 1<<16))
	nb := (p + 7) / 8
	for i := 0; i < total; i++ {
		words, err := unpackWords(dec.bytes(nb), p)
		if err != nil {
			return nil, fmt.Errorf("graphdim: corrupt index: vector %d: %w", i, err)
		}
		vectors = append(vectors, vecspace.BitVectorFromWords(p, words))
	}
	var post *posting.Index
	if v3 {
		post, err = decodePostings(dec, vectors, p, total)
		if err != nil {
			return nil, fmt.Errorf("graphdim: corrupt index: postings: %w", err)
		}
	}
	if dec.err != nil {
		return nil, fmt.Errorf("graphdim: corrupt index: %w", dec.err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("graphdim: corrupt index: checksum: %w", noEOF(err))
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != dec.r.sum {
		return nil, fmt.Errorf("graphdim: corrupt index: checksum mismatch (file %08x, computed %08x)", got, dec.r.sum)
	}

	// A nil post (v2 file, or v3 with the section absent) is rebuilt from
	// the vectors inside newIndex.
	return newIndex(features, weights, Metric(metric), mcs.Options{MaxNodes: int64(budget)},
		pool.DefaultWorkers(0), &snapshot{
			db:        db,
			vectors:   vectors,
			dead:      dead,
			deadCount: deadCount,
			post:      post,
			baseN:     baseN,
			baseDead:  baseDead,
		}), nil
}

// decodePostings reads the v3 posting-list section and proves it is
// exactly the transpose of the decoded vectors: every listed id must be
// in range, strictly ascending (gap >= 1 by construction of the delta
// code), and carry the dimension's bit; and the section's total posting
// count must equal the vectors' total set-bit count — together that
// admits exactly one section per vector set. It returns (nil, nil) when
// the section is marked absent so the caller rebuilds in memory.
func decodePostings(dec *v2Decoder, vectors []*vecspace.BitVector, p, total int) (*posting.Index, error) {
	switch present := dec.byte(); {
	case dec.err != nil:
		return nil, dec.err
	case present == 0:
		return nil, nil
	case present != 1:
		return nil, fmt.Errorf("presence byte %d", present)
	}
	ones := make([]int32, total)
	sumOnes := 0
	for id, v := range vectors {
		o := v.Ones()
		ones[id] = int32(o)
		sumOnes += o
	}
	lists := make([][]int32, p)
	decoded := 0
	for r := 0; r < p; r++ {
		count := dec.count("posting count")
		if dec.err != nil {
			return nil, dec.err
		}
		if count > total {
			return nil, fmt.Errorf("dimension %d: %d postings for %d graphs", r, count, total)
		}
		if decoded += count; decoded > sumOnes {
			return nil, fmt.Errorf("posting count exceeds the vectors' %d set bits", sumOnes)
		}
		list := make([]int32, 0, count)
		prev := int64(-1)
		for j := 0; j < count; j++ {
			gap := dec.uvarint()
			if dec.err != nil {
				return nil, dec.err
			}
			// Bound the gap before the addition so a hostile uvarint can
			// neither overflow int64 nor index out of range.
			if gap == 0 || gap > uint64(total) {
				return nil, fmt.Errorf("dimension %d: gap %d after id %d (total %d)", r, gap, prev, total)
			}
			id := prev + int64(gap)
			if id >= int64(total) {
				return nil, fmt.Errorf("dimension %d: id %d after %d (total %d)", r, id, prev, total)
			}
			if !vectors[id].Get(r) {
				return nil, fmt.Errorf("dimension %d lists id %d, whose vector lacks the bit", r, id)
			}
			list = append(list, int32(id))
			prev = id
		}
		lists[r] = list
	}
	if decoded != sumOnes {
		return nil, fmt.Errorf("%d postings for %d set bits", decoded, sumOnes)
	}
	return posting.FromLists(p, total, lists, ones), nil
}

func readIndexV1(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graphdim: read index: %w", err)
	}
	var f indexFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("graphdim: decode index: %w", err)
	}
	if f.Version != indexFileVersion {
		return nil, fmt.Errorf("graphdim: unsupported index version %d", f.Version)
	}
	if len(f.Vectors) != len(f.DB) {
		return nil, fmt.Errorf("graphdim: corrupt index: %d vectors for %d graphs", len(f.Vectors), len(f.DB))
	}
	if len(f.Weights) != len(f.Features) {
		return nil, fmt.Errorf("graphdim: corrupt index: %d weights for %d features", len(f.Weights), len(f.Features))
	}
	if f.Metric < 0 || f.Metric > int(Delta2) {
		return nil, fmt.Errorf("graphdim: corrupt index: unknown metric %d", f.Metric)
	}
	var features, db []*Graph
	for i, s := range f.Features {
		g, err := parseOne(s)
		if err != nil {
			return nil, fmt.Errorf("graphdim: feature %d: %w", i, err)
		}
		features = append(features, g)
	}
	for i, s := range f.DB {
		g, err := parseOne(s)
		if err != nil {
			return nil, fmt.Errorf("graphdim: graph %d: %w", i, err)
		}
		db = append(db, g)
	}
	p := len(features)
	var vectors []*vecspace.BitVector
	for i, bits := range f.Vectors {
		v := vecspace.NewBitVector(p)
		for _, b := range bits {
			if b < 0 || b >= p {
				return nil, fmt.Errorf("graphdim: corrupt index: vector %d has bit %d outside [0,%d)", i, b, p)
			}
			v.Set(b)
		}
		vectors = append(vectors, v)
	}
	// v1 predates tombstones and incremental adds: everything is live and
	// part of the persisted build.
	return newIndex(features, f.Weights, Metric(f.Metric), mcs.Options{MaxNodes: f.MCSBudget},
		pool.DefaultWorkers(0), &snapshot{
			db:      db,
			vectors: vectors,
			dead:    make([]bool, len(db)),
			baseN:   len(db),
		}), nil
}

// writeToV1 emits the legacy JSON format. It is kept (unexported) so
// tests can produce v1 fixtures and pin backward compatibility.
func (ix *Index) writeToV1(w io.Writer) error {
	s := ix.snap.Load()
	f := indexFile{
		Version:   indexFileVersion,
		Metric:    int(ix.metric),
		MCSBudget: ix.mcsOpt.MaxNodes,
		Weights:   ix.weights,
	}
	for _, g := range ix.features {
		f.Features = append(f.Features, g.String())
	}
	for i := range s.db {
		f.DB = append(f.DB, s.graph(i).String())
	}
	for i := range s.vectors {
		v := s.vectorAt(i)
		bits := []int{}
		for r := 0; r < v.Len(); r++ {
			if v.Get(r) {
				bits = append(bits, r)
			}
		}
		f.Vectors = append(f.Vectors, bits)
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("graphdim: encode index: %w", err)
	}
	_, err = w.Write(data)
	return err
}

func parseOne(s string) (*Graph, error) {
	gs, err := ReadGraphs(strings.NewReader(s))
	if err != nil {
		return nil, err
	}
	if len(gs) != 1 {
		return nil, fmt.Errorf("expected 1 graph, found %d", len(gs))
	}
	return gs[0], nil
}

// ---- v2 encoding plumbing ----

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// crcWriter forwards writes and maintains a running IEEE crc32 of them.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crcTable, p[:n])
	return n, err
}

// crcReader hashes exactly the bytes the decoder consumes — unlike
// hashing at the bufio layer, read-ahead never pollutes the checksum, so
// the trailing checksum bytes can be read unhashed from the underlying
// reader. It implements graph.ByteReader.
type crcReader struct {
	br  *bufio.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.sum = crc32.Update(c.sum, crcTable, p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.sum = crc32.Update(c.sum, crcTable, []byte{b})
	}
	return b, err
}

// v2Encoder writes the payload primitives, latching the first error so
// call sites stay linear.
type v2Encoder struct {
	w   *bufio.Writer
	err error
}

func (e *v2Encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *v2Encoder) bytes(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

func (e *v2Encoder) uvarint(x uint64) {
	var buf [binary.MaxVarintLen64]byte
	e.bytes(buf[:binary.PutUvarint(buf[:], x)])
}

func (e *v2Encoder) float64(f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	e.bytes(buf[:])
}

func (e *v2Encoder) graph(g *Graph) {
	if e.err == nil {
		e.err = graph.WriteBinary(e.w, g)
	}
}

// v2Decoder reads the payload primitives with the same error latching.
type v2Decoder struct {
	r   *crcReader
	err error
}

func (d *v2Decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = noEOF(err)
	}
	return b
}

func (d *v2Decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = noEOF(err)
	}
	return x
}

// count decodes a uvarint that sizes an allocation, enforcing the
// anti-bomb limit.
func (d *v2Decoder) count(what string) int {
	x := d.uvarint()
	if d.err == nil && x > maxFileElems {
		d.err = fmt.Errorf("%s %d exceeds limit %d", what, x, maxFileElems)
	}
	return int(x)
}

func (d *v2Decoder) float64() float64 {
	var buf [8]byte
	d.read(buf[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

func (d *v2Decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = noEOF(err)
	}
}

func (d *v2Decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	p := make([]byte, n)
	d.read(p)
	return p
}

func (d *v2Decoder) graph() *Graph {
	if d.err != nil {
		return nil
	}
	g, err := graph.ReadBinary(d.r)
	if err != nil {
		d.err = err
	}
	return g
}

// noEOF is graph.NoEOF, aliased locally so decoder call sites stay short.
func noEOF(err error) error { return graph.NoEOF(err) }

// packBools packs a bool slice LSB-first into ⌈n/8⌉ bytes.
func packBools(bs []bool) []byte {
	out := make([]byte, (len(bs)+7)/8)
	for i, b := range bs {
		if b {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// unpackBools reverses packBools, rejecting set padding bits so the
// encoding stays canonical.
func unpackBools(p []byte, n int) ([]bool, int, error) {
	if p == nil {
		return nil, 0, io.ErrUnexpectedEOF
	}
	out := make([]bool, n)
	count := 0
	for i := 0; i < n; i++ {
		if p[i/8]&(1<<(uint(i)%8)) != 0 {
			out[i] = true
			count++
		}
	}
	for i := n; i < len(p)*8; i++ {
		if p[i/8]&(1<<(uint(i)%8)) != 0 {
			return nil, 0, fmt.Errorf("padding bit %d set", i)
		}
	}
	return out, count, nil
}

// packWords serializes the first p bits of a BitVector's words LSB-first
// into ⌈p/8⌉ bytes.
func packWords(words []uint64, p int) []byte {
	out := make([]byte, (p+7)/8)
	for i := range out {
		out[i] = byte(words[i/8] >> (8 * (uint(i) % 8)))
	}
	return out
}

// unpackWords reverses packWords, rejecting set bits at or beyond p.
func unpackWords(p []byte, bits int) ([]uint64, error) {
	if p == nil {
		return nil, io.ErrUnexpectedEOF
	}
	words := make([]uint64, (bits+63)/64)
	for i, b := range p {
		words[i/8] |= uint64(b) << (8 * (uint(i) % 8))
	}
	for i := bits; i < len(p)*8; i++ {
		if words[i/64]&(1<<(uint(i)%64)) != 0 {
			return nil, fmt.Errorf("bit %d outside [0,%d) set", i, bits)
		}
	}
	return words, nil
}
