package graphdim

import (
	"context"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/vecspace"
)

// The pipeline equivalence properties the ISSUE pins, on the same
// randomized databases (and the same GRAPHDIM_EQUIV_SEED replay knob)
// as the engine-equivalence suite:
//
//  1. a pipeline containing only a similarity stage is bit-identical
//     to plain Collection.Search;
//  2. filter pushdown equals post-hoc filtering of an unfiltered
//     search, and equals the same filter expressed as an opaque
//     Predicate closure;
//  3. per-shard partial aggregates merge to the single-shard answer.

// filterHolds is the semantic oracle for a Filter, evaluated directly
// on the graph and its mapped vector — independently of the posting
// pushdown machinery under test.
func filterHolds(f *pipeline.Filter, g *Graph, vec *vecspace.BitVector) bool {
	if g.N() < f.MinVertices || (f.MaxVertices > 0 && g.N() > f.MaxVertices) {
		return false
	}
	if g.M() < f.MinEdges || (f.MaxEdges > 0 && g.M() > f.MaxEdges) {
		return false
	}
	vh, eh := g.LabelHistogram()
	for _, lc := range f.VertexLabels {
		if vh[Label(lc.Label)] < max(1, lc.MinCount) {
			return false
		}
	}
	for _, lc := range f.EdgeLabels {
		if eh[Label(lc.Label)] < max(1, lc.MinCount) {
			return false
		}
	}
	for _, d := range f.DimsAll {
		if !vec.Get(d) {
			return false
		}
	}
	if len(f.DimsAny) > 0 {
		any := false
		for _, d := range f.DimsAny {
			if vec.Get(d) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	ones := vec.Ones()
	if ones < f.MinOnes || (f.MaxOnes > 0 && ones > f.MaxOnes) {
		return false
	}
	return true
}

// randomFilter draws a filter that is satisfiable on the database
// (constraints sampled from a random member graph) so filtered result
// sets are usually non-empty.
func randomFilter(rng *rand.Rand, idx *Index, vecs []*vecspace.BitVector) *pipeline.Filter {
	g := idx.Graph(rng.Intn(idx.TotalGraphs()))
	f := &pipeline.Filter{}
	switch rng.Intn(5) {
	case 0:
		f.VertexLabels = []pipeline.LabelCount{{Label: int(g.VertexLabel(rng.Intn(g.N())))}}
		if rng.Intn(2) == 0 {
			f.VertexLabels[0].MinCount = 1 + rng.Intn(2)
		}
	case 1:
		if es := g.Edges(); len(es) > 0 {
			f.EdgeLabels = []pipeline.LabelCount{{Label: int(es[rng.Intn(len(es))].Label), MinCount: rng.Intn(3)}}
		} else {
			f.MaxEdges = 0
			f.MinEdges = 0
			f.MinVertices = 1
		}
	case 2:
		f.MinVertices = 1 + rng.Intn(g.N())
		if rng.Intn(2) == 0 {
			f.MaxVertices = f.MinVertices + rng.Intn(8)
		}
	case 3:
		p := len(idx.Dimensions())
		v := vecs[rng.Intn(len(vecs))]
		var set []int
		for d := 0; d < p; d++ {
			if v.Get(d) {
				set = append(set, d)
			}
		}
		if len(set) == 0 {
			f.MinVertices = 1
			break
		}
		d := set[rng.Intn(len(set))]
		if rng.Intn(2) == 0 {
			f.DimsAll = []int{d}
		} else {
			f.DimsAny = []int{d, rng.Intn(p)}
		}
	case 4:
		ones := vecs[rng.Intn(len(vecs))].Ones()
		f.MinOnes = ones / 2
		if rng.Intn(2) == 0 {
			f.MaxOnes = ones + rng.Intn(3)
			if f.MaxOnes < f.MinOnes {
				f.MaxOnes = f.MinOnes
			}
		}
	}
	return f
}

func mapAll(idx *Index) []*vecspace.BitVector {
	m := vecspace.NewMapper(idx.Dimensions())
	vecs := make([]*vecspace.BitVector, idx.TotalGraphs())
	for i := range vecs {
		vecs[i] = m.Map(idx.Graph(i))
	}
	return vecs
}

// TestPipelineSearchEquivalence: property 1 — a similarity-only
// pipeline returns exactly Collection.Search's ranking, ids and
// bitwise-equal distances, across engines and shard counts.
func TestPipelineSearchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	ctx := context.Background()
	idx, db := equivBuild(t, rng, 2+rng.Intn(150))

	s := NewStore(StoreOptions{})
	defer s.Close()
	colls := make([]*Collection, 0, 2)
	for _, shards := range []int{1, 1 + rng.Intn(4)} {
		c, err := s.CreateFromIndex("pse-"+strconv.Itoa(len(colls)), idx, CollectionOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		colls = append(colls, c)
	}

	queries := []*Graph{db[rng.Intn(len(db))]}
	queries = append(queries, dataset.Synthetic(dataset.SynthConfig{N: 2, AvgEdges: 6, Labels: 7, Seed: rng.Int63()})...)
	for qi, q := range queries {
		k := 1 + rng.Intn(idx.TotalGraphs()+3)
		for _, eng := range []Engine{EngineMapped, EngineVerified} {
			opt := SearchOptions{K: k, Engine: eng, VerifyFactor: 2}
			stage := pipeline.Stage{Search: &pipeline.Search{G: q, K: k, Engine: eng.String(), VerifyFactor: 2}}
			for _, c := range colls {
				want, err := c.Search(ctx, q, opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.Query(ctx, &pipeline.Pipeline{Stages: []pipeline.Stage{stage}})
				if err != nil {
					t.Fatalf("query %d %s: %v", qi, eng, err)
				}
				if len(got.Rows) != len(want.Results) {
					t.Fatalf("query %d %s shards=%d: %d rows vs %d results", qi, eng, c.Shards(), len(got.Rows), len(want.Results))
				}
				for i, r := range got.Rows {
					if r.ID != want.Results[i].ID || r.Distance == nil || *r.Distance != want.Results[i].Distance {
						t.Fatalf("query %d %s shards=%d row %d: pipeline %v vs search %+v",
							qi, eng, c.Shards(), i, r, want.Results[i])
					}
				}
				if got.Stats.Engine != eng.String() || got.Stats.Matched != int64(len(want.Results)) {
					t.Fatalf("stats %+v do not echo the search (engine %s, %d results)", got.Stats, eng, len(want.Results))
				}
			}
		}
	}
}

// TestFilterPushdownEquivalence: property 2 — at the Index layer, a
// declarative filter (posting pushdown), the same constraint as an
// opaque Predicate closure (scan-time evaluation), and post-hoc
// filtering of the unfiltered flat ranking all agree bit-for-bit.
func TestFilterPushdownEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	ctx := context.Background()
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		idx, _ := equivBuild(t, rng, 2+rng.Intn(120))
		// Mutate so pushdown runs against appended postings and dead ids.
		if _, err := idx.Add(dataset.Synthetic(dataset.SynthConfig{N: 4, AvgEdges: 9, Labels: 5, Seed: rng.Int63()})...); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2 && idx.Size() > 2; i++ {
			if id := rng.Intn(idx.TotalGraphs()); !idx.IsRemoved(id) {
				if err := idx.Remove(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		vecs := mapAll(idx)
		queries := []*Graph{idx.Graph(rng.Intn(idx.TotalGraphs()))}
		queries = append(queries, dataset.Synthetic(dataset.SynthConfig{N: 1, AvgEdges: 6, Labels: 7, Seed: rng.Int63()})...)

		for trial := 0; trial < 6; trial++ {
			fs := []*pipeline.Filter{randomFilter(rng, idx, vecs)}
			if rng.Intn(3) == 0 { // filters AND together
				fs = append(fs, randomFilter(rng, idx, vecs))
			}
			holds := func(id int) bool {
				for _, f := range fs {
					if !filterHolds(f, idx.Graph(id), vecs[id]) {
						return false
					}
				}
				return true
			}
			pred := func(id int, _ *Graph) bool { return holds(id) }
			q := queries[rng.Intn(len(queries))]
			k := 1 + rng.Intn(idx.TotalGraphs())
			label := "round " + strconv.Itoa(round) + " trial " + strconv.Itoa(trial)

			for _, eng := range []Engine{EngineMapped, EngineVerified} {
				base := SearchOptions{K: k, Engine: eng, VerifyFactor: 2}
				fOpt := base
				fOpt.Filters = fs
				pOpt := base
				pOpt.Predicate = pred
				filtered, err := idx.Search(ctx, q, fOpt)
				if err != nil {
					t.Fatalf("%s %s filtered: %v", label, eng, err)
				}
				closured, err := idx.Search(ctx, q, pOpt)
				if err != nil {
					t.Fatalf("%s %s predicate: %v", label, eng, err)
				}
				if !reflect.DeepEqual(filtered.Results, closured.Results) {
					t.Fatalf("%s %s: pushdown diverges from predicate closure:\npushdown:  %v\npredicate: %v\nfilter %+v",
						label, eng, filtered.Results, closured.Results, fs[0])
				}
			}

			// Post-hoc oracle on the mapped engine: the unfiltered flat
			// ranking over everything, filtered after the fact, truncated
			// to K, must equal the pushdown ranking. Also run the filtered
			// search with NoPrune, which exercises the membership-bitmap
			// fallback instead of the restricted plan.
			full, err := idx.Search(ctx, q, SearchOptions{K: idx.TotalGraphs(), NoPrune: true})
			if err != nil {
				t.Fatal(err)
			}
			var posthoc []Result
			for _, r := range full.Results {
				if holds(r.ID) {
					posthoc = append(posthoc, r)
				}
			}
			if len(posthoc) > k {
				posthoc = posthoc[:k]
			}
			for _, noPrune := range []bool{false, true} {
				got, err := idx.Search(ctx, q, SearchOptions{K: k, Filters: fs, NoPrune: noPrune})
				if err != nil {
					t.Fatalf("%s noprune=%v: %v", label, noPrune, err)
				}
				if !reflect.DeepEqual(got.Results, posthoc) && !(len(got.Results) == 0 && len(posthoc) == 0) {
					t.Fatalf("%s noprune=%v: pushdown diverges from post-hoc filtering:\npushdown: %v\nposthoc:  %v\nfilter %+v",
						label, noPrune, got.Results, posthoc, fs[0])
				}
			}
		}
	}
}

// TestPipelineShardMergeEquivalence: property 3 — every pipeline shape
// produces the same Result (modulo Stats timings) on a 1-shard and a
// multi-shard collection over the same graphs, i.e. per-shard partial
// aggregates merge to the single-shard answer.
func TestPipelineShardMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	ctx := context.Background()
	idx, db := equivBuild(t, rng, 20+rng.Intn(150))

	s := NewStore(StoreOptions{})
	defer s.Close()
	one, err := s.CreateFromIndex("merge-one", idx, CollectionOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := s.CreateFromIndex("merge-many", idx, CollectionOptions{Shards: 2 + rng.Intn(4)})
	if err != nil {
		t.Fatal(err)
	}

	vecs := mapAll(idx)
	q := db[rng.Intn(len(db))]
	filter := pipeline.Stage{Filter: randomFilter(rng, idx, vecs)}
	search := pipeline.Stage{Search: &pipeline.Search{G: q, K: 1 + rng.Intn(idx.TotalGraphs())}}
	pipelines := []*pipeline.Pipeline{
		{Stages: []pipeline.Stage{filter, {Count: &pipeline.Count{}}}},
		{Stages: []pipeline.Stage{filter}},
		{Stages: []pipeline.Stage{filter, {Limit: &pipeline.Limit{N: 1 + rng.Intn(9)}}}},
		{Stages: []pipeline.Stage{filter, {GroupBy: &pipeline.GroupBy{Key: pipeline.KeyVertexLabel}}}},
		{Stages: []pipeline.Stage{filter, {GroupBy: &pipeline.GroupBy{Key: pipeline.KeyEdgeLabel, Top: 3}}}},
		{Stages: []pipeline.Stage{search, {GroupBy: &pipeline.GroupBy{Key: pipeline.KeyScoreBucket}}}},
		{Stages: []pipeline.Stage{filter, search, {TopK: &pipeline.TopK{K: 3}}}},
	}
	for pi, p := range pipelines {
		want, err := one.Query(ctx, p)
		if err != nil {
			t.Fatalf("pipeline %d on 1 shard: %v", pi, err)
		}
		got, err := many.Query(ctx, p)
		if err != nil {
			t.Fatalf("pipeline %d on %d shards: %v", pi, many.Shards(), err)
		}
		want.Stats, got.Stats = pipeline.Stats{}, pipeline.Stats{}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pipeline %d: %d-shard answer diverges from 1-shard:\nmany: %+v\none:  %+v",
				pi, many.Shards(), got, want)
		}
	}
}
