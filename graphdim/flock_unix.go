//go:build unix

package graphdim

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f. The
// kernel releases it automatically when the process dies — including
// kill -9 — so a crashed owner never strands the data directory.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
