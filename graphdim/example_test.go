package graphdim_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"

	"repro/graphdim"
	"repro/internal/dataset"
)

// Example demonstrates the core workflow: build an index over a graph
// database and answer a top-k similarity query in the mapped space.
func Example() {
	db := dataset.Chemical(dataset.ChemConfig{N: 30, MinVertices: 8, MaxVertices: 12, Seed: 4})
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 15,
		Tau:        0.15,
		MCSBudget:  2000,
	})
	if err != nil {
		panic(err)
	}
	// Query with a database graph: it is its own nearest neighbour.
	res, err := idx.Search(context.Background(), db[5], graphdim.SearchOptions{K: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Results[0].Distance == 0)
	// Output: true
}

// ExampleIndex_Search shows the per-query dials: the verified engine
// re-ranks mapped-space candidates by exact MCS dissimilarity, and a
// predicate restricts the search to a subset of the database.
func ExampleIndex_Search() {
	db := dataset.Chemical(dataset.ChemConfig{N: 30, MinVertices: 8, MaxVertices: 12, Seed: 4})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 15, Tau: 0.15, MCSBudget: 2000})
	if err != nil {
		panic(err)
	}
	res, err := idx.Search(context.Background(), db[5], graphdim.SearchOptions{
		K:            3,
		Engine:       graphdim.EngineVerified,
		VerifyFactor: 4, // verify the best 4·3 mapped-space candidates
		Predicate: func(id int, g *graphdim.Graph) bool {
			return id != 5 // everything but the query itself
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Engine)
	fmt.Println(len(res.Results) == 3)
	for _, r := range res.Results {
		if r.ID == 5 {
			fmt.Println("predicate violated")
		}
	}
	// Output:
	// verified
	// true
}

// ExampleIndex_Add grows a built index online: new graphs are mapped onto
// the fixed dimension set with a cheap VF2 pass — no re-mining, no DSPM
// re-run — and become searchable immediately.
func ExampleIndex_Add() {
	all := dataset.Chemical(dataset.ChemConfig{N: 32, MinVertices: 8, MaxVertices: 12, Seed: 4})
	db, extra := all[:30], all[30:]
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 15, Tau: 0.15, MCSBudget: 2000})
	if err != nil {
		panic(err)
	}
	ids, err := idx.Add(extra...)
	if err != nil {
		panic(err)
	}
	fmt.Println(ids)
	fmt.Println(idx.Size())
	fmt.Printf("%.3f\n", idx.StaleRatio())
	// Output:
	// [30 31]
	// 32
	// 0.062
}

// ExampleIndex_TopKBatch answers a batch of queries in one call, fanning
// them across the index's worker pool. Batch answers are identical to
// one-at-a-time TopK answers at any Options.Workers setting.
func ExampleIndex_TopKBatch() {
	db := dataset.Chemical(dataset.ChemConfig{N: 30, MinVertices: 8, MaxVertices: 12, Seed: 4})
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 15,
		Tau:        0.15,
		MCSBudget:  2000,
		Workers:    4, // offline build and batch-query fan-out bound
	})
	if err != nil {
		panic(err)
	}
	batches, err := idx.TopKBatch(db[:3], 2)
	if err != nil {
		panic(err)
	}
	for i, batch := range batches {
		// Each query is a database graph, so its nearest neighbour is
		// itself at distance 0.
		fmt.Println(i, batch[0].ID == i, batch[0].Distance)
	}
	// Output:
	// 0 true 0
	// 1 true 0
	// 2 true 0
}

// ExampleIndex_WriteTo persists a built index and reloads it with
// ReadIndex — the offline/online split: build once with dspm, serve
// queries from the saved file with gserve without re-mining or
// re-running DSPM.
func ExampleIndex_WriteTo() {
	db := dataset.Chemical(dataset.ChemConfig{N: 30, MinVertices: 8, MaxVertices: 12, Seed: 4})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 15, Tau: 0.15, MCSBudget: 2000})
	if err != nil {
		panic(err)
	}

	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		panic(err)
	}
	loaded, err := graphdim.ReadIndex(&buf)
	if err != nil {
		panic(err)
	}

	fmt.Println(loaded.Size() == idx.Size())
	fmt.Println(len(loaded.Dimensions()) == len(idx.Dimensions()))
	a, _ := idx.TopK(db[7], 3)
	b, _ := loaded.TopK(db[7], 3)
	fmt.Println(reflect.DeepEqual(a, b))
	// Output:
	// true
	// true
	// true
}

// ExampleStore shows the management layer: a collection sharded across
// parallel indexes answers exactly like an unsharded index, grows online,
// and compacts stale shards in place while staying searchable.
func ExampleStore() {
	db := dataset.Chemical(dataset.ChemConfig{N: 30, MinVertices: 8, MaxVertices: 12, Seed: 4})
	ctx := context.Background()

	store := graphdim.NewStore(graphdim.StoreOptions{})
	defer store.Close()
	coll, err := store.Create(ctx, "molecules", db, graphdim.CollectionOptions{
		Shards:   3,
		Build:    graphdim.Options{Dimensions: 15, Tau: 0.15, MCSBudget: 2000},
		Defaults: graphdim.SearchOptions{K: 5},
	})
	if err != nil {
		panic(err)
	}

	// The fan-out search merges per-shard top-k lists into the exact
	// unsharded ranking; K comes from the collection defaults.
	flat, err := graphdim.Build(db, graphdim.Options{Dimensions: 15, Tau: 0.15, MCSBudget: 2000})
	if err != nil {
		panic(err)
	}
	want, _ := flat.Search(ctx, db[5], graphdim.SearchOptions{K: 5})
	got, err := coll.Search(ctx, db[5], graphdim.SearchOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("sharded == unsharded:", reflect.DeepEqual(got.Results, want.Results))

	// Grow the collection, then rebuild every stale shard while readers
	// keep serving.
	if _, err := coll.Add(ctx, dataset.Chemical(dataset.ChemConfig{N: 20, MinVertices: 8, MaxVertices: 12, Seed: 9})...); err != nil {
		panic(err)
	}
	compacted, err := coll.Compact(ctx, true)
	if err != nil {
		panic(err)
	}
	fmt.Println("graphs:", coll.Size(), "shards compacted:", compacted)
	// Output:
	// sharded == unsharded: true
	// graphs: 50 shards compacted: 3
}
