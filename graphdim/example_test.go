package graphdim_test

import (
	"fmt"

	"repro/graphdim"
	"repro/internal/dataset"
)

// Example demonstrates the core workflow: build an index over a graph
// database and answer a top-k similarity query in the mapped space.
func Example() {
	db := dataset.Chemical(dataset.ChemConfig{N: 30, MinVertices: 8, MaxVertices: 12, Seed: 4})
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 15,
		Tau:        0.15,
		MCSBudget:  2000,
	})
	if err != nil {
		panic(err)
	}
	// Query with a database graph: it is its own nearest neighbour.
	results, err := idx.TopK(db[5], 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(results[0].Distance == 0)
	// Output: true
}
