package graphdim

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/wal"
)

// Durability. A store opened against a data directory (OpenStore,
// CreateStore, OpenOrCreateStore) is durable: every committed
// Collection.Add and Remove appends a record to a per-collection
// write-ahead log (internal/wal) — fsynced before the shard state
// publishes, so the write is on disk before any caller or reader can
// observe it — and Checkpoint persists a full snapshot (the Save format)
// plus the log position it covers, truncating replayed segments. Opening
// the directory again loads the last checkpoint and replays the log
// tail, so a process kill at any instant — SIGKILL included — recovers
// exactly the committed writes.
//
// What is logged is deliberately minimal: the graphs and ids of add
// batches and the ids of remove batches. Everything derivable from those
// — binary vectors (the VF2 mapping is deterministic), posting lists,
// the query cache, shard generation counters — is rebuilt during replay
// rather than logged, which keeps the log small and the update path
// decoupled from the read-side accelerators. Compaction likewise never
// touches the log: a rebuild changes no logical content (records address
// graphs by global id, which compaction preserves), so a swap between an
// append and a checkpoint strands nothing.

// walDirName is the per-collection log directory under the collection's
// directory in the store's data dir.
const walDirName = "wal"

// lockFileName is the advisory single-owner lock at the root of a data
// directory.
const lockFileName = "LOCK"

// lockDataDir takes an exclusive advisory lock on <dir>/LOCK — two
// processes owning the same data directory would each truncate and
// append the other's live log segments, exactly the acknowledged-write
// loss the WAL exists to prevent. The lock dies with the process (flock
// semantics; see flock_unix.go — non-unix platforms degrade to no
// enforcement), so a kill -9 never strands it. Read-only opens
// (WALOptions.Disabled) skip the lock: they may inspect a directory a
// live server owns.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("graphdim: locking data directory: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("graphdim: data directory %s is in use by another process (flock: %v)", dir, err)
	}
	return f, nil
}

// WALOptions configures the write-ahead log of a durable store (see
// StoreOptions.WAL).
type WALOptions struct {
	// Disabled opens the store without a log: online writes are volatile
	// until the next Save or Checkpoint, as with NewStore.
	Disabled bool
	// SegmentBytes caps one log segment file before the log rolls to a
	// fresh one; zero means the wal default (64 MiB).
	SegmentBytes int64
	// NoSync skips the per-commit fsync: writes survive a clean shutdown
	// but a kill can lose the OS write-back window. For tests and
	// benchmarks.
	NoSync bool
	// SyncObserver, when non-nil, is called after every completed log
	// fsync with its duration and the number of records the group commit
	// covered — the hook a server uses to feed latency histograms. It
	// runs with the log locked and must be fast and non-blocking.
	SyncObserver func(d time.Duration, records int)

	// failSync injects fsync failures into every collection's log — a
	// hook for crash-recovery property tests in this package, deliberately
	// unexported so the serving surface cannot reach it.
	failSync func() error
}

func (o WALOptions) options() wal.Options {
	return wal.Options{
		SegmentBytes: o.SegmentBytes,
		NoSync:       o.NoSync,
		SyncObserver: o.SyncObserver,
		FailSync:     o.failSync,
	}
}

// WALStats reports a collection's write-ahead log counters (see
// CollectionStats.WAL).
type WALStats struct {
	// Appends counts committed log records since open; Syncs the fsyncs
	// they issued. Group commit makes Appends/Syncs the achieved
	// amortization factor.
	Appends, Syncs int64
	// SyncNanos is the cumulative time spent inside fsync; MaxBatch the
	// largest record group one fsync has committed.
	SyncNanos int64
	MaxBatch  int
	// LastSeq is the newest record's sequence number; CheckpointSeq is
	// the highest sequence covered by a checkpoint. The gap between them
	// is the tail a crash would replay.
	LastSeq, CheckpointSeq uint64
	// Segments and Bytes describe the log's on-disk footprint.
	Segments int
	Bytes    int64
	// Retained counts registered follower retention holds; RetainSeq is
	// the lowest acknowledged sequence among them (0 with none) — the
	// position checkpoint truncation is clamped to.
	Retained  int
	RetainSeq uint64
}

// PartialAddError reports a Collection.Add that landed on some shards
// but failed on others: the graphs whose global ids are in Applied are
// committed and searchable (and, on a durable store, logged as such),
// the rest of the batch is not, and the batch's ids are burned either
// way. Callers that need all-or-nothing semantics should treat the
// applied ids as an incomplete write and Remove them.
type PartialAddError struct {
	// Applied holds the global ids that committed, ascending.
	Applied []int
	// Total is the size of the attempted batch.
	Total int
	// Err is the first underlying per-shard failure.
	Err error
}

func (e *PartialAddError) Error() string {
	// The message stays bounded for huge batches; the full id list is in
	// Applied for callers that need it.
	ids := "none"
	if n := len(e.Applied); n > 0 && n <= 8 {
		ids = fmt.Sprint(e.Applied)
	} else if n > 8 {
		ids = fmt.Sprintf("[%d ... %d]", e.Applied[0], e.Applied[n-1])
	}
	return fmt.Sprintf("graphdim: add applied %d of %d graphs (ids %s) before failing: %v",
		len(e.Applied), e.Total, ids, e.Err)
}

func (e *PartialAddError) Unwrap() error { return e.Err }

// Dir returns the data directory this store is attached to, or "" for a
// purely in-memory store (NewStore, never durable).
func (s *Store) Dir() string { return s.dir }

// CreateStore initializes an empty durable store at dir: the directory
// is created, an empty manifest written, and every collection created
// afterwards persists immediately and logs its writes. It fails if dir
// already holds a store.
func CreateStore(dir string, opt StoreOptions) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("graphdim: create store: %s already holds a store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graphdim: create store: %w", err)
	}
	s := NewStore(opt)
	s.dir = dir
	if !opt.WAL.Disabled {
		lock, err := lockDataDir(dir)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.lock = lock
	}
	if err := s.saveTo(dir, false, nil); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// OpenOrCreateStore opens the store at dir, or initializes an empty one
// if the directory holds no manifest — the open-or-create entry point a
// serving process wants at startup. Only a missing manifest triggers the
// create branch: a manifest that opens with errors (a missing shard
// file, say) is a broken store and reports as exactly that.
func OpenOrCreateStore(dir string, opt StoreOptions) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); errors.Is(err, fs.ErrNotExist) {
		return CreateStore(dir, opt)
	}
	return OpenStore(dir, opt)
}

// Checkpoint persists the whole store to its data directory — exactly a
// Save — records per collection the log position the snapshot covers,
// and truncates every fully replayed log segment. After a checkpoint a
// reopen replays only the records committed since. It fails on a store
// without a data directory.
//
// Checkpoints, Saves, and background compaction may all run while the
// store serves reads and writes; checkpoints of one store serialize with
// each other and with Save.
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return fmt.Errorf("graphdim: store has no data directory (open it with OpenStore, CreateStore or OpenOrCreateStore)")
	}
	return s.saveTo(s.dir, true, nil)
}

// Checkpoints returns how many checkpoints this store has completed
// since it was opened.
func (s *Store) Checkpoints() int64 { return s.checkpoints.Load() }

// attachWAL opens (or creates) the collection's log under the store's
// data directory. No-op on a non-durable store or when the WAL is
// disabled.
func (s *Store) attachWAL(c *Collection) error {
	if s.dir == "" || s.walOpt.Disabled {
		return nil
	}
	o := s.walOpt.options()
	// A fresh log continues the checkpoint's numbering rather than
	// restarting at 1: a follower bootstrapped from a primary snapshot
	// has a manifest position deep in the primary's sequence space and
	// an empty local log, and the records it mirrors must land at their
	// primary-assigned sequences. No-op when segments already exist, and
	// for ordinary primaries walBase is 0 on the paths that create logs.
	o.FirstSeq = c.walBase + 1
	l, err := wal.Open(filepath.Join(s.dir, c.name, walDirName), o)
	if err != nil {
		return fmt.Errorf("graphdim: collection %q: %w", c.name, err)
	}
	c.wal = l
	return nil
}

// verifyNoWALTail guards a WAL-disabled open of a durable directory: if
// the collection's log holds acknowledged records beyond the checkpoint
// at seq, opening without replay would silently drop them (and a later
// WAL-enabled open would replay them over a diverged image), so the open
// is refused instead.
func (s *Store) verifyNoWALTail(name string, seq uint64) error {
	// Read-only peek: a disabled open must not truncate torn tails or
	// otherwise write — it may be inspecting a directory another
	// process's live log owns, or a read-only mount.
	last, err := wal.LastSeqIn(filepath.Join(s.dir, name, walDirName))
	if err != nil {
		return fmt.Errorf("graphdim: collection %q: %w", name, err)
	}
	if last > seq {
		return fmt.Errorf("graphdim: collection %q has %d unreplayed wal records beyond the checkpoint; open without WALOptions.Disabled to recover them", name, last-seq)
	}
	return nil
}

// replayWAL applies the log tail after seq onto the collection's
// just-loaded checkpoint state. A TypeApplied record amends the add
// batch directly before it (partial or aborted applies); everything
// else applies verbatim. Replay is deterministic — the VF2 mapping
// depends only on the graph and the dimension set — so the recovered
// state is bit-identical to the pre-crash committed state.
func (c *Collection) replayWAL(seq uint64) error {
	ctx := context.Background()
	var pending *wal.Record
	flush := func() error {
		if pending == nil {
			return nil
		}
		rec := pending
		pending = nil
		return c.replayAdd(ctx, rec.First, rec.Graphs, nil)
	}
	err := c.wal.Replay(seq, func(rec wal.Record) error {
		switch rec.Type {
		case wal.TypeAdd:
			if err := flush(); err != nil {
				return err
			}
			r := rec
			pending = &r
			return nil
		case wal.TypeApplied:
			if pending == nil || pending.First != rec.First || len(pending.Graphs) != rec.Total {
				return fmt.Errorf("graphdim: wal record %d amends no matching add batch", rec.Seq)
			}
			add := pending
			pending = nil
			if len(rec.IDs) == 0 {
				// The batch never landed anywhere: skip its graphs, but
				// still burn its ids — logged ids are never reassigned
				// (see failAdd), and replay must reproduce that.
				if next := int64(add.First + len(add.Graphs)); next > c.nextID.Load() {
					c.nextID.Store(next)
				}
				return nil
			}
			return c.replayAdd(ctx, add.First, add.Graphs, rec.IDs)
		case wal.TypeRemove:
			if err := flush(); err != nil {
				return err
			}
			return c.replayRemove(rec.IDs)
		default:
			return fmt.Errorf("graphdim: wal record %d has unknown type %d", rec.Seq, rec.Type)
		}
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	// Everything in the log is now reflected in shard state (a trailing
	// unamended add replays in full, matching crash semantics), so the
	// settled watermark is the log tail.
	c.applied.Store(c.wal.LastSeq())
	return nil
}

// replayAdd re-applies one logged add batch: all of it, or — after a
// partial apply — just the subset in applied. The batch's ids are
// burned in either case, exactly as the original Add did.
func (c *Collection) replayAdd(ctx context.Context, first int, gs []*Graph, applied []int) error {
	ids := applied
	if ids == nil {
		ids = make([]int, len(gs))
		for i := range gs {
			ids[i] = first + i
		}
	}
	perShard := make(map[int]*shardBatch)
	for _, id := range ids {
		if id < first || id >= first+len(gs) {
			return fmt.Errorf("graphdim: wal applied id %d outside batch [%d,%d)", id, first, first+len(gs))
		}
		sh := placeID(id, len(c.shards))
		b := perShard[sh]
		if b == nil {
			b = &shardBatch{}
			perShard[sh] = b
		}
		b.gs = append(b.gs, gs[id-first])
		b.globals = append(b.globals, id)
	}
	// Deterministic shard order; replay is offline, so sequential per-
	// shard application is fine (the per-shard mapping still fans out
	// across the index's workers).
	order := make([]int, 0, len(perShard))
	for sh := range perShard {
		order = append(order, sh)
	}
	sort.Ints(order)
	for _, shIdx := range order {
		b := perShard[shIdx]
		if err := c.shards[shIdx].add(ctx, b.gs, b.globals); err != nil {
			return fmt.Errorf("graphdim: replaying add batch at id %d on shard %d: %w", first, shIdx, err)
		}
	}
	if next := int64(first + len(gs)); next > c.nextID.Load() {
		c.nextID.Store(next)
	}
	return nil
}

// replayRemove re-applies one logged remove batch.
func (c *Collection) replayRemove(ids []int) error {
	perShard := make(map[int][]int)
	for _, id := range ids {
		sh := placeID(id, len(c.shards))
		perShard[sh] = append(perShard[sh], id)
	}
	order := make([]int, 0, len(perShard))
	for sh := range perShard {
		order = append(order, sh)
	}
	sort.Ints(order)
	for _, shIdx := range order {
		if err := c.shards[shIdx].remove(perShard[shIdx]); err != nil {
			return fmt.Errorf("graphdim: replaying remove on shard %d: %w", shIdx, err)
		}
	}
	return nil
}

// walStats snapshots the collection's log counters; nil without a log.
func (c *Collection) walStats() *WALStats {
	if c.wal == nil {
		return nil
	}
	st := c.wal.Stats()
	return &WALStats{
		Appends:       st.Appends,
		Syncs:         st.Syncs,
		SyncNanos:     st.SyncNanos,
		MaxBatch:      st.MaxBatch,
		LastSeq:       st.LastSeq,
		CheckpointSeq: st.CheckpointSeq,
		Segments:      st.Segments,
		Bytes:         st.Bytes,
		Retained:      st.Retained,
		RetainSeq:     st.RetainSeq,
	}
}
