package graphdim

import (
	"container/heap"
	"context"
	"fmt"
	"os"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/vecspace"
	"repro/internal/wal"
)

// Store manages named collections of sharded indexes — the layer between
// the single-Index library and a serving process. Each collection splits
// its database across N shards by hashing global ids; Add and persistence
// parallelize per shard, Search fans out across shards and merges the
// per-shard top-k heaps into one globally ranked result, and a background
// compactor rebuilds any shard whose StaleRatio crosses the store's policy
// threshold while readers keep serving (see CompactionPolicy).
//
// All methods are safe for concurrent use. Cross-shard fan-out draws
// workers from one store-wide pool.Budget, bounding the extra goroutines
// concurrent searches, adds, and saves spend on fan-out at
// StoreOptions.Workers in total; a collection's per-shard index workers
// are divided across its shards at creation so shard-internal fan-out
// does not multiply with the shard count. Compaction rebuilds use the
// collection's Build.Workers and run one shard at a time.
type Store struct {
	budget *pool.Budget
	policy CompactionPolicy
	onComp func(collection string, shard int, err error)

	// dir is the data directory of a durable store ("" = in-memory only);
	// walOpt configures the per-collection write-ahead logs under it, and
	// checkpoints counts completed Checkpoint calls. See durable.go.
	// memory is how checkpointed segments are served (StoreOptions.Memory).
	dir         string
	walOpt      WALOptions
	memory      MemoryMode
	checkpoints atomic.Int64
	// lock is the data directory's single-owner flock file, nil for
	// in-memory and read-only (WAL-disabled) stores; released by Close.
	lock *os.File

	mu          sync.RWMutex
	collections map[string]*Collection
	// creating reserves collection names mid-create, between claiming
	// the name (and its on-disk wal directory) and publishing the fully
	// initialized collection — so a duplicate create can never open a
	// second log on a live directory, and a collection is never
	// reachable before its wal field is set.
	creating map[string]bool
	closed   bool
	// saveMu serializes Save calls: a save sweeps files the just-written
	// manifest does not reference, which would delete a concurrent save's
	// in-flight shard files.
	saveMu sync.Mutex

	stop     chan struct{}
	done     chan struct{}
	bgCtx    context.Context
	bgCancel context.CancelFunc
}

// CompactionPolicy decides when the store rebuilds a shard in the
// background.
type CompactionPolicy struct {
	// StaleThreshold is the StaleRatio at or above which a shard is
	// rebuilt. Zero means the default 0.3 (the EXPERIMENTS.md starting
	// point); a negative value disables threshold-triggered compaction
	// (Collection.Compact with force still works).
	StaleThreshold float64
	// Interval is how often the background compactor scans every shard of
	// every collection. Zero disables the background loop entirely —
	// compaction then runs only through Collection.Compact.
	Interval time.Duration
}

func (p CompactionPolicy) threshold() float64 {
	if p.StaleThreshold == 0 {
		return 0.3
	}
	return p.StaleThreshold
}

// enabled reports whether threshold-triggered compaction is on.
func (p CompactionPolicy) enabled() bool { return p.StaleThreshold >= 0 }

// StoreOptions configures NewStore.
type StoreOptions struct {
	// Workers is the shared cross-shard worker budget: the number of extra
	// goroutines the whole store may use at once for shard fan-out
	// (search, add, save/load). Zero or negative means one per CPU. Each
	// shard operation additionally runs on its calling goroutine, so fan-
	// out makes progress even with the budget exhausted.
	Workers int
	// Compaction is the background rebuild policy.
	Compaction CompactionPolicy
	// OnCompaction, when non-nil, is called after every completed or
	// failed compaction attempt with the collection, shard, and error
	// (nil on success) — the hook serving layers log from. It must be
	// safe for concurrent calls.
	OnCompaction func(collection string, shard int, err error)
	// WAL configures the write-ahead log of a durable store (OpenStore,
	// CreateStore, OpenOrCreateStore); NewStore ignores it — a store
	// without a data directory has nowhere to log.
	WAL WALOptions
	// Memory selects how a durable store serves checkpointed shard data:
	// mapped read-only from v4 segment files (the default where the
	// platform supports it — vectors, graph payloads, and posting lists
	// stay in the page cache and fault in on demand, so a collection can
	// exceed RAM) or fully rehydrated onto the heap. See MemoryMode.
	// NewStore ignores it; checkpoints predating the segment format
	// always load via the heap path regardless.
	Memory MemoryMode
}

// MemoryMode selects heap vs mmap serving of checkpointed segments.
type MemoryMode int

const (
	// MemoryAuto maps v4 segment checkpoints read-only where the
	// platform supports mmap (see segment.CanMap) and falls back to the
	// heap elsewhere — the default.
	MemoryAuto MemoryMode = iota
	// MemoryMap requests mapped serving explicitly. On a platform
	// without mmap support it degrades to the heap (the portable
	// fallback), identical answers at heap-resident cost.
	MemoryMap
	// MemoryHeap rehydrates every checkpoint onto the heap — the legacy
	// behavior, and the mode to pick when the data directory lives on a
	// filesystem with poor mmap semantics (some network mounts).
	MemoryHeap
)

// NewStore returns an empty store and, if the policy has an interval,
// starts its background compactor. Close stops it.
func NewStore(opt StoreOptions) *Store {
	s := &Store{
		budget:      pool.NewBudget(opt.Workers),
		policy:      opt.Compaction,
		onComp:      opt.OnCompaction,
		walOpt:      opt.WAL,
		memory:      opt.Memory,
		collections: make(map[string]*Collection),
		creating:    make(map[string]bool),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	s.bgCtx, s.bgCancel = context.WithCancel(context.Background())
	if s.policy.Interval > 0 && s.policy.enabled() {
		go s.compactLoop()
	} else {
		close(s.done)
	}
	return s
}

// Close stops the background compactor, cancelling any rebuild it has in
// flight (the shard being rebuilt is left on its old generation), waits
// for the loop to exit, and closes every collection's write-ahead log.
// Close does NOT checkpoint — records already fsynced stay on disk for
// the next open to replay, so closing without a checkpoint is exactly a
// crash as far as the data directory is concerned (serving layers
// checkpoint first on a graceful shutdown). The collections stay
// readable; on a durable store, writes after Close fail at the log. It
// is idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.bgCancel()
	close(s.stop)
	<-s.done
	for _, c := range s.snapshotCollections() {
		if c.wal != nil {
			c.wal.Close()
		}
	}
	if s.lock != nil {
		s.lock.Close() // releases the data directory's flock
	}
}

func (s *Store) compactLoop() {
	defer close(s.done)
	t := time.NewTicker(s.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.compactPass(s.bgCtx)
		}
	}
}

// compactPass rebuilds every shard at or above the stale threshold, one at
// a time — compaction is a full offline build, so the pass deliberately
// avoids stacking rebuilds on top of each other.
func (s *Store) compactPass(ctx context.Context) {
	for _, c := range s.snapshotCollections() {
		for i, sh := range c.shards {
			select {
			case <-s.stop:
				return
			default:
			}
			if sh.staleRatio() < s.policy.threshold() {
				continue
			}
			ran, err := sh.tryCompact(ctx, c.build, c.shardIdxWorkers())
			if err == errShardTooSmall || (err != nil && ctx.Err() != nil) {
				// Too small to rebuild, or cancelled by Close: not worth
				// reporting every scan.
				continue
			}
			if (ran || err != nil) && s.onComp != nil {
				s.onComp(c.name, i, err)
			}
		}
	}
}

func (s *Store) snapshotCollections() []*Collection {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		out = append(out, c)
	}
	return out
}

// collectionName constrains names to URL- and filesystem-safe tokens: the
// name becomes both a /v1 path segment and a directory under Save.
var collectionName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,127}$`)

// CollectionOptions configures Create and CreateFromIndex.
type CollectionOptions struct {
	// Shards is the number of index shards; zero means 1.
	Shards int
	// Build configures the initial dimension selection (Create only) and
	// every subsequent per-shard compaction rebuild. Zero values select
	// the library defaults, as in Build. The Progress callback is used
	// only by the initial build, never by background rebuilds.
	Build Options
	// Cache configures the collection's query-result cache: an LRU over
	// complete Search results keyed by (canonical query, effective
	// options) and fenced by the shard generation vector, so any
	// committed Add/Remove/compaction invalidates affected entries for
	// free. The zero value disables caching. See CacheOptions.
	Cache CacheOptions
	// Defaults overlays zero-valued SearchOptions fields of every Search
	// against the collection: a query leaving K (or VerifyFactor,
	// MaxCandidates, Metric, Engine, Predicate) at its zero value gets the
	// collection's default before validation, and fields the defaults also
	// leave zero keep the library default. Note the overlay cannot
	// distinguish "unset" from an explicit zero, so a collection whose
	// default Engine is not EngineMapped (= 0) routes zero-Engine queries
	// to that default.
	Defaults SearchOptions
}

func (o CollectionOptions) validate() error {
	if o.Shards < 0 {
		return fmt.Errorf("graphdim: Shards must be >= 0 (0 = 1 shard), got %d", o.Shards)
	}
	if o.Shards > maxShards {
		return fmt.Errorf("graphdim: Shards must be <= %d, got %d", maxShards, o.Shards)
	}
	if err := o.Build.Validate(); err != nil {
		return err
	}
	if err := o.Cache.validate(); err != nil {
		return err
	}
	// Defaults are a partial SearchOptions: K may stay zero ("no
	// collection default"), but every set field must be in domain.
	d := o.Defaults
	if d.K < 0 {
		return fmt.Errorf("graphdim: Defaults.K must be >= 0, got %d", d.K)
	}
	if d.K == 0 {
		d.K = 1 // satisfy the full validator for the remaining fields
	}
	return d.Validate()
}

func (o CollectionOptions) shards() int {
	if o.Shards == 0 {
		return 1
	}
	return o.Shards
}

// maxShards bounds the shard count well above any sane deployment: each
// shard is a full index with its own dimension set after compaction.
const maxShards = 1024

// Collection is one named, sharded graph database inside a Store. Global
// ids are assigned densely in insertion order and are stable for the life
// of the collection, across Save/Open and across compactions; the hash
// placement of an id never changes.
type Collection struct {
	store    *Store
	name     string
	build    Options
	defaults SearchOptions
	shards   []*shard
	cacheOpt CacheOptions
	cache    *queryCache // nil when the cache is disabled

	// wal is the collection's write-ahead log on a durable store (nil
	// otherwise): Add and Remove append — and fsync — a record under
	// addMu before any shard publishes, so an acknowledged write is on
	// disk before it is observable. See durable.go.
	wal *wal.Log
	// walBase is the log position the loaded checkpoint covered, carried
	// so saves on a WAL-disabled open preserve it instead of resetting
	// wal_seq below segments still on disk (which a later WAL-enabled
	// open would then wrongly replay).
	walBase uint64

	addMu sync.Mutex // serializes writers (Add, Remove) collection-wide
	// nextID is written under addMu; atomic so read-only paths (Stats)
	// never block behind a long Add or Save holding the writer lock.
	nextID atomic.Int64
	// applied is the settled watermark: the highest WAL sequence whose
	// application outcome is final and visible in shard state. On a
	// primary it trails LastSeq only while a writer holds addMu (an add
	// batch between its append and its settle — success, or the
	// amendment failAdd logs). A replication stream ships only records
	// at or below it, so a shipped TypeAdd's amendment, if any, is
	// already in the log behind it. On a follower it is advanced by the
	// replica applier and trails the mirrored log by the buffered
	// pending batch. Written under addMu; atomic for lock-free readers
	// (freshness tokens, checkpoints, stats).
	applied atomic.Uint64

	// failShard, when non-nil, injects a per-shard failure into Add's
	// fan-out — test-only, for exercising partial-apply paths that
	// otherwise need precisely timed cancellation.
	failShard func(shard int) error
}

// Create builds a new collection from db: one dimension selection over the
// full database (so every shard starts in the same mapped space and a
// sharded search is exactly equivalent to an unsharded one), then a split
// across opt.Shards shards by hash placement. The build is the expensive
// offline pipeline of BuildContext and honours ctx.
func (s *Store) Create(ctx context.Context, name string, db []*Graph, opt CollectionOptions) (*Collection, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	// Fail fast on a bad or taken name — the build below is minutes of
	// CPU. A create racing this check to the same name is still caught at
	// the insert inside CreateFromIndex.
	if !collectionName.MatchString(name) {
		return nil, fmt.Errorf("graphdim: invalid collection name %q (want [a-zA-Z0-9][a-zA-Z0-9._-]*, at most 128 chars)", name)
	}
	s.mu.RLock()
	_, taken := s.collections[name]
	s.mu.RUnlock()
	if taken {
		return nil, fmt.Errorf("graphdim: collection %q already exists", name)
	}
	idx, err := BuildContext(ctx, db, opt.Build)
	if err != nil {
		return nil, err
	}
	return s.CreateFromIndex(name, idx, opt)
}

// CreateFromIndex splits an already built (or loaded) index into a sharded
// collection without re-mining or re-running DSPM: every graph keeps its
// id — the global id — and lands on the shard the id hashes to; shards
// share the index's dimension set until their first compaction. The source
// index should not be mutated afterwards (graphs and vectors are shared,
// not copied).
func (s *Store) CreateFromIndex(name string, src *Index, opt CollectionOptions) (*Collection, error) {
	if src == nil {
		return nil, fmt.Errorf("graphdim: nil index")
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !collectionName.MatchString(name) {
		return nil, fmt.Errorf("graphdim: invalid collection name %q (want [a-zA-Z0-9][a-zA-Z0-9._-]*, at most 128 chars)", name)
	}

	nsh := opt.shards()
	snap := src.snap.Load()
	type acc struct {
		db        []*Graph
		vectors   []*vecspace.BitVector
		dead      []bool
		deadCount int
		globals   []int
		// baseN/baseDead carry the source's staleness bookkeeping into
		// the shard: ids below the source's baseN predate its dimension
		// selection, and since ids append in ascending order they are
		// exactly the part's leading entries.
		baseN, baseDead int
	}
	parts := make([]acc, nsh)
	for id := range snap.db {
		p := &parts[placeID(id, nsh)]
		p.db = append(p.db, snap.graph(id))
		p.vectors = append(p.vectors, snap.vectorAt(id))
		p.dead = append(p.dead, snap.dead[id])
		if snap.dead[id] {
			p.deadCount++
		}
		if id < snap.baseN {
			p.baseN++
			if snap.dead[id] {
				p.baseDead++
			}
		}
		p.globals = append(p.globals, id)
	}
	c := &Collection{
		store:    s,
		name:     name,
		build:    opt.Build,
		defaults: opt.Defaults,
		shards:   make([]*shard, nsh),
		cacheOpt: opt.Cache,
		cache:    newQueryCache(opt.Cache),
	}
	c.nextID.Store(int64(len(snap.db)))
	// Divide the source index's worker bound across the shards: the
	// cross-shard budget already parallelizes shard-level fan-out, so
	// giving every shard the full bound would run shards × workers
	// goroutines for one Add.
	shardWorkers := src.workers / nsh
	if shardWorkers < 1 {
		shardWorkers = 1
	}
	for i := range c.shards {
		p := parts[i]
		c.shards[i] = newShard(&shardState{
			idx: newIndex(src.features, src.weights, src.metric, src.mcsOpt, shardWorkers, &snapshot{
				db:        p.db,
				vectors:   p.vectors,
				dead:      p.dead,
				deadCount: p.deadCount,
				baseN:     p.baseN,
				baseDead:  p.baseDead,
			}),
			globals: p.globals,
		})
	}

	// Reserve the name before touching its wal directory — a losing
	// duplicate create must never run torn-tail recovery against a live
	// collection's log — and publish the collection only after its wal
	// field is set, so no reader ever observes it half-initialized.
	s.mu.Lock()
	if _, ok := s.collections[name]; ok || s.creating[name] {
		s.mu.Unlock()
		return nil, fmt.Errorf("graphdim: collection %q already exists", name)
	}
	s.creating[name] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.creating, name)
		s.mu.Unlock()
	}()

	// The wal directory is claimed and the create checkpoint installed
	// under one continuous saveMu hold: a concurrent checkpoint's sweep
	// can therefore never observe the fresh (not yet manifested)
	// directory and unlink its live segment.
	s.saveMu.Lock()
	if err := s.attachWAL(c); err != nil {
		s.saveMu.Unlock()
		return nil, err
	}

	// The initial build is never logged (replaying a mining run would be
	// absurd); a durable create persists it right away instead, and the
	// collection becomes reachable only once that checkpoint is
	// installed — so no write can be acknowledged against a collection
	// that would vanish if the checkpoint failed, and a successful
	// create is itself durable. (saveToLocked publishes the collection
	// under its own lock; see its doc comment.) A checkpoint covers the
	// whole store — create and drop are rare admin operations, priced
	// accordingly.
	if s.dir != "" {
		if err := s.saveToLocked(s.dir, true, c); err != nil {
			s.saveMu.Unlock()
			if c.wal != nil {
				c.wal.Close()
			}
			return nil, fmt.Errorf("graphdim: persisting new collection %q: %w", name, err)
		}
		s.saveMu.Unlock()
	} else {
		s.saveMu.Unlock()
		s.mu.Lock()
		s.collections[name] = c
		s.mu.Unlock()
	}
	return c, nil
}

// Collection returns the named collection, if it exists.
func (s *Store) Collection(name string) (*Collection, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.collections[name]
	return c, ok
}

// Collections returns the collection names in lexical order.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.collections))
	for name := range s.collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Drop removes the named collection from the store. In-flight reads
// against the collection finish normally — the collection object stays
// valid, it just stops being reachable by name. On a durable store the
// drop checkpoints immediately (so a restart does not resurrect the
// collection) and closes its log: late writes to the dropped collection
// fail rather than append to a deleted log.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	c, ok := s.collections[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("graphdim: collection %q not found", name)
	}
	delete(s.collections, name)
	s.mu.Unlock()
	// Close the log BEFORE the checkpoint whose sweep deletes its
	// segments: a late Add through a retained handle must fail loudly at
	// the closed log, never be acknowledged into an unlinked segment.
	if c.wal != nil {
		c.wal.Close()
	}
	if s.dir != "" {
		if err := s.Checkpoint(); err != nil {
			// Un-drop: a failed checkpoint must not leave memory (gone)
			// and disk (still present, resurrected on restart)
			// disagreeing — unless a racing create took the name in the
			// meantime, in which case the drop stands and the next
			// successful checkpoint settles the directory. The restored
			// collection keeps its closed log, so further writes fail
			// until a restart recovers the store properly — the failing
			// disk behind the failed checkpoint needs attention anyway.
			s.mu.Lock()
			if _, taken := s.collections[name]; !taken {
				s.collections[name] = c
			}
			s.mu.Unlock()
			return fmt.Errorf("graphdim: persisting drop of %q: %w", name, err)
		}
	}
	return nil
}

// Name returns the collection's name.
func (c *Collection) Name() string { return c.name }

// Shards returns the number of shards.
func (c *Collection) Shards() int { return len(c.shards) }

// Defaults returns the collection's default search-option overlay.
func (c *Collection) Defaults() SearchOptions { return c.defaults }

// shardIdxWorkers is the per-shard share of the collection's worker
// bound — the steady-state internal fan-out each shard index gets, so
// that shard-internal parallelism does not multiply with the shard count.
func (c *Collection) shardIdxWorkers() int {
	w := pool.DefaultWorkers(c.build.Workers) / len(c.shards)
	if w < 1 {
		w = 1
	}
	return w
}

// Size returns the number of live (searchable) graphs across all shards.
func (c *Collection) Size() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.state.Load().idx.Size()
	}
	return n
}

// Graph resolves a global id. Tombstoned graphs remain addressable, as in
// Index.Graph, until the owning shard's next compaction reclaims them
// (a compacted shard keeps only its live graphs); ids never assigned,
// beyond the store, or reclaimed return false.
func (c *Collection) Graph(id int) (*Graph, bool) {
	if id < 0 {
		return nil, false
	}
	return c.shards[placeID(id, len(c.shards))].graph(id)
}

// overlay fills zero-valued fields of opt from the collection defaults —
// see CollectionOptions.Defaults and SearchOptions.NoDefaults.
func (c *Collection) overlay(opt SearchOptions) SearchOptions {
	if opt.NoDefaults {
		return opt
	}
	d := c.defaults
	if opt.K == 0 {
		opt.K = d.K
	}
	if opt.Engine == 0 {
		opt.Engine = d.Engine
	}
	if opt.VerifyFactor == 0 {
		opt.VerifyFactor = d.VerifyFactor
	}
	if opt.MaxCandidates == 0 {
		opt.MaxCandidates = d.MaxCandidates
	}
	if opt.Metric == MetricIndexDefault {
		opt.Metric = d.Metric
	}
	if opt.Predicate == nil {
		opt.Predicate = d.Predicate
	}
	if opt.Filters == nil {
		opt.Filters = d.Filters
	}
	return opt
}

// Search answers one top-k query against the collection: the query fans
// out to every shard in parallel (drawing workers from the store budget),
// each shard ranks its slice of the database, and the per-shard top-k
// lists merge into one globally ranked result with ties broken by
// ascending global id. For a collection whose shards still share the
// build-time dimension set — always true before the first compaction —
// the merged mapped/exact result is exactly the one an unsharded Index
// over the same graphs returns: identical ids and identical scores. After
// a shard has been compacted it ranks in its own (re-selected) mapped
// space; exact and fully verified scores remain directly comparable.
//
// SearchOptions is the same type Index.Search takes; zero-valued fields
// first take the collection's defaults (see CollectionOptions.Defaults).
// The Predicate, like the returned Results, sees global ids. The result's
// Matched bitset is the first shard's view of the query.
func (c *Collection) Search(ctx context.Context, q *Graph, opt SearchOptions) (*SearchResult, error) {
	start := time.Now()
	opt = c.overlay(opt)
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if c.cache != nil {
		if key, ok := cacheKey(q, opt); ok {
			// Read the generation vector before the search: a mutation
			// committing in between leaves the stored entry already
			// stale (see queryCache.cachedSearch).
			gens := c.generations()
			return c.cache.cachedSearch(key, gens, start, func() (*SearchResult, error) {
				return c.searchShards(ctx, q, opt, start)
			})
		}
	}
	return c.searchShards(ctx, q, opt, start)
}

// generations snapshots every shard's mutation counter — the fence
// vector cached results are keyed by.
func (c *Collection) generations() []uint64 {
	gens := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		gens[i] = sh.generation()
	}
	return gens
}

// searchShards is the uncached fan-out behind Search.
func (c *Collection) searchShards(ctx context.Context, q *Graph, opt SearchOptions, start time.Time) (*SearchResult, error) {
	userPred := opt.Predicate

	outs := make([]shardOut, len(c.shards))
	_ = c.store.budget.ForContext(ctx, len(c.shards), func(i int) {
		st := c.shards[i].state.Load()
		sopt := opt
		n := len(st.globals)
		// The table bound makes the composite (index, table) read
		// consistent even when an Add publishes between the two loads;
		// the user predicate runs in global-id space.
		sopt.Predicate = func(local int, g *Graph) bool {
			return local < n && (userPred == nil || userPred(st.globals[local], g))
		}
		res, err := st.idx.Search(ctx, q, sopt)
		if err != nil {
			outs[i].err = err
			return
		}
		ids := make([]int, len(res.Results))
		for j, r := range res.Results {
			ids[j] = st.globals[r.ID]
		}
		outs[i] = shardOut{res: res, ids: ids}
	})
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		if outs[i].res == nil { // fan-out cut short by cancellation
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("graphdim: shard %d produced no result", i)
		}
	}

	merged := &SearchResult{
		Results: mergeTopK(outs, opt.K),
		Engine:  opt.Engine,
		Matched: outs[0].res.Matched,
	}
	for i := range outs {
		merged.Candidates += outs[i].res.Candidates
	}
	merged.Elapsed = time.Since(start)
	return merged, nil
}

// SearchBatch answers many queries with the same options. Each query fans
// out across the shards in turn; like Index.SearchBatch the batch fails as
// a unit on the first error in query order.
func (c *Collection) SearchBatch(ctx context.Context, queries []*Graph, opt SearchOptions) ([]*SearchResult, error) {
	out := make([]*SearchResult, len(queries))
	for i, q := range queries {
		res, err := c.Search(ctx, q, opt)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// shardOut is one shard's contribution to a fan-out search: the shard
// result plus its Results translated to global ids.
type shardOut struct {
	res *SearchResult
	ids []int
	err error
}

// shardCursor is one entry of the k-way merge heap: a position in a
// shard's (already sorted) ranked list.
type shardCursor struct {
	out *shardOut
	pos int
}

type mergeHeap []shardCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	da, db := a.out.res.Results[a.pos].Distance, b.out.res.Results[b.pos].Distance
	if da != db {
		return da < db
	}
	return a.out.ids[a.pos] < b.out.ids[b.pos]
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(shardCursor)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// mergeTopK k-way-merges the per-shard ranked lists — each already sorted
// ascending by (score, global id) — into the global top k with the same
// order, via a heap of shard cursors.
func mergeTopK(outs []shardOut, k int) []Result {
	h := make(mergeHeap, 0, len(outs))
	for i := range outs {
		if len(outs[i].res.Results) > 0 {
			h = append(h, shardCursor{out: &outs[i], pos: 0})
		}
	}
	heap.Init(&h)
	merged := make([]Result, 0, k)
	for len(h) > 0 && len(merged) < k {
		cur := h[0]
		merged = append(merged, Result{
			ID:       cur.out.ids[cur.pos],
			Distance: cur.out.res.Results[cur.pos].Distance,
		})
		if cur.pos+1 < len(cur.out.res.Results) {
			h[0].pos++
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return merged
}

// Add maps new graphs into the collection: each graph gets the next global
// id, lands on the shard its id hashes to, and the per-shard VF2 mapping
// fans out under the store budget. The returned ids align with gs. Writers
// are serialized collection-wide; readers are never blocked (each shard
// publishes copy-on-write state). Each shard applies its slice atomically,
// but a mid-batch error — cancellation included — can leave the slices of
// shards that already finished applied; the call then returns a
// *PartialAddError naming exactly the ids that committed.
//
// On a durable store the batch is appended to the collection's
// write-ahead log — and fsynced — before any shard publishes, so every
// id this method reports as committed (returned ids, or
// PartialAddError.Applied) survives a crash.
func (c *Collection) Add(ctx context.Context, gs ...*Graph) ([]int, error) {
	for i, g := range gs {
		if g == nil {
			return nil, fmt.Errorf("graphdim: nil graph at index %d", i)
		}
	}
	if len(gs) == 0 {
		return nil, nil
	}
	// A context that is already dead commits nothing: bail before the
	// write-ahead append, or an abandoned request would still pay two
	// fsyncs (the batch plus its voiding record) under the writer lock.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.addMu.Lock()
	defer c.addMu.Unlock()
	defer c.settleApplied()

	ids := make([]int, len(gs))
	perShard := make(map[int]*shardBatch)
	var order []int
	for i := range gs {
		id := int(c.nextID.Load()) + i
		ids[i] = id
		sh := placeID(id, len(c.shards))
		b := perShard[sh]
		if b == nil {
			b = &shardBatch{}
			perShard[sh] = b
			order = append(order, sh)
		}
		b.gs = append(b.gs, gs[i])
		b.globals = append(b.globals, id)
	}

	// Write-ahead: the batch must be durable before any shard state it
	// produces can be observed. A failed append commits nothing.
	if c.wal != nil {
		if _, err := c.wal.Append(wal.Record{Type: wal.TypeAdd, First: ids[0], Graphs: gs}); err != nil {
			return nil, fmt.Errorf("graphdim: wal append: %w", err)
		}
	}

	errs := make([]error, len(order))
	ran := make([]bool, len(order))
	_ = c.store.budget.ForContext(ctx, len(order), func(i int) {
		ran[i] = true
		if c.failShard != nil {
			if err := c.failShard(order[i]); err != nil {
				errs[i] = err
				return
			}
		}
		b := perShard[order[i]]
		errs[i] = c.shards[order[i]].add(ctx, b.gs, b.globals)
	})
	applied := 0
	var appliedIDs []int
	var firstErr error
	for i := range order {
		err := errs[i]
		if !ran[i] {
			// The fan-out skips a suffix only on cancellation.
			err = ctx.Err()
		}
		switch {
		case err == nil && ran[i]:
			applied++
			appliedIDs = append(appliedIDs, perShard[order[i]].globals...)
		case err != nil && firstErr == nil:
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, c.failAdd(ids[0], len(gs), appliedIDs, firstErr)
	}
	c.nextID.Add(int64(len(gs)))
	return ids, nil
}

// failAdd settles a failed Add batch: it amends the write-ahead log so
// replay matches what actually committed, and burns the batch's ids.
// Ids burn even when nothing landed and the batch was cleanly voided —
// on a durable store a global id, once logged, is never assigned again.
// The invariant is what lets a replica that crash-replayed an unpaired
// add record reconcile when the voiding amendment arrives (tombstoning
// the batch) without a later assignment ever colliding with the ids it
// buried. Called under addMu.
func (c *Collection) failAdd(first, total int, appliedIDs []int, cause error) error {
	if len(appliedIDs) > 0 {
		sort.Ints(appliedIDs)
		// Some shards already published their slice, so the batch's
		// global ids are burned: advancing nextID keeps every published
		// id unique forever, at the price of id gaps for the slices that
		// never landed.
		c.nextID.Add(int64(total))
		if c.wal != nil {
			if _, werr := c.wal.Append(wal.Record{Type: wal.TypeApplied, First: first, Total: total, IDs: appliedIDs}); werr != nil {
				cause = fmt.Errorf("%w (and amending the wal failed — a crash before the next checkpoint recovers the whole batch: %v)", cause, werr)
			}
		}
		return &PartialAddError{Applied: appliedIDs, Total: total, Err: cause}
	}
	// Nothing landed. Void the logged batch so replay skips its graphs —
	// but still burn its ids: the add record is in the log, and logged
	// ids are never reassigned (see the doc comment). An in-memory
	// collection never logged the batch, so its ids genuinely remain
	// free there.
	if c.wal != nil {
		c.nextID.Add(int64(total))
		if _, werr := c.wal.Append(wal.Record{Type: wal.TypeApplied, First: first, Total: total, IDs: nil}); werr != nil {
			return fmt.Errorf("graphdim: add failed (%w) and voiding its wal record failed (%v); batch ids burned", cause, werr)
		}
	}
	return cause
}

// settleApplied advances the settled watermark to the log tail; called
// under addMu as a writer's final act, when every appended record's
// outcome is in the log. No-op without a log.
func (c *Collection) settleApplied() {
	if c.wal != nil {
		c.applied.Store(c.wal.LastSeq())
	}
}

type shardBatch struct {
	gs      []*Graph
	globals []int
}

// Remove tombstones the given global ids. Validation and application
// happen per shard under the writer locks; an unknown or already-removed
// id fails the whole call with no shard modified.
func (c *Collection) Remove(ids ...int) error {
	if len(ids) == 0 {
		return nil
	}
	c.addMu.Lock()
	defer c.addMu.Unlock()
	defer c.settleApplied()
	perShard := make(map[int][]int)
	for _, id := range ids {
		if id < 0 || int64(id) >= c.nextID.Load() {
			return fmt.Errorf("graphdim: id %d out of range [0,%d)", id, c.nextID.Load())
		}
		sh := placeID(id, len(c.shards))
		perShard[sh] = append(perShard[sh], id)
	}
	// Validate everywhere before touching anything: writers are serialized
	// by addMu and compaction preserves tombstone state, so a positive
	// pre-check cannot be invalidated before the apply below.
	for sh, globals := range perShard {
		st := c.shards[sh].state.Load()
		seen := make(map[int]bool, len(globals))
		for _, g := range globals {
			local := st.localOf(g)
			if local < 0 {
				return fmt.Errorf("graphdim: id %d not in store", g)
			}
			if st.idx.IsRemoved(local) || seen[g] {
				return fmt.Errorf("graphdim: id %d already removed", g)
			}
			seen[g] = true
		}
	}
	// Write-ahead, after validation (a rejected batch must leave no
	// record) and before any shard tombstones: post-validation the apply
	// below cannot fail, so log record and committed state agree.
	if c.wal != nil {
		sorted := append([]int(nil), ids...)
		sort.Ints(sorted)
		if _, err := c.wal.Append(wal.Record{Type: wal.TypeRemove, IDs: sorted}); err != nil {
			return fmt.Errorf("graphdim: wal append: %w", err)
		}
	}
	for sh, globals := range perShard {
		if err := c.shards[sh].remove(globals); err != nil {
			return fmt.Errorf("graphdim: remove on shard %d: %w", sh, err)
		}
	}
	return nil
}

// StaleRatios returns each shard's StaleRatio, indexed by shard.
func (c *Collection) StaleRatios() []float64 {
	out := make([]float64, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.staleRatio()
	}
	return out
}

// Compact rebuilds shards synchronously: every shard whose StaleRatio is
// at or above the store's policy threshold or — with force — every shard
// with any staleness at all. Rebuilds run one shard at a time (each is a
// full offline build); concurrent searches keep serving throughout. It
// returns how many shards were rebuilt and the first error encountered,
// having still attempted the remaining shards. Shards with fewer than two
// live graphs are skipped silently.
func (c *Collection) Compact(ctx context.Context, force bool) (int, error) {
	threshold := c.store.policy.threshold()
	compacted := 0
	var firstErr error
	for i, sh := range c.shards {
		ratio := sh.staleRatio()
		if force {
			if ratio == 0 {
				continue
			}
		} else if !c.store.policy.enabled() || ratio < threshold {
			continue
		}
		ran, err := sh.tryCompact(ctx, c.build, c.shardIdxWorkers())
		if err != nil && err != errShardTooSmall && firstErr == nil {
			firstErr = fmt.Errorf("graphdim: compacting shard %d: %w", i, err)
		}
		if ran {
			compacted++
		}
		if c.store.onComp != nil && (ran || (err != nil && err != errShardTooSmall)) {
			c.store.onComp(c.name, i, err)
		}
	}
	return compacted, firstErr
}

// CacheStats returns the query cache's counters; ok is false when the
// collection was created without a cache.
func (c *Collection) CacheStats() (stats CacheStats, ok bool) {
	if c.cache == nil {
		return CacheStats{}, false
	}
	return c.cache.stats(), true
}

// ShardStats describes one shard for stats endpoints.
type ShardStats struct {
	// Live is the number of searchable graphs; Total counts id slots
	// including tombstones.
	Live, Total int
	// Dimensions is the shard's current dimension count (it changes when
	// a compaction re-selects dimensions).
	Dimensions int
	// StaleRatio is the shard index's StaleRatio.
	StaleRatio float64
	// Compactions counts completed rebuilds of this shard.
	Compactions int64
	// LastCompactionError is the most recent rebuild failure ("" when the
	// last rebuild succeeded or none ran).
	LastCompactionError string
}

// CollectionStats is the Stats snapshot of one collection.
type CollectionStats struct {
	Name   string
	Live   int
	NextID int
	Shards []ShardStats
	// Generations is the per-shard mutation-counter vector the query
	// cache fences on, aligned with Shards.
	Generations []uint64
	// Cache holds the query cache's counters, nil when the collection
	// has no cache.
	Cache *CacheStats
	// WAL holds the write-ahead log's counters, nil when the store is
	// not durable (or the WAL is disabled).
	WAL *WALStats
}

// Stats returns a point-in-time snapshot of the collection's shards.
func (c *Collection) Stats() CollectionStats {
	cs := CollectionStats{Name: c.name, Shards: make([]ShardStats, len(c.shards))}
	for i, sh := range c.shards {
		st := sh.state.Load()
		s := ShardStats{
			Live:        st.idx.Size(),
			Total:       st.idx.TotalGraphs(),
			Dimensions:  len(st.idx.Dimensions()),
			StaleRatio:  st.idx.StaleRatio(),
			Compactions: sh.compactions.Load(),
		}
		if err := sh.lastCompactionErr(); err != nil {
			s.LastCompactionError = err.Error()
		}
		cs.Live += s.Live
		cs.Shards[i] = s
	}
	cs.NextID = int(c.nextID.Load())
	cs.Generations = c.generations()
	if st, ok := c.CacheStats(); ok {
		cs.Cache = &st
	}
	cs.WAL = c.walStats()
	return cs
}
