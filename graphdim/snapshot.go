package graphdim

import (
	"archive/tar"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/wal"
)

// Snapshot transfer — how a follower bootstraps. The primary streams
// its last installed checkpoint as a tar archive (the manifest plus
// every shard file it references); the follower extracts it into a
// fresh data directory and opens it normally. The manifest's per-
// collection WALSeq tells the opened store — and through it the
// replication tailer — exactly where in the primary's sequence space
// the image stops, and attachWAL seeds the follower's empty log to
// continue numbering from there.

// WriteSnapshotTar streams the store's last installed checkpoint to w
// as a tar archive: store.json first, then each referenced shard file.
// It serializes with Save/Checkpoint (holding the save lock), which is
// what makes the read consistent: the manifest on disk cannot be
// swapped, and the files it references are never truncated, overwritten
// or swept while the lock is held. Live WAL segments are deliberately
// not included — the image is exactly a checkpoint, and the receiver
// reads everything after its WALSeq from the replication stream.
func (s *Store) WriteSnapshotTar(w io.Writer) error {
	if s.dir == "" {
		return fmt.Errorf("graphdim: snapshot: store has no data directory")
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()

	manPath := filepath.Join(s.dir, manifestName)
	manData, err := os.ReadFile(manPath)
	if err != nil {
		return fmt.Errorf("graphdim: snapshot: %w", err)
	}
	var man storeManifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return fmt.Errorf("graphdim: snapshot: decode manifest: %w", err)
	}

	tw := tar.NewWriter(w)
	if err := tarFile(tw, manifestName, manData); err != nil {
		return err
	}
	for _, cm := range man.Collections {
		for _, f := range cm.ShardFiles {
			// Shard segments ship verbatim, streamed file-to-socket —
			// never buffered whole, never decoded. Checkpoint files are
			// immutable once the manifest references them (replacements
			// get fresh names), so size-then-copy is stable under the
			// save lock.
			if err := tarStream(tw, cm.Name+"/"+f, filepath.Join(s.dir, cm.Name, f)); err != nil {
				return err
			}
		}
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("graphdim: snapshot: %w", err)
	}
	return nil
}

func tarFile(tw *tar.Writer, name string, data []byte) error {
	hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(len(data))}
	if err := tw.WriteHeader(hdr); err != nil {
		return fmt.Errorf("graphdim: snapshot: %w", err)
	}
	if _, err := tw.Write(data); err != nil {
		return fmt.Errorf("graphdim: snapshot: %w", err)
	}
	return nil
}

// tarStream copies one on-disk file into the archive without holding it
// in memory — the sendfile-shaped half of follower bootstrap: io.Copy
// from an *os.File lets the runtime use copy_file_range/sendfile-style
// fast paths where the destination supports them, and a mapped source
// page never round-trips through a decode.
func tarStream(tw *tar.Writer, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("graphdim: snapshot: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("graphdim: snapshot: %w", err)
	}
	hdr := &tar.Header{Name: name, Mode: 0o644, Size: st.Size()}
	if err := tw.WriteHeader(hdr); err != nil {
		return fmt.Errorf("graphdim: snapshot: %w", err)
	}
	if _, err := io.Copy(tw, f); err != nil {
		return fmt.Errorf("graphdim: snapshot: %q: %w", name, err)
	}
	return nil
}

// ExtractSnapshotTar unpacks a WriteSnapshotTar stream into dir, which
// must not already hold a store. Every file is fsynced (and the
// directories after them) before it returns: a checkpoint image that a
// replication follower will acknowledge against must not evaporate in a
// crash. Entry names are confined to dir — a hostile archive cannot
// escape it.
func ExtractSnapshotTar(dir string, r io.Reader) error {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return fmt.Errorf("graphdim: extract snapshot: %s already holds a store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("graphdim: extract snapshot: %w", err)
	}
	tr := tar.NewReader(r)
	dirs := map[string]bool{dir: true}
	sawManifest := false
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("graphdim: extract snapshot: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg {
			return fmt.Errorf("graphdim: extract snapshot: unexpected entry type %d for %q", hdr.Typeflag, hdr.Name)
		}
		name := filepath.Clean(hdr.Name)
		if name == "" || filepath.IsAbs(name) || name == ".." || strings.HasPrefix(name, ".."+string(filepath.Separator)) {
			return fmt.Errorf("graphdim: extract snapshot: entry %q escapes the target directory", hdr.Name)
		}
		path := filepath.Join(dir, name)
		if d := filepath.Dir(path); !dirs[d] {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return fmt.Errorf("graphdim: extract snapshot: %w", err)
			}
			dirs[d] = true
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("graphdim: extract snapshot: %w", err)
		}
		if _, err := io.Copy(f, tr); err != nil {
			f.Close()
			return fmt.Errorf("graphdim: extract snapshot: %q: %w", hdr.Name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("graphdim: extract snapshot: %q: %w", hdr.Name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("graphdim: extract snapshot: %q: %w", hdr.Name, err)
		}
		if name == manifestName {
			sawManifest = true
		}
	}
	if !sawManifest {
		return fmt.Errorf("graphdim: extract snapshot: archive holds no %s", manifestName)
	}
	for d := range dirs {
		wal.SyncDir(d)
	}
	return nil
}
