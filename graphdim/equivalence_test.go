package graphdim

import (
	"context"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/topk"
)

// The property-based engine-equivalence suite: randomized collections
// (live sizes from 1 to the hundreds, removals interleaved with adds)
// on which the posting-pruned mapped and verified rankings must be
// byte-identical — same ids, bitwise-equal distances — to the flat-scan
// rankings (SearchOptions.NoPrune) and to the single-shard Store
// ranking. Every run draws a fresh seed and logs it; replay a failure
// with
//
//	GRAPHDIM_EQUIV_SEED=<seed> go test -run TestEngineEquivalenceRandomized ./graphdim
func equivSeed(t *testing.T) int64 {
	if v := os.Getenv("GRAPHDIM_EQUIV_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("GRAPHDIM_EQUIV_SEED=%q: %v", v, err)
		}
		t.Logf("replaying GRAPHDIM_EQUIV_SEED=%d", seed)
		return seed
	}
	seed := time.Now().UnixNano()
	t.Logf("random run; replay with GRAPHDIM_EQUIV_SEED=%d", seed)
	return seed
}

// equivBuild builds an index over a random synthetic database of n
// graphs, fast enough to run many rounds: tiny patterns, a small MCS
// budget, and DSPMap once the pairwise matrix would dominate.
func equivBuild(t *testing.T, rng *rand.Rand, n int) (*Index, []*Graph) {
	t.Helper()
	db := dataset.Synthetic(dataset.SynthConfig{N: n, AvgEdges: 9, Labels: 5, Seed: rng.Int63()})
	opt := Options{Dimensions: 16, Tau: 0.2, MaxPatternEdges: 3, MCSBudget: 300, Iterations: 8}
	if n > 80 {
		opt.Algorithm = DSPMap
		opt.Seed = rng.Int63()
	}
	// A random database occasionally has no frequent pattern at the
	// starting support; lower tau until mining finds dimensions (the
	// suite tests engine equivalence, not mining, so any dimension set
	// will do).
	for _, tau := range []float64{0.2, 0.1, 0.05, 0.02, 0.005} {
		opt.Tau = tau
		idx, err := Build(db, opt)
		if err == nil {
			return idx, db
		}
		if !strings.Contains(err.Error(), "no frequent subgraphs") {
			t.Fatalf("Build(n=%d, tau=%v): %v", n, tau, err)
		}
	}
	t.Fatalf("Build(n=%d): no frequent subgraphs even at tau=0.005", n)
	return nil, nil
}

// assertPrunedEqualsFlat runs one query through the pruned and flat
// paths of the given engine and requires byte-identical rankings.
func assertPrunedEqualsFlat(t *testing.T, label string, idx *Index, q *Graph, opt SearchOptions) *SearchResult {
	t.Helper()
	ctx := context.Background()
	pruned, err := idx.Search(ctx, q, opt)
	if err != nil {
		t.Fatalf("%s: pruned Search: %v", label, err)
	}
	flatOpt := opt
	flatOpt.NoPrune = true
	flat, err := idx.Search(ctx, q, flatOpt)
	if err != nil {
		t.Fatalf("%s: flat Search: %v", label, err)
	}
	if !reflect.DeepEqual(pruned.Results, flat.Results) {
		t.Fatalf("%s: pruned ranking diverges from flat scan:\npruned: %v\nflat:   %v\nmatched %d dimensions",
			label, pruned.Results, flat.Results, pruned.Matched.Count())
	}
	if pruned.Matched.Count() != flat.Matched.Count() {
		t.Fatalf("%s: matched dimensions diverge: %d vs %d", label, pruned.Matched.Count(), flat.Matched.Count())
	}
	// Third leg, mapped engine only: both Search paths above ran the SoA
	// kernel; re-derive the ranking with the scalar reference
	// (topk.MappedContext over the snapshot's vectors — no block, no
	// scratch, full sort) and require the kernel results bit-identical
	// to its prefix, distances included.
	if opt.Engine == EngineMapped && opt.Predicate == nil && len(opt.Filters) == 0 {
		s := idx.snap.Load()
		qv, err := idx.mapper.MapContext(ctx, q)
		if err != nil {
			t.Fatalf("%s: MapContext: %v", label, err)
		}
		ref, _, err := topk.MappedContext(ctx, s.vectors, qv, s.alive(nil), nil)
		if err != nil {
			t.Fatalf("%s: scalar reference: %v", label, err)
		}
		k := opt.K
		if k > len(ref) {
			k = len(ref)
		}
		if len(flat.Results) != k {
			t.Fatalf("%s: kernel returned %d results, scalar reference has %d", label, len(flat.Results), k)
		}
		for i, r := range flat.Results {
			if r.ID != ref[i].ID || r.Distance != ref[i].Score {
				t.Fatalf("%s: kernel result %d = {%d, %v}, scalar reference {%d, %v} (bit-identical required)",
					label, i, r.ID, r.Distance, ref[i].ID, ref[i].Score)
			}
		}
	}
	return pruned
}

func TestEngineEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	rounds, maxN := 6, 500
	if testing.Short() {
		rounds, maxN = 3, 60
	}
	for round := 0; round < rounds; round++ {
		n := 2 + rng.Intn(maxN-1)
		idx, db := equivBuild(t, rng, n)
		label := "round " + strconv.Itoa(round) + " n=" + strconv.Itoa(n)
		t.Logf("%s: %d dimensions", label, len(idx.Dimensions()))

		// Queries: database members (often dense in matched dimensions,
		// exercising the cost-model fallback) plus unseen graphs (often
		// sparse, exercising deep pruning), across interleaved mutation
		// waves.
		queries := []*Graph{db[rng.Intn(n)], db[rng.Intn(n)]}
		queries = append(queries, dataset.Synthetic(dataset.SynthConfig{N: 3, AvgEdges: 6, Labels: 7, Seed: rng.Int63()})...)

		waves := 3
		for wave := 0; wave < waves; wave++ {
			k := 1 + rng.Intn(idx.TotalGraphs()+4)
			for qi, q := range queries {
				wl := label + " wave " + strconv.Itoa(wave) + " query " + strconv.Itoa(qi)
				assertPrunedEqualsFlat(t, wl+" mapped", idx, q, SearchOptions{K: k})
				assertPrunedEqualsFlat(t, wl+" verified", idx, q, SearchOptions{
					K:            k,
					Engine:       EngineVerified,
					VerifyFactor: 1 + rng.Intn(3),
				})
			}
			// Interleave mutations: add a few unseen graphs, remove a few
			// random live ids (never below one live graph).
			added := dataset.Synthetic(dataset.SynthConfig{N: 1 + rng.Intn(4), AvgEdges: 9, Labels: 5, Seed: rng.Int63()})
			if _, err := idx.Add(added...); err != nil {
				t.Fatalf("%s: Add: %v", label, err)
			}
			removals := rng.Intn(4)
			for i := 0; i < removals && idx.Size() > 1; i++ {
				id := rng.Intn(idx.TotalGraphs())
				if idx.IsRemoved(id) {
					continue
				}
				if err := idx.Remove(id); err != nil {
					t.Fatalf("%s: Remove(%d): %v", label, id, err)
				}
			}
		}
	}
}

// TestEngineEquivalenceAtTinySizes drives the live database down to
// exactly 1 (and through every size on the way) — the degenerate end of
// the size range, where off-by-one bugs in the merge would hide.
func TestEngineEquivalenceAtTinySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	idx, db := equivBuild(t, rng, 12)
	q := dataset.Synthetic(dataset.SynthConfig{N: 1, AvgEdges: 6, Labels: 7, Seed: rng.Int63()})[0]
	order := rng.Perm(len(db))
	for _, id := range order[:len(db)-1] {
		assertPrunedEqualsFlat(t, "live="+strconv.Itoa(idx.Size())+" mapped", idx, q, SearchOptions{K: 5})
		assertPrunedEqualsFlat(t, "live="+strconv.Itoa(idx.Size())+" verified", idx, q,
			SearchOptions{K: 3, Engine: EngineVerified, VerifyFactor: 2})
		if err := idx.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Size() != 1 {
		t.Fatalf("live size = %d, want 1", idx.Size())
	}
	res := assertPrunedEqualsFlat(t, "live=1 mapped", idx, q, SearchOptions{K: 5})
	if len(res.Results) != 1 {
		t.Fatalf("live=1: got %d results, want 1", len(res.Results))
	}
}

// TestEngineEquivalenceSingleShardStore closes the loop the ISSUE pins:
// pruned Index rankings equal flat Index rankings equal the
// single-shard Store ranking, on a mutated database.
func TestEngineEquivalenceSingleShardStore(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	idx, db := equivBuild(t, rng, 2+rng.Intn(120))
	if _, err := idx.Add(dataset.Synthetic(dataset.SynthConfig{N: 5, AvgEdges: 9, Labels: 5, Seed: rng.Int63()})...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && idx.Size() > 2; i++ {
		id := rng.Intn(idx.TotalGraphs())
		if !idx.IsRemoved(id) {
			if err := idx.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
	}

	s := NewStore(StoreOptions{})
	defer s.Close()
	// One cached and one uncached single-shard collection: the cache must
	// be invisible in the payloads.
	cached, err := s.CreateFromIndex("one-cached", idx, CollectionOptions{Cache: CacheOptions{MaxEntries: 32}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.CreateFromIndex("one-plain", idx, CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	queries := append([]*Graph{db[0], db[len(db)/2]},
		dataset.Synthetic(dataset.SynthConfig{N: 2, AvgEdges: 6, Labels: 7, Seed: rng.Int63()})...)
	for qi, q := range queries {
		k := 1 + rng.Intn(idx.TotalGraphs()+3)
		for _, opt := range []SearchOptions{
			{K: k},
			{K: k, Engine: EngineVerified, VerifyFactor: 2},
		} {
			label := "store query " + strconv.Itoa(qi) + " " + opt.Engine.String()
			want := assertPrunedEqualsFlat(t, label, idx, q, opt)
			for _, coll := range []*Collection{cached, plain, cached} { // cached twice: second pass is a cache hit
				got, err := coll.Search(ctx, q, opt)
				if err != nil {
					t.Fatalf("%s (%s): %v", label, coll.Name(), err)
				}
				if !reflect.DeepEqual(got.Results, want.Results) {
					t.Fatalf("%s (%s): store ranking diverges:\nstore: %v\nindex: %v",
						label, coll.Name(), got.Results, want.Results)
				}
			}
		}
	}
	if st, ok := cached.CacheStats(); !ok || st.Hits == 0 {
		t.Fatalf("cached collection never hit: %+v", st)
	}
}
