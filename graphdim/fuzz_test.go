package graphdim

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
)

// FuzzOpenIndex throws arbitrary bytes at ReadIndex: the decoder must
// return an error or a usable index — never panic, hang, or over-
// allocate — for every input, including the v3 postings section,
// truncations, and bit flips of valid files. The seed corpus covers all
// three on-disk formats plus systematic corruptions of a valid v3 file.
func FuzzOpenIndex(f *testing.F) {
	db := dataset.Chemical(dataset.ChemConfig{N: 10, MinVertices: 6, MaxVertices: 9, Seed: 17})
	idx, err := Build(db, Options{Dimensions: 8, Tau: 0.25, MCSBudget: 500})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := idx.Add(db[0]); err != nil {
		f.Fatal(err)
	}
	if err := idx.Remove(1); err != nil {
		f.Fatal(err)
	}

	var v3, v2, v1 bytes.Buffer
	if _, err := idx.WriteTo(&v3); err != nil {
		f.Fatal(err)
	}
	if _, err := idx.writeToV2(&v2); err != nil {
		f.Fatal(err)
	}
	if err := idx.writeToV1(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v3.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	// Truncations at structural boundaries and random depths.
	valid := v3.Bytes()
	for _, cut := range []int{0, 4, 8, 9, 16, len(valid) / 3, len(valid) / 2, len(valid) - 5, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	// Bit flips across the file, including the postings section (near the
	// end, before the checksum) and the checksum itself.
	for _, pos := range []int{8, 12, 24, len(valid) / 2, len(valid) - 20, len(valid) - 6, len(valid) - 1} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x10
		f.Add(flipped)
	}
	// Degenerate non-index inputs.
	f.Add([]byte{})
	f.Add([]byte("GDIMIDX3"))
	f.Add([]byte("GDIMIDX2"))
	f.Add([]byte(`{"version":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A file the decoder accepts must behave like an index: the
		// accessors agree with each other and a save/reload round-trip
		// reproduces the state byte-for-byte (the canonical-encoding
		// property, extended to every decodable input).
		if loaded.Size() != loaded.TotalGraphs()-loaded.Removed() {
			t.Fatalf("Size %d != TotalGraphs %d - Removed %d", loaded.Size(), loaded.TotalGraphs(), loaded.Removed())
		}
		if r := loaded.StaleRatio(); r < 0 || r > 1 {
			t.Fatalf("StaleRatio %v outside [0,1]", r)
		}
		var buf bytes.Buffer
		if _, err := loaded.WriteTo(&buf); err != nil {
			t.Fatalf("re-saving a loaded index: %v", err)
		}
		again, err := ReadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reloading a re-saved index: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := again.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("save→load→save is not a fixed point")
		}
	})
}
