package graphdim

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestCachedStoreGenerationFenceUnderConcurrency is the generation-fence
// correctness test: concurrent Search (served through the query cache),
// Add, Remove, and forced Compact on one cached collection, asserting
// that no search ever returns an id whose Remove committed before the
// search started, nor misses an id whose Add committed before the
// search started. Meaningful under -race (the CI race job runs this
// package); the assertions themselves hold under the plain test run
// too — a cached result served across a committed mutation would trip
// them deterministically.
func TestCachedStoreGenerationFenceUnderConcurrency(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 24, MinVertices: 8, MaxVertices: 12, Seed: 61})
	buildOpt := Options{Dimensions: 8, Tau: 0.25, MCSBudget: 500}
	idx, err := Build(db, buildOpt)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(StoreOptions{})
	defer s.Close()
	coll, err := s.CreateFromIndex("fence", idx, CollectionOptions{
		Shards: 2,
		Build:  buildOpt,
		Cache:  CacheOptions{MaxEntries: 128},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	// committed mirrors what the mutator has durably applied: entries are
	// recorded only after the store call returns, so any reader snapshot
	// of it describes operations that must be visible to a search that
	// starts afterwards. "permanent" ids are never removed; "ephemeral"
	// ids are added and later removed, and assertions only cover their
	// removed-before-snapshot state.
	var (
		committedMu sync.Mutex
		permanent   = map[int]bool{}
		removed     = map[int]bool{}
	)
	snapshotCommitted := func() (perm, gone []int) {
		committedMu.Lock()
		defer committedMu.Unlock()
		for id := range permanent {
			perm = append(perm, id)
		}
		for id := range removed {
			gone = append(gone, id)
		}
		return perm, gone
	}

	const mutations = 48
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator: interleaved adds (half permanent, half ephemeral) and
	// removes of earlier ephemeral ids.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewSource(62))
		var ephemeral []int
		for i := 0; i < mutations; i++ {
			// Stretch the mutation window so the readers interleave with
			// many distinct generation states, not one burst.
			time.Sleep(200 * time.Microsecond)
			if len(ephemeral) > 0 && rng.Intn(3) == 0 {
				id := ephemeral[0]
				ephemeral = ephemeral[1:]
				if err := coll.Remove(id); err != nil {
					t.Errorf("Remove(%d): %v", id, err)
					return
				}
				committedMu.Lock()
				removed[id] = true
				committedMu.Unlock()
				continue
			}
			g := dataset.Chemical(dataset.ChemConfig{N: 1, MinVertices: 8, MaxVertices: 12, Seed: int64(1000 + i)})
			ids, err := coll.Add(ctx, g...)
			if err != nil {
				t.Errorf("Add: %v", err)
				return
			}
			committedMu.Lock()
			if i%2 == 0 {
				permanent[ids[0]] = true
			} else {
				ephemeral = append(ephemeral, ids[0])
			}
			committedMu.Unlock()
		}
	}()

	// Compactor: forced compactions racing the searches and writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := coll.Compact(ctx, true); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()

	// Readers: the same few queries over and over (maximizing cache
	// traffic), each checked against the pre-search committed state.
	queries := []*Graph{db[0], db[7], db[15]}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					if i > 0 {
						return
					}
					// Run at least once even if the mutator finished first.
				default:
				}
				perm, gone := snapshotCommitted()
				res, err := coll.Search(ctx, queries[(r+i)%len(queries)], SearchOptions{K: 1 << 20})
				if err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				got := make(map[int]bool, len(res.Results))
				for _, item := range res.Results {
					got[item.ID] = true
				}
				for _, id := range perm {
					if !got[id] {
						t.Errorf("search missed id %d whose Add committed before it started", id)
						return
					}
				}
				for _, id := range gone {
					if got[id] {
						t.Errorf("search returned id %d whose Remove committed before it started", id)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	// The cache was actually in play.
	st, ok := coll.CacheStats()
	if !ok {
		t.Fatal("cache disabled")
	}
	if st.Hits+st.Misses == 0 {
		t.Fatalf("no cache traffic recorded: %+v", st)
	}
	t.Logf("cache after run: %+v", st)
}
