package graphdim

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/wal"
)

// ReplicaApplier is the follower half of replication: it receives the
// records a primary streams (internal/repl's Tailer feeds it), mirrors
// them into the collection's own write-ahead log at their
// primary-assigned sequences, and replays them into shard state through
// the same deterministic path crash recovery uses — so a follower's
// state for any acknowledged prefix is bit-identical to a primary that
// recovered the same log.
//
// Mirroring comes first: a record is fsynced locally before it is
// applied, AckSeq (what the follower tells the primary it can truncate)
// is the mirrored tail, and a restart is just a normal OpenStore — the
// local checkpoint plus local log replay reconstruct exactly the
// mirrored prefix, wherever the kill landed.
//
// An add batch needs one piece of buffering: a TypeAdd record's outcome
// may be amended by the TypeApplied record directly after it (partial
// or voided batches), so a just-mirrored TypeAdd is held pending rather
// than applied. The primary only streams records whose outcome is
// settled, which guarantees that if an amendment exists it is already
// behind the add in the stream; a heartbeat (the stream caught up)
// therefore proves no amendment is coming, and Settle flushes the
// pending batch in full. The settled watermark (Collection.AppliedSeq)
// trails the mirrored log by exactly that pending batch.
//
// Methods are not safe for concurrent use with each other — one tailer
// goroutine drives the applier — but coexist with searches, checkpoints
// and compaction exactly as a primary's writers do (they hold the
// collection writer lock while touching state).
type ReplicaApplier struct {
	c       *Collection
	pending *wal.Record // mirrored, unapplied add batch
	broken  error       // first apply failure; poisons the applier
}

// Replica returns the collection's replication applier. The collection
// must have a write-ahead log (a durable, WAL-enabled open).
func (c *Collection) Replica() (*ReplicaApplier, error) {
	if c.wal == nil {
		return nil, fmt.Errorf("graphdim: collection %q has no write-ahead log; a follower store must be opened durable", c.name)
	}
	return &ReplicaApplier{c: c}, nil
}

// Apply mirrors recs into the local log and replays them into shard
// state. Records must continue the mirrored sequence exactly (the
// stream's resume-after-AckSeq contract). After a replay failure the
// applier is poisoned: the mirrored log is ahead of shard state in a
// way only a restart (which replays the log from the checkpoint)
// reconciles, so every later call fails fast rather than applying
// records out of order.
func (r *ReplicaApplier) Apply(ctx context.Context, recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	c := r.c
	c.addMu.Lock()
	defer c.addMu.Unlock()
	if r.broken != nil {
		return fmt.Errorf("graphdim: replica needs restart after earlier failure: %w", r.broken)
	}
	if err := c.wal.AppendMirror(recs); err != nil {
		// Nothing durable changed and nothing was applied: not poisoned,
		// the tailer may retry the same batch.
		return fmt.Errorf("graphdim: mirroring wal records: %w", err)
	}
	for i := range recs {
		if err := r.applyOne(ctx, &recs[i]); err != nil {
			r.broken = err
			return err
		}
	}
	return nil
}

// Settle flushes the pending add batch, if any: called when the stream
// reports itself caught up, which proves no amendment for the batch is
// in flight.
func (r *ReplicaApplier) Settle(ctx context.Context) error {
	r.c.addMu.Lock()
	defer r.c.addMu.Unlock()
	if r.broken != nil {
		return fmt.Errorf("graphdim: replica needs restart after earlier failure: %w", r.broken)
	}
	if err := r.flushPending(ctx); err != nil {
		r.broken = err
		return err
	}
	return nil
}

// AckSeq is the durable resume position: the mirrored log's tail. Every
// sequence at or below it survives a follower restart, so it is what
// the follower acknowledges to the primary (releasing retention) and
// where a reconnect resumes.
func (r *ReplicaApplier) AckSeq() uint64 { return r.c.wal.LastSeq() }

// AppliedSeq is the collection's settled watermark — the follower's
// freshness position.
func (r *ReplicaApplier) AppliedSeq() uint64 { return r.c.applied.Load() }

// applyOne advances the replica state machine by one record; addMu held.
func (r *ReplicaApplier) applyOne(ctx context.Context, rec *wal.Record) error {
	c := r.c
	switch rec.Type {
	case wal.TypeAdd:
		if err := r.flushPending(ctx); err != nil {
			return err
		}
		// Copy out of the caller's batch slice, which it reuses.
		cp := *rec
		r.pending = &cp
		return nil
	case wal.TypeApplied:
		if r.pending == nil {
			// The add this amends was mirrored in a previous process life
			// and crash-replayed in full at startup; walk that back.
			if err := r.reconcileAmended(rec); err != nil {
				return err
			}
			c.applied.Store(rec.Seq)
			return nil
		}
		if r.pending.First != rec.First || len(r.pending.Graphs) != rec.Total {
			return fmt.Errorf("graphdim: wal record %d amends batch at %d/%d, pending is %d/%d",
				rec.Seq, rec.First, rec.Total, r.pending.First, len(r.pending.Graphs))
		}
		add := r.pending
		r.pending = nil
		if len(rec.IDs) == 0 {
			// Voided batch: no graphs land, ids burn (see failAdd).
			if next := int64(add.First + len(add.Graphs)); next > c.nextID.Load() {
				c.nextID.Store(next)
			}
		} else if err := c.replayAdd(ctx, add.First, add.Graphs, rec.IDs); err != nil {
			return err
		}
		c.applied.Store(rec.Seq)
		return nil
	case wal.TypeRemove:
		if err := r.flushPending(ctx); err != nil {
			return err
		}
		if err := c.replayRemove(rec.IDs); err != nil {
			return err
		}
		c.applied.Store(rec.Seq)
		return nil
	default:
		return fmt.Errorf("graphdim: wal record %d has unknown type %d", rec.Seq, rec.Type)
	}
}

// flushPending applies the buffered add batch in full; addMu held.
func (r *ReplicaApplier) flushPending(ctx context.Context) error {
	if r.pending == nil {
		return nil
	}
	add := r.pending
	r.pending = nil
	if err := r.c.replayAdd(ctx, add.First, add.Graphs, nil); err != nil {
		return err
	}
	r.c.applied.Store(add.Seq)
	return nil
}

// reconcileAmended settles an amendment whose add batch was already
// applied in full by startup crash-replay (the add was the mirrored
// log's unpaired tail when the follower last died). The subset in
// rec.IDs is what actually committed on the primary, so the complement
// of the batch is tombstoned. Search results converge exactly with the
// primary's; the one observable trace is addressability — Graph(id) on
// the complement reports "removed" here and "never existed" there,
// which the never-reassigned-ids invariant (failAdd) keeps harmless.
func (r *ReplicaApplier) reconcileAmended(rec *wal.Record) error {
	keep := make(map[int]bool, len(rec.IDs))
	for _, id := range rec.IDs {
		keep[id] = true
	}
	var bury []int
	for id := rec.First; id < rec.First+rec.Total; id++ {
		if !keep[id] {
			bury = append(bury, id)
		}
	}
	sort.Ints(bury)
	if len(bury) == 0 {
		return nil
	}
	if err := r.c.replayRemove(bury); err != nil {
		return fmt.Errorf("graphdim: reconciling amended batch at %d: %w", rec.First, err)
	}
	return nil
}
