package graphdim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/segment"
)

// snapSeg returns the mapped segment source behind a single collection
// shard's current snapshot, nil when the shard is served from the heap.
func snapSeg(c *Collection, shard int) (*snapshot, *segSource) {
	s := c.shards[shard].state.Load().idx.snap.Load()
	return s, s.seg
}

// TestMemoryModeStoreEquivalence is the tentpole equivalence property:
// a checkpointed store reopened with MemoryHeap, MemoryMap, and
// MemoryAuto answers every engine — mapped pruned and flat, verified,
// exact, label-filtered — bit-identically, while the mapped legs serve
// vectors straight out of the segment file and fault graph payloads in
// only for final candidates. The data directory is single-owner
// (flock), so the modes open one after another over the same files.
func TestMemoryModeStoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	idx, db := equivBuild(t, rng, 60)
	ctx := context.Background()
	dir := t.TempDir()

	s, err := CreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateFromIndex("c", idx, CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Mutations before the checkpoint land in the segment base;
	// mutations after it replay from the WAL tail as a heap overlay on
	// the mapped base.
	extra := dataset.Synthetic(dataset.SynthConfig{N: 12, AvgEdges: 9, Labels: 5, Seed: rng.Int63()})
	ids, err := c.Add(ctx, extra[:6]...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ids[0], 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(ctx, extra[6:]...); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(5); err != nil {
		t.Fatal(err)
	}
	s.Close()

	queries := append([]*Graph{db[rng.Intn(len(db))], extra[2]},
		dataset.Synthetic(dataset.SynthConfig{N: 2, AvgEdges: 6, Labels: 7, Seed: rng.Int63()})...)

	// A vertex-label filter forces the lazy label index on the mapped
	// snapshots — the one deliberate whole-corpus fault.
	var label int
	vh, _ := db[0].LabelHistogram()
	for l := range vh {
		label = int(l)
		break
	}
	opts := []SearchOptions{
		{K: 7},
		{K: 7, NoPrune: true},
		{K: 5, Engine: EngineVerified, VerifyFactor: 2},
		{K: 4, Engine: EngineExact},
		{K: 6, Filters: []*pipeline.Filter{{VertexLabels: []pipeline.LabelCount{{Label: label}}}}},
	}

	open := func(mode MemoryMode) (*Store, *Collection) {
		t.Helper()
		st, err := OpenStore(dir, StoreOptions{Memory: mode})
		if err != nil {
			t.Fatalf("OpenStore(mode=%d): %v", mode, err)
		}
		cc, ok := st.Collection("c")
		if !ok {
			t.Fatalf("OpenStore(mode=%d): collection lost", mode)
		}
		return st, cc
	}
	runAll := func(cc *Collection) [][]Result {
		t.Helper()
		out := make([][]Result, 0, len(queries)*len(opts))
		for qi, q := range queries {
			for oi, opt := range opts {
				res, err := cc.Search(ctx, q, opt)
				if err != nil {
					t.Fatalf("query %d opt %d: %v", qi, oi, err)
				}
				out = append(out, res.Results)
			}
		}
		return out
	}

	// Heap leg first: the reference rankings.
	heapS, heapC := open(MemoryHeap)
	if _, seg := snapSeg(heapC, 0); seg != nil {
		t.Fatal("MemoryHeap open kept a segment source")
	}
	want := runAll(heapC)
	heapS.Close()

	// Mapped leg: lazy at open, lazy through unfiltered queries,
	// bit-identical throughout.
	mapS, mapC := open(MemoryMap)
	if segment.CanMap() {
		for sh := 0; sh < 2; sh++ {
			snap, seg := snapSeg(mapC, sh)
			if seg == nil {
				t.Fatalf("MemoryMap shard %d has no segment source", sh)
			}
			if !seg.r.Mapped() {
				t.Fatalf("MemoryMap shard %d segment not mmapped", sh)
			}
			for i := range seg.graphs {
				if snap.db[i] != nil {
					t.Fatalf("MemoryMap shard %d: base slot %d eagerly decoded at open", sh, i)
				}
			}
		}
	}
	// Unfiltered engines only (mapped flat/pruned + verified): after
	// these, only final candidates may have been faulted in. Exact and
	// filtered queries legitimately touch everything, so they run after
	// the check.
	for qi, q := range queries {
		for oi, opt := range opts[:3] {
			res, err := mapC.Search(ctx, q, opt)
			if err != nil {
				t.Fatalf("map query %d opt %d: %v", qi, oi, err)
			}
			if !reflect.DeepEqual(res.Results, want[qi*len(opts)+oi]) {
				t.Fatalf("map query %d opt %d diverges from heap:\nmap:  %v\nheap: %v",
					qi, oi, res.Results, want[qi*len(opts)+oi])
			}
		}
	}
	if segment.CanMap() {
		decoded, total := 0, 0
		for sh := 0; sh < 2; sh++ {
			_, seg := snapSeg(mapC, sh)
			total += len(seg.graphs)
			for i := range seg.graphs {
				if seg.graphs[i].Load() != nil {
					decoded++
				}
			}
		}
		if decoded >= total {
			t.Fatalf("mapped+verified queries faulted in the whole corpus (%d/%d)", decoded, total)
		}
		t.Logf("after mapped+verified queries: %d/%d graph payloads faulted", decoded, total)
	}
	if got := runAll(mapC); !reflect.DeepEqual(got, want) {
		t.Fatal("MemoryMap rankings diverge from MemoryHeap")
	}

	// The mapped store stays writable: post-open writes overlay the
	// mapping and the next checkpoint writes a fresh segment from it
	// (verbatim graph copy for the unmodified base).
	late := dataset.Synthetic(dataset.SynthConfig{N: 3, AvgEdges: 8, Labels: 5, Seed: rng.Int63()})
	if _, err := mapC.Add(ctx, late...); err != nil {
		t.Fatal(err)
	}
	if err := mapS.Checkpoint(); err != nil {
		t.Fatalf("checkpoint over mapped base: %v", err)
	}
	wantStats := mapC.Stats()
	want2 := runAll(mapC)
	mapS.Close()

	// Auto leg reopens the segment the mapped leg just checkpointed and
	// must agree on content and every ranking.
	autoS, autoC := open(MemoryAuto)
	defer autoS.Close()
	if gs := autoC.Stats(); gs.NextID != wantStats.NextID || gs.Live != wantStats.Live {
		t.Fatalf("auto reopen stats %+v, mapped leg had %+v", gs, wantStats)
	}
	if got := runAll(autoC); !reflect.DeepEqual(got, want2) {
		t.Fatal("MemoryAuto rankings diverge from the mapped leg's post-write state")
	}
}

// TestOpenStoreRejectsTornSegment: a shard segment torn mid-trailer —
// the shape a crashed checkpoint or truncated copy leaves behind — must
// fail the open with an error, in every memory mode, not serve garbage.
func TestOpenStoreRejectsTornSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	idx, _ := equivBuild(t, rng, 20)
	dir := t.TempDir()
	s, err := CreateStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateFromIndex("c", idx, CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	shards, err := filepath.Glob(filepath.Join(dir, "c", "shard-*.gdx"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shard files found: %v", err)
	}
	st, err := os.Stat(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func() error) {
		t.Helper()
		if err := mutate(); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []MemoryMode{MemoryAuto, MemoryMap, MemoryHeap} {
			if got, err := OpenStore(dir, StoreOptions{Memory: mode}); err == nil {
				got.Close()
				t.Fatalf("%s: OpenStore(mode=%d) accepted a corrupt segment", name, mode)
			}
		}
		if err := os.WriteFile(shards[0], pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	corrupt("torn mid-trailer", func() error {
		return os.Truncate(shards[0], st.Size()-40)
	})
	corrupt("truncated to half", func() error {
		return os.Truncate(shards[0], st.Size()/2)
	})
	corrupt("trailer bit flip", func() error {
		f, err := os.OpenFile(shards[0], os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.WriteAt([]byte{pristine[st.Size()-20] ^ 0x40}, st.Size()-20)
		return err
	})

	// And the pristine file must still open — the corruptions above, not
	// the restore, were what failed.
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("pristine reopen: %v", err)
	}
	re.Close()
}

// TestReadIndexSegmentRoundTrip covers the io.Reader leg (generic
// ReadIndex — the portable, heap-only path every platform has): a v4
// segment streamed through a pipe-shaped reader must rehydrate to an
// index that answers exactly like its source.
func TestReadIndexSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(equivSeed(t)))
	idx, db := equivBuild(t, rng, 30)
	if _, err := idx.Add(dataset.Synthetic(dataset.SynthConfig{N: 4, AvgEdges: 8, Labels: 5, Seed: rng.Int63()})...); err != nil {
		t.Fatal(err)
	}
	if err := idx.Remove(1, 7); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := idx.writeSegment(&buf, idx.snap.Load()); err != nil {
		t.Fatal(err)
	}
	re, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if re.TotalGraphs() != idx.TotalGraphs() || re.Size() != idx.Size() {
		t.Fatalf("rehydrated %d total/%d live, want %d/%d", re.TotalGraphs(), re.Size(), idx.TotalGraphs(), idx.Size())
	}
	if re.snap.Load().seg != nil {
		t.Fatal("ReadIndex kept a segment source; the reader leg must be fully heap-resident")
	}
	ctx := context.Background()
	queries := append([]*Graph{db[3]}, dataset.Synthetic(dataset.SynthConfig{N: 2, AvgEdges: 6, Labels: 7, Seed: rng.Int63()})...)
	for qi, q := range queries {
		for _, opt := range []SearchOptions{
			{K: 6},
			{K: 6, NoPrune: true},
			{K: 4, Engine: EngineVerified, VerifyFactor: 2},
			{K: 3, Engine: EngineExact},
		} {
			want, err := idx.Search(ctx, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := re.Search(ctx, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("query %d %s: rehydrated ranking diverges:\ngot:  %v\nwant: %v", qi, fmt.Sprint(opt.Engine), got.Results, want.Results)
			}
		}
	}
}
