package graphdim

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
)

func TestAddMakesGraphsSearchable(t *testing.T) {
	all := dataset.Chemical(dataset.ChemConfig{N: 50, MinVertices: 8, MaxVertices: 14, Seed: 5})
	base, extra := all[:40], all[40:]
	idx, err := Build(base, Options{Dimensions: 20, Tau: 0.1, MCSBudget: 3000})
	if err != nil {
		t.Fatal(err)
	}

	ids, err := idx.Add(extra...)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{40, 41, 42, 43, 44, 45, 46, 47, 48, 49}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("assigned ids %v, want %v", ids, want)
	}
	if idx.Size() != 50 || idx.TotalGraphs() != 50 {
		t.Fatalf("Size/TotalGraphs = %d/%d, want 50/50", idx.Size(), idx.TotalGraphs())
	}

	// Each added graph must now be findable — a self query returns its
	// new id at distance 0.
	for i, g := range extra {
		res, err := idx.Search(context.Background(), g, SearchOptions{K: idx.Size()})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range res.Results {
			if r.ID == ids[i] {
				found = true
				if r.Distance != 0 {
					t.Errorf("added graph %d: self distance %v, want 0", ids[i], r.Distance)
				}
			}
		}
		if !found {
			t.Errorf("added graph %d missing from full scan", ids[i])
		}
	}

	// Nil and empty adds.
	if _, err := idx.Add(nil); err == nil {
		t.Error("Add(nil graph) accepted")
	}
	if ids, err := idx.Add(); err != nil || ids != nil {
		t.Errorf("empty Add = %v, %v", ids, err)
	}
}

// TestReloadedPlusAddMatchesDirectAdd pins the acceptance criterion: an
// index persisted in v2, reloaded, and extended via Add answers queries
// identically to the same build extended directly — same dimensions, same
// database, same mapping.
func TestReloadedPlusAddMatchesDirectAdd(t *testing.T) {
	all := dataset.Chemical(dataset.ChemConfig{N: 48, MinVertices: 8, MaxVertices: 14, Seed: 6})
	base, extra := all[:36], all[36:]
	built, err := Build(base, Options{Dimensions: 18, Tau: 0.1, MCSBudget: 3000})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := built.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := built.Add(extra...); err != nil {
		t.Fatal(err)
	}
	if _, err := reloaded.Add(extra...); err != nil {
		t.Fatal(err)
	}

	queries := dataset.Chemical(dataset.ChemConfig{N: 6, MinVertices: 8, MaxVertices: 14, Seed: 77})
	for qi, q := range queries {
		for _, opt := range []SearchOptions{
			{K: 10},
			{K: 10, Engine: EngineVerified, VerifyFactor: 2},
			{K: 10, Engine: EngineExact},
		} {
			a, err := built.Search(context.Background(), q, opt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := reloaded.Search(context.Background(), q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Results, b.Results) {
				t.Errorf("query %d engine %v: direct %v vs reloaded %v", qi, opt.Engine, a.Results, b.Results)
			}
		}
	}
	if built.StaleRatio() != reloaded.StaleRatio() {
		t.Errorf("stale ratios diverged: %v vs %v", built.StaleRatio(), reloaded.StaleRatio())
	}
}

func TestRemoveTombstones(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	n := idx.Size()

	if err := idx.Remove(3, 17); err != nil {
		t.Fatal(err)
	}
	if idx.Size() != n-2 || idx.Removed() != 2 {
		t.Fatalf("Size/Removed = %d/%d, want %d/2", idx.Size(), idx.Removed(), n-2)
	}
	if !idx.IsRemoved(3) || idx.IsRemoved(4) {
		t.Error("IsRemoved wrong")
	}
	if idx.Graph(3) == nil {
		t.Error("removed graph no longer addressable")
	}

	// No engine may return a tombstoned id, even for a self query.
	for _, engine := range []Engine{EngineMapped, EngineVerified, EngineExact} {
		res, err := idx.Search(context.Background(), db[3], SearchOptions{K: idx.TotalGraphs(), Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) != n-2 {
			t.Errorf("%v: %d results after removal, want %d", engine, len(res.Results), n-2)
		}
		for _, r := range res.Results {
			if r.ID == 3 || r.ID == 17 {
				t.Errorf("%v returned removed id %d", engine, r.ID)
			}
		}
	}

	// Validation: out of range, double remove, atomicity.
	if err := idx.Remove(idx.TotalGraphs()); err == nil {
		t.Error("out-of-range Remove accepted")
	}
	if err := idx.Remove(-1); err == nil {
		t.Error("negative Remove accepted")
	}
	if err := idx.Remove(3); err == nil {
		t.Error("double Remove accepted")
	}
	if err := idx.Remove(5, 5); err == nil {
		t.Error("duplicate ids in one Remove accepted")
	}
	before := idx.Removed()
	if err := idx.Remove(6, 3); err == nil {
		t.Error("batch with already-removed id accepted")
	}
	if idx.Removed() != before {
		t.Error("failed Remove was not atomic")
	}
	if err := idx.Remove(); err != nil {
		t.Errorf("empty Remove = %v", err)
	}
}

func TestStaleRatio(t *testing.T) {
	all := dataset.Chemical(dataset.ChemConfig{N: 60, MinVertices: 8, MaxVertices: 12, Seed: 8})
	idx, err := Build(all[:40], Options{Dimensions: 12, Tau: 0.15, MCSBudget: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.StaleRatio(); got != 0 {
		t.Fatalf("fresh StaleRatio = %v, want 0", got)
	}
	if _, err := idx.Add(all[40:50]...); err != nil {
		t.Fatal(err)
	}
	// 10 added of 50 slots.
	if got, want := idx.StaleRatio(), 10.0/50.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("after add: StaleRatio = %v, want %v", got, want)
	}
	if err := idx.Remove(0, 1, 2, 3, 4); err != nil {
		t.Fatal(err)
	}
	// (10 added + 5 removed) / 50 slots.
	if got, want := idx.StaleRatio(), 15.0/50.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("after remove: StaleRatio = %v, want %v", got, want)
	}
	if r := idx.StaleRatio(); r < 0 || r > 1 {
		t.Errorf("StaleRatio %v outside [0,1]", r)
	}
}

// TestStaleRatioAddThenRemoveCancels pins the no-double-count property:
// adding graphs and removing exactly those graphs leaves the live
// database identical to what the build-time ratio reflected.
func TestStaleRatioAddThenRemoveCancels(t *testing.T) {
	all := dataset.Chemical(dataset.ChemConfig{N: 50, MinVertices: 8, MaxVertices: 12, Seed: 16})
	idx, err := Build(all[:40], Options{Dimensions: 12, Tau: 0.15, MCSBudget: 1500})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := idx.Add(all[40:]...)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Remove(ids...); err != nil {
		t.Fatal(err)
	}
	// The live database is the build-time database again: not stale.
	if got := idx.StaleRatio(); got != 0 {
		t.Errorf("add-then-remove StaleRatio = %v, want 0", got)
	}
	// Removing a build-time graph is real drift.
	if err := idx.Remove(0); err != nil {
		t.Fatal(err)
	}
	if got, want := idx.StaleRatio(), 1.0/50.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("after base removal: StaleRatio = %v, want %v", got, want)
	}
	// And the distinction survives persistence.
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.StaleRatio() != idx.StaleRatio() {
		t.Errorf("StaleRatio changed across persistence: %v vs %v", loaded.StaleRatio(), idx.StaleRatio())
	}
}

// TestConcurrentSearchersAndUpdaters hammers one index with lock-free
// readers while writers add and remove — the copy-on-write contract,
// meaningful under -race. Readers must always observe a consistent
// snapshot: every result id resolvable, no partial states.
func TestConcurrentSearchersAndUpdaters(t *testing.T) {
	all := dataset.Chemical(dataset.ChemConfig{N: 60, MinVertices: 8, MaxVertices: 12, Seed: 9})
	idx, err := Build(all[:30], Options{Dimensions: 12, Tau: 0.15, MCSBudget: 1500, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := all[0]

	var writers, readers sync.WaitGroup
	errCh := make(chan error, 64)
	var stop atomic.Bool

	// Writers: one adder, one remover.
	writers.Add(2)
	go func() {
		defer writers.Done()
		for _, g := range all[30:] {
			if _, err := idx.Add(g); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() {
		defer writers.Done()
		for id := 0; id < 20; id++ {
			if err := idx.Remove(id); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Readers run until the writers are done.
	for w := 0; w < 8; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				res, err := idx.Search(context.Background(), q, SearchOptions{K: 5})
				if err != nil {
					errCh <- err
					return
				}
				for _, r := range res.Results {
					if r.ID < 0 || r.ID >= idx.TotalGraphs() {
						errCh <- errors.New("result id out of range")
						return
					}
				}
			}
		}()
	}

	writers.Wait()
	stop.Store(true)
	readers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if idx.TotalGraphs() != 60 || idx.Size() != 40 || idx.Removed() != 20 {
		t.Fatalf("final state Total/Size/Removed = %d/%d/%d, want 60/40/20",
			idx.TotalGraphs(), idx.Size(), idx.Removed())
	}
}

func TestAddContextCancelled(t *testing.T) {
	idx, _ := buildSmall(t, DSPM)
	extra := dataset.Chemical(dataset.ChemConfig{N: 3, MinVertices: 8, MaxVertices: 12, Seed: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := idx.TotalGraphs()
	if _, err := idx.AddContext(ctx, extra...); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Add err = %v, want context.Canceled", err)
	}
	if idx.TotalGraphs() != before {
		t.Error("cancelled Add published graphs")
	}
}
