package graphdim

// This file bridges the collection layer to internal/segment, the v4
// on-disk shard format: checkpoints stream a snapshot out as a segment
// (writeSegment), and opens serve a segment back either mapped — the
// tile section IS the scan block, graph payloads fault in lazily — or
// fully rehydrated onto the heap (indexFromSegment). segSource is the
// per-open shared state a mapped snapshot chain hangs onto: the reader
// plus a decode-once cache for faulted graphs.

import (
	"bytes"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/mcs"
	"repro/internal/pool"
	"repro/internal/segment"
	"repro/internal/vecspace"
)

// segSource is the mapped segment a snapshot chain is served from. It is
// created once per open and shared — with its decoded-graph cache —
// across every snapshot descended from that open (Add/Remove carry it
// forward), so a graph payload is decoded at most once per process no
// matter how many snapshots alias the mapping.
type segSource struct {
	r      *segment.Reader
	graphs []atomic.Pointer[graph.Graph]
}

func newSegSource(r *segment.Reader) *segSource {
	return &segSource{r: r, graphs: make([]atomic.Pointer[graph.Graph], r.N())}
}

// graphAt returns graph id, decoding it from the mapping on first demand.
// Racing decoders may duplicate work; CompareAndSwap publishes exactly
// one so callers always see one identity per id.
func (ss *segSource) graphAt(id int) (*Graph, error) {
	if g := ss.graphs[id].Load(); g != nil {
		return g, nil
	}
	g, err := ss.r.GraphAt(id)
	if err != nil {
		return nil, err
	}
	if ss.graphs[id].CompareAndSwap(nil, g) {
		return g, nil
	}
	return ss.graphs[id].Load(), nil
}

// writeSegment streams snapshot s as a v4 segment. The tile section is
// written in exactly the layout the scan kernel consumes, so a later
// mapped open serves queries from the file bytes with zero rehydration.
// When s itself is served from a mapped segment, unmodified graph
// payloads are copied verbatim (graphs are immutable — no decode,
// re-encode round trip per checkpoint).
func (ix *Index) writeSegment(w io.Writer, s *snapshot) error {
	blk := s.soaBlock(ix.mapper.Dim())
	n := len(s.db)

	// Ones counts feed the per-zone min/max bounds and the posting
	// buckets; popcount them straight out of the tiles rather than
	// materializing a BitVector per id.
	ones := make([]int32, n)
	width, words := blk.Width(), blk.Words()
	for id := 0; id < n; id++ {
		tile := blk.Tile(id / width)
		j := id % width
		o := 0
		for k := 0; k < words; k++ {
			o += bits.OnesCount64(tile[k*width+j])
		}
		ones[id] = int32(o)
	}

	var buf bytes.Buffer
	graphBytes := func(i int) ([]byte, error) {
		if s.seg != nil && s.db[i] == nil {
			return s.seg.r.GraphBytes(i)
		}
		buf.Reset()
		if err := graph.WriteBinary(&buf, s.db[i]); err != nil {
			return nil, err
		}
		// Write collects the blobs before streaming them, so each call
		// must return bytes that survive the next Reset.
		return append([]byte(nil), buf.Bytes()...), nil
	}

	return segment.Write(w, segment.Payload{
		Meta: segment.Meta{
			Metric:    byte(ix.metric),
			MCSBudget: ix.mcsOpt.MaxNodes,
			Weights:   ix.weights,
			Features:  ix.features,
			BaseN:     s.baseN,
		},
		Block: blk,
		Dead:  s.dead,
		Graph: graphBytes,
		Ones:  ones,
		List:  s.post.List,
	})
}

// openShardIndex opens one shard file by path, dispatching on its magic:
// v4 segments honor the store's memory mode (mapped or rehydrated),
// anything else takes the legacy ReadIndex path (v3/v2 binary, v1 JSON)
// onto the heap.
func openShardIndex(path string, mode MemoryMode) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [len(segment.Magic)]byte
	_, rerr := io.ReadFull(f, head[:])
	if rerr == nil && string(head[:]) == segment.Magic {
		f.Close()
		return openSegmentIndex(path, mode)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}

// openSegmentIndex opens a v4 segment file. Every mode except MemoryHeap
// asks for the mapping; on platforms without mmap support segment.Open
// degrades to reading the file into one heap buffer and the index still
// serves through the same lazy segment path — mode selects the serving
// strategy, never the file format.
func openSegmentIndex(path string, mode MemoryMode) (*Index, error) {
	r, err := segment.Open(path, segment.Options{Map: mode != MemoryHeap})
	if err != nil {
		return nil, err
	}
	ix, err := indexFromSegment(r, mode == MemoryHeap)
	if err != nil {
		r.Close()
		return nil, err
	}
	return ix, nil
}

// readIndexSegment is the io.Reader leg for v4 segments (generic
// ReadIndex callers — replication bootstrap pipes, tests): the bytes are
// already off disk, so it verifies the body checksum like a heap open
// and rehydrates fully.
func readIndexSegment(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graphdim: read index: %w", err)
	}
	sr, err := segment.NewReader(data, false, nil)
	if err != nil {
		return nil, err
	}
	if err := sr.VerifyBody(); err != nil {
		return nil, err
	}
	return indexFromSegment(sr, true)
}

// indexFromSegment builds an Index over an opened segment reader. With
// rehydrate false the snapshot keeps nil graph/vector placeholders and
// serves both through the mapping (the scan block aliases the tile
// section in place); with rehydrate true every payload is decoded onto
// the heap and the reader is only kept as the backing array owner.
func indexFromSegment(r *segment.Reader, rehydrate bool) (*Index, error) {
	m := r.Meta()
	if m.Metric > byte(Delta2) {
		return nil, fmt.Errorf("graphdim: corrupt segment: unknown metric %d", m.Metric)
	}
	if m.MCSBudget < 0 {
		return nil, fmt.Errorf("graphdim: corrupt segment: negative MCS budget %d", m.MCSBudget)
	}
	n := r.N()
	if m.BaseN < 0 || m.BaseN > n {
		return nil, fmt.Errorf("graphdim: corrupt segment: baseN %d outside [0,%d]", m.BaseN, n)
	}
	blk, err := r.Block()
	if err != nil {
		return nil, err
	}
	post, err := r.Postings()
	if err != nil {
		return nil, err
	}
	dead, deadCount := r.Dead()
	baseDead := 0
	for i := 0; i < m.BaseN; i++ {
		if dead[i] {
			baseDead++
		}
	}
	snap := &snapshot{
		db:        make([]*Graph, n),
		vectors:   make([]*vecspace.BitVector, n),
		dead:      dead,
		deadCount: deadCount,
		post:      post,
		baseN:     m.BaseN,
		baseDead:  baseDead,
	}
	if rehydrate {
		for i := 0; i < n; i++ {
			g, err := r.GraphAt(i)
			if err != nil {
				return nil, err
			}
			snap.db[i] = g
			snap.vectors[i] = blk.Vector(i)
		}
	} else {
		snap.seg = newSegSource(r)
	}
	snap.block.Store(blk)
	return newIndex(m.Features, m.Weights, Metric(m.Metric),
		mcs.Options{MaxNodes: m.MCSBudget}, pool.DefaultWorkers(0), snap), nil
}
