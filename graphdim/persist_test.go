package graphdim

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func buildForPersist(t *testing.T) (*Index, []*Graph) {
	t.Helper()
	db := dataset.Chemical(dataset.ChemConfig{N: 30, MinVertices: 8, MaxVertices: 12, Seed: 13})
	idx, err := Build(db, Options{Dimensions: 12, Tau: 0.15, MCSBudget: 1500})
	if err != nil {
		t.Fatal(err)
	}
	return idx, db
}

func sameAnswers(t *testing.T, a, b *Index, queries []*Graph) {
	t.Helper()
	for qi, q := range queries {
		ra, err := a.Search(context.Background(), q, SearchOptions{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Search(context.Background(), q, SearchOptions{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra.Results, rb.Results) {
			t.Fatalf("query %d: answers diverged after persistence:\n%v\n%v", qi, ra.Results, rb.Results)
		}
	}
}

func TestV2RoundTripPreservesState(t *testing.T) {
	idx, db := buildForPersist(t)
	extra := dataset.Chemical(dataset.ChemConfig{N: 5, MinVertices: 8, MaxVertices: 12, Seed: 14})
	if _, err := idx.Add(extra...); err != nil {
		t.Fatal(err)
	}
	if err := idx.Remove(2, 7, 31); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.TotalGraphs() != idx.TotalGraphs() || loaded.Size() != idx.Size() || loaded.Removed() != idx.Removed() {
		t.Fatalf("shape changed: Total/Size/Removed %d/%d/%d vs %d/%d/%d",
			loaded.TotalGraphs(), loaded.Size(), loaded.Removed(),
			idx.TotalGraphs(), idx.Size(), idx.Removed())
	}
	if loaded.StaleRatio() != idx.StaleRatio() {
		t.Fatalf("StaleRatio changed: %v vs %v", loaded.StaleRatio(), idx.StaleRatio())
	}
	if !loaded.IsRemoved(2) || !loaded.IsRemoved(31) || loaded.IsRemoved(3) {
		t.Fatal("tombstones not preserved")
	}
	if !reflect.DeepEqual(loaded.Weights(), idx.Weights()) {
		t.Fatal("weights changed")
	}
	for i, f := range idx.Dimensions() {
		if loaded.Dimensions()[i].String() != f.String() {
			t.Fatalf("dimension %d changed", i)
		}
	}
	sameAnswers(t, idx, loaded, db[:5])
}

// TestV2Deterministic pins the canonical encoding: same state, same
// bytes. Operators can diff and checksum index files.
func TestV2Deterministic(t *testing.T) {
	idx, _ := buildForPersist(t)
	var a, b bytes.Buffer
	if _, err := idx.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two WriteTo calls produced different bytes")
	}
	// And a load→save cycle reproduces them too.
	loaded, err := ReadIndex(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if _, err := loaded.WriteTo(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("load→save changed the encoding")
	}
}

func TestV1FilesStillLoad(t *testing.T) {
	idx, db := buildForPersist(t)
	var buf bytes.Buffer
	if err := idx.writeToV1(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("{")) {
		t.Fatal("v1 fixture is not JSON")
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatalf("v1 file failed to load: %v", err)
	}
	if loaded.Size() != idx.Size() || len(loaded.Dimensions()) != len(idx.Dimensions()) {
		t.Fatal("v1 load changed shapes")
	}
	if loaded.StaleRatio() != 0 || loaded.Removed() != 0 {
		t.Fatal("v1 load invented tombstones or staleness")
	}
	sameAnswers(t, idx, loaded, db[:5])

	// A v1 index keeps working as a v2 citizen: extendable and
	// re-persistable in the new format.
	extra := dataset.Chemical(dataset.ChemConfig{N: 2, MinVertices: 8, MaxVertices: 12, Seed: 15})
	if _, err := loaded.Add(extra...); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := loaded.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	again, err := ReadIndex(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalGraphs() != idx.Size()+2 {
		t.Fatal("v1→v2 migration lost graphs")
	}
}

// TestV2FilesStillLoad pins the legacy binary format: a GDIMIDX2 file
// (no postings section) loads with its postings rebuilt from the
// vectors, answers identically — pruned scans included — and re-saves
// in the current v3 format.
func TestV2FilesStillLoad(t *testing.T) {
	idx, db := buildForPersist(t)
	if err := idx.Remove(4, 11); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.writeToV2(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("GDIMIDX2")) {
		t.Fatal("v2 fixture lacks the v2 magic")
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatalf("v2 file failed to load: %v", err)
	}
	if loaded.Size() != idx.Size() || loaded.Removed() != idx.Removed() {
		t.Fatal("v2 load changed shapes")
	}
	sameAnswers(t, idx, loaded, db[:5])

	var v3 bytes.Buffer
	if _, err := loaded.WriteTo(&v3); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v3.Bytes(), []byte("GDIMIDX3")) {
		t.Fatal("re-save of a v2 file is not v3")
	}
	// The rebuilt postings serialize to exactly what a native v3 save of
	// the source index produces: the section is canonical.
	var native bytes.Buffer
	if _, err := idx.WriteTo(&native); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v3.Bytes(), native.Bytes()) {
		t.Fatal("v2→v3 migration and native v3 save diverge")
	}
}

// TestV3PostingsSectionMatchesRebuild pins that the decoded postings
// section and an in-memory rebuild drive identical pruned searches:
// the decoder's cross-check plus this equivalence is the whole safety
// argument for trusting the serialized lists.
func TestV3PostingsSectionMatchesRebuild(t *testing.T) {
	idx, db := buildForPersist(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fromSection, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := idx.writeToV2(&v2); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ReadIndex(&v2)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswers(t, fromSection, rebuilt, db[:8])
}

func TestV2RejectsCorruption(t *testing.T) {
	idx, _ := buildForPersist(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Any single flipped payload byte must fail the checksum (or a
	// structural check before it). Probe a spread of positions.
	for _, pos := range []int{8, 9, 20, len(valid) / 2, len(valid) - 5, len(valid) - 1} {
		corrupt := append([]byte(nil), valid...)
		corrupt[pos] ^= 0x40
		if _, err := ReadIndex(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("flipped byte %d accepted", pos)
		}
	}
	// Truncations must fail, never hang or panic.
	for _, cut := range []int{4, 8, 12, len(valid) / 3, len(valid) - 1} {
		if _, err := ReadIndex(bytes.NewReader(valid[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadIndexRejectsNonIndexInput(t *testing.T) {
	for name, data := range map[string]string{
		"empty":       "",
		"text":        "hello world",
		"bad magic":   "GDIMIDX9everything-else",
		"json garble": `{"version": 2}`,
	} {
		if _, err := ReadIndex(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestV2MuchSmallerThanV1 documents the point of the format change.
func TestV2MuchSmallerThanV1(t *testing.T) {
	idx, _ := buildForPersist(t)
	var v1, v2 bytes.Buffer
	if err := idx.writeToV1(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len()*2 > v1.Len() {
		t.Errorf("v2 (%d bytes) is not at least 2x smaller than v1 (%d bytes)", v2.Len(), v1.Len())
	}
}
