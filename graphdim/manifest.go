package graphdim

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A store persists as a directory: a store.json manifest naming every
// collection, its shard layout, build and default-search options, and the
// local→global id table of each shard, next to one v2 index file per shard
// (<dir>/<collection>/shard-NNNN.gdx, the WriteTo format). Shard files
// carry no ids of their own — the manifest's tables are authoritative —
// so the per-shard codec stays exactly the single-index format and a
// shard file remains loadable as a plain index with ReadIndex.

const (
	manifestName    = "store.json"
	manifestVersion = 1
	// placementSplitMix64 names the id→shard hash of manifest v1. The
	// placement of persisted ids must survive reload, so the function is
	// part of the format: a manifest naming an unknown placement is
	// rejected rather than silently re-placed.
	placementSplitMix64 = "splitmix64"
)

type storeManifest struct {
	Version     int                  `json:"version"`
	Placement   string               `json:"placement"`
	Collections []collectionManifest `json:"collections"`
}

type collectionManifest struct {
	Name     string           `json:"name"`
	Shards   int              `json:"shards"`
	NextID   int              `json:"next_id"`
	Build    buildManifest    `json:"build"`
	Defaults defaultsManifest `json:"defaults"`
	// Cache persists the collection's query-cache bounds; the cache
	// contents themselves are runtime state and never persist (a loaded
	// store starts cold, all shard generations at zero).
	Cache cacheManifest `json:"cache,omitempty"`
	// ShardFiles[i] is shard i's index file, relative to the collection
	// directory. Each Save writes fresh uniquely-named files and only
	// then swaps the manifest, so the files a live manifest references
	// are never truncated or overwritten — a crash mid-save leaves the
	// previous generation fully intact.
	ShardFiles []string `json:"shard_files"`
	// ShardGlobals[i] is shard i's strictly ascending local→global table.
	ShardGlobals [][]int `json:"shard_globals"`
}

// buildManifest mirrors the scalar fields of Options (Progress does not
// persist), with zero values meaning the library defaults as usual.
type buildManifest struct {
	Dimensions      int     `json:"dimensions,omitempty"`
	Tau             float64 `json:"tau,omitempty"`
	MaxPatternEdges int     `json:"max_pattern_edges,omitempty"`
	MaxCandidates   int     `json:"max_candidates,omitempty"`
	Metric          int     `json:"metric,omitempty"`
	Algorithm       int     `json:"algorithm,omitempty"`
	PartitionSize   int     `json:"partition_size,omitempty"`
	MCSBudget       int64   `json:"mcs_budget,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
	Iterations      int     `json:"iterations,omitempty"`
	Workers         int     `json:"workers,omitempty"`
}

func toBuildManifest(o Options) buildManifest {
	return buildManifest{
		Dimensions:      o.Dimensions,
		Tau:             o.Tau,
		MaxPatternEdges: o.MaxPatternEdges,
		MaxCandidates:   o.MaxCandidates,
		Metric:          int(o.Metric),
		Algorithm:       int(o.Algorithm),
		PartitionSize:   o.PartitionSize,
		MCSBudget:       o.MCSBudget,
		Seed:            o.Seed,
		Iterations:      o.Iterations,
		Workers:         o.Workers,
	}
}

func (m buildManifest) options() Options {
	return Options{
		Dimensions:      m.Dimensions,
		Tau:             m.Tau,
		MaxPatternEdges: m.MaxPatternEdges,
		MaxCandidates:   m.MaxCandidates,
		Metric:          Metric(m.Metric),
		Algorithm:       Algorithm(m.Algorithm),
		PartitionSize:   m.PartitionSize,
		MCSBudget:       m.MCSBudget,
		Seed:            m.Seed,
		Iterations:      m.Iterations,
		Workers:         m.Workers,
	}
}

// cacheManifest mirrors CacheOptions.
type cacheManifest struct {
	MaxEntries int   `json:"max_entries,omitempty"`
	MaxBytes   int64 `json:"max_bytes,omitempty"`
}

// defaultsManifest mirrors the scalar fields of SearchOptions (Predicate
// does not persist).
type defaultsManifest struct {
	K             int    `json:"k,omitempty"`
	Engine        string `json:"engine,omitempty"`
	VerifyFactor  int    `json:"verify_factor,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	Metric        int    `json:"metric,omitempty"`
}

func toDefaultsManifest(o SearchOptions) defaultsManifest {
	m := defaultsManifest{
		K:             o.K,
		VerifyFactor:  o.VerifyFactor,
		MaxCandidates: o.MaxCandidates,
		Metric:        int(o.Metric),
	}
	if o.Engine != EngineMapped {
		m.Engine = o.Engine.String()
	}
	return m
}

func (m defaultsManifest) options() (SearchOptions, error) {
	o := SearchOptions{
		K:             m.K,
		VerifyFactor:  m.VerifyFactor,
		MaxCandidates: m.MaxCandidates,
		Metric:        MetricChoice(m.Metric),
	}
	if m.Engine != "" {
		e, err := ParseEngine(m.Engine)
		if err != nil {
			return o, err
		}
		o.Engine = e
	}
	return o, nil
}

// shardPattern names a new shard file; the "*" is replaced by a unique
// token (os.CreateTemp), so successive saves never touch each other's
// files.
func shardPattern(shard int) string {
	return fmt.Sprintf("shard-%04d-*.gdx", shard)
}

// Save persists the whole store under dir: one freshly named index file
// per shard, written in parallel under the store budget, then the
// manifest — written last and atomically (temp file + rename). Files
// referenced by an existing manifest are never truncated or overwritten,
// so a crash or error at any point leaves the previous on-disk generation
// fully loadable; files the new manifest supersedes (and the debris of
// failed saves) are deleted only after the swap. Save may run
// concurrently with queries; each collection's writers are paused while
// its shard files stream out, so a multi-shard Add is either fully in the
// saved image or fully absent — never split across shards. Saves of one
// Store are serialized with each other (the sweep must not race another
// save's in-flight files); saving the same directory from two different
// Store values is not supported.
func (s *Store) Save(dir string) error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("graphdim: save store: %w", err)
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.collections))
	colls := make([]*Collection, 0, len(s.collections))
	for name := range s.collections {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		colls = append(colls, s.collections[name])
	}
	s.mu.RUnlock()

	man := storeManifest{Version: manifestVersion, Placement: placementSplitMix64}
	for _, c := range colls {
		cdir := filepath.Join(dir, c.name)
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			return fmt.Errorf("graphdim: save store: %w", err)
		}
		cm := collectionManifest{
			Name:         c.name,
			Shards:       len(c.shards),
			Build:        toBuildManifest(c.build),
			Defaults:     toDefaultsManifest(c.defaults),
			Cache:        cacheManifest{MaxEntries: c.cacheOpt.MaxEntries, MaxBytes: c.cacheOpt.MaxBytes},
			ShardFiles:   make([]string, len(c.shards)),
			ShardGlobals: make([][]int, len(c.shards)),
		}
		// Holding the collection writer lock across all shard writes keeps
		// the saved image transactionally consistent: an Add spanning
		// several shards is either fully included or fully excluded.
		// Readers are unaffected; writers to this collection wait.
		c.addMu.Lock()
		errs := make([]error, len(c.shards))
		_ = s.budget.ForContext(context.Background(), len(c.shards), func(i int) {
			cm.ShardFiles[i], cm.ShardGlobals[i], errs[i] = c.shards[i].save(cdir, i)
		})
		cm.NextID = int(c.nextID.Load())
		c.addMu.Unlock()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("graphdim: save %s shard %d: %w", c.name, i, err)
			}
		}
		man.Collections = append(man.Collections, cm)
	}

	data, err := json.MarshalIndent(&man, "", " ")
	if err != nil {
		return fmt.Errorf("graphdim: save store: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("graphdim: save store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("graphdim: save store: %w", err)
	}
	sweepOrphans(dir, man)
	return nil
}

// sweepOrphans deletes shard files the just-installed manifest does not
// reference: superseded generations, the debris of failed saves, and the
// directories of collections dropped since the previous save. Best-effort
// — an undeleted orphan costs disk, never correctness.
func sweepOrphans(dir string, man storeManifest) {
	live := make(map[string]map[string]bool, len(man.Collections))
	for _, cm := range man.Collections {
		keep := make(map[string]bool, len(cm.ShardFiles))
		for _, f := range cm.ShardFiles {
			keep[f] = true
		}
		live[cm.Name] = keep
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, d := range entries {
		// Only directories matching the collection-name grammar are
		// Save's to manage; anything else in dir is left alone.
		if !d.IsDir() || !collectionName.MatchString(d.Name()) {
			continue
		}
		keep := live[d.Name()] // nil (keep nothing) for dropped collections
		cdir := filepath.Join(dir, d.Name())
		files, err := os.ReadDir(cdir)
		if err != nil {
			continue
		}
		for _, e := range files {
			name := e.Name()
			if !keep[name] && strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".gdx") {
				os.Remove(filepath.Join(cdir, name))
			}
		}
		if keep == nil {
			// Dropped collection: remove its directory if now empty.
			os.Remove(cdir)
		}
	}
}

// save writes the shard's index to a fresh uniquely named file in cdir
// and returns its basename plus the id table matching exactly the
// snapshot written. The writer lock is held for the duration: readers
// proceed, writers to this shard wait. Nothing pre-existing is touched.
func (sh *shard) save(cdir string, i int) (string, []int, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.state.Load()
	f, err := os.CreateTemp(cdir, shardPattern(i))
	if err != nil {
		return "", nil, err
	}
	name := filepath.Base(f.Name())
	if _, err := st.idx.WriteTo(f); err != nil {
		f.Close()
		return "", nil, err
	}
	if err := f.Close(); err != nil {
		return "", nil, err
	}
	// Under mu the table cannot outrun the index; copy defensively anyway.
	globals := append([]int(nil), st.globals[:st.idx.TotalGraphs()]...)
	return name, globals, nil
}

// OpenStore loads a store previously written by Save, reading the shard
// indexes in parallel under the new store's budget. The options configure
// the returned store exactly as NewStore does — the compaction policy and
// worker budget are runtime settings, not persisted state.
func OpenStore(dir string, opt StoreOptions) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("graphdim: open store: %w", err)
	}
	var man storeManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("graphdim: open store: decode manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("graphdim: open store: unsupported manifest version %d", man.Version)
	}
	if man.Placement != placementSplitMix64 {
		return nil, fmt.Errorf("graphdim: open store: unknown placement %q", man.Placement)
	}

	s := NewStore(opt)
	for _, cm := range man.Collections {
		c, err := s.loadCollection(dir, cm)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("graphdim: open store: collection %q: %w", cm.Name, err)
		}
		s.mu.Lock()
		if _, ok := s.collections[cm.Name]; ok {
			s.mu.Unlock()
			s.Close()
			return nil, fmt.Errorf("graphdim: open store: duplicate collection %q", cm.Name)
		}
		s.collections[cm.Name] = c
		s.mu.Unlock()
	}
	return s, nil
}

func (s *Store) loadCollection(dir string, cm collectionManifest) (*Collection, error) {
	if !collectionName.MatchString(cm.Name) {
		return nil, fmt.Errorf("invalid name")
	}
	if cm.Shards < 1 || cm.Shards > maxShards {
		return nil, fmt.Errorf("shard count %d outside [1,%d]", cm.Shards, maxShards)
	}
	if len(cm.ShardGlobals) != cm.Shards {
		return nil, fmt.Errorf("%d id tables for %d shards", len(cm.ShardGlobals), cm.Shards)
	}
	if len(cm.ShardFiles) != cm.Shards {
		return nil, fmt.Errorf("%d shard files for %d shards", len(cm.ShardFiles), cm.Shards)
	}
	for i, f := range cm.ShardFiles {
		// Basenames only: a hand-edited manifest must not escape the
		// collection directory.
		if f == "" || f != filepath.Base(f) {
			return nil, fmt.Errorf("shard %d: invalid file name %q", i, f)
		}
	}
	build := cm.Build.options()
	defaults, err := cm.Defaults.options()
	if err != nil {
		return nil, err
	}
	cacheOpt := CacheOptions{MaxEntries: cm.Cache.MaxEntries, MaxBytes: cm.Cache.MaxBytes}
	// Same domain checks as create time, so a hand-edited manifest fails
	// at open rather than as confusing per-query errors later.
	if err := (CollectionOptions{Shards: cm.Shards, Build: build, Defaults: defaults, Cache: cacheOpt}).validate(); err != nil {
		return nil, err
	}

	c := &Collection{
		store:    s,
		name:     cm.Name,
		build:    build,
		defaults: defaults,
		shards:   make([]*shard, cm.Shards),
		cacheOpt: cacheOpt,
		cache:    newQueryCache(cacheOpt),
	}
	c.nextID.Store(int64(cm.NextID))
	errs := make([]error, cm.Shards)
	_ = s.budget.ForContext(context.Background(), cm.Shards, func(i int) {
		errs[i] = func() error {
			f, err := os.Open(filepath.Join(dir, cm.Name, cm.ShardFiles[i]))
			if err != nil {
				return err
			}
			defer f.Close()
			idx, err := ReadIndex(f)
			if err != nil {
				return err
			}
			// ReadIndex hands out a full per-CPU worker bound; a shard
			// gets its per-shard share, like CreateFromIndex's shards.
			idx.workers = c.shardIdxWorkers()
			globals := cm.ShardGlobals[i]
			if len(globals) != idx.TotalGraphs() {
				return fmt.Errorf("shard %d: %d ids in manifest for %d graphs", i, len(globals), idx.TotalGraphs())
			}
			for j, g := range globals {
				if g < 0 || g >= cm.NextID {
					return fmt.Errorf("shard %d: id %d outside [0,%d)", i, g, cm.NextID)
				}
				if j > 0 && globals[j-1] >= g {
					return fmt.Errorf("shard %d: id table not strictly ascending at %d", i, j)
				}
				if placeID(g, cm.Shards) != i {
					return fmt.Errorf("shard %d: id %d places on shard %d", i, g, placeID(g, cm.Shards))
				}
			}
			c.shards[i] = newShard(&shardState{idx: idx, globals: append([]int(nil), globals...)})
			return nil
		}()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}
