package graphdim

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/wal"
)

// A store persists as a directory: a store.json manifest naming every
// collection, its shard layout, build and default-search options, and the
// local→global id table of each shard, next to one v2 index file per shard
// (<dir>/<collection>/shard-NNNN.gdx, the WriteTo format). Shard files
// carry no ids of their own — the manifest's tables are authoritative —
// so the per-shard codec stays exactly the single-index format and a
// shard file remains loadable as a plain index with ReadIndex.

const (
	manifestName    = "store.json"
	manifestVersion = 1
	// placementSplitMix64 names the id→shard hash of manifest v1. The
	// placement of persisted ids must survive reload, so the function is
	// part of the format: a manifest naming an unknown placement is
	// rejected rather than silently re-placed.
	placementSplitMix64 = "splitmix64"
)

type storeManifest struct {
	Version     int                  `json:"version"`
	Placement   string               `json:"placement"`
	Collections []collectionManifest `json:"collections"`
}

type collectionManifest struct {
	Name     string           `json:"name"`
	Shards   int              `json:"shards"`
	NextID   int              `json:"next_id"`
	Build    buildManifest    `json:"build"`
	Defaults defaultsManifest `json:"defaults"`
	// Cache persists the collection's query-cache bounds; the cache
	// contents themselves are runtime state and never persist (a loaded
	// store starts cold, all shard generations at zero).
	Cache cacheManifest `json:"cache,omitempty"`
	// ShardFiles[i] is shard i's index file, relative to the collection
	// directory. Each Save writes fresh uniquely-named files and only
	// then swaps the manifest, so the files a live manifest references
	// are never truncated or overwritten — a crash mid-save leaves the
	// previous generation fully intact.
	ShardFiles []string `json:"shard_files"`
	// ShardGlobals[i] is shard i's strictly ascending local→global table.
	ShardGlobals [][]int `json:"shard_globals"`
	// WALSeq is the write-ahead-log sequence number this snapshot covers:
	// every logged record with a sequence <= WALSeq is already reflected
	// in the shard files, so opening the store replays only the records
	// after it. Zero for stores that never logged.
	WALSeq uint64 `json:"wal_seq,omitempty"`
}

// buildManifest mirrors the scalar fields of Options (Progress does not
// persist), with zero values meaning the library defaults as usual.
type buildManifest struct {
	Dimensions      int     `json:"dimensions,omitempty"`
	Tau             float64 `json:"tau,omitempty"`
	MaxPatternEdges int     `json:"max_pattern_edges,omitempty"`
	MaxCandidates   int     `json:"max_candidates,omitempty"`
	Metric          int     `json:"metric,omitempty"`
	Algorithm       int     `json:"algorithm,omitempty"`
	PartitionSize   int     `json:"partition_size,omitempty"`
	MCSBudget       int64   `json:"mcs_budget,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
	Iterations      int     `json:"iterations,omitempty"`
	Workers         int     `json:"workers,omitempty"`
}

func toBuildManifest(o Options) buildManifest {
	return buildManifest{
		Dimensions:      o.Dimensions,
		Tau:             o.Tau,
		MaxPatternEdges: o.MaxPatternEdges,
		MaxCandidates:   o.MaxCandidates,
		Metric:          int(o.Metric),
		Algorithm:       int(o.Algorithm),
		PartitionSize:   o.PartitionSize,
		MCSBudget:       o.MCSBudget,
		Seed:            o.Seed,
		Iterations:      o.Iterations,
		Workers:         o.Workers,
	}
}

func (m buildManifest) options() Options {
	return Options{
		Dimensions:      m.Dimensions,
		Tau:             m.Tau,
		MaxPatternEdges: m.MaxPatternEdges,
		MaxCandidates:   m.MaxCandidates,
		Metric:          Metric(m.Metric),
		Algorithm:       Algorithm(m.Algorithm),
		PartitionSize:   m.PartitionSize,
		MCSBudget:       m.MCSBudget,
		Seed:            m.Seed,
		Iterations:      m.Iterations,
		Workers:         m.Workers,
	}
}

// cacheManifest mirrors CacheOptions.
type cacheManifest struct {
	MaxEntries int   `json:"max_entries,omitempty"`
	MaxBytes   int64 `json:"max_bytes,omitempty"`
}

// defaultsManifest mirrors the scalar fields of SearchOptions (Predicate
// does not persist).
type defaultsManifest struct {
	K             int    `json:"k,omitempty"`
	Engine        string `json:"engine,omitempty"`
	VerifyFactor  int    `json:"verify_factor,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	Metric        int    `json:"metric,omitempty"`
}

func toDefaultsManifest(o SearchOptions) defaultsManifest {
	m := defaultsManifest{
		K:             o.K,
		VerifyFactor:  o.VerifyFactor,
		MaxCandidates: o.MaxCandidates,
		Metric:        int(o.Metric),
	}
	if o.Engine != EngineMapped {
		m.Engine = o.Engine.String()
	}
	return m
}

func (m defaultsManifest) options() (SearchOptions, error) {
	o := SearchOptions{
		K:             m.K,
		VerifyFactor:  m.VerifyFactor,
		MaxCandidates: m.MaxCandidates,
		Metric:        MetricChoice(m.Metric),
	}
	if m.Engine != "" {
		e, err := ParseEngine(m.Engine)
		if err != nil {
			return o, err
		}
		o.Engine = e
	}
	return o, nil
}

// writeFileSync is os.WriteFile plus an fsync before close.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// shardPattern names a new shard file; the "*" is replaced by a unique
// token (os.CreateTemp), so successive saves never touch each other's
// files.
func shardPattern(shard int) string {
	return fmt.Sprintf("shard-%04d-*.gdx", shard)
}

// Save persists the whole store under dir: one freshly named index file
// per shard, written in parallel under the store budget, then the
// manifest — written last and atomically (temp file + rename). Files
// referenced by an existing manifest are never truncated or overwritten,
// so a crash or error at any point leaves the previous on-disk generation
// fully loadable; files the new manifest supersedes (and the debris of
// failed saves) are deleted only after the swap. Save may run
// concurrently with queries and writes; each collection's writers pause
// only while its per-shard snapshot pointers are captured (O(shards)),
// not while the files stream out, and the capture is atomic under the
// writer lock — a multi-shard Add is either fully in the saved image or
// fully absent, never split across shards. Saves of one
// Store are serialized with each other (the sweep must not race another
// save's in-flight files); saving the same directory from two different
// Store values is not supported.
func (s *Store) Save(dir string) error { return s.saveTo(dir, false, nil) }

// saveTo is Save plus, for Checkpoint (truncate = true), log-position
// bookkeeping: each collection's manifest entry records the WAL sequence
// its shard files cover, and after the manifest swap the fully replayed
// log segments are deleted. On any error the files this attempt wrote
// are removed again, so a failed save leaves the directory exactly as
// the previous successful one did — the previous manifest and every file
// it references are never touched either way.
//
// extra, when non-nil, is a collection mid-create: it is included in the
// image and published into s.collections the moment the manifest
// installs, still under saveMu — so no other checkpoint can ever
// observe it registered-but-unmanifested (its writes would be swept) or
// manifested-but-unregistered (a crash would lose an acknowledged
// create).
func (s *Store) saveTo(dir string, truncate bool, extra *Collection) error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	return s.saveToLocked(dir, truncate, extra)
}

// saveToLocked is saveTo's body; the caller holds saveMu. Split out so
// a durable create can claim its wal directory and checkpoint under one
// continuous saveMu hold — a sweep can then never run between the two
// and mistake the fresh directory for droppable debris.
func (s *Store) saveToLocked(dir string, truncate bool, extra *Collection) (err error) {
	tmp := filepath.Join(dir, manifestName+".tmp")
	var written []string
	defer func() {
		if err == nil {
			return
		}
		// Failed attempt: sweep this attempt's debris (fresh shard files,
		// the temp manifest). Shard files of the live manifest are never
		// in written, so the previous generation stays fully loadable.
		for _, p := range written {
			os.Remove(p)
		}
		os.Remove(tmp)
	}()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("graphdim: save store: %w", err)
	}
	// An export is a save to a directory the store's logs do not live
	// in. Misclassifying a save of the store's own directory as an
	// export would sweep the live logs, so aliased spellings (relative
	// vs absolute, symlinks) are resolved by comparing the actual
	// directories, not just cleaned path strings.
	exported := s.dir == ""
	if !exported && filepath.Clean(dir) != filepath.Clean(s.dir) {
		di, err1 := os.Stat(dir)
		si, err2 := os.Stat(s.dir)
		exported = err1 != nil || err2 != nil || !os.SameFile(di, si)
	}
	s.mu.RLock()
	colls := make([]*Collection, 0, len(s.collections)+1)
	for _, c := range s.collections {
		colls = append(colls, c)
	}
	s.mu.RUnlock()
	if extra != nil {
		colls = append(colls, extra)
	}
	sort.Slice(colls, func(i, j int) bool { return colls[i].name < colls[j].name })

	man := storeManifest{Version: manifestVersion, Placement: placementSplitMix64}
	for _, c := range colls {
		cdir := filepath.Join(dir, c.name)
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			return fmt.Errorf("graphdim: save store: %w", err)
		}
		cm := collectionManifest{
			Name:         c.name,
			Shards:       len(c.shards),
			Build:        toBuildManifest(c.build),
			Defaults:     toDefaultsManifest(c.defaults),
			Cache:        cacheManifest{MaxEntries: c.cacheOpt.MaxEntries, MaxBytes: c.cacheOpt.MaxBytes},
			ShardFiles:   make([]string, len(c.shards)),
			ShardGlobals: make([][]int, len(c.shards)),
		}
		// The writer lock is held only while the per-shard snapshot
		// pointers are captured — O(shards), not for the (slow) encode
		// and fsync below — yet the image stays transactionally
		// consistent: writers serialize on this same lock, so an Add
		// spanning several shards is either fully included or fully
		// excluded, and the WAL sequence captured here is exactly the
		// last record the captured states reflect. The states themselves
		// are immutable (copy-on-write), so encoding them lock-free is
		// safe while Adds, Removes, and compactions continue.
		c.addMu.Lock()
		images := make([]shardImage, len(c.shards))
		for i, sh := range c.shards {
			st := sh.state.Load()
			// Pin the index snapshot too: the shard state's idx keeps
			// advancing after the lock is released, and the image must
			// stay exactly the one the captured id table and WAL
			// sequence describe.
			images[i] = shardImage{st: st, snap: st.idx.snap.Load()}
		}
		cm.NextID = int(c.nextID.Load())
		switch {
		case exported:
			// Export to a foreign directory: the snapshot ships without
			// its log, so it must not claim to cover one — wal_seq 0
			// makes an opened copy's fresh log replay from the start.
			// (The source log's positions mean nothing to the copy.)
			cm.WALSeq = 0
		case c.wal != nil:
			// The settled watermark, not the raw log tail: on a follower
			// the tail may include a mirrored add batch still buffered
			// against a possible amendment — not yet in shard state, so a
			// snapshot claiming to cover it would skip it on reopen. On a
			// primary the two agree here (addMu is held, no writer is
			// mid-batch).
			cm.WALSeq = c.applied.Load()
		default:
			// No log (WAL disabled): keep the loaded position — segments
			// up to it may still exist on disk, and a lower wal_seq would
			// make a later WAL-enabled open replay records this snapshot
			// already contains.
			cm.WALSeq = c.walBase
		}
		c.addMu.Unlock()
		errs := make([]error, len(c.shards))
		_ = s.budget.ForContext(context.Background(), len(c.shards), func(i int) {
			cm.ShardFiles[i], cm.ShardGlobals[i], errs[i] = writeShardImage(cdir, i, images[i])
		})
		// Collect every file the fan-out created before acting on any
		// error: the cleanup must see them all, or a failed save would
		// leave the successful shards' fresh files as debris.
		for _, f := range cm.ShardFiles {
			if f != "" {
				written = append(written, filepath.Join(cdir, f))
			}
		}
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("graphdim: save %s shard %d: %w", c.name, i, err)
			}
		}
		man.Collections = append(man.Collections, cm)
	}

	data, err := json.MarshalIndent(&man, "", " ")
	if err != nil {
		return fmt.Errorf("graphdim: save store: %w", err)
	}
	// The manifest is fsynced before the rename and the directories
	// after it, so by the time the truncation below deletes WAL
	// records the snapshot replacing them has actually reached the
	// disk — a power cut can land on either side of the swap, never on
	// a snapshot that exists only in the page cache.
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("graphdim: save store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("graphdim: save store: %w", err)
	}
	for _, cm := range man.Collections {
		wal.SyncDir(filepath.Join(dir, cm.Name))
	}
	wal.SyncDir(dir)
	// Point of no return: the manifest rename installed the snapshot, so
	// the checkpoint has succeeded — the fresh files must survive any
	// later hiccup, and nothing past here may turn into a reported
	// failure (callers compensate for failed checkpoints by un-creating
	// or un-dropping collections, which would be wrong against an
	// installed manifest). Log truncation is therefore best-effort, like
	// the orphan sweep: an unreclaimed segment costs disk, never
	// correctness — replay skips records <= WALSeq.
	written = nil
	if extra != nil {
		// Publish the freshly persisted collection while still holding
		// saveMu — see the doc comment.
		s.mu.Lock()
		s.collections[extra.name] = extra
		s.mu.Unlock()
	}
	// Collections mid-create have claimed their directory (and possibly
	// a live wal segment) but are not in this manifest yet: the sweep
	// must leave them alone. Their own create checkpoint settles them.
	s.mu.RLock()
	inCreation := make(map[string]bool, len(s.creating))
	for name := range s.creating {
		inCreation[name] = true
	}
	s.mu.RUnlock()
	sweepOrphans(dir, man, inCreation, exported)
	if truncate {
		for i, c := range colls {
			if c.wal != nil {
				_ = c.wal.Checkpoint(man.Collections[i].WALSeq)
			}
		}
		s.checkpoints.Add(1)
	}
	return nil
}

// sweepOrphans deletes shard files the just-installed manifest does not
// reference: superseded generations, the debris of failed saves, and the
// directories of collections dropped since the previous save. Names in
// inCreation are skipped entirely (a concurrent create owns them); with
// exported set (a Save to a directory the store's logs do not live in),
// stale wal segments under live collections are retired too, since the
// written manifest claims no log position. Best-effort — an undeleted
// orphan costs disk, never correctness.
func sweepOrphans(dir string, man storeManifest, inCreation map[string]bool, exported bool) {
	live := make(map[string]map[string]bool, len(man.Collections))
	for _, cm := range man.Collections {
		keep := make(map[string]bool, len(cm.ShardFiles))
		for _, f := range cm.ShardFiles {
			keep[f] = true
		}
		live[cm.Name] = keep
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, d := range entries {
		// Only directories matching the collection-name grammar are
		// Save's to manage; anything else in dir is left alone.
		if !d.IsDir() || !collectionName.MatchString(d.Name()) {
			continue
		}
		if inCreation[d.Name()] {
			continue
		}
		keep := live[d.Name()] // nil (keep nothing) for dropped collections
		cdir := filepath.Join(dir, d.Name())
		files, err := os.ReadDir(cdir)
		if err != nil {
			continue
		}
		for _, e := range files {
			name := e.Name()
			if !keep[name] && strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".gdx") {
				os.Remove(filepath.Join(cdir, name))
			}
		}
		if keep == nil || exported {
			// Retire the write-ahead log: of a dropped collection always,
			// of a live one only in an exported image (its manifest says
			// wal_seq 0, so leftover segments from an older store in this
			// directory would wrongly replay). Deliberately artifact-by-
			// artifact rather than RemoveAll — a foreign directory that
			// merely matches the name grammar (an operator's "backups/")
			// must never be recursively deleted.
			wdir := filepath.Join(cdir, walDirName)
			if segs, err := os.ReadDir(wdir); err == nil {
				for _, e := range segs {
					if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".wal") {
						os.Remove(filepath.Join(wdir, e.Name()))
					}
				}
				os.Remove(wdir)
			}
		}
		if keep == nil {
			// Dropped collection: remove the directory too, if now empty.
			os.Remove(cdir)
		}
	}
}

// shardImage is one shard's pinned checkpoint view: the shard state (for
// the id table and the index's codec parameters) plus the index snapshot
// frozen at capture time.
type shardImage struct {
	st   *shardState
	snap *snapshot
}

// writeShardImage writes one captured shard image to a fresh uniquely
// named file in cdir and returns its basename plus the id table matching
// exactly the snapshot written. Both halves of the image are immutable,
// so no locks are held: readers and writers proceed while the file
// streams out. Nothing pre-existing is touched.
func writeShardImage(cdir string, i int, img shardImage) (string, []int, error) {
	f, err := os.CreateTemp(cdir, shardPattern(i))
	if err != nil {
		return "", nil, err
	}
	name := filepath.Base(f.Name())
	// Checkpoints always write the v4 segment layout: a mapped reopen
	// serves the tile section in place, and legacy v3/v2/v1 files keep
	// loading read-side (openShardIndex sniffs per file).
	if err := img.st.idx.writeSegment(f, img.snap); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", nil, err
	}
	// fsync before the manifest can reference the file: a checkpoint
	// deletes WAL records on the strength of this snapshot, so the
	// snapshot must be at least as durable as the records it replaces.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", nil, err
	}
	// Captured under addMu with no Add in flight, the table cannot outrun
	// the pinned snapshot; bound by the snapshot, not the live index,
	// which may have grown since capture.
	globals := append([]int(nil), img.st.globals[:len(img.snap.db)]...)
	return name, globals, nil
}

// OpenStore loads a store previously written by Save or Checkpoint,
// reading the shard indexes in parallel under the new store's budget and
// then replaying each collection's write-ahead-log tail over its
// checkpointed state, so the store comes back holding exactly the writes
// that were committed — checkpointed or not — when the previous process
// stopped, however it stopped. The opened store is durable: subsequent
// writes log to dir (unless opt.WAL.Disabled). The options configure the
// returned store exactly as NewStore does — the compaction policy and
// worker budget are runtime settings, not persisted state.
func OpenStore(dir string, opt StoreOptions) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("graphdim: open store: %w", err)
	}
	var man storeManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("graphdim: open store: decode manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("graphdim: open store: unsupported manifest version %d", man.Version)
	}
	if man.Placement != placementSplitMix64 {
		return nil, fmt.Errorf("graphdim: open store: unknown placement %q", man.Placement)
	}

	s := NewStore(opt)
	s.dir = dir
	if !opt.WAL.Disabled {
		// Single-owner guard, taken before any log is opened (and
		// possibly torn-tail truncated): a second process must fail here,
		// not corrupt the first one's live segments.
		lock, err := lockDataDir(dir)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.lock = lock
	}
	for _, cm := range man.Collections {
		c, err := s.loadCollection(dir, cm)
		if err == nil {
			c.walBase = cm.WALSeq
			if s.walOpt.Disabled {
				// No log will attach, so nothing would replay: refuse if
				// the directory holds acknowledged records beyond the
				// checkpoint rather than silently dropping them.
				err = s.verifyNoWALTail(c.name, cm.WALSeq)
			} else if err = s.attachWAL(c); err == nil && c.wal != nil {
				// Recover the log tail: committed records the checkpoint
				// does not cover. attachWAL also truncates any torn record
				// a crash left behind the last committed one, and
				// re-seeding the checkpoint position both fixes the stats
				// and reclaims segments a crash between manifest swap and
				// truncation left behind.
				if err = c.replayWAL(cm.WALSeq); err == nil {
					err = c.wal.Checkpoint(cm.WALSeq)
				}
			}
		}
		if err != nil {
			if c != nil && c.wal != nil {
				c.wal.Close()
			}
			s.Close()
			return nil, fmt.Errorf("graphdim: open store: collection %q: %w", cm.Name, err)
		}
		s.mu.Lock()
		if _, ok := s.collections[cm.Name]; ok {
			s.mu.Unlock()
			s.Close()
			return nil, fmt.Errorf("graphdim: open store: duplicate collection %q", cm.Name)
		}
		s.collections[cm.Name] = c
		s.mu.Unlock()
	}
	return s, nil
}

func (s *Store) loadCollection(dir string, cm collectionManifest) (*Collection, error) {
	if !collectionName.MatchString(cm.Name) {
		return nil, fmt.Errorf("invalid name")
	}
	if cm.Shards < 1 || cm.Shards > maxShards {
		return nil, fmt.Errorf("shard count %d outside [1,%d]", cm.Shards, maxShards)
	}
	if len(cm.ShardGlobals) != cm.Shards {
		return nil, fmt.Errorf("%d id tables for %d shards", len(cm.ShardGlobals), cm.Shards)
	}
	if len(cm.ShardFiles) != cm.Shards {
		return nil, fmt.Errorf("%d shard files for %d shards", len(cm.ShardFiles), cm.Shards)
	}
	for i, f := range cm.ShardFiles {
		// Basenames only: a hand-edited manifest must not escape the
		// collection directory.
		if f == "" || f != filepath.Base(f) {
			return nil, fmt.Errorf("shard %d: invalid file name %q", i, f)
		}
	}
	build := cm.Build.options()
	defaults, err := cm.Defaults.options()
	if err != nil {
		return nil, err
	}
	cacheOpt := CacheOptions{MaxEntries: cm.Cache.MaxEntries, MaxBytes: cm.Cache.MaxBytes}
	// Same domain checks as create time, so a hand-edited manifest fails
	// at open rather than as confusing per-query errors later.
	if err := (CollectionOptions{Shards: cm.Shards, Build: build, Defaults: defaults, Cache: cacheOpt}).validate(); err != nil {
		return nil, err
	}

	c := &Collection{
		store:    s,
		name:     cm.Name,
		build:    build,
		defaults: defaults,
		shards:   make([]*shard, cm.Shards),
		cacheOpt: cacheOpt,
		cache:    newQueryCache(cacheOpt),
	}
	c.nextID.Store(int64(cm.NextID))
	errs := make([]error, cm.Shards)
	_ = s.budget.ForContext(context.Background(), cm.Shards, func(i int) {
		errs[i] = func() error {
			// Open by path, not reader: a v4 segment shard under
			// MemoryAuto/MemoryMap is mmapped in place rather than
			// streamed through the heap.
			idx, err := openShardIndex(filepath.Join(dir, cm.Name, cm.ShardFiles[i]), s.memory)
			if err != nil {
				return err
			}
			// The open hands out a full per-CPU worker bound; a shard
			// gets its per-shard share, like CreateFromIndex's shards.
			idx.workers = c.shardIdxWorkers()
			globals := cm.ShardGlobals[i]
			if len(globals) != idx.TotalGraphs() {
				return fmt.Errorf("shard %d: %d ids in manifest for %d graphs", i, len(globals), idx.TotalGraphs())
			}
			for j, g := range globals {
				if g < 0 || g >= cm.NextID {
					return fmt.Errorf("shard %d: id %d outside [0,%d)", i, g, cm.NextID)
				}
				if j > 0 && globals[j-1] >= g {
					return fmt.Errorf("shard %d: id table not strictly ascending at %d", i, j)
				}
				if placeID(g, cm.Shards) != i {
					return fmt.Errorf("shard %d: id %d places on shard %d", i, g, placeID(g, cm.Shards))
				}
			}
			c.shards[i] = newShard(&shardState{idx: idx, globals: append([]int(nil), globals...)})
			return nil
		}()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}
