package graphdim

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/topk"
	"repro/internal/vecspace"
)

func TestOptionsValidation(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 10, Seed: 1})
	cases := []struct {
		name string
		opt  Options
	}{
		{"negative dimensions", Options{Dimensions: -1}},
		{"negative tau", Options{Tau: -0.1}},
		{"tau above one", Options{Tau: 1.5}},
		{"NaN tau", Options{Tau: math.NaN()}},
		{"negative pattern edges", Options{MaxPatternEdges: -2}},
		{"negative candidates", Options{MaxCandidates: -1}},
		{"unknown metric", Options{Metric: Metric(7)}},
		{"unknown algorithm", Options{Algorithm: Algorithm(9)}},
		{"negative partition", Options{PartitionSize: -5}},
		{"negative budget", Options{MCSBudget: -1}},
		{"negative iterations", Options{Iterations: -3}},
	}
	for _, tc := range cases {
		if err := tc.opt.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.opt)
		}
		if _, err := Build(db, tc.opt); err == nil {
			t.Errorf("%s: Build accepted %+v", tc.name, tc.opt)
		}
	}
	// Zero values mean "paper default" and must validate.
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options rejected: %v", err)
	}
}

func TestSearchOptionsValidation(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	ctx := context.Background()
	cases := []struct {
		name string
		opt  SearchOptions
	}{
		{"zero k", SearchOptions{}},
		{"negative k", SearchOptions{K: -2}},
		{"unknown engine", SearchOptions{K: 3, Engine: Engine(42)}},
		{"negative factor", SearchOptions{K: 3, VerifyFactor: -1}},
		{"negative candidates", SearchOptions{K: 3, MaxCandidates: -1}},
		{"unknown metric", SearchOptions{K: 3, Metric: MetricChoice(9)}},
	}
	for _, tc := range cases {
		if err := tc.opt.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.opt)
		}
		if _, err := idx.Search(ctx, db[0], tc.opt); err == nil {
			t.Errorf("%s: Search accepted %+v", tc.name, tc.opt)
		}
	}
	if _, err := idx.Search(ctx, nil, SearchOptions{K: 3}); err == nil {
		t.Error("nil query accepted")
	}
}

func TestSearchEnginesOnSelfQuery(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	ctx := context.Background()
	for _, engine := range []Engine{EngineMapped, EngineVerified, EngineExact} {
		res, err := idx.Search(ctx, db[6], SearchOptions{K: 4, Engine: engine})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if res.Engine != engine {
			t.Errorf("%v: result reports engine %v", engine, res.Engine)
		}
		if len(res.Results) != 4 {
			t.Fatalf("%v: got %d results", engine, len(res.Results))
		}
		if res.Results[0].Distance != 0 {
			t.Errorf("%v: self query distance %v, want 0", engine, res.Results[0].Distance)
		}
		if res.Candidates <= 0 {
			t.Errorf("%v: candidates = %d", engine, res.Candidates)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: elapsed = %v", engine, res.Elapsed)
		}
	}
}

// TestVerifiedEngineAtLeastAsAccurate pins the acceptance criterion: on
// the experiments workload, EngineVerified's precision against exact
// ground truth is at least EngineMapped's for every query.
func TestVerifiedEngineAtLeastAsAccurate(t *testing.T) {
	idx, _ := buildSmall(t, DSPM)
	queries := dataset.Chemical(dataset.ChemConfig{N: 8, MinVertices: 8, MaxVertices: 14, Seed: 99})
	ctx := context.Background()
	const k = 5
	for qi, q := range queries {
		exact, err := idx.Search(ctx, q, SearchOptions{K: idx.Size(), Engine: EngineExact})
		if err != nil {
			t.Fatal(err)
		}
		truth := make(topk.Ranking, len(exact.Results))
		for i, r := range exact.Results {
			truth[i] = topk.Item{ID: r.ID, Score: r.Distance}
		}
		mapped, err := idx.Search(ctx, q, SearchOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		verified, err := idx.Search(ctx, q, SearchOptions{K: k, Engine: EngineVerified, VerifyFactor: idx.Size()})
		if err != nil {
			t.Fatal(err)
		}
		pm := topk.Precision(resultIDs(mapped.Results), truth, k)
		pv := topk.Precision(resultIDs(verified.Results), truth, k)
		if pv < pm {
			t.Errorf("query %d: verified precision %v < mapped %v", qi, pv, pm)
		}
		if pv != 1 {
			t.Errorf("query %d: fully verified precision %v, want 1", qi, pv)
		}
	}
}

func resultIDs(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func TestSearchPredicate(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	ctx := context.Background()
	even := func(id int, g *Graph) bool { return id%2 == 0 }
	res, err := idx.Search(ctx, db[0], SearchOptions{K: idx.Size(), Predicate: even})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != (idx.Size()+1)/2 {
		t.Fatalf("predicate result count %d, want %d", len(res.Results), (idx.Size()+1)/2)
	}
	for _, r := range res.Results {
		if r.ID%2 != 0 {
			t.Errorf("predicate admitted id %d", r.ID)
		}
	}
}

func TestSearchMetricOverride(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	ctx := context.Background()
	q := db[4]
	res, err := idx.Search(ctx, q, SearchOptions{K: 3, Engine: EngineExact, Metric: MetricDelta1})
	if err != nil {
		t.Fatal(err)
	}
	// Every score must be the Delta1 dissimilarity of its graph.
	for _, r := range res.Results {
		want := Delta1.DissimilarityBudget(q, idx.Graph(r.ID), idx.mcsOpt)
		if r.Distance != want {
			t.Errorf("id %d: score %v, want delta1 %v", r.ID, r.Distance, want)
		}
	}
}

func TestSearchMatchedDimensions(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	res, err := idx.Search(context.Background(), db[11], SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Matched
	if b.Len() != len(idx.Dimensions()) {
		t.Fatalf("Matched.Len = %d, want %d", b.Len(), len(idx.Dimensions()))
	}
	// Cross-check the bitset against direct containment tests.
	count := 0
	for r, f := range idx.Dimensions() {
		want := Contains(db[11], f)
		if b.Contains(r) != want {
			t.Errorf("dimension %d: Contains = %v, want %v", r, b.Contains(r), want)
		}
		if want {
			count++
		}
	}
	if b.Count() != count {
		t.Errorf("Count = %d, want %d", b.Count(), count)
	}
	if len(b.Indices()) != count {
		t.Errorf("Indices has %d entries, want %d", len(b.Indices()), count)
	}
	if b.Contains(-1) || b.Contains(b.Len()) {
		t.Error("out-of-range Contains returned true")
	}
}

func TestSearchCancellation(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []Engine{EngineMapped, EngineVerified, EngineExact} {
		if _, err := idx.Search(ctx, db[0], SearchOptions{K: 3, Engine: engine}); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: cancelled Search err = %v, want context.Canceled", engine, err)
		}
	}
}

func TestBuildCancellation(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 40, MinVertices: 8, MaxVertices: 14, Seed: 5})
	for _, algo := range []Algorithm{DSPM, DSPMap} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		_, err := BuildContext(ctx, db, Options{Dimensions: 20, Tau: 0.1, Algorithm: algo})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("algo %v: cancelled Build err = %v, want context.Canceled", algo, err)
		}
		// "Promptly": a pre-cancelled build must not pay for the offline
		// pipeline (which takes seconds at this size).
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("algo %v: cancelled Build took %v", algo, elapsed)
		}
	}
}

func TestBuildProgress(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 25, MinVertices: 8, MaxVertices: 12, Seed: 7})
	var mu sync.Mutex
	type event struct {
		stage       BuildStage
		done, total int
	}
	var events []event
	_, err := Build(db, Options{
		Dimensions: 10,
		Tau:        0.2,
		MCSBudget:  1500,
		Progress: func(stage BuildStage, done, total int) {
			mu.Lock()
			events = append(events, event{stage, done, total})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	// Stages must appear in pipeline order and each stage must end with
	// done == total.
	last := make(map[BuildStage]event)
	prevStage := BuildStage(-1)
	for _, e := range events {
		if e.stage < prevStage {
			t.Fatalf("stage %v reported after %v", e.stage, prevStage)
		}
		prevStage = e.stage
		last[e.stage] = e
	}
	for _, stage := range []BuildStage{StageMining, StageMatrix, StageDSPM, StageVectors} {
		e, ok := last[stage]
		if !ok {
			t.Errorf("stage %v never reported", stage)
			continue
		}
		if e.done != e.total {
			t.Errorf("stage %v ended at %d/%d", stage, e.done, e.total)
		}
	}
	if e := last[StageMatrix]; e.total != len(db) {
		t.Errorf("matrix total = %d, want %d rows", e.total, len(db))
	}
}

// TestSearchBatchPropagatesError pins the fixed TopKBatch error path: a
// per-query failure surfaces as the batch error instead of a silent nil
// row. Cancellation mid-batch is the per-query failure mode.
func TestSearchBatchPropagatesError(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	// The predicate runs inside each query's scan; cancelling from it
	// guarantees at least one query observes ctx.Done mid-flight.
	trip := func(id int, g *Graph) bool {
		once.Do(cancel)
		return true
	}
	queries := db[:8]
	res, err := idx.SearchBatch(ctx, queries, SearchOptions{K: 3, Predicate: trip})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got partial results alongside error")
	}
}

func TestSearchBatchMatchesSearch(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	ctx := context.Background()
	queries := db[:6]
	batch, err := idx.SearchBatch(ctx, queries, SearchOptions{K: 4, Engine: EngineVerified})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single, err := idx.Search(ctx, q, SearchOptions{K: 4, Engine: EngineVerified})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].Results, single.Results) {
			t.Errorf("query %d: batch and single answers differ", i)
		}
	}
	if _, err := idx.SearchBatch(ctx, []*Graph{db[0], nil}, SearchOptions{K: 3}); err == nil {
		t.Error("nil query in batch accepted")
	}
	empty, err := idx.SearchBatch(ctx, nil, SearchOptions{K: 3})
	if err != nil || len(empty) != 0 {
		t.Errorf("SearchBatch(nil) = %v, %v; want empty, nil", empty, err)
	}
}

// TestDeprecatedWrappersDelegate keeps the v1 surface working on top of
// Search.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	idx, db := buildSmall(t, DSPM)
	ctx := context.Background()

	v1, err := idx.TopK(db[3], 4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := idx.Search(ctx, db[3], SearchOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v2.Results) {
		t.Errorf("TopK diverged from Search: %v vs %v", v1, v2.Results)
	}

	e1, err := idx.TopKExact(db[3], 3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := idx.Search(ctx, db[3], SearchOptions{K: 3, Engine: EngineExact})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1, e2.Results) {
		t.Errorf("TopKExact diverged from Search: %v vs %v", e1, e2.Results)
	}
}

func TestEngineParseAndString(t *testing.T) {
	for _, e := range []Engine{EngineMapped, EngineVerified, EngineExact} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("ParseEngine accepted garbage")
	}
}

// TestEngineStringUnknown pins the fallback formatting of out-of-domain
// engines — they must still print something greppable and never parse.
func TestEngineStringUnknown(t *testing.T) {
	if got := Engine(42).String(); got != "engine(42)" {
		t.Errorf("Engine(42).String() = %q, want \"engine(42)\"", got)
	}
	if _, err := ParseEngine(Engine(42).String()); err == nil {
		t.Error("ParseEngine accepted the unknown-engine placeholder")
	}
	if _, err := ParseEngine(""); err == nil {
		t.Error("ParseEngine accepted the empty string")
	}
}

func dimensionBitsFrom(p int, set ...int) DimensionBits {
	v := vecspace.NewBitVector(p)
	for _, r := range set {
		v.Set(r)
	}
	return dimensionBits(v)
}

func TestDimensionBitsEmpty(t *testing.T) {
	for _, p := range []int{0, 1, 64, 65, 130} {
		b := dimensionBitsFrom(p)
		if b.Len() != p {
			t.Errorf("p=%d: Len() = %d", p, b.Len())
		}
		if b.Count() != 0 {
			t.Errorf("p=%d: Count() = %d, want 0", p, b.Count())
		}
		if got := b.Indices(); len(got) != 0 {
			t.Errorf("p=%d: Indices() = %v, want empty", p, got)
		}
		for _, r := range []int{-1, 0, p - 1, p, p + 64} {
			if b.Contains(r) {
				t.Errorf("p=%d: empty set Contains(%d)", p, r)
			}
		}
	}
}

func TestDimensionBitsFull(t *testing.T) {
	for _, p := range []int{1, 63, 64, 65, 130} {
		all := make([]int, p)
		for i := range all {
			all[i] = i
		}
		b := dimensionBitsFrom(p, all...)
		if b.Count() != p {
			t.Errorf("p=%d: Count() = %d, want %d", p, b.Count(), p)
		}
		got := b.Indices()
		if len(got) != p {
			t.Fatalf("p=%d: Indices() has %d entries, want %d", p, len(got), p)
		}
		for i, r := range got {
			if r != i {
				t.Fatalf("p=%d: Indices()[%d] = %d, want %d", p, i, r, i)
			}
		}
		for i := 0; i < p; i++ {
			if !b.Contains(i) {
				t.Errorf("p=%d: full set missing %d", p, i)
			}
		}
		// Out-of-range stays false even on the full set.
		if b.Contains(-1) || b.Contains(p) {
			t.Errorf("p=%d: Contains out of range returned true", p)
		}
	}
}

func TestDimensionBitsSparse(t *testing.T) {
	b := dimensionBitsFrom(130, 0, 63, 64, 129)
	if b.Count() != 4 {
		t.Errorf("Count() = %d, want 4", b.Count())
	}
	want := []int{0, 63, 64, 129}
	if got := b.Indices(); !reflect.DeepEqual(got, want) {
		t.Errorf("Indices() = %v, want %v", got, want)
	}
	for _, r := range want {
		if !b.Contains(r) {
			t.Errorf("Contains(%d) = false", r)
		}
	}
	for _, r := range []int{1, 62, 65, 128} {
		if b.Contains(r) {
			t.Errorf("Contains(%d) = true", r)
		}
	}
}
