package graphdim

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

// queryTestCollection builds a small deterministic collection for
// Query behavior tests (stats, stage errors, caching).
func queryTestCollection(t *testing.T, shards int, cache CacheOptions) (*Collection, *Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	idx, _ := equivBuild(t, rng, 60)
	s := NewStore(StoreOptions{})
	t.Cleanup(func() { s.Close() })
	c, err := s.CreateFromIndex("q", idx, CollectionOptions{Shards: shards, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return c, idx
}

func TestQueryScanStats(t *testing.T) {
	c, idx := queryTestCollection(t, 2, CacheOptions{})
	ctx := context.Background()

	// A pushable label filter plus a residual count range: the stats
	// must report the split, and the count must match a brute force.
	lab := int(idx.Graph(0).VertexLabel(0))
	f := &pipeline.Filter{
		VertexLabels: []pipeline.LabelCount{{Label: lab}},
		MinVertices:  2,
	}
	res, err := c.Query(ctx, &pipeline.Pipeline{Stages: []pipeline.Stage{
		{Filter: f}, {Count: &pipeline.Count{}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for id := 0; id < idx.TotalGraphs(); id++ {
		g := idx.Graph(id)
		if idx.IsRemoved(id) || g.N() < 2 {
			continue
		}
		vh, _ := g.LabelHistogram()
		if vh[Label(lab)] >= 1 {
			want++
		}
	}
	if res.Count == nil || *res.Count != want {
		t.Fatalf("count %v, want %d", res.Count, want)
	}
	if res.Stats.Matched != want {
		t.Fatalf("stats.matched %d, want %d", res.Stats.Matched, want)
	}
	if res.Stats.PushedPredicates != 1 || res.Stats.FallbackPredicates != 1 {
		t.Fatalf("pushdown split %d/%d, want 1/1", res.Stats.PushedPredicates, res.Stats.FallbackPredicates)
	}
	if res.Stats.Candidates < want || res.Stats.Candidates > int64(idx.TotalGraphs()) {
		t.Fatalf("candidates %d outside [%d, %d]", res.Stats.Candidates, want, idx.TotalGraphs())
	}
	if len(res.Stats.Stages) != 2 || res.Stats.Stages[0].Stage != "scan" || res.Stats.Stages[1].Stage != "aggregate" {
		t.Fatalf("stage timings %+v, want scan+aggregate", res.Stats.Stages)
	}

	// An unrestricted scan reports candidates = -1 (no pushdown).
	res, err = c.Query(ctx, &pipeline.Pipeline{Stages: []pipeline.Stage{
		{Filter: &pipeline.Filter{MinVertices: 1}}, {Count: &pipeline.Count{}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates != -1 {
		t.Fatalf("unrestricted scan candidates %d, want -1", res.Stats.Candidates)
	}
}

func TestQueryStageErrors(t *testing.T) {
	c, idx := queryTestCollection(t, 1, CacheOptions{})
	ctx := context.Background()
	p := len(idx.Dimensions())

	cases := []struct {
		name      string
		pipeline  *pipeline.Pipeline
		wantIndex int
		wantName  string
		wantMsg   string
	}{
		{
			"dims out of range",
			&pipeline.Pipeline{Stages: []pipeline.Stage{
				{Filter: &pipeline.Filter{MinVertices: 1}},
				{Filter: &pipeline.Filter{DimsAll: []int{p}}},
				{Count: &pipeline.Count{}},
			}},
			1, "filter", "out of range",
		},
		{
			"bad query spec",
			&pipeline.Pipeline{Stages: []pipeline.Stage{
				{Filter: &pipeline.Filter{}},
				{Search: &pipeline.Search{Query: &pipeline.GraphSpec{Labels: []int{1}, Edges: [][3]int{{0, 5, 0}}}, K: 3}},
			}},
			1, "search", "out of range",
		},
		{
			"topk without search",
			&pipeline.Pipeline{Stages: []pipeline.Stage{
				{Filter: &pipeline.Filter{}},
				{TopK: &pipeline.TopK{K: 2}},
			}},
			1, "topk", "needs a preceding search",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Query(ctx, tc.pipeline)
			if err == nil {
				t.Fatal("bad pipeline accepted")
			}
			var se *pipeline.StageError
			if !errors.As(err, &se) {
				t.Fatalf("want StageError, got %T: %v", err, err)
			}
			if se.Index != tc.wantIndex || se.Name != tc.wantName || !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("StageError{%d, %q, %v}, want index %d name %q msg ~%q",
					se.Index, se.Name, se.Err, tc.wantIndex, tc.wantName, tc.wantMsg)
			}
		})
	}
}

// TestQueryFilteredSearchCached is the cacheability satellite:
// declarative filters serialize into the generation-fenced cache key,
// so repeated filtered queries hit; opaque Predicate closures still
// bypass; and distinct filters never collide.
func TestQueryFilteredSearchCached(t *testing.T) {
	c, idx := queryTestCollection(t, 1, CacheOptions{MaxEntries: 32})
	ctx := context.Background()
	q := idx.Graph(3)
	lab := int(q.VertexLabel(0))

	run := func(f *pipeline.Filter) *pipeline.Result {
		t.Helper()
		stages := []pipeline.Stage{{Search: &pipeline.Search{G: q, K: 5}}}
		if f != nil {
			stages = append([]pipeline.Stage{{Filter: f}}, stages...)
		}
		res, err := c.Query(ctx, &pipeline.Pipeline{Stages: stages})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fa := &pipeline.Filter{VertexLabels: []pipeline.LabelCount{{Label: lab}}}
	fb := &pipeline.Filter{VertexLabels: []pipeline.LabelCount{{Label: lab, MinCount: 2}}}
	first := run(fa)
	st, ok := c.CacheStats()
	if !ok || st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("first filtered query should miss: %+v", st)
	}
	second := run(fa)
	st, _ = c.CacheStats()
	if st.Hits != 1 {
		t.Fatalf("repeat of the same filtered query should hit: %+v", st)
	}
	if len(first.Rows) != len(second.Rows) {
		t.Fatalf("cache changed the answer: %d vs %d rows", len(first.Rows), len(second.Rows))
	}
	for i := range first.Rows {
		if first.Rows[i].ID != second.Rows[i].ID || *first.Rows[i].Distance != *second.Rows[i].Distance {
			t.Fatalf("cache changed row %d: %+v vs %+v", i, first.Rows[i], second.Rows[i])
		}
	}

	// A different filter must not collide with fa's entry.
	bRes := run(fb)
	st, _ = c.CacheStats()
	if st.Hits != 1 {
		t.Fatalf("distinct filter hit a stale entry: %+v", st)
	}
	if len(bRes.Rows) > len(first.Rows) {
		t.Fatalf("stricter filter returned more rows (%d > %d)", len(bRes.Rows), len(first.Rows))
	}

	// Opaque Predicate closures keep bypassing the cache entirely.
	for i := 0; i < 2; i++ {
		if _, err := c.Search(ctx, q, SearchOptions{K: 5, Predicate: func(int, *Graph) bool { return true }}); err != nil {
			t.Fatal(err)
		}
	}
	st2, _ := c.CacheStats()
	if st2.Hits != st.Hits || st2.Misses != st.Misses {
		t.Fatalf("Predicate search touched the cache: %+v vs %+v", st2, st)
	}

	// Mutating the collection fences the old entries out.
	if _, err := c.Add(ctx, idx.Graph(1)); err != nil {
		t.Fatal(err)
	}
	run(fa)
	st3, _ := c.CacheStats()
	if st3.Hits != st.Hits {
		t.Fatalf("filtered query hit across a generation change: %+v", st3)
	}
}

// TestQueryScanRows pins the bare-scan contract: rows stream out in id
// order, bounded by DefaultScanLimit, with no distances.
func TestQueryScanRows(t *testing.T) {
	c, idx := queryTestCollection(t, 3, CacheOptions{})
	ctx := context.Background()
	res, err := c.Query(ctx, &pipeline.Pipeline{Stages: []pipeline.Stage{
		{Filter: &pipeline.Filter{MinVertices: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != idx.Size() {
		t.Fatalf("%d rows, want every live graph (%d)", len(res.Rows), idx.Size())
	}
	for i, r := range res.Rows {
		if r.Distance != nil {
			t.Fatalf("scan row %d carries a distance", i)
		}
		if i > 0 && res.Rows[i-1].ID >= r.ID {
			t.Fatalf("rows out of id order at %d: %d then %d", i, res.Rows[i-1].ID, r.ID)
		}
	}
}
