package graphdim

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
)

// storeTestDB is a small synthetic database that mines reliably even when
// split across shards.
func storeTestDB(t *testing.T, n int, seed int64) []*Graph {
	t.Helper()
	return dataset.Synthetic(dataset.SynthConfig{N: n, AvgEdges: 12, Labels: 6, Seed: seed})
}

func storeTestOptions() Options {
	return Options{Dimensions: 16, Tau: 0.2, MCSBudget: 1500}
}

// newTestStore returns a store without a background compactor; tests drive
// compaction explicitly.
func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(StoreOptions{})
	t.Cleanup(s.Close)
	return s
}

func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Distance != want[i].Distance {
			t.Fatalf("%s: result %d = (id %d, %v), want (id %d, %v)",
				label, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Distance)
		}
	}
}

// TestStoreShardedEquivalence is the acceptance criterion: for random
// queries and ks, a collection with >= 2 shards returns exactly the ranked
// id/score list of a single unsharded Index over the same graphs — for the
// mapped and exact engines, and for the verified engine once its candidate
// pool covers the database (smaller pools verify per shard, a superset of
// the unsharded candidates, so only that degenerate case is id-for-id
// comparable).
func TestStoreShardedEquivalence(t *testing.T) {
	db := storeTestDB(t, 36, 11)
	opt := storeTestOptions()
	flat, err := Build(db, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := newTestStore(t)
	ctx := context.Background()

	rng := rand.New(rand.NewSource(99))
	queries := append([]*Graph{}, db[3], db[17], db[35])
	queries = append(queries, storeTestDB(t, 4, 77)...) // unseen graphs
	for _, shards := range []int{2, 3, 5} {
		coll, err := s.Create(ctx, nameForShards(shards), db, CollectionOptions{Shards: shards, Build: opt})
		if err != nil {
			t.Fatalf("Create(%d shards): %v", shards, err)
		}
		for qi, q := range queries {
			k := 1 + rng.Intn(len(db)+5) // occasionally above the db size
			for _, sopt := range []SearchOptions{
				{K: k},
				{K: k, Engine: EngineExact},
				{K: k, Engine: EngineVerified, VerifyFactor: len(db)},
				{K: k, Metric: MetricDelta1, Engine: EngineExact},
				{K: k, Predicate: func(id int, g *Graph) bool { return id%2 == 0 }},
			} {
				want, err := flat.Search(ctx, q, sopt)
				if err != nil {
					t.Fatalf("flat Search: %v", err)
				}
				got, err := coll.Search(ctx, q, sopt)
				if err != nil {
					t.Fatalf("sharded Search: %v", err)
				}
				label := coll.Name() + "/" + got.Engine.String()
				sameResults(t, label, got.Results, want.Results)
				// Candidates counts the ids the engine actually scored.
				// For the mapped engine that depends on per-shard pruning
				// decisions (each shard's posting plan sees a different
				// slice), so only a sanity bound is portable; the MCS
				// engines score a pruning-independent candidate set and
				// stay exactly comparable.
				if got.Engine == EngineMapped {
					if got.Candidates < len(got.Results) {
						t.Errorf("%s query %d: candidates = %d < %d results", label, qi, got.Candidates, len(got.Results))
					}
				} else if got.Candidates != want.Candidates {
					t.Errorf("%s query %d: candidates = %d, want %d", label, qi, got.Candidates, want.Candidates)
				}
				if got.Matched.Count() != want.Matched.Count() {
					t.Errorf("%s query %d: matched = %d, want %d", label, qi, got.Matched.Count(), want.Matched.Count())
				}
			}
		}
	}
}

func nameForShards(n int) string {
	return "eq-" + string(rune('a'+n))
}

// TestStoreEquivalenceAfterUpdates extends the equivalence through Add and
// Remove applied identically to both sides.
func TestStoreEquivalenceAfterUpdates(t *testing.T) {
	db := storeTestDB(t, 30, 5)
	opt := storeTestOptions()
	flat, err := Build(db, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := newTestStore(t)
	ctx := context.Background()
	coll, err := s.Create(ctx, "upd", db, CollectionOptions{Shards: 3, Build: opt})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	extra := storeTestDB(t, 8, 123)
	flatIDs, err := flat.Add(extra...)
	if err != nil {
		t.Fatalf("flat Add: %v", err)
	}
	collIDs, err := coll.Add(ctx, extra...)
	if err != nil {
		t.Fatalf("collection Add: %v", err)
	}
	for i := range flatIDs {
		if flatIDs[i] != collIDs[i] {
			t.Fatalf("Add ids diverge at %d: flat %d, collection %d", i, flatIDs[i], collIDs[i])
		}
	}
	removed := []int{2, 9, collIDs[1], collIDs[5]}
	if err := flat.Remove(removed...); err != nil {
		t.Fatalf("flat Remove: %v", err)
	}
	if err := coll.Remove(removed...); err != nil {
		t.Fatalf("collection Remove: %v", err)
	}

	queries := []*Graph{db[0], extra[2], extra[5]}
	for _, q := range queries {
		for _, sopt := range []SearchOptions{{K: 10}, {K: 50, Engine: EngineExact}} {
			want, err := flat.Search(ctx, q, sopt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coll.Search(ctx, q, sopt)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "after updates", got.Results, want.Results)
		}
		// Removed ids never come back.
		res, err := coll.Search(ctx, q, SearchOptions{K: coll.Size() + 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Results {
			for _, dead := range removed {
				if r.ID == dead {
					t.Fatalf("removed id %d returned by Search", dead)
				}
			}
		}
	}

	// Graph resolves live and tombstoned ids, and rejects unknown ones.
	if g, ok := coll.Graph(removed[0]); !ok || g == nil {
		t.Fatalf("Graph(%d) (tombstoned) not addressable", removed[0])
	}
	if _, ok := coll.Graph(coll.Stats().NextID + 3); ok {
		t.Fatal("Graph beyond the id space resolved")
	}
	if _, ok := coll.Graph(-1); ok {
		t.Fatal("Graph(-1) resolved")
	}
}

// TestStoreCompaction drives a shard over the stale threshold, compacts,
// and checks ids, search behaviour, and the stats counters.
func TestStoreCompaction(t *testing.T) {
	db := storeTestDB(t, 16, 21)
	s := newTestStore(t)
	ctx := context.Background()
	coll, err := s.Create(ctx, "c", db, CollectionOptions{Shards: 2, Build: storeTestOptions()})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Triple the database so every shard's stale ratio passes 0.3.
	extra := storeTestDB(t, 32, 500)
	ids, err := coll.Add(ctx, extra...)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	for i, r := range coll.StaleRatios() {
		if r < 0.3 {
			t.Fatalf("shard %d stale ratio %v, want >= 0.3 for this test setup", i, r)
		}
	}

	compacted, err := coll.Compact(ctx, false)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if compacted != coll.Shards() {
		t.Fatalf("compacted %d shards, want %d", compacted, coll.Shards())
	}
	for i, r := range coll.StaleRatios() {
		if r != 0 {
			t.Fatalf("shard %d stale ratio %v after compaction, want 0", i, r)
		}
	}
	st := coll.Stats()
	for i, sh := range st.Shards {
		if sh.Compactions != 1 {
			t.Fatalf("shard %d compactions = %d, want 1", i, sh.Compactions)
		}
		if sh.LastCompactionError != "" {
			t.Fatalf("shard %d compaction error: %s", i, sh.LastCompactionError)
		}
	}

	// Ids survive compaction: every added graph still self-matches at
	// distance 0 under the mapped engine (a graph's vector equals its own
	// query vector in whatever dimension set its shard now uses).
	for i, q := range extra {
		res, err := coll.Search(ctx, q, SearchOptions{K: coll.Size()})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range res.Results {
			if r.ID == ids[i] {
				found = true
				if r.Distance != 0 {
					t.Fatalf("self query %d: distance %v at own id, want 0", i, r.Distance)
				}
			}
		}
		if !found {
			t.Fatalf("id %d missing after compaction", ids[i])
		}
	}

	// A second Compact without force is a no-op at zero staleness.
	if n, err := coll.Compact(ctx, false); err != nil || n != 0 {
		t.Fatalf("idle Compact = (%d, %v), want (0, nil)", n, err)
	}
}

// TestStoreCompactionConcurrentSearch is the acceptance race test: a
// compaction triggered mid-search must complete without failing concurrent
// Search or Add calls. Run with -race.
func TestStoreCompactionConcurrentSearch(t *testing.T) {
	db := storeTestDB(t, 24, 42)
	s := newTestStore(t)
	ctx := context.Background()
	coll, err := s.Create(ctx, "race", db, CollectionOptions{Shards: 2, Build: storeTestOptions()})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := db[w*3]
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := coll.Search(ctx, q, SearchOptions{K: 5}); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := int64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := coll.Add(ctx, storeTestDB(t, 4, seed)...); err != nil {
				errc <- err
				return
			}
			seed++
			time.Sleep(time.Millisecond)
		}
	}()

	for round := 0; round < 3; round++ {
		if _, err := coll.Compact(ctx, true); err != nil {
			t.Errorf("Compact round %d: %v", round, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent operation failed during compaction: %v", err)
	}

	// Post-race invariant: every live id resolves and self-searches.
	stats := coll.Stats()
	if stats.Live < len(db) {
		t.Fatalf("live %d < initial %d", stats.Live, len(db))
	}
}

// TestStoreBackgroundCompaction exercises the policy loop end to end.
func TestStoreBackgroundCompaction(t *testing.T) {
	db := storeTestDB(t, 16, 9)
	compacted := make(chan string, 16)
	s := NewStore(StoreOptions{
		Compaction: CompactionPolicy{StaleThreshold: 0.3, Interval: 20 * time.Millisecond},
		OnCompaction: func(coll string, shard int, err error) {
			if err == nil {
				select {
				case compacted <- coll:
				default:
				}
			}
		},
	})
	defer s.Close()
	ctx := context.Background()
	coll, err := s.Create(ctx, "bg", db, CollectionOptions{Shards: 2, Build: storeTestOptions()})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := coll.Add(ctx, storeTestDB(t, 32, 800)...); err != nil {
		t.Fatalf("Add: %v", err)
	}
	select {
	case name := <-compacted:
		if name != "bg" {
			t.Fatalf("compacted collection %q, want bg", name)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("background compactor never ran")
	}
	s.Close()
	s.Close() // idempotent
}

// TestStorePersistence round-trips a multi-collection store through
// Save/OpenStore and checks the loaded store answers identically.
func TestStorePersistence(t *testing.T) {
	db := storeTestDB(t, 24, 33)
	opt := storeTestOptions()
	s := newTestStore(t)
	ctx := context.Background()
	c1, err := s.Create(ctx, "alpha", db, CollectionOptions{Shards: 3, Build: opt, Defaults: SearchOptions{K: 7, Engine: EngineVerified, VerifyFactor: 2}})
	if err != nil {
		t.Fatalf("Create alpha: %v", err)
	}
	if _, err := s.Create(ctx, "beta", db[:12], CollectionOptions{Build: opt}); err != nil {
		t.Fatalf("Create beta: %v", err)
	}
	// Leave alpha with adds and tombstones so base/stale state persists.
	ids, err := c1.Add(ctx, storeTestDB(t, 5, 321)...)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := c1.Remove(1, ids[2]); err != nil {
		t.Fatalf("Remove: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "store")
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer loaded.Close()

	if got, want := loaded.Collections(), []string{"alpha", "beta"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Collections() = %v, want %v", got, want)
	}
	l1, ok := loaded.Collection("alpha")
	if !ok {
		t.Fatal("alpha missing after load")
	}
	if l1.Shards() != 3 || l1.Size() != c1.Size() {
		t.Fatalf("loaded alpha: %d shards size %d, want 3 shards size %d", l1.Shards(), l1.Size(), c1.Size())
	}
	for _, q := range []*Graph{db[2], db[19]} {
		want, err := c1.Search(ctx, q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := l1.Search(ctx, q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// The zero options exercise the persisted defaults overlay too.
		if got.Engine != EngineVerified || len(got.Results) != len(want.Results) {
			t.Fatalf("loaded search: engine %v, %d results; want %v, %d", got.Engine, len(got.Results), want.Engine, len(want.Results))
		}
		sameResults(t, "persisted", got.Results, want.Results)
	}
	// The stale state survived: adding the same ratio of graphs keeps
	// working and ids continue from the persisted next_id.
	newIDs, err := l1.Add(ctx, storeTestDB(t, 2, 999)...)
	if err != nil {
		t.Fatal(err)
	}
	if newIDs[0] != c1.Stats().NextID {
		t.Fatalf("loaded store assigned id %d, want %d", newIDs[0], c1.Stats().NextID)
	}
}

func TestOpenStoreRejectsCorruptManifests(t *testing.T) {
	db := storeTestDB(t, 12, 3)
	s := newTestStore(t)
	coll, err := s.Create(context.Background(), "c", db, CollectionOptions{Shards: 2, Build: storeTestOptions()})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	_ = coll
	dir := filepath.Join(t.TempDir(), "store")
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	manifest := filepath.Join(dir, manifestName)
	good, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string]string{
		"bad placement": strings.Replace(string(good), placementSplitMix64, "modulo", 1),
		"bad version":   strings.Replace(string(good), `"version": 1`, `"version": 99`, 1),
		"not json":      "{",
	} {
		if err := os.WriteFile(manifest, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenStore(dir, StoreOptions{}); err == nil {
			t.Errorf("%s: OpenStore succeeded on a corrupt manifest", name)
		}
	}
	// Missing shard file.
	if err := os.WriteFile(manifest, good, 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "c", "shard-0001-*.gdx"))
	if err != nil || len(files) != 1 {
		t.Fatalf("shard file glob = %v, %v", files, err)
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); err == nil {
		t.Error("OpenStore succeeded with a missing shard file")
	}
}

// TestStoreResaveNeverCorruptsPreviousGeneration pins Save's durability
// contract: a re-save writes fresh files and swaps the manifest, so even
// interleaved saves leave a loadable store, and orphans are swept.
func TestStoreResaveNeverCorruptsPreviousGeneration(t *testing.T) {
	db := storeTestDB(t, 12, 4)
	s := newTestStore(t)
	ctx := context.Background()
	coll, err := s.Create(ctx, "c", db, CollectionOptions{Shards: 2, Build: storeTestOptions()})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := coll.Add(ctx, storeTestDB(t, 3, 40)...); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	// The superseded generation's files are swept; one file per shard
	// remains and the store loads with the new contents.
	files, err := filepath.Glob(filepath.Join(dir, "c", "shard-*.gdx"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("found %d shard files after re-save, want 2: %v", len(files), files)
	}
	loaded, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore after re-save: %v", err)
	}
	defer loaded.Close()
	lc, _ := loaded.Collection("c")
	if lc.Size() != coll.Size() {
		t.Fatalf("loaded size %d, want %d", lc.Size(), coll.Size())
	}
}

func TestStoreCollectionLifecycle(t *testing.T) {
	db := storeTestDB(t, 12, 8)
	s := newTestStore(t)
	ctx := context.Background()
	opt := CollectionOptions{Build: storeTestOptions()}
	if _, err := s.Create(ctx, "a", db, opt); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.Create(ctx, "a", db, opt); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	for _, bad := range []string{"", "/etc/passwd", "a/b", ".hidden", "café", strings.Repeat("x", 200)} {
		if _, err := s.Create(ctx, bad, db, opt); err == nil {
			t.Errorf("Create(%q) accepted an invalid name", bad)
		}
	}
	if _, err := s.Create(ctx, "b", db, CollectionOptions{Shards: -1, Build: storeTestOptions()}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := s.Create(ctx, "b", db, CollectionOptions{Shards: maxShards + 1, Build: storeTestOptions()}); err == nil {
		t.Fatal("huge shard count accepted")
	}
	if err := s.Drop("missing"); err == nil {
		t.Fatal("Drop of a missing collection succeeded")
	}
	if err := s.Drop("a"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if _, ok := s.Collection("a"); ok {
		t.Fatal("collection still reachable after Drop")
	}
}

// TestCollectionDefaultsOverlay pins the zero-field overlay semantics.
func TestCollectionDefaultsOverlay(t *testing.T) {
	db := storeTestDB(t, 14, 15)
	s := newTestStore(t)
	ctx := context.Background()
	coll, err := s.Create(ctx, "d", db, CollectionOptions{
		Shards: 2,
		Build:  storeTestOptions(),
		Defaults: SearchOptions{
			K:      4,
			Engine: EngineVerified, VerifyFactor: 2,
			Predicate: func(id int, g *Graph) bool { return id != 0 },
		},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	res, err := coll.Search(ctx, db[0], SearchOptions{})
	if err != nil {
		t.Fatalf("Search with zero options: %v", err)
	}
	if res.Engine != EngineVerified || len(res.Results) != 4 {
		t.Fatalf("defaults not applied: engine %v, %d results", res.Engine, len(res.Results))
	}
	for _, r := range res.Results {
		if r.ID == 0 {
			t.Fatal("default predicate not applied")
		}
	}
	// Explicit fields win over the defaults.
	res, err = coll.Search(ctx, db[0], SearchOptions{K: 2, Engine: EngineExact, Predicate: func(int, *Graph) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineExact || len(res.Results) != 2 || res.Results[0].ID != 0 {
		t.Fatalf("explicit options overridden: %+v", res)
	}
	// No default K and no explicit K must fail validation.
	plain, err := s.Create(ctx, "plain", db, CollectionOptions{Build: storeTestOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Search(ctx, db[0], SearchOptions{}); err == nil {
		t.Fatal("Search without K succeeded")
	}
}

func TestPlaceIDIsBalancedAndStable(t *testing.T) {
	const n, shards = 10000, 8
	counts := make([]int, shards)
	for id := 0; id < n; id++ {
		p := placeID(id, shards)
		if p != placeID(id, shards) {
			t.Fatal("placement not deterministic")
		}
		counts[p]++
	}
	for i, c := range counts {
		if c < n/shards/2 || c > n/shards*2 {
			t.Fatalf("shard %d holds %d of %d ids — placement badly skewed: %v", i, c, n, counts)
		}
	}
}

// TestCreateFromIndexInheritsStaleness pins that splitting a drifted index
// carries its staleness into the shards, so the compaction policy still
// sees pre-existing drift after a gserve restart.
func TestCreateFromIndexInheritsStaleness(t *testing.T) {
	db := storeTestDB(t, 20, 6)
	idx, err := Build(db, storeTestOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := idx.Add(storeTestDB(t, 20, 61)...); err != nil {
		t.Fatal(err)
	}
	want := idx.StaleRatio()
	if want < 0.4 {
		t.Fatalf("setup: source stale ratio %v, want >= 0.4", want)
	}
	s := newTestStore(t)
	coll, err := s.CreateFromIndex("drifted", idx, CollectionOptions{Shards: 3, Build: storeTestOptions()})
	if err != nil {
		t.Fatalf("CreateFromIndex: %v", err)
	}
	for i, r := range coll.StaleRatios() {
		// Per-shard ratios vary with placement, but a drifted source must
		// not split into fresh-looking shards.
		if r < 0.2 {
			t.Errorf("shard %d stale ratio %v — source drift (%v) was discarded", i, r, want)
		}
	}
}

// TestSearchNoDefaultsBypassesOverlay pins the explicit-zero escape hatch:
// NoDefaults lets a caller request EngineMapped on a collection whose
// default engine is verified.
func TestSearchNoDefaultsBypassesOverlay(t *testing.T) {
	db := storeTestDB(t, 14, 2)
	s := newTestStore(t)
	ctx := context.Background()
	coll, err := s.Create(ctx, "nd", db, CollectionOptions{
		Build:    storeTestOptions(),
		Defaults: SearchOptions{K: 4, Engine: EngineVerified},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	res, err := coll.Search(ctx, db[0], SearchOptions{K: 2, NoDefaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineMapped || len(res.Results) != 2 {
		t.Fatalf("NoDefaults search: engine %v with %d results, want mapped with 2", res.Engine, len(res.Results))
	}
}

// TestSaveSweepsDroppedCollections pins that re-saving after Drop removes
// the dropped collection's files and directory.
func TestSaveSweepsDroppedCollections(t *testing.T) {
	db := storeTestDB(t, 12, 7)
	s := newTestStore(t)
	ctx := context.Background()
	if _, err := s.Create(ctx, "keep", db, CollectionOptions{Build: storeTestOptions()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(ctx, "gone", db, CollectionOptions{Build: storeTestOptions()}); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone")); !os.IsNotExist(err) {
		t.Fatalf("dropped collection directory still on disk (stat err: %v)", err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); err != nil {
		t.Fatalf("OpenStore after drop+save: %v", err)
	}
}
