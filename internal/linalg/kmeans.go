package linalg

import (
	"math"
	"math/rand"
)

// KMeans clusters the rows of x into k clusters using Lloyd's algorithm
// with k-means++ seeding. It returns the cluster assignment per row and
// the final centroids. rng drives seeding so callers stay deterministic.
func KMeans(x *Matrix, k, maxIter int, rng *rand.Rand) (assign []int, centroids *Matrix) {
	n, d := x.Rows, x.Cols
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	centroids = NewMatrix(k, d)

	// k-means++ seeding.
	first := rng.Intn(n)
	copy(centroids.Row(0), x.Row(first))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(x.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, dd := range dist {
			total += dd
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, dd := range dist {
				acc += dd
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), x.Row(pick))
		for i := range dist {
			if dd := sqDist(x.Row(i), centroids.Row(c)); dd < dist[i] {
				dist[i] = dd
			}
		}
	}

	assign = make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if dd := sqDist(x.Row(i), centroids.Row(c)); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		for i := range centroids.Data {
			centroids.Data[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			cr := centroids.Row(c)
			for j, v := range x.Row(i) {
				cr[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster on a random point.
				copy(centroids.Row(c), x.Row(rng.Intn(n)))
				continue
			}
			cr := centroids.Row(c)
			inv := 1 / float64(counts[c])
			for j := range cr {
				cr[j] *= inv
			}
		}
	}
	return assign, centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
