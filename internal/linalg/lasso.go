package linalg

import "math"

// Lasso solves min_w  (1/2n)||y - Xw||^2 + lambda*||w||_1 by cyclic
// coordinate descent, the regression step MCFS runs per spectral
// eigenvector to score features. It returns the coefficient vector.
func Lasso(x *Matrix, y []float64, lambda float64, maxIter int, tol float64) []float64 {
	n, p := x.Rows, x.Cols
	w := make([]float64, p)
	if n == 0 || p == 0 {
		return w
	}
	// Precompute column norms (1/n * sum x_ij^2).
	colNorm := make([]float64, p)
	for j := 0; j < p; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			v := x.At(i, j)
			s += v * v
		}
		colNorm[j] = s / float64(n)
	}
	// Residual r = y - Xw (w starts at 0).
	r := append([]float64(nil), y...)

	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < p; j++ {
			if colNorm[j] == 0 {
				continue
			}
			// rho = (1/n) x_j . (r + x_j w_j)
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += x.At(i, j) * r[i]
			}
			rho = rho/float64(n) + colNorm[j]*w[j]
			// Soft threshold.
			var wj float64
			switch {
			case rho > lambda:
				wj = (rho - lambda) / colNorm[j]
			case rho < -lambda:
				wj = (rho + lambda) / colNorm[j]
			default:
				wj = 0
			}
			if d := wj - w[j]; d != 0 {
				for i := 0; i < n; i++ {
					r[i] -= d * x.At(i, j)
				}
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
				w[j] = wj
			}
		}
		if maxDelta < tol {
			break
		}
	}
	return w
}
