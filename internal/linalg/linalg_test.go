package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Errorf("At wrong")
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Errorf("Set wrong")
	}
	tt := m.T()
	if tt.At(0, 1) != 7 || tt.At(1, 0) != 2 {
		t.Errorf("transpose wrong")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Col wrong: %v", c)
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Errorf("Clone shares storage")
	}
}

func TestMulAgainstHand(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := a.Mul(b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	v := a.MulVec([]float64{1, 0, -1})
	if v[0] != -2 || v[1] != -2 {
		t.Errorf("MulVec = %v, want [-2 -2]", v)
	}
}

func TestIdentityAndDiag(t *testing.T) {
	m := Identity(3)
	if m.At(0, 0) != 1 || m.At(0, 1) != 0 {
		t.Errorf("Identity wrong")
	}
	m.AddDiag(2).Scale(0.5)
	if m.At(1, 1) != 1.5 {
		t.Errorf("AddDiag/Scale wrong: %v", m.At(1, 1))
	}
}

func TestSolveSPD(t *testing.T) {
	// A = M^T M + I is SPD for any M.
	r := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(8)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rr.NormFloat64()
		}
		a := m.T().Mul(m).AddDiag(1)
		x := make([]float64, n)
		for i := range x {
			x[i] = rr.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	_ = r
	// Non-PD input must error.
	bad := FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := SolveSPD(bad, []float64{1, 1}); err == nil {
		t.Errorf("singular matrix must error")
	}
}

func TestEigSymKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatalf("EigSym: %v", err)
	}
	if math.Abs(vals[0]-1) > 1e-9 || math.Abs(vals[1]-3) > 1e-9 {
		t.Fatalf("eigenvalues = %v, want [1 3]", vals)
	}
	// Check A v = λ v.
	for k := 0; k < 2; k++ {
		av := a.MulVec(vecs[k])
		for i := range av {
			if math.Abs(av[i]-vals[k]*vecs[k][i]) > 1e-8 {
				t.Fatalf("eigenpair %d fails A v = λ v", k)
			}
		}
	}
}

func TestEigSymRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigSym(a)
		if err != nil {
			return false
		}
		// Sorted ascending.
		for k := 1; k < n; k++ {
			if vals[k] < vals[k-1]-1e-9 {
				return false
			}
		}
		// Each pair satisfies A v = λ v; vectors unit length.
		for k := 0; k < n; k++ {
			av := a.MulVec(vecs[k])
			for i := range av {
				if math.Abs(av[i]-vals[k]*vecs[k][i]) > 1e-6 {
					return false
				}
			}
			if math.Abs(Norm2(vecs[k])-1) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEigSymRejectsNonSymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigSym(a); err == nil {
		t.Errorf("non-symmetric input must error")
	}
	b := FromRows([][]float64{{1, 2, 3}})
	if _, _, err := EigSym(b); err == nil {
		t.Errorf("non-square input must error")
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two well-separated blobs.
	n := 40
	x := NewMatrix(n, 2)
	for i := 0; i < n/2; i++ {
		x.Set(i, 0, rng.NormFloat64()*0.1)
		x.Set(i, 1, rng.NormFloat64()*0.1)
	}
	for i := n / 2; i < n; i++ {
		x.Set(i, 0, 10+rng.NormFloat64()*0.1)
		x.Set(i, 1, 10+rng.NormFloat64()*0.1)
	}
	assign, centroids := KMeans(x, 2, 50, rng)
	if centroids.Rows != 2 {
		t.Fatalf("centroid count wrong")
	}
	// All first-half points share a cluster, all second-half the other.
	for i := 1; i < n/2; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("first blob split across clusters")
		}
	}
	for i := n/2 + 1; i < n; i++ {
		if assign[i] != assign[n/2] {
			t.Fatalf("second blob split across clusters")
		}
	}
	if assign[0] == assign[n/2] {
		t.Fatalf("blobs merged into one cluster")
	}
}

func TestKMeansDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := NewMatrix(3, 1) // all-zero identical points
	assign, _ := KMeans(x, 5, 10, rng)
	if len(assign) != 3 {
		t.Fatalf("assignment length wrong")
	}
}

func TestLassoRecoversSparseSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, p := 60, 10
	x := NewMatrix(n, p)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	// y depends only on features 2 and 5.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = 3*x.At(i, 2) - 2*x.At(i, 5)
	}
	w := Lasso(x, y, 0.05, 500, 1e-8)
	if math.Abs(w[2]-3) > 0.3 || math.Abs(w[5]+2) > 0.3 {
		t.Errorf("lasso missed true coefficients: %v", w)
	}
	for j := range w {
		if j != 2 && j != 5 && math.Abs(w[j]) > 0.2 {
			t.Errorf("lasso gave spurious weight to feature %d: %v", j, w[j])
		}
	}
}

func TestLassoStrongPenaltyZeroes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, p := 30, 5
	x := NewMatrix(n, p)
	y := make([]float64, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = x.At(i, 0)
	}
	w := Lasso(x, y, 1e6, 100, 1e-8)
	for j := range w {
		if w[j] != 0 {
			t.Errorf("huge lambda should zero all weights, got %v", w)
		}
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Errorf("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Errorf("Norm2 wrong")
	}
}
