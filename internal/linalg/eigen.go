package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigSym computes all eigenvalues and eigenvectors of the symmetric matrix
// a using the cyclic Jacobi rotation method. Results are sorted by
// ascending eigenvalue; vectors[i] is the eigenvector for values[i]
// (unit length). a is not modified.
//
// Jacobi is O(n^3) per sweep and robust; the baseline algorithms only need
// eigen-decompositions of n×n graph Laplacians with n ≤ a few thousand.
func EigSym(a *Matrix) (values []float64, vectors [][]float64, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: EigSym needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-9*(1+math.Abs(a.At(i, j))) {
				return nil, nil, fmt.Errorf("linalg: EigSym input not symmetric at (%d,%d)", i, j)
			}
		}
	}
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of w.
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate rotations into v.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	values = make([]float64, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] < values[idx[j]] })
	sortedVals := make([]float64, n)
	vectors = make([][]float64, n)
	for rank, i := range idx {
		sortedVals[rank] = values[i]
		vec := make([]float64, n)
		for k := 0; k < n; k++ {
			vec[k] = v.At(k, i)
		}
		vectors[rank] = vec
	}
	return sortedVals, vectors, nil
}
