package linalg

import (
	"fmt"
	"math"
)

// Cholesky is the factorization A = L·Lᵀ of a symmetric positive-definite
// matrix, reusable across multiple right-hand sides (NDFS solves the same
// system for every cluster column).
type Cholesky struct {
	l *Matrix
}

// Factor computes the Cholesky decomposition of a, returning an error if
// a is not numerically positive definite. a is not modified.
func Factor(a *Matrix) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Factor needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A x = b.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch: %d vs %d", len(b), n)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}
