// Package linalg provides the small dense linear-algebra kernel required
// by the unsupervised feature-selection baselines reimplemented in this
// repository (MCFS, UDFS, NDFS, MICI): dense matrices, a Jacobi
// eigensolver for symmetric matrices, k-means clustering, and lasso
// regression via coordinate descent. Everything is stdlib-only.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m×b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mr := m.Row(i)
		or := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mr[k]
			if a == 0 {
				continue
			}
			br := b.Row(k)
			for j := range br {
				or[j] += a * br[j]
			}
		}
	}
	return out
}

// MulVec returns m×v as a new slice.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		s := 0.0
		for j, x := range r {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// AddDiag adds v to each diagonal element in place and returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dot returns the dot product of equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// SolveSPD solves A x = b for symmetric positive-definite A by Cholesky
// decomposition. A is not modified. It returns an error if A is not
// (numerically) positive definite.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveSPD dimension mismatch")
	}
	// Cholesky: A = L L^T.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
