package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestFactorSolveMatchesSolveSPD(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 20; iter++ {
		n := 2 + r.Intn(10)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		a := m.T().Mul(m).AddDiag(1)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		chol, err := Factor(a)
		if err != nil {
			t.Fatalf("Factor: %v", err)
		}
		x1, err := chol.Solve(b)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		x2, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("SolveSPD: %v", err)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-9 {
				t.Fatalf("Cholesky solve diverges from SolveSPD at %d", i)
			}
		}
	}
}

func TestFactorErrors(t *testing.T) {
	if _, err := Factor(FromRows([][]float64{{0, 0}, {0, 0}})); err == nil {
		t.Errorf("singular matrix must fail")
	}
	if _, err := Factor(FromRows([][]float64{{1, 2, 3}})); err == nil {
		t.Errorf("non-square must fail")
	}
	c, err := Factor(Identity(3))
	if err != nil {
		t.Fatalf("Factor identity: %v", err)
	}
	if _, err := c.Solve([]float64{1}); err == nil {
		t.Errorf("wrong rhs length must fail")
	}
}
