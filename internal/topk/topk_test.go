package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/mcs"
	"repro/internal/vecspace"
)

func TestExactSelfQueryFirst(t *testing.T) {
	// Molecule-sized graphs with few distinct labels need a search budget:
	// the identity mapping is found greedily in the first descent, so the
	// self-distance is exact even under a tight budget.
	db := dataset.Chemical(dataset.ChemConfig{N: 8, MinVertices: 6, MaxVertices: 10, Seed: 1})
	r := Exact(db, db[3], mcs.Delta2, mcs.Options{MaxNodes: 20000})
	if r[0].ID != 3 || r[0].Score != 0 {
		t.Fatalf("self query should rank itself first with score 0, got id %d score %v", r[0].ID, r[0].Score)
	}
	if len(r) != 8 {
		t.Fatalf("ranking length %d, want 8", len(r))
	}
}

func TestRankingDeterministicTieBreak(t *testing.T) {
	items := Ranking{{2, 0.5}, {0, 0.5}, {1, 0.1}}
	sortItems(items)
	if items[0].ID != 1 || items[1].ID != 0 || items[2].ID != 2 {
		t.Fatalf("tie break wrong: %v", items)
	}
}

func TestTopKAndRankOf(t *testing.T) {
	r := Ranking{{5, 0.1}, {2, 0.2}, {9, 0.3}}
	top := r.TopK(2)
	if len(top) != 2 || top[0] != 5 || top[1] != 2 {
		t.Fatalf("TopK wrong: %v", top)
	}
	if r.RankOf(9) != 3 || r.RankOf(42) != 4 {
		t.Errorf("RankOf wrong")
	}
	if len(r.TopK(10)) != 3 {
		t.Errorf("TopK should clamp")
	}
}

func TestMappedRanking(t *testing.T) {
	vs := []*vecspace.BitVector{
		vecspace.NewBitVector(4),
		vecspace.NewBitVector(4),
		vecspace.NewBitVector(4),
	}
	vs[1].Set(0)
	vs[2].Set(0)
	vs[2].Set(1)
	q := vecspace.NewBitVector(4)
	q.Set(0)
	r := Mapped(vs, q)
	if r[0].ID != 1 {
		t.Fatalf("nearest should be exact match, got %d", r[0].ID)
	}
}

func TestTanimotoRanking(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 10, Seed: 2})
	fps := fingerprint.ComputeAll(db)
	r := Tanimoto(fps, fps[4], fingerprint.Tanimoto)
	if r[0].ID != 4 {
		t.Fatalf("self fingerprint should rank first, got %d", r[0].ID)
	}
}

func TestPrecision(t *testing.T) {
	exact := Ranking{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}
	if got := Precision([]int{0, 1, 2}, exact, 3); got != 1 {
		t.Errorf("perfect precision = %v, want 1", got)
	}
	// T = top-3 of exact = {0,1,2}; only 0 hits.
	if got := Precision([]int{0, 4, 9}, exact, 3); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("precision = %v, want 1/3", got)
	}
	if got := Precision([]int{9, 8, 7}, exact, 3); got != 0 {
		t.Errorf("precision = %v, want 0", got)
	}
	if Precision(nil, exact, 0) != 0 {
		t.Errorf("k=0 precision must be 0")
	}
}

func TestKendallTauPerfectAndReversed(t *testing.T) {
	n := 10
	exact := make(Ranking, n)
	for i := range exact {
		exact[i] = Item{ID: i, Score: float64(i)}
	}
	k := 4
	perfect := KendallTau([]int{0, 1, 2, 3}, exact, k)
	reversed := KendallTau([]int{3, 2, 1, 0}, exact, k)
	if perfect <= reversed {
		t.Errorf("perfect tau %v should exceed reversed %v", perfect, reversed)
	}
	if reversed != 0 {
		t.Errorf("fully reversed list has no concordant pairs, got %v", reversed)
	}
	// Perfect = k(k-1)/2 concordant pairs over k(2n-k-1).
	want := float64(k*(k-1)/2) / float64(k*(2*n-k-1))
	if math.Abs(perfect-want) > 1e-12 {
		t.Errorf("perfect tau = %v, want %v", perfect, want)
	}
}

func TestInverseRankDistance(t *testing.T) {
	n := 6
	exact := make(Ranking, n)
	for i := range exact {
		exact[i] = Item{ID: i, Score: float64(i)}
	}
	if got := InverseRankDistance([]int{0, 1, 2}, exact, 3); got != 3 {
		t.Errorf("perfect inverse rank distance = %v, want k=3", got)
	}
	// A = [1,0,2]: footrule = |1-2| + |2-1| + |3-3| = 2; inverse = 3/2.
	if got := InverseRankDistance([]int{1, 0, 2}, exact, 3); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("inverse rank distance = %v, want 1.5", got)
	}
}

func TestMeasuresImproveWithBetterRankings(t *testing.T) {
	// Randomized sanity: a ranking closer to exact scores at least as well
	// on all three measures than a random permutation, in expectation.
	r := rand.New(rand.NewSource(3))
	n, k := 50, 10
	exact := make(Ranking, n)
	for i := range exact {
		exact[i] = Item{ID: i, Score: float64(i)}
	}
	good := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	better := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		perm := r.Perm(n)[:k]
		pg := Precision(good, exact, k)
		pr := Precision(perm, exact, k)
		if pg >= pr {
			better++
		}
	}
	if better < trials*8/10 {
		t.Errorf("good ranking beat random only %d/%d times", better, trials)
	}
}

func TestExactBudgetedStillRanksSelfFirst(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 6, Seed: 4})
	r := Exact(db, db[2], mcs.Delta1, mcs.Options{MaxNodes: 100})
	if r[0].ID != 2 {
		t.Fatalf("budgeted self query should still rank itself first (budget search maps identity fast)")
	}
}
