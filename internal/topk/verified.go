package topk

import (
	"context"

	"repro/internal/graph"
	"repro/internal/mcs"
	"repro/internal/vecspace"
)

// Verified answers a top-k query with a filter-and-verify hybrid: retrieve
// factor·k candidates by mapped-space distance, then re-rank just those
// candidates with the exact (budgeted) MCS dissimilarity. The paper's
// DS-preserved mapping is designed to make verification unnecessary; this
// engine exposes the accuracy/latency dial between the pure mapped scan
// and full exact search, and is used by the extension experiment in
// EXPERIMENTS.md.
func Verified(db []*graph.Graph, dbVectors []*vecspace.BitVector, q *graph.Graph, qv *vecspace.BitVector,
	k, factor int, metric mcs.Metric, opt mcs.Options) Ranking {
	r, _, _ := VerifiedContext(context.Background(), SliceGraphs(db), dbVectors, nil, q, qv, k, factor, 0, metric, opt, nil, nil, nil)
	return r
}

// GraphAt resolves a database id to its graph payload. The mapped-
// segment store decodes the payload from the segment on demand — the
// verified and exact engines fault in only the graphs they actually
// verify, which for the verified engine is its final candidate set, not
// the corpus.
type GraphAt func(id int) (*graph.Graph, error)

// SliceGraphs adapts an in-heap graph slice to a GraphAt.
func SliceGraphs(db []*graph.Graph) GraphAt {
	return func(id int) (*graph.Graph, error) { return db[id], nil }
}

// VerifiedContext is Verified with cancellation, an optional liveness
// filter, an optional cap on the number of candidates verified
// (maxCandidates <= 0 means uncapped), and optional posting-list
// pruning of the retrieval stage (pruned == nil means the flat scan;
// pruned.K is overwritten with the candidate count this call needs, so
// callers leave it zero). blk, when it matches dbVectors, lets the
// retrieval stage run the batched SoA kernel; s, when non-nil, is the
// retrieval stage's scratch arena (both may be nil — see
// MappedTopKContext). The candidate count factor·k is computed in
// 64-bit arithmetic and clamped to the admitted database size, so a
// factor "overflowing" the database — or int range — degrades to
// verifying every admitted graph rather than panicking. ctx is checked
// before each MCS verification. The second return value is the number
// of candidates verified with an MCS search.
func VerifiedContext(ctx context.Context, graphAt GraphAt, dbVectors []*vecspace.BitVector,
	blk *vecspace.Block, q *graph.Graph, qv *vecspace.BitVector, k, factor, maxCandidates int,
	metric mcs.Metric, opt mcs.Options, alive Alive, pruned *Candidates, s *Scratch) (Ranking, int, error) {
	if k <= 0 {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		return Ranking{}, 0, nil
	}
	if factor < 1 {
		factor = 1
	}
	want := int64(k) * int64(factor)
	if want/int64(k) != int64(factor) {
		// int64 overflow: both operands are huge; every candidate wins.
		want = int64(len(dbVectors))
	}
	if maxCandidates > 0 && want > int64(maxCandidates) {
		want = int64(maxCandidates)
	}
	if want > int64(len(dbVectors)) {
		want = int64(len(dbVectors))
	}
	if pruned != nil {
		// The retrieval stage needs exactly the top `want` mapped-space
		// candidates; the pruned scan returns precisely that prefix (or
		// every admitted id, if fewer), identical to the flat ranking.
		pruned.K = int(want)
	}
	retrieved, _, err := MappedTopKContext(ctx, dbVectors, blk, qv, alive, int(want), pruned, s)
	if err != nil {
		return nil, 0, err
	}
	if want > int64(len(retrieved)) {
		want = int64(len(retrieved))
	}
	items := make([]Item, want)
	for i := range items {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		id := retrieved[i].ID
		g, err := graphAt(id)
		if err != nil {
			return nil, 0, err
		}
		items[i] = Item{ID: id, Score: metric.DissimilarityBudget(q, g, opt)}
	}
	sortItems(items)
	if len(items) > k {
		items = items[:k]
	}
	return items, int(want), nil
}

// Similarity ranks the database by any symmetric similarity function
// (larger = more similar) — the adapter used for graph-kernel and
// GED-prototype engines. Scores are stored negated so Ranking stays
// ascending-is-better.
func Similarity(n int, sim func(i int) float64) Ranking {
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{ID: i, Score: -sim(i)}
	}
	sortItems(items)
	return items
}
