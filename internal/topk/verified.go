package topk

import (
	"repro/internal/graph"
	"repro/internal/mcs"
	"repro/internal/vecspace"
)

// Verified answers a top-k query with a filter-and-verify hybrid: retrieve
// factor·k candidates by mapped-space distance, then re-rank just those
// candidates with the exact (budgeted) MCS dissimilarity. The paper's
// DS-preserved mapping is designed to make verification unnecessary; this
// engine exposes the accuracy/latency dial between the pure mapped scan
// and full exact search, and is used by the extension experiment in
// EXPERIMENTS.md.
func Verified(db []*graph.Graph, dbVectors []*vecspace.BitVector, q *graph.Graph, qv *vecspace.BitVector,
	k, factor int, metric mcs.Metric, opt mcs.Options) Ranking {
	if factor < 1 {
		factor = 1
	}
	cands := Mapped(dbVectors, qv).TopK(k * factor)
	items := make([]Item, len(cands))
	for i, id := range cands {
		items[i] = Item{ID: id, Score: metric.DissimilarityBudget(q, db[id], opt)}
	}
	sortItems(items)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// Similarity ranks the database by any symmetric similarity function
// (larger = more similar) — the adapter used for graph-kernel and
// GED-prototype engines. Scores are stored negated so Ranking stays
// ascending-is-better.
func Similarity(n int, sim func(i int) float64) Ranking {
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = Item{ID: i, Score: -sim(i)}
	}
	sortItems(items)
	return items
}
