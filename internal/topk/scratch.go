package topk

import "sync"

// Scratch is a per-query scratch arena for the batched scan kernel: the
// distance buffer the SoA kernel streams into, the bounded top-k heap,
// the matched-candidate staging area of the pruned path, and the result
// staging the caller copies out of. Reusing one Scratch across queries
// makes a warm cache-miss fan-out perform O(1) allocations per query —
// the buffers grow to the high-water mark of the collection and stay.
//
// A Scratch serves one query at a time. Rankings returned by
// MappedTopKContext alias s.out and stay valid only until the next use
// or Release; callers copy what they keep.
type Scratch struct {
	dists  []int32  // per-id Hamming counts (kernel scans)
	keys   []uint64 // bounded max-heap of packed (hamming, id) keys
	items  []Item   // matched-candidate staging (pruned path)
	out    Ranking  // result staging returned to the caller
	ids    []int32  // alive matched-candidate ids (pruned path)
	gather []uint64 // gather tile for Block.HammingGather
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// NewScratch takes a Scratch from the shared pool.
func NewScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns s to the pool. Rankings previously returned from
// calls using s must not be read afterwards.
func (s *Scratch) Release() { scratchPool.Put(s) }

// distBuf returns the distance buffer sized for n ids.
func (s *Scratch) distBuf(n int) []int32 {
	if cap(s.dists) < n {
		s.dists = make([]int32, n)
	}
	return s.dists[:n]
}

// The bounded top-k selection works on packed uint64 keys,
//
//	key = hamming<<32 | id
//
// so one integer comparison orders by (hamming, id) — for a fixed
// dimension p exactly the flat scan's (score, id) order, because
// score = sqrt(hamming/p) is strictly increasing in hamming for every p
// the codec admits (the score gap between adjacent hamming counts
// dwarfs float64 rounding), and equal hamming means equal score. Both
// halves fit: hamming <= p < 2^31 and ids are int32 everywhere the
// posting layer touches them.

// pushK keeps keys the k smallest keys seen, as a max-heap (root =
// current worst). The steady-state path — heap full, candidate worse
// than the root — is a single comparison.
func pushK(keys []uint64, k int, key uint64) []uint64 {
	if len(keys) < k {
		keys = append(keys, key)
		// Sift up.
		i := len(keys) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if keys[parent] >= keys[i] {
				break
			}
			keys[parent], keys[i] = keys[i], keys[parent]
			i = parent
		}
		return keys
	}
	if key >= keys[0] {
		return keys
	}
	keys[0] = key
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(keys) && keys[l] > keys[largest] {
			largest = l
		}
		if r < len(keys) && keys[r] > keys[largest] {
			largest = r
		}
		if largest == i {
			return keys
		}
		keys[i], keys[largest] = keys[largest], keys[i]
		i = largest
	}
}
