package topk

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mcs"
	"repro/internal/vecspace"
)

func TestVerifiedAtLeastAsGoodAsMapped(t *testing.T) {
	// With factor >= n/k the verified engine degenerates to exact search,
	// so its precision is 1; with factor 1 it equals the mapped engine.
	db := dataset.Chemical(dataset.ChemConfig{N: 15, MinVertices: 6, MaxVertices: 10, Seed: 3})
	q := db[4]
	metric := mcs.Delta2
	opt := mcs.Options{MaxNodes: 5000}
	exact := Exact(db, q, metric, opt)

	// Degenerate vectors (all identical) make the mapped engine
	// uninformative; verification must still recover the exact top-k.
	vecs := make([]*vecspace.BitVector, len(db))
	for i := range vecs {
		vecs[i] = vecspace.NewBitVector(4)
	}
	qv := vecspace.NewBitVector(4)

	const k = 3
	full := Verified(db, vecs, q, qv, k, len(db), metric, opt)
	if got := Precision(full.TopK(k), exact, k); got != 1 {
		t.Errorf("fully verified precision = %v, want 1", got)
	}
	if len(full) != k {
		t.Errorf("verified returned %d items, want %d", len(full), k)
	}

	one := Verified(db, vecs, q, qv, k, 1, metric, opt)
	if len(one) != k {
		t.Errorf("factor-1 verified returned %d items", len(one))
	}
	// factor < 1 clamps to 1 rather than panicking.
	clamped := Verified(db, vecs, q, qv, k, 0, metric, opt)
	if len(clamped) != k {
		t.Errorf("factor-0 verified returned %d items", len(clamped))
	}
}

// degenerateVectors returns n identical vectors plus a matching query
// vector: the mapped retrieval stage becomes uninformative, so every
// candidate-set decision is down to the clamping logic under test.
func degenerateVectors(n int) ([]*vecspace.BitVector, *vecspace.BitVector) {
	vecs := make([]*vecspace.BitVector, n)
	for i := range vecs {
		vecs[i] = vecspace.NewBitVector(4)
	}
	return vecs, vecspace.NewBitVector(4)
}

func TestVerifiedFactorOverflowsDatabase(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 10, MinVertices: 5, MaxVertices: 8, Seed: 9})
	vecs, qv := degenerateVectors(len(db))
	q := db[2]
	metric := mcs.Delta2
	opt := mcs.Options{MaxNodes: 5000}
	exact := Exact(db, q, metric, opt)

	const k = 3
	// factor·k far beyond n, including values whose product overflows
	// int64: all must degrade to verifying the whole database (== exact).
	for _, factor := range []int{len(db), 1 << 30, math.MaxInt} {
		got := Verified(db, vecs, q, qv, k, factor, metric, opt)
		if len(got) != k {
			t.Fatalf("factor=%d: got %d items, want %d", factor, len(got), k)
		}
		if !reflect.DeepEqual(got.TopK(k), exact.TopK(k)) {
			t.Errorf("factor=%d: top-%d = %v, want exact %v", factor, k, got.TopK(k), exact.TopK(k))
		}
	}
}

func TestVerifiedKLargerThanDatabase(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 6, MinVertices: 5, MaxVertices: 8, Seed: 10})
	vecs, qv := degenerateVectors(len(db))
	q := db[0]
	metric := mcs.Delta2
	opt := mcs.Options{MaxNodes: 5000}

	got := Verified(db, vecs, q, qv, len(db)*4, 2, metric, opt)
	if len(got) != len(db) {
		t.Fatalf("k > n returned %d items, want the whole database (%d)", len(got), len(db))
	}
	exact := Exact(db, q, metric, opt)
	if !reflect.DeepEqual([]Item(got), []Item(exact)) {
		t.Errorf("k > n ranking diverged from exact:\ngot  %v\nwant %v", got, exact)
	}
}

func TestVerifiedBudgetExhaustedMCS(t *testing.T) {
	// A 1-node MCS budget exhausts immediately: every verification returns
	// an upper-bound dissimilarity. The engine must still return k items
	// with finite scores in [0,1], ranked deterministically.
	db := dataset.Chemical(dataset.ChemConfig{N: 12, MinVertices: 6, MaxVertices: 10, Seed: 11})
	vecs, qv := degenerateVectors(len(db))
	q := db[5]
	metric := mcs.Delta2
	starved := mcs.Options{MaxNodes: 1}

	const k = 4
	got := Verified(db, vecs, q, qv, k, 2, metric, starved)
	if len(got) != k {
		t.Fatalf("got %d items, want %d", len(got), k)
	}
	for _, it := range got {
		if it.Score < 0 || it.Score > 1 || math.IsNaN(it.Score) {
			t.Errorf("budget-starved score out of range: %+v", it)
		}
	}
	again := Verified(db, vecs, q, qv, k, 2, metric, starved)
	if !reflect.DeepEqual(got, again) {
		t.Errorf("budget-starved verification is nondeterministic")
	}
}

func TestVerifiedContextMaxCandidatesAndAlive(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 12, MinVertices: 6, MaxVertices: 10, Seed: 12})
	vecs, qv := degenerateVectors(len(db))
	q := db[3]
	metric := mcs.Delta2
	opt := mcs.Options{MaxNodes: 5000}

	// maxCandidates caps the verified set below factor·k: with the
	// degenerate vectors retrieval is id-ordered, so capping at 2 must
	// verify exactly ids {0,1}.
	got, verified, err := VerifiedContext(context.Background(), SliceGraphs(db), vecs, nil, q, qv, 3, 4, 2, metric, opt, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("maxCandidates=2 returned %d items", len(got))
	}
	if verified != 2 {
		t.Fatalf("verified count = %d, want 2", verified)
	}
	for _, it := range got {
		if it.ID != 0 && it.ID != 1 {
			t.Errorf("maxCandidates=2 verified unexpected id %d", it.ID)
		}
	}

	// alive filters ids out of retrieval entirely.
	alive := func(id int) bool { return id%2 == 0 }
	got, _, err = VerifiedContext(context.Background(), SliceGraphs(db), vecs, nil, q, qv, len(db), 1, 0, metric, opt, alive, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range got {
		if it.ID%2 != 0 {
			t.Errorf("alive-filtered result contains dead id %d", it.ID)
		}
	}
	if len(got) != len(db)/2 {
		t.Errorf("alive-filtered result has %d items, want %d", len(got), len(db)/2)
	}

	// A cancelled context aborts with its error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := VerifiedContext(ctx, SliceGraphs(db), vecs, nil, q, qv, 3, 2, 0, metric, opt, nil, nil, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled VerifiedContext err = %v, want context.Canceled", err)
	}
}

func TestSimilarityRanking(t *testing.T) {
	r := Similarity(4, func(i int) float64 { return float64(i) })
	// Highest similarity (i=3) first.
	if r[0].ID != 3 || r[3].ID != 0 {
		t.Errorf("similarity ranking wrong: %v", r)
	}
}
