package topk

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mcs"
	"repro/internal/vecspace"
)

func TestVerifiedAtLeastAsGoodAsMapped(t *testing.T) {
	// With factor >= n/k the verified engine degenerates to exact search,
	// so its precision is 1; with factor 1 it equals the mapped engine.
	db := dataset.Chemical(dataset.ChemConfig{N: 15, MinVertices: 6, MaxVertices: 10, Seed: 3})
	q := db[4]
	metric := mcs.Delta2
	opt := mcs.Options{MaxNodes: 5000}
	exact := Exact(db, q, metric, opt)

	// Degenerate vectors (all identical) make the mapped engine
	// uninformative; verification must still recover the exact top-k.
	vecs := make([]*vecspace.BitVector, len(db))
	for i := range vecs {
		vecs[i] = vecspace.NewBitVector(4)
	}
	qv := vecspace.NewBitVector(4)

	const k = 3
	full := Verified(db, vecs, q, qv, k, len(db), metric, opt)
	if got := Precision(full.TopK(k), exact, k); got != 1 {
		t.Errorf("fully verified precision = %v, want 1", got)
	}
	if len(full) != k {
		t.Errorf("verified returned %d items, want %d", len(full), k)
	}

	one := Verified(db, vecs, q, qv, k, 1, metric, opt)
	if len(one) != k {
		t.Errorf("factor-1 verified returned %d items", len(one))
	}
	// factor < 1 clamps to 1 rather than panicking.
	clamped := Verified(db, vecs, q, qv, k, 0, metric, opt)
	if len(clamped) != k {
		t.Errorf("factor-0 verified returned %d items", len(clamped))
	}
}

func TestSimilarityRanking(t *testing.T) {
	r := Similarity(4, func(i int) float64 { return float64(i) })
	// Highest similarity (i=3) first.
	if r[0].ID != 3 || r[3].ID != 0 {
		t.Errorf("similarity ranking wrong: %v", r)
	}
}
