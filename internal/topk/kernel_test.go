package topk

import (
	"context"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mcs"
	"repro/internal/posting"
	"repro/internal/vecspace"
)

// The randomized kernel-equivalence property suite: the batched SoA
// scan (MappedTopKContext, both tile widths, ragged tails, tombstones,
// Alive filters, pruned plans) must be bit-identical — distances
// included — to the scalar reference path (MappedContext /
// HammingDistance / Distance). Every run draws a fresh seed and logs
// it; replay with
//
//	GRAPHDIM_EQUIV_SEED=<seed> go test -run TestKernel ./internal/topk
func kernelSeed(t *testing.T) int64 {
	if v := os.Getenv("GRAPHDIM_EQUIV_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("GRAPHDIM_EQUIV_SEED=%q: %v", v, err)
		}
		t.Logf("replaying GRAPHDIM_EQUIV_SEED=%d", seed)
		return seed
	}
	seed := time.Now().UnixNano()
	t.Logf("random run; replay with GRAPHDIM_EQUIV_SEED=%d", seed)
	return seed
}

func kernelRandVecs(rng *rand.Rand, n, p int) []*vecspace.BitVector {
	vs := make([]*vecspace.BitVector, n)
	for i := range vs {
		v := vecspace.NewBitVector(p)
		for r := 0; r < p; r++ {
			if rng.Intn(4) == 0 {
				v.Set(r)
			}
		}
		vs[i] = v
	}
	return vs
}

// randAlive returns a random liveness predicate: nil (admit all) a
// third of the time, otherwise a random tombstone set — sometimes
// killing everything.
func randAlive(rng *rand.Rand, n int) Alive {
	switch rng.Intn(3) {
	case 0:
		return nil
	case 1:
		dead := make([]bool, n)
		for i := range dead {
			dead[i] = rng.Intn(4) == 0
		}
		return func(id int) bool { return !dead[id] }
	default:
		return func(id int) bool { return false }
	}
}

func assertRankingPrefix(t *testing.T, label string, got, ref Ranking, k int) {
	t.Helper()
	if k > len(ref) {
		k = len(ref)
	}
	if len(got) != k {
		t.Fatalf("%s: got %d results, want %d", label, len(got), k)
	}
	for i := range got {
		if got[i].ID != ref[i].ID || got[i].Score != ref[i].Score {
			t.Fatalf("%s: result %d = {%d, %v}, want {%d, %v} (bit-identical)",
				label, i, got[i].ID, got[i].Score, ref[i].ID, ref[i].Score)
		}
	}
}

// TestKernelDistanceEquivalence: batched SoA Hamming counts equal the
// scalar per-vector counts across random shapes, both widths.
func TestKernelDistanceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(kernelSeed(t)))
	for round := 0; round < 60; round++ {
		n, p := rng.Intn(140), rng.Intn(200)
		width := 8 << (rng.Intn(2)) // 8 or 16
		vecs := kernelRandVecs(rng, n, p)
		q := kernelRandVecs(rng, 1, p)[0]
		blk := vecspace.PackWidth(vecs, p, width)
		out := make([]int32, n)
		blk.HammingInto(q, out)
		for id, v := range vecs {
			if want := int32(q.HammingDistance(v)); out[id] != want {
				t.Fatalf("round %d (n=%d p=%d w=%d): hamming[%d] = %d, want %d",
					round, n, p, width, id, out[id], want)
			}
		}
	}
}

// TestKernelTopKEquivalence: the batched top-k scan — flat and pruned,
// with fresh, Append-extended, stale, and missing blocks, tombstones,
// Alive filters, and a shared Scratch reused across every round — must
// return exactly the first k entries of the scalar full ranking.
func TestKernelTopKEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(kernelSeed(t)))
	ctx := context.Background()
	s := NewScratch() // shared across rounds: reuse must not leak state
	defer s.Release()
	for round := 0; round < 80; round++ {
		n, p := rng.Intn(160), 1+rng.Intn(190)
		if rng.Intn(10) == 0 {
			p = 0
		}
		vecs := kernelRandVecs(rng, n, p)
		q := kernelRandVecs(rng, 1, p)[0]
		alive := randAlive(rng, n)
		k := rng.Intn(n + 3)
		label := "round " + strconv.Itoa(round) +
			" n=" + strconv.Itoa(n) + " p=" + strconv.Itoa(p) + " k=" + strconv.Itoa(k)

		// The scalar reference: full ranking, no block, no scratch.
		ref, refScored, err := MappedContext(ctx, vecs, q, alive, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Block variants: nil (scalar fallback), fresh pack at either
		// width, a COW Append chain, and a stale block the scan must
		// refuse.
		blocks := map[string]*vecspace.Block{
			"nil":     nil,
			"w8":      vecspace.PackWidth(vecs, p, 8),
			"w16":     vecspace.PackWidth(vecs, p, 16),
			"chained": vecspace.Pack(vecs[:n/2], p).Append(vecs[n/2:]),
		}
		if n > 0 {
			blocks["stale"] = vecspace.Pack(vecs[:n-1], p)
		}
		for name, blk := range blocks {
			scratch := s
			if rng.Intn(4) == 0 {
				scratch = nil // the nil-scratch path must behave identically
			}
			got, scored, err := MappedTopKContext(ctx, vecs, blk, q, alive, k, nil, scratch)
			if err != nil {
				t.Fatalf("%s blk=%s: %v", label, name, err)
			}
			// Zone maps let a block scan skip whole zones the heap bound
			// already rules out, so scored may come in under the scalar
			// reference — never over, and never under what was returned.
			if k > 0 && (scored > refScored || scored < len(got)) {
				t.Fatalf("%s blk=%s: scored %d outside [%d, %d]", label, name, scored, len(got), refScored)
			}
			assertRankingPrefix(t, label+" flat blk="+name, got, ref, k)
			if scratch == s {
				// The ranking aliases the scratch; copy before the next use.
				got = append(Ranking(nil), got...)
				assertRankingPrefix(t, label+" flat copy blk="+name, got, ref, k)
			}
		}

		// Pruned plan from the real posting index, when its cost model
		// produces one (sparse queries, small k).
		if k > 0 && p > 0 {
			if pl := posting.FromVectors(vecs, p).Plan(q, k); pl != nil {
				cands := &Candidates{K: k, QueryOnes: pl.QueryOnes, Matched: pl.Matched, Rest: pl.Rest}
				got, _, err := MappedTopKContext(ctx, vecs, vecspace.PackWidth(vecs, p, 16), q, alive, k, cands, s)
				if err != nil {
					t.Fatal(err)
				}
				assertRankingPrefix(t, label+" pruned", got, ref, k)
			}
		}
	}
}

// TestKernelVerifiedBlockEquivalence: VerifiedContext must return the
// identical ranking with and without the SoA block and scratch — the
// retrieval stage is the only part the kernel touches.
func TestKernelVerifiedBlockEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(kernelSeed(t)))
	ctx := context.Background()
	db := dataset.Chemical(dataset.ChemConfig{N: 20, MinVertices: 5, MaxVertices: 9, Seed: rng.Int63()})
	const p = 48
	vecs := kernelRandVecs(rng, len(db), p)
	metric := mcs.Delta2
	opt := mcs.Options{MaxNodes: 3000}
	blk := vecspace.Pack(vecs, p)
	s := NewScratch()
	defer s.Release()
	for round := 0; round < 6; round++ {
		q := db[rng.Intn(len(db))]
		qv := kernelRandVecs(rng, 1, p)[0]
		k, factor := 1+rng.Intn(6), 1+rng.Intn(3)
		ref, refN, err := VerifiedContext(ctx, SliceGraphs(db), vecs, nil, q, qv, k, factor, 0, metric, opt, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, gotN, err := VerifiedContext(ctx, SliceGraphs(db), vecs, blk, q, qv, k, factor, 0, metric, opt, nil, nil, s)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != refN {
			t.Fatalf("round %d: verified %d candidates with block, %d without", round, gotN, refN)
		}
		assertRankingPrefix(t, "verified round "+strconv.Itoa(round), got, ref, len(ref))
	}
}
