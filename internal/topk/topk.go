// Package topk implements the top-k similarity query engines the paper
// evaluates (Section 6): the exact engine ranking by MCS-based graph
// dissimilarity, the mapped-space engine ranking by normalized Euclidean
// distance over binary feature vectors (a sequential scan, exactly as the
// paper does for all algorithms), and the fingerprint/Tanimoto benchmark
// engine.
package topk

import (
	"context"
	"math"
	"slices"

	"repro/internal/graph"
	"repro/internal/mcs"
	"repro/internal/vecspace"
)

// Item is one ranked result: the database index and its score (smaller is
// more similar for dissimilarity engines, larger for Tanimoto — Rank
// normalizes direction via the less function used to sort).
type Item struct {
	ID    int
	Score float64
}

// Ranking is a full similarity ranking of the database for one query,
// most similar first. Ties are broken by ascending database id so that
// every engine is deterministic.
type Ranking []Item

// TopK returns the first k ids of the ranking.
func (r Ranking) TopK(k int) []int {
	if k > len(r) {
		k = len(r)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = r[i].ID
	}
	return out
}

// RankOf returns the 1-based rank of id, or len(r)+1 if absent.
func (r Ranking) RankOf(id int) int {
	for i, it := range r {
		if it.ID == id {
			return i + 1
		}
	}
	return len(r) + 1
}

// sortItems orders items ascending by score (ties by id). Ids are
// distinct, so the comparator is a strict total order and every correct
// sort yields the same permutation — the engines stay deterministic.
// slices.SortFunc rather than sort.Slice keeps the hot path free of the
// reflection-based swapper (and its per-call allocations).
func sortItems(items []Item) {
	slices.SortFunc(items, func(a, b Item) int {
		if a.Score != b.Score {
			if a.Score < b.Score {
				return -1
			}
			return 1
		}
		return a.ID - b.ID // ids are non-negative: no overflow
	})
}

// Alive filters a scan to a subset of the database: ids for which it
// returns false are skipped entirely (tombstoned graphs, caller
// predicates). A nil Alive admits every id.
type Alive func(id int) bool

func admits(alive Alive, id int) bool { return alive == nil || alive(id) }

// Exact ranks the database for query q by the MCS dissimilarity metric —
// the ground-truth engine. opt bounds each MCS search (Options{} = fully
// exact).
func Exact(db []*graph.Graph, q *graph.Graph, metric mcs.Metric, opt mcs.Options) Ranking {
	r, _ := ExactContext(context.Background(), len(db), SliceGraphs(db), q, metric, opt, nil)
	return r
}

// ExactContext is Exact over database ids [0, n) resolved through
// graphAt (see GraphAt — a mapped store decodes payloads on demand),
// restricted to the ids admitted by alive, with cancellation checked
// before each MCS search (the expensive unit).
func ExactContext(ctx context.Context, n int, graphAt GraphAt, q *graph.Graph, metric mcs.Metric,
	opt mcs.Options, alive Alive) (Ranking, error) {
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		if !admits(alive, i) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g, err := graphAt(i)
		if err != nil {
			return nil, err
		}
		items = append(items, Item{ID: i, Score: metric.DissimilarityBudget(q, g, opt)})
	}
	sortItems(items)
	return items, nil
}

// Candidates is a pruned scan plan for one mapped-space query, computed
// by internal/posting from per-dimension posting lists: the ids whose
// vectors share at least one set dimension with the query (scored
// exactly, from their vectors) plus a lazy stream over the remaining
// ids in ascending score order (an unmatched id's distance depends only
// on its ones count). A nil *Candidates selects the flat scan.
type Candidates struct {
	// K bounds the ranking: the merged result holds the exact top K of
	// what the flat scan would rank, in the flat scan's order. K <= 0
	// degrades to the flat scan.
	K int
	// QueryOnes is the query vector's set-bit count |F(q)|.
	QueryOnes int
	// Matched holds, ascending, every id sharing >= 1 dimension with the
	// query. Tombstoned ids may appear; the scan filters them via alive.
	Matched []int32
	// Rest yields every id not in Matched in ascending (ones, id) order
	// with its ones count, stopping when yield returns false.
	Rest func(yield func(id, ones int32) bool)
}

// Mapped ranks the database by normalized Euclidean distance between
// binary feature vectors — the paper's online query path: map the query
// with VF2 feature matching, then scan the vector database.
func Mapped(dbVectors []*vecspace.BitVector, qv *vecspace.BitVector) Ranking {
	r, _, _ := MappedContext(context.Background(), dbVectors, qv, nil, nil)
	return r
}

// MappedContext is Mapped restricted to the ids admitted by alive, with
// optional posting-list pruning. With cands == nil it scans every
// vector and returns the full admitted ranking; with a plan it scores
// only the matched candidates plus however much of the score-ordered
// unmatched stream the top cands.K needs — sublinear when the plan is
// selective — and returns exactly the first cands.K entries the flat
// ranking would have, identical scores and tie order included. The
// second return value is the number of ids scored. The scan is pure bit
// arithmetic, so cancellation is only checked every mappedCtxStride
// ids — prompt enough for multi-million-graph scans without a
// per-vector atomic load.
func MappedContext(ctx context.Context, dbVectors []*vecspace.BitVector, qv *vecspace.BitVector,
	alive Alive, cands *Candidates) (Ranking, int, error) {
	if cands != nil && cands.K > 0 {
		return mappedPruned(ctx, dbVectors, nil, qv, alive, cands, nil)
	}
	items := make([]Item, 0, len(dbVectors))
	for i, v := range dbVectors {
		if i%mappedCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		if !admits(alive, i) {
			continue
		}
		items = append(items, Item{ID: i, Score: qv.Distance(v)})
	}
	sortItems(items)
	return items, len(items), nil
}

// MappedTopKContext is the batched form of MappedContext for a caller
// that wants exactly the first k entries of the flat ranking (every
// Search does): with a plan it runs the pruned merge, without one it
// streams the SoA block through the width-8/16 popcount kernel and
// keeps the k best with a bounded heap — never materializing, let
// alone sorting, the full ranking. Results are bit-identical to
// MappedContext's first k entries, distances included: the kernel
// computes the very same integer Hamming counts, the same
// sqrt(hamming/p) expression scores them, and the packed-key selection
// order (hamming, id) equals the flat sort's (score, id) order (see
// scratch.go). blk may be nil or stale (built over a different n or p)
// — the scan falls back to the scalar vectors, still heap-bounded. s
// may be nil (buffers are then allocated per call); when non-nil the
// returned Ranking aliases s and is valid only until its next use or
// Release. The second return value is the number of ids the scan
// actually computed a distance for — at most MappedContext's count, and
// smaller whenever the block's zone map proved whole zones irrelevant
// (see zoneSkips); the rankings are identical regardless.
func MappedTopKContext(ctx context.Context, dbVectors []*vecspace.BitVector, blk *vecspace.Block,
	qv *vecspace.BitVector, alive Alive, k int, cands *Candidates, s *Scratch) (Ranking, int, error) {
	if cands != nil && cands.K > 0 {
		return mappedPruned(ctx, dbVectors, blk, qv, alive, cands, s)
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if s == nil {
		s = &Scratch{}
	}
	if k <= 0 {
		s.out = s.out[:0]
		return s.out, 0, nil
	}
	n := len(dbVectors)
	if k > n {
		k = n
	}
	keys := s.keys[:0]
	scored := 0
	if blk != nil && blk.N() == n && blk.P() == qv.Len() {
		// Kernel path: one zone (vecspace.ZoneSpan ids) at a time, heap
		// live, so the zone map can prove whole zones irrelevant before a
		// single tile is touched. The skip is exact (see zoneSkips): the
		// results are bit-identical to a scan with no zone map — only
		// `scored` (a diagnostic) shrinks.
		zones := blk.Zones()
		qw, qOnes := qv.Words(), qv.Ones()
		dists := s.distBuf(n)
		for lo := 0; lo < n; lo += vecspace.ZoneSpan {
			zi := lo / vecspace.ZoneSpan
			if zi%zoneCtxStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			if zones != nil && len(keys) == k &&
				zones.LowerBound(qOnes, qw, zi) >= int(keys[0]>>32) {
				continue
			}
			hi := lo + vecspace.ZoneSpan
			if hi > n {
				hi = n
			}
			blk.HammingSlice(qv, lo, hi, dists)
			for id := lo; id < hi; id++ {
				if !admits(alive, id) {
					continue
				}
				scored++
				keys = pushK(keys, k, uint64(dists[id])<<32|uint64(id))
			}
		}
	} else {
		for id, v := range dbVectors {
			if id%mappedCtxStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			if !admits(alive, id) {
				continue
			}
			scored++
			keys = pushK(keys, k, uint64(qv.HammingDistance(v))<<32|uint64(id))
		}
	}
	s.keys = keys
	slices.Sort(keys)
	p := float64(qv.Len())
	out := s.out[:0]
	for _, key := range keys {
		score := 0.0
		if p > 0 {
			score = math.Sqrt(float64(key>>32) / p)
		}
		out = append(out, Item{ID: int(uint32(key)), Score: score})
	}
	s.out = out
	return out, scored, nil
}

// zoneSkips documents why skipping a zone whose lower bound reaches the
// heap's worst kept Hamming count is exact. With the heap full, a new
// candidate enters only when its packed key (hamming<<32 | id) is
// strictly below the root's. Every id in an unvisited zone is greater
// than every id already in the heap (both scans visit ids ascending), so
// a zone candidate with hamming equal to the root's count packs a key
// above the root — a rejected tie — and one with a greater count is
// rejected outright. LowerBound proves no zone member has a smaller
// count, hence no member can displace anything: the skip changes no
// result, only the work done.
//
// mappedPruned evaluates the pruned plan. Equivalence to the flat scan
// rests on three facts: (1) a matched id's distance is computed from its
// vector by the very same expression the flat scan uses — via the SoA
// kernel's gather when a current block is supplied, which produces the
// identical integer Hamming count; (2) an unmatched id shares no
// dimension with the query, so its Hamming distance is exactly
// QueryOnes + ones(id) and distinct ones counts give distinct float64
// scores (the gap 1/p dwarfs every rounding error for any p the codec
// admits), making the (ones, id) stream order equal to the flat scan's
// (score, id) tie order; (3) the merge emits at most K items, so only
// the (score, id)-first K matched candidates can ever reach the output —
// bounding the matched stage with the same heap the flat scan uses keeps
// exactly those, and zone skips are exact per zoneSkips.
func mappedPruned(ctx context.Context, dbVectors []*vecspace.BitVector, blk *vecspace.Block,
	qv *vecspace.BitVector, alive Alive, cands *Candidates, s *Scratch) (Ranking, int, error) {
	if s == nil {
		s = &Scratch{}
	}
	p := qv.Len()
	if blk != nil && (blk.N() != len(dbVectors) || blk.P() != p) {
		blk = nil // stale block: score matched candidates from the vectors
	}
	ids := s.ids[:0]
	for j, id := range cands.Matched {
		if j%mappedCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		if admits(alive, int(id)) {
			ids = append(ids, id)
		}
	}
	s.ids = ids
	keys := s.keys[:0]
	scored := 0
	if blk != nil {
		// Kernel path: group the (ascending) candidate list by zone, let
		// the zone map skip hopeless groups, gather the rest through the
		// batched kernel.
		zones := blk.Zones()
		qw, qOnes := qv.Words(), qv.Ones()
		dists := s.distBuf(len(ids))
		for start, group := 0, 0; start < len(ids); group++ {
			zi := int(ids[start]) / vecspace.ZoneSpan
			end := start + 1
			for end < len(ids) && int(ids[end])/vecspace.ZoneSpan == zi {
				end++
			}
			if group%zoneCtxStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			if zones != nil && len(keys) == cands.K &&
				zones.LowerBound(qOnes, qw, zi) >= int(keys[0]>>32) {
				start = end
				continue
			}
			s.gather = blk.HammingGather(qv, ids[start:end], s.gather, dists[:end-start])
			for i, id := range ids[start:end] {
				keys = pushK(keys, cands.K, uint64(dists[i])<<32|uint64(id))
			}
			scored += end - start
			start = end
		}
	} else {
		for j, id := range ids {
			if j%mappedCtxStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			keys = pushK(keys, cands.K, uint64(qv.HammingDistance(dbVectors[id]))<<32|uint64(id))
		}
		scored = len(ids)
	}
	s.keys = keys
	slices.Sort(keys)
	matched := s.items[:0]
	for _, key := range keys {
		score := 0.0
		if p > 0 {
			score = math.Sqrt(float64(key>>32) / float64(p))
		}
		matched = append(matched, Item{ID: int(uint32(key)), Score: score})
	}
	s.items = matched

	// Merge the sorted matched items with the score-ordered unmatched
	// stream, stopping at K results.
	out := s.out[:0]
	mi := 0
	steps := 0
	var rerr error
	cands.Rest(func(id, ones int32) bool {
		steps++
		if steps%mappedCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				rerr = err
				return false
			}
		}
		if !admits(alive, int(id)) {
			return true
		}
		score := math.Sqrt(float64(int(ones)+cands.QueryOnes) / float64(p))
		for mi < len(matched) && (matched[mi].Score < score ||
			(matched[mi].Score == score && matched[mi].ID < int(id))) {
			out = append(out, matched[mi])
			mi++
			if len(out) >= cands.K {
				return false
			}
		}
		out = append(out, Item{ID: int(id), Score: score})
		scored++
		return len(out) < cands.K
	})
	if rerr != nil {
		return nil, 0, rerr
	}
	for mi < len(matched) && len(out) < cands.K {
		out = append(out, matched[mi])
		mi++
	}
	return out, scored, nil
}

const mappedCtxStride = 4096

// zoneCtxStride is how many zones the kernel paths process between
// cancellation checks: 16 zones × ZoneSpan ids = the same 4096-id cadence
// as mappedCtxStride when nothing skips.
const zoneCtxStride = 16

// Tanimoto ranks the database by descending Tanimoto similarity of
// fingerprints — the PubChem-style benchmark engine. Scores are stored as
// 1−similarity so that Ranking remains ascending-is-better.
func Tanimoto(dbFP []*vecspace.BitVector, qFP *vecspace.BitVector, sim func(a, b *vecspace.BitVector) float64) Ranking {
	items := make([]Item, len(dbFP))
	for i, v := range dbFP {
		items[i] = Item{ID: i, Score: 1 - sim(qFP, v)}
	}
	sortItems(items)
	return items
}
