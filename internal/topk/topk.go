// Package topk implements the top-k similarity query engines the paper
// evaluates (Section 6): the exact engine ranking by MCS-based graph
// dissimilarity, the mapped-space engine ranking by normalized Euclidean
// distance over binary feature vectors (a sequential scan, exactly as the
// paper does for all algorithms), and the fingerprint/Tanimoto benchmark
// engine.
package topk

import (
	"context"
	"sort"

	"repro/internal/graph"
	"repro/internal/mcs"
	"repro/internal/vecspace"
)

// Item is one ranked result: the database index and its score (smaller is
// more similar for dissimilarity engines, larger for Tanimoto — Rank
// normalizes direction via the less function used to sort).
type Item struct {
	ID    int
	Score float64
}

// Ranking is a full similarity ranking of the database for one query,
// most similar first. Ties are broken by ascending database id so that
// every engine is deterministic.
type Ranking []Item

// TopK returns the first k ids of the ranking.
func (r Ranking) TopK(k int) []int {
	if k > len(r) {
		k = len(r)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = r[i].ID
	}
	return out
}

// RankOf returns the 1-based rank of id, or len(r)+1 if absent.
func (r Ranking) RankOf(id int) int {
	for i, it := range r {
		if it.ID == id {
			return i + 1
		}
	}
	return len(r) + 1
}

// sortItems orders items ascending by score (ties by id).
func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Score != items[j].Score {
			return items[i].Score < items[j].Score
		}
		return items[i].ID < items[j].ID
	})
}

// Alive filters a scan to a subset of the database: ids for which it
// returns false are skipped entirely (tombstoned graphs, caller
// predicates). A nil Alive admits every id.
type Alive func(id int) bool

func admits(alive Alive, id int) bool { return alive == nil || alive(id) }

// Exact ranks the database for query q by the MCS dissimilarity metric —
// the ground-truth engine. opt bounds each MCS search (Options{} = fully
// exact).
func Exact(db []*graph.Graph, q *graph.Graph, metric mcs.Metric, opt mcs.Options) Ranking {
	r, _ := ExactContext(context.Background(), db, q, metric, opt, nil)
	return r
}

// ExactContext is Exact restricted to the ids admitted by alive, with
// cancellation checked before each MCS search (the expensive unit).
func ExactContext(ctx context.Context, db []*graph.Graph, q *graph.Graph, metric mcs.Metric,
	opt mcs.Options, alive Alive) (Ranking, error) {
	items := make([]Item, 0, len(db))
	for i, g := range db {
		if !admits(alive, i) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		items = append(items, Item{ID: i, Score: metric.DissimilarityBudget(q, g, opt)})
	}
	sortItems(items)
	return items, nil
}

// Mapped ranks the database by normalized Euclidean distance between
// binary feature vectors — the paper's online query path: map the query
// with VF2 feature matching, then scan the vector database.
func Mapped(dbVectors []*vecspace.BitVector, qv *vecspace.BitVector) Ranking {
	r, _ := MappedContext(context.Background(), dbVectors, qv, nil)
	return r
}

// MappedContext is Mapped restricted to the ids admitted by alive. The
// scan is pure bit arithmetic, so cancellation is only checked every
// mappedCtxStride vectors — prompt enough for multi-million-graph scans
// without a per-vector atomic load.
func MappedContext(ctx context.Context, dbVectors []*vecspace.BitVector, qv *vecspace.BitVector,
	alive Alive) (Ranking, error) {
	items := make([]Item, 0, len(dbVectors))
	for i, v := range dbVectors {
		if i%mappedCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !admits(alive, i) {
			continue
		}
		items = append(items, Item{ID: i, Score: qv.Distance(v)})
	}
	sortItems(items)
	return items, nil
}

const mappedCtxStride = 4096

// Tanimoto ranks the database by descending Tanimoto similarity of
// fingerprints — the PubChem-style benchmark engine. Scores are stored as
// 1−similarity so that Ranking remains ascending-is-better.
func Tanimoto(dbFP []*vecspace.BitVector, qFP *vecspace.BitVector, sim func(a, b *vecspace.BitVector) float64) Ranking {
	items := make([]Item, len(dbFP))
	for i, v := range dbFP {
		items[i] = Item{ID: i, Score: 1 - sim(qFP, v)}
	}
	sortItems(items)
	return items
}
