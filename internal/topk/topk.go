// Package topk implements the top-k similarity query engines the paper
// evaluates (Section 6): the exact engine ranking by MCS-based graph
// dissimilarity, the mapped-space engine ranking by normalized Euclidean
// distance over binary feature vectors (a sequential scan, exactly as the
// paper does for all algorithms), and the fingerprint/Tanimoto benchmark
// engine.
package topk

import (
	"context"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mcs"
	"repro/internal/vecspace"
)

// Item is one ranked result: the database index and its score (smaller is
// more similar for dissimilarity engines, larger for Tanimoto — Rank
// normalizes direction via the less function used to sort).
type Item struct {
	ID    int
	Score float64
}

// Ranking is a full similarity ranking of the database for one query,
// most similar first. Ties are broken by ascending database id so that
// every engine is deterministic.
type Ranking []Item

// TopK returns the first k ids of the ranking.
func (r Ranking) TopK(k int) []int {
	if k > len(r) {
		k = len(r)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = r[i].ID
	}
	return out
}

// RankOf returns the 1-based rank of id, or len(r)+1 if absent.
func (r Ranking) RankOf(id int) int {
	for i, it := range r {
		if it.ID == id {
			return i + 1
		}
	}
	return len(r) + 1
}

// sortItems orders items ascending by score (ties by id).
func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Score != items[j].Score {
			return items[i].Score < items[j].Score
		}
		return items[i].ID < items[j].ID
	})
}

// Alive filters a scan to a subset of the database: ids for which it
// returns false are skipped entirely (tombstoned graphs, caller
// predicates). A nil Alive admits every id.
type Alive func(id int) bool

func admits(alive Alive, id int) bool { return alive == nil || alive(id) }

// Exact ranks the database for query q by the MCS dissimilarity metric —
// the ground-truth engine. opt bounds each MCS search (Options{} = fully
// exact).
func Exact(db []*graph.Graph, q *graph.Graph, metric mcs.Metric, opt mcs.Options) Ranking {
	r, _ := ExactContext(context.Background(), db, q, metric, opt, nil)
	return r
}

// ExactContext is Exact restricted to the ids admitted by alive, with
// cancellation checked before each MCS search (the expensive unit).
func ExactContext(ctx context.Context, db []*graph.Graph, q *graph.Graph, metric mcs.Metric,
	opt mcs.Options, alive Alive) (Ranking, error) {
	items := make([]Item, 0, len(db))
	for i, g := range db {
		if !admits(alive, i) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		items = append(items, Item{ID: i, Score: metric.DissimilarityBudget(q, g, opt)})
	}
	sortItems(items)
	return items, nil
}

// Candidates is a pruned scan plan for one mapped-space query, computed
// by internal/posting from per-dimension posting lists: the ids whose
// vectors share at least one set dimension with the query (scored
// exactly, from their vectors) plus a lazy stream over the remaining
// ids in ascending score order (an unmatched id's distance depends only
// on its ones count). A nil *Candidates selects the flat scan.
type Candidates struct {
	// K bounds the ranking: the merged result holds the exact top K of
	// what the flat scan would rank, in the flat scan's order. K <= 0
	// degrades to the flat scan.
	K int
	// QueryOnes is the query vector's set-bit count |F(q)|.
	QueryOnes int
	// Matched holds, ascending, every id sharing >= 1 dimension with the
	// query. Tombstoned ids may appear; the scan filters them via alive.
	Matched []int32
	// Rest yields every id not in Matched in ascending (ones, id) order
	// with its ones count, stopping when yield returns false.
	Rest func(yield func(id, ones int32) bool)
}

// Mapped ranks the database by normalized Euclidean distance between
// binary feature vectors — the paper's online query path: map the query
// with VF2 feature matching, then scan the vector database.
func Mapped(dbVectors []*vecspace.BitVector, qv *vecspace.BitVector) Ranking {
	r, _, _ := MappedContext(context.Background(), dbVectors, qv, nil, nil)
	return r
}

// MappedContext is Mapped restricted to the ids admitted by alive, with
// optional posting-list pruning. With cands == nil it scans every
// vector and returns the full admitted ranking; with a plan it scores
// only the matched candidates plus however much of the score-ordered
// unmatched stream the top cands.K needs — sublinear when the plan is
// selective — and returns exactly the first cands.K entries the flat
// ranking would have, identical scores and tie order included. The
// second return value is the number of ids scored. The scan is pure bit
// arithmetic, so cancellation is only checked every mappedCtxStride
// ids — prompt enough for multi-million-graph scans without a
// per-vector atomic load.
func MappedContext(ctx context.Context, dbVectors []*vecspace.BitVector, qv *vecspace.BitVector,
	alive Alive, cands *Candidates) (Ranking, int, error) {
	if cands != nil && cands.K > 0 {
		return mappedPruned(ctx, dbVectors, qv, alive, cands)
	}
	items := make([]Item, 0, len(dbVectors))
	for i, v := range dbVectors {
		if i%mappedCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		if !admits(alive, i) {
			continue
		}
		items = append(items, Item{ID: i, Score: qv.Distance(v)})
	}
	sortItems(items)
	return items, len(items), nil
}

// mappedPruned evaluates the pruned plan. Equivalence to the flat scan
// rests on two facts: (1) a matched id's distance is computed from its
// vector by the very same expression the flat scan uses; (2) an
// unmatched id shares no dimension with the query, so its Hamming
// distance is exactly QueryOnes + ones(id) and distinct ones counts
// give distinct float64 scores (the gap 1/p dwarfs every rounding
// error for any p the codec admits), making the (ones, id) stream
// order equal to the flat scan's (score, id) tie order.
func mappedPruned(ctx context.Context, dbVectors []*vecspace.BitVector, qv *vecspace.BitVector,
	alive Alive, cands *Candidates) (Ranking, int, error) {
	p := qv.Len()
	matched := make([]Item, 0, len(cands.Matched))
	for j, id := range cands.Matched {
		if j%mappedCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		if !admits(alive, int(id)) {
			continue
		}
		matched = append(matched, Item{ID: int(id), Score: qv.Distance(dbVectors[id])})
	}
	sortItems(matched)

	// Merge the sorted matched items with the score-ordered unmatched
	// stream, stopping at K results.
	scored := len(matched)
	out := make(Ranking, 0, min(cands.K, len(dbVectors)))
	mi := 0
	steps := 0
	var rerr error
	cands.Rest(func(id, ones int32) bool {
		steps++
		if steps%mappedCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				rerr = err
				return false
			}
		}
		if !admits(alive, int(id)) {
			return true
		}
		score := math.Sqrt(float64(int(ones)+cands.QueryOnes) / float64(p))
		for mi < len(matched) && (matched[mi].Score < score ||
			(matched[mi].Score == score && matched[mi].ID < int(id))) {
			out = append(out, matched[mi])
			mi++
			if len(out) >= cands.K {
				return false
			}
		}
		out = append(out, Item{ID: int(id), Score: score})
		scored++
		return len(out) < cands.K
	})
	if rerr != nil {
		return nil, 0, rerr
	}
	for mi < len(matched) && len(out) < cands.K {
		out = append(out, matched[mi])
		mi++
	}
	return out, scored, nil
}

const mappedCtxStride = 4096

// Tanimoto ranks the database by descending Tanimoto similarity of
// fingerprints — the PubChem-style benchmark engine. Scores are stored as
// 1−similarity so that Ranking remains ascending-is-better.
func Tanimoto(dbFP []*vecspace.BitVector, qFP *vecspace.BitVector, sim func(a, b *vecspace.BitVector) float64) Ranking {
	items := make([]Item, len(dbFP))
	for i, v := range dbFP {
		items[i] = Item{ID: i, Score: 1 - sim(qFP, v)}
	}
	sortItems(items)
	return items
}
