package topk

// Quality measures of Section 6 (Measures). A is the approximate top-k id
// list, exact is the full ground-truth ranking of the database (its first
// k entries are the exact top-k list T).

// Precision is p(k) = |A ∩ T| / k.
func Precision(approx []int, exact Ranking, k int) float64 {
	if k == 0 {
		return 0
	}
	t := exact.TopK(k)
	inT := make(map[int]bool, k)
	for _, id := range t {
		inT[id] = true
	}
	hits := 0
	for i, id := range approx {
		if i >= k {
			break
		}
		if inT[id] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// KendallTau is the top-k Kendall's tau of Fagin et al. [40] as used in
// the paper:
//
//	τ(k) = Σ_{r_i ∈ A} |A_{i+1} ∩ T_{t(r_i)+1}| / (k(2n−k−1))
//
// where t(r_i) is the true rank of r_i in the full exact ranking, A_{i+1}
// is the suffix of A after position i, and T_{t+1} the suffix of the exact
// ranking after rank t — i.e. the number of concordant pairs within A,
// normalized by k(2n−k−1).
func KendallTau(approx []int, exact Ranking, k int) float64 {
	n := len(exact)
	if k > len(approx) {
		k = len(approx)
	}
	if k == 0 || n == 0 {
		return 0
	}
	denom := float64(k) * float64(2*n-k-1)
	if denom == 0 {
		return 0
	}
	rank := make(map[int]int, n)
	for i, it := range exact {
		rank[it.ID] = i + 1
	}
	concordant := 0
	for i := 0; i < k; i++ {
		ti := rank[approx[i]]
		for j := i + 1; j < k; j++ {
			if rank[approx[j]] > ti {
				concordant++
			}
		}
	}
	return float64(concordant) / denom
}

// InverseRankDistance is the inverse footrule distance of the paper:
//
//	γ_inv(k) = k / Σ_{r_i ∈ A} |i − t(r_i)|
//
// larger is better; a perfect ranking (zero footrule distance) returns k,
// keeping the measure finite while preserving ordering.
func InverseRankDistance(approx []int, exact Ranking, k int) float64 {
	if k > len(approx) {
		k = len(approx)
	}
	if k == 0 {
		return 0
	}
	rank := make(map[int]int, len(exact))
	for i, it := range exact {
		rank[it.ID] = i + 1
	}
	sum := 0
	for i := 0; i < k; i++ {
		t, ok := rank[approx[i]]
		if !ok {
			t = len(exact) + 1
		}
		d := (i + 1) - t
		if d < 0 {
			d = -d
		}
		sum += d
	}
	if sum == 0 {
		return float64(k)
	}
	return float64(k) / float64(sum)
}
