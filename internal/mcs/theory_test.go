package mcs

// Property-based tests for the paper's Section 4 theory: Lemma 4.1 and
// Theorems 4.1/4.2 bound how the MCS dissimilarity of a query changes
// when the query is replaced by one of its subgraphs. These are exact
// statements about exact MCS values, so the tests run unbounded searches
// on small random graphs.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// subgraphOf returns a random subgraph of g: an induced subgraph on a
// random non-empty vertex subset with a random subset of its edges
// removed... edges must remain: we keep the induced edges (edge-subgraphs
// are also valid; vertex-induced is a special case of q' ⊆ q).
func subgraphOf(r *rand.Rand, g *graph.Graph) *graph.Graph {
	var vs []int
	for v := 0; v < g.N(); v++ {
		if r.Intn(3) > 0 { // keep ~2/3 of vertices
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		vs = []int{0}
	}
	sub, _ := g.InducedSubgraph(vs)
	// Drop a few edges to exercise non-induced subgraphs too.
	if sub.M() > 1 && r.Intn(2) == 0 {
		keep := sub.Edges()[:sub.M()-1]
		h := &graph.Graph{}
		for v := 0; v < sub.N(); v++ {
			h.AddVertex(sub.VertexLabel(v))
		}
		for _, e := range keep {
			h.MustAddEdge(e.U, e.V, e.Label)
		}
		return h
	}
	return sub
}

func theoryTriple(seed int64) (q, qsub, g *graph.Graph) {
	r := rand.New(rand.NewSource(seed))
	q = randomGraph(r, 3+r.Intn(4), r.Intn(3), 2)
	qsub = subgraphOf(r, q)
	g = randomGraph(r, 3+r.Intn(4), r.Intn(3), 2)
	return q, qsub, g
}

// TestLemma41 checks 0 ≤ |E(mcs(q,g))| − |E(mcs(q',g))| ≤ |E(q)| − |E(q')|
// for q' ⊆ q.
func TestLemma41(t *testing.T) {
	f := func(seed int64) bool {
		q, qsub, g := theoryTriple(seed)
		xi := Size(q, g) - Size(qsub, g)
		return xi >= 0 && xi <= q.M()-qsub.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTheorem41 checks α − ε1l ≤ δ1(q',g) ≤ α + ε1r with
// ε1l = (|E(q)|−min(|E(q')|,|E(g)|))/min(|E(q')|,|E(g)|) · (1−α) and
// ε1r = (|E(q)|−|E(q')|)/|E(g)|.
func TestTheorem41(t *testing.T) {
	f := func(seed int64) bool {
		q, qsub, g := theoryTriple(seed)
		if qsub.M() == 0 || g.M() == 0 {
			return true // bounds assume non-degenerate sizes
		}
		alpha := Delta1.Dissimilarity(q, g)
		got := Delta1.Dissimilarity(qsub, g)
		minQG := qsub.M()
		if g.M() < minQG {
			minQG = g.M()
		}
		eps1l := float64(q.M()-minQG) / float64(minQG) * (1 - alpha)
		eps1r := float64(q.M()-qsub.M()) / float64(g.M())
		const tol = 1e-9
		return got >= alpha-eps1l-tol && got <= alpha+eps1r+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTheorem42 checks α − (1−α)ε2 ≤ δ2(q',g) ≤ α + (1+α)ε2 with
// ε2 = (|E(q)|−|E(q')|)/(|E(q')|+|E(g)|).
func TestTheorem42(t *testing.T) {
	f := func(seed int64) bool {
		q, qsub, g := theoryTriple(seed)
		if qsub.M()+g.M() == 0 {
			return true
		}
		alpha := Delta2.Dissimilarity(q, g)
		got := Delta2.Dissimilarity(qsub, g)
		eps2 := float64(q.M()-qsub.M()) / float64(qsub.M()+g.M())
		const tol = 1e-9
		return got >= alpha-(1-alpha)*eps2-tol && got <= alpha+(1+alpha)*eps2+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
