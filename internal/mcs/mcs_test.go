package mcs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func randomGraph(r *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	g := &graph.Graph{}
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(r.Intn(v), v, graph.Label(r.Intn(labels)))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, graph.Label(r.Intn(labels)))
		}
	}
	return g
}

// bruteMCS exhaustively searches every partial injective mapping of a's
// vertices into b's and returns the max matched edge count. Exponential;
// keep inputs tiny.
func bruteMCS(a, b *graph.Graph) int {
	best := 0
	m := make([]int, a.N())
	used := make([]bool, b.N())
	for i := range m {
		m[i] = -1
	}
	var count func() int
	count = func() int {
		c := 0
		for _, e := range a.Edges() {
			if m[e.U] >= 0 && m[e.V] >= 0 {
				if l, ok := b.EdgeLabel(m[e.U], m[e.V]); ok && l == e.Label {
					c++
				}
			}
		}
		return c
	}
	var rec func(v int)
	rec = func(v int) {
		if v == a.N() {
			if c := count(); c > best {
				best = c
			}
			return
		}
		rec(v + 1) // leave unmapped
		for w := 0; w < b.N(); w++ {
			if used[w] || b.VertexLabel(w) != a.VertexLabel(v) {
				continue
			}
			m[v] = w
			used[w] = true
			rec(v + 1)
			used[w] = false
			m[v] = -1
		}
	}
	rec(0)
	return best
}

func TestSizeAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 2+r.Intn(4), r.Intn(3), 2)
		b := randomGraph(r, 2+r.Intn(4), r.Intn(3), 2)
		return Size(a, b) == bruteMCS(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSelfMCSIsWholeGraph(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 3+r.Intn(5), r.Intn(4), 3)
		return Size(g, g) == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSubgraphMCSIsSubgraphSize(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 4+r.Intn(4), r.Intn(4), 3)
		var vs []int
		for v := 0; v < g.N(); v++ {
			if r.Intn(2) == 0 {
				vs = append(vs, v)
			}
		}
		if len(vs) < 2 {
			vs = []int{0, 1}
		}
		sub, _ := g.InducedSubgraph(vs)
		return Size(sub, g) == sub.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMappingIsValidWitness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 2+r.Intn(4), r.Intn(4), 2)
		b := randomGraph(r, 2+r.Intn(4), r.Intn(4), 2)
		res := Compute(a, b, Options{})
		// Count edges realized by the mapping; must equal res.Edges.
		seen := map[int]bool{}
		for _, w := range res.Mapping {
			if w >= 0 {
				if seen[w] {
					return false // not injective
				}
				seen[w] = true
			}
		}
		c := 0
		for _, e := range a.Edges() {
			mu, mv := res.Mapping[e.U], res.Mapping[e.V]
			if mu >= 0 && mv >= 0 {
				if l, ok := b.EdgeLabel(mu, mv); ok && l == e.Label {
					c++
				}
			}
		}
		return c == res.Edges && res.Exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBudgetedSearchLowerBounds(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		a := randomGraph(r, 8, 5, 2)
		b := randomGraph(r, 8, 5, 2)
		exact := Compute(a, b, Options{})
		budgeted := Compute(a, b, Options{MaxNodes: 50})
		if budgeted.Edges > exact.Edges {
			t.Fatalf("budgeted result exceeds exact: %d > %d", budgeted.Edges, exact.Edges)
		}
	}
}

func TestDissimilarityProperties(t *testing.T) {
	for _, m := range []Metric{Delta1, Delta2} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a := randomGraph(r, 2+r.Intn(4), r.Intn(3), 2)
			b := randomGraph(r, 2+r.Intn(4), r.Intn(3), 2)
			dab := m.Dissimilarity(a, b)
			dba := m.Dissimilarity(b, a)
			daa := m.Dissimilarity(a, a)
			return dab >= 0 && dab <= 1 &&
				math.Abs(dab-dba) < 1e-12 &&
				daa == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestDissimilarityFromMCS(t *testing.T) {
	// |E(q)|=4, |E(g)|=6, |E(mcs)|=3.
	if got, want := Delta1.FromMCS(3, 4, 6), 1-3.0/6; got != want {
		t.Errorf("delta1 = %v, want %v", got, want)
	}
	if got, want := Delta2.FromMCS(3, 4, 6), 1-6.0/10; math.Abs(got-want) > 1e-12 {
		t.Errorf("delta2 = %v, want %v", got, want)
	}
	// Empty graphs.
	if Delta1.FromMCS(0, 0, 0) != 0 || Delta2.FromMCS(0, 0, 0) != 0 {
		t.Errorf("empty graphs should have dissimilarity 0")
	}
}

func TestMatrixSymmetricZeroDiagonal(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	db := make([]*graph.Graph, 6)
	for i := range db {
		db[i] = randomGraph(r, 4, 2, 2)
	}
	mat := Delta2.Matrix(db, Options{})
	for i := range mat {
		if mat[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v, want 0", i, i, mat[i][i])
		}
		for j := range mat {
			if mat[i][j] != mat[j][i] {
				t.Errorf("matrix not symmetric at %d,%d", i, j)
			}
		}
	}
}

func TestMetricString(t *testing.T) {
	if Delta1.String() != "delta1" || Delta2.String() != "delta2" {
		t.Errorf("Metric.String wrong")
	}
	if Metric(99).String() != "unknown" {
		t.Errorf("unknown metric string wrong")
	}
}
