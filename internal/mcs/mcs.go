// Package mcs computes the maximum common subgraph (MCS) of two undirected
// labeled graphs and the two MCS-based graph dissimilarities used in the
// paper:
//
//	δ1(q,g) = 1 - |E(mcs)| / max(|E(q)|, |E(g)|)     (Bunke–Shearer, Eq. 1)
//	δ2(q,g) = 1 - 2|E(mcs)| / (|E(q)| + |E(g)|)      (Zhu et al., Eq. 2)
//
// Following the paper's usage (Lemma 4.1 freely induces common subgraphs
// from arbitrary edge subsets), the MCS is the maximum common *edge*
// subgraph: a label-preserving injective partial vertex mapping maximizing
// the number of matched edges; connectivity is not required.
//
// The solver is a McGregor-style branch and bound over vertex
// correspondences with an edge-capacity upper bound. An optional search
// budget turns it into an anytime algorithm that returns the best matching
// found so far, which is how the exact-query baseline stays tractable on
// the largest experiments.
package mcs

import (
	"sort"

	"repro/internal/graph"
)

// Options configures the MCS search.
type Options struct {
	// MaxNodes bounds the number of branch-and-bound tree nodes explored.
	// 0 means unlimited (fully exact). When the budget is exhausted the
	// best matching found so far is returned.
	MaxNodes int64
}

// Result reports an MCS computation.
type Result struct {
	// Edges is the number of edges in the common subgraph found.
	Edges int
	// Mapping maps vertices of the first (smaller) argument graph to
	// vertices of the second; -1 marks unmapped vertices.
	Mapping []int
	// Exact records whether the search completed within its budget, i.e.
	// Edges is the true |E(mcs)|.
	Exact bool
	// Nodes is the number of search-tree nodes explored.
	Nodes int64
}

// Size returns |E(mcs(a,b))| with an unbounded exact search.
func Size(a, b *graph.Graph) int {
	r := Compute(a, b, Options{})
	return r.Edges
}

// Compute runs the branch-and-bound MCS search between a and b.
func Compute(a, b *graph.Graph, opt Options) Result {
	// Search from the smaller graph (fewer vertices) for a shallower tree.
	swapped := false
	if a.N() > b.N() {
		a, b = b, a
		swapped = true
	}
	s := &solver{g1: a, g2: b, opt: opt}
	s.run()
	res := Result{Edges: s.best, Exact: !s.budgetHit, Nodes: s.nodes}
	if swapped {
		// Invert the mapping so it is first-arg → second-arg.
		inv := make([]int, b.N())
		for i := range inv {
			inv[i] = -1
		}
		for v1, v2 := range s.bestMap {
			if v2 >= 0 {
				inv[v2] = v1
			}
		}
		res.Mapping = inv
	} else {
		res.Mapping = append([]int(nil), s.bestMap...)
	}
	return res
}

type solver struct {
	g1, g2 *graph.Graph
	opt    Options

	order     []int // g1 vertices in processing order (degree desc)
	pos       []int // g1 vertex -> position in order
	core      []int // g1 vertex -> g2 vertex or -1
	used      []bool
	cur       int // edges matched so far
	best      int
	bestMap   []int
	nodes     int64
	budgetHit bool

	// Label-type-aware bound state. An edge type is the triple
	// (min(l_u,l_v), l_e, max(l_u,l_v)). remain1[d] lists, per type, how
	// many g1 edges with at least one endpoint at order position >= d are
	// still matchable at depth d (precomputed). avail2 counts, per type,
	// the g2 edges that could still be matched: an edge leaves the pool
	// the moment its second endpoint becomes used (it was either matched,
	// already counted in cur, or is permanently dead).
	types   map[typeKey]int // type -> dense id
	remain1 [][]int32       // remain1[d][typeID]
	avail2  []int32         // avail2[typeID], maintained incrementally
}

// typeKey identifies an edge label type.
type typeKey struct {
	a, e, b graph.Label
}

func edgeType(g *graph.Graph, e graph.Edge) typeKey {
	la, lb := g.VertexLabel(e.U), g.VertexLabel(e.V)
	if la > lb {
		la, lb = lb, la
	}
	return typeKey{la, e.Label, lb}
}

func (s *solver) run() {
	n1 := s.g1.N()
	// Connectivity-aware order: start from the highest-degree vertex and
	// repeatedly append the unplaced vertex with the most edges into the
	// placed set (ties by degree). Early placements then carry immediate
	// edge gains, which makes the branch-and-bound pruning effective.
	s.order = make([]int, 0, n1)
	placed := make([]bool, n1)
	for len(s.order) < n1 {
		best, bestConn, bestDeg := -1, -1, -1
		for v := 0; v < n1; v++ {
			if placed[v] {
				continue
			}
			conn := 0
			for _, h := range s.g1.Neighbors(v) {
				if placed[h.To] {
					conn++
				}
			}
			if conn > bestConn || (conn == bestConn && s.g1.Degree(v) > bestDeg) {
				best, bestConn, bestDeg = v, conn, s.g1.Degree(v)
			}
		}
		placed[best] = true
		s.order = append(s.order, best)
	}
	s.pos = make([]int, n1)
	for d, v := range s.order {
		s.pos[v] = d
	}
	s.core = make([]int, n1)
	for i := range s.core {
		s.core[i] = -1
	}
	s.used = make([]bool, s.g2.N())
	s.bestMap = make([]int, n1)
	for i := range s.bestMap {
		s.bestMap[i] = -1
	}

	// Dense type ids over both graphs' edge types.
	s.types = map[typeKey]int{}
	for _, e := range s.g1.Edges() {
		k := edgeType(s.g1, e)
		if _, ok := s.types[k]; !ok {
			s.types[k] = len(s.types)
		}
	}
	for _, e := range s.g2.Edges() {
		k := edgeType(s.g2, e)
		if _, ok := s.types[k]; !ok {
			s.types[k] = len(s.types)
		}
	}
	nt := len(s.types)

	// remain1[d][t]: g1 edges of type t still matchable at depth d.
	s.remain1 = make([][]int32, n1+1)
	for d := 0; d <= n1; d++ {
		s.remain1[d] = make([]int32, nt)
	}
	for _, e := range s.g1.Edges() {
		t := s.types[edgeType(s.g1, e)]
		hi := s.pos[e.U]
		if s.pos[e.V] > hi {
			hi = s.pos[e.V]
		}
		// Matchable while depth <= hi.
		for d := 0; d <= hi; d++ {
			s.remain1[d][t]++
		}
	}
	s.avail2 = make([]int32, nt)
	for _, e := range s.g2.Edges() {
		s.avail2[s.types[edgeType(s.g2, e)]]++
	}

	s.search(0)
}

// upperBound returns cur plus the per-type minimum of still-matchable g1
// edges and still-available g2 edges — a valid bound because every future
// match consumes one edge of the same type on each side.
func (s *solver) upperBound(depth int) int {
	ub := s.cur
	r := s.remain1[depth]
	for t, c := range r {
		if c == 0 {
			continue
		}
		a := s.avail2[t]
		if a < c {
			ub += int(a)
		} else {
			ub += int(c)
		}
	}
	return ub
}

// occupy marks v2 used and retires every g2 edge whose second endpoint
// just became used from the availability pool. It returns the retired
// type ids for undo.
func (s *solver) occupy(v2 int) []int {
	s.used[v2] = true
	var retired []int
	for _, h := range s.g2.Neighbors(v2) {
		if s.used[h.To] {
			la, lb := s.g2.VertexLabel(v2), s.g2.VertexLabel(h.To)
			if la > lb {
				la, lb = lb, la
			}
			t := s.types[typeKey{la, h.Label, lb}]
			s.avail2[t]--
			retired = append(retired, t)
		}
	}
	return retired
}

func (s *solver) release(v2 int, retired []int) {
	for _, t := range retired {
		s.avail2[t]++
	}
	s.used[v2] = false
}

func (s *solver) search(depth int) bool {
	s.nodes++
	if s.opt.MaxNodes > 0 && s.nodes > s.opt.MaxNodes {
		s.budgetHit = true
		return true // abort
	}
	if s.cur > s.best {
		s.best = s.cur
		copy(s.bestMap, s.core)
	}
	if depth == len(s.order) {
		return false
	}
	// Per-label-type capacity bound.
	if s.upperBound(depth) <= s.best {
		return false
	}
	v1 := s.order[depth]
	l1 := s.g1.VertexLabel(v1)

	// Try mapping v1 to each compatible unused g2 vertex, preferring
	// candidates that immediately match more edges.
	type cand struct{ v2, gain int }
	var cands []cand
	for v2 := 0; v2 < s.g2.N(); v2++ {
		if s.used[v2] || s.g2.VertexLabel(v2) != l1 {
			continue
		}
		cands = append(cands, cand{v2, s.gain(v1, v2)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })

	for _, c := range cands {
		s.core[v1] = c.v2
		retired := s.occupy(c.v2)
		s.cur += c.gain
		if s.search(depth + 1) {
			return true
		}
		s.cur -= c.gain
		s.release(c.v2, retired)
		s.core[v1] = -1
	}
	// Also try leaving v1 unmapped.
	return s.search(depth + 1)
}

// gain counts the edges from v1 to already-mapped g1 vertices that are
// preserved (same edge label) when v1 is mapped to v2.
func (s *solver) gain(v1, v2 int) int {
	g := 0
	for _, h := range s.g1.Neighbors(v1) {
		m := s.core[h.To]
		if m < 0 {
			continue
		}
		if l, ok := s.g2.EdgeLabel(v2, m); ok && l == h.Label {
			g++
		}
	}
	return g
}
