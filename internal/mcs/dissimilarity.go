package mcs

import (
	"context"
	"sync"

	"repro/internal/graph"
	"repro/internal/pool"
)

// Metric selects one of the paper's two MCS-based dissimilarities.
type Metric int

const (
	// Delta1 is Eq. (1): normalized by the larger graph (Bunke–Shearer).
	Delta1 Metric = iota
	// Delta2 is Eq. (2): normalized by the average graph size; the
	// experiments in the paper use this metric.
	Delta2
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Delta1:
		return "delta1"
	case Delta2:
		return "delta2"
	}
	return "unknown"
}

// FromMCS computes the dissimilarity given |E(mcs)| and the two edge
// counts, without running a search. Both metrics are in [0,1]; two empty
// graphs are defined to have dissimilarity 0.
func (m Metric) FromMCS(mcsEdges, e1, e2 int) float64 {
	switch m {
	case Delta1:
		mx := e1
		if e2 > mx {
			mx = e2
		}
		if mx == 0 {
			return 0
		}
		return 1 - float64(mcsEdges)/float64(mx)
	case Delta2:
		if e1+e2 == 0 {
			return 0
		}
		return 1 - 2*float64(mcsEdges)/float64(e1+e2)
	}
	panic("mcs: unknown metric")
}

// Dissimilarity computes δ(a, b) with an exact MCS search.
func (m Metric) Dissimilarity(a, b *graph.Graph) float64 {
	return m.DissimilarityBudget(a, b, Options{})
}

// DissimilarityBudget computes δ(a, b) with the given search options. With
// a budget the result upper-bounds the true dissimilarity (the matching
// found lower-bounds |E(mcs)|).
func (m Metric) DissimilarityBudget(a, b *graph.Graph, opt Options) float64 {
	r := Compute(a, b, opt)
	return m.FromMCS(r.Edges, a.M(), b.M())
}

// Matrix computes the full pairwise dissimilarity matrix for a graph
// database, exploiting symmetry (δ is symmetric, Section 2). The diagonal
// is zero. opt bounds each individual MCS search. It is the sequential
// form of MatrixWorkers — O(n²) MCS searches on one goroutine.
func (m Metric) Matrix(db []*graph.Graph, opt Options) [][]float64 {
	return m.MatrixWorkers(db, opt, 1)
}

// MatrixWorkers computes the same matrix with a bounded worker pool:
// rows are distributed across at most workers goroutines (workers <= 0
// means one per CPU). Each (i,j) pair is still computed exactly once and
// each MCS search is independent, so the result is identical to Matrix
// for every worker count.
func (m Metric) MatrixWorkers(db []*graph.Graph, opt Options, workers int) [][]float64 {
	d, _ := m.MatrixContext(context.Background(), db, opt, workers, nil)
	return d
}

// MatrixContext is MatrixWorkers with cancellation and optional progress.
// Workers stop picking up new rows once ctx is done and the partial matrix
// is discarded (nil, ctx.Err()). Each MCS pair also checks ctx, so a
// cancelled call returns after at most one in-flight MCS search per
// worker. progress, when non-nil, is called after each completed row with
// (rowsDone, totalRows); calls are serialized, so the callback needs no
// locking of its own.
func (m Metric) MatrixContext(ctx context.Context, db []*graph.Graph, opt Options, workers int,
	progress func(done, total int)) ([][]float64, error) {
	n := len(db)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	var (
		rowsDone   int
		progressMu sync.Mutex
	)
	// Parallelize over rows; row i owns pairs (i, i+1..n-1). Rows shrink
	// toward the end, but the pool hands out indices dynamically so the
	// imbalance costs at most one row's latency.
	err := pool.ForContext(ctx, pool.DefaultWorkers(workers), n, func(i int) {
		for j := i + 1; j < n; j++ {
			if ctx.Err() != nil {
				return
			}
			d[i][j] = m.DissimilarityBudget(db[i], db[j], opt)
		}
		if progress != nil {
			// Count under the same mutex that serializes the callback so
			// reported counts are monotone.
			progressMu.Lock()
			rowsDone++
			progress(rowsDone, n)
			progressMu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			d[i][j] = d[j][i]
		}
	}
	return d, nil
}
