package mcs

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestMatrixWorkersMatchesSequential: the parallel matrix must be
// bit-identical to the sequential one — each pair is an independent
// search, parallelism only changes scheduling.
func TestMatrixWorkersMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	db := make([]*graph.Graph, 12)
	for i := range db {
		db[i] = randomGraph(r, 6, 3, 3)
	}
	opt := Options{MaxNodes: 500}
	want := Delta2.Matrix(db, opt)
	for _, workers := range []int{0, 2, 8} {
		got := Delta2.MatrixWorkers(db, opt, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: matrix differs from sequential", workers)
		}
	}
}
