package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func randomGraph(r *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	g := &graph.Graph{}
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(r.Intn(v), v, graph.Label(r.Intn(labels)))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, graph.Label(r.Intn(labels)))
		}
	}
	return g
}

func kernels() []Kernel {
	return []Kernel{ShortestPath{}, RandomWalk{}}
}

func TestKernelsSymmetric(t *testing.T) {
	for _, k := range kernels() {
		k := k
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a := randomGraph(r, 3+r.Intn(5), r.Intn(4), 2)
			b := randomGraph(r, 3+r.Intn(5), r.Intn(4), 2)
			return math.Abs(k.Compare(a, b)-k.Compare(b, a)) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", k.Name(), err)
		}
	}
}

func TestKernelsNonNegativeSelf(t *testing.T) {
	for _, k := range kernels() {
		k := k
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			g := randomGraph(r, 3+r.Intn(5), r.Intn(4), 3)
			return k.Compare(g, g) >= 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", k.Name(), err)
		}
	}
}

func TestNormalizedSelfIsOne(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, k := range kernels() {
		for i := 0; i < 20; i++ {
			g := randomGraph(r, 4+r.Intn(4), r.Intn(3), 2)
			if v := Normalized(k, g, g); math.Abs(v-1) > 1e-9 {
				t.Errorf("%s: normalized self similarity %v, want 1", k.Name(), v)
			}
		}
	}
}

func TestNormalizedInUnitInterval(t *testing.T) {
	// Cauchy-Schwarz for PSD kernels: normalized value ≤ 1.
	r := rand.New(rand.NewSource(3))
	for _, k := range kernels() {
		for i := 0; i < 30; i++ {
			a := randomGraph(r, 3+r.Intn(5), r.Intn(3), 2)
			b := randomGraph(r, 3+r.Intn(5), r.Intn(3), 2)
			v := Normalized(k, a, b)
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s: normalized value %v outside [0,1]", k.Name(), v)
			}
		}
	}
}

func TestShortestPathKnown(t *testing.T) {
	// Path of 3 unlabeled vertices: pairs (0,1,d1),(1,2,d1),(0,2,d2) →
	// feature map {(0,0,1):2, (0,0,2):1}; self kernel = 4+1 = 5.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 0)
	if got := (ShortestPath{}).Compare(g, g); got != 5 {
		t.Errorf("shortest-path self kernel = %v, want 5", got)
	}
}

func TestRandomWalkDisjointLabels(t *testing.T) {
	// No common vertex labels → empty product graph → kernel 0.
	a := &graph.Graph{}
	a.AddVertex(1)
	b := &graph.Graph{}
	b.AddVertex(2)
	if got := (RandomWalk{}).Compare(a, b); got != 0 {
		t.Errorf("disjoint-label kernel = %v, want 0", got)
	}
}

func TestRandomWalkGrowsWithSharedStructure(t *testing.T) {
	// A triangle shares more walks with a triangle than with a single
	// edge (same labels everywhere).
	tri := graph.New(3)
	tri.MustAddEdge(0, 1, 0)
	tri.MustAddEdge(1, 2, 0)
	tri.MustAddEdge(0, 2, 0)
	edge := graph.New(2)
	edge.MustAddEdge(0, 1, 0)
	k := RandomWalk{}
	if k.Compare(tri, tri) <= k.Compare(tri, edge) {
		t.Errorf("triangle-triangle walks should exceed triangle-edge walks")
	}
}

func TestKernelNames(t *testing.T) {
	if (ShortestPath{}).Name() != "shortest-path" || (RandomWalk{}).Name() != "random-walk" {
		t.Errorf("kernel names wrong")
	}
}
