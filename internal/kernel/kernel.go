// Package kernel implements two classic graph kernels from the paper's
// related work (Section 3): the shortest-path kernel of Borgwardt and
// Kriegel (ICDM 2005) and the direct-product random-walk kernel of
// Gärtner et al. / Borgwardt et al. The paper argues kernels "have very
// limited power to capture the topological structure" for DS-preserved
// mapping; the repository includes them so that claim can be checked
// empirically as an extension experiment (kernel similarity as yet
// another top-k engine).
package kernel

import (
	"math"

	"repro/internal/graph"
)

// Kernel computes a similarity score between two graphs. Implementations
// must be symmetric.
type Kernel interface {
	Name() string
	// Compare returns the (unnormalized) kernel value k(a, b).
	Compare(a, b *graph.Graph) float64
}

// Normalized returns the cosine-normalized kernel value
// k(a,b)/sqrt(k(a,a)k(b,b)) ∈ [0,1] for PSD kernels.
func Normalized(k Kernel, a, b *graph.Graph) float64 {
	den := math.Sqrt(k.Compare(a, a) * k.Compare(b, b))
	if den == 0 {
		return 0
	}
	return k.Compare(a, b) / den
}

// ---- Shortest-path kernel ----

// ShortestPath is the shortest-path kernel: transform each graph into its
// shortest-path feature map — counts of (label_u, distance, label_v)
// triples over all vertex pairs — and take the dot product.
type ShortestPath struct {
	// MaxDist truncates path lengths (longer distances are bucketed
	// together); zero means 8.
	MaxDist int
}

// Name implements Kernel.
func (ShortestPath) Name() string { return "shortest-path" }

type spKey struct {
	a, b graph.Label
	d    int
}

// featureMap computes the shortest-path histogram of g.
func (k ShortestPath) featureMap(g *graph.Graph) map[spKey]float64 {
	maxd := k.MaxDist
	if maxd == 0 {
		maxd = 8
	}
	out := map[spKey]float64{}
	n := g.N()
	dist := make([]int, n)
	for s := 0; s < n; s++ {
		// BFS from s (unit edge lengths).
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.Neighbors(v) {
				if dist[h.To] < 0 {
					dist[h.To] = dist[v] + 1
					queue = append(queue, h.To)
				}
			}
		}
		for t := s + 1; t < n; t++ {
			if dist[t] < 0 {
				continue
			}
			d := dist[t]
			if d > maxd {
				d = maxd
			}
			la, lb := g.VertexLabel(s), g.VertexLabel(t)
			if la > lb {
				la, lb = lb, la
			}
			out[spKey{la, lb, d}]++
		}
	}
	return out
}

// Compare implements Kernel.
func (k ShortestPath) Compare(a, b *graph.Graph) float64 {
	fa := k.featureMap(a)
	fb := k.featureMap(b)
	if len(fb) < len(fa) {
		fa, fb = fb, fa
	}
	s := 0.0
	for key, va := range fa {
		s += va * fb[key]
	}
	return s
}

// ---- Random-walk kernel ----

// RandomWalk is the geometric random-walk kernel on the direct product
// graph: k(a,b) = Σ_t λ^t · (number of matching walks of length t),
// computed by power iteration x_{t+1} = λ A× x_t on the product graph's
// adjacency, truncated at Steps.
type RandomWalk struct {
	// Lambda is the decay; zero means 0.1. Must satisfy λ < 1/maxdeg for
	// convergence of the untruncated series.
	Lambda float64
	// Steps truncates the series; zero means 6.
	Steps int
}

// Name implements Kernel.
func (RandomWalk) Name() string { return "random-walk" }

// Compare implements Kernel.
func (k RandomWalk) Compare(a, b *graph.Graph) float64 {
	lambda := k.Lambda
	if lambda == 0 {
		lambda = 0.1
	}
	steps := k.Steps
	if steps == 0 {
		steps = 6
	}
	// Product graph vertices: pairs with equal labels.
	type pv struct{ u, v int }
	var nodes []pv
	id := map[pv]int{}
	for u := 0; u < a.N(); u++ {
		for v := 0; v < b.N(); v++ {
			if a.VertexLabel(u) == b.VertexLabel(v) {
				id[pv{u, v}] = len(nodes)
				nodes = append(nodes, pv{u, v})
			}
		}
	}
	if len(nodes) == 0 {
		return 0
	}
	// Product adjacency: edges where both endpoints are product vertices
	// and the edge labels match.
	adj := make([][]int, len(nodes))
	for i, n1 := range nodes {
		for _, ha := range a.Neighbors(n1.u) {
			for _, hb := range b.Neighbors(n1.v) {
				if ha.Label != hb.Label {
					continue
				}
				if j, ok := id[pv{ha.To, hb.To}]; ok {
					adj[i] = append(adj[i], j)
				}
			}
		}
	}
	// Power iteration with uniform start, accumulating Σ λ^t 1ᵀ A^t 1.
	x := make([]float64, len(nodes))
	for i := range x {
		x[i] = 1
	}
	total := 0.0
	scale := 1.0
	for t := 0; t < steps; t++ {
		for _, v := range x {
			total += scale * v
		}
		next := make([]float64, len(nodes))
		for i := range x {
			for _, j := range adj[i] {
				next[j] += x[i]
			}
		}
		x = next
		scale *= lambda
	}
	return total
}
