package fingerprint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/vecspace"
)

func TestComputeDeterministic(t *testing.T) {
	db := dataset.Chemical(dataset.ChemConfig{N: 5, Seed: 1})
	for _, g := range db {
		a, b := Compute(g), Compute(g)
		if a.HammingDistance(b) != 0 {
			t.Fatalf("fingerprint not deterministic")
		}
	}
}

func TestComputeDimension(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 0)
	fp := Compute(g)
	if fp.Len() != Bits {
		t.Fatalf("fingerprint length %d, want %d", fp.Len(), Bits)
	}
	if fp.Ones() == 0 {
		t.Errorf("non-empty graph produced empty fingerprint")
	}
}

func TestTanimotoProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := dataset.Chemical(dataset.ChemConfig{N: 2, Seed: seed})
		a, b := Compute(db[0]), Compute(db[1])
		tab := Tanimoto(a, b)
		if tab < 0 || tab > 1 {
			return false
		}
		if Tanimoto(a, a) != 1 {
			return false
		}
		_ = r
		return math.Abs(Tanimoto(a, b)-Tanimoto(b, a)) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTanimotoEmpty(t *testing.T) {
	a := vecspace.NewBitVector(Bits)
	b := vecspace.NewBitVector(Bits)
	if Tanimoto(a, b) != 1 {
		t.Errorf("two empty fingerprints should have similarity 1")
	}
	c := vecspace.NewBitVector(Bits)
	c.Set(3)
	if Tanimoto(a, c) != 0 {
		t.Errorf("empty vs non-empty should be 0")
	}
}

func TestSimilarMoleculesScoreHigher(t *testing.T) {
	// A molecule and its one-atom-removed variant must, in aggregate,
	// score higher than the molecule against unrelated molecules.
	db := dataset.Chemical(dataset.ChemConfig{N: 40, Seed: 10})
	nearSum, farSum := 0.0, 0.0
	cnt := 0
	for i := 0; i+1 < len(db); i += 2 {
		g := db[i]
		// Drop the last vertex (a grown substituent) to get a close variant.
		vs := make([]int, 0, g.N()-1)
		for v := 0; v < g.N()-1; v++ {
			vs = append(vs, v)
		}
		variant, _ := g.InducedSubgraph(vs)
		nearSum += Tanimoto(Compute(g), Compute(variant))
		farSum += Tanimoto(Compute(g), Compute(db[i+1]))
		cnt++
	}
	if nearSum/float64(cnt) <= farSum/float64(cnt) {
		t.Errorf("near-variant Tanimoto %v not above unrelated %v",
			nearSum/float64(cnt), farSum/float64(cnt))
	}
}

func TestIsomorphicGraphsShareFingerprint(t *testing.T) {
	// Fingerprints are graph invariants: relabeling vertices must not
	// change them.
	r := rand.New(rand.NewSource(6))
	db := dataset.Chemical(dataset.ChemConfig{N: 20, Seed: 6})
	for _, g := range db {
		perm := r.Perm(g.N())
		inv := make([]int, g.N())
		for newID, oldID := range perm {
			inv[oldID] = newID
		}
		h := &graph.Graph{}
		lbl := make([]graph.Label, g.N())
		for old := 0; old < g.N(); old++ {
			lbl[inv[old]] = g.VertexLabel(old)
		}
		for _, l := range lbl {
			h.AddVertex(l)
		}
		for _, e := range g.Edges() {
			h.MustAddEdge(inv[e.U], inv[e.V], e.Label)
		}
		if Compute(g).HammingDistance(Compute(h)) != 0 {
			t.Fatalf("permuted molecule has different fingerprint")
		}
	}
}
