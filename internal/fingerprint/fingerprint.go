// Package fingerprint implements a dictionary-based binary structural
// fingerprint in the style of the PubChem 881-bit substructure fingerprint
// the paper uses as its evaluation benchmark (Section 6, Measures), plus
// the Tanimoto similarity the PubChem search ranks by.
//
// Substitution note (DESIGN.md §3): the real PubChem dictionary is a
// curated list of SMARTS keys; this surrogate uses the same three key
// families — element/bond count thresholds, ring counts, and labeled path
// keys — hashed into a fixed 881-bit layout. The evaluation only needs a
// fixed, deterministic, expert-style ranking to normalize the quality
// measures against, which any such dictionary provides.
package fingerprint

import (
	"hash/fnv"

	"repro/internal/graph"
	"repro/internal/vecspace"
)

// Bits is the fingerprint dimensionality, matching PubChem's dictionary.
const Bits = 881

// countKeys is the number of low bits reserved for counting keys; the
// remaining bits hold hashed path keys.
const countKeys = 120

// Compute returns the fingerprint of g.
func Compute(g *graph.Graph) *vecspace.BitVector {
	v := vecspace.NewBitVector(Bits)
	setCountKeys(g, v)
	setPathKeys(g, v)
	return v
}

// ComputeAll fingerprints a whole database.
func ComputeAll(db []*graph.Graph) []*vecspace.BitVector {
	out := make([]*vecspace.BitVector, len(db))
	for i, g := range db {
		out[i] = Compute(g)
	}
	return out
}

// Tanimoto returns |A ∩ B| / |A ∪ B| for two fingerprints (1 when both
// are empty, matching the chemoinformatics convention for identical
// nulls).
func Tanimoto(a, b *vecspace.BitVector) float64 {
	inter := a.IntersectionSize(b)
	union := a.Ones() + b.Ones() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// setCountKeys sets threshold bits for element counts, bond-label counts,
// ring counts and degree statistics — the "counting" section of the
// PubChem dictionary.
func setCountKeys(g *graph.Graph, v *vecspace.BitVector) {
	vertexCounts, edgeCounts := g.LabelHistogram()
	bit := 0
	set := func(cond bool) {
		if cond && bit < countKeys {
			v.Set(bit)
		}
		bit++
	}
	// Element count thresholds: labels 0..7, thresholds 1,2,4,8.
	for l := graph.Label(0); l < 8; l++ {
		c := vertexCounts[l]
		for _, th := range []int{1, 2, 4, 8} {
			set(c >= th)
		}
	}
	// Bond label thresholds: labels 0..3, thresholds 1,2,4,8.
	for l := graph.Label(0); l < 4; l++ {
		c := edgeCounts[l]
		for _, th := range []int{1, 2, 4, 8} {
			set(c >= th)
		}
	}
	// Cyclomatic number (ring count) thresholds.
	rings := g.M() - g.N() + len(g.Components())
	for _, th := range []int{1, 2, 3} {
		set(rings >= th)
	}
	// Degree statistics.
	deg3, deg4 := 0, 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) >= 3 {
			deg3++
		}
		if g.Degree(u) >= 4 {
			deg4++
		}
	}
	for _, th := range []int{1, 2, 4} {
		set(deg3 >= th)
	}
	for _, th := range []int{1, 2} {
		set(deg4 >= th)
	}
	// Size thresholds.
	for _, th := range []int{5, 10, 15, 20} {
		set(g.N() >= th)
	}
	for _, th := range []int{5, 10, 15, 20, 25} {
		set(g.M() >= th)
	}
}

// setPathKeys hashes every labeled path of length 2 and 3 (canonical
// direction) into the upper bit range — the "substructure key" section.
func setPathKeys(g *graph.Graph, v *vecspace.BitVector) {
	hashKey := func(parts ...graph.Label) {
		h := fnv.New32a()
		var buf [4]byte
		for _, p := range parts {
			buf[0] = byte(p)
			buf[1] = byte(p >> 8)
			buf[2] = byte(p >> 16)
			buf[3] = byte(p >> 24)
			h.Write(buf[:])
		}
		bit := countKeys + int(h.Sum32()%(Bits-countKeys))
		v.Set(bit)
	}
	// Length-2 paths: (la, lab, lb) with canonical orientation.
	for _, e := range g.Edges() {
		la, lb := g.VertexLabel(e.U), g.VertexLabel(e.V)
		if la > lb {
			la, lb = lb, la
		}
		hashKey(0, la, e.Label, lb)
	}
	// Length-3 paths a-b-c through every middle vertex b.
	for b := 0; b < g.N(); b++ {
		nbrs := g.Neighbors(b)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				ha, hc := nbrs[i], nbrs[j]
				la, lab := g.VertexLabel(ha.To), ha.Label
				lc, lbc := g.VertexLabel(hc.To), hc.Label
				// Canonical direction: lexicographically smaller end first.
				if la > lc || (la == lc && lab > lbc) {
					la, lc = lc, la
					lab, lbc = lbc, lab
				}
				hashKey(1, la, lab, g.VertexLabel(b), lbc, lc)
			}
		}
	}
}
