// Package wal implements the per-collection segmented write-ahead log
// behind graphdim's durable stores. Online mutations (add and remove
// batches) append a binary record — framed with a sequence number and a
// CRC32 — to an append-only segment file and fsync before the write is
// acknowledged, so a process kill at any instant loses at most the
// record whose fsync had not yet returned. Checkpoints (full on-disk
// snapshots taken by the store) truncate the log by deleting every
// segment whose records the snapshot covers; crash recovery replays the
// surviving tail over the last checkpoint.
//
// # On-disk layout
//
// A log is a directory of segment files named seg-<first>.wal, where
// <first> is the zero-padded sequence number of the first record the
// segment holds. Each segment starts with the 8-byte magic "GWALSEG1"
// followed by zero or more records:
//
//	seq      uvarint — 1-based, strictly consecutive across the log
//	type     1 byte (add = 1, remove = 2, applied = 3)
//	len      uvarint — payload length in bytes
//	payload  len bytes (see Record)
//	crc32    IEEE checksum of the seq|type|len|payload bytes, LE
//
// Appends go to the last (active) segment; when it outgrows
// Options.SegmentBytes the log rolls to a fresh segment. Concurrent
// Append calls group-commit: the first caller in becomes the leader,
// drains every record queued behind it, writes all their frames in one
// write, and issues a single fsync that commits the whole group — so N
// concurrent writers pay ~one fsync between them instead of N (see
// Append). The framing is
// torn-tail tolerant: a record cut mid-write by a crash fails its length
// or checksum on the next Open, which truncates the segment back to the
// last intact record — exactly the prefix whose fsyncs had completed.
// Corruption in any non-final segment is data loss and reported as an
// error rather than skipped. Within the final segment the first invalid
// frame necessarily ends recovery: without trusting record contents
// there is no way to tell a torn write from a flipped bit, so — as in
// most write-ahead logs — anything behind it is dropped with it. The
// exposure is bounded by the checkpoint interval.
//
// A Log assumes a single owner: one process, one *Log per directory.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
)

// ErrTruncated reports that the records a caller asked to read from —
// Replay or StreamFrom with an `after` below the oldest retained
// segment — have been deleted by a checkpoint. A replica seeing this
// cannot catch up from the log and must re-bootstrap from a snapshot.
var ErrTruncated = errors.New("wal: records truncated by checkpoint")

const (
	segMagic   = "GWALSEG1"
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	segNameLen = len(segPrefix) + 20 + len(segSuffix)

	// DefaultSegmentBytes is the roll threshold when Options.SegmentBytes
	// is zero.
	DefaultSegmentBytes = 64 << 20

	// maxPayload bounds a record's declared payload length so a corrupt
	// frame cannot force a huge allocation before its checksum is seen.
	maxPayload = 1 << 30

	// maxID bounds decoded id values: far above any reachable id space,
	// low enough that id arithmetic cannot overflow int64.
	maxID = 1 << 56
)

// Type identifies a record's kind.
type Type byte

const (
	// TypeAdd is a batch of graphs appended with consecutive ids
	// First..First+len(Graphs)-1.
	TypeAdd Type = 1
	// TypeRemove is a batch of id tombstones.
	TypeRemove Type = 2
	// TypeApplied amends the immediately preceding TypeAdd record after a
	// partial or failed apply: only IDs (a subset of the batch, possibly
	// empty) actually landed. Replay applies just that subset — an empty
	// subset voids the batch entirely.
	TypeApplied Type = 3
)

// Record is one logged mutation.
type Record struct {
	// Seq is the record's 1-based sequence number; assigned by Append,
	// populated on replay.
	Seq uint64
	// Type selects which of the remaining fields are meaningful.
	Type Type
	// First is the first global id of the batch (TypeAdd, TypeApplied).
	First int
	// Total is the size of the batch a TypeApplied record amends; for
	// TypeAdd it is implied by len(Graphs).
	Total int
	// Graphs holds a TypeAdd batch, aligned with ids First+i.
	Graphs []*graph.Graph
	// IDs holds the tombstoned ids (TypeRemove, strictly ascending) or
	// the applied subset (TypeApplied, strictly ascending within
	// [First, First+Total)).
	IDs []int
}

// Options configures Open.
type Options struct {
	// SegmentBytes caps one segment file before the log rolls to a fresh
	// one; zero means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the per-append fsync. Appends then survive a process
	// kill only once the OS flushes on its own — meant for tests and
	// benchmarks, not for serving.
	NoSync bool
	// SyncObserver, when non-nil, is called after every completed fsync
	// with its duration and the number of records the group commit
	// covered. It runs on a committing writer's goroutine with the log
	// locked, so it must be fast, non-blocking, and must not call back
	// into the Log.
	SyncObserver func(d time.Duration, records int)
	// FailSync injects an fsync failure (a test hook for crash-recovery
	// property tests): when non-nil and returning a non-nil error after a
	// sync, the commit is treated as failed — the group's frames are cut
	// back off the file and every caller in it gets the error, exactly as
	// if the fsync itself had failed. Must be safe for concurrent calls.
	FailSync func() error
	// FirstSeq, when > 0, seeds an empty directory so its first record
	// gets this sequence number instead of 1 — a follower bootstrapping
	// from a primary checkpoint at seq N opens its (empty) local log with
	// FirstSeq N+1 so mirrored records keep the primary's numbering. A
	// directory that already holds segments ignores it.
	FirstSeq uint64
}

// Stats is a point-in-time snapshot of a log's counters.
type Stats struct {
	// Appends and Syncs count committed Append calls and the fsyncs they
	// issued. Group commit makes Syncs <= Appends: concurrent appends
	// coalesce into one fsync, and Appends/Syncs is the achieved
	// amortization factor.
	Appends, Syncs int64
	// SyncNanos is the cumulative time spent inside fsync, nanoseconds.
	SyncNanos int64
	// MaxBatch is the largest number of records one fsync has committed.
	MaxBatch int
	// LastSeq is the newest record's sequence number (0 = empty log);
	// CheckpointSeq is the highest sequence a Checkpoint has covered.
	LastSeq, CheckpointSeq uint64
	// Segments and Bytes describe the on-disk footprint.
	Segments int
	Bytes    int64
	// Retained counts registered replication holds (see Retain), and
	// RetainSeq is the lowest acknowledged sequence among them — the
	// position checkpoint truncation is currently clamped to. RetainSeq
	// is meaningless when Retained is zero.
	Retained  int
	RetainSeq uint64
}

type segment struct {
	first uint64 // sequence number of the segment's first record
	path  string
	size  int64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends are serialized internally and group-commit (see Append).
type Log struct {
	dir string
	opt Options

	// qmu guards the group-commit queue. It is only ever held briefly —
	// never across I/O — so enqueueing behind an in-flight fsync is
	// cheap; mu (below) serializes the commits themselves.
	qmu    sync.Mutex
	queue  []*appendWaiter
	leader bool

	mu        sync.Mutex
	segs      []segment // ascending by first; the last one is active
	f         *os.File  // active segment, positioned at its valid end
	seq       uint64    // last appended sequence number
	ckpt      uint64    // highest checkpointed sequence number
	app       int64
	syncs     int64
	syncNanos int64
	maxBatch  int
	closed    bool
	// commitCh is closed and replaced after every committed append, so
	// streaming readers can block until new records exist (see Commits).
	commitCh chan struct{}
	// holds maps a replica id to the highest sequence it has durably
	// acknowledged; Checkpoint never truncates a segment holding records
	// any hold still needs (see Retain).
	holds map[string]uint64
}

// appendWaiter is one Append call queued for group commit: the leader
// assigns seq (or err) and closes done.
type appendWaiter struct {
	rec  Record
	seq  uint64
	err  error
	done chan struct{}
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if len(name) != segNameLen || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (or creates) the log at dir, recovering from whatever a
// previous process left: it scans the newest segment, truncates any torn
// record off its tail, and positions appends after the last intact
// record.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt, commitCh: make(chan struct{}), holds: make(map[string]uint64)}
	for _, e := range entries {
		first, ok := parseSegName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: open %s: %w", dir, err)
		}
		l.segs = append(l.segs, segment{first: first, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	for i := 1; i < len(l.segs); i++ {
		if l.segs[i].first <= l.segs[i-1].first {
			return nil, fmt.Errorf("wal: open %s: duplicate segment %d", dir, l.segs[i].first)
		}
	}
	if len(l.segs) == 0 {
		first := uint64(1)
		if opt.FirstSeq > 0 {
			first = opt.FirstSeq
		}
		if err := l.createSegment(first); err != nil {
			return nil, err
		}
		l.seq = first - 1
		l.ckpt = first - 1
		return l, nil
	}
	// Recover the active (newest) segment: find the last intact record
	// and cut any torn tail behind it.
	active := &l.segs[len(l.segs)-1]
	lastSeq, validEnd, err := scanSegment(active.path, active.first)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	if validEnd < active.size || validEnd < int64(len(segMagic)) {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: open %s: truncating torn tail: %w", dir, err)
		}
		if validEnd < int64(len(segMagic)) {
			// Even the header was torn: rewrite it so the segment stays
			// replayable.
			if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: open %s: %w", dir, err)
			}
			validEnd = int64(len(segMagic))
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: open %s: %w", dir, err)
		}
		active.size = validEnd
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l.f = f
	l.seq = lastSeq
	l.ckpt = l.segs[0].first - 1
	return l, nil
}

// scanSegment walks path's records, validating frames and sequence
// continuity from first, and returns the last intact sequence number
// (first-1 if the segment holds none) plus the byte offset just past the
// last intact record. A missing or short magic header counts as an empty
// (torn) segment.
func scanSegment(path string, first uint64) (lastSeq uint64, validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	cr := &crcReader{br: bufio.NewReader(f)}
	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil || !bytes.Equal(magic[:], []byte(segMagic)) {
		// Too short to even hold the header, or a foreign file: treat the
		// whole segment as torn. The caller rewrites from offset 0... but
		// the header must survive, so report the header itself as the
		// valid extent only when intact.
		if err == nil {
			return 0, 0, fmt.Errorf("%s: bad segment magic", filepath.Base(path))
		}
		return first - 1, 0, nil
	}
	lastSeq = first - 1
	validEnd = int64(len(segMagic))
	expect := first
	for {
		rec, err := readRecord(cr)
		if err != nil {
			// io.EOF, a short frame, a checksum mismatch, garbage counts:
			// everything past validEnd is a torn tail. (A clean EOF lands
			// here too, with validEnd already at the file's end.)
			return lastSeq, validEnd, nil
		}
		if rec.Seq != expect {
			return lastSeq, validEnd, nil
		}
		expect++
		lastSeq = rec.Seq
		validEnd = cr.n
	}
}

// createSegment opens a fresh segment whose first record will be seq,
// writes its header, and makes it the active segment.
func (l *Log) createSegment(first uint64) error {
	path := filepath.Join(l.dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if !l.opt.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("wal: creating segment: %w", err)
		}
		SyncDir(l.dir)
	}
	l.f = f
	l.segs = append(l.segs, segment{first: first, path: path, size: int64(len(segMagic))})
	return nil
}

// roll starts a fresh segment for seq+1 and only then retires the old
// one — a failed roll (disk full, FD limit) leaves the log appending to
// the old segment, oversized but fully functional, and the next append
// retries.
func (l *Log) roll() error {
	old := l.f
	if err := l.createSegment(l.seq + 1); err != nil {
		return err
	}
	old.Close()
	return nil
}

// Append frames rec, writes it to the active segment, and — unless the
// log was opened with NoSync — fsyncs before returning, so a returned
// sequence number is durable. On a write or sync error the group's
// frames are cut back off the file (best-effort; a leftover torn frame
// is equally harmless, the next Open truncates it) and nothing is
// committed.
//
// Concurrent Append calls group-commit: each caller queues its record,
// the first caller in becomes the leader and commits everything queued —
// its own record plus every record that arrived while the previous
// fsync was in flight — under one write and one fsync. Every caller
// still returns only once its own record is durable, so the per-record
// guarantee is unchanged; only the fsync cost is shared. A record that
// fails to encode fails alone (it consumes no sequence number); a write
// or sync failure fails the whole group.
func (l *Log) Append(rec Record) (uint64, error) {
	w := &appendWaiter{rec: rec, done: make(chan struct{})}
	l.qmu.Lock()
	l.queue = append(l.queue, w)
	if l.leader {
		// A leader is already draining the queue; it (or its successor
		// batches) will commit w too.
		l.qmu.Unlock()
		<-w.done
		return w.seq, w.err
	}
	l.leader = true
	for len(l.queue) > 0 {
		batch := l.queue
		l.queue = nil
		l.qmu.Unlock()
		l.commitGroup(batch)
		l.qmu.Lock()
	}
	l.leader = false
	l.qmu.Unlock()
	// The leader's own record was in the first batch it committed.
	<-w.done
	return w.seq, w.err
}

// commitGroup writes and fsyncs one batch of queued records as a unit,
// then releases every waiter with its sequence number or the group's
// error.
func (l *Log) commitGroup(batch []*appendWaiter) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		err := fmt.Errorf("wal: log is closed")
		for _, w := range batch {
			w.err = err
			close(w.done)
		}
		return
	}
	// Frame every record. An encode failure is the caller's own bad
	// record: it fails alone, consumes no sequence number, and the rest
	// of the group commits.
	var buf []byte
	committed := batch[:0]
	seq := l.seq
	for _, w := range batch {
		frame, err := encodeFrame(seq+1, w.rec)
		if err != nil {
			w.err = err
			close(w.done)
			continue
		}
		seq++
		w.seq = seq
		buf = append(buf, frame...)
		committed = append(committed, w)
	}
	if len(committed) == 0 {
		return
	}
	if err := l.writeFrames(buf, len(committed)); err != nil {
		for _, w := range committed {
			w.seq = 0
			w.err = err
			close(w.done)
		}
		return
	}
	for _, w := range committed {
		close(w.done)
	}
}

// writeFrames commits one already framed batch of records records to the
// active segment: write, fsync (honouring NoSync and FailSync), then the
// size/seq bookkeeping and the commit broadcast. Called with l.mu held;
// the frames must carry sequence numbers l.seq+1..l.seq+records. On
// error the batch's bytes are cut back off the file (best-effort) and
// nothing is committed.
func (l *Log) writeFrames(buf []byte, records int) error {
	if l.segs[len(l.segs)-1].size >= l.opt.SegmentBytes {
		// A failed roll is not a failed commit: the old segment is still
		// writable, so grow it past the threshold and let a later append
		// retry the roll. If the disk is truly out, the write below
		// reports it.
		_ = l.roll()
	}
	active := &l.segs[len(l.segs)-1]
	off := active.size
	fail := func(err error) error {
		l.f.Truncate(off)
		l.f.Seek(off, io.SeekStart)
		return err
	}
	if _, err := l.f.Write(buf); err != nil {
		return fail(fmt.Errorf("wal: append: %w", err))
	}
	if !l.opt.NoSync {
		start := time.Now()
		err := l.f.Sync()
		if err == nil && l.opt.FailSync != nil {
			err = l.opt.FailSync()
		}
		if err != nil {
			return fail(fmt.Errorf("wal: append: sync: %w", err))
		}
		d := time.Since(start)
		l.syncs++
		l.syncNanos += int64(d)
		if l.opt.SyncObserver != nil {
			l.opt.SyncObserver(d, records)
		}
	}
	active.size = off + int64(len(buf))
	l.seq += uint64(records)
	l.app += int64(records)
	if records > l.maxBatch {
		l.maxBatch = records
	}
	// Wake streaming readers: the records just committed are immutable
	// on disk from here on.
	close(l.commitCh)
	l.commitCh = make(chan struct{})
	return nil
}

// AppendMirror appends records that already carry sequence numbers — a
// follower mirroring a primary's log writes the streamed records under
// the primary's numbering, so both logs stay position-compatible. The
// records must continue the local log exactly (first seq == LastSeq+1,
// strictly consecutive); the whole batch commits under one write and one
// fsync, or not at all.
func (l *Log) AppendMirror(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	var buf []byte
	seq := l.seq
	for _, rec := range recs {
		if rec.Seq != seq+1 {
			return fmt.Errorf("wal: mirror append: record %d does not follow %d", rec.Seq, seq)
		}
		frame, err := encodeFrame(rec.Seq, rec)
		if err != nil {
			return err
		}
		seq++
		buf = append(buf, frame...)
	}
	return l.writeFrames(buf, len(recs))
}

// Commits returns a channel closed when a record commits after this
// call — the wait primitive behind long-polling streams. Callers
// re-check state after the channel fires and call Commits again.
func (l *Log) Commits() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitCh
}

// Retain registers (or updates) a replication hold: the replica named id
// has durably acknowledged every record with sequence <= acked, so
// Checkpoint may not delete a segment holding any record after that.
// Holds are in-memory state — a restarted primary forgets them, and a
// replica whose records were truncated while it was away re-bootstraps
// from a snapshot (Replay and StreamFrom report ErrTruncated).
func (l *Log) Retain(id string, acked uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cur, ok := l.holds[id]; ok && cur > acked {
		return // acks never move backwards
	}
	l.holds[id] = acked
}

// Unretain drops the replica's hold; its segments become reclaimable by
// the next checkpoint.
func (l *Log) Unretain(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.holds, id)
}

// minHold returns the lowest acknowledged sequence across registered
// holds. Called with l.mu held.
func (l *Log) minHold() (uint64, bool) {
	min, ok := uint64(0), false
	for _, acked := range l.holds {
		if !ok || acked < min {
			min, ok = acked, true
		}
	}
	return min, ok
}

// LastSeq returns the newest committed record's sequence number (0 for
// an empty log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Checkpoint tells the log that every record with sequence <= through is
// covered by a durable snapshot elsewhere: segments that hold only such
// records are deleted. If the active segment is fully covered the log
// rolls first, so steady-state checkpointing keeps reclaiming space.
//
// Registered replication holds (Retain) clamp the truncation — never the
// recorded checkpoint position — so a segment an attached replica has
// not acknowledged survives until its ack arrives, at the price of disk.
func (l *Log) Checkpoint(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if through > l.seq {
		through = l.seq
	}
	if through > l.ckpt {
		l.ckpt = through
	}
	reclaim := through
	if min, ok := l.minHold(); ok && min < reclaim {
		reclaim = min
	}
	active := l.segs[len(l.segs)-1]
	if l.seq >= active.first && reclaim == l.seq {
		// The active segment has records and all of them are reclaimable:
		// roll so the loop below can delete it.
		if err := l.roll(); err != nil {
			return err
		}
	}
	for len(l.segs) > 1 && l.segs[1].first-1 <= reclaim {
		if err := os.Remove(l.segs[0].path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: checkpoint: %w", err)
		}
		l.segs = l.segs[1:]
	}
	if !l.opt.NoSync {
		SyncDir(l.dir)
	}
	return nil
}

// Replay streams every committed record with sequence > after, in order,
// to fn; fn returning an error stops the replay and returns that error.
// A torn tail on the newest segment ends the replay silently (those
// bytes were never acknowledged); a broken record anywhere earlier is
// reported as corruption. Asking for records an earlier checkpoint has
// already truncated (after+1 below the oldest segment's first record)
// reports ErrTruncated rather than silently replaying a partial tail.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return fmt.Errorf("wal: log is closed")
	}
	if len(segs) > 0 && after+1 < segs[0].first {
		return fmt.Errorf("wal: replay after %d, but the oldest retained record is %d: %w",
			after, segs[0].first, ErrTruncated)
	}
	for i, sg := range segs {
		lastSeg := i == len(segs)-1
		if !lastSeg && segs[i+1].first <= after+1 {
			continue // every record in sg is <= after
		}
		end, err := replaySegment(sg, lastSeg, after, fn)
		if err != nil {
			return err
		}
		// A non-final segment must run right up to its successor: a short
		// one means records in the middle of the log are gone, which is
		// data loss, not a torn tail.
		if !lastSeg && end != segs[i+1].first {
			return fmt.Errorf("wal: replay: %s ends at record %d, next segment starts at %d",
				filepath.Base(sg.path), end-1, segs[i+1].first)
		}
	}
	return nil
}

// replaySegment streams sg's records to fn and returns the sequence
// number one past the last intact record.
func replaySegment(sg segment, lastSeg bool, after uint64, fn func(Record) error) (uint64, error) {
	f, err := os.Open(sg.path)
	if err != nil {
		return 0, fmt.Errorf("wal: replay: %w", err)
	}
	defer f.Close()
	cr := &crcReader{br: bufio.NewReader(f)}
	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil || !bytes.Equal(magic[:], []byte(segMagic)) {
		if lastSeg && err != nil {
			return sg.first, nil // torn before the first record could land
		}
		return sg.first, fmt.Errorf("wal: replay: %s: bad segment header", filepath.Base(sg.path))
	}
	expect := sg.first
	for {
		rec, err := readRecord(cr)
		if err == io.EOF {
			return expect, nil
		}
		if err != nil || rec.Seq != expect {
			if lastSeg {
				return expect, nil // torn tail: never acknowledged, drop it
			}
			if err == nil {
				err = fmt.Errorf("record %d where %d was expected", rec.Seq, expect)
			}
			return expect, fmt.Errorf("wal: replay: %s: %w", filepath.Base(sg.path), err)
		}
		expect++
		if rec.Seq > after {
			if err := fn(rec); err != nil {
				return expect, err
			}
		}
	}
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Appends:       l.app,
		Syncs:         l.syncs,
		SyncNanos:     l.syncNanos,
		MaxBatch:      l.maxBatch,
		LastSeq:       l.seq,
		CheckpointSeq: l.ckpt,
		Segments:      len(l.segs),
		Retained:      len(l.holds),
	}
	if min, ok := l.minHold(); ok {
		st.RetainSeq = min
	}
	for _, sg := range l.segs {
		st.Bytes += sg.size
	}
	return st
}

// Close closes the active segment file. It does not checkpoint: records
// already fsynced stay on disk for the next Open to replay. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f != nil {
		return l.f.Close()
	}
	return nil
}

// SyncDir fsyncs a directory so file creations, deletions, and renames
// inside it survive a crash. Best-effort: some filesystems reject
// directory fsync. Exported because the store layer's checkpoint path
// needs exactly this primitive.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// LastSeqIn reports the last committed sequence number of the log at
// dir without opening it for writing: segments are only read, torn
// tails are only skipped (never truncated), so it is safe against a
// concurrent live owner of the log and on read-only media. A missing
// directory reports 0.
func LastSeqIn(dir string) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: peek %s: %w", dir, err)
	}
	last, found := uint64(0), false
	for _, e := range entries {
		if first, ok := parseSegName(e.Name()); ok && !e.IsDir() && (!found || first > last) {
			last, found = first, true
		}
	}
	if !found {
		return 0, nil
	}
	seq, _, err := scanSegment(filepath.Join(dir, segName(last)), last)
	if err != nil {
		return 0, fmt.Errorf("wal: peek %s: %w", dir, err)
	}
	return seq, nil
}

// ---- record framing ----

// encodeFrame serializes rec under sequence number seq: header + payload
// + crc32 of everything before the checksum.
func encodeFrame(seq uint64, rec Record) ([]byte, error) {
	payload, err := encodePayload(rec)
	if err != nil {
		return nil, err
	}
	var head [2*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(head[:], seq)
	head[n] = byte(rec.Type)
	n++
	n += binary.PutUvarint(head[n:], uint64(len(payload)))
	frame := make([]byte, 0, n+len(payload)+4)
	frame = append(frame, head[:n]...)
	frame = append(frame, payload...)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(frame))
	return append(frame, sum[:]...), nil
}

func encodePayload(rec Record) ([]byte, error) {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(x uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], x)]) }
	switch rec.Type {
	case TypeAdd:
		if rec.First < 0 {
			return nil, fmt.Errorf("wal: add record with negative first id %d", rec.First)
		}
		if len(rec.Graphs) == 0 {
			return nil, fmt.Errorf("wal: add record with no graphs")
		}
		put(uint64(rec.First))
		put(uint64(len(rec.Graphs)))
		for _, g := range rec.Graphs {
			if err := graph.WriteBinary(&buf, g); err != nil {
				return nil, fmt.Errorf("wal: encoding graph: %w", err)
			}
		}
	case TypeRemove:
		if len(rec.IDs) == 0 {
			return nil, fmt.Errorf("wal: remove record with no ids")
		}
		put(uint64(len(rec.IDs)))
		if err := putAscending(put, rec.IDs); err != nil {
			return nil, err
		}
	case TypeApplied:
		if rec.First < 0 || rec.Total <= 0 || len(rec.IDs) > rec.Total {
			return nil, fmt.Errorf("wal: applied record out of domain (first %d, total %d, %d ids)", rec.First, rec.Total, len(rec.IDs))
		}
		put(uint64(rec.First))
		put(uint64(rec.Total))
		put(uint64(len(rec.IDs)))
		if err := putAscending(put, rec.IDs); err != nil {
			return nil, err
		}
		for _, id := range rec.IDs {
			if id < rec.First || id >= rec.First+rec.Total {
				return nil, fmt.Errorf("wal: applied id %d outside batch [%d,%d)", id, rec.First, rec.First+rec.Total)
			}
		}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
	return buf.Bytes(), nil
}

func putAscending(put func(uint64), ids []int) error {
	prev := -1
	for _, id := range ids {
		if id <= prev {
			return fmt.Errorf("wal: ids not strictly ascending at %d", id)
		}
		if id < 0 {
			return fmt.Errorf("wal: negative id %d", id)
		}
		put(uint64(id))
		prev = id
	}
	return nil
}

// crcReader counts and checksums the bytes the decoder consumes. The
// checksum restarts per record (readRecord resets it), so the trailing
// checksum bytes of one record hashing into the next record's sum does
// not matter.
type crcReader struct {
	br  *bufio.Reader
	sum uint32
	n   int64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.sum = crc32.Update(c.sum, crc32.IEEETable, []byte{b})
		c.n++
	}
	return b, err
}

// readRecord decodes one frame. A clean end of input (EOF before the
// first byte) returns io.EOF; any mid-frame failure — truncation,
// checksum mismatch, garbage counts — returns a non-EOF error the caller
// treats as a torn tail or corruption depending on position.
func readRecord(cr *crcReader) (Record, error) {
	cr.sum = 0
	seq, err := binary.ReadUvarint(cr)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("reading seq: %w", err)
	}
	t, err := cr.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("reading type: %w", graph.NoEOF(err))
	}
	plen, err := binary.ReadUvarint(cr)
	if err != nil {
		return Record{}, fmt.Errorf("reading length: %w", graph.NoEOF(err))
	}
	if plen > maxPayload {
		return Record{}, fmt.Errorf("payload length %d exceeds limit", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(cr, payload); err != nil {
		return Record{}, fmt.Errorf("reading payload: %w", graph.NoEOF(err))
	}
	want := cr.sum
	var sum [4]byte
	if _, err := io.ReadFull(cr, sum[:]); err != nil {
		return Record{}, fmt.Errorf("reading checksum: %w", graph.NoEOF(err))
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return Record{}, fmt.Errorf("record %d: checksum mismatch (file %08x, computed %08x)", seq, got, want)
	}
	rec := Record{Seq: seq, Type: Type(t)}
	if err := decodePayload(&rec, payload); err != nil {
		return Record{}, fmt.Errorf("record %d: %w", seq, err)
	}
	return rec, nil
}

func decodePayload(rec *Record, payload []byte) error {
	br := bytes.NewReader(payload)
	// Counts size allocations and are bounded tightly; ids are values —
	// a production store outgrows 1<<27 ids long before it outgrows the
	// codec — so they get only the don't-overflow-int bound.
	bounded := func(what string, limit uint64) (int, error) {
		x, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("reading %s: %w", what, graph.NoEOF(err))
		}
		if x > limit {
			return 0, fmt.Errorf("%s %d exceeds limit %d", what, x, limit)
		}
		return int(x), nil
	}
	get := func(what string) (int, error) { return bounded(what, graph.MaxBinaryElems) }
	getID := func(what string) (int, error) { return bounded(what, maxID) }
	var err error
	switch rec.Type {
	case TypeAdd:
		if rec.First, err = getID("first id"); err != nil {
			return err
		}
		count, err := get("graph count")
		if err != nil {
			return err
		}
		rec.Graphs = make([]*graph.Graph, 0, min(count, 1<<16))
		for i := 0; i < count; i++ {
			g, err := graph.ReadBinary(br)
			if err != nil {
				return fmt.Errorf("graph %d: %w", i, err)
			}
			rec.Graphs = append(rec.Graphs, g)
		}
		rec.Total = count
	case TypeRemove:
		count, err := get("id count")
		if err != nil {
			return err
		}
		if rec.IDs, err = getAscending(getID, count, 0, -1); err != nil {
			return err
		}
	case TypeApplied:
		if rec.First, err = getID("first id"); err != nil {
			return err
		}
		if rec.Total, err = get("batch total"); err != nil {
			return err
		}
		count, err := get("applied count")
		if err != nil {
			return err
		}
		if count > rec.Total {
			return fmt.Errorf("%d applied ids for a batch of %d", count, rec.Total)
		}
		if rec.IDs, err = getAscending(getID, count, rec.First, rec.First+rec.Total); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	if br.Len() != 0 {
		return fmt.Errorf("%d trailing payload bytes", br.Len())
	}
	return nil
}

// getAscending decodes count strictly ascending ids, each within
// [lo, hi) when hi >= 0.
func getAscending(get func(string) (int, error), count, lo, hi int) ([]int, error) {
	if count == 0 {
		return nil, nil
	}
	ids := make([]int, 0, min(count, 1<<16))
	prev := -1
	for i := 0; i < count; i++ {
		id, err := get("id")
		if err != nil {
			return nil, err
		}
		if id <= prev {
			return nil, fmt.Errorf("ids not strictly ascending at %d", id)
		}
		if id < lo || (hi >= 0 && id >= hi) {
			return nil, fmt.Errorf("id %d outside [%d,%d)", id, lo, hi)
		}
		ids = append(ids, id)
		prev = id
	}
	return ids, nil
}
