package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// testGraph builds a small distinguishable graph: a path of n vertices
// labeled base, base+1, ...
func testGraph(n int, base int) *graph.Graph {
	g := graph.New(0)
	for v := 0; v < n; v++ {
		g.AddVertex(graph.Label(base + v))
	}
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, graph.Label(base))
	}
	return g
}

func mustAppend(t *testing.T, l *Log, rec Record) uint64 {
	t.Helper()
	seq, err := l.Append(rec)
	if err != nil {
		t.Fatalf("Append(%v): %v", rec.Type, err)
	}
	return seq
}

func collect(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(after, func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay(after=%d): %v", after, err)
	}
	return out
}

func sampleRecords() []Record {
	return []Record{
		{Type: TypeAdd, First: 0, Graphs: []*graph.Graph{testGraph(3, 1), testGraph(4, 7)}},
		{Type: TypeRemove, IDs: []int{1}},
		{Type: TypeAdd, First: 2, Graphs: []*graph.Graph{testGraph(2, 3)}},
		{Type: TypeApplied, First: 2, Total: 1, IDs: []int{2}},
		{Type: TypeApplied, First: 3, Total: 4, IDs: nil},
		{Type: TypeRemove, IDs: []int{0, 2}},
	}
}

// assertRecords compares replayed records against the appended ones,
// graphs by their canonical text form.
func assertRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Type != w.Type || g.First != w.First || !reflect.DeepEqual(g.IDs, w.IDs) {
			t.Fatalf("record %d: got {type %d first %d ids %v}, want {type %d first %d ids %v}",
				i, g.Type, g.First, g.IDs, w.Type, w.First, w.IDs)
		}
		if len(g.Graphs) != len(w.Graphs) {
			t.Fatalf("record %d: %d graphs, want %d", i, len(g.Graphs), len(w.Graphs))
		}
		for j := range w.Graphs {
			if g.Graphs[j].String() != w.Graphs[j].String() {
				t.Fatalf("record %d graph %d:\ngot  %s\nwant %s", i, j, g.Graphs[j], w.Graphs[j])
			}
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for i, rec := range want {
		if seq := mustAppend(t, l, rec); seq != uint64(i+1) {
			t.Fatalf("record %d got seq %d", i, seq)
		}
	}
	assertRecords(t, collect(t, l, 0), want)
	assertRecords(t, collect(t, l, 4), want[4:])
	if st := l.Stats(); st.Appends != int64(len(want)) || st.LastSeq != uint64(len(want)) || st.Syncs != st.Appends {
		t.Fatalf("stats after append: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, appends continue the sequence.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != uint64(len(want)) {
		t.Fatalf("reopened LastSeq = %d, want %d", l2.LastSeq(), len(want))
	}
	assertRecords(t, collect(t, l2, 0), want)
	extra := Record{Type: TypeRemove, IDs: []int{5}}
	if seq := mustAppend(t, l2, extra); seq != uint64(len(want)+1) {
		t.Fatalf("append after reopen got seq %d", seq)
	}
	assertRecords(t, collect(t, l2, 0), append(append([]Record(nil), want...), extra))
}

// activeSegment returns the newest segment file in dir.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no segment files")
	}
	return filepath.Join(dir, newest)
}

func TestTornTailRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"truncated-mid-record", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage-appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x17, 0x99, 0x01, 0xfe, 0x03}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := sampleRecords()
			for _, rec := range want {
				mustAppend(t, l, rec)
			}
			l.Close()
			tc.tear(t, activeSegment(t, dir))

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			// truncated-mid-record loses the final record (its fsync "never
			// returned"); garbage after the final record loses nothing.
			wantLen := len(want)
			if tc.name == "truncated-mid-record" {
				wantLen--
			}
			if l2.LastSeq() != uint64(wantLen) {
				t.Fatalf("LastSeq after tear = %d, want %d", l2.LastSeq(), wantLen)
			}
			assertRecords(t, collect(t, l2, 0), want[:wantLen])
			// The log must keep accepting appends after recovery.
			mustAppend(t, l2, Record{Type: TypeRemove, IDs: []int{9}})
			got := collect(t, l2, 0)
			if len(got) != wantLen+1 || got[len(got)-1].IDs[0] != 9 {
				t.Fatalf("append after recovery: got %d records", len(got))
			}
		})
	}
}

func TestTornHeaderRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a crash right after segment creation: only half the magic
	// made it out.
	path := activeSegment(t, dir)
	if err := os.WriteFile(path, []byte(segMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	mustAppend(t, l2, Record{Type: TypeRemove, IDs: []int{1}})
	if got := collect(t, l2, 0); len(got) != 1 {
		t.Fatalf("got %d records after header recovery", len(got))
	}
}

func TestSegmentRollAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every couple of records rolls a new file.
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		rec := Record{Type: TypeRemove, IDs: []int{i}}
		want = append(want, rec)
		mustAppend(t, l, rec)
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected several segments at 64-byte roll threshold, got %d", st.Segments)
	}
	assertRecords(t, collect(t, l, 0), want)

	// Checkpoint through the middle: early segments go away, every record
	// after the checkpoint stays replayable.
	if err := l.Checkpoint(10); err != nil {
		t.Fatal(err)
	}
	st2 := l.Stats()
	if st2.Segments >= st.Segments {
		t.Fatalf("checkpoint(10) kept all %d segments", st2.Segments)
	}
	if st2.CheckpointSeq != 10 {
		t.Fatalf("CheckpointSeq = %d, want 10", st2.CheckpointSeq)
	}
	assertRecords(t, collect(t, l, 10), want[10:])

	// Checkpoint through everything: the active segment rolls so the log
	// shrinks to one empty segment.
	if err := l.Checkpoint(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if st3 := l.Stats(); st3.Segments != 1 {
		t.Fatalf("full checkpoint left %d segments", st3.Segments)
	}
	if got := collect(t, l, l.Stats().CheckpointSeq); len(got) != 0 {
		t.Fatalf("replay after full checkpoint returned %d records", len(got))
	}

	// The sequence keeps climbing across the checkpoint, including after
	// a reopen.
	seqBefore := l.LastSeq()
	mustAppend(t, l, Record{Type: TypeRemove, IDs: []int{99}})
	l.Close()
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != seqBefore+1 {
		t.Fatalf("LastSeq after reopen = %d, want %d", l2.LastSeq(), seqBefore+1)
	}
	got := collect(t, l2, seqBefore)
	if len(got) != 1 || got[0].IDs[0] != 99 {
		t.Fatalf("post-checkpoint record lost: %v", got)
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, l, Record{Type: TypeRemove, IDs: []int{i}})
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("need several segments, got %d", l.Stats().Segments)
	}
	l.Close()

	// Flip a byte in the FIRST segment: that is data loss in the middle
	// of the log, which replay must refuse to paper over.
	entries, _ := os.ReadDir(dir)
	firstSeg := ""
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok && (firstSeg == "" || e.Name() < firstSeg) {
			firstSeg = e.Name()
		}
	}
	path := filepath.Join(dir, firstSeg)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay over mid-log corruption succeeded; want an error")
	} else if !strings.Contains(err.Error(), "replay") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, rec := range []Record{
		{Type: TypeAdd, First: -1, Graphs: []*graph.Graph{testGraph(2, 0)}},
		{Type: TypeAdd, First: 0},
		{Type: TypeRemove},
		{Type: TypeRemove, IDs: []int{3, 3}},
		{Type: TypeRemove, IDs: []int{5, 2}},
		{Type: TypeApplied, First: 0, Total: 0},
		{Type: TypeApplied, First: 2, Total: 2, IDs: []int{1}},
		{Type: Type(42)},
	} {
		if _, err := l.Append(rec); err == nil {
			t.Errorf("Append(%+v) succeeded; want validation error", rec)
		}
	}
	if l.LastSeq() != 0 {
		t.Fatalf("rejected records moved the sequence to %d", l.LastSeq())
	}
}

func TestReplayAfterSkipsSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 30; i++ {
		mustAppend(t, l, Record{Type: TypeRemove, IDs: []int{i}})
	}
	for _, after := range []uint64{0, 1, 7, 15, 29, 30, 31} {
		got := collect(t, l, after)
		wantLen := 0
		if after < 30 {
			wantLen = int(30 - after)
		}
		if len(got) != wantLen {
			t.Fatalf("Replay(after=%d) returned %d records, want %d", after, len(got), wantLen)
		}
		if wantLen > 0 && got[0].Seq != after+1 {
			t.Fatalf("Replay(after=%d) starts at seq %d", after, got[0].Seq)
		}
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Record{Type: TypeRemove, IDs: []int{1}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(Record{Type: TypeRemove, IDs: []int{2}}); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Checkpoint(1); err == nil {
		t.Fatal("Checkpoint on closed log succeeded")
	}
	if err := l.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("Replay on closed log succeeded")
	}
}

// TestBitFlipRecovery flips every byte of a single-segment log, one at a
// time, and requires Open to recover a clean prefix of the original
// records: corruption may cost the tail, never produce garbage records
// or a failed open.
func TestBitFlipRecovery(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		mustAppend(t, l, rec)
	}
	l.Close()
	data, err := os.ReadFile(activeSegment(t, master))
	if err != nil {
		t.Fatal(err)
	}

	for off := len(segMagic); off < len(data); off++ {
		dir := t.TempDir()
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x5b
		if err := os.WriteFile(filepath.Join(dir, segName(1)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("offset %d: Open over bit flip failed: %v", off, err)
		}
		got := collect(t, l2, 0)
		if len(got) > len(want) {
			t.Fatalf("offset %d: %d records from a %d-record log", off, len(got), len(want))
		}
		assertRecords(t, got, want[:len(got)])
		// Recovery must leave an appendable log.
		if _, err := l2.Append(Record{Type: TypeRemove, IDs: []int{123}}); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", off, err)
		}
		l2.Close()
	}
}

// TestForeignFilesIgnored: Open must skip files that are not segments
// and directories that merely look like them.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-zz.wal"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, segName(7)), 0o755); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, Record{Type: TypeRemove, IDs: []int{1}})
	if got := collect(t, l, 0); len(got) != 1 {
		t.Fatalf("got %d records", len(got))
	}
}

// TestCheckpointClampsBeyondLastSeq: a checkpoint request past the end
// of the log covers exactly the log.
func TestCheckpointClampsBeyondLastSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, Record{Type: TypeRemove, IDs: []int{1}})
	if err := l.Checkpoint(999); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.CheckpointSeq != 1 || st.Segments != 1 {
		t.Fatalf("stats after clamped checkpoint: %+v", st)
	}
}
