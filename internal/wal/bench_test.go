package wal

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

func benchGraphs(n int) []*graph.Graph {
	gs := make([]*graph.Graph, n)
	for i := range gs {
		gs[i] = testGraphB(12, i)
	}
	return gs
}

func testGraphB(n, base int) *graph.Graph {
	g := graph.New(0)
	for v := 0; v < n; v++ {
		g.AddVertex(graph.Label((base + v) % 7))
	}
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, graph.Label(base%3))
	}
	return g
}

// BenchmarkWALAppend measures one committed add-batch append — the
// latency the WAL puts on the write path. The sync variant pays the
// fsync a durable commit costs; nosync isolates the framing + write.
func BenchmarkWALAppend(b *testing.B) {
	batch := benchGraphs(8)
	for _, mode := range []struct {
		name   string
		noSync bool
	}{{"sync", false}, {"nosync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{NoSync: mode.noSync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(Record{Type: TypeAdd, First: i * len(batch), Graphs: batch}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupCommit measures the append path under concurrency —
// the case group commit exists for. serial is the baseline (every
// append pays its own fsync); parallel lets RunParallel's goroutines
// coalesce, and records/fsync reports the achieved amortization.
func BenchmarkGroupCommit(b *testing.B) {
	batch := benchGraphs(4)
	b.Run("serial", func(b *testing.B) {
		l, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Append(Record{Type: TypeAdd, First: i * len(batch), Graphs: batch}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := l.Stats()
		b.ReportMetric(float64(st.Appends)/float64(max64(st.Syncs, 1)), "records/fsync")
	})
	b.Run("parallel", func(b *testing.B) {
		l, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		b.SetParallelism(4)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := l.Append(Record{Type: TypeAdd, First: i * len(batch), Graphs: batch}); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
		b.StopTimer()
		st := l.Stats()
		b.ReportMetric(float64(st.Appends)/float64(max64(st.Syncs, 1)), "records/fsync")
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkRecoverReplay measures Open (torn-tail scan) plus a full
// Replay of a log of add batches — the recovery cost a crashed server
// pays per logged record before it can serve again.
func BenchmarkRecoverReplay(b *testing.B) {
	for _, records := range []int{64, 512} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{NoSync: true, SegmentBytes: 64 << 10})
			if err != nil {
				b.Fatal(err)
			}
			batch := benchGraphs(8)
			for i := 0; i < records; i++ {
				if _, err := l.Append(Record{Type: TypeAdd, First: i * len(batch), Graphs: batch}); err != nil {
					b.Fatal(err)
				}
			}
			l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, err := Open(dir, Options{NoSync: true, SegmentBytes: 64 << 10})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				if err := l.Replay(0, func(rec Record) error { n++; return nil }); err != nil {
					b.Fatal(err)
				}
				if n != records {
					b.Fatalf("replayed %d of %d records", n, records)
				}
				l.Close()
			}
		})
	}
}
