package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/graph"
)

// tinySeg opens a log whose segments roll after every record, so a few
// appends produce a multi-segment layout.
func tinySeg(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func addRec(i int) Record {
	return Record{Type: TypeAdd, First: i * 10, Graphs: []*graph.Graph{testGraph(3, i)}}
}

// TestReplayAfterLastSeqOfSegment pins the exact-boundary edge: replay
// with `after` equal to the last record of each segment must deliver
// exactly the records behind it, never duplicate the boundary record,
// and never report corruption.
func TestReplayAfterLastSeqOfSegment(t *testing.T) {
	dir := t.TempDir()
	l := tinySeg(t, dir)
	defer l.Close()
	const n = 5
	for i := 1; i <= n; i++ {
		mustAppend(t, l, addRec(i))
	}
	// SegmentBytes=1 rolls before every append past the first, so every
	// record sits in its own segment and every `after` value is a
	// segment boundary.
	for after := uint64(0); after <= n+1; after++ {
		got := collect(t, l, after)
		want := int(0)
		if after < n {
			want = n - int(after)
		}
		if len(got) != want {
			t.Fatalf("Replay(after=%d): %d records, want %d", after, len(got), want)
		}
		if want > 0 && got[0].Seq != after+1 {
			t.Fatalf("Replay(after=%d): first record %d, want %d", after, got[0].Seq, after+1)
		}
	}
}

// TestReplayEmptyTailSegment pins the empty-tail edge: a checkpoint
// covering the whole log rolls to a fresh, record-free segment; replay
// from the boundary (and beyond) must succeed and deliver nothing.
func TestReplayEmptyTailSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, addRec(i))
	}
	if err := l.Checkpoint(3); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := collect(t, l, 3); len(got) != 0 {
		t.Fatalf("Replay(after=3) over empty tail segment: %d records, want 0", len(got))
	}
	if got := collect(t, l, 9); len(got) != 0 {
		t.Fatalf("Replay(after=9) past the log: %d records, want 0", len(got))
	}
	// New appends land in the empty tail and replay from the boundary.
	mustAppend(t, l, addRec(4))
	got := collect(t, l, 3)
	if len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("Replay(after=3) after appending into the rolled segment: %+v", got)
	}

	// The same holds across a reopen (Open scans the empty active
	// segment and must still position seq correctly).
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq after reopen = %d, want 4", l2.LastSeq())
	}
	if got := collect(t, l2, 4); len(got) != 0 {
		t.Fatalf("Replay(after=4) after reopen: %d records, want 0", len(got))
	}
}

// TestReplayBelowRetentionIsError: asking for records an earlier
// checkpoint already deleted must fail loudly with ErrTruncated, not
// silently replay a partial tail.
func TestReplayBelowRetentionIsError(t *testing.T) {
	dir := t.TempDir()
	l := tinySeg(t, dir)
	defer l.Close()
	for i := 1; i <= 4; i++ {
		mustAppend(t, l, addRec(i))
	}
	if err := l.Checkpoint(2); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	err := l.Replay(1, func(Record) error { return nil })
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Replay(after=1) below retention: err = %v, want ErrTruncated", err)
	}
	// The boundary itself is still fine: after=2 replays 3, 4.
	if got := collect(t, l, 2); len(got) != 2 {
		t.Fatalf("Replay(after=2): %d records, want 2", len(got))
	}
}

// drain pulls every available record up to upper.
func drain(t *testing.T, s *Stream, upper uint64) []Record {
	t.Helper()
	var out []Record
	for {
		rec, ok, err := s.Next(upper)
		if err != nil {
			t.Fatalf("stream Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

// TestStreamFollowsRollsAndTail: a stream opened at 0 delivers existing
// records across segment rolls, reports caught-up at the tail, then
// resumes as new records commit.
func TestStreamFollowsRollsAndTail(t *testing.T) {
	dir := t.TempDir()
	l := tinySeg(t, dir)
	defer l.Close()
	want := []Record{}
	for i := 1; i <= 4; i++ {
		rec := addRec(i)
		seq := mustAppend(t, l, rec)
		rec.Seq = seq
		want = append(want, rec)
	}
	s := l.StreamFrom(0)
	defer s.Close()
	got := drain(t, s, l.LastSeq())
	assertRecords(t, got, want)

	// Caught up: no record, no error.
	if _, ok, err := s.Next(l.LastSeq()); ok || err != nil {
		t.Fatalf("caught-up Next: ok=%v err=%v", ok, err)
	}

	// New commits become visible, and Commits() wakes a waiter.
	ch := l.Commits()
	seq := mustAppend(t, l, addRec(5))
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Commits channel did not fire after an append")
	}
	got = drain(t, s, l.LastSeq())
	if len(got) != 1 || got[0].Seq != seq {
		t.Fatalf("stream after live append: %+v", got)
	}
}

// TestStreamUpperBound: records beyond the caller's bound stay
// undelivered until the bound advances — the primary uses this to hold
// back records whose application outcome is not yet settled.
func TestStreamUpperBound(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, addRec(i))
	}
	s := l.StreamFrom(0)
	defer s.Close()
	if got := drain(t, s, 2); len(got) != 2 {
		t.Fatalf("bounded drain: %d records, want 2", len(got))
	}
	if got := drain(t, s, 3); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("after raising the bound: %+v", got)
	}
}

// TestStreamResumeAtSegmentBoundary: StreamFrom positioned exactly at a
// segment's last record resumes with the next segment's first record.
func TestStreamResumeAtSegmentBoundary(t *testing.T) {
	dir := t.TempDir()
	l := tinySeg(t, dir)
	defer l.Close()
	for i := 1; i <= 4; i++ {
		mustAppend(t, l, addRec(i))
	}
	for after := uint64(0); after <= 4; after++ {
		s := l.StreamFrom(after)
		got := drain(t, s, l.LastSeq())
		s.Close()
		if len(got) != int(4-after) {
			t.Fatalf("StreamFrom(%d): %d records, want %d", after, len(got), 4-after)
		}
		if len(got) > 0 && got[0].Seq != after+1 {
			t.Fatalf("StreamFrom(%d): first record %d, want %d", after, got[0].Seq, after+1)
		}
	}
}

// TestStreamTruncatedPosition: a stream whose position was checkpointed
// away reports ErrTruncated so the replica knows to re-bootstrap.
func TestStreamTruncatedPosition(t *testing.T) {
	dir := t.TempDir()
	l := tinySeg(t, dir)
	defer l.Close()
	for i := 1; i <= 4; i++ {
		mustAppend(t, l, addRec(i))
	}
	if err := l.Checkpoint(3); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s := l.StreamFrom(0)
	defer s.Close()
	if _, _, err := s.Next(l.LastSeq()); !errors.Is(err, ErrTruncated) {
		t.Fatalf("stream below retention: err = %v, want ErrTruncated", err)
	}
}

// TestRetainClampsCheckpoint: registered holds keep unacknowledged
// segments on disk through checkpoints; releasing (or advancing) the
// hold lets the next checkpoint reclaim them.
func TestRetainClampsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l := tinySeg(t, dir)
	defer l.Close()
	for i := 1; i <= 4; i++ {
		mustAppend(t, l, addRec(i))
	}
	l.Retain("f1", 1)
	l.Retain("f2", 3)
	if err := l.Checkpoint(4); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := l.Stats()
	if st.CheckpointSeq != 4 {
		t.Fatalf("CheckpointSeq = %d, want 4 (holds clamp truncation, not the position)", st.CheckpointSeq)
	}
	if st.Retained != 2 || st.RetainSeq != 1 {
		t.Fatalf("Retained=%d RetainSeq=%d, want 2 and 1", st.Retained, st.RetainSeq)
	}
	// Records 2.. must still replay for the slow follower.
	if got := collect(t, l, 1); len(got) != 3 {
		t.Fatalf("replay after clamped checkpoint: %d records, want 3", len(got))
	}
	// The slow follower acks and the next checkpoint reclaims.
	l.Retain("f1", 4)
	l.Retain("f2", 4)
	if err := l.Checkpoint(4); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := l.Replay(1, func(Record) error { return nil }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("records should be gone after acks advanced: %v", err)
	}
	// Backwards acks are ignored.
	l.Retain("f1", 0)
	if st := l.Stats(); st.RetainSeq != 4 {
		t.Fatalf("RetainSeq after backwards ack = %d, want 4", st.RetainSeq)
	}
	l.Unretain("f1")
	l.Unretain("f2")
	if st := l.Stats(); st.Retained != 0 {
		t.Fatalf("Retained after Unretain = %d, want 0", st.Retained)
	}
}

// TestAppendMirrorRoundTrip: a mirrored log reproduces the source's
// bytes and positions — including across its own reopen — and rejects
// out-of-order records.
func TestAppendMirrorRoundTrip(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src := tinySeg(t, srcDir)
	defer src.Close()
	for i := 1; i <= 5; i++ {
		mustAppend(t, src, addRec(i))
	}
	dst, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatalf("Open dst: %v", err)
	}
	var recs []Record
	s := src.StreamFrom(0)
	for {
		rec, ok, err := s.Next(src.LastSeq())
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	s.Close()
	if err := dst.AppendMirror(recs); err != nil {
		t.Fatalf("AppendMirror: %v", err)
	}
	if dst.LastSeq() != src.LastSeq() {
		t.Fatalf("mirror LastSeq = %d, want %d", dst.LastSeq(), src.LastSeq())
	}
	// A gap is rejected.
	bad := recs[len(recs)-1]
	bad.Seq += 2
	if err := dst.AppendMirror([]Record{bad}); err == nil {
		t.Fatal("AppendMirror accepted a sequence gap")
	}
	dst.Close()
	re, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatalf("reopen mirror: %v", err)
	}
	defer re.Close()
	assertRecords(t, collect(t, re, 0), collect(t, src, 0))
}

// TestOpenFirstSeq: an empty directory seeded with FirstSeq numbers its
// first record there — the bootstrap case where a follower's local log
// continues the primary's numbering after a snapshot at seq N.
func TestOpenFirstSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FirstSeq: 42})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if l.LastSeq() != 41 {
		t.Fatalf("LastSeq = %d, want 41", l.LastSeq())
	}
	rec := addRec(1)
	rec.Seq = 42
	if err := l.AppendMirror([]Record{rec}); err != nil {
		t.Fatalf("AppendMirror: %v", err)
	}
	if got := collect(t, l, 41); len(got) != 1 || got[0].Seq != 42 {
		t.Fatalf("replay from seeded log: %+v", got)
	}
	l.Close()
	// FirstSeq is ignored once segments exist.
	re, err := Open(dir, Options{FirstSeq: 7})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.LastSeq() != 42 {
		t.Fatalf("LastSeq after reopen = %d, want 42", re.LastSeq())
	}
}

// TestFrameCodecRoundTrip: EncodeFrame and FrameReader are the exact
// on-disk framing, envelope reads included.
func TestFrameCodecRoundTrip(t *testing.T) {
	want := sampleRecords()
	var buf bytes.Buffer
	for i, rec := range want {
		rec.Seq = uint64(i + 1)
		frame, err := EncodeFrame(rec)
		if err != nil {
			t.Fatalf("EncodeFrame(%d): %v", i, err)
		}
		buf.Write(frame)
	}
	fr := NewFrameReader(&buf)
	var got []Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("FrameReader.Next: %v", err)
		}
		got = append(got, rec)
	}
	assertRecords(t, got, want)
	if _, err := EncodeFrame(Record{Type: TypeRemove, IDs: []int{1}}); err == nil {
		t.Fatal("EncodeFrame accepted a record without a sequence number")
	}
}
