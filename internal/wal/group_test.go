package wal

import (
	"errors"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// groupSeed mirrors graphdim's equivSeed convention: randomized runs log
// their seed, and GRAPHDIM_EQUIV_SEED replays a failure exactly.
func groupSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("GRAPHDIM_EQUIV_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("GRAPHDIM_EQUIV_SEED=%q: %v", v, err)
		}
		t.Logf("replaying GRAPHDIM_EQUIV_SEED=%d", seed)
		return seed
	}
	seed := time.Now().UnixNano()
	t.Logf("random run; replay with GRAPHDIM_EQUIV_SEED=%d", seed)
	return seed
}

// TestGroupCommitConcurrentAppends races many appenders and checks the
// fundamentals of group commit: every append gets a unique, dense
// sequence number, replay returns all records in sequence order, and the
// observer saw every committed record exactly once.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	const writers, perWriter = 8, 25

	var obsMu sync.Mutex
	var obsRecords, obsSyncs int
	l, err := Open(t.TempDir(), Options{
		SyncObserver: func(d time.Duration, records int) {
			obsMu.Lock()
			obsRecords += records
			obsSyncs++
			obsMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()

	// Each record carries a unique First so replayed records can be
	// matched back to the append that produced them.
	seqs := make([]uint64, writers*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				seq, err := l.Append(Record{Type: TypeAdd, First: id, Graphs: []*graph.Graph{testGraph(2+id%3, id)}})
				if err != nil {
					t.Errorf("Append(%d): %v", id, err)
					return
				}
				seqs[id] = seq
			}
		}(w)
	}
	wg.Wait()

	// Sequence numbers are exactly 1..N, no gaps, no duplicates.
	sorted := append([]uint64(nil), seqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, s := range sorted {
		if s != uint64(i+1) {
			t.Fatalf("sequence numbers not dense: position %d has %d", i, s)
		}
	}

	// Replay yields every record, in sequence order, with First matching
	// the seq that Append reported for it.
	recs := collect(t, l, 0)
	if len(recs) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*perWriter)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("replay out of order: position %d has seq %d", i, rec.Seq)
		}
		if seqs[rec.First] != rec.Seq {
			t.Fatalf("record First=%d replayed at seq %d, appended at %d", rec.First, rec.Seq, seqs[rec.First])
		}
	}

	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Stats.Appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Syncs > st.Appends || st.Syncs <= 0 {
		t.Fatalf("Stats.Syncs = %d, want in [1, %d]", st.Syncs, st.Appends)
	}
	if st.MaxBatch < 1 || st.MaxBatch > writers*perWriter {
		t.Fatalf("Stats.MaxBatch = %d out of range", st.MaxBatch)
	}
	if st.SyncNanos <= 0 {
		t.Fatalf("Stats.SyncNanos = %d, want > 0", st.SyncNanos)
	}
	obsMu.Lock()
	defer obsMu.Unlock()
	if obsRecords != writers*perWriter {
		t.Fatalf("observer saw %d records, want %d", obsRecords, writers*perWriter)
	}
	if int64(obsSyncs) != st.Syncs {
		t.Fatalf("observer saw %d syncs, Stats says %d", obsSyncs, st.Syncs)
	}
}

// TestGroupCommitEncodeFailureIsIsolated checks that one bad record in a
// group fails alone: it consumes no sequence number and the records
// queued around it still commit.
func TestGroupCommitEncodeFailureIsIsolated(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()

	if _, err := l.Append(Record{Type: TypeAdd, First: -1, Graphs: []*graph.Graph{testGraph(2, 0)}}); err == nil {
		t.Fatalf("Append with negative First succeeded, want error")
	}
	seq := mustAppend(t, l, Record{Type: TypeAdd, First: 0, Graphs: []*graph.Graph{testGraph(2, 0)}})
	if seq != 1 {
		t.Fatalf("first good append got seq %d, want 1 (bad record must not consume a seq)", seq)
	}
}

// TestGroupCommitFailSyncFailsGroup injects an fsync failure and checks
// that the failed group commits nothing — no sequence numbers, no bytes
// on disk — and that the log keeps working afterwards.
func TestGroupCommitFailSyncFailsGroup(t *testing.T) {
	var failing bool
	var mu sync.Mutex
	boom := errors.New("injected fsync failure")
	l, err := Open(t.TempDir(), Options{
		FailSync: func() error {
			mu.Lock()
			defer mu.Unlock()
			if failing {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()

	mustAppend(t, l, Record{Type: TypeAdd, First: 0, Graphs: []*graph.Graph{testGraph(3, 1)}})

	mu.Lock()
	failing = true
	mu.Unlock()
	if _, err := l.Append(Record{Type: TypeAdd, First: 1, Graphs: []*graph.Graph{testGraph(3, 2)}}); !errors.Is(err, boom) {
		t.Fatalf("Append under failing fsync: err = %v, want %v", err, boom)
	}
	mu.Lock()
	failing = false
	mu.Unlock()

	// The failed record left nothing behind: the next append reuses its
	// sequence number and replay sees only the two committed records.
	seq := mustAppend(t, l, Record{Type: TypeAdd, First: 2, Graphs: []*graph.Graph{testGraph(3, 3)}})
	if seq != 2 {
		t.Fatalf("append after failed commit got seq %d, want 2", seq)
	}
	recs := collect(t, l, 0)
	if len(recs) != 2 || recs[0].First != 0 || recs[1].First != 2 {
		t.Fatalf("replay after failed commit: got %+v, want Firsts [0 2]", recs)
	}
	if st := l.Stats(); st.Appends != 2 || st.LastSeq != 2 {
		t.Fatalf("Stats after failed commit = %+v, want Appends=2 LastSeq=2", st)
	}
}

// TestGroupCommitCrashRandomized is the group-commit crash property
// test: N goroutines race appends while fsync failures are injected at
// random, then the "process" dies — the file may additionally take a
// torn partial frame, as if a group's write was cut mid-batch. The
// reopened log must replay exactly the acknowledged subset: every acked
// record present, every failed or torn record absent, sequences dense.
func TestGroupCommitCrashRandomized(t *testing.T) {
	seed := groupSeed(t)
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(seed + int64(round)))
		dir := t.TempDir()
		failRate := rng.Float64() * 0.5

		var mu sync.Mutex
		frng := rand.New(rand.NewSource(rng.Int63()))
		l, err := Open(dir, Options{
			SegmentBytes: 1 << 12, // force rolls mid-run
			FailSync: func() error {
				mu.Lock()
				defer mu.Unlock()
				if frng.Float64() < failRate {
					return errors.New("injected fsync failure")
				}
				return nil
			},
		})
		if err != nil {
			t.Fatalf("round %d: Open: %v", round, err)
		}

		// Writers race; acked records are keyed by their unique First.
		const writers, perWriter = 6, 20
		acked := make(map[int]uint64)
		var ackMu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					id := w*perWriter + i
					rec := Record{Type: TypeAdd, First: id, Graphs: []*graph.Graph{testGraph(2+id%4, id)}}
					if id%7 == 0 {
						rec = Record{Type: TypeRemove, First: 0, IDs: []int{id}}
						rec.First = id // keep the unique key even for removes
					}
					seq, err := l.Append(rec)
					if err != nil {
						continue // failed commit: must NOT surface on replay
					}
					ackMu.Lock()
					acked[id] = seq
					ackMu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if err := l.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}

		// Crash cut: on odd rounds, append a torn frame — a valid
		// record's bytes truncated mid-payload, as left by a group whose
		// write was interrupted before its fsync (so never acked).
		if round%2 == 1 {
			frame, err := encodeFrame(uint64(len(acked))+1, Record{Type: TypeAdd, First: 10_000, Graphs: []*graph.Graph{testGraph(5, 9)}})
			if err != nil {
				t.Fatalf("round %d: encodeFrame: %v", round, err)
			}
			cut := 1 + rng.Intn(len(frame)-1)
			seg := activeSegment(t, dir)
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatalf("round %d: open active segment: %v", round, err)
			}
			if _, err := f.Write(frame[:cut]); err != nil {
				t.Fatalf("round %d: tear: %v", round, err)
			}
			f.Close()
		}

		// Recover and compare: exactly the acked set, in dense seq order.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("round %d: reopen: %v", round, err)
		}
		recs := collect(t, l2, 0)
		if len(recs) != len(acked) {
			t.Fatalf("round %d (seed %d): recovered %d records, acked %d", round, seed, len(recs), len(acked))
		}
		for i, rec := range recs {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("round %d (seed %d): replay position %d has seq %d", round, seed, i, rec.Seq)
			}
			key := rec.First
			if rec.Type == TypeRemove {
				key = rec.IDs[0]
			}
			want, ok := acked[key]
			if !ok {
				t.Fatalf("round %d (seed %d): recovered unacked record First=%d seq=%d", round, seed, key, rec.Seq)
			}
			if want != rec.Seq {
				t.Fatalf("round %d (seed %d): record %d acked at seq %d, replayed at %d", round, seed, key, want, rec.Seq)
			}
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("round %d: close recovered log: %v", round, err)
		}
	}
}
