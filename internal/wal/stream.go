package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Stream is an incremental reader over a live log: it delivers committed
// records in sequence order, follows segment rolls, and — unlike Replay —
// can resume past the current tail as new records commit, which is what
// a replication endpoint tails. A Stream never observes uncommitted
// bytes: reads are bounded by the committed segment sizes the log
// publishes after each fsynced group, so a torn or aborted group can
// never be streamed (its bytes are cut back before the size advances).
//
// A Stream is not safe for concurrent use; one goroutine drives it.
// Reading races checkpoint truncation benignly: an already open segment
// keeps serving after its unlink (the fd pins it), and a segment deleted
// before the stream reached it reports ErrTruncated — the reader must
// re-bootstrap from a snapshot. Replication holds (Retain) exist to keep
// that from happening to an attached follower.
type Stream struct {
	l    *Log
	next uint64 // next sequence number to deliver

	f        *os.File
	lim      *io.LimitedReader
	cr       *crcReader
	segFirst uint64 // first seq of the open segment
	fetched  int64  // committed bytes of the open segment made visible
	expect   uint64 // next sequence the decoder should see in this segment
	// exhausted marks a segment fully consumed at its committed size
	// while a wanted record remains: reopening it would loop forever, so
	// open reports corruption instead if no later segment takes over.
	exhausted uint64
}

// StreamFrom returns a stream positioned to deliver the record after
// `after` next.
func (l *Log) StreamFrom(after uint64) *Stream {
	return &Stream{l: l, next: after + 1}
}

// streamSnapshot captures the segment list (with committed sizes) and
// the committed tail position.
func (l *Log) streamSnapshot() (segs []segment, committed uint64, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]segment(nil), l.segs...), l.seq, l.closed
}

// Next returns the next committed record with sequence <= upper. It
// never blocks: when no such record exists yet, ok is false — callers
// long-poll by waiting on Log.Commits (plus whatever signals advance
// their upper bound) and retrying. The error is ErrTruncated when the
// stream's position has been checkpointed away, and a corruption report
// if committed records fail to decode.
func (s *Stream) Next(upper uint64) (rec Record, ok bool, err error) {
	for {
		segs, committed, closed := s.l.streamSnapshot()
		if closed {
			return Record{}, false, fmt.Errorf("wal: stream: log is closed")
		}
		if committed > upper {
			committed = upper
		}
		if s.next > committed {
			return Record{}, false, nil
		}
		if s.f == nil {
			if err := s.open(segs); err != nil {
				return Record{}, false, err
			}
		}
		// Top up the read bound with bytes committed since the segment
		// was opened (only the active segment grows).
		for i := range segs {
			if segs[i].first == s.segFirst && segs[i].size > s.fetched {
				s.lim.N += segs[i].size - s.fetched
				s.fetched = segs[i].size
			}
		}
		rec, err := readRecord(s.cr)
		if err == io.EOF {
			// Clean end of this segment's committed bytes while a wanted
			// record is committed: the record lives in the next segment.
			s.closeSegment()
			s.exhausted = s.segFirst
			continue
		}
		if err != nil {
			return Record{}, false, fmt.Errorf("wal: stream: %s: %w", segName(s.segFirst), err)
		}
		if rec.Seq != s.expect {
			return Record{}, false, fmt.Errorf("wal: stream: %s: record %d where %d was expected",
				segName(s.segFirst), rec.Seq, s.expect)
		}
		s.expect++
		if rec.Seq < s.next {
			continue // skipping toward the resume point
		}
		s.next = rec.Seq + 1
		return rec, true, nil
	}
}

// open positions the stream at the segment holding s.next.
func (s *Stream) open(segs []segment) error {
	idx := -1
	for i := range segs {
		if segs[i].first <= s.next {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("wal: stream at %d, oldest retained record is %d: %w",
			s.next, segs[0].first, ErrTruncated)
	}
	sg := segs[idx]
	if sg.first == s.exhausted {
		return fmt.Errorf("wal: stream: %s ends before committed record %d", segName(sg.first), s.next)
	}
	f, err := os.Open(sg.path)
	if err != nil {
		if os.IsNotExist(err) {
			// Truncated between the snapshot and the open.
			return fmt.Errorf("wal: stream at %d: segment deleted: %w", s.next, ErrTruncated)
		}
		return fmt.Errorf("wal: stream: %w", err)
	}
	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || !bytes.Equal(magic[:], []byte(segMagic)) {
		f.Close()
		return fmt.Errorf("wal: stream: %s: bad segment header", filepath.Base(sg.path))
	}
	s.f = f
	s.segFirst = sg.first
	s.fetched = sg.size
	s.expect = sg.first
	s.exhausted = 0
	s.lim = &io.LimitedReader{R: f, N: sg.size - int64(len(segMagic))}
	s.cr = &crcReader{br: bufio.NewReader(s.lim)}
	return nil
}

func (s *Stream) closeSegment() {
	if s.f != nil {
		s.f.Close()
	}
	s.f, s.lim, s.cr = nil, nil, nil
}

// Close releases the stream's open segment file. The stream stays
// usable afterwards (Next reopens at its position); Close exists so
// abandoned streams do not pin unlinked segments.
func (s *Stream) Close() error {
	s.closeSegment()
	return nil
}

// ---- exported frame codec (replication wire format) ----

// EncodeFrame serializes rec — which must carry its sequence number —
// in the exact on-disk segment framing. The replication stream ships
// records in this encoding, so a follower persists and replays bytes
// identical to the primary's log.
func EncodeFrame(rec Record) ([]byte, error) {
	if rec.Seq == 0 {
		return nil, fmt.Errorf("wal: encode frame: record has no sequence number")
	}
	return encodeFrame(rec.Seq, rec)
}

// FrameReader decodes on-disk record frames from an arbitrary byte
// stream — the follower side of the replication wire format. It also
// exposes the raw byte/uvarint reads the stream envelope around the
// frames needs, so envelope and frames share one buffered reader.
type FrameReader struct {
	cr *crcReader
}

// NewFrameReader wraps r. The reader buffers internally; nothing else
// should read from r afterwards.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{cr: &crcReader{br: bufio.NewReader(r)}}
}

// Next decodes one record frame. A clean end of input before the first
// byte returns io.EOF; anything else that fails mid-frame is an error.
func (fr *FrameReader) Next() (Record, error) {
	return readRecord(fr.cr)
}

// ReadByte reads one raw byte (an envelope tag).
func (fr *FrameReader) ReadByte() (byte, error) {
	return fr.cr.ReadByte()
}

// Uvarint reads one raw uvarint (an envelope field).
func (fr *FrameReader) Uvarint() (uint64, error) {
	return binary.ReadUvarint(fr.cr)
}
