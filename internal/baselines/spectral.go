package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
	"repro/internal/vecspace"
)

// Shared spectral machinery for MCFS, UDFS and NDFS: the data matrix X
// (graphs × features, binary), a k-nearest-neighbour similarity graph
// with heat-kernel weights, and its (normalized) Laplacian.

// dataMatrix materializes the n×m binary matrix Y.
func dataMatrix(idx *vecspace.Index) *linalg.Matrix {
	x := linalg.NewMatrix(idx.N, idx.P)
	for r := 0; r < idx.P; r++ {
		for _, i := range idx.IF[r] {
			x.Set(i, r, 1)
		}
	}
	return x
}

// knnAffinity builds a symmetric kNN affinity matrix with heat-kernel
// weights exp(-||xi-xj||^2 / (2σ^2)), σ = mean pairwise distance.
func knnAffinity(x *linalg.Matrix, k int) *linalg.Matrix {
	n := x.Rows
	if k >= n {
		k = n - 1
	}
	dist := make([][]float64, n)
	total, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 0.0
			ri, rj := x.Row(i), x.Row(j)
			for t := range ri {
				dd := ri[t] - rj[t]
				d += dd * dd
			}
			d = math.Sqrt(d)
			dist[i][j] = d
			dist[j][i] = d
			total += d
			cnt++
		}
	}
	sigma := 1.0
	if cnt > 0 && total > 0 {
		sigma = total / float64(cnt)
	}
	w := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		// k nearest neighbours of i.
		type nd struct {
			j int
			d float64
		}
		ds := make([]nd, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ds = append(ds, nd{j, dist[i][j]})
			}
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
		for t := 0; t < k && t < len(ds); t++ {
			j := ds[t].j
			wij := math.Exp(-dist[i][j] * dist[i][j] / (2 * sigma * sigma))
			if wij > w.At(i, j) {
				w.Set(i, j, wij)
				w.Set(j, i, wij)
			}
		}
	}
	return w
}

// laplacian returns L = D − W and the degree vector.
func laplacian(w *linalg.Matrix) (*linalg.Matrix, []float64) {
	n := w.Rows
	l := linalg.NewMatrix(n, n)
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += w.At(i, j)
			l.Set(i, j, -w.At(i, j))
		}
		deg[i] = s
		l.Set(i, i, s+l.At(i, i))
	}
	return l, deg
}

// spectralEmbedding computes the K eigenvectors of the normalized
// Laplacian D^{-1/2} L D^{-1/2} with the smallest nontrivial eigenvalues.
func spectralEmbedding(w *linalg.Matrix, k int) (*linalg.Matrix, error) {
	n := w.Rows
	l, deg := laplacian(w)
	norm := linalg.NewMatrix(n, n)
	inv := make([]float64, n)
	for i := range inv {
		if deg[i] > 0 {
			inv[i] = 1 / math.Sqrt(deg[i])
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			norm.Set(i, j, inv[i]*l.At(i, j)*inv[j])
		}
	}
	vals, vecs, err := linalg.EigSym(norm)
	if err != nil {
		return nil, err
	}
	_ = vals
	if k > n-1 {
		k = n - 1
	}
	if k < 1 {
		k = 1
	}
	// Skip the trivial (near-zero) first eigenvector.
	f := linalg.NewMatrix(n, k)
	for c := 0; c < k; c++ {
		v := vecs[c+1]
		for i := 0; i < n; i++ {
			f.Set(i, c, v[i])
		}
	}
	return f, nil
}

// MCFS is Multi-Cluster Feature Selection (Cai, Zhang, He; KDD 2010):
// embed the graphs with the K smallest nontrivial Laplacian eigenvectors,
// regress each eigenvector on the features with an L1 penalty, and score
// each feature by its largest absolute coefficient across eigenvectors.
type MCFS struct {
	// Clusters is K, the number of spectral dimensions. Zero means 5.
	Clusters int
	// KNN is the neighbourhood size; zero means 5 (the paper's default,
	// also used by the VLDB experiments).
	KNN int
	// Lambda is the lasso penalty; zero means 0.01.
	Lambda float64
}

// Name implements Selector.
func (MCFS) Name() string { return "MCFS" }

// Select implements Selector.
func (mc MCFS) Select(idx *vecspace.Index, _ [][]float64, p int) ([]int, error) {
	if mc.Clusters == 0 {
		mc.Clusters = 5
	}
	if mc.KNN == 0 {
		mc.KNN = 5
	}
	if mc.Lambda == 0 {
		mc.Lambda = 0.01
	}
	if idx.N < 3 {
		return nil, fmt.Errorf("baselines: MCFS needs at least 3 graphs, got %d", idx.N)
	}
	x := dataMatrix(idx)
	w := knnAffinity(x, mc.KNN)
	f, err := spectralEmbedding(w, mc.Clusters)
	if err != nil {
		return nil, err
	}
	// Center the binary columns so the (implicitly intercept-free) lasso
	// regression is unbiased.
	xc := x.Clone()
	for j := 0; j < xc.Cols; j++ {
		mean := 0.0
		for i := 0; i < xc.Rows; i++ {
			mean += xc.At(i, j)
		}
		mean /= float64(xc.Rows)
		for i := 0; i < xc.Rows; i++ {
			xc.Set(i, j, xc.At(i, j)-mean)
		}
	}
	score := make([]float64, idx.P)
	for c := 0; c < f.Cols; c++ {
		coef := linalg.Lasso(xc, f.Col(c), mc.Lambda, 300, 1e-7)
		for r, v := range coef {
			if a := math.Abs(v); a > score[r] {
				score[r] = a
			}
		}
	}
	return topScores(score, p), nil
}

// UDFS is Unsupervised Discriminative Feature Selection (Yang et al.,
// IJCAI 2011): minimize Tr(Wᵀ M W) + γ‖W‖₂,₁ subject to WᵀW = I, where
// M = Xᵀ L X couples the feature weights to the local data structure.
// The ℓ2,1 term is handled by iteratively reweighted least squares: W is
// the c smallest eigenvectors of M + γ·D with D diagonal 1/(2‖w_i‖).
// Features are ranked by ‖w_i‖₂.
type UDFS struct {
	// Gamma is the regularization weight; zero means 0.1.
	Gamma float64
	// Clusters is c, the subspace dimension; zero means 5.
	Clusters int
	// KNN is the neighbourhood size; zero means 5.
	KNN int
	// Iters is the number of reweighting iterations; zero means 5.
	Iters int
}

// Name implements Selector.
func (UDFS) Name() string { return "UDFS" }

// Select implements Selector.
func (u UDFS) Select(idx *vecspace.Index, _ [][]float64, p int) ([]int, error) {
	if u.Gamma == 0 {
		u.Gamma = 0.1
	}
	if u.Clusters == 0 {
		u.Clusters = 5
	}
	if u.KNN == 0 {
		u.KNN = 5
	}
	if u.Iters == 0 {
		u.Iters = 5
	}
	if idx.N < 3 {
		return nil, fmt.Errorf("baselines: UDFS needs at least 3 graphs, got %d", idx.N)
	}
	x := dataMatrix(idx)
	w := knnAffinity(x, u.KNN)
	l, _ := laplacian(w)
	m := x.T().Mul(l).Mul(x) // m×m
	dim := idx.P
	d := make([]float64, dim)
	for i := range d {
		d[i] = 1
	}
	c := u.Clusters
	if c > dim {
		c = dim
	}
	var wmat [][]float64
	for it := 0; it < u.Iters; it++ {
		a := m.Clone()
		for i := 0; i < dim; i++ {
			a.Set(i, i, a.At(i, i)+u.Gamma*d[i])
		}
		// Symmetrize against accumulated numeric noise.
		for i := 0; i < dim; i++ {
			for j := i + 1; j < dim; j++ {
				v := (a.At(i, j) + a.At(j, i)) / 2
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		_, vecs, err := linalg.EigSym(a)
		if err != nil {
			return nil, err
		}
		wmat = vecs[:c] // c smallest eigenvectors, each length dim
		for i := 0; i < dim; i++ {
			norm := 0.0
			for k := 0; k < c; k++ {
				norm += wmat[k][i] * wmat[k][i]
			}
			norm = math.Sqrt(norm)
			if norm < 1e-8 {
				norm = 1e-8
			}
			d[i] = 1 / (2 * norm)
		}
	}
	score := make([]float64, dim)
	for i := 0; i < dim; i++ {
		for k := 0; k < c; k++ {
			score[i] += wmat[k][i] * wmat[k][i]
		}
	}
	return topScores(score, p), nil
}

// NDFS is Nonnegative Discriminative Feature Selection (Li et al., AAAI
// 2012): jointly learn nonnegative spectral cluster indicators F and a
// sparse regression W from features to F,
//
//	min_{F≥0,W} Tr(FᵀLF) + α(‖XW − F‖² + β‖W‖₂,₁)
//
// solved by alternating a closed-form W update (reweighted ridge) with a
// multiplicative nonnegative update on F. Features are ranked by ‖w_i‖₂.
type NDFS struct {
	// Alpha couples the spectral and regression terms; zero means 1.
	Alpha float64
	// Beta is the sparsity weight; zero means 0.1.
	Beta float64
	// Clusters is the number of latent clusters; zero means 5.
	Clusters int
	// KNN is the neighbourhood size; zero means 5.
	KNN int
	// Iters is the number of alternations; zero means 10.
	Iters int
	// Seed drives the k-means initialization of F.
	Seed int64
}

// Name implements Selector.
func (NDFS) Name() string { return "NDFS" }

// Select implements Selector.
func (nd NDFS) Select(idx *vecspace.Index, _ [][]float64, p int) ([]int, error) {
	if nd.Alpha == 0 {
		nd.Alpha = 1
	}
	if nd.Beta == 0 {
		nd.Beta = 0.1
	}
	if nd.Clusters == 0 {
		nd.Clusters = 5
	}
	if nd.KNN == 0 {
		nd.KNN = 5
	}
	if nd.Iters == 0 {
		nd.Iters = 10
	}
	if idx.N < 3 {
		return nil, fmt.Errorf("baselines: NDFS needs at least 3 graphs, got %d", idx.N)
	}
	n, m := idx.N, idx.P
	x := dataMatrix(idx)
	wAff := knnAffinity(x, nd.KNN)
	l, _ := laplacian(wAff)

	c := nd.Clusters
	if c > n {
		c = n
	}
	// Initialize F from k-means cluster indicators (+ small floor to stay
	// strictly positive for the multiplicative updates).
	rng := rand.New(rand.NewSource(nd.Seed))
	assign, _ := linalg.KMeans(x, c, 30, rng)
	f := linalg.NewMatrix(n, c)
	for i := 0; i < n; i++ {
		for k := 0; k < c; k++ {
			f.Set(i, k, 0.1)
		}
		f.Set(i, assign[i], 1)
	}

	d := make([]float64, m)
	for i := range d {
		d[i] = 1
	}
	var wmat *linalg.Matrix
	for it := 0; it < nd.Iters; it++ {
		// W = (XᵀX + β D)^{-1} Xᵀ F, column by column via Cholesky.
		a := x.T().Mul(x)
		for i := 0; i < m; i++ {
			a.Set(i, i, a.At(i, i)+nd.Beta*d[i]+1e-8)
		}
		xt := x.T()
		wmat = linalg.NewMatrix(m, c)
		for k := 0; k < c; k++ {
			b := xt.MulVec(f.Col(k))
			col, err := linalg.SolveSPD(a, b)
			if err != nil {
				return nil, err
			}
			for i := 0; i < m; i++ {
				wmat.Set(i, k, col[i])
			}
		}
		// Update the reweighting diagonal from the row norms of W.
		for i := 0; i < m; i++ {
			norm := linalg.Norm2(wmat.Row(i))
			if norm < 1e-8 {
				norm = 1e-8
			}
			d[i] = 1 / (2 * norm)
		}
		// Multiplicative update of F ≥ 0:
		// F ← F ⊙ (αXW + [LF]⁻) / (LF⁺ + αF), splitting L into positive
		// and negative parts to keep both numerator and denominator
		// nonnegative.
		xw := x.Mul(wmat)
		lf := l.Mul(f)
		for i := 0; i < n; i++ {
			for k := 0; k < c; k++ {
				pos, neg := 0.0, 0.0
				if v := lf.At(i, k); v > 0 {
					pos = v
				} else {
					neg = -v
				}
				num := nd.Alpha*math.Max(xw.At(i, k), 0) + neg
				den := pos + nd.Alpha*f.At(i, k) + 1e-12
				f.Set(i, k, f.At(i, k)*num/den)
			}
		}
	}
	score := make([]float64, m)
	for i := 0; i < m; i++ {
		score[i] = linalg.Norm2(wmat.Row(i))
	}
	return topScores(score, p), nil
}

// topScores returns the indices of the p largest scores, descending, ties
// broken by index.
func topScores(score []float64, p int) []int {
	idx := make([]int, len(score))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if score[idx[a]] != score[idx[b]] {
			return score[idx[a]] > score[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if p > len(idx) {
		p = len(idx)
	}
	return append([]int(nil), idx[:p]...)
}
