// Package baselines reimplements the seven comparison algorithms of the
// paper's evaluation (Section 6): the two trivial baselines Original and
// Sample, the greedy wrapper SFS [21], the feature-similarity method MICI
// [24], and the spectral unsupervised feature-selection methods MCFS [27],
// UDFS [28], and NDFS [29].
//
// All methods consume the same inputs DSPM does — the binary feature
// matrix Y via inverted lists and (for SFS) the pairwise dissimilarity
// matrix — and produce an ordered list of selected feature indices, so the
// experiment harness can swap them freely.
//
// The spectral baselines follow the cited papers' objective functions and
// update rules on our own linear-algebra kernel; where a paper leaves
// hyper-parameters open we use the defaults its authors recommend (e.g.
// neighborhood size 5, the value the VLDB paper also reports using).
package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/vecspace"
)

// Selector selects p dimensions from the candidate feature set.
type Selector interface {
	// Name identifies the algorithm in reports (matches the paper's
	// figure legends).
	Name() string
	// Select returns the chosen feature indices (at most p; Original
	// returns all m). delta is the pairwise graph dissimilarity matrix;
	// only objective-driven selectors (SFS) read it and it may be nil for
	// the others.
	Select(idx *vecspace.Index, delta [][]float64, p int) ([]int, error)
}

// Original adopts every frequent subgraph as a dimension (no selection).
type Original struct{}

// Name implements Selector.
func (Original) Name() string { return "Original" }

// Select implements Selector, returning all m features.
func (Original) Select(idx *vecspace.Index, _ [][]float64, _ int) ([]int, error) {
	all := make([]int, idx.P)
	for i := range all {
		all[i] = i
	}
	return all, nil
}

// Sample selects p frequent subgraphs uniformly at random.
type Sample struct {
	Seed int64
}

// Name implements Selector.
func (Sample) Name() string { return "Sample" }

// Select implements Selector.
func (s Sample) Select(idx *vecspace.Index, _ [][]float64, p int) ([]int, error) {
	if p > idx.P {
		p = idx.P
	}
	rng := rand.New(rand.NewSource(s.Seed))
	perm := rng.Perm(idx.P)
	sel := append([]int(nil), perm[:p]...)
	sort.Ints(sel)
	return sel, nil
}

// SFS is sequential forward selection (Fukunaga [21]): greedily add the
// feature whose inclusion minimizes the stress objective
// Σ_{i<j} (d_S(i,j) − δ_ij)^2, where d_S is the normalized Euclidean
// distance over the currently selected subset S. The objective is
// non-monotonic in S, which is why SFS gets trapped in poor local minima
// (the paper's Exp-1 observation); it is also by far the slowest method —
// O(p·m·n^2).
type SFS struct{}

// Name implements Selector.
func (SFS) Name() string { return "SFS" }

// Select implements Selector.
func (SFS) Select(idx *vecspace.Index, delta [][]float64, p int) ([]int, error) {
	n, m := idx.N, idx.P
	if delta == nil {
		return nil, fmt.Errorf("baselines: SFS requires the dissimilarity matrix")
	}
	if p > m {
		p = m
	}
	// diff[r] packed bitset over pairs would be heavy; instead keep, for
	// each pair (i<j), the running Hamming count over S, and per candidate
	// evaluate the updated stress.
	type pair struct{ i, j int }
	pairs := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	ham := make([]int, len(pairs)) // Hamming distance over selected set
	// member[r][i]: graph i contains feature r.
	member := make([][]bool, m)
	for r := 0; r < m; r++ {
		member[r] = make([]bool, n)
		for _, g := range idx.IF[r] {
			member[r][g] = true
		}
	}
	chosen := make([]bool, m)
	var sel []int
	for len(sel) < p {
		bestR, bestE := -1, math.Inf(1)
		size := float64(len(sel) + 1)
		for r := 0; r < m; r++ {
			if chosen[r] {
				continue
			}
			e := 0.0
			for k, pr := range pairs {
				h := ham[k]
				if member[r][pr.i] != member[r][pr.j] {
					h++
				}
				d := math.Sqrt(float64(h) / size)
				diff := d - delta[pr.i][pr.j]
				e += diff * diff
			}
			if e < bestE {
				bestE, bestR = e, r
			}
		}
		if bestR < 0 {
			break
		}
		chosen[bestR] = true
		sel = append(sel, bestR)
		for k, pr := range pairs {
			if member[bestR][pr.i] != member[bestR][pr.j] {
				ham[k]++
			}
		}
	}
	return sel, nil
}
