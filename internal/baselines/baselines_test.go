package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/vecspace"
)

func randomIndex(r *rand.Rand, n, m int) (*vecspace.Index, [][]float64) {
	vs := make([]*vecspace.BitVector, n)
	for i := range vs {
		v := vecspace.NewBitVector(m)
		for j := 0; j < m; j++ {
			if r.Intn(2) == 0 {
				v.Set(j)
			}
		}
		vs[i] = v
	}
	idx := vecspace.BuildIndexFromVectors(vs)
	delta := make([][]float64, n)
	for i := range delta {
		delta[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := r.Float64()
			delta[i][j] = d
			delta[j][i] = d
		}
	}
	return idx, delta
}

// checkSelection verifies the generic contract: correct count, in-range,
// no duplicates.
func checkSelection(t *testing.T, name string, sel []int, p, m int) {
	t.Helper()
	if len(sel) != p {
		t.Fatalf("%s: selected %d features, want %d", name, len(sel), p)
	}
	seen := map[int]bool{}
	for _, f := range sel {
		if f < 0 || f >= m {
			t.Fatalf("%s: feature %d out of range [0,%d)", name, f, m)
		}
		if seen[f] {
			t.Fatalf("%s: duplicate feature %d", name, f)
		}
		seen[f] = true
	}
}

func TestAllSelectorsContract(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	idx, delta := randomIndex(r, 20, 12)
	const p = 5
	selectors := []Selector{
		Sample{Seed: 3},
		SFS{},
		MICI{},
		MCFS{},
		UDFS{},
		NDFS{},
	}
	for _, s := range selectors {
		sel, err := s.Select(idx, delta, p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		checkSelection(t, s.Name(), sel, p, idx.P)
	}
}

func TestOriginalReturnsAll(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	idx, _ := randomIndex(r, 10, 7)
	sel, err := Original{}.Select(idx, nil, 3)
	if err != nil {
		t.Fatalf("Original: %v", err)
	}
	if len(sel) != 7 {
		t.Fatalf("Original must return all %d features, got %d", 7, len(sel))
	}
	if (Original{}).Name() != "Original" {
		t.Errorf("name wrong")
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	idx, _ := randomIndex(r, 10, 20)
	a, _ := Sample{Seed: 5}.Select(idx, nil, 6)
	b, _ := Sample{Seed: 5}.Select(idx, nil, 6)
	c, _ := Sample{Seed: 6}.Select(idx, nil, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed different selection")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds should (almost surely) differ")
	}
}

func TestSampleClampsP(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	idx, _ := randomIndex(r, 5, 4)
	sel, err := Sample{}.Select(idx, nil, 100)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(sel) != 4 {
		t.Errorf("Sample should clamp p to m")
	}
}

func TestSFSRequiresDelta(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	idx, _ := randomIndex(r, 5, 4)
	if _, err := (SFS{}).Select(idx, nil, 2); err == nil {
		t.Errorf("SFS without delta must error")
	}
}

func TestSFSFindsInformativeFeature(t *testing.T) {
	// δ exactly equals the distance induced by feature 0 alone; SFS's
	// first greedy pick must be feature 0.
	n, m := 12, 6
	r := rand.New(rand.NewSource(6))
	vs := make([]*vecspace.BitVector, n)
	for i := range vs {
		v := vecspace.NewBitVector(m)
		for j := 0; j < m; j++ {
			if r.Intn(2) == 0 {
				v.Set(j)
			}
		}
		vs[i] = v
	}
	idx := vecspace.BuildIndexFromVectors(vs)
	delta := make([][]float64, n)
	for i := range delta {
		delta[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if vs[i].Get(0) != vs[j].Get(0) {
				delta[i][j] = 1
				delta[j][i] = 1
			}
		}
	}
	sel, err := (SFS{}).Select(idx, delta, 1)
	if err != nil {
		t.Fatalf("SFS: %v", err)
	}
	if sel[0] != 0 {
		t.Errorf("SFS first pick = %d, want 0", sel[0])
	}
}

func TestSpectralSelectorsRejectTinyInput(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	idx, _ := randomIndex(r, 2, 4)
	for _, s := range []Selector{MCFS{}, UDFS{}, NDFS{}} {
		if _, err := s.Select(idx, nil, 2); err == nil {
			t.Errorf("%s on 2 graphs must error", s.Name())
		}
	}
}

func TestMCFSPrefersStructuredFeatures(t *testing.T) {
	// Two well-separated groups; features 0–2 are perfect group
	// indicators, the rest weak noise. MCFS must rank the indicators
	// ahead of the noise.
	n, m := 40, 9
	r := rand.New(rand.NewSource(8))
	vs := make([]*vecspace.BitVector, n)
	for i := range vs {
		v := vecspace.NewBitVector(m)
		if i < n/2 {
			v.Set(0)
			v.Set(1)
			v.Set(2)
		}
		for j := 3; j < m; j++ {
			if r.Intn(4) == 0 {
				v.Set(j)
			}
		}
		vs[i] = v
	}
	idx := vecspace.BuildIndexFromVectors(vs)
	sel, err := MCFS{Clusters: 2}.Select(idx, nil, 3)
	if err != nil {
		t.Fatalf("MCFS: %v", err)
	}
	// Features 0–2 are perfectly correlated, so the lasso keeps one
	// representative and zeroes the duplicates; the top-ranked feature
	// must be one of the indicators.
	if sel[0] > 2 {
		t.Errorf("MCFS top pick = %d, want an indicator (0–2); selection %v", sel[0], sel)
	}
}

func TestNDFSDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	idx, _ := randomIndex(r, 15, 8)
	a, err1 := NDFS{Seed: 1}.Select(idx, nil, 4)
	b, err2 := NDFS{Seed: 1}.Select(idx, nil, 4)
	if err1 != nil || err2 != nil {
		t.Fatalf("NDFS: %v %v", err1, err2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("NDFS same seed different selection")
		}
	}
}

func TestSelectorNames(t *testing.T) {
	want := map[string]Selector{
		"Original": Original{},
		"Sample":   Sample{},
		"SFS":      SFS{},
		"MICI":     MICI{},
		"MCFS":     MCFS{},
		"UDFS":     UDFS{},
		"NDFS":     NDFS{},
	}
	for name, s := range want {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}

func TestTopScores(t *testing.T) {
	got := topScores([]float64{0.5, 2, 1, 2}, 2)
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("topScores = %v, want [1 3]", got)
	}
}
