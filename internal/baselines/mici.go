package baselines

import (
	"math"
	"sort"

	"repro/internal/vecspace"
)

// MICI is the unsupervised feature-selection method of Mitra, Murthy and
// Pal (IEEE TPAMI 2002): features are clustered by the Maximal Information
// Compression Index λ2 — the smallest eigenvalue of the covariance matrix
// of a feature pair, which is zero iff the features are linearly dependent
// — and each cluster is represented by a single feature.
//
// The selection loop follows the paper: repeatedly pick the feature whose
// distance to its K-th nearest remaining neighbour is smallest (the most
// compressible cluster), keep it, discard those K neighbours, and shrink K
// when fewer features remain. K is derived from the target dimension p.
type MICI struct {
	// K is the initial cluster size k. Zero derives it as m/p − 1.
	K int
}

// Name implements Selector.
func (MICI) Name() string { return "MICI" }

// Select implements Selector.
func (mi MICI) Select(idx *vecspace.Index, _ [][]float64, p int) ([]int, error) {
	m := idx.P
	if p > m {
		p = m
	}
	// Feature statistics over the binary columns: mean = |sup|/n,
	// var = q(1-q), cov(r,s) = |sup_r ∩ sup_s|/n − q_r q_s.
	n := float64(idx.N)
	q := make([]float64, m)
	for r := 0; r < m; r++ {
		q[r] = float64(len(idx.IF[r])) / n
	}
	mici := func(r, s int) float64 {
		vr := q[r] * (1 - q[r])
		vs := q[s] * (1 - q[s])
		inter := intersectionSize(idx.IF[r], idx.IF[s])
		cov := float64(inter)/n - q[r]*q[s]
		// λ2 = (vr+vs − sqrt((vr+vs)^2 − 4(vr·vs − cov^2))) / 2.
		sum := vr + vs
		disc := sum*sum - 4*(vr*vs-cov*cov)
		if disc < 0 {
			disc = 0
		}
		return (sum - math.Sqrt(disc)) / 2
	}

	k := mi.K
	if k <= 0 {
		if p > 0 {
			k = m/p - 1
		}
		if k < 1 {
			k = 1
		}
	}

	remaining := make([]int, m)
	for i := range remaining {
		remaining[i] = i
	}
	var sel []int
	for len(remaining) > 0 && len(sel) < p {
		if k > len(remaining)-1 {
			k = len(remaining) - 1
		}
		if k < 1 {
			// Singletons left: keep them in order until p reached.
			for _, r := range remaining {
				if len(sel) >= p {
					break
				}
				sel = append(sel, r)
			}
			break
		}
		// For each remaining feature, distance to its k-th nearest
		// neighbour among the remaining features.
		bestF, bestD := -1, math.Inf(1)
		var bestNbrs []int
		for _, r := range remaining {
			type nd struct {
				f int
				d float64
			}
			ds := make([]nd, 0, len(remaining)-1)
			for _, s := range remaining {
				if s != r {
					ds = append(ds, nd{s, mici(r, s)})
				}
			}
			sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
			if ds[k-1].d < bestD {
				bestD = ds[k-1].d
				bestF = r
				bestNbrs = bestNbrs[:0]
				for i := 0; i < k; i++ {
					bestNbrs = append(bestNbrs, ds[i].f)
				}
			}
		}
		sel = append(sel, bestF)
		drop := map[int]bool{bestF: true}
		for _, f := range bestNbrs {
			drop[f] = true
		}
		keep := remaining[:0]
		for _, r := range remaining {
			if !drop[r] {
				keep = append(keep, r)
			}
		}
		remaining = keep
	}
	sort.Ints(sel)
	return sel, nil
}

func intersectionSize(a, b []int) int {
	x, y, c := 0, 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			c++
			x++
			y++
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	return c
}
