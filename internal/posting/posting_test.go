package posting

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/vecspace"
)

// randomVectors draws n vectors of dimension p with the given bit
// density.
func randomVectors(rng *rand.Rand, n, p int, density float64) []*vecspace.BitVector {
	out := make([]*vecspace.BitVector, n)
	for i := range out {
		v := vecspace.NewBitVector(p)
		for r := 0; r < p; r++ {
			if rng.Float64() < density {
				v.Set(r)
			}
		}
		out[i] = v
	}
	return out
}

// naiveLists transposes vectors the slow way.
func naiveLists(vecs []*vecspace.BitVector, p int) [][]int32 {
	lists := make([][]int32, p)
	for id, v := range vecs {
		for r := 0; r < p; r++ {
			if v.Get(r) {
				lists[r] = append(lists[r], int32(id))
			}
		}
	}
	return lists
}

func TestFromVectorsMatchesNaiveTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 100} {
		vecs := randomVectors(rng, n, 67, 0.2)
		ix := FromVectors(vecs, 67)
		if ix.N() != n || ix.P() != 67 {
			t.Fatalf("n=%d: index reports n=%d p=%d", n, ix.N(), ix.P())
		}
		want := naiveLists(vecs, 67)
		total := 0
		for r := 0; r < 67; r++ {
			if got := ix.List(r); !reflect.DeepEqual(got, want[r]) && (len(got) != 0 || len(want[r]) != 0) {
				t.Fatalf("n=%d dim %d: lists diverge: got %v want %v", n, r, got, want[r])
			}
			total += len(want[r])
		}
		if ix.Postings() != total {
			t.Fatalf("n=%d: Postings() = %d, want %d", n, ix.Postings(), total)
		}
	}
}

func TestAppendEqualsBulkBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	all := randomVectors(rng, 120, 33, 0.25)
	bulk := FromVectors(all, 33)
	// Build the same index through a chain of Appends of varying sizes.
	inc := FromVectors(nil, 33)
	for lo := 0; lo < len(all); {
		hi := lo + 1 + rng.Intn(17)
		if hi > len(all) {
			hi = len(all)
		}
		inc = inc.Append(all[lo:hi])
		lo = hi
	}
	if inc.N() != bulk.N() {
		t.Fatalf("incremental n = %d, bulk n = %d", inc.N(), bulk.N())
	}
	for r := 0; r < 33; r++ {
		if !reflect.DeepEqual(inc.List(r), bulk.List(r)) {
			t.Fatalf("dim %d diverges after appends", r)
		}
	}
	// byCount buckets must agree too: compare via Plan over an all-zero
	// query, whose Rest stream enumerates every id in (ones, id) order.
	q := vecspace.NewBitVector(33)
	var a, b []int32
	bulk.Plan(q, 1).Rest(func(id, _ int32) bool { a = append(a, id); return true })
	inc.Plan(q, 1).Rest(func(id, _ int32) bool { b = append(b, id); return true })
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ones-order streams diverge: bulk %v incremental %v", a, b)
	}
}

func TestUnionAndIntersect(t *testing.T) {
	for _, tc := range []struct {
		name        string
		lists       [][]int32
		union, both []int32
	}{
		{"empty", nil, nil, nil},
		{"single", [][]int32{{1, 4, 9}}, []int32{1, 4, 9}, []int32{1, 4, 9}},
		{"disjoint", [][]int32{{1, 3}, {2, 4}}, []int32{1, 2, 3, 4}, []int32{}},
		{"overlap", [][]int32{{1, 2, 5}, {2, 5, 7}, {0, 5}}, []int32{0, 1, 2, 5, 7}, []int32{5}},
		{"subset", [][]int32{{1, 2, 3, 4}, {2, 3}}, []int32{1, 2, 3, 4}, []int32{2, 3}},
		{"with empty list", [][]int32{{1, 2}, {}}, []int32{1, 2}, []int32{}},
	} {
		if got := Union(tc.lists...); !sameIDs(got, tc.union) {
			t.Errorf("%s: Union = %v, want %v", tc.name, got, tc.union)
		}
		if got := Intersect(tc.lists...); !sameIDs(got, tc.both) {
			t.Errorf("%s: Intersect = %v, want %v", tc.name, got, tc.both)
		}
	}
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUnionIntersectRandomizedAgainstMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 50; round++ {
		k := 1 + rng.Intn(5)
		lists := make([][]int32, k)
		inAll := map[int32]int{}
		for i := range lists {
			seen := map[int32]bool{}
			for j := 0; j < rng.Intn(30); j++ {
				id := int32(rng.Intn(60))
				if !seen[id] {
					seen[id] = true
				}
			}
			for id := int32(0); id < 60; id++ {
				if seen[id] {
					lists[i] = append(lists[i], id)
					inAll[id]++
				}
			}
		}
		var wantU, wantI []int32
		for id := int32(0); id < 60; id++ {
			if inAll[id] > 0 {
				wantU = append(wantU, id)
			}
			if inAll[id] == k {
				wantI = append(wantI, id)
			}
		}
		if got := Union(lists...); !sameIDs(got, wantU) {
			t.Fatalf("round %d: Union = %v, want %v", round, got, wantU)
		}
		if got := Intersect(lists...); !sameIDs(got, wantI) {
			t.Fatalf("round %d: Intersect = %v, want %v", round, got, wantI)
		}
	}
}

func TestPlanCostModelFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vecs := randomVectors(rng, 200, 16, 0.5) // dense: every dimension covers ~half
	ix := FromVectors(vecs, 16)

	dense := vecs[0] // matches many dimensions -> flat scan wins
	if pl := ix.Plan(dense, 5); pl != nil {
		t.Fatalf("dense query got a pruning plan (matched mass should trip the cost model)")
	}
	sparse := vecspace.NewBitVector(16) // matches nothing -> maximal pruning
	pl := ix.Plan(sparse, 5)
	if pl == nil {
		t.Fatalf("sparse query got no plan")
	}
	if len(pl.Matched) != 0 || pl.QueryOnes != 0 {
		t.Fatalf("sparse plan: matched=%d ones=%d, want 0/0", len(pl.Matched), pl.QueryOnes)
	}
	// k at the collection size trips the cost model even with no matches.
	if pl := ix.Plan(sparse, 200); pl != nil {
		t.Fatalf("k = n still got a plan")
	}
	// Degenerate dimensionalities never plan.
	if pl := FromVectors(nil, 0).Plan(vecspace.NewBitVector(0), 3); pl != nil {
		t.Fatalf("p = 0 got a plan")
	}
	if pl := ix.Plan(vecspace.NewBitVector(8), 3); pl != nil {
		t.Fatalf("mismatched query dimension got a plan")
	}
}

func TestPlanMatchedAndRestPartitionTheIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vecs := randomVectors(rng, 300, 40, 0.05)
	ix := FromVectors(vecs, 40)
	q := vecspace.NewBitVector(40)
	q.Set(3)
	q.Set(17)
	pl := ix.Plan(q, 10)
	if pl == nil {
		t.Fatalf("sparse query got no plan")
	}
	if pl.QueryOnes != 2 {
		t.Fatalf("QueryOnes = %d, want 2", pl.QueryOnes)
	}
	seen := make(map[int32]bool, 300)
	for _, id := range pl.Matched {
		if !vecs[id].Get(3) && !vecs[id].Get(17) {
			t.Fatalf("id %d in Matched shares no dimension with the query", id)
		}
		seen[id] = true
	}
	prevOnes, prevID := int32(-1), int32(-1)
	pl.Rest(func(id, ones int32) bool {
		if seen[id] {
			t.Fatalf("id %d yielded by both Matched and Rest", id)
		}
		seen[id] = true
		if got := int32(vecs[id].Ones()); got != ones {
			t.Fatalf("id %d: ones = %d, want %d", id, ones, got)
		}
		if ones < prevOnes || (ones == prevOnes && id <= prevID) {
			t.Fatalf("Rest out of (ones, id) order at id %d", id)
		}
		prevOnes, prevID = ones, id
		return true
	})
	if len(seen) != 300 {
		t.Fatalf("Matched + Rest covered %d of 300 ids", len(seen))
	}
	// Early termination: yield false stops the stream.
	n := 0
	pl.Rest(func(_, _ int32) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("Rest yielded %d ids after early stop, want 7", n)
	}
}

func TestFromListsMatchesFromVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vecs := randomVectors(rng, 80, 25, 0.3)
	direct := FromVectors(vecs, 25)
	lists := make([][]int32, 25)
	for r := range lists {
		lists[r] = append([]int32(nil), direct.List(r)...)
	}
	ones := make([]int32, len(vecs))
	for id, v := range vecs {
		ones[id] = int32(v.Ones())
	}
	rebuilt := FromLists(25, len(vecs), lists, ones)
	q := vecspace.NewBitVector(25)
	q.Set(11)
	a, b := direct.Plan(q, 4), rebuilt.Plan(q, 4)
	if (a == nil) != (b == nil) {
		t.Fatalf("plan presence diverges: %v vs %v", a != nil, b != nil)
	}
	if a == nil {
		// Dense enough to fall back: compare the raw lists instead.
		for r := 0; r < 25; r++ {
			if !sameIDs(direct.List(r), rebuilt.List(r)) {
				t.Fatalf("dim %d lists diverge", r)
			}
		}
		return
	}
	if !sameIDs(a.Matched, b.Matched) {
		t.Fatalf("matched diverges: %v vs %v", a.Matched, b.Matched)
	}
	var ra, rb []int32
	a.Rest(func(id, _ int32) bool { ra = append(ra, id); return true })
	b.Rest(func(id, _ int32) bool { rb = append(rb, id); return true })
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("rest streams diverge")
	}
}
