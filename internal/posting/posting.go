// Package posting implements the candidate-pruning accelerator for the
// mapped-space query engine: per-dimension inverted posting lists over a
// database of binary feature vectors, plus the ones-count buckets that
// make the non-matching remainder of the database enumerable in score
// order without touching its vectors.
//
// The paper's central bet is a small selected dimension set that
// discriminates the database. A query that contains few (or none) of
// those dimensions interacts with only the graphs on its matched
// dimensions' posting lists; for every other graph g the normalized
// Euclidean distance collapses to a function of |F(g)| alone:
//
//	hamming(q, g) = |F(q)| + |F(g)|        when F(q) ∩ F(g) = ∅
//
// so ranking the unmatched remainder needs only each graph's ones
// count, pre-bucketed in ascending (ones, id) order. A top-k query then
// scores the union of the matched posting lists exactly — via the SoA
// scan kernel's gather (vecspace.Block.HammingID) when the snapshot
// carries a packed block, from the vectors otherwise — and merges in
// the unmatched stream lazily — sublinear in the collection size
// whenever the matched lists are short, and bit-identical to the flat
// scan always (see internal/topk).
//
// An Index is immutable to readers. Append extends it with new ids
// (graph ids are assigned densely ascending, so appended postings keep
// every list sorted) and returns a new Index that shares the untouched
// tails of the old one; Appends must be serialized by the caller and
// only ever applied to the newest Index of a chain — graphdim holds its
// writer lock across them. Removals are not posting events: tombstoned
// ids stay listed and are filtered by the scan's liveness predicate,
// exactly as in the flat scan.
package posting

import (
	"repro/internal/vecspace"
)

// Index holds the per-dimension posting lists and ones-count buckets of
// a database of n binary vectors over p dimensions.
type Index struct {
	p, n int
	// lists[r] enumerates, ascending, the ids whose vector has bit r.
	lists [][]int32
	// byCount[c] enumerates, ascending, the ids whose vector has exactly
	// c set bits. Iterating c = 0..p yields all ids in ascending
	// (ones, id) — equivalently ascending unmatched-score — order.
	byCount [][]int32
}

// FromVectors builds the index by transposing the vectors' set bits.
// Every vector must have dimension p.
func FromVectors(vectors []*vecspace.BitVector, p int) *Index {
	ix := &Index{
		p:       p,
		lists:   make([][]int32, p),
		byCount: make([][]int32, p+1),
	}
	return ix.Append(vectors)
}

// FromLists assembles an index from already-decoded posting lists (the
// persistence fast path). The caller is responsible for validity: each
// list strictly ascending with ids in [0, n), and list r holding exactly
// the ids whose vector has bit r — graphdim's decoder cross-checks the
// lists against the vectors before calling. ones[id] must be the set-bit
// count of vector id; the ones buckets are derived here.
func FromLists(p, n int, lists [][]int32, ones []int32) *Index {
	ix := &Index{p: p, n: n, lists: lists, byCount: make([][]int32, p+1)}
	counts := make([]int, p+1)
	for _, o := range ones {
		counts[o]++
	}
	for c, cnt := range counts {
		if cnt > 0 {
			ix.byCount[c] = make([]int32, 0, cnt)
		}
	}
	for id, o := range ones {
		ix.byCount[o] = append(ix.byCount[o], int32(id))
	}
	return ix
}

// N returns the number of ids covered (ids are exactly [0, N)).
func (ix *Index) N() int { return ix.n }

// P returns the dimensionality.
func (ix *Index) P() int { return ix.p }

// List returns dimension r's posting list. The slice is owned by the
// index and must not be modified; it exists for serialization and
// introspection.
func (ix *Index) List(r int) []int32 { return ix.lists[r] }

// Postings returns the total posting count Σ_r |List(r)| — equal to the
// total set-bit count of the database's vectors.
func (ix *Index) Postings() int {
	total := 0
	for _, l := range ix.lists {
		total += len(l)
	}
	return total
}

// Append extends the index with the vectors of ids [N, N+len(vecs)) and
// returns the extended index. The receiver stays valid for concurrent
// readers: appended entries land beyond every length any published
// slice header covers. Callers must serialize Appends and always append
// to the newest index of a chain (two Appends branching from the same
// index would clobber each other's shared backing arrays).
func (ix *Index) Append(vecs []*vecspace.BitVector) *Index {
	if len(vecs) == 0 {
		return ix
	}
	next := &Index{
		p:       ix.p,
		n:       ix.n + len(vecs),
		lists:   append([][]int32(nil), ix.lists...),
		byCount: append([][]int32(nil), ix.byCount...),
	}
	for i, v := range vecs {
		id := int32(ix.n + i)
		ones := 0
		v.ForEach(func(r int) {
			next.lists[r] = append(next.lists[r], id)
			ones++
		})
		next.byCount[ones] = append(next.byCount[ones], id)
	}
	return next
}

// Union k-way-merges sorted id lists into their ascending union.
func Union(lists ...[]int32) []int32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	// Iterative pairwise merging, smallest pair sizes first, behaves like
	// a k-way heap merge without the per-element heap traffic: posting
	// lists are typically few (the query's matched dimensions).
	out := merge2(lists[0], lists[1])
	for _, l := range lists[2:] {
		out = merge2(out, l)
	}
	return out
}

func merge2(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Intersect k-way-intersects sorted id lists, galloping through the
// shortest list. An empty input set intersects to nil.
func Intersect(lists ...[]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	// Start from the shortest list: the result can only shrink.
	shortest := 0
	for i, l := range lists {
		if len(l) < len(lists[shortest]) {
			shortest = i
		}
	}
	out := append([]int32(nil), lists[shortest]...)
	for i, l := range lists {
		if i == shortest || len(out) == 0 {
			continue
		}
		kept := out[:0]
		j := 0
		for _, id := range out {
			j += search(l[j:], id)
			if j < len(l) && l[j] == id {
				kept = append(kept, id)
			}
		}
		out = kept
	}
	return out
}

// search returns the first position in the sorted slice l at or after
// which id could appear (sort.Search specialized to int32 to keep the
// intersection loop allocation- and interface-free).
func search(l []int32, id int32) int {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// fallbackFraction is the cost model's pivot: pruning pays only while
// the work it saves dominates its own overhead (gathering and merging
// the matched lists, the binary searches of the unmatched walk). The
// estimated pruned cost is the matched posting mass plus the k results
// wanted; at half the flat scan's n the constant factors eat the win,
// so Plan falls back.
const fallbackFraction = 2 // prune while (matched + k) * fallbackFraction < n

// Plan decides whether pruned evaluation beats the flat scan for a
// query with feature vector q wanting a k-ranking. It returns nil when
// the flat scan is the better plan: the query's matched dimensions
// cover too much of the collection (the adaptive cost model above), p
// is zero (no dimensions — every score degenerates), or q spans a
// different dimensionality than the index.
func (ix *Index) Plan(q *vecspace.BitVector, k int) *Plan {
	// k >= n wants the whole ranking; the flat scan produces exactly
	// that with none of the pruning overhead. (The early return also
	// keeps the cost arithmetic below far from int overflow for the
	// huge verification depths a large VerifyFactor can request.)
	if ix.p == 0 || q.Len() != ix.p || k <= 0 || k >= ix.n {
		return nil
	}
	matchedSize := 0
	var lists [][]int32
	q.ForEach(func(r int) {
		matchedSize += len(ix.lists[r])
		lists = append(lists, ix.lists[r])
	})
	if (matchedSize+k)*fallbackFraction >= ix.n {
		return nil
	}
	return &Plan{
		QueryOnes: len(lists),
		Matched:   Union(lists...),
		ix:        ix,
	}
}

// Plan is a pruned scan plan for one query: the ids that share at least
// one dimension with the query (whose distances need their vectors) and
// an iterator over everything else in ascending score order.
type Plan struct {
	// QueryOnes is |F(q)|, the query's set-bit count.
	QueryOnes int
	// Matched is the ascending union of the matched dimensions' posting
	// lists. Tombstoned ids are included; the scan filters them exactly
	// as the flat scan does.
	Matched []int32
	ix      *Index
}

// Rest yields every id NOT in Matched in ascending (ones, id) order —
// which for unmatched ids is exactly ascending (distance, id) order —
// together with its ones count, until yield returns false or the ids
// are exhausted.
func (p *Plan) Rest(yield func(id, ones int32) bool) {
	for c, bucket := range p.ix.byCount {
		for _, id := range bucket {
			// Skip ids on a matched posting list; Matched is sorted, so
			// membership is one binary search.
			if i := search(p.Matched, id); i < len(p.Matched) && p.Matched[i] == id {
				continue
			}
			if !yield(id, int32(c)) {
				return
			}
		}
	}
}
