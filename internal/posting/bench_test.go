package posting

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vecspace"
)

// benchIndex builds a 50k-id index at molecule-like density (each
// vector containing ~5% of 200 dimensions).
func benchIndex(b *testing.B) (*Index, []*vecspace.BitVector) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	vecs := randomVectors(rng, 50_000, 200, 0.05)
	return FromVectors(vecs, 200), vecs
}

// BenchmarkPostingBuild measures the bulk transpose.
func BenchmarkPostingBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	vecs := randomVectors(rng, 50_000, 200, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromVectors(vecs, 200)
	}
}

// BenchmarkPostingAppend measures incremental maintenance: one 64-graph
// batch appended to a 50k-id index.
func BenchmarkPostingAppend(b *testing.B) {
	ix, _ := benchIndex(b)
	rng := rand.New(rand.NewSource(7))
	batch := randomVectors(rng, 64, 200, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Append to the same base every iteration: each run measures one
		// batch landing on a 50k-id chain head.
		_ = ix.Append(batch)
	}
}

// BenchmarkPostingUnion measures the k-way merge at increasing fan-in.
func BenchmarkPostingUnion(b *testing.B) {
	ix, _ := benchIndex(b)
	for _, dims := range []int{2, 8, 32} {
		lists := make([][]int32, dims)
		for i := range lists {
			lists[i] = ix.List(i * 3)
		}
		b.Run(fmt.Sprintf("dims=%d", dims), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Union(lists...)
			}
		})
	}
}

// BenchmarkPostingIntersect measures the galloping intersection.
func BenchmarkPostingIntersect(b *testing.B) {
	ix, _ := benchIndex(b)
	lists := [][]int32{ix.List(0), ix.List(3), ix.List(9)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersect(lists...)
	}
}

// BenchmarkPostingPlan measures plan construction (cost model + union)
// for a query matching 3 of 200 dimensions.
func BenchmarkPostingPlan(b *testing.B) {
	ix, _ := benchIndex(b)
	q := vecspace.NewBitVector(200)
	q.Set(5)
	q.Set(50)
	q.Set(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ix.Plan(q, 10) == nil {
			b.Fatal("no plan")
		}
	}
}
