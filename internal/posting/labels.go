package posting

import (
	"repro/internal/graph"
)

// LabelIndex holds per-label inverted lists over a database of graphs:
// for every vertex (and edge) label, the ascending ids of the graphs
// containing it, with the occurrence count carried alongside. It is the
// structure that lets a declarative label filter — "contains vertex
// label 7 at least 3 times" — be answered by a posting intersection
// instead of a per-graph histogram scan (see internal/pipeline).
//
// The concurrency contract mirrors Index: a LabelIndex is immutable to
// readers, Append returns an extended index sharing the untouched tails
// of the old one, Appends must be serialized by the caller and only ever
// applied to the newest index of a chain, and removals are not label
// events — tombstoned ids stay listed and are filtered by the scan's
// liveness predicate.
type LabelIndex struct {
	n      int
	vertex map[graph.Label]*labelList
	edge   map[graph.Label]*labelList
}

// labelList is one label's postings: ids[i] contains the label
// counts[i] times (counts[i] >= 1 always; absent graphs are not listed).
type labelList struct {
	ids    []int32
	counts []int32
}

// LabelsFromGraphs builds the label index for graphs with ids
// [0, len(gs)).
func LabelsFromGraphs(gs []*graph.Graph) *LabelIndex {
	l := &LabelIndex{
		vertex: make(map[graph.Label]*labelList),
		edge:   make(map[graph.Label]*labelList),
	}
	return l.Append(gs)
}

// N returns the number of ids covered (ids are exactly [0, N)).
func (l *LabelIndex) N() int { return l.n }

// Append extends the index with the graphs of ids [N, N+len(gs)) and
// returns the extended index. Like Index.Append, the receiver stays
// valid for concurrent readers (appended entries land beyond every
// published slice length) and callers must serialize Appends, always
// appending to the newest index of a chain.
func (l *LabelIndex) Append(gs []*graph.Graph) *LabelIndex {
	if len(gs) == 0 {
		return l
	}
	next := &LabelIndex{
		n:      l.n + len(gs),
		vertex: make(map[graph.Label]*labelList, len(l.vertex)),
		edge:   make(map[graph.Label]*labelList, len(l.edge)),
	}
	for lab, ll := range l.vertex {
		next.vertex[lab] = &labelList{ids: ll.ids, counts: ll.counts}
	}
	for lab, ll := range l.edge {
		next.edge[lab] = &labelList{ids: ll.ids, counts: ll.counts}
	}
	// Per-graph scratch: label -> occurrences, reused across graphs.
	vc := make(map[graph.Label]int32)
	ec := make(map[graph.Label]int32)
	for i, g := range gs {
		id := int32(l.n + i)
		clear(vc)
		clear(ec)
		for v := 0; v < g.N(); v++ {
			vc[g.VertexLabel(v)]++
		}
		for _, e := range g.Edges() {
			ec[e.Label]++
		}
		appendCounts(next.vertex, vc, id)
		appendCounts(next.edge, ec, id)
	}
	return next
}

func appendCounts(m map[graph.Label]*labelList, counts map[graph.Label]int32, id int32) {
	for lab, c := range counts {
		ll := m[lab]
		if ll == nil {
			ll = &labelList{}
			m[lab] = ll
		}
		ll.ids = append(ll.ids, id)
		ll.counts = append(ll.counts, c)
	}
}

// Vertex returns, ascending, the ids of graphs containing vertex label
// lab at least minCount times (minCount <= 1 means presence). When
// minCount <= 1 the returned slice is shared with the index and must
// not be modified; otherwise it is freshly allocated.
func (l *LabelIndex) Vertex(lab graph.Label, minCount int) []int32 {
	return lookup(l.vertex, lab, minCount)
}

// Edge is Vertex for edge labels.
func (l *LabelIndex) Edge(lab graph.Label, minCount int) []int32 {
	return lookup(l.edge, lab, minCount)
}

func lookup(m map[graph.Label]*labelList, lab graph.Label, minCount int) []int32 {
	ll := m[lab]
	if ll == nil {
		return nil
	}
	if minCount <= 1 {
		return ll.ids
	}
	var out []int32
	for i, id := range ll.ids {
		if int(ll.counts[i]) >= minCount {
			out = append(out, id)
		}
	}
	return out
}

// OnesRange returns, ascending, the ids whose vector has a set-bit
// count in [min, max] (max <= 0 or max > p means "up to p") — the
// ones-count buckets merged into one sorted list, the pushdown form of
// a dimension-density filter.
func (ix *Index) OnesRange(min, max int) []int32 {
	if min < 0 {
		min = 0
	}
	if max <= 0 || max > ix.p {
		max = ix.p
	}
	var lists [][]int32
	for c := min; c <= max && c < len(ix.byCount); c++ {
		if len(ix.byCount[c]) > 0 {
			lists = append(lists, ix.byCount[c])
		}
	}
	return Union(lists...)
}
