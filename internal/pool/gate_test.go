package pool

import (
	"sync"
	"testing"
)

func TestGateBoundsInFlight(t *testing.T) {
	g := NewGate(2)
	if !g.TryEnter() || !g.TryEnter() {
		t.Fatalf("empty gate refused admission")
	}
	if g.TryEnter() {
		t.Fatalf("full gate admitted a third request")
	}
	if g.InFlight() != 2 || g.Capacity() != 2 {
		t.Fatalf("InFlight=%d Capacity=%d, want 2/2", g.InFlight(), g.Capacity())
	}
	if g.Rejects() != 1 {
		t.Fatalf("Rejects = %d, want 1", g.Rejects())
	}
	g.Leave()
	if !g.TryEnter() {
		t.Fatalf("gate with a freed slot refused admission")
	}
	g.Leave()
	g.Leave()
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after all leaves, want 0", g.InFlight())
	}
}

func TestGateUnlimited(t *testing.T) {
	for _, n := range []int{0, -3} {
		g := NewGate(n)
		for i := 0; i < 100; i++ {
			if !g.TryEnter() {
				t.Fatalf("NewGate(%d) rejected request %d, want unlimited", n, i)
			}
		}
		g.Leave() // must not panic or block
		if g.Capacity() != 0 || g.Rejects() != 0 {
			t.Fatalf("NewGate(%d): Capacity=%d Rejects=%d", n, g.Capacity(), g.Rejects())
		}
	}
}

// TestGateConcurrent races admits and leaves; under -race this checks
// the counters, and the invariant that admitted never exceeds capacity.
func TestGateConcurrent(t *testing.T) {
	const cap, workers, per = 4, 16, 500
	g := NewGate(cap)
	var admitted, maxSeen int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if !g.TryEnter() {
					continue
				}
				mu.Lock()
				admitted++
				if n := int64(g.InFlight()); n > maxSeen {
					maxSeen = n
				}
				mu.Unlock()
				g.Leave()
			}
		}()
	}
	wg.Wait()
	if maxSeen > cap {
		t.Fatalf("observed %d in flight, capacity %d", maxSeen, cap)
	}
	if admitted+g.Rejects() != workers*per {
		t.Fatalf("admitted %d + rejected %d != %d attempts", admitted, g.Rejects(), workers*per)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", g.InFlight())
	}
}
