package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBudgetRunsEveryIndex(t *testing.T) {
	b := NewBudget(3)
	var hits [50]atomic.Int32
	if err := b.ForContext(context.Background(), len(hits), func(i int) {
		hits[i].Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
}

// TestBudgetSharedAcrossLoops pins the point of Budget: k concurrent loops
// over one budget stay within callers+budget workers in total, where the
// same loops through pool.ForContext would occupy k×workers.
func TestBudgetSharedAcrossLoops(t *testing.T) {
	const (
		budget  = 2
		callers = 4
		perLoop = 30
	)
	b := NewBudget(budget)
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.ForContext(context.Background(), perLoop, func(int) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > callers+budget {
		t.Fatalf("peak concurrency %d exceeds callers+budget = %d", got, callers+budget)
	}
}

// TestBudgetExhaustedStillProgresses: with every token held hostage, a
// loop must still complete on the calling goroutine alone.
func TestBudgetExhaustedStillProgresses(t *testing.T) {
	b := NewBudget(2)
	for i := 0; i < b.Workers(); i++ {
		b.sem <- struct{}{} // exhaust the budget
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var n atomic.Int32
		if err := b.ForContext(context.Background(), 10, func(int) { n.Add(1) }); err != nil {
			t.Errorf("ForContext: %v", err)
		}
		if n.Load() != 10 {
			t.Errorf("ran %d of 10 indices", n.Load())
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop deadlocked on an exhausted budget")
	}
}

// TestBudgetTokensReleased: after a loop finishes, the full budget is free
// again.
func TestBudgetTokensReleased(t *testing.T) {
	b := NewBudget(3)
	for round := 0; round < 5; round++ {
		if err := b.ForContext(context.Background(), 20, func(int) {}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < b.Workers(); i++ {
		select {
		case b.sem <- struct{}{}:
		default:
			t.Fatalf("token %d still held after loops returned", i)
		}
	}
}

func TestBudgetCancellation(t *testing.T) {
	b := NewBudget(2)
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int32
	err := b.ForContext(ctx, 1000, func(i int) {
		if n.Add(1) == 3 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := n.Load(); got >= 1000 {
		t.Fatalf("cancellation did not skip any work (ran %d)", got)
	}
}

func TestBudgetZeroAndNegativeN(t *testing.T) {
	b := NewBudget(1)
	if err := b.ForContext(context.Background(), 0, func(int) { t.Fatal("fn called") }); err != nil {
		t.Fatal(err)
	}
	if err := b.ForContext(context.Background(), -5, func(int) { t.Fatal("fn called") }); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetDefaultSize(t *testing.T) {
	if got := NewBudget(0).Workers(); got != DefaultWorkers(0) {
		t.Fatalf("NewBudget(0).Workers() = %d, want %d", got, DefaultWorkers(0))
	}
	if got := NewBudget(7).Workers(); got != 7 {
		t.Fatalf("NewBudget(7).Workers() = %d, want 7", got)
	}
}
