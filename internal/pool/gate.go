package pool

import "sync/atomic"

// Gate is a bounded admission lane: at most n requests in flight, and a
// request that finds the lane full is turned away immediately instead
// of queueing. Where Budget bounds how many *workers* a running loop
// may recruit (degrading to sequential under pressure), a Gate bounds
// how many *requests* get to run at all — the knob a server uses to
// return 429 under overload rather than letting a scan storm pile onto
// the write path. Separate gates make separate lanes: a read gate can
// saturate while the write gate still admits.
type Gate struct {
	sem     chan struct{}
	rejects atomic.Int64
}

// NewGate returns a gate admitting at most n concurrent requests;
// n <= 0 means unlimited (TryEnter always succeeds).
func NewGate(n int) *Gate {
	g := &Gate{}
	if n > 0 {
		g.sem = make(chan struct{}, n)
	}
	return g
}

// TryEnter claims a slot if one is free. It never blocks: false means
// the lane is full right now and the caller should shed the request.
// Every false return is counted in Rejects.
func (g *Gate) TryEnter() bool {
	if g.sem == nil {
		return true
	}
	select {
	case g.sem <- struct{}{}:
		return true
	default:
		g.rejects.Add(1)
		return false
	}
}

// Leave releases a slot claimed by a successful TryEnter. Calls must
// pair one-to-one with true returns from TryEnter.
func (g *Gate) Leave() {
	if g.sem != nil {
		<-g.sem
	}
}

// InFlight returns the number of currently admitted requests
// (always 0 for an unlimited gate).
func (g *Gate) InFlight() int { return len(g.sem) }

// Capacity returns the lane width; 0 means unlimited.
func (g *Gate) Capacity() int { return cap(g.sem) }

// Rejects returns the cumulative number of requests turned away.
func (g *Gate) Rejects() int64 { return g.rejects.Load() }
