package pool

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		counts := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(5); got != 5 {
		t.Fatalf("DefaultWorkers(5) = %d", got)
	}
	if got := DefaultWorkers(0); got < 1 {
		t.Fatalf("DefaultWorkers(0) = %d, want >= 1", got)
	}
	if got := DefaultWorkers(-1); got < 1 {
		t.Fatalf("DefaultWorkers(-1) = %d, want >= 1", got)
	}
}
