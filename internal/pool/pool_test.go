package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		counts := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForContextCompletesWhenNotCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 50
		counts := make([]int32, n)
		err := ForContext(context.Background(), workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForContextCancelSkipsSuffix(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		const n = 10000
		err := ForContext(ctx, workers, n, func(i int) {
			if ran.Add(1) == 8 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Cancellation mid-range must skip work: in-flight calls finish
		// (up to one per worker) but the bulk of the range is never run.
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: all %d indices ran despite cancellation", workers, got)
		}
	}
}

func TestForContextPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForContext(ctx, 4, 100, func(int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The select may race one index per worker, but a pre-cancelled context
	// must not run the whole range.
	if got := ran.Load(); got > 4 {
		t.Fatalf("%d calls ran with a pre-cancelled context", got)
	}
}

func TestForContextWaitsForInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var inFlight, finished atomic.Int32
	err := ForContext(ctx, 4, 64, func(i int) {
		inFlight.Add(1)
		cancel()
		time.Sleep(time.Millisecond)
		finished.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if inFlight.Load() != finished.Load() {
		t.Fatalf("ForContext returned with %d of %d calls unfinished",
			inFlight.Load()-finished.Load(), inFlight.Load())
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(5); got != 5 {
		t.Fatalf("DefaultWorkers(5) = %d", got)
	}
	if got := DefaultWorkers(0); got < 1 {
		t.Fatalf("DefaultWorkers(0) = %d, want >= 1", got)
	}
	if got := DefaultWorkers(-1); got < 1 {
		t.Fatalf("DefaultWorkers(-1) = %d, want >= 1", got)
	}
}
