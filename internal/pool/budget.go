package pool

import (
	"context"
	"sync"
)

// Budget is a fixed allotment of workers shared by any number of
// concurrent parallel loops. Where For/ForContext give every call site its
// own worker count — so k concurrent callers can occupy k×workers
// goroutines — loops run through one Budget draw extra workers from a
// single pot, bounding the process-wide fan-out no matter how many shards,
// collections, or requests are in flight at once.
//
// The budget is cooperative, not blocking: a loop always runs on its
// calling goroutine, and recruits extra workers only while tokens are
// free. An exhausted budget therefore degrades every caller to a
// sequential loop instead of deadlocking or queueing — total concurrency
// is bounded by (callers + Workers()).
type Budget struct {
	sem chan struct{}
}

// NewBudget returns a budget of n shared workers; n <= 0 means one worker
// per CPU (DefaultWorkers).
func NewBudget(n int) *Budget {
	return &Budget{sem: make(chan struct{}, DefaultWorkers(n))}
}

// Workers returns the size of the shared allotment.
func (b *Budget) Workers() int { return cap(b.sem) }

// ForContext runs fn(i) for every i in [0, n) on the calling goroutine
// plus up to min(n-1, free tokens) recruited workers. Like
// pool.ForContext, fn must be safe to call concurrently for distinct i,
// in-flight calls run to completion after cancellation, and a nil return
// guarantees fn ran for every i.
func (b *Budget) ForContext(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)

	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		select {
		case b.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-b.sem }()
				drain(ctx, idx, fn)
			}()
			continue
		default:
		}
		break // budget exhausted right now; the caller still works
	}
	drain(ctx, idx, fn)
	wg.Wait()
	return ctx.Err()
}

// drain consumes indices until the channel closes or ctx is cancelled.
func drain(ctx context.Context, idx <-chan int, fn func(i int)) {
	done := ctx.Done()
	for i := range idx {
		select {
		case <-done:
			return
		default:
		}
		fn(i)
	}
}
