// Package pool provides the bounded worker pool shared by every
// parallelized stage of the offline build path (pairwise MCS matrices,
// gSpan root-pattern mining, per-graph vector mapping) and the online
// batch query path. Keeping the fan-out logic in one place makes the
// concurrency model auditable: every parallel loop in the repository is a
// pool.For over an index range with a caller-chosen worker count.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers resolves a Workers option: values <= 0 mean "one worker
// per CPU" (GOMAXPROCS, which respects cgroup and runtime limits).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines.
// workers <= 1 degenerates to a plain sequential loop on the calling
// goroutine — zero overhead and trivially deterministic, which is what
// makes Workers: 1 a meaningful determinism baseline. fn must be safe to
// call concurrently for distinct i; For returns only after every call has
// finished.
func For(workers, n int, fn func(i int)) {
	// context.Background() is never cancelled, so the error is always nil.
	_ = ForContext(context.Background(), workers, n, fn)
}

// ForContext is For with cancellation: it stops handing out new indices
// once ctx is done and returns ctx.Err(). In-flight fn calls always run to
// completion — ForContext returns only after every started call has
// finished, so callers may free or reuse shared state as soon as it
// returns. A nil return guarantees fn ran for every i in [0, n);
// a non-nil return means some suffix of the range was skipped.
func ForContext(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	// Atomic-free striding would unbalance irregular work (MCS searches
	// vary by orders of magnitude per pair), so hand out indices through a
	// channel: cheap at this granularity and naturally work-stealing.
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case i, ok := <-idx:
					if !ok {
						return
					}
					// select chooses randomly when both channels are
					// ready; re-check done so cancellation wins
					// deterministically once observed.
					select {
					case <-done:
						return
					default:
					}
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
