// Package pool provides the bounded worker pool shared by every
// parallelized stage of the offline build path (pairwise MCS matrices,
// gSpan root-pattern mining, per-graph vector mapping) and the online
// batch query path. Keeping the fan-out logic in one place makes the
// concurrency model auditable: every parallel loop in the repository is a
// pool.For over an index range with a caller-chosen worker count.
package pool

import (
	"runtime"
	"sync"
)

// DefaultWorkers resolves a Workers option: values <= 0 mean "one worker
// per CPU" (GOMAXPROCS, which respects cgroup and runtime limits).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines.
// workers <= 1 degenerates to a plain sequential loop on the calling
// goroutine — zero overhead and trivially deterministic, which is what
// makes Workers: 1 a meaningful determinism baseline. fn must be safe to
// call concurrently for distinct i; For returns only after every call has
// finished.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Atomic-free striding would unbalance irregular work (MCS searches
	// vary by orders of magnitude per pair), so hand out indices through a
	// channel: cheap at this granularity and naturally work-stealing.
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
