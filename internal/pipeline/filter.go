package pipeline

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/posting"
)

// Filter is a declarative structural predicate over graphs. Unlike a
// SearchOptions.Predicate closure it is inspectable, so the engine can
// (a) push the parts a posting list can answer below the scan and
// (b) serialize the whole thing to canonical bytes for the query
// cache's generation-fenced key.
//
// Zero values mean "unconstrained": a Max* of 0 is no upper bound, an
// empty label/dim slice imposes nothing.
type Filter struct {
	// Vertex/edge count ranges (inclusive; 0 max = unbounded).
	MinVertices int `json:"min_vertices,omitempty"`
	MaxVertices int `json:"max_vertices,omitempty"`
	MinEdges    int `json:"min_edges,omitempty"`
	MaxEdges    int `json:"max_edges,omitempty"`

	// Label-histogram predicates: every listed label must occur at
	// least MinCount times (MinCount 0 or 1 = presence).
	VertexLabels []LabelCount `json:"vertex_labels,omitempty"`
	EdgeLabels   []LabelCount `json:"edge_labels,omitempty"`

	// Dimension-bit predicates on the mapped vector: DimsAll requires
	// every listed dimension bit set, DimsAny at least one.
	DimsAll []int `json:"dims_all,omitempty"`
	DimsAny []int `json:"dims_any,omitempty"`

	// Ones-count range over the mapped vector (inclusive; 0 max =
	// unbounded) — a density band over dimension space.
	MinOnes int `json:"min_ones,omitempty"`
	MaxOnes int `json:"max_ones,omitempty"`
}

// LabelCount is one label-histogram constraint.
type LabelCount struct {
	Label    int `json:"label"`
	MinCount int `json:"min_count,omitempty"`
}

// Validate rejects structurally impossible filters.
func (f *Filter) Validate() error {
	for _, v := range []struct {
		name     string
		min, max int
	}{
		{"vertices", f.MinVertices, f.MaxVertices},
		{"edges", f.MinEdges, f.MaxEdges},
		{"ones", f.MinOnes, f.MaxOnes},
	} {
		if v.min < 0 || v.max < 0 {
			return fmt.Errorf("%s range must be non-negative, got [%d, %d]", v.name, v.min, v.max)
		}
		if v.max > 0 && v.max < v.min {
			return fmt.Errorf("%s range is empty: max %d < min %d", v.name, v.max, v.min)
		}
	}
	for _, lc := range f.VertexLabels {
		if lc.Label < 0 || lc.MinCount < 0 {
			return fmt.Errorf("vertex label constraint {%d, %d} must be non-negative", lc.Label, lc.MinCount)
		}
	}
	for _, lc := range f.EdgeLabels {
		if lc.Label < 0 || lc.MinCount < 0 {
			return fmt.Errorf("edge label constraint {%d, %d} must be non-negative", lc.Label, lc.MinCount)
		}
	}
	for _, d := range f.DimsAll {
		if d < 0 {
			return fmt.Errorf("dims_all dimension %d must be non-negative", d)
		}
	}
	for _, d := range f.DimsAny {
		if d < 0 {
			return fmt.Errorf("dims_any dimension %d must be non-negative", d)
		}
	}
	return nil
}

// normalized returns a canonical copy: labels sorted with duplicates
// merged (max MinCount wins, 0 lifted to 1), dims sorted and deduped.
// The copy shares nothing mutable with the receiver.
func (f *Filter) normalized() *Filter {
	n := *f
	n.VertexLabels = normLabels(f.VertexLabels)
	n.EdgeLabels = normLabels(f.EdgeLabels)
	n.DimsAll = normDims(f.DimsAll)
	n.DimsAny = normDims(f.DimsAny)
	return &n
}

func normLabels(lcs []LabelCount) []LabelCount {
	if len(lcs) == 0 {
		return nil
	}
	out := make([]LabelCount, len(lcs))
	copy(out, lcs)
	for i := range out {
		if out[i].MinCount < 1 {
			out[i].MinCount = 1
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	w := 0
	for _, lc := range out[1:] {
		if lc.Label == out[w].Label {
			if lc.MinCount > out[w].MinCount {
				out[w].MinCount = lc.MinCount
			}
			continue
		}
		w++
		out[w] = lc
	}
	return out[:w+1]
}

func normDims(ds []int) []int {
	if len(ds) == 0 {
		return nil
	}
	out := make([]int, len(ds))
	copy(out, ds)
	sort.Ints(out)
	w := 0
	for _, d := range out[1:] {
		if d == out[w] {
			continue
		}
		w++
		out[w] = d
	}
	return out[:w+1]
}

// Canon appends the filter's canonical byte encoding to dst. Two
// filters with the same meaning (after normalization) encode
// identically, which is what lets graphdim's cache key cover
// declarative filters where an opaque Predicate must bypass the cache.
// The encoding is a fixed field order of uvarints with length-prefixed
// lists; it never needs decoding, only equality.
func (f *Filter) Canon(dst []byte) []byte {
	n := f.normalized()
	put := func(v int) {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	put(n.MinVertices)
	put(n.MaxVertices)
	put(n.MinEdges)
	put(n.MaxEdges)
	put(len(n.VertexLabels))
	for _, lc := range n.VertexLabels {
		put(lc.Label)
		put(lc.MinCount)
	}
	put(len(n.EdgeLabels))
	for _, lc := range n.EdgeLabels {
		put(lc.Label)
		put(lc.MinCount)
	}
	put(len(n.DimsAll))
	for _, d := range n.DimsAll {
		put(d)
	}
	put(len(n.DimsAny))
	for _, d := range n.DimsAny {
		put(d)
	}
	put(n.MinOnes)
	put(n.MaxOnes)
	return dst
}

// CanonFilters encodes a filter chain: a uvarint count followed by each
// filter's Canon bytes.
func CanonFilters(fs []*Filter, dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = f.Canon(dst)
	}
	return dst
}

// Catalog is what a snapshot offers the filter compiler: the id count,
// the per-dimension posting index (with ones-count buckets), and the
// per-label posting index. Either index may be nil — the corresponding
// predicates then fall back to residual per-graph evaluation.
type Catalog struct {
	N      int
	Post   *posting.Index
	Labels *posting.LabelIndex
}

// Compiled is the executable form of a filter chain against one
// catalog. IDs is the sorted intersection of every pushed posting
// constraint; Restricted distinguishes "no pushdown happened" (IDs nil,
// scan everything) from "pushdown matched nothing" (IDs empty).
// Residual, when non-nil, must additionally hold for a graph to pass.
// Pushed and Fallback count the individual predicates answered by
// postings vs. deferred to the scan — the observability split surfaced
// on /metrics.
type Compiled struct {
	IDs        []int32
	Restricted bool
	Residual   func(id int, g *graph.Graph) bool
	Pushed     int
	Fallback   int
}

// Matches reports whether graph id/g passes the compiled filter. The
// IDs membership test is a binary search, so this is for spot checks
// and tests; scans should iterate IDs directly.
func (c *Compiled) Matches(id int, g *graph.Graph) bool {
	if c.Restricted {
		i := sort.Search(len(c.IDs), func(i int) bool { return c.IDs[i] >= int32(id) })
		if i >= len(c.IDs) || c.IDs[i] != int32(id) {
			return false
		}
	}
	return c.Residual == nil || c.Residual(id, g)
}

// CompileFilters compiles a filter chain against a catalog, pushing
// every predicate a posting list or ones-count bucket can answer into
// one sorted id intersection and folding the rest into a residual
// per-graph predicate. Filters are ANDed. Dimension predicates that
// reference a dimension outside [0, Post.P()) are an error (the wire
// surface maps it to a 400).
func CompileFilters(fs []*Filter, cat Catalog) (*Compiled, error) {
	c := &Compiled{}
	var lists [][]int32 // pushed posting constraints, ANDed
	var residuals []func(id int, g *graph.Graph) bool
	push := func(l []int32) {
		lists = append(lists, l)
		c.Pushed++
	}
	for _, f0 := range fs {
		f := f0.normalized()

		// Dimension-bit predicates need the posting index; there is no
		// residual form (graphs alone don't carry their mapped vector).
		if len(f.DimsAll) > 0 || len(f.DimsAny) > 0 || f.MinOnes > 0 || f.MaxOnes > 0 {
			if cat.Post == nil {
				return nil, fmt.Errorf("dimension predicates need a posting index")
			}
			for _, d := range append(f.DimsAll, f.DimsAny...) {
				if d >= cat.Post.P() {
					return nil, fmt.Errorf("dimension %d out of range [0, %d)", d, cat.Post.P())
				}
			}
		}
		for _, d := range f.DimsAll {
			push(cat.Post.List(d))
		}
		if len(f.DimsAny) > 0 {
			anyLists := make([][]int32, len(f.DimsAny))
			for i, d := range f.DimsAny {
				anyLists[i] = cat.Post.List(d)
			}
			push(posting.Union(anyLists...))
		}
		if f.MinOnes > 0 || f.MaxOnes > 0 {
			push(cat.Post.OnesRange(f.MinOnes, f.MaxOnes))
		}

		// Label predicates: posting pushdown when a label index is
		// available, residual histogram scan otherwise.
		if cat.Labels != nil {
			for _, lc := range f.VertexLabels {
				push(cat.Labels.Vertex(graph.Label(lc.Label), lc.MinCount))
			}
			for _, lc := range f.EdgeLabels {
				push(cat.Labels.Edge(graph.Label(lc.Label), lc.MinCount))
			}
		} else if len(f.VertexLabels) > 0 || len(f.EdgeLabels) > 0 {
			vl, el := f.VertexLabels, f.EdgeLabels
			residuals = append(residuals, func(_ int, g *graph.Graph) bool {
				return labelsMatch(g, vl, el)
			})
			c.Fallback += len(vl) + len(el)
		}

		// Count ranges stay residual: O(1) per graph, not worth lists.
		if f.MinVertices > 0 || f.MaxVertices > 0 || f.MinEdges > 0 || f.MaxEdges > 0 {
			mv, xv, me, xe := f.MinVertices, f.MaxVertices, f.MinEdges, f.MaxEdges
			residuals = append(residuals, func(_ int, g *graph.Graph) bool {
				if g.N() < mv || (xv > 0 && g.N() > xv) {
					return false
				}
				return g.M() >= me && (xe == 0 || g.M() <= xe)
			})
			c.Fallback++
		}
	}
	if len(lists) > 0 {
		c.IDs = posting.Intersect(lists...)
		c.Restricted = true
	}
	if len(residuals) == 1 {
		c.Residual = residuals[0]
	} else if len(residuals) > 1 {
		c.Residual = func(id int, g *graph.Graph) bool {
			for _, r := range residuals {
				if !r(id, g) {
					return false
				}
			}
			return true
		}
	}
	return c, nil
}

// AnalyzeFilters reports the pushdown/fallback predicate split
// CompileFilters would produce against a catalog offering (or not) a
// posting and a label index, without materializing any lists — the
// cheap form behind Stats and the /metrics counters.
func AnalyzeFilters(fs []*Filter, hasPost, hasLabels bool) (pushed, fallback int) {
	for _, f0 := range fs {
		f := f0.normalized()
		if hasPost {
			pushed += len(f.DimsAll)
			if len(f.DimsAny) > 0 {
				pushed++
			}
			if f.MinOnes > 0 || f.MaxOnes > 0 {
				pushed++
			}
		}
		if hasLabels {
			pushed += len(f.VertexLabels) + len(f.EdgeLabels)
		} else if len(f.VertexLabels) > 0 || len(f.EdgeLabels) > 0 {
			fallback += len(f.VertexLabels) + len(f.EdgeLabels)
		}
		if f.MinVertices > 0 || f.MaxVertices > 0 || f.MinEdges > 0 || f.MaxEdges > 0 {
			fallback++
		}
	}
	return pushed, fallback
}

// CheckDims rejects dimension predicates referencing dimensions outside
// [0, p) — the up-front form of the range check CompileFilters performs,
// so a wire frontend can 400 before any shard work runs.
func (f *Filter) CheckDims(p int) error {
	for _, d := range f.DimsAll {
		if d >= p {
			return fmt.Errorf("dims_all dimension %d out of range [0, %d)", d, p)
		}
	}
	for _, d := range f.DimsAny {
		if d >= p {
			return fmt.Errorf("dims_any dimension %d out of range [0, %d)", d, p)
		}
	}
	return nil
}

// labelsMatch is the residual label-histogram check used when no label
// index is available: single pass over vertices and edges, early out.
func labelsMatch(g *graph.Graph, vl, el []LabelCount) bool {
	for _, lc := range vl {
		need, lab := lc.MinCount, graph.Label(lc.Label)
		for v := 0; v < g.N() && need > 0; v++ {
			if g.VertexLabel(v) == lab {
				need--
			}
		}
		if need > 0 {
			return false
		}
	}
	for _, lc := range el {
		need, lab := lc.MinCount, graph.Label(lc.Label)
		for _, e := range g.Edges() {
			if e.Label == lab {
				if need--; need == 0 {
					break
				}
			}
		}
		if need > 0 {
			return false
		}
	}
	return true
}
