package pipeline

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/graph"
)

// Row is one graph flowing between stages. Search rows carry a
// distance and the producing engine; scan rows carry neither
// (HasDistance false). G is only populated when the plan's aggregates
// need graph structure (Plan.NeedsGraphs).
type Row struct {
	ID          int
	Distance    float64
	HasDistance bool
	Engine      string
	G           *graph.Graph
}

// ResultRow is a returned row; Distance is nil for scan rows.
type ResultRow struct {
	ID       int      `json:"id"`
	Distance *float64 `json:"distance,omitempty"`
}

// Group is one group-by bucket.
type Group struct {
	// Key is the rendered group key ("7" for a label, "mapped" for an
	// engine, "[0.05,0.10)" for a score bucket).
	Key   string `json:"key"`
	Count int64  `json:"count"`
	// Distance spread of the group's rows; omitted for scan rows.
	MinDistance  *float64 `json:"min_distance,omitempty"`
	MaxDistance  *float64 `json:"max_distance,omitempty"`
	MeanDistance *float64 `json:"mean_distance,omitempty"`

	// ord gives numeric keys a numeric sort order (label value, bucket
	// index) so "10" doesn't sort before "2".
	ord int64
}

// Stats reports how a pipeline executed: how many rows the stage chain
// saw, the pushdown/fallback split of the filter compiler, and
// per-stage wall time.
type Stats struct {
	// Matched counts rows that passed the filters and entered
	// aggregation (for search pipelines: results returned by search).
	Matched int64 `json:"matched"`
	// Candidates is the pushdown intersection size, -1 when filters
	// did not restrict the scan.
	Candidates int64 `json:"candidates"`
	// Engine echoes the search engine used, "" for scan pipelines.
	Engine string `json:"engine,omitempty"`
	// PushedPredicates / FallbackPredicates split the filter predicates
	// answered by posting lists vs. evaluated per graph.
	PushedPredicates   int `json:"pushed_predicates"`
	FallbackPredicates int `json:"fallback_predicates"`
	// Stages holds per-stage timings in execution order.
	Stages []StageTiming `json:"stages,omitempty"`
	// ElapsedMS is the end-to-end pipeline time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// StageTiming is one stage's wall time.
type StageTiming struct {
	Stage     string  `json:"stage"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Result is the output of a pipeline run.
type Result struct {
	Rows   []ResultRow `json:"rows,omitempty"`
	Count  *int64      `json:"count,omitempty"`
	Groups []Group     `json:"groups,omitempty"`
	Stats  Stats       `json:"stats"`
}

// Aggregator folds the row stream of one pipeline (or one shard's part
// of it) according to the aggregate stages of a Plan. It streams:
// count and group-by keep O(groups) state, topk/limit keep a bounded
// heap, and nothing else is materialized. Partial aggregators from
// shard fan-out combine with Merge; Finish renders the Result.
//
// An Aggregator is not safe for concurrent use — fan-outs run one per
// shard and merge.
type Aggregator struct {
	plan  *Plan
	bound int // row heap capacity; 0 = unbounded row collection

	rows    rowHeap
	count   int64
	groups  map[string]*Group
	matched int64
}

// NewAggregator builds the aggregator for a plan.
func NewAggregator(pl *Plan) *Aggregator {
	a := &Aggregator{plan: pl, bound: pl.RowBound()}
	if pl.GroupBy != nil {
		a.groups = make(map[string]*Group)
	}
	return a
}

// Add folds one row.
func (a *Aggregator) Add(r Row) {
	a.matched++
	pl := a.plan
	if pl.Count != nil {
		a.count++
		return
	}
	if pl.GroupBy != nil {
		a.groupRow(r)
		return
	}
	if a.bound > 0 && len(a.rows) >= a.bound {
		if !rowLess(r, a.rows[0]) {
			return // worse than the current worst kept row
		}
		a.rows[0] = r
		heap.Fix(&a.rows, 0)
		return
	}
	heap.Push(&a.rows, r)
}

func (a *Aggregator) groupRow(r Row) {
	switch a.plan.GroupBy.Key {
	case KeyVertexLabel:
		for _, lab := range distinctVertexLabels(r.G) {
			a.bump(strconv.Itoa(int(lab)), int64(lab), r)
		}
	case KeyEdgeLabel:
		for _, lab := range distinctEdgeLabels(r.G) {
			a.bump(strconv.Itoa(int(lab)), int64(lab), r)
		}
	case KeyEngine:
		a.bump(r.Engine, 0, r)
	case KeyScoreBucket:
		w := a.plan.GroupBy.BucketWidth
		if w <= 0 {
			w = DefaultBucketWidth
		}
		b := int64(math.Floor(r.Distance / w))
		lo, hi := float64(b)*w, float64(b+1)*w
		a.bump(fmt.Sprintf("[%.2f,%.2f)", lo, hi), b, r)
	}
}

func (a *Aggregator) bump(key string, ord int64, r Row) {
	g := a.groups[key]
	if g == nil {
		g = &Group{Key: key, ord: ord}
		if r.HasDistance {
			lo, hi := r.Distance, r.Distance
			g.MinDistance, g.MaxDistance = &lo, &hi
			g.MeanDistance = new(float64) // reused as the running sum
		}
		a.groups[key] = g
	}
	g.Count++
	if r.HasDistance && g.MinDistance != nil {
		if r.Distance < *g.MinDistance {
			*g.MinDistance = r.Distance
		}
		if r.Distance > *g.MaxDistance {
			*g.MaxDistance = r.Distance
		}
		*g.MeanDistance += r.Distance
	}
}

func distinctVertexLabels(g *graph.Graph) []graph.Label {
	if g == nil {
		return nil
	}
	seen := make(map[graph.Label]struct{}, 8)
	var out []graph.Label
	for v := 0; v < g.N(); v++ {
		l := g.VertexLabel(v)
		if _, ok := seen[l]; !ok {
			seen[l] = struct{}{}
			out = append(out, l)
		}
	}
	return out
}

func distinctEdgeLabels(g *graph.Graph) []graph.Label {
	if g == nil {
		return nil
	}
	seen := make(map[graph.Label]struct{}, 8)
	var out []graph.Label
	for _, e := range g.Edges() {
		if _, ok := seen[e.Label]; !ok {
			seen[e.Label] = struct{}{}
			out = append(out, e.Label)
		}
	}
	return out
}

// Merge folds another aggregator's partial state into a (shard
// fan-out). Merging partials and then calling Finish yields exactly
// the single-aggregator answer: counts and sums are associative, group
// spreads take min/max, and bounded row heaps re-bound after merge.
func (a *Aggregator) Merge(b *Aggregator) {
	a.matched += b.matched
	a.count += b.count
	for key, bg := range b.groups {
		g := a.groups[key]
		if g == nil {
			a.groups[key] = bg
			continue
		}
		g.Count += bg.Count
		if bg.MinDistance != nil {
			if g.MinDistance == nil {
				g.MinDistance, g.MaxDistance, g.MeanDistance = bg.MinDistance, bg.MaxDistance, bg.MeanDistance
			} else {
				if *bg.MinDistance < *g.MinDistance {
					*g.MinDistance = *bg.MinDistance
				}
				if *bg.MaxDistance > *g.MaxDistance {
					*g.MaxDistance = *bg.MaxDistance
				}
				*g.MeanDistance += *bg.MeanDistance
			}
		}
	}
	for _, r := range b.rows {
		if a.bound > 0 && len(a.rows) >= a.bound {
			if !rowLess(r, a.rows[0]) {
				continue
			}
			a.rows[0] = r
			heap.Fix(&a.rows, 0)
			continue
		}
		heap.Push(&a.rows, r)
	}
}

// Matched returns the rows folded so far (pre-truncation).
func (a *Aggregator) Matched() int64 { return a.matched }

// Finish renders the aggregate state as a Result (Stats left zero for
// the caller to fill).
func (a *Aggregator) Finish() *Result {
	res := &Result{}
	pl := a.plan
	switch {
	case pl.Count != nil:
		c := a.count
		res.Count = &c
	case pl.GroupBy != nil:
		res.Groups = renderGroups(a.groups, pl.GroupBy.Top)
	default:
		rows := make([]Row, len(a.rows))
		copy(rows, a.rows)
		sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j]) })
		if pl.Limit != nil && len(rows) > pl.Limit.N {
			rows = rows[:pl.Limit.N]
		}
		res.Rows = make([]ResultRow, len(rows))
		for i, r := range rows {
			res.Rows[i] = ResultRow{ID: r.ID}
			if r.HasDistance {
				d := r.Distance
				res.Rows[i].Distance = &d
			}
		}
	}
	return res
}

func renderGroups(m map[string]*Group, top int) []Group {
	out := make([]Group, 0, len(m))
	for _, g := range m {
		if g.MeanDistance != nil {
			mean := *g.MeanDistance / float64(g.Count)
			g.MeanDistance = &mean
		}
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].ord != out[j].ord {
			return out[i].ord < out[j].ord
		}
		return out[i].Key < out[j].Key
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// rowLess orders rows for results: by (distance, id) when distances
// exist, ascending id otherwise.
func rowLess(a, b Row) bool {
	if a.HasDistance && b.HasDistance && a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ID < b.ID
}

// rowHeap is a max-heap under rowLess (worst kept row at the root) so
// a bounded top-k keeps the best rows.
type rowHeap []Row

func (h rowHeap) Len() int           { return len(h) }
func (h rowHeap) Less(i, j int) bool { return rowLess(h[j], h[i]) }
func (h rowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *rowHeap) Push(x any)        { *h = append(*h, x.(Row)) }
func (h *rowHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
