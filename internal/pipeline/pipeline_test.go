package pipeline

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/posting"
	"repro/internal/vecspace"
)

// chain builds a path graph over the given vertex labels with edge
// label e between consecutive vertices.
func chain(e int, labels ...int) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(graph.Label(l))
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(i-1, i, graph.Label(e))
	}
	return g
}

func TestParseStages(t *testing.T) {
	body := `{"stages":[
		{"filter":{"min_vertices":2,"vertex_labels":[{"label":7,"min_count":2}]}},
		{"search":{"query":{"labels":[1,2],"edges":[[0,1,0]]},"k":5,"engine":"verified"}},
		{"topk":{"k":3}},
		{"group_by":{"key":"score_bucket","bucket_width":0.1}}
	]}`
	p, err := Parse([]byte(body))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pl, err := p.Plan()
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(pl.Filters) != 1 || pl.Search == nil || pl.TopK == nil || pl.GroupBy == nil {
		t.Fatalf("plan missing stages: %+v", pl)
	}
	if pl.Search.K != 5 || pl.Search.Engine != "verified" {
		t.Fatalf("search stage mis-decoded: %+v", pl.Search)
	}
	q, err := pl.Search.QueryGraph()
	if err != nil {
		t.Fatalf("QueryGraph: %v", err)
	}
	if q.N() != 2 || q.M() != 1 {
		t.Fatalf("query graph %d vertices %d edges", q.N(), q.M())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name      string
		body      string
		wantIndex int    // -1 = not a StageError
		wantName  string // substring of StageError.Name
		wantMsg   string // substring of the error text
	}{
		{"bad json", `{"stages":[`, -1, "", "pipeline"},
		{"no stages", `{"stages":[]}`, -1, "", "no stages"},
		{"unknown top field", `{"stage":[]}`, -1, "", "unknown field"},
		{"unknown stage type", `{"stages":[{"filter":{}},{"frobnicate":{}}]}`, 1, "frobnicate", "unknown stage type"},
		{"two keys", `{"stages":[{"filter":{},"count":{}}]}`, 0, "", "exactly one"},
		{"zero keys", `{"stages":[{}]}`, 0, "", "exactly one"},
		{"unknown stage field", `{"stages":[{"search":{"k":1,"knob":true}}]}`, 0, "search", "unknown field"},
		{"not an object", `{"stages":["filter"]}`, 0, "", "not a JSON object"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.body))
			if err == nil {
				t.Fatal("Parse accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
			var se *StageError
			if tc.wantIndex >= 0 {
				if !errors.As(err, &se) {
					t.Fatalf("want StageError, got %T: %v", err, err)
				}
				if se.Index != tc.wantIndex || !strings.Contains(se.Name, tc.wantName) {
					t.Fatalf("StageError{%d, %q}, want index %d name ~%q", se.Index, se.Name, tc.wantIndex, tc.wantName)
				}
			} else if errors.As(err, &se) {
				t.Fatalf("unexpected StageError: %v", err)
			}
		})
	}
}

func TestPlanOrderingErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"filter after search", `{"stages":[{"search":{"query":{"labels":[1]},"k":1}},{"filter":{}}]}`, "out of order"},
		{"two searches", `{"stages":[{"search":{"query":{"labels":[1]},"k":1}},{"search":{"query":{"labels":[1]},"k":1}}]}`, "out of order"},
		{"topk without search", `{"stages":[{"filter":{}},{"topk":{"k":3}}]}`, "needs a preceding search"},
		{"engine group without search", `{"stages":[{"group_by":{"key":"engine"}}]}`, "needs a preceding search"},
		{"bad group key", `{"stages":[{"group_by":{"key":"color"}}]}`, "unknown group_by key"},
		{"zero k", `{"stages":[{"search":{"query":{"labels":[1]},"k":0}}]}`, "k must be positive"},
		{"bad engine", `{"stages":[{"search":{"query":{"labels":[1]},"k":1,"engine":"warp"}}]}`, "unknown engine"},
		{"bad metric", `{"stages":[{"search":{"query":{"labels":[1]},"k":1,"metric":"cosine"}}]}`, "unknown metric"},
		{"no query graph", `{"stages":[{"search":{"k":1}}]}`, "needs a query graph"},
		{"negative limit", `{"stages":[{"limit":{"n":0}}]}`, "n must be positive"},
		{"empty vertex range", `{"stages":[{"filter":{"min_vertices":5,"max_vertices":2}}]}`, "range is empty"},
		{"negative label", `{"stages":[{"filter":{"vertex_labels":[{"label":-1}]}}]}`, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse([]byte(tc.body))
			if err == nil {
				_, err = p.Plan()
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestPlanScanDefaults(t *testing.T) {
	p, err := Parse([]byte(`{"stages":[{"filter":{"min_edges":1}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if pl.RowBound() != DefaultScanLimit {
		t.Fatalf("scan pipeline row bound %d, want DefaultScanLimit %d", pl.RowBound(), DefaultScanLimit)
	}
	if pl.NeedsGraphs() {
		t.Fatal("row-only scan should not need graphs")
	}
}

func TestCanonNormalization(t *testing.T) {
	// Same meaning, different spelling: labels unsorted with a duplicate
	// (max min_count wins), dims duplicated, min_count 0 == presence.
	a := &Filter{
		VertexLabels: []LabelCount{{Label: 9, MinCount: 2}, {Label: 3}, {Label: 9, MinCount: 1}},
		DimsAll:      []int{5, 1, 5},
		MinOnes:      2,
	}
	b := &Filter{
		VertexLabels: []LabelCount{{Label: 3, MinCount: 1}, {Label: 9, MinCount: 2}},
		DimsAll:      []int{1, 5},
		MinOnes:      2,
	}
	ca, cb := a.Canon(nil), b.Canon(nil)
	if !bytes.Equal(ca, cb) {
		t.Fatalf("equivalent filters encode differently:\n%x\n%x", ca, cb)
	}
	c := &Filter{VertexLabels: []LabelCount{{Label: 3}}, DimsAll: []int{1, 5}, MinOnes: 2}
	if bytes.Equal(ca, c.Canon(nil)) {
		t.Fatal("different filters share an encoding")
	}
	if bytes.Equal(CanonFilters(nil, nil), CanonFilters([]*Filter{{}}, nil)) {
		t.Fatal("no-filters and one-empty-filter share an encoding")
	}
	// Canonicalization must not mutate the receiver.
	if a.DimsAll[0] != 5 || a.VertexLabels[0].Label != 9 {
		t.Fatal("Canon mutated its receiver")
	}
}

// buildCatalog maps the graphs over nDims synthetic single-vertex
// dimension probes so dimension bits mean "contains vertex label d".
func buildCatalog(t *testing.T, gs []*graph.Graph, nDims int) Catalog {
	t.Helper()
	dims := make([]*graph.Graph, nDims)
	for d := 0; d < nDims; d++ {
		dims[d] = chain(0, d)
	}
	m := vecspace.NewMapper(dims)
	vecs := make([]*vecspace.BitVector, len(gs))
	for i, g := range gs {
		vecs[i] = m.Map(g)
	}
	return Catalog{
		N:      len(gs),
		Post:   posting.FromVectors(vecs, nDims),
		Labels: posting.LabelsFromGraphs(gs),
	}
}

func TestCompileFiltersPushdown(t *testing.T) {
	gs := []*graph.Graph{
		chain(1, 0, 1),       // labels {0,1}, edge label 1
		chain(1, 1, 1, 2),    // two 1s
		chain(2, 0, 2),       // edge label 2
		chain(1, 3),          // singleton
		chain(1, 1, 2, 2, 2), // three 2s
	}
	cat := buildCatalog(t, gs, 4)

	cases := []struct {
		name string
		f    Filter
		want []int32
	}{
		{"vertex presence", Filter{VertexLabels: []LabelCount{{Label: 1}}}, []int32{0, 1, 4}},
		{"vertex min count", Filter{VertexLabels: []LabelCount{{Label: 1, MinCount: 2}}}, []int32{1}},
		{"edge presence", Filter{EdgeLabels: []LabelCount{{Label: 2}}}, []int32{2}},
		{"edge min count", Filter{EdgeLabels: []LabelCount{{Label: 1, MinCount: 2}}}, []int32{1, 4}},
		{"dims all", Filter{DimsAll: []int{1, 2}}, []int32{1, 4}},
		{"dims any", Filter{DimsAny: []int{0, 3}}, []int32{0, 2, 3}},
		{"ones range", Filter{MinOnes: 2, MaxOnes: 2}, []int32{0, 1, 2, 4}},
		{"conjunction", Filter{VertexLabels: []LabelCount{{Label: 2}}, EdgeLabels: []LabelCount{{Label: 1}}}, []int32{1, 4}},
		{"empty", Filter{VertexLabels: []LabelCount{{Label: 99}}}, []int32{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			comp, err := CompileFilters([]*Filter{&tc.f}, cat)
			if err != nil {
				t.Fatal(err)
			}
			if !comp.Restricted {
				t.Fatal("pushable filter did not restrict")
			}
			if comp.Residual != nil {
				t.Fatal("pushable filter left a residual")
			}
			got := comp.IDs
			if got == nil {
				got = []int32{}
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("IDs %v, want %v", got, tc.want)
			}
			// The pushed result must agree with brute force per graph.
			for id, g := range gs {
				if comp.Matches(id, g) != contains(tc.want, int32(id)) {
					t.Fatalf("Matches(%d) disagrees with IDs", id)
				}
			}
		})
	}
}

func contains(ids []int32, id int32) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func TestCompileFiltersResidual(t *testing.T) {
	gs := []*graph.Graph{chain(1, 0, 1), chain(1, 1, 1, 2), chain(2, 0, 2)}
	cat := buildCatalog(t, gs, 4)

	// Count ranges are residual-only.
	comp, err := CompileFilters([]*Filter{{MinVertices: 3}}, cat)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Restricted || comp.Residual == nil || comp.Fallback != 1 || comp.Pushed != 0 {
		t.Fatalf("count-range compile: %+v", comp)
	}
	for id, g := range gs {
		if comp.Matches(id, g) != (g.N() >= 3) {
			t.Fatalf("residual Matches(%d) wrong", id)
		}
	}

	// Without a label index, label predicates fall back to histogram
	// scans but mean the same thing.
	noLabels := Catalog{N: cat.N, Post: cat.Post}
	f := &Filter{VertexLabels: []LabelCount{{Label: 1, MinCount: 2}}, EdgeLabels: []LabelCount{{Label: 1}}}
	withIdx, err := CompileFilters([]*Filter{f}, cat)
	if err != nil {
		t.Fatal(err)
	}
	without, err := CompileFilters([]*Filter{f}, noLabels)
	if err != nil {
		t.Fatal(err)
	}
	if without.Restricted || without.Residual == nil {
		t.Fatal("label fallback should be residual-only")
	}
	for id, g := range gs {
		if withIdx.Matches(id, g) != without.Matches(id, g) {
			t.Fatalf("pushdown and fallback disagree on %d", id)
		}
	}

	// Dimension predicates out of range are an error.
	if _, err := CompileFilters([]*Filter{{DimsAll: []int{99}}}, cat); err == nil {
		t.Fatal("dims_all out of range accepted")
	}
	if _, err := CompileFilters([]*Filter{{MinOnes: 1}}, Catalog{N: 3}); err == nil {
		t.Fatal("ones range without posting index accepted")
	}
}

func TestAnalyzeFiltersAndCheckDims(t *testing.T) {
	fs := []*Filter{
		{DimsAll: []int{0, 1}, DimsAny: []int{2}, MinOnes: 1, VertexLabels: []LabelCount{{Label: 1}}, MinVertices: 2},
		{EdgeLabels: []LabelCount{{Label: 0}}},
	}
	pushed, fallback := AnalyzeFilters(fs, true, true)
	if pushed != 6 || fallback != 1 {
		t.Fatalf("AnalyzeFilters(post+labels) = %d, %d; want 6, 1", pushed, fallback)
	}
	pushed, fallback = AnalyzeFilters(fs, true, false)
	if pushed != 4 || fallback != 3 {
		t.Fatalf("AnalyzeFilters(post only) = %d, %d; want 4, 3", pushed, fallback)
	}
	if err := (&Filter{DimsAll: []int{4}}).CheckDims(4); err == nil {
		t.Fatal("CheckDims accepted out-of-range dim")
	}
	if err := (&Filter{DimsAny: []int{3}}).CheckDims(4); err != nil {
		t.Fatalf("CheckDims rejected in-range dim: %v", err)
	}
}

func planFor(t *testing.T, body string) *Plan {
	t.Helper()
	p, err := Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestAggregatorCount(t *testing.T) {
	pl := planFor(t, `{"stages":[{"count":{}}]}`)
	a := NewAggregator(pl)
	for i := 0; i < 7; i++ {
		a.Add(Row{ID: i})
	}
	res := a.Finish()
	if res.Count == nil || *res.Count != 7 {
		t.Fatalf("count %v, want 7", res.Count)
	}
}

func TestAggregatorTopKAndLimit(t *testing.T) {
	pl := planFor(t, `{"stages":[{"search":{"query":{"labels":[1]},"k":10}},{"topk":{"k":3}}]}`)
	a := NewAggregator(pl)
	dists := []float64{0.9, 0.1, 0.5, 0.3, 0.7}
	for i, d := range dists {
		a.Add(Row{ID: i, Distance: d, HasDistance: true})
	}
	res := a.Finish()
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	wantIDs := []int{1, 3, 2} // distances 0.1, 0.3, 0.5
	for i, r := range res.Rows {
		if r.ID != wantIDs[i] {
			t.Fatalf("row %d = id %d, want %d", i, r.ID, wantIDs[i])
		}
	}

	// Scan rows order by id under a limit.
	pl = planFor(t, `{"stages":[{"filter":{}},{"limit":{"n":2}}]}`)
	a = NewAggregator(pl)
	for _, id := range []int{5, 1, 9, 3} {
		a.Add(Row{ID: id})
	}
	res = a.Finish()
	if len(res.Rows) != 2 || res.Rows[0].ID != 1 || res.Rows[1].ID != 3 {
		t.Fatalf("limited scan rows %+v, want ids 1, 3", res.Rows)
	}
	if res.Rows[0].Distance != nil {
		t.Fatal("scan rows must not carry a distance")
	}
}

func TestAggregatorGroupBy(t *testing.T) {
	pl := planFor(t, `{"stages":[{"group_by":{"key":"vertex_label"}}]}`)
	a := NewAggregator(pl)
	a.Add(Row{ID: 0, G: chain(0, 1, 1, 2)})
	a.Add(Row{ID: 1, G: chain(0, 2, 10)})
	res := a.Finish()
	// Distinct labels per graph: {1,2} and {2,10} → 2:2, 1:1, 10:1.
	if len(res.Groups) != 3 {
		t.Fatalf("%d groups, want 3", len(res.Groups))
	}
	if res.Groups[0].Key != "2" || res.Groups[0].Count != 2 {
		t.Fatalf("top group %+v, want key 2 count 2", res.Groups[0])
	}
	// Numeric sort: label 1 before label 10 at equal count.
	if res.Groups[1].Key != "1" || res.Groups[2].Key != "10" {
		t.Fatalf("tie order %q, %q; want 1, 10", res.Groups[1].Key, res.Groups[2].Key)
	}

	pl = planFor(t, `{"stages":[{"search":{"query":{"labels":[1]},"k":4}},{"group_by":{"key":"score_bucket","bucket_width":0.5}}]}`)
	a = NewAggregator(pl)
	for i, d := range []float64{0.1, 0.4, 0.6, 1.2} {
		a.Add(Row{ID: i, Distance: d, HasDistance: true, Engine: "mapped"})
	}
	res = a.Finish()
	if len(res.Groups) != 3 || res.Groups[0].Count != 2 {
		t.Fatalf("score buckets %+v", res.Groups)
	}
	g0 := res.Groups[0]
	if g0.MinDistance == nil || *g0.MinDistance != 0.1 || *g0.MaxDistance != 0.4 || *g0.MeanDistance != 0.25 {
		t.Fatalf("bucket spread %+v", g0)
	}
}

// TestMergeEquivalence is the partial-aggregate law the shard fan-out
// rests on: folding rows through K partial aggregators and merging
// gives exactly the single-aggregator answer, for every aggregate
// shape, under a randomized row stream.
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plans := []string{
		`{"stages":[{"count":{}}]}`,
		`{"stages":[{"filter":{}},{"limit":{"n":5}}]}`,
		`{"stages":[{"filter":{}}]}`,
		`{"stages":[{"group_by":{"key":"vertex_label"}}]}`,
		`{"stages":[{"search":{"query":{"labels":[1]},"k":64}},{"topk":{"k":4}}]}`,
		`{"stages":[{"search":{"query":{"labels":[1]},"k":64}},{"group_by":{"key":"score_bucket"}}]}`,
	}
	for pi, body := range plans {
		for trial := 0; trial < 20; trial++ {
			pl := planFor(t, body)
			single := NewAggregator(pl)
			parts := []*Aggregator{NewAggregator(pl), NewAggregator(pl), NewAggregator(pl)}
			n := rng.Intn(60)
			for i := 0; i < n; i++ {
				row := Row{ID: i, G: chain(0, rng.Intn(4), rng.Intn(4))}
				if pl.Search != nil {
					// Sixteenths are exact in binary, so partial sums merge
					// bit-identically regardless of addition order.
					row.Distance = float64(rng.Intn(16)) / 16
					row.HasDistance = true
					row.Engine = "mapped"
				}
				single.Add(row)
				parts[rng.Intn(len(parts))].Add(row)
			}
			merged := parts[0]
			merged.Merge(parts[1])
			merged.Merge(parts[2])
			got, want := merged.Finish(), single.Finish()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("plan %d trial %d: merged %+v != single %+v", pi, trial, got, want)
			}
			if merged.Matched() != single.Matched() {
				t.Fatalf("plan %d trial %d: matched %d != %d", pi, trial, merged.Matched(), single.Matched())
			}
		}
	}
}

func TestStageErrorFormat(t *testing.T) {
	err := stageErrf(2, "frobnicate", "unknown stage type")
	want := `pipeline: stage 2 ("frobnicate"): unknown stage type`
	if err.Error() != want {
		t.Fatalf("got %q, want %q", err.Error(), want)
	}
	var se *StageError
	if !errors.As(fmt.Errorf("wrapped: %w", err), &se) || se.Index != 2 {
		t.Fatal("StageError does not survive wrapping")
	}
}

func TestGraphSpecErrors(t *testing.T) {
	cases := []GraphSpec{
		{},                  // no vertices
		{Labels: []int{-1}}, // negative label
		{Labels: []int{1}, Edges: [][3]int{{0, 1, 0}}},     // edge out of range
		{Labels: []int{1, 2}, Edges: [][3]int{{0, 1, -1}}}, // negative edge label
	}
	for i, spec := range cases {
		if _, err := spec.Build(); err == nil {
			t.Fatalf("case %d: bad spec accepted", i)
		}
	}
}
