// Package pipeline implements the composable query pipeline: a typed
// chain of declarative stages — filter, similarity search, aggregation —
// compiled against a graphdim snapshot and streamed without
// materializing intermediate result sets.
//
// A pipeline is a JSON document (the wire form of the gserve /query
// endpoint and the gq CLI) or a directly constructed Pipeline value (the
// Go API behind Collection.Query). Stages are ordered
//
//	filter* → search? → topk? → limit? → (count | group_by)?
//
// with at least one stage present. Filter stages are declarative —
// vertex/edge count ranges, label presence and label-histogram minimum
// counts, dimension-bit predicates, ones-count ranges — which buys two
// things a SearchOptions.Predicate closure cannot give: the filter
// serializes to canonical bytes (so filtered queries stay cacheable
// under the generation-fenced query cache) and it pushes down into
// internal/posting intersections wherever a posting list or ones-count
// bucket can answer it, restricting the scan below the vector loop.
// Whatever cannot be answered by postings compiles to a residual
// per-graph predicate evaluated inside the scan, exactly where
// SearchOptions.Predicate runs.
//
// Aggregate stages stream: count and group-by fold each row as it
// arrives, top-k and limit keep a bounded heap, and per-shard partial
// aggregates merge associatively (see Aggregator.Merge) so a sharded
// collection can fan a scan pipeline out and combine the partials
// without materializing matched rows.
package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/graph"
)

// Pipeline is an ordered chain of stages. Construct directly or with
// Parse; run with graphdim's Collection.Query after validating via Plan.
type Pipeline struct {
	Stages []Stage `json:"stages"`
}

// Stage is one pipeline stage: exactly one of the fields is set. The
// JSON form is an object with a single key naming the stage type, e.g.
// {"filter": {...}} or {"search": {"k": 10, "query": {...}}}.
type Stage struct {
	Filter  *Filter  `json:"filter,omitempty"`
	Search  *Search  `json:"search,omitempty"`
	TopK    *TopK    `json:"topk,omitempty"`
	Limit   *Limit   `json:"limit,omitempty"`
	Count   *Count   `json:"count,omitempty"`
	GroupBy *GroupBy `json:"group_by,omitempty"`
}

// Search is the similarity stage: a top-K search with the engine dials
// of graphdim.SearchOptions spelled as strings. The query graph comes
// from Query (the wire form) or G (the Go API; wins when both are set).
type Search struct {
	// Query is the query graph in the ingest wire shape: vertex labels
	// by index, edges as [u, v, label] triples.
	Query *GraphSpec `json:"query,omitempty"`
	// K is the number of results wanted; required.
	K int `json:"k"`
	// Engine is "mapped" (default), "verified" or "exact".
	Engine string `json:"engine,omitempty"`
	// VerifyFactor and MaxCandidates mirror SearchOptions.
	VerifyFactor  int `json:"verify_factor,omitempty"`
	MaxCandidates int `json:"max_candidates,omitempty"`
	// Metric is "" (index default), "delta1" or "delta2".
	Metric string `json:"metric,omitempty"`
	// NoPrune disables posting-list candidate pruning, forcing the flat
	// scan (the measurement escape hatch of SearchOptions.NoPrune).
	NoPrune bool `json:"no_prune,omitempty"`

	// G, when non-nil, is the query graph directly — the Go-API
	// alternative to Query.
	G *graph.Graph `json:"-"`
}

// GraphSpec is the wire shape of a graph, shared with the ingest
// endpoint: vertex labels by index, edges as [u, v, label] triples.
type GraphSpec struct {
	Labels []int    `json:"labels"`
	Edges  [][3]int `json:"edges"`
}

// Build materializes the spec as a graph.
func (gs *GraphSpec) Build() (*graph.Graph, error) {
	if len(gs.Labels) == 0 {
		return nil, fmt.Errorf("query graph has no vertices")
	}
	g := graph.New(0) // New pre-creates unlabeled vertices; add labeled ones explicitly
	for _, l := range gs.Labels {
		if l < 0 {
			return nil, fmt.Errorf("negative vertex label %d", l)
		}
		g.AddVertex(graph.Label(l))
	}
	for _, e := range gs.Edges {
		if e[2] < 0 {
			return nil, fmt.Errorf("negative edge label %d", e[2])
		}
		if err := g.AddEdge(e[0], e[1], graph.Label(e[2])); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// TopK keeps the K best rows by (distance, id) — the explicit top-k
// merge stage. Requires a search stage earlier in the pipeline (scan
// rows carry no distance).
type TopK struct {
	K int `json:"k"`
}

// Limit truncates the row stream to the first N rows in result order:
// (distance, id) after a search, ascending id on a filter scan.
type Limit struct {
	N int `json:"n"`
}

// Count is the terminal counting aggregate: the result is the number of
// rows that reached it.
type Count struct{}

// GroupBy is the terminal grouping aggregate.
type GroupBy struct {
	// Key picks the grouping dimension: "vertex_label" and "edge_label"
	// group a row under every distinct label its graph contains;
	// "engine" groups by the engine that produced the row; and
	// "score_bucket" groups by distance bucket of width BucketWidth.
	// The latter two require a search stage.
	Key string `json:"key"`
	// BucketWidth is the score_bucket width; 0 means 0.05.
	BucketWidth float64 `json:"bucket_width,omitempty"`
	// Top keeps only the Top largest groups (by count, ties by key);
	// 0 keeps all.
	Top int `json:"top,omitempty"`
}

// Group-by keys.
const (
	KeyVertexLabel = "vertex_label"
	KeyEdgeLabel   = "edge_label"
	KeyEngine      = "engine"
	KeyScoreBucket = "score_bucket"
)

// DefaultScanLimit bounds the rows a filter-only pipeline returns when
// no aggregate stage is present — without it a bare filter would
// materialize every matching graph. Stats.Matched still reports the
// full match count.
const DefaultScanLimit = 1000

// DefaultBucketWidth is the score_bucket width when GroupBy.BucketWidth
// is zero.
const DefaultBucketWidth = 0.05

// StageError reports a malformed stage: its position, the stage name
// involved (the unknown type, or the offending typed stage), and the
// underlying problem. The gserve /query endpoint maps it to a 400 whose
// body carries the index and name.
type StageError struct {
	Index int    // 0-based position in Stages
	Name  string // stage type name, or the unknown key
	Err   error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("pipeline: stage %d (%q): %v", e.Index, e.Name, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

func stageErrf(i int, name, format string, args ...any) *StageError {
	return &StageError{Index: i, Name: name, Err: fmt.Errorf(format, args...)}
}

// stageNames is the accepted stage-type vocabulary, in pipeline order.
var stageNames = []string{"filter", "search", "topk", "limit", "count", "group_by"}

// Parse decodes a JSON pipeline body. Decoding is strict per stage:
// each stage object must carry exactly one known stage-type key, and
// unknown fields inside a stage are rejected. Errors caused by one
// stage are *StageError values naming its index and type.
func Parse(data []byte) (*Pipeline, error) {
	var raw struct {
		Stages []json.RawMessage `json:"stages"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("pipeline: %v", err)
	}
	if len(raw.Stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages (want at least one of filter, search, topk, limit, count, group_by)")
	}
	p := &Pipeline{Stages: make([]Stage, len(raw.Stages))}
	for i, rs := range raw.Stages {
		var keys map[string]json.RawMessage
		if err := json.Unmarshal(rs, &keys); err != nil {
			return nil, stageErrf(i, "", "not a JSON object: %v", err)
		}
		if len(keys) != 1 {
			names := make([]string, 0, len(keys))
			for k := range keys {
				names = append(names, k)
			}
			return nil, stageErrf(i, "", "want exactly one stage-type key per stage, got %d %v", len(keys), names)
		}
		var name string
		for k := range keys {
			name = k
		}
		known := false
		for _, n := range stageNames {
			if n == name {
				known = true
				break
			}
		}
		if !known {
			return nil, stageErrf(i, name, "unknown stage type (want filter, search, topk, limit, count or group_by)")
		}
		sd := json.NewDecoder(bytes.NewReader(rs))
		sd.DisallowUnknownFields()
		if err := sd.Decode(&p.Stages[i]); err != nil {
			return nil, stageErrf(i, name, "%v", err)
		}
	}
	return p, nil
}

// Plan is the validated, normalized execution form of a pipeline:
// filters gathered in order, the optional search stage, and the
// aggregate chain. Scan pipelines (Search == nil) enumerate the
// database through the filter pushdown; search pipelines restrict the
// similarity scan instead.
type Plan struct {
	Filters []*Filter
	Search  *Search
	TopK    *TopK
	Limit   *Limit
	Count   *Count
	GroupBy *GroupBy
}

// stageRank orders stage types; Plan enforces ascending ranks (filters
// may repeat).
func (s *Stage) parts() (name string, rank int, set int) {
	type part struct {
		name string
		rank int
		nil_ bool
	}
	for _, p := range []part{
		{"filter", 0, s.Filter == nil},
		{"search", 1, s.Search == nil},
		{"topk", 2, s.TopK == nil},
		{"limit", 3, s.Limit == nil},
		{"count", 4, s.Count == nil},
		{"group_by", 4, s.GroupBy == nil},
	} {
		if !p.nil_ {
			set++
			name, rank = p.name, p.rank
		}
	}
	return name, rank, set
}

// Plan validates the pipeline — stage ordering, per-stage fields — and
// returns its execution form. Errors tied to one stage are *StageError.
func (p *Pipeline) Plan() (*Plan, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	pl := &Plan{}
	prevRank, prevName := -1, ""
	for i := range p.Stages {
		s := &p.Stages[i]
		name, rank, set := s.parts()
		if set == 0 {
			return nil, stageErrf(i, "", "empty stage (want one of filter, search, topk, limit, count, group_by)")
		}
		if set > 1 {
			return nil, stageErrf(i, name, "a stage holds exactly one stage type, got %d", set)
		}
		if rank < prevRank || (rank == prevRank && rank != 0) {
			return nil, stageErrf(i, name, "stage out of order after %q (want filter* search? topk? limit? (count|group_by)?)", prevName)
		}
		prevRank, prevName = rank, name
		switch {
		case s.Filter != nil:
			if err := s.Filter.Validate(); err != nil {
				return nil, stageErrf(i, name, "%v", err)
			}
			pl.Filters = append(pl.Filters, s.Filter)
		case s.Search != nil:
			if err := validateSearch(s.Search); err != nil {
				return nil, stageErrf(i, name, "%v", err)
			}
			pl.Search = s.Search
		case s.TopK != nil:
			if s.TopK.K <= 0 {
				return nil, stageErrf(i, name, "k must be positive, got %d", s.TopK.K)
			}
			pl.TopK = s.TopK
		case s.Limit != nil:
			if s.Limit.N <= 0 {
				return nil, stageErrf(i, name, "n must be positive, got %d", s.Limit.N)
			}
			pl.Limit = s.Limit
		case s.Count != nil:
			pl.Count = s.Count
		case s.GroupBy != nil:
			if err := validateGroupBy(s.GroupBy); err != nil {
				return nil, stageErrf(i, name, "%v", err)
			}
			pl.GroupBy = s.GroupBy
		}
		if pl.Search == nil {
			if pl.TopK != nil {
				return nil, stageErrf(i, name, "topk needs a preceding search stage (scan rows carry no distance)")
			}
			if pl.GroupBy != nil && (pl.GroupBy.Key == KeyEngine || pl.GroupBy.Key == KeyScoreBucket) {
				return nil, stageErrf(i, name, "group_by key %q needs a preceding search stage", pl.GroupBy.Key)
			}
		}
	}
	return pl, nil
}

func validateSearch(s *Search) error {
	if s.K <= 0 {
		return fmt.Errorf("k must be positive, got %d", s.K)
	}
	switch s.Engine {
	case "", "mapped", "verified", "exact":
	default:
		return fmt.Errorf("unknown engine %q (want mapped, verified or exact)", s.Engine)
	}
	switch s.Metric {
	case "", "delta1", "delta2":
	default:
		return fmt.Errorf("unknown metric %q (want delta1 or delta2)", s.Metric)
	}
	if s.VerifyFactor < 0 {
		return fmt.Errorf("verify_factor must be >= 0, got %d", s.VerifyFactor)
	}
	if s.MaxCandidates < 0 {
		return fmt.Errorf("max_candidates must be >= 0, got %d", s.MaxCandidates)
	}
	if s.Query == nil && s.G == nil {
		return fmt.Errorf("search stage needs a query graph")
	}
	return nil
}

func validateGroupBy(g *GroupBy) error {
	switch g.Key {
	case KeyVertexLabel, KeyEdgeLabel, KeyEngine, KeyScoreBucket:
	default:
		return fmt.Errorf("unknown group_by key %q (want vertex_label, edge_label, engine or score_bucket)", g.Key)
	}
	if g.BucketWidth < 0 {
		return fmt.Errorf("bucket_width must be >= 0, got %g", g.BucketWidth)
	}
	if g.Top < 0 {
		return fmt.Errorf("top must be >= 0, got %d", g.Top)
	}
	return nil
}

// QueryGraph returns the search stage's query graph, building the wire
// spec if no graph was attached directly.
func (s *Search) QueryGraph() (*graph.Graph, error) {
	if s.G != nil {
		return s.G, nil
	}
	return s.Query.Build()
}

// NeedsGraphs reports whether aggregation must see each row's graph
// (label group-bys); Collection.Query skips the per-row graph fetch
// otherwise.
func (pl *Plan) NeedsGraphs() bool {
	return pl.GroupBy != nil && (pl.GroupBy.Key == KeyVertexLabel || pl.GroupBy.Key == KeyEdgeLabel)
}

// RowBound returns the bounded-row capacity the aggregate chain needs,
// or 0 when rows stream without a bound (a terminal fold, or a search
// pipeline whose rows are already K-bounded). Scan pipelines with no
// aggregate stage get DefaultScanLimit.
func (pl *Plan) RowBound() int {
	switch {
	case pl.TopK != nil:
		return pl.TopK.K
	case pl.Limit != nil:
		return pl.Limit.N
	case pl.Search != nil:
		return 0 // at most K rows arrive
	case pl.Count == nil && pl.GroupBy == nil:
		return DefaultScanLimit
	}
	return 0
}
