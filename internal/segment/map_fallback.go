//go:build !unix

package segment

// CanMap reports whether this platform (and build) supports read-only
// memory-mapped segment opens. Here it does not: Open with Options.Map
// silently reads the file into the heap instead — same Reader, same
// answers, RAM-resident.
func CanMap() bool { return false }

func openBytes(path string, wantMap bool) ([]byte, bool, func() error, error) {
	return readHeapBytes(path)
}
