//go:build unix

package segment

import (
	"os"
	"runtime"
	"sync"
	"syscall"
)

// CanMap reports whether this platform (and build) supports read-only
// memory-mapped segment opens.
func CanMap() bool { return true }

// mapping owns one mmap'd region. The finalizer backstops Close for
// readers that are dropped without one: graphdim snapshots alias tiles
// out of the mapping with unbounded lifetimes, so nothing in the store
// can know when an explicit unmap is safe — the GC can, because the
// aliases keep the mapping (via the reader's closer) reachable.
type mapping struct {
	once sync.Once
	data []byte
}

func (m *mapping) unmap() error {
	var err error
	m.once.Do(func() {
		runtime.SetFinalizer(m, nil)
		err = syscall.Munmap(m.data)
	})
	return err
}

// openBytes returns the file's bytes, preferring a read-only shared
// mapping when wantMap is set. Tiny files (smaller than any valid
// segment) and mmap failures fall back to a heap read — the caller's
// Reader behaves identically either way.
func openBytes(path string, wantMap bool) ([]byte, bool, func() error, error) {
	if !wantMap {
		return readHeapBytes(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, nil, err
	}
	size := st.Size()
	if size < int64(len(Magic)+trailerSize) || size != int64(int(size)) {
		return readHeapBytes(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readHeapBytes(path)
	}
	m := &mapping{data: data}
	runtime.SetFinalizer(m, (*mapping).unmap)
	return data, true, m.unmap, nil
}
