// Package segment implements the v4 on-disk index segment: an immutable,
// trailer-indexed file whose vector section is laid out exactly as the
// scan kernel's SoA input (vecspace.Block tiles, word-major, little-
// endian), so a memory-mapped checkpoint IS the kernel's operand with
// zero rehydration. Zed's microindex files are the model: sections
// first, a fixed-size trailer of offsets last, so a reader parses the
// tail and lazily touches only the pages a query needs.
//
// Layout (all integers little-endian):
//
//	magic     8 bytes "GDIMIDX4" — the v4 member of the GDIMIDX family,
//	          so format sniffing stays a single 8-byte peek
//	meta      metric byte, MCS budget uvarint, p uvarint, p × (weight
//	          float64 + feature graph in internal/graph's binary codec),
//	          n uvarint, baseN uvarint, tile width uvarint, zone span
//	          uvarint — the whole-index scalars, decoded eagerly (small)
//	tiles     ceil(n/width) × words·width uint64 — the vector section,
//	          8-byte aligned, byte-compatible with vecspace.Block tiles
//	dead      ceil(n/8) bytes — tombstone bitmap, id i at byte i/8 bit i%8
//	gidx      (n+1) × uint64 — graph payload offset table, blob i spans
//	          [gidx[i], gidx[i+1]) of the graphs section (lazy faulting)
//	graphs    concatenated graph blobs (internal/graph binary codec)
//	ones      n × uint32 — per-id set-bit counts (posting buckets)
//	posts     p × (uint32 count + count × uint32 ids) — the posting lists
//	zmin/zmax zones × uint32 each — per-zone ones-count min/max
//	zsums     zones × words × uint64 — per-zone dimension-presence bitmaps
//	trailer   fixed 144 bytes: section offsets/lengths, n/p/width/baseN/
//	          zoneSpan/zones, body crc32, trailer crc32, "GDSEG4TR"
//
// The zone sections are derived skip metadata, never part of the durable
// record (Provenance-based Data Skipping): a reader that distrusts or
// cannot use them (different zone span) rebuilds from the tiles and
// loses nothing but open time.
//
// Integrity: the trailer carries its own crc, so a torn or truncated
// file is rejected at open without reading the body. The body crc covers
// everything before the trailer and is verified on the heap (copy) path,
// which reads every byte anyway; a mapped open deliberately skips it —
// checksumming would fault every page and defeat lazy loading — and
// trusts the checkpoint discipline that produced the file (fsync before
// the manifest references it). VerifyBody exists for auditing.
package segment

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/posting"
	"repro/internal/vecspace"
)

// Magic is the v4 file magic, same length as the v2/v3 magics so format
// sniffing needs one 8-byte peek.
const Magic = "GDIMIDX4"

const (
	trailerMagic = "GDSEG4TR"
	trailerSize  = 144
	// maxElems bounds decoded counts before any allocation, shared with
	// the graph codec's anti-bomb limit.
	maxElems = graph.MaxBinaryElems
)

var crcTable = crc32.IEEETable

// hostLittleEndian reports whether uint64s can be reinterpreted over the
// file's little-endian sections. On the (rare) big-endian host every
// typed accessor decode-copies instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Meta is the whole-index scalar state a segment carries.
type Meta struct {
	Metric    byte
	MCSBudget int64
	Weights   []float64
	Features  []*graph.Graph
	BaseN     int
}

// Payload is everything Write serializes. Block supplies n, p, width,
// the tiles, and the zone map; Graph returns the encoded blob of graph i
// (a writer holding a source segment returns the raw bytes — graphs are
// immutable, so a checkpoint never re-encodes the mapped base); List
// returns dimension r's ascending posting list.
type Payload struct {
	Meta  Meta
	Block *vecspace.Block
	Dead  []bool
	Graph func(i int) ([]byte, error)
	Ones  []int32
	List  func(r int) []int32
}

// countCRCWriter tracks offset and a running crc of everything written.
type countCRCWriter struct {
	w   io.Writer
	n   int64
	sum uint32
}

func (c *countCRCWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.sum = crc32.Update(c.sum, crcTable, p[:n])
	return n, err
}

var pad8 [8]byte

// align8 pads the stream to the next 8-byte boundary.
func (c *countCRCWriter) align8() error {
	if rem := c.n % 8; rem != 0 {
		_, err := c.Write(pad8[:8-rem])
		return err
	}
	return nil
}

func (c *countCRCWriter) u32(x uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	_, err := c.Write(b[:])
	return err
}

func (c *countCRCWriter) u64(x uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	_, err := c.Write(b[:])
	return err
}

func (c *countCRCWriter) uvarint(x uint64) error {
	var b [binary.MaxVarintLen64]byte
	_, err := c.Write(b[:binary.PutUvarint(b[:], x)])
	return err
}

// Write streams a v4 segment to w. The encoding is sequential (offsets
// are recorded as sections stream out and land in the trailer), so w can
// be a plain *os.File with no seeking.
func Write(w io.Writer, pl Payload) (err error) {
	blk := pl.Block
	n, p, width, words := blk.N(), blk.P(), blk.Width(), blk.Words()
	if len(pl.Dead) != n || len(pl.Ones) != n {
		return fmt.Errorf("segment: payload lengths disagree with block (n=%d dead=%d ones=%d)", n, len(pl.Dead), len(pl.Ones))
	}
	cw := &countCRCWriter{w: w}
	fail := func(err error) error { return fmt.Errorf("segment: encode: %w", err) }
	if _, err := io.WriteString(cw, Magic); err != nil {
		return fail(err)
	}

	// meta
	m := pl.Meta
	if _, err := cw.Write([]byte{m.Metric}); err != nil {
		return fail(err)
	}
	if err := cw.uvarint(uint64(m.MCSBudget)); err != nil {
		return fail(err)
	}
	if err := cw.uvarint(uint64(p)); err != nil {
		return fail(err)
	}
	var f64 [8]byte
	for i, g := range m.Features {
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(m.Weights[i]))
		if _, err := cw.Write(f64[:]); err != nil {
			return fail(err)
		}
		if err := graph.WriteBinary(cw, g); err != nil {
			return fail(err)
		}
	}
	for _, x := range []uint64{uint64(n), uint64(m.BaseN), uint64(width), uint64(vecspace.ZoneSpan)} {
		if err := cw.uvarint(x); err != nil {
			return fail(err)
		}
	}

	// tiles
	if err := cw.align8(); err != nil {
		return fail(err)
	}
	tilesOff := cw.n
	buf := make([]byte, words*width*8)
	for t := 0; t < blk.Tiles(); t++ {
		tile := blk.Tile(t)
		for i, word := range tile {
			binary.LittleEndian.PutUint64(buf[i*8:], word)
		}
		if _, err := cw.Write(buf[:len(tile)*8]); err != nil {
			return fail(err)
		}
	}

	// dead bitmap
	deadOff := cw.n
	db := make([]byte, (n+7)/8)
	for i, d := range pl.Dead {
		if d {
			db[i/8] |= 1 << (uint(i) % 8)
		}
	}
	if _, err := cw.Write(db); err != nil {
		return fail(err)
	}

	// graph offset table + payload: blobs are collected first so the
	// table can stream before them without seeking.
	if err := cw.align8(); err != nil {
		return fail(err)
	}
	gidxOff := cw.n
	blobs := make([][]byte, n)
	off := uint64(0)
	if err := cw.u64(0); err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		b, err := pl.Graph(i)
		if err != nil {
			return fail(err)
		}
		blobs[i] = b
		off += uint64(len(b))
		if err := cw.u64(off); err != nil {
			return fail(err)
		}
	}
	graphsOff := cw.n
	for _, b := range blobs {
		if _, err := cw.Write(b); err != nil {
			return fail(err)
		}
	}
	graphsLen := cw.n - graphsOff

	// ones + posting lists
	if err := cw.align8(); err != nil {
		return fail(err)
	}
	onesOff := cw.n
	for _, o := range pl.Ones {
		if err := cw.u32(uint32(o)); err != nil {
			return fail(err)
		}
	}
	postOff := cw.n
	for r := 0; r < p; r++ {
		l := pl.List(r)
		if err := cw.u32(uint32(len(l))); err != nil {
			return fail(err)
		}
		for _, id := range l {
			if err := cw.u32(uint32(id)); err != nil {
				return fail(err)
			}
		}
	}
	postLen := cw.n - postOff

	// zone metadata
	if err := cw.align8(); err != nil {
		return fail(err)
	}
	zminOff := cw.n
	zones := blk.Zones()
	nz := zones.Zones()
	for zi := 0; zi < nz; zi++ {
		if err := cw.u32(uint32(zones.MinOnes(zi))); err != nil {
			return fail(err)
		}
	}
	for zi := 0; zi < nz; zi++ {
		if err := cw.u32(uint32(zones.MaxOnes(zi))); err != nil {
			return fail(err)
		}
	}
	if err := cw.align8(); err != nil {
		return fail(err)
	}
	zsumsOff := cw.n
	for zi := 0; zi < nz; zi++ {
		for _, word := range zones.Summary(zi) {
			if err := cw.u64(word); err != nil {
				return fail(err)
			}
		}
	}

	// trailer: the body crc is latched before the trailer bytes start,
	// the trailer crc before its own field.
	bodyCRC := cw.sum
	trailerStart := cw.n
	cw.sum = 0
	for _, x := range []int64{tilesOff, deadOff, gidxOff, graphsOff, graphsLen,
		onesOff, postOff, postLen, zminOff, zsumsOff} {
		if err := cw.u64(uint64(x)); err != nil {
			return fail(err)
		}
	}
	for _, x := range []uint64{uint64(n), uint64(p), uint64(width),
		uint64(m.BaseN), uint64(vecspace.ZoneSpan), uint64(nz)} {
		if err := cw.u64(x); err != nil {
			return fail(err)
		}
	}
	if err := cw.u32(bodyCRC); err != nil {
		return fail(err)
	}
	if err := cw.u32(cw.sum); err != nil {
		return fail(err)
	}
	if _, err := io.WriteString(cw, trailerMagic); err != nil {
		return fail(err)
	}
	if cw.n-trailerStart != trailerSize {
		return fmt.Errorf("segment: internal error: trailer is %d bytes, want %d", cw.n-trailerStart, trailerSize)
	}
	return nil
}

// Options configures Open.
type Options struct {
	// Map requests a read-only memory mapping of the file, so vector
	// tiles (and graph payloads) are demand-paged instead of loaded.
	// Where the platform offers no mmap (see CanMap) the open silently
	// falls back to reading the file into the heap — same Reader, same
	// answers, RAM-resident. Mapped() reports which happened.
	Map bool
}

// Reader is an opened segment. All accessors are safe for concurrent
// use; the underlying bytes are immutable (a read-only mapping or a
// private heap copy).
type Reader struct {
	data   []byte
	mapped bool
	closer func() error

	meta     Meta
	n, p     int
	width    int
	words    int
	zoneSpan int
	nz       int

	tilesOff, deadOff, gidxOff, graphsOff, graphsLen int64
	onesOff, postOff, postLen, zminOff, zsumsOff     int64
	trailerOff                                       int64
}

// Open opens a v4 segment file. The trailer (and its crc) is always
// verified, so a torn or truncated file fails here with a clear error;
// with opt.Map the body is demand-paged and its crc is NOT verified
// (see the package comment), otherwise the file is read into the heap
// and fully checksummed.
func Open(path string, opt Options) (*Reader, error) {
	data, mapped, closer, err := openBytes(path, opt.Map)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	r, err := NewReader(data, mapped, closer)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	if !mapped {
		if err := r.VerifyBody(); err != nil {
			return nil, fmt.Errorf("segment: open %s: %w", path, err)
		}
	}
	return r, nil
}

// NewReader parses a segment held in data. mapped records how the bytes
// are backed (for Mapped()); closer, if non-nil, releases them (Close).
func NewReader(data []byte, mapped bool, closer func() error) (*Reader, error) {
	if len(data) < len(Magic)+trailerSize {
		return nil, fmt.Errorf("truncated segment (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("bad magic %q", data[:len(Magic)])
	}
	r := &Reader{data: data, mapped: mapped, closer: closer}
	r.trailerOff = int64(len(data) - trailerSize)
	tr := data[r.trailerOff:]
	if string(tr[trailerSize-8:]) != trailerMagic {
		return nil, fmt.Errorf("torn trailer (bad trailer magic %q)", tr[trailerSize-8:])
	}
	if got, want := crc32.Checksum(tr[:trailerSize-12], crcTable), binary.LittleEndian.Uint32(tr[trailerSize-12:]); got != want {
		return nil, fmt.Errorf("torn trailer (crc %08x, computed %08x)", want, got)
	}
	u64 := func(i int) int64 { return int64(binary.LittleEndian.Uint64(tr[i*8:])) }
	r.tilesOff, r.deadOff, r.gidxOff, r.graphsOff, r.graphsLen = u64(0), u64(1), u64(2), u64(3), u64(4)
	r.onesOff, r.postOff, r.postLen, r.zminOff, r.zsumsOff = u64(5), u64(6), u64(7), u64(8), u64(9)
	n, p, width, baseN, zoneSpan, nz := u64(10), u64(11), u64(12), u64(13), u64(14), u64(15)
	if n < 0 || n > maxElems || p < 0 || p > maxElems || nz < 0 || nz > maxElems {
		return nil, fmt.Errorf("corrupt trailer: n=%d p=%d zones=%d", n, p, nz)
	}
	if width != 8 && width != 16 {
		return nil, fmt.Errorf("corrupt trailer: tile width %d", width)
	}
	if baseN < 0 || baseN > n {
		return nil, fmt.Errorf("corrupt trailer: baseN %d > n %d", baseN, n)
	}
	r.n, r.p, r.width, r.zoneSpan, r.nz = int(n), int(p), int(width), int(zoneSpan), int(nz)
	r.words = (r.p + 63) / 64
	r.meta.BaseN = int(baseN)

	// Every section must lie inside [len(Magic), trailerOff) with the
	// size its scalars imply, so no accessor can slice out of bounds.
	nt := (r.n + r.width - 1) / r.width
	stride := int64(r.words * r.width * 8)
	secs := []struct {
		name     string
		off, len int64
	}{
		{"tiles", r.tilesOff, int64(nt) * stride},
		{"dead", r.deadOff, int64((r.n + 7) / 8)},
		{"gidx", r.gidxOff, int64(r.n+1) * 8},
		{"graphs", r.graphsOff, r.graphsLen},
		{"ones", r.onesOff, int64(r.n) * 4},
		{"posts", r.postOff, r.postLen},
		{"zmin", r.zminOff, int64(r.nz) * 8}, // zmin and zmax, back to back
		{"zsums", r.zsumsOff, int64(r.nz) * int64(r.words) * 8},
	}
	for _, s := range secs {
		if s.off < int64(len(Magic)) || s.len < 0 || s.off+s.len > r.trailerOff {
			return nil, fmt.Errorf("corrupt trailer: %s section [%d,+%d) outside file", s.name, s.off, s.len)
		}
	}
	for _, off := range []int64{r.tilesOff, r.gidxOff, r.zsumsOff} {
		if off%8 != 0 {
			return nil, fmt.Errorf("corrupt trailer: misaligned section offset %d", off)
		}
	}

	if err := r.decodeMeta(); err != nil {
		return nil, err
	}
	return r, nil
}

// decodeMeta eagerly decodes the small whole-index scalars between the
// magic and the tiles section.
func (r *Reader) decodeMeta() error {
	br := bytes.NewReader(r.data[len(Magic):r.tilesOff])
	b, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("corrupt meta: %w", graph.NoEOF(err))
	}
	r.meta.Metric = b
	budget, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("corrupt meta: %w", graph.NoEOF(err))
	}
	if budget > math.MaxInt64 {
		return fmt.Errorf("corrupt meta: MCS budget %d overflows", budget)
	}
	r.meta.MCSBudget = int64(budget)
	p64, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("corrupt meta: %w", graph.NoEOF(err))
	}
	if p64 != uint64(r.p) {
		return fmt.Errorf("corrupt meta: p %d disagrees with trailer %d", p64, r.p)
	}
	r.meta.Weights = make([]float64, 0, min(r.p, 1<<16))
	r.meta.Features = make([]*graph.Graph, 0, min(r.p, 1<<16))
	var f64 [8]byte
	for i := 0; i < r.p; i++ {
		if _, err := io.ReadFull(br, f64[:]); err != nil {
			return fmt.Errorf("corrupt meta: weight %d: %w", i, graph.NoEOF(err))
		}
		r.meta.Weights = append(r.meta.Weights, math.Float64frombits(binary.LittleEndian.Uint64(f64[:])))
		g, err := graph.ReadBinary(br)
		if err != nil {
			return fmt.Errorf("corrupt meta: feature %d: %w", i, err)
		}
		r.meta.Features = append(r.meta.Features, g)
	}
	for _, want := range []uint64{uint64(r.n), uint64(r.meta.BaseN), uint64(r.width), uint64(r.zoneSpan)} {
		got, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("corrupt meta: %w", graph.NoEOF(err))
		}
		if got != want {
			return fmt.Errorf("corrupt meta: scalar %d disagrees with trailer %d", got, want)
		}
	}
	return nil
}

// Meta returns the whole-index scalars. The slices are owned by the
// reader.
func (r *Reader) Meta() Meta { return r.meta }

// N returns the number of id slots (live + tombstoned).
func (r *Reader) N() int { return r.n }

// P returns the dimensionality.
func (r *Reader) P() int { return r.p }

// Mapped reports whether the bytes are a memory mapping (false: private
// heap copy — the portable fallback, or an explicit heap open).
func (r *Reader) Mapped() bool { return r.mapped }

// Close releases the mapping (or lets the heap copy go). The Reader—and
// every slice an accessor aliased out of it—must not be used afterwards;
// graphdim instead drops readers on the floor and lets the finalizer
// installed by openBytes unmap, because snapshots holding aliased tiles
// have unbounded reader-side lifetimes.
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	c := r.closer
	r.closer = nil
	return c()
}

// VerifyBody checksums everything before the trailer against the body
// crc — the heap open does this automatically; for a mapped segment it
// is an explicit (page-faulting) audit.
func (r *Reader) VerifyBody() error {
	want := binary.LittleEndian.Uint32(r.data[r.trailerOff+trailerSize-16:])
	if got := crc32.Checksum(r.data[:r.trailerOff], crcTable); got != want {
		return fmt.Errorf("body checksum mismatch (file %08x, computed %08x)", want, got)
	}
	return nil
}

// aliasU64 reinterprets an 8-aligned little-endian section as []uint64
// without copying; falls back to a decoded copy on big-endian or
// misaligned (heap copy base) memory.
func (r *Reader) aliasU64(off, count int64) []uint64 {
	if count == 0 {
		return nil
	}
	b := r.data[off : off+count*8]
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), count)[:count:count]
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// aliasI32 is aliasU64 for 4-aligned little-endian uint32 sections read
// as int32 (ids and ones counts are non-negative int32s everywhere).
func (r *Reader) aliasI32(off, count int64) []int32 {
	if count == 0 {
		return nil
	}
	b := r.data[off : off+count*4]
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), count)[:count:count]
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// Block adopts the tile section as the scan kernel's SoA block — on a
// mapped little-endian host this is zero-copy: the returned Block's
// tiles are subslices of the mapping. The zone map comes from the zone
// sections when their span matches the running binary's (it is derived
// metadata — a span change just means rebuilding from the tiles).
func (r *Reader) Block() (*vecspace.Block, error) {
	nt := (r.n + r.width - 1) / r.width
	words := r.aliasU64(r.tilesOff, int64(nt)*int64(r.words*r.width))
	var zones *vecspace.ZoneMap
	if r.zoneSpan == vecspace.ZoneSpan && r.nz == (r.n+vecspace.ZoneSpan-1)/vecspace.ZoneSpan {
		mins := r.aliasI32(r.zminOff, int64(r.nz))
		maxs := r.aliasI32(r.zminOff+int64(r.nz)*4, int64(r.nz))
		sums := r.aliasU64(r.zsumsOff, int64(r.nz)*int64(r.words))
		for zi := 0; zi < r.nz; zi++ {
			if mins[zi] < 0 || maxs[zi] < mins[zi] || maxs[zi] > int32(r.p) {
				return nil, fmt.Errorf("segment: corrupt zone %d: ones range [%d,%d]", zi, mins[zi], maxs[zi])
			}
		}
		zones = vecspace.NewZoneMap(r.words, mins, maxs, sums)
	}
	return vecspace.BlockFromWords(r.n, r.p, r.width, words, zones), nil
}

// Dead decodes the tombstone bitmap into the heap (tombstones are COW
// runtime state, never served from the mapping).
func (r *Reader) Dead() ([]bool, int) {
	b := r.data[r.deadOff:]
	out := make([]bool, r.n)
	count := 0
	for i := 0; i < r.n; i++ {
		if b[i/8]&(1<<(uint(i)%8)) != 0 {
			out[i] = true
			count++
		}
	}
	return out, count
}

// GraphBytes returns graph i's encoded blob — a subslice of the segment,
// so a checkpoint of a mapped base copies payloads verbatim without
// decoding them.
func (r *Reader) GraphBytes(i int) ([]byte, error) {
	gidx := r.data[r.gidxOff:]
	lo := int64(binary.LittleEndian.Uint64(gidx[i*8:]))
	hi := int64(binary.LittleEndian.Uint64(gidx[(i+1)*8:]))
	if lo < 0 || hi < lo || hi > r.graphsLen {
		return nil, fmt.Errorf("segment: corrupt graph offsets [%d,%d) for payload of %d bytes", lo, hi, r.graphsLen)
	}
	return r.data[r.graphsOff+lo : r.graphsOff+hi], nil
}

// GraphAt decodes graph i from its payload blob — the lazy faulting path
// of the verified engine.
func (r *Reader) GraphAt(i int) (*graph.Graph, error) {
	b, err := r.GraphBytes(i)
	if err != nil {
		return nil, err
	}
	br := bytes.NewReader(b)
	g, err := graph.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("segment: corrupt graph %d: %w", i, err)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("segment: corrupt graph %d: %d trailing bytes", i, br.Len())
	}
	return g, nil
}

// Postings assembles the posting index from the ones and posting-list
// sections, aliasing each per-dimension id list out of the segment
// (capacity-clipped: a later Append copies instead of writing through).
// Validation is structural — ids strictly ascending and in range, the
// total posting count equal to the total ones count — which, with the
// body/trailer integrity story above, is what keeps a corrupt list from
// ever indexing out of bounds.
func (r *Reader) Postings() (*posting.Index, error) {
	ones := r.aliasI32(r.onesOff, int64(r.n))
	sumOnes := int64(0)
	for id, o := range ones {
		if o < 0 || int(o) > r.p {
			return nil, fmt.Errorf("segment: corrupt ones count %d for id %d", o, id)
		}
		sumOnes += int64(o)
	}
	lists := make([][]int32, r.p)
	off := r.postOff
	end := r.postOff + r.postLen
	decoded := int64(0)
	for d := 0; d < r.p; d++ {
		if off+4 > end {
			return nil, fmt.Errorf("segment: posting section truncated at dimension %d", d)
		}
		count := int64(binary.LittleEndian.Uint32(r.data[off:]))
		off += 4
		if count > int64(r.n) || off+count*4 > end {
			return nil, fmt.Errorf("segment: dimension %d: %d postings for %d graphs", d, count, r.n)
		}
		l := r.aliasI32(off, count)
		off += count * 4
		prev := int32(-1)
		for _, id := range l {
			if id <= prev || int64(id) >= int64(r.n) {
				return nil, fmt.Errorf("segment: dimension %d: id %d after %d (n %d)", d, id, prev, r.n)
			}
			prev = id
		}
		decoded += count
		lists[d] = l
	}
	if off != end {
		return nil, fmt.Errorf("segment: %d trailing bytes in posting section", end-off)
	}
	if decoded != sumOnes {
		return nil, fmt.Errorf("segment: %d postings for %d set bits", decoded, sumOnes)
	}
	return posting.FromLists(r.p, r.n, lists, ones), nil
}

// readHeapBytes is the portable open path: the whole file as a private
// heap copy.
func readHeapBytes(path string) ([]byte, bool, func() error, error) {
	data, err := os.ReadFile(path)
	return data, false, nil, err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
