package segment

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/vecspace"
)

// buildFixture assembles a deterministic segment payload: n random
// vectors of dimension p packed at the given width, one small graph per
// id, posting lists derived from the vectors.
type fixture struct {
	pl    Payload
	vecs  []*vecspace.BitVector
	blobs [][]byte
}

func buildFixture(t *testing.T, n, p, width int, seed int64) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vecs := make([]*vecspace.BitVector, n)
	ones := make([]int32, n)
	lists := make([][]int32, p)
	for i := range vecs {
		v := vecspace.NewBitVector(p)
		for r := 0; r < p; r++ {
			if rng.Intn(3) == 0 {
				v.Set(r)
				lists[r] = append(lists[r], int32(i))
			}
		}
		vecs[i] = v
		ones[i] = int32(v.Ones())
	}
	dead := make([]bool, n)
	for i := range dead {
		dead[i] = rng.Intn(7) == 0
	}
	blobs := make([][]byte, n)
	graphs := make([]*graph.Graph, n)
	for i := range blobs {
		g := graph.New(2 + rng.Intn(3))
		for v := 1; v < g.N(); v++ {
			g.MustAddEdge(v-1, v, graph.Label(rng.Intn(4)))
		}
		graphs[i] = g
		var buf bytes.Buffer
		if err := graph.WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		blobs[i] = buf.Bytes()
	}
	features := make([]*graph.Graph, p)
	weights := make([]float64, p)
	for r := range features {
		f := graph.New(2)
		f.MustAddEdge(0, 1, graph.Label(r%5))
		features[r] = f
		weights[r] = float64(r) * 0.5
	}
	return &fixture{
		pl: Payload{
			Meta:  Meta{Metric: 2, MCSBudget: 12345, Weights: weights, Features: features, BaseN: n / 2},
			Block: vecspace.PackWidth(vecs, p, width),
			Dead:  dead,
			Graph: func(i int) ([]byte, error) { return blobs[i], nil },
			Ones:  ones,
			List:  func(r int) []int32 { return lists[r] },
		},
		vecs:  vecs,
		blobs: blobs,
	}
}

func writeFixture(t *testing.T, fx *fixture) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg.gdx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, fx.pl); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func checkReader(t *testing.T, fx *fixture, r *Reader) {
	t.Helper()
	n, p := len(fx.vecs), fx.pl.Block.P()
	if r.N() != n || r.P() != p {
		t.Fatalf("N,P = %d,%d want %d,%d", r.N(), r.P(), n, p)
	}
	m := r.Meta()
	if m.Metric != fx.pl.Meta.Metric || m.MCSBudget != fx.pl.Meta.MCSBudget || m.BaseN != fx.pl.Meta.BaseN {
		t.Fatalf("meta scalars: %+v", m)
	}
	if len(m.Weights) != p || len(m.Features) != p {
		t.Fatalf("meta arrays: %d weights %d features", len(m.Weights), len(m.Features))
	}
	for i, w := range m.Weights {
		if w != fx.pl.Meta.Weights[i] {
			t.Fatalf("weight %d: %v", i, w)
		}
		if m.Features[i].Signature() != fx.pl.Meta.Features[i].Signature() {
			t.Fatalf("feature %d signature mismatch", i)
		}
	}
	blk, err := r.Block()
	if err != nil {
		t.Fatal(err)
	}
	if blk.N() != n || blk.P() != p || blk.Width() != fx.pl.Block.Width() {
		t.Fatalf("block shape %d/%d/%d", blk.N(), blk.P(), blk.Width())
	}
	for i, v := range fx.vecs {
		if blk.Vector(i).HammingDistance(v) != 0 {
			t.Fatalf("vector %d differs after round trip", i)
		}
	}
	if blk.Zones() == nil || blk.Zones().Zones() != (n+vecspace.ZoneSpan-1)/vecspace.ZoneSpan {
		t.Fatalf("zone map not adopted: %v", blk.Zones())
	}
	// Adopted zone metadata must agree with a fresh derivation.
	fresh := fx.pl.Block.Zones()
	for zi := 0; zi < fresh.Zones(); zi++ {
		if blk.Zones().MinOnes(zi) != fresh.MinOnes(zi) || blk.Zones().MaxOnes(zi) != fresh.MaxOnes(zi) {
			t.Fatalf("zone %d min/max differ", zi)
		}
		got, want := blk.Zones().Summary(zi), fresh.Summary(zi)
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("zone %d summary word %d differs", zi, w)
			}
		}
	}
	dead, count := r.Dead()
	wantCount := 0
	for i, d := range fx.pl.Dead {
		if dead[i] != d {
			t.Fatalf("dead[%d] = %v", i, dead[i])
		}
		if d {
			wantCount++
		}
	}
	if count != wantCount {
		t.Fatalf("dead count %d want %d", count, wantCount)
	}
	for i := range fx.vecs {
		b, err := r.GraphBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, fx.blobs[i]) {
			t.Fatalf("graph blob %d differs", i)
		}
		g, err := r.GraphAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() == 0 {
			t.Fatalf("graph %d empty", i)
		}
	}
	post, err := r.Postings()
	if err != nil {
		t.Fatal(err)
	}
	if post.N() != n || post.P() != p {
		t.Fatalf("postings shape %d/%d", post.N(), post.P())
	}
	for d := 0; d < p; d++ {
		got, want := post.List(d), fx.pl.List(d)
		if len(got) != len(want) {
			t.Fatalf("dim %d: %d postings want %d", d, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dim %d posting %d: %d want %d", d, i, got[i], want[i])
			}
		}
	}
	if err := r.VerifyBody(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		n, width int
		mmap     bool
	}{
		{"heap-w16", 700, 16, false},
		{"mmap-w16", 700, 16, true},
		{"heap-w8", 300, 8, false},
		{"mmap-w8", 300, 8, true},
		{"empty-heap", 0, 16, false},
		{"empty-mmap", 0, 16, true},
		{"partial-zone", vecspace.ZoneSpan + 17, 16, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fx := buildFixture(t, tc.n, 130, tc.width, int64(tc.n)+int64(tc.width))
			path := writeFixture(t, fx)
			r, err := Open(path, Options{Map: tc.mmap})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if tc.mmap && CanMap() && !r.Mapped() {
				t.Fatal("expected a mapped open")
			}
			if !tc.mmap && r.Mapped() {
				t.Fatal("heap open reported mapped")
			}
			checkReader(t, fx, r)
		})
	}
}

// TestSegmentTornTrailer proves open-time integrity: any truncation or
// trailer corruption is rejected before the body is trusted.
func TestSegmentTornTrailer(t *testing.T) {
	fx := buildFixture(t, 200, 64, 16, 7)
	path := writeFixture(t, fx)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated-mid-trailer", func(b []byte) []byte { return b[:len(b)-20] }},
		{"truncated-to-magic", func(b []byte) []byte { return b[:8] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"trailer-bit-flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-40] ^= 0x10
			return c
		}},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		}},
		{"bad-trailer-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xff
			return c
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mangled := filepath.Join(t.TempDir(), "torn.gdx")
			if err := os.WriteFile(mangled, tc.mangle(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			for _, mmap := range []bool{false, true} {
				if _, err := Open(mangled, Options{Map: mmap}); err == nil {
					t.Fatalf("map=%v: open of torn segment succeeded", mmap)
				}
			}
		})
	}
}

// TestSegmentBodyCorruption: a heap open checksums the body and rejects
// a flipped bit; a mapped open (by design) does not read the body.
func TestSegmentBodyCorruption(t *testing.T) {
	fx := buildFixture(t, 200, 64, 16, 11)
	path := writeFixture(t, fx)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)+100] ^= 0x01 // somewhere in the body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{Map: false}); err == nil {
		t.Fatal("heap open accepted corrupt body")
	}
	r, err := Open(path, Options{Map: true})
	if err != nil && CanMap() {
		t.Fatalf("mapped open should defer body validation: %v", err)
	}
	if r != nil {
		if err := r.VerifyBody(); err == nil {
			t.Fatal("VerifyBody missed the flipped bit")
		}
		r.Close()
	}
}

// TestSegmentPostingAppendCopies: posting lists aliased out of a mapped
// segment are capacity-clipped, so extending the index copies instead of
// scribbling on the file bytes.
func TestSegmentPostingAppendCopies(t *testing.T) {
	fx := buildFixture(t, 64, 32, 16, 3)
	path := writeFixture(t, fx)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, Options{Map: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	post, err := r.Postings()
	if err != nil {
		t.Fatal(err)
	}
	v := vecspace.NewBitVector(32)
	for d := 0; d < 32; d++ {
		v.Set(d)
	}
	if got := post.Append([]*vecspace.BitVector{v}); got.N() != 65 {
		t.Fatalf("appended index has N=%d", got.N())
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("append wrote through to the segment file")
	}
}
