package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec used by the v2 index persistence format. The layout is a
// varint stream (unsigned varints for counts and vertex ids, zigzag
// varints for labels, which are int32 and may be negative):
//
//	n                       uvarint, |V|
//	label(v) for v in 0..n  varint
//	m                       uvarint, |E|
//	{u, v, label} per edge  uvarint, uvarint, varint — in Edges() order
//
// The encoding is canonical: Edges() is sorted, so encoding a graph,
// decoding it, and re-encoding yields identical bytes.

// MaxBinaryElems bounds decoded counts (vertices, edges — and, in the
// index persistence layer reading the same byte stream, graphs and
// dimensions) so a corrupt length prefix cannot force a huge allocation.
// 1<<27 is ~3 orders of magnitude above the largest databases this
// repository handles. Exported so every decoder of the stream enforces
// the same limit.
const MaxBinaryElems = 1 << 27

// ByteReader is the reader the binary decoder needs: byte-at-a-time for
// varints plus bulk reads. *bufio.Reader satisfies it, as does the
// checksumming reader in the persistence layer.
type ByteReader interface {
	io.Reader
	io.ByteReader
}

// WriteBinary writes g in the binary form to w. Callers stream many
// graphs through one buffered writer, so w is typically a *bufio.Writer.
func WriteBinary(w io.Writer, g *Graph) error {
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		_, err := w.Write(buf[:binary.PutUvarint(buf[:], x)])
		return err
	}
	putVarint := func(x int64) error {
		_, err := w.Write(buf[:binary.PutVarint(buf[:], x)])
		return err
	}
	if err := putUvarint(uint64(g.N())); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if err := putVarint(int64(g.VertexLabel(v))); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(g.M())); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if err := putUvarint(uint64(e.U)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.V)); err != nil {
			return err
		}
		if err := putVarint(int64(e.Label)); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary decodes one graph written by WriteBinary. Counts, vertex ids
// and labels are validated, so corrupt or truncated input yields an error
// rather than a panic or an oversized allocation.
func ReadBinary(r ByteReader) (*Graph, error) {
	n, err := readCount(r, "vertex count")
	if err != nil {
		return nil, err
	}
	g := &Graph{}
	for v := 0; v < n; v++ {
		l, err := readLabel(r)
		if err != nil {
			return nil, fmt.Errorf("graph: vertex %d: %w", v, err)
		}
		g.AddVertex(l)
	}
	m, err := readCount(r, "edge count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		u, err := readCount(r, "edge endpoint")
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		v, err := readCount(r, "edge endpoint")
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		l, err := readLabel(r)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		if err := g.AddEdge(u, v, l); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func readCount(r ByteReader, what string) (int, error) {
	x, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("graph: reading %s: %w", what, NoEOF(err))
	}
	if x > MaxBinaryElems {
		return 0, fmt.Errorf("graph: %s %d exceeds limit %d", what, x, MaxBinaryElems)
	}
	return int(x), nil
}

func readLabel(r ByteReader) (Label, error) {
	x, err := binary.ReadVarint(r)
	if err != nil {
		return 0, fmt.Errorf("reading label: %w", NoEOF(err))
	}
	if x < math.MinInt32 || x > math.MaxInt32 {
		return 0, fmt.Errorf("label %d outside int32 range", x)
	}
	return Label(x), nil
}

// NoEOF converts a bare EOF in the middle of a record into
// ErrUnexpectedEOF so truncation is reported as corruption, not as a
// clean end of input. Shared with the index persistence layer, which
// decodes the same byte stream.
func NoEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
