package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is the de-facto standard used by gSpan and the graph
// indexing literature:
//
//	t # <id...>        graph header (payload after '#' is ignored)
//	v <id> <label>     vertex with dense id and integer label
//	e <u> <v> <label>  undirected edge
//
// Blank lines and lines starting with '%' or '//' are ignored.

// Parse reads a single graph in text format from s.
func Parse(s string) (*Graph, error) {
	gs, err := ReadAll(strings.NewReader(s))
	if err != nil {
		return nil, err
	}
	if len(gs) != 1 {
		return nil, fmt.Errorf("graph: expected 1 graph, found %d", len(gs))
	}
	return gs[0], nil
}

// ReadAll reads a sequence of graphs in text format from r.
func ReadAll(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var (
		graphs []*Graph
		cur    *Graph
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			cur = &Graph{}
			graphs = append(graphs, cur)
		case "v":
			if cur == nil {
				return nil, fmt.Errorf("graph: line %d: vertex before graph header", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed vertex line %q", lineNo, line)
			}
			id, err1 := strconv.Atoi(fields[1])
			l, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed vertex line %q", lineNo, line)
			}
			if id != cur.N() {
				return nil, fmt.Errorf("graph: line %d: non-dense vertex id %d (expected %d)", lineNo, id, cur.N())
			}
			cur.AddVertex(Label(l))
		case "e":
			if cur == nil {
				return nil, fmt.Errorf("graph: line %d: edge before graph header", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line %q", lineNo, line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			l, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed edge line %q", lineNo, line)
			}
			if err := cur.AddEdge(u, v, Label(l)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	return graphs, nil
}

// WriteAll writes the graphs to w in text format.
func WriteAll(w io.Writer, graphs []*Graph) error {
	bw := bufio.NewWriter(w)
	for i, g := range graphs {
		fmt.Fprintf(bw, "t # %d\n", i)
		for v := 0; v < g.N(); v++ {
			fmt.Fprintf(bw, "v %d %d\n", v, g.VertexLabel(v))
		}
		for _, e := range g.Edges() {
			fmt.Fprintf(bw, "e %d %d %d\n", e.U, e.V, e.Label)
		}
	}
	return bw.Flush()
}
