package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) *Graph {
	t.Helper()
	g, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return g
}

const triangle = `
t # 0
v 0 1
v 1 2
v 2 3
e 0 1 10
e 1 2 11
e 0 2 12
`

func TestParseBasic(t *testing.T) {
	g := mustParse(t, triangle)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got N=%d M=%d, want 3,3", g.N(), g.M())
	}
	if g.VertexLabel(2) != 3 {
		t.Errorf("VertexLabel(2) = %d, want 3", g.VertexLabel(2))
	}
	if l, ok := g.EdgeLabel(2, 1); !ok || l != 11 {
		t.Errorf("EdgeLabel(2,1) = %d,%v, want 11,true", l, ok)
	}
	if _, ok := g.EdgeLabel(0, 0); ok {
		t.Errorf("EdgeLabel(0,0) should not exist")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"edge before header", "e 0 1 0\n"},
		{"vertex before header", "v 0 1\n"},
		{"non-dense vertex", "t # 0\nv 1 1\n"},
		{"malformed vertex", "t # 0\nv 0\n"},
		{"malformed edge", "t # 0\nv 0 1\nv 1 1\ne 0 1\n"},
		{"self-loop", "t # 0\nv 0 1\ne 0 0 1\n"},
		{"dangling edge", "t # 0\nv 0 1\ne 0 5 1\n"},
		{"duplicate edge", "t # 0\nv 0 1\nv 1 1\ne 0 1 1\ne 1 0 2\n"},
		{"unknown record", "x 1 2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.in); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	g := mustParse(t, triangle)
	g2 := mustParse(t, g.String())
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip size mismatch")
	}
	if g.Signature() != g2.Signature() {
		t.Errorf("round trip signature mismatch")
	}
}

func TestReadAllMultiple(t *testing.T) {
	in := triangle + "\nt # 1\nv 0 7\n"
	gs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(gs) != 2 {
		t.Fatalf("got %d graphs, want 2", len(gs))
	}
	if gs[1].N() != 1 || gs[1].M() != 0 {
		t.Errorf("second graph wrong shape")
	}
}

func TestConnectivity(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(2, 3, 0)
	if g.Connected() {
		t.Errorf("two components reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	g.MustAddEdge(1, 2, 0)
	if !g.Connected() {
		t.Errorf("path graph reported disconnected")
	}
	if New(0).Connected() != true || New(1).Connected() != true {
		t.Errorf("trivial graphs must be connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustParse(t, triangle)
	sub, remap := g.InducedSubgraph([]int{0, 2})
	if sub.N() != 2 || sub.M() != 1 {
		t.Fatalf("induced: N=%d M=%d, want 2,1", sub.N(), sub.M())
	}
	if l, ok := sub.EdgeLabel(remap[0], remap[2]); !ok || l != 12 {
		t.Errorf("induced edge label = %d,%v, want 12,true", l, ok)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mustParse(t, triangle)
	c := g.Clone()
	c.AddVertex(9)
	c.MustAddEdge(0, 3, 5)
	if g.N() != 3 || g.M() != 3 {
		t.Errorf("mutating clone changed original")
	}
}

// randomGraph builds a random simple labeled graph for property tests.
func randomGraph(r *rand.Rand, n, extraEdges, labels int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.AddVertex(Label(r.Intn(labels)))
	}
	// Spanning tree to keep it connected, then extra random edges.
	for v := 1; v < n; v++ {
		g.MustAddEdge(r.Intn(v), v, Label(r.Intn(labels)))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, Label(r.Intn(labels)))
		}
	}
	return g
}

// permuted returns g with vertices renamed by a random permutation.
func permuted(r *rand.Rand, g *Graph) *Graph {
	perm := r.Perm(g.N())
	h := &Graph{}
	inv := make([]int, g.N())
	for newID, oldID := range perm {
		inv[oldID] = newID
	}
	for _, oldID := range perm {
		_ = oldID
		h.AddVertex(0)
	}
	for old := 0; old < g.N(); old++ {
		h.labels[inv[old]] = g.VertexLabel(old)
	}
	for _, e := range g.Edges() {
		h.MustAddEdge(inv[e.U], inv[e.V], e.Label)
	}
	return h
}

func TestSignatureInvariantUnderRelabeling(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomGraph(rr, 3+rr.Intn(8), rr.Intn(6), 3)
		p := permuted(r, g)
		return g.Signature() == p.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEdgesSortedAndNormalized(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomGraph(rr, 3+rr.Intn(8), rr.Intn(10), 4)
		es := g.Edges()
		for i, e := range es {
			if e.U >= e.V {
				return false
			}
			if i > 0 {
				p := es[i-1]
				if p.U > e.U || (p.U == e.U && p.V > e.V) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLabelHistogram(t *testing.T) {
	g := mustParse(t, triangle)
	vh, eh := g.LabelHistogram()
	if len(vh) != 3 || vh[1] != 1 {
		t.Errorf("vertex histogram wrong: %v", vh)
	}
	if len(eh) != 3 || eh[10] != 1 {
		t.Errorf("edge histogram wrong: %v", eh)
	}
}
