package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// ExampleParse demonstrates the text format shared with the gSpan
// ecosystem.
func ExampleParse() {
	g, err := graph.Parse(`
t # 0
v 0 6
v 1 6
v 2 8
e 0 1 1
e 1 2 2
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), g.M(), g.Connected())
	// Output: 3 2 true
}
