// Package graph provides the undirected labeled graph type used throughout
// the repository: the graphs stored in a graph database, the frequent
// subgraphs mined from it, and the query graphs matched against it.
//
// Graphs are simple (no self-loops, no parallel edges), undirected, and
// carry integer labels on both vertices and edges, matching the model in
// Section 2 of the paper (g = (V, E, l) over a label alphabet Σ).
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is a vertex or edge label drawn from the alphabet Σ.
// Labels are small non-negative integers; datasets map their domain
// alphabets (e.g. element symbols, bond orders) onto this type.
type Label int32

// Edge is an undirected labeled edge between vertices U and V.
// Invariant: U < V for edges stored in a Graph (normalized form).
type Edge struct {
	U, V  int
	Label Label
}

// normalize returns e with endpoints ordered U < V.
func (e Edge) normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Graph is an undirected labeled simple graph. The zero value is an empty
// graph ready to use. Vertices are dense integers 0..N-1.
//
// A fully built graph is safe for any number of concurrent readers —
// graphdim snapshots and parallel shard saves share *Graph values
// freely. Construction (AddVertex, AddEdge) is not synchronized; build
// on one goroutine, then share.
type Graph struct {
	labels []Label    // labels[v] is the label of vertex v
	edges  []Edge     // normalized (U<V), sorted lexicographically
	adj    [][]Half   // adj[v] lists incident half-edges
	sortMu sync.Mutex // guards the lazy sort in Edges
	sorted bool       // edges slice is sorted; written under sortMu
}

// Half is one endpoint's view of an incident edge: the neighbour vertex
// and the edge label.
type Half struct {
	To    int
	Label Label
}

// New returns an empty graph with n unlabeled (label 0) vertices.
func New(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.AddVertex(0)
	}
	return g
}

// AddVertex appends a vertex with the given label and returns its id.
func (g *Graph) AddVertex(l Label) int {
	g.labels = append(g.labels, l)
	g.adj = append(g.adj, nil)
	return len(g.labels) - 1
}

// AddEdge inserts an undirected edge {u,v} with label l. It reports an
// error for self-loops, out-of-range endpoints, or duplicate edges.
func (g *Graph) AddEdge(u, v int, l Label) error {
	switch {
	case u == v:
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	case u < 0 || u >= len(g.labels):
		return fmt.Errorf("graph: vertex %d out of range [0,%d)", u, len(g.labels))
	case v < 0 || v >= len(g.labels):
		return fmt.Errorf("graph: vertex %d out of range [0,%d)", v, len(g.labels))
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.edges = append(g.edges, Edge{U: u, V: v, Label: l}.normalize())
	g.adj[u] = append(g.adj[u], Half{To: v, Label: l})
	g.adj[v] = append(g.adj[v], Half{To: u, Label: l})
	g.sorted = false
	return nil
}

// MustAddEdge is AddEdge that panics on error; for tests and generators
// that construct graphs from known-valid data.
func (g *Graph) MustAddEdge(u, v int, l Label) {
	if err := g.AddEdge(u, v, l); err != nil {
		panic(err)
	}
}

// N returns the number of vertices |V(g)|.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of edges |E(g)|.
func (g *Graph) M() int { return len(g.edges) }

// VertexLabel returns the label of vertex v.
func (g *Graph) VertexLabel(v int) Label { return g.labels[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the incident half-edges of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []Half { return g.adj[v] }

// HasEdge reports whether an edge {u,v} exists (any label).
func (g *Graph) HasEdge(u, v int) bool {
	// Scan the smaller adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, h := range g.adj[a] {
		if h.To == b {
			return true
		}
	}
	return false
}

// EdgeLabel returns the label of edge {u,v} and whether it exists.
func (g *Graph) EdgeLabel(u, v int) (Label, bool) {
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, h := range g.adj[a] {
		if h.To == b {
			return h.Label, true
		}
	}
	return 0, false
}

// Edges returns the normalized edge list sorted lexicographically by
// (U, V, Label). The returned slice is owned by the graph. The sort is
// lazy; the mutex makes the first call safe against concurrent readers
// (e.g. two shards of a collection encoding their shared feature graphs
// in parallel) — once sorted, the slice is never written again.
func (g *Graph) Edges() []Edge {
	g.sortMu.Lock()
	if !g.sorted {
		sort.Slice(g.edges, func(i, j int) bool {
			a, b := g.edges[i], g.edges[j]
			if a.U != b.U {
				return a.U < b.U
			}
			if a.V != b.V {
				return a.V < b.V
			}
			return a.Label < b.Label
		})
		g.sorted = true
	}
	g.sortMu.Unlock()
	return g.edges
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	// Copy via Edges() so a clone taken while another goroutine triggers
	// the lazy sort cannot observe a half-sorted slice.
	c := &Graph{
		labels: append([]Label(nil), g.labels...),
		edges:  append([]Edge(nil), g.Edges()...),
		adj:    make([][]Half, len(g.adj)),
		sorted: true,
	}
	for v, hs := range g.adj {
		c.adj[v] = append([]Half(nil), hs...)
	}
	return c
}

// Connected reports whether g is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if !seen[h.To] {
				seen[h.To] = true
				count++
				stack = append(stack, h.To)
			}
		}
	}
	return count == n
}

// Components returns the vertex sets of the connected components of g,
// each sorted ascending, ordered by smallest member.
func (g *Graph) Components() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, h := range g.adj[v] {
				if !seen[h.To] {
					seen[h.To] = true
					stack = append(stack, h.To)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by the given vertex set
// together with the mapping old→new vertex ids. Vertices keep their labels;
// all edges with both endpoints in the set are retained.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, map[int]int) {
	remap := make(map[int]int, len(vs))
	sub := &Graph{}
	for _, v := range vs {
		remap[v] = sub.AddVertex(g.labels[v])
	}
	for _, e := range g.Edges() {
		nu, okU := remap[e.U]
		nv, okV := remap[e.V]
		if okU && okV {
			sub.MustAddEdge(nu, nv, e.Label)
		}
	}
	return sub, remap
}

// LabelHistogram returns counts of vertex labels and edge labels. Useful
// as a cheap pre-filter before isomorphism checks.
func (g *Graph) LabelHistogram() (vertex map[Label]int, edge map[Label]int) {
	vertex = make(map[Label]int)
	edge = make(map[Label]int)
	for _, l := range g.labels {
		vertex[l]++
	}
	for _, e := range g.Edges() {
		edge[e.Label]++
	}
	return vertex, edge
}

// Signature returns a cheap string invariant under isomorphism: sorted
// vertex label counts, sorted edge (label, endpoint-labels) triples and
// sorted degree sequence. Two isomorphic graphs always share a signature;
// the converse is not guaranteed.
func (g *Graph) Signature() string {
	var sb strings.Builder
	vl := append([]Label(nil), g.labels...)
	sort.Slice(vl, func(i, j int) bool { return vl[i] < vl[j] })
	fmt.Fprintf(&sb, "V%v", vl)
	type et struct{ a, b, l Label }
	edges := g.Edges()
	ets := make([]et, 0, len(edges))
	for _, e := range edges {
		a, b := g.labels[e.U], g.labels[e.V]
		if a > b {
			a, b = b, a
		}
		ets = append(ets, et{a, b, e.Label})
	}
	sort.Slice(ets, func(i, j int) bool {
		if ets[i].a != ets[j].a {
			return ets[i].a < ets[j].a
		}
		if ets[i].b != ets[j].b {
			return ets[i].b < ets[j].b
		}
		return ets[i].l < ets[j].l
	})
	fmt.Fprintf(&sb, "E%v", ets)
	deg := make([]int, g.N())
	for v := range deg {
		deg[v] = g.Degree(v)
	}
	sort.Ints(deg)
	fmt.Fprintf(&sb, "D%v", deg)
	return sb.String()
}

// String renders the graph in the compact text format parsed by Parse.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t # %d %d\n", g.N(), g.M())
	for v, l := range g.labels {
		fmt.Fprintf(&sb, "v %d %d\n", v, l)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "e %d %d %d\n", e.U, e.V, e.Label)
	}
	return sb.String()
}
