package graph

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
)

// equalGraphs compares two graphs structurally: vertex count, labels in
// id order, and the normalized sorted edge lists.
func equalGraphs(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if a.VertexLabel(v) != b.VertexLabel(v) {
			return false
		}
	}
	return reflect.DeepEqual(a.Edges(), b.Edges())
}

func sampleGraphs() []*Graph {
	empty := &Graph{}
	single := &Graph{}
	single.AddVertex(7)

	negLabels := &Graph{}
	negLabels.AddVertex(-1)
	negLabels.AddVertex(math.MinInt32)
	negLabels.AddVertex(math.MaxInt32)
	negLabels.MustAddEdge(0, 1, -42)
	negLabels.MustAddEdge(1, 2, 0)

	triangle := New(3)
	triangle.MustAddEdge(0, 1, 1)
	triangle.MustAddEdge(1, 2, 2)
	triangle.MustAddEdge(0, 2, 3)

	return []*Graph{empty, single, negLabels, triangle}
}

func TestBinaryRoundTrip(t *testing.T) {
	for i, g := range sampleGraphs() {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteBinary(w, g); err != nil {
			t.Fatalf("graph %d: WriteBinary: %v", i, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("graph %d: ReadBinary: %v", i, err)
		}
		if !equalGraphs(g, got) {
			t.Errorf("graph %d: round trip changed the graph:\nin:\n%s\nout:\n%s", i, g, got)
		}
	}
}

func TestBinaryCanonical(t *testing.T) {
	// encode → decode → encode must be byte-identical (Edges() sorts).
	for i, g := range sampleGraphs() {
		var a bytes.Buffer
		w := bufio.NewWriter(&a)
		if err := WriteBinary(w, g); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		g2, err := ReadBinary(bufio.NewReader(bytes.NewReader(a.Bytes())))
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		w = bufio.NewWriter(&b)
		if err := WriteBinary(w, g2); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("graph %d: re-encoding is not canonical", i)
		}
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		g := New(2)
		g.MustAddEdge(0, 1, 5)
		if err := WriteBinary(w, g); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"empty input":     {},
		"truncated":       valid[:len(valid)-1],
		"huge count":      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"edge to missing": {1, 0, 1, 0, 2, 0}, // 1 vertex, edge 0-1 out of range
		"self loop":       {2, 0, 0, 1, 0, 0, 0},
	}
	for name, data := range cases {
		if _, err := ReadBinary(bufio.NewReader(bytes.NewReader(data))); err == nil {
			t.Errorf("%s: ReadBinary accepted corrupt input", name)
		}
	}
}

func TestBinaryTruncationIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	g := New(3)
	g.MustAddEdge(0, 2, 9)
	if err := WriteBinary(w, g); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	data := buf.Bytes()
	// Every strict prefix must fail — and never with a bare io.EOF, which
	// callers of the persistence layer treat as clean end-of-stream.
	for cut := 1; cut < len(data); cut++ {
		_, err := ReadBinary(bufio.NewReader(bytes.NewReader(data[:cut])))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(data))
		}
		if err == io.EOF {
			t.Fatalf("prefix of %d/%d bytes returned bare io.EOF", cut, len(data))
		}
	}
}
