package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTextRoundTrip feeds arbitrary bytes through the text-format parser;
// whatever parses must survive a write→re-read round trip unchanged. This
// pins down the parser/printer pair: WriteAll must emit every structural
// fact ReadAll accepts (labels, edge order, multiple graphs), and ReadAll
// must accept everything WriteAll emits.
func FuzzTextRoundTrip(f *testing.F) {
	f.Add("t # 0\nv 0 1\nv 1 2\ne 0 1 3\n")
	f.Add("t # a b c\nv 0 0\n\n% comment\n// comment\nt # 1\nv 0 5\n")
	f.Add("t # 0\nv 0 -7\nv 1 2147483647\ne 0 1 -1\n")
	f.Add("")
	f.Add("t\nt\nt\n")
	f.Add("e 0 1 2\n")
	f.Add("v 0 0\n")
	f.Add("t # 0\nv 0 1\ne 0 0 1\n")
	f.Add("t # 0\nv 1 1\n")

	f.Fuzz(func(t *testing.T, data string) {
		gs, err := ReadAll(strings.NewReader(data))
		if err != nil {
			// Invalid input is fine; the property under test is only that
			// valid input round-trips.
			t.Skip()
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, gs); err != nil {
			t.Fatalf("WriteAll failed on parsed graphs: %v", err)
		}
		gs2, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written output failed: %v\noutput:\n%s", err, buf.Bytes())
		}
		if len(gs) != len(gs2) {
			t.Fatalf("round trip changed graph count: %d -> %d", len(gs), len(gs2))
		}
		for i := range gs {
			if !equalGraphs(gs[i], gs2[i]) {
				t.Fatalf("round trip changed graph %d:\nin:\n%s\nout:\n%s", i, gs[i], gs2[i])
			}
		}
	})
}
