package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vecspace"
)

// randomProblem builds a random binary feature matrix and a consistent
// random dissimilarity matrix.
func randomProblem(r *rand.Rand, n, m int) (*vecspace.Index, [][]float64) {
	vs := make([]*vecspace.BitVector, n)
	for i := range vs {
		v := vecspace.NewBitVector(m)
		for j := 0; j < m; j++ {
			if r.Intn(2) == 0 {
				v.Set(j)
			}
		}
		vs[i] = v
	}
	idx := vecspace.BuildIndexFromVectors(vs)
	delta := make([][]float64, n)
	for i := range delta {
		delta[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := r.Float64()
			delta[i][j] = d
			delta[j][i] = d
		}
	}
	return idx, delta
}

func TestDSPMValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	idx, delta := randomProblem(r, 5, 4)
	if _, err := DSPM(idx, delta, Config{P: 0}); err == nil {
		t.Errorf("P=0 must error")
	}
	if _, err := DSPM(idx, delta, Config{P: 5}); err == nil {
		t.Errorf("P>m must error")
	}
	if _, err := DSPM(idx, delta[:2], Config{P: 2}); err == nil {
		t.Errorf("wrong delta shape must error")
	}
	empty := vecspace.BuildIndexFromVectors(nil)
	if _, err := DSPM(empty, nil, Config{P: 1}); err == nil {
		t.Errorf("empty problem must error")
	}
}

func TestDSPMObjectiveMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx, delta := randomProblem(r, 6+r.Intn(10), 4+r.Intn(8))
		res, err := DSPM(idx, delta, Config{P: 2, MaxIter: 15})
		if err != nil {
			return false
		}
		for k := 1; k < len(res.Objectives); k++ {
			// Majorization guarantees non-increasing objective values up
			// to floating point noise.
			if res.Objectives[k] > res.Objectives[k-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTheorem51SimplifiedUpdateMatchesNaive(t *testing.T) {
	// Theorem 5.1: Eq. (9) equals Eq. (7). Run both variants lockstep and
	// compare weight vectors after each full run.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx, delta := randomProblem(r, 5+r.Intn(8), 3+r.Intn(6))
		fast, err1 := DSPM(idx, delta, Config{P: 2, MaxIter: 8})
		slow, err2 := DSPM(idx, delta, Config{P: 2, MaxIter: 8, NaiveUpdateC: true})
		if err1 != nil || err2 != nil {
			return false
		}
		if len(fast.C) != len(slow.C) {
			return false
		}
		for r := range fast.C {
			if math.Abs(fast.C[r]-slow.C[r]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDenseVariantsMatchOptimized(t *testing.T) {
	// Algorithms 3 and 4 are pure optimizations; results must be
	// identical to the dense computations.
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 10; iter++ {
		idx, delta := randomProblem(r, 8, 6)
		a, err1 := DSPM(idx, delta, Config{P: 3, MaxIter: 6})
		b, err2 := DSPM(idx, delta, Config{P: 3, MaxIter: 6, DenseObjective: true, DenseXbar: true})
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		for r := range a.C {
			if math.Abs(a.C[r]-b.C[r]) > 1e-9 {
				t.Fatalf("dense variant diverged at feature %d: %g vs %g", r, a.C[r], b.C[r])
			}
		}
		for k := range a.Objectives {
			if math.Abs(a.Objectives[k]-b.Objectives[k]) > 1e-6*(1+a.Objectives[k]) {
				t.Fatalf("objective %d diverged: %g vs %g", k, a.Objectives[k], b.Objectives[k])
			}
		}
	}
}

func TestDSPMPerfectRecovery(t *testing.T) {
	// Construct a problem where δ is exactly the mapped distance induced
	// by a known subset of features with equal weights. DSPM should drive
	// the objective near zero and rank the informative features first.
	r := rand.New(rand.NewSource(9))
	n, m := 20, 10
	informative := []int{1, 4, 7}
	vs := make([]*vecspace.BitVector, n)
	for i := range vs {
		v := vecspace.NewBitVector(m)
		for j := 0; j < m; j++ {
			if r.Intn(2) == 0 {
				v.Set(j)
			}
		}
		vs[i] = v
	}
	idx := vecspace.BuildIndexFromVectors(vs)
	w := 1 / math.Sqrt(float64(len(informative)))
	delta := make([][]float64, n)
	for i := range delta {
		delta[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.0
			for _, f := range informative {
				if vs[i].Get(f) != vs[j].Get(f) {
					s += w * w
				}
			}
			d := math.Sqrt(s)
			delta[i][j] = d
			delta[j][i] = d
		}
	}
	res, err := DSPM(idx, delta, Config{P: 3, MaxIter: 100, Epsilon: 1e-10})
	if err != nil {
		t.Fatalf("DSPM: %v", err)
	}
	final := res.Objectives[len(res.Objectives)-1]
	if final > 0.05 {
		t.Errorf("objective did not approach zero: %g", final)
	}
	sel := map[int]bool{}
	for _, f := range res.Selected {
		sel[f] = true
	}
	for _, f := range informative {
		if !sel[f] {
			t.Errorf("informative feature %d not selected; got %v (weights %v)", f, res.Selected, res.C)
		}
	}
}

func TestTopWeights(t *testing.T) {
	c := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	got := TopWeights(c, 3)
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopWeights = %v, want %v", got, want)
		}
	}
	if len(TopWeights(c, 10)) != 5 {
		t.Errorf("TopWeights should clamp p to len(c)")
	}
}

func TestDSPMDegenerateFeatures(t *testing.T) {
	// Feature contained by all graphs and feature contained by none must
	// get weight 0 and never be selected ahead of informative features.
	n, m := 10, 4
	vs := make([]*vecspace.BitVector, n)
	r := rand.New(rand.NewSource(4))
	for i := range vs {
		v := vecspace.NewBitVector(m)
		v.Set(0) // feature 0: support n
		// feature 1: support 0 (never set)
		if r.Intn(2) == 0 {
			v.Set(2)
		}
		if r.Intn(2) == 0 {
			v.Set(3)
		}
		vs[i] = v
	}
	idx := vecspace.BuildIndexFromVectors(vs)
	delta := make([][]float64, n)
	for i := range delta {
		delta[i] = make([]float64, n)
		for j := range delta[i] {
			if i != j {
				delta[i][j] = 0.5
			}
		}
	}
	res, err := DSPM(idx, delta, Config{P: 2, MaxIter: 10})
	if err != nil {
		t.Fatalf("DSPM: %v", err)
	}
	if res.C[0] != 0 || res.C[1] != 0 {
		t.Errorf("degenerate features should have zero weight, got %v", res.C)
	}
	for _, f := range res.Selected {
		if f == 0 || f == 1 {
			t.Errorf("degenerate feature %d selected", f)
		}
	}
}
