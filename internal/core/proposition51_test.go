package core

// Property test for Proposition 5.1: for binary feature vectors,
// Σ_i y_ir = |sup(f_r)| and Σ_i y_ir² = |sup(f_r)| — the identity that
// collapses Eq. (7)'s denominator into |sup|(n−|sup|) (Theorem 5.1).
// Stated over the inverted-list representation the algorithms actually
// use.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vecspace"
)

func TestProposition51(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 2+r.Intn(12), 1+r.Intn(10)
		vs := make([]*vecspace.BitVector, n)
		for i := range vs {
			v := vecspace.NewBitVector(m)
			for j := 0; j < m; j++ {
				if r.Intn(2) == 0 {
					v.Set(j)
				}
			}
			vs[i] = v
		}
		idx := vecspace.BuildIndexFromVectors(vs)
		for r2 := 0; r2 < m; r2++ {
			sum, sumSq := 0, 0
			for i := 0; i < n; i++ {
				if vs[i].Get(r2) {
					sum++
					sumSq++ // y² = y for binary entries
				}
			}
			if sum != len(idx.IF[r2]) || sumSq != len(idx.IF[r2]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
