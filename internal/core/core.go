// Package core implements the paper's primary contribution: the DSPM
// algorithm (Section 5.1) that selects a small set of frequent subgraphs
// ("graph dimensions") whose binary containment vectors preserve the
// MCS-based graph dissimilarity under Euclidean distance, and the
// approximate, partition-based DSPMap algorithm (Section 5.2) that scales
// the computation to large graph databases.
//
// DSPM minimizes the stress objective of Eq. (4)
//
//	E = Σ_{i,j} (d(x_i, x_j) − δ_ij)^2,   x_ir = y_ir · c_r
//
// by the majorization (SMACOF-style) iteration of Eqs. (6)–(8), with the
// simplified weight update of Theorem 5.1 and the inverted-list
// optimizations of Algorithms 2–4. The p features with largest weight c_r
// form the selected dimension F.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/vecspace"
)

// Config controls a DSPM run.
type Config struct {
	// P is the number of dimensions to select (p in the paper).
	P int
	// Epsilon is the convergence threshold ε on the objective decrease.
	// Zero means the default 1e-4.
	Epsilon float64
	// MaxIter caps the number of majorization iterations. Zero means the
	// default 30.
	MaxIter int
	// NaiveUpdateC switches the weight update from the simplified Eq. (9)
	// to the direct Eq. (7) computation — exposed for the ablation bench
	// and the Theorem 5.1 equivalence test.
	NaiveUpdateC bool
	// DenseObjective switches Computeobj from the inverted-list Algorithm
	// 4 to a dense scan — exposed for the ablation bench.
	DenseObjective bool
	// DenseXbar switches Updatexbar from the IF-list Algorithm 3 to a
	// dense scan over all graphs — exposed for the ablation bench.
	DenseXbar bool
	// OnIteration, when non-nil, is called after every majorization
	// iteration with the 1-based iteration number and the objective value
	// it reached — the hook behind build-progress reporting. It is always
	// called from the goroutine running DSPM.
	OnIteration func(iteration int, objective float64)
}

// DefaultMaxIter is the majorization-iteration cap a zero Config.MaxIter
// resolves to — exported so callers planning progress totals agree with
// the run.
const DefaultMaxIter = 30

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 1e-4
	}
	if c.MaxIter == 0 {
		c.MaxIter = DefaultMaxIter
	}
	return c
}

// Result reports a DSPM run.
type Result struct {
	// C is the final weight vector over all m candidate features.
	C []float64
	// Selected lists the indices of the p features with largest weight,
	// in descending weight order.
	Selected []int
	// Objectives records the objective value per iteration (including the
	// initial configuration), a monotone non-increasing sequence.
	Objectives []float64
	// Iterations is the number of majorization iterations executed.
	Iterations int
}

// DSPM runs Algorithm 1 on a database described by its feature index (the
// binary matrix Y via inverted lists) and a full pairwise dissimilarity
// matrix delta. It returns the weight vector and the selected dimensions.
func DSPM(idx *vecspace.Index, delta [][]float64, cfg Config) (*Result, error) {
	return DSPMContext(context.Background(), idx, delta, cfg)
}

// DSPMContext is DSPM with cancellation: ctx is checked before every
// majorization iteration (each iteration is O(n²) pair distances), and a
// cancelled run returns (nil, ctx.Err()) rather than a partial result.
func DSPMContext(ctx context.Context, idx *vecspace.Index, delta [][]float64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n, m := idx.N, idx.P
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("core: empty problem (n=%d, m=%d)", n, m)
	}
	if len(delta) != n {
		return nil, fmt.Errorf("core: delta is %d×?, want %d×%d", len(delta), n, n)
	}
	if cfg.P <= 0 || cfg.P > m {
		return nil, fmt.Errorf("core: P=%d out of range (0, %d]", cfg.P, m)
	}

	s := &state{idx: idx, delta: delta, cfg: cfg, n: n, m: m}
	s.c = make([]float64, m)
	for r := range s.c {
		s.c[r] = 1 / math.Sqrt(float64(m))
	}

	res := &Result{}
	prev := math.Inf(1)
	cur := s.computeObj()
	res.Objectives = append(res.Objectives, cur)
	for k := 1; prev-cur > cfg.Epsilon && k <= cfg.MaxIter; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		xbar := s.updateXbar()
		s.c = s.updateC(xbar)
		prev, cur = cur, s.computeObj()
		res.Objectives = append(res.Objectives, cur)
		res.Iterations = k
		if cfg.OnIteration != nil {
			cfg.OnIteration(k, cur)
		}
	}

	res.C = append([]float64(nil), s.c...)
	res.Selected = TopWeights(s.c, cfg.P)
	return res, nil
}

// TopWeights returns the indices of the p largest weights, descending,
// breaking ties by ascending index for determinism.
func TopWeights(c []float64, p int) []int {
	idx := make([]int, len(c))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if c[idx[a]] != c[idx[b]] {
			return c[idx[a]] > c[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if p > len(idx) {
		p = len(idx)
	}
	return append([]int(nil), idx[:p]...)
}

// state carries one DSPM run. The configuration z of Algorithm 1 is not
// materialized: z_ir = y_ir * c_r, so the inverted lists plus c determine
// it implicitly.
type state struct {
	idx   *vecspace.Index
	delta [][]float64
	cfg   Config
	n, m  int
	c     []float64
}

// pairDistance computes d(z_i, z_j) = sqrt(Σ_{r: y_ir≠y_jr} c_r^2) by
// walking the symmetric difference of the graphs' feature lists
// (Algorithm 4's inner loop).
func (s *state) pairDistance(i, j int) float64 {
	sum := 0.0
	s.idx.SymmetricDifferenceFeatures(i, j, func(r int) {
		sum += s.c[r] * s.c[r]
	})
	return math.Sqrt(sum)
}

// pairDistanceDense computes the same distance by scanning all m features.
func (s *state) pairDistanceDense(i, j int) float64 {
	inI := memberSet(s.idx.IG[i], s.m)
	inJ := memberSet(s.idx.IG[j], s.m)
	sum := 0.0
	for r := 0; r < s.m; r++ {
		if inI[r] != inJ[r] {
			sum += s.c[r] * s.c[r]
		}
	}
	return math.Sqrt(sum)
}

func memberSet(list []int, m int) []bool {
	b := make([]bool, m)
	for _, r := range list {
		b[r] = true
	}
	return b
}

// computeObj is Algorithm 4: E(z) = Σ_{i,j} (d(z_i,z_j) − δ_ij)^2 over
// ordered pairs (the paper's double sum), i.e. twice the i<j sum.
func (s *state) computeObj() float64 {
	e := 0.0
	for i := 0; i < s.n; i++ {
		for j := i + 1; j < s.n; j++ {
			var d float64
			if s.cfg.DenseObjective {
				d = s.pairDistanceDense(i, j)
			} else {
				d = s.pairDistance(i, j)
			}
			diff := d - s.delta[i][j]
			e += 2 * diff * diff
		}
	}
	return e
}

// updateXbar is Algorithm 3: x̄_ir = (1/n) Σ_k b_ik z_kr with the Guttman
// transform weights b of Eq. (8); the sum only ranges over g_k ∈ IF_r
// because z_kr = 0 elsewhere.
func (s *state) updateXbar() [][]float64 {
	n := s.n
	// b matrix (Eq. 8).
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := s.pairDistance(i, j)
			var v float64
			if d != 0 {
				v = -s.delta[i][j] / d
			}
			b[i][j] = v
			b[j][i] = v
		}
	}
	for i := 0; i < n; i++ {
		diag := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				diag -= b[i][j]
			}
		}
		b[i][i] = diag
	}

	xbar := make([][]float64, n)
	for i := range xbar {
		xbar[i] = make([]float64, s.m)
	}
	if s.cfg.DenseXbar {
		// Ablation: ignore the IF lists and walk every graph for every
		// feature, multiplying by z_kr (mostly zero).
		for i := 0; i < n; i++ {
			for r := 0; r < s.m; r++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += b[i][k] * s.z(k, r)
				}
				xbar[i][r] = sum / float64(n)
			}
		}
		return xbar
	}
	// Algorithm 3: skip graphs outside IF_r (their z_kr is zero).
	inv := 1 / float64(n)
	for r := 0; r < s.m; r++ {
		cr := s.c[r]
		if cr == 0 {
			continue
		}
		list := s.idx.IF[r]
		for i := 0; i < n; i++ {
			sum := 0.0
			bi := b[i]
			for _, k := range list {
				sum += bi[k]
			}
			xbar[i][r] = sum * cr * inv
		}
	}
	return xbar
}

// z returns z_kr = y_kr * c_r.
func (s *state) z(k, r int) float64 {
	list := s.idx.IG[k]
	pos := sort.SearchInts(list, r)
	if pos < len(list) && list[pos] == r {
		return s.c[r]
	}
	return 0
}

// updateC computes the next weight vector. The default path is Algorithm 2
// (the simplified Eq. (9) of Theorem 5.1); the naive path evaluates Eq.
// (7) directly over all graph pairs.
func (s *state) updateC(xbar [][]float64) []float64 {
	if s.cfg.NaiveUpdateC {
		return s.updateCNaive(xbar)
	}
	n := s.n
	c := make([]float64, s.m)
	for r := 0; r < s.m; r++ {
		sup := len(s.idx.IF[r])
		if sup == 0 || sup == n {
			// Degenerate feature: y_ir is constant, Eq. (7)'s denominator
			// vanishes and the feature carries no distance information.
			c[r] = 0
			continue
		}
		denom := float64(sup) * float64(n-sup)
		inIF := memberSet(s.idx.IF[r], n)
		num := 0.0
		for i := 0; i < n; i++ {
			y := 0.0
			if inIF[i] {
				y = 1
			}
			num += xbar[i][r] * (float64(n)*y - float64(sup))
		}
		c[r] = num / denom
	}
	return c
}

// updateCNaive evaluates Eq. (7) directly:
// c_r = Σ_{i,j} (x̄_ir − x̄_jr)(y_ir − y_jr) / Σ_{i,j} (y_ir − y_jr)^2.
func (s *state) updateCNaive(xbar [][]float64) []float64 {
	n := s.n
	c := make([]float64, s.m)
	for r := 0; r < s.m; r++ {
		inIF := memberSet(s.idx.IF[r], n)
		num, den := 0.0, 0.0
		for i := 0; i < n; i++ {
			yi := 0.0
			if inIF[i] {
				yi = 1
			}
			for j := 0; j < n; j++ {
				yj := 0.0
				if inIF[j] {
					yj = 1
				}
				num += (xbar[i][r] - xbar[j][r]) * (yi - yj)
				den += (yi - yj) * (yi - yj)
			}
		}
		if den == 0 {
			c[r] = 0
			continue
		}
		c[r] = num / den
	}
	return c
}
