package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vecspace"
)

func TestDSPMapValidation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	idx, delta := randomProblem(r, 10, 5)
	dis := func(i, j int) float64 { return delta[i][j] }
	if _, err := DSPMap(idx, dis, MapConfig{B: 1, Core: Config{P: 2}}); err == nil {
		t.Errorf("B=1 must error")
	}
	if _, err := DSPMap(idx, dis, MapConfig{B: 4, Core: Config{P: 0}}); err == nil {
		t.Errorf("P=0 must error")
	}
}

func newTestDspmap(idx *vecspace.Index, delta [][]float64, b int, seed int64) *dspmap {
	d := &dspmap{
		idx: idx,
		dis: func(i, j int) float64 { return delta[i][j] },
		cfg: MapConfig{B: b, SampleSize: 8, Core: Config{P: 2, MaxIter: 5}},
		rng: rand.New(rand.NewSource(seed)),
	}
	d.vectors = make([]*vecspace.BitVector, idx.N)
	for i := range d.vectors {
		d.vectors[i] = idx.Vector(i)
	}
	return d
}

func TestPartitionInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for iter := 0; iter < 15; iter++ {
		n := 15 + r.Intn(80)
		b := 3 + r.Intn(10)
		idx, delta := randomProblem(r, n, 10)
		d := newTestDspmap(idx, delta, b, int64(iter))
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		parts := d.partition(all)

		// Invariant 1: each part has between 1 and b graphs.
		for _, p := range parts {
			if len(p) == 0 || len(p) > b {
				t.Fatalf("iter %d: partition size %d out of (0,%d]", iter, len(p), b)
			}
		}
		// Invariant 2: parts are disjoint and cover all ids.
		var flat []int
		for _, p := range parts {
			flat = append(flat, p...)
		}
		sort.Ints(flat)
		if len(flat) != n {
			t.Fatalf("iter %d: partition covers %d ids, want %d", iter, len(flat), n)
		}
		for i, id := range flat {
			if id != i {
				t.Fatalf("iter %d: partition not a permutation of 0..n-1", iter)
			}
		}
		// Invariant 3: number of parts is ⌈n/b⌉ (the balancing step makes
		// every left subtree an exact multiple of b).
		want := (n + b - 1) / b
		if len(parts) != want {
			t.Fatalf("iter %d: %d parts, want %d (n=%d b=%d)", iter, len(parts), want, n, b)
		}
	}
}

func TestDSPMapEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 8; iter++ {
		n := 20 + r.Intn(50)
		b := 5 + r.Intn(8)
		idx, delta := randomProblem(r, n, 8)
		res, err := DSPMap(idx, func(i, j int) float64 { return delta[i][j] },
			MapConfig{B: b, SampleSize: 10, Core: Config{P: 2, MaxIter: 5}, Seed: int64(iter)})
		if err != nil {
			t.Fatalf("DSPMap: %v", err)
		}
		if len(res.Selected) != 2 {
			t.Fatalf("selected %d features, want 2", len(res.Selected))
		}
		if len(res.C) != idx.P {
			t.Fatalf("weight vector length %d, want %d", len(res.C), idx.P)
		}
	}
}

func TestDSPMapApproximatesDSPM(t *testing.T) {
	// On a problem with clearly informative features, DSPMap should select
	// mostly the same dimensions DSPM does.
	r := rand.New(rand.NewSource(21))
	idx, delta := randomProblem(r, 60, 12)
	exact, err := DSPM(idx, delta, Config{P: 4, MaxIter: 20})
	if err != nil {
		t.Fatalf("DSPM: %v", err)
	}
	approx, err := DSPMap(idx, func(i, j int) float64 { return delta[i][j] },
		MapConfig{B: 20, Core: Config{P: 4, MaxIter: 20}, Seed: 5})
	if err != nil {
		t.Fatalf("DSPMap: %v", err)
	}
	inExact := map[int]bool{}
	for _, f := range exact.Selected {
		inExact[f] = true
	}
	overlap := 0
	for _, f := range approx.Selected {
		if inExact[f] {
			overlap++
		}
	}
	// Random dissimilarities make full agreement unlikely; require a
	// majority overlap as a smoke-level consistency check.
	if overlap < 2 {
		t.Errorf("DSPMap selected %v, DSPM selected %v; overlap %d < 2", approx.Selected, exact.Selected, overlap)
	}
}

func TestDSPMapDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	idx, delta := randomProblem(r, 40, 10)
	dis := func(i, j int) float64 { return delta[i][j] }
	cfg := MapConfig{B: 10, Core: Config{P: 3, MaxIter: 10}, Seed: 99}
	a, err1 := DSPMap(idx, dis, cfg)
	b, err2 := DSPMap(idx, dis, cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	for i := range a.C {
		if a.C[i] != b.C[i] {
			t.Fatalf("same seed produced different weights at %d", i)
		}
	}
}

func TestDSPMapLazyDissimilarityScope(t *testing.T) {
	// DSPMap must never request δ for pairs outside partitions or merge
	// samples; in particular the number of distinct pairs evaluated must
	// be far below n(n-1)/2 for many partitions.
	r := rand.New(rand.NewSource(12))
	n := 100
	idx, delta := randomProblem(r, n, 10)
	type pair struct{ i, j int }
	asked := map[pair]bool{}
	dis := func(i, j int) float64 {
		if i == j {
			t.Errorf("dissimilarity asked for identical pair %d", i)
		}
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		asked[pair{a, b}] = true
		return delta[i][j]
	}
	if _, err := DSPMap(idx, dis, MapConfig{B: 10, Core: Config{P: 3, MaxIter: 5}, Seed: 7}); err != nil {
		t.Fatalf("DSPMap: %v", err)
	}
	all := n * (n - 1) / 2
	if len(asked) >= all/2 {
		t.Errorf("DSPMap evaluated %d of %d pairs; expected locality", len(asked), all)
	}
}
