package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/vecspace"
)

// Dissim supplies the graph dissimilarity δ(g_i, g_j) for global database
// indices on demand. DSPMap only ever evaluates it within partitions and
// merge samples, which is the source of its scalability: the full n×n
// matrix is never materialized (Theorem 5.3's O(b(b+m')) memory).
type Dissim func(i, j int) float64

// MapConfig controls a DSPMap run.
type MapConfig struct {
	// Core configures the DSPM sub-runs (P is the final dimension count).
	Core Config
	// B is the partition size b. Must be >= 2.
	B int
	// SampleSize is n_o, the number of graphs sampled to build the two
	// center sets during partitioning. Zero means the default 20.
	SampleSize int
	// Seed drives the random choices (center sampling, merge sampling).
	Seed int64
	// RandomPartition replaces Algorithm 7's similarity-driven
	// partitioning with a uniformly random one — exposed for the ablation
	// bench that quantifies the value of grouping similar graphs.
	RandomPartition bool
}

// DSPMap runs Algorithm 5: partition the database into ⌈n/b⌉ parts of
// similar graphs (Algorithm 7), then recursively combine per-partition
// DSPM weight vectors (Algorithm 6). The result's C accumulates the
// sub-run weights; Selected is the final top-p dimension set.
func DSPMap(idx *vecspace.Index, dis Dissim, cfg MapConfig) (*Result, error) {
	return DSPMapContext(context.Background(), idx, dis, cfg)
}

// DSPMapContext is DSPMap with cancellation: ctx is checked between
// dissimilarity evaluations (the dominant cost) and between the recursive
// combine steps, and a cancelled run returns (nil, ctx.Err()).
func DSPMapContext(ctx context.Context, idx *vecspace.Index, dis Dissim, cfg MapConfig) (*Result, error) {
	if cfg.B < 2 {
		return nil, fmt.Errorf("core: DSPMap partition size B=%d, want >= 2", cfg.B)
	}
	if idx.N == 0 || idx.P == 0 {
		return nil, fmt.Errorf("core: empty problem (n=%d, m=%d)", idx.N, idx.P)
	}
	if cfg.Core.P <= 0 || cfg.Core.P > idx.P {
		return nil, fmt.Errorf("core: P=%d out of range (0, %d]", cfg.Core.P, idx.P)
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	d := &dspmap{ctx: ctx, idx: idx, dis: dis, cfg: cfg, rng: rng}
	all := make([]int, idx.N)
	for i := range all {
		all[i] = i
	}
	d.vectors = make([]*vecspace.BitVector, idx.N)
	for i := range d.vectors {
		d.vectors[i] = idx.Vector(i)
	}

	var parts [][]int
	if cfg.RandomPartition {
		parts = d.randomPartition(all)
	} else {
		parts = d.partition(all)
	}
	c := d.computeC(parts)
	if err := ctx.Err(); err != nil {
		// A cancelled run unwinds through computeC with zeroed partial
		// weights; discard them.
		return nil, err
	}

	return &Result{
		C:        c,
		Selected: TopWeights(c, cfg.Core.P),
	}, nil
}

type dspmap struct {
	ctx     context.Context
	idx     *vecspace.Index
	dis     Dissim
	cfg     MapConfig
	rng     *rand.Rand
	vectors []*vecspace.BitVector
}

// partition is Algorithm 7: recursively split ids into parts of at most b
// graphs, grouping graphs with similar binary vectors and balancing so
// every left subtree holds a multiple of b graphs.
func (d *dspmap) partition(ids []int) [][]int {
	b := d.cfg.B
	if len(ids) <= b {
		return [][]int{ids}
	}
	// Sample n_o graphs and split them into two center sets.
	no := d.cfg.SampleSize
	if no > len(ids) {
		no = len(ids)
	}
	if no < 2 {
		no = 2
	}
	perm := d.rng.Perm(len(ids))
	sample := make([]int, no)
	for i := 0; i < no; i++ {
		sample[i] = ids[perm[i]]
	}
	ol, or := d.splitCenters(sample)

	inSample := make(map[int]bool, no)
	for _, id := range sample {
		inSample[id] = true
	}
	left := append([]int(nil), ol...)
	right := append([]int(nil), or...)
	for _, id := range ids {
		if inSample[id] {
			continue
		}
		if d.centerDistance(id, ol) <= d.centerDistance(id, or) {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}

	// Balance: the left subtree must hold n_l = ⌊n_p/2⌋ × b graphs.
	np := (len(ids) + b - 1) / b
	nl := (np / 2) * b
	if len(left) > nl {
		d.moveFarthest(&left, &right, len(left)-nl, ol)
	} else if len(left) < nl {
		d.moveFarthest(&right, &left, nl-len(left), or)
	}

	out := d.partition(left)
	return append(out, d.partition(right)...)
}

// randomPartition shuffles ids and cuts them into ⌈n/b⌉ chunks — the
// ablation counterpart of partition.
func (d *dspmap) randomPartition(ids []int) [][]int {
	b := d.cfg.B
	shuffled := append([]int(nil), ids...)
	d.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	var out [][]int
	for len(shuffled) > 0 {
		end := b
		if end > len(shuffled) {
			end = len(shuffled)
		}
		out = append(out, shuffled[:end])
		shuffled = shuffled[end:]
	}
	return out
}

// splitCenters clusters the sampled graphs into two center sets by their
// binary vectors (two-means on the Hamming geometry).
func (d *dspmap) splitCenters(sample []int) (ol, or []int) {
	if len(sample) < 2 {
		return sample, nil
	}
	// Seed with the pair realizing the max distance within a scan budget,
	// then assign each sample to the closer seed.
	s0, s1 := sample[0], sample[1]
	bestD := -1.0
	for i := 0; i < len(sample); i++ {
		for j := i + 1; j < len(sample); j++ {
			dd := d.vectors[sample[i]].Distance(d.vectors[sample[j]])
			if dd > bestD {
				bestD, s0, s1 = dd, sample[i], sample[j]
			}
		}
	}
	for _, id := range sample {
		if d.vectors[id].Distance(d.vectors[s0]) <= d.vectors[id].Distance(d.vectors[s1]) {
			ol = append(ol, id)
		} else {
			or = append(or, id)
		}
	}
	if len(or) == 0 { // degenerate: all vectors identical
		or = append(or, ol[len(ol)-1])
		ol = ol[:len(ol)-1]
	}
	return ol, or
}

// centerDistance is the graph-center distance d(g_i, O) = mean distance
// from g_i to the members of O.
func (d *dspmap) centerDistance(id int, centers []int) float64 {
	if len(centers) == 0 {
		return 1
	}
	s := 0.0
	for _, c := range centers {
		s += d.vectors[id].Distance(d.vectors[c])
	}
	return s / float64(len(centers))
}

// moveFarthest moves k graphs with the largest distance to the source's
// center set from src to dst (the balancing step of Algorithm 7).
func (d *dspmap) moveFarthest(src, dst *[]int, k int, centers []int) {
	type scored struct {
		id int
		d  float64
	}
	sc := make([]scored, len(*src))
	for i, id := range *src {
		sc[i] = scored{id, d.centerDistance(id, centers)}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].d > sc[j].d })
	moved := make(map[int]bool, k)
	for i := 0; i < k && i < len(sc); i++ {
		moved[sc[i].id] = true
		*dst = append(*dst, sc[i].id)
	}
	keep := (*src)[:0]
	for _, id := range *src {
		if !moved[id] {
			keep = append(keep, id)
		}
	}
	*src = keep
}

// computeC is Algorithm 6: recursively compute the weight vector of the
// left and right halves of the partition list, run DSPM on an overlap
// sample bridging the halves, and sum the three vectors.
func (d *dspmap) computeC(parts [][]int) []float64 {
	if len(parts) == 1 {
		return d.runDSPM(parts[0])
	}
	mid := (len(parts) + 1) / 2
	cl := d.computeC(parts[:mid])
	cr := d.computeC(parts[mid:])

	// Overlap: b graphs sampled from one random part of each half.
	pl := parts[d.rng.Intn(mid)]
	pr := parts[mid+d.rng.Intn(len(parts)-mid)]
	pool := append(append([]int(nil), pl...), pr...)
	d.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > d.cfg.B {
		pool = pool[:d.cfg.B]
	}
	co := d.runDSPM(pool)

	c := make([]float64, d.idx.P)
	for r := range c {
		c[r] = cl[r] + cr[r] + co[r]
	}
	return c
}

// runDSPM solves the restricted problem on the given global graph ids,
// using only features with non-empty local support (F' in Algorithm 6),
// and scatters the local weights back into a global-length vector.
func (d *dspmap) runDSPM(ids []int) []float64 {
	c := make([]float64, d.idx.P)
	if len(ids) < 2 || d.ctx.Err() != nil {
		return c
	}
	pos := make(map[int]int, len(ids))
	for localI, id := range ids {
		pos[id] = localI
	}
	// Local feature set and inverted lists.
	var feats []int
	localIF := make([][]int, 0)
	for r := 0; r < d.idx.P; r++ {
		var lst []int
		for _, g := range d.idx.IF[r] {
			if li, ok := pos[g]; ok {
				lst = append(lst, li)
			}
		}
		if len(lst) > 0 {
			feats = append(feats, r)
			sort.Ints(lst)
			localIF = append(localIF, lst)
		}
	}
	if len(feats) == 0 {
		return c
	}
	local := &vecspace.Index{N: len(ids), P: len(feats), IF: localIF, IG: make([][]int, len(ids))}
	for lr, lst := range localIF {
		for _, li := range lst {
			local.IG[li] = append(local.IG[li], lr)
		}
	}
	for i := range local.IG {
		sort.Ints(local.IG[i])
	}
	delta := make([][]float64, len(ids))
	for i := range delta {
		delta[i] = make([]float64, len(ids))
	}
	for i := 0; i < len(ids); i++ {
		if d.ctx.Err() != nil {
			return c
		}
		for j := i + 1; j < len(ids); j++ {
			v := d.dis(ids[i], ids[j])
			delta[i][j] = v
			delta[j][i] = v
		}
	}
	p := d.cfg.Core.P
	if p > len(feats) {
		p = len(feats)
	}
	sub := d.cfg.Core
	sub.P = p
	res, err := DSPMContext(d.ctx, local, delta, sub)
	if err != nil {
		if d.ctx.Err() != nil {
			return c
		}
		// Restricted problems are non-empty by construction; an error here
		// is a programming bug, not a data condition.
		panic(fmt.Sprintf("core: restricted DSPM failed: %v", err))
	}
	for lr, r := range feats {
		c[r] += res.C[lr]
	}
	return c
}
