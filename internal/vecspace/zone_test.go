package vecspace

import (
	"math/rand"
	"testing"
)

// zoneRandVecs draws n vectors over p dimensions with per-vector density
// drawn independently, so zones get genuinely different ones ranges —
// the regime zone skipping exists for.
func zoneRandVecs(rng *rand.Rand, n, p int) []*BitVector {
	vecs := make([]*BitVector, n)
	for i := range vecs {
		v := NewBitVector(p)
		density := rng.Float64() * rng.Float64() // skew sparse
		for r := 0; r < p; r++ {
			if rng.Float64() < density {
				v.Set(r)
			}
		}
		vecs[i] = v
	}
	return vecs
}

// TestZoneLowerBoundIsSound: the floor LowerBound proves must never
// exceed the true Hamming distance of any vector in the zone — on
// random blocks, random queries, both widths, ragged tails included.
func TestZoneLowerBoundIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 30; round++ {
		n := 1 + rng.Intn(3*ZoneSpan)
		p := 1 + rng.Intn(200)
		width := 8 << rng.Intn(2)
		vecs := zoneRandVecs(rng, n, p)
		blk := PackWidth(vecs, p, width)
		z := blk.Zones()
		if z == nil || z.Zones() != (n+ZoneSpan-1)/ZoneSpan {
			t.Fatalf("round %d: %d zones for n=%d", round, z.Zones(), n)
		}
		for trial := 0; trial < 8; trial++ {
			q := zoneRandVecs(rng, 1, p)[0]
			qOnes, qw := q.Ones(), q.Words()
			for zi := 0; zi < z.Zones(); zi++ {
				bound := z.LowerBound(qOnes, qw, zi)
				lo, hi := zi*ZoneSpan, (zi+1)*ZoneSpan
				if hi > n {
					hi = n
				}
				for id := lo; id < hi; id++ {
					if d := q.HammingDistance(vecs[id]); d < bound {
						t.Fatalf("round %d zone %d: bound %d exceeds true distance %d of id %d (n=%d p=%d w=%d)",
							round, zi, bound, d, id, n, p, width)
					}
				}
			}
		}
	}
}

// TestZoneMapMaintainedByAppend: a zone map maintained incrementally
// through an Append chain must equal a from-scratch derivation over the
// same vectors — min, max, and summaries, including the zone the chain
// boundary falls inside.
func TestZoneMapMaintainedByAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		p := 1 + rng.Intn(150)
		total := 1 + rng.Intn(3*ZoneSpan)
		vecs := zoneRandVecs(rng, total, p)
		// Random chain: pack a prefix, then append random-size batches.
		cut := rng.Intn(total + 1)
		blk := PackWidth(vecs[:cut], p, 8<<rng.Intn(2))
		for cut < total {
			step := 1 + rng.Intn(total-cut)
			blk = blk.Append(vecs[cut : cut+step])
			cut += step
		}
		fresh := PackWidth(vecs, p, blk.Width())
		got, want := blk.Zones(), fresh.Zones()
		if got.Zones() != want.Zones() {
			t.Fatalf("round %d: chained %d zones, fresh %d", round, got.Zones(), want.Zones())
		}
		for zi := 0; zi < want.Zones(); zi++ {
			if got.MinOnes(zi) != want.MinOnes(zi) || got.MaxOnes(zi) != want.MaxOnes(zi) {
				t.Fatalf("round %d zone %d: chained [%d,%d], fresh [%d,%d]",
					round, zi, got.MinOnes(zi), got.MaxOnes(zi), want.MinOnes(zi), want.MaxOnes(zi))
			}
			gs, ws := got.Summary(zi), want.Summary(zi)
			for w := range ws {
				if gs[w] != ws[w] {
					t.Fatalf("round %d zone %d word %d: chained summary %x, fresh %x", round, zi, w, gs[w], ws[w])
				}
			}
		}
	}
}

// TestHammingGatherMatchesHammingID: the batched gather kernel must
// agree with the per-id scalar path on arbitrary id subsets, in
// arbitrary order, at both widths, with and without scratch reuse.
func TestHammingGatherMatchesHammingID(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var scratch []uint64
	for round := 0; round < 25; round++ {
		n := 1 + rng.Intn(400)
		p := 1 + rng.Intn(180)
		blk := PackWidth(zoneRandVecs(rng, n, p), p, 8<<rng.Intn(2))
		q := zoneRandVecs(rng, 1, p)[0]
		m := rng.Intn(n + 1)
		ids := make([]int32, m)
		for i := range ids {
			ids[i] = int32(rng.Intn(n))
		}
		out := make([]int32, m)
		scratch = blk.HammingGather(q, ids, scratch, out)
		for i, id := range ids {
			if want := blk.HammingID(q, int(id)); int(out[i]) != want {
				t.Fatalf("round %d: gather[%d] (id %d) = %d, HammingID = %d (n=%d p=%d w=%d)",
					round, i, id, out[i], want, n, p, blk.Width())
			}
		}
	}
}
