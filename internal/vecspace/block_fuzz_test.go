package vecspace

import "testing"

// FuzzBlockRoundTrip fuzzes the SoA pack/unpack round trip: any vector
// set, packed at either width and split at any point into a
// Pack + Append chain, must unpack to bit-identical vectors, leave the
// pre-Append block untouched, and produce kernel counts equal to the
// scalar HammingDistance. The seed corpus pins the same edge shapes
// FuzzOpenIndex leans on: zero-dimension and word-boundary vectors,
// empty sets, and ns straddling a tile edge.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0), false, uint8(0))          // p=0, n=0
	f.Add([]byte{0xff, 0x0f}, uint16(0), true, uint8(3)) // p=0, nonzero n
	f.Add(make([]byte, 17*8), uint16(63), false, uint8(16))
	f.Add(make([]byte, 17*16), uint16(64), true, uint8(15))
	f.Add(make([]byte, 16*9), uint16(65), false, uint8(8))
	f.Add(make([]byte, 15*24), uint16(192), true, uint8(7)) // max-dimension seed
	f.Add([]byte{0xaa, 0x55, 0xff, 0x00, 0x01}, uint16(3), false, uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, pRaw uint16, wide bool, splitRaw uint8) {
		p := int(pRaw) % 193
		width := 8
		if wide {
			width = 16
		}
		// Decode a vector set from the byte stream: p bits per vector,
		// capped so huge inputs stay fast. p == 0 still admits vectors —
		// the zero-width edge the issue calls out.
		var n int
		if p == 0 {
			n = len(data) % 40
		} else {
			n = (len(data) * 8) / p
			if n > 64 {
				n = 64
			}
		}
		vecs := make([]*BitVector, n)
		for i := range vecs {
			v := NewBitVector(p)
			for r := 0; r < p; r++ {
				bit := i*p + r
				if data[bit/8]&(1<<(uint(bit)%8)) != 0 {
					v.Set(r)
				}
			}
			vecs[i] = v
		}

		whole := PackWidth(vecs, p, width)
		if whole.N() != n || whole.P() != p {
			t.Fatalf("pack: N=%d P=%d, want %d %d", whole.N(), whole.P(), n, p)
		}
		split := 0
		if n > 0 {
			split = int(splitRaw) % (n + 1)
		}
		head := PackWidth(vecs[:split], p, width)
		headBefore := head.Unpack()
		chained := head.Append(vecs[split:])

		for label, b := range map[string]*Block{"whole": whole, "chained": chained} {
			got := b.Unpack()
			if len(got) != n {
				t.Fatalf("%s: unpacked %d vectors, want %d", label, len(got), n)
			}
			for i, v := range got {
				if v.Len() != p {
					t.Fatalf("%s: vector %d dimension %d, want %d", label, i, v.Len(), p)
				}
				gw, ww := v.Words(), vecs[i].Words()
				for w := range ww {
					if gw[w] != ww[w] {
						t.Fatalf("%s: vector %d word %d = %#x, want %#x", label, i, w, gw[w], ww[w])
					}
				}
			}
		}
		// Append must not have disturbed the receiver.
		for i, v := range head.Unpack() {
			gw, ww := v.Words(), headBefore[i].Words()
			for w := range ww {
				if gw[w] != ww[w] {
					t.Fatalf("receiver mutated by Append: vector %d word %d", i, w)
				}
			}
		}
		// Kernel counts against the scalar reference, query = last vector
		// (or the zero vector when empty).
		q := NewBitVector(p)
		if n > 0 {
			q = vecs[n-1]
		}
		out := make([]int32, n)
		whole.HammingInto(q, out)
		for i, v := range vecs {
			if want := int32(q.HammingDistance(v)); out[i] != want {
				t.Fatalf("kernel: hamming[%d] = %d, want %d", i, out[i], want)
			}
		}
	})
}
