package vecspace

import "math/bits"

// ZoneSpan is the number of consecutive ids a zone summarizes. It is a
// multiple of every tile width Pack admits (8 and 16), so a zone is
// always a whole number of tiles and a zone-at-a-time scan can hand the
// kernel tile-aligned ranges. 256 ids keeps the metadata tiny (two
// int32s plus one bitmap per zone) while each skipped zone saves 256
// XOR+popcount rows.
const ZoneSpan = 256

// ZoneMap is per-zone skip metadata derived from the packed vectors: for
// each run of ZoneSpan consecutive ids, the minimum and maximum ones
// count of its vectors and the bitwise OR of their words (the
// dimension-presence summary). From those three facts LowerBound proves
// a floor on the Hamming distance between a query and *every* vector in
// the zone, so a bounded top-k scan whose current worst is already at or
// below the floor can skip the zone without touching a tile.
//
// The map is derived, never authoritative: it can always be rebuilt from
// the tiles (deriveZones), and the on-disk segment format stores it only
// so a mapped open does not have to. Like the Block it annotates, a
// ZoneMap is immutable to readers.
type ZoneMap struct {
	words int     // words per summary = (p+63)/64
	min   []int32 // per-zone minimum ones count
	max   []int32 // per-zone maximum ones count
	sums  []uint64
}

// NewZoneMap wraps already-derived zone metadata (the segment reader's
// path — the slices may alias a mapped file and are never written).
// len(min) and len(max) must agree and len(sums) must be zones*words.
func NewZoneMap(words int, min, max []int32, sums []uint64) *ZoneMap {
	if len(min) != len(max) || len(sums) != len(min)*words {
		panic("vecspace: inconsistent zone map lengths")
	}
	return &ZoneMap{words: words, min: min, max: max, sums: sums}
}

// Zones returns the number of zones covered.
func (z *ZoneMap) Zones() int {
	if z == nil {
		return 0
	}
	return len(z.min)
}

// MinOnes returns zone zi's minimum ones count.
func (z *ZoneMap) MinOnes(zi int) int { return int(z.min[zi]) }

// MaxOnes returns zone zi's maximum ones count.
func (z *ZoneMap) MaxOnes(zi int) int { return int(z.max[zi]) }

// Summary returns zone zi's dimension-presence bitmap (read-only).
func (z *ZoneMap) Summary(zi int) []uint64 {
	return z.sums[zi*z.words : (zi+1)*z.words]
}

// LowerBound returns a proven floor on the Hamming distance between the
// query (qOnes set bits, words qw) and every vector in zone zi.
//
// For any vector g in the zone, hamming(q,g) = |q| + |g| − 2|q∧g|, and
// |q∧g| <= min(|q|, |g|, c) where c = |q ∧ summary| because g's set bits
// are a subset of the zone summary. So hamming >= f(|g|) with
// f(o) = |q| + o − 2·min(|q|, o, c), a function decreasing up to
// m = min(|q|, c) and increasing after it; its minimum over the zone's
// ones range [minOnes, maxOnes] is attained at o* = clamp(m, minOnes,
// maxOnes). The bound is exact in the sense that some bit pattern
// consistent with the metadata attains it.
func (z *ZoneMap) LowerBound(qOnes int, qw []uint64, zi int) int {
	c := 0
	sum := z.sums[zi*z.words:]
	for w, q := range qw {
		c += bits.OnesCount64(q & sum[w])
	}
	o := qOnes
	if c < o {
		o = c
	}
	if mn := int(z.min[zi]); o < mn {
		o = mn
	}
	if mx := int(z.max[zi]); o > mx {
		o = mx
	}
	t := qOnes
	if o < t {
		t = o
	}
	if c < t {
		t = c
	}
	return qOnes + o - 2*t
}

// deriveZones computes the ZoneMap of b's tiles. Zones entirely below
// prevN ids are copied from prev (they cannot have changed — ids only
// append); everything from the first zone prevN falls inside is
// recomputed from the tiles, so an Append pays O(appended + ZoneSpan),
// not O(n). prev may be nil (full derivation).
func deriveZones(b *Block, prev *ZoneMap, prevN int) *ZoneMap {
	nz := (b.n + ZoneSpan - 1) / ZoneSpan
	z := &ZoneMap{
		words: b.words,
		min:   make([]int32, nz),
		max:   make([]int32, nz),
		sums:  make([]uint64, nz*b.words),
	}
	shared := 0
	if prev != nil {
		shared = prevN / ZoneSpan // full zones of the previous block
		if shared > nz {
			shared = nz
		}
		copy(z.min, prev.min[:shared])
		copy(z.max, prev.max[:shared])
		copy(z.sums, prev.sums[:shared*b.words])
	}
	for zi := shared; zi < nz; zi++ {
		lo, hi := zi*ZoneSpan, (zi+1)*ZoneSpan
		if hi > b.n {
			hi = b.n
		}
		sum := z.sums[zi*b.words : (zi+1)*b.words]
		mn, mx := int32(-1), int32(0)
		for id := lo; id < hi; id++ {
			tile := b.tiles[id/b.width]
			j := id % b.width
			o := int32(0)
			for w := 0; w < b.words; w++ {
				word := tile[w*b.width+j]
				sum[w] |= word
				o += int32(bits.OnesCount64(word))
			}
			if mn < 0 || o < mn {
				mn = o
			}
			if o > mx {
				mx = o
			}
		}
		if mn < 0 {
			mn = 0
		}
		z.min[zi], z.max[zi] = mn, mx
	}
	return z
}
