package vecspace

// Property test for Theorem 4.3: if d(y_q, y_g) = β in the feature space
// F, then for any subgraph q' ⊆ q, β − sqrt(t/p) ≤ d(y_q', y_g) ≤
// β + sqrt(t/p) where t = |F(q)| − |F(q')| and p = |F|. The proof relies
// on F(q') ⊆ F(q), which holds because feature containment is monotone
// under subgraphs — exercised here with real VF2 containment tests.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func randomGraphT(r *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	g := &graph.Graph{}
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(r.Intn(v), v, graph.Label(r.Intn(labels)))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, graph.Label(r.Intn(labels)))
		}
	}
	return g
}

func TestTheorem43(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// A feature set of random small patterns.
		p := 5 + r.Intn(15)
		features := make([]*graph.Graph, p)
		for i := range features {
			features[i] = randomGraphT(r, 2+r.Intn(3), r.Intn(2), 2)
		}
		m := NewMapper(features)

		q := randomGraphT(r, 5+r.Intn(4), r.Intn(4), 2)
		g := randomGraphT(r, 5+r.Intn(4), r.Intn(4), 2)
		// q' = induced subgraph of q.
		var vs []int
		for v := 0; v < q.N(); v++ {
			if r.Intn(3) > 0 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			vs = []int{0}
		}
		qsub, _ := q.InducedSubgraph(vs)

		yq, yg, yqs := m.Map(q), m.Map(g), m.Map(qsub)
		// Monotonicity: F(q') ⊆ F(q).
		for r2 := 0; r2 < p; r2++ {
			if yqs.Get(r2) && !yq.Get(r2) {
				return false
			}
		}
		beta := yq.Distance(yg)
		got := yqs.Distance(yg)
		tt := yq.Ones() - yqs.Ones()
		bound := math.Sqrt(float64(tt) / float64(p))
		const tol = 1e-12
		return got >= beta-bound-tol && got <= beta+bound+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
