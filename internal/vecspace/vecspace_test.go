package vecspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/gspan"
)

func randomVec(r *rand.Rand, p int) *BitVector {
	v := NewBitVector(p)
	for i := 0; i < p; i++ {
		if r.Intn(2) == 0 {
			v.Set(i)
		}
	}
	return v
}

func TestBitVectorBasics(t *testing.T) {
	v := NewBitVector(130)
	if v.Len() != 130 || v.Ones() != 0 {
		t.Fatalf("fresh vector wrong")
	}
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if !v.Get(0) || !v.Get(64) || !v.Get(129) || v.Get(1) {
		t.Errorf("Get/Set wrong across word boundaries")
	}
	if v.Ones() != 3 {
		t.Errorf("Ones = %d, want 3", v.Ones())
	}
}

func TestDistanceMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(200)
		a, b, c := randomVec(r, p), randomVec(r, p), randomVec(r, p)
		dab, dba := a.Distance(b), b.Distance(a)
		if dab != dba || dab < 0 || dab > 1 {
			return false
		}
		if a.Distance(a) != 0 {
			return false
		}
		// Triangle inequality.
		return a.Distance(c) <= dab+b.Distance(c)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistanceFormula(t *testing.T) {
	// d = sqrt(hamming/p).
	a := NewBitVector(4)
	b := NewBitVector(4)
	a.Set(0)
	a.Set(1)
	b.Set(1)
	b.Set(2)
	want := math.Sqrt(2.0 / 4.0)
	if got := a.Distance(b); math.Abs(got-want) > 1e-12 {
		t.Errorf("Distance = %v, want %v", got, want)
	}
	if NewBitVector(0).Distance(NewBitVector(0)) != 0 {
		t.Errorf("zero-dim distance must be 0")
	}
}

func TestHammingAndIntersection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(150)
		a, b := randomVec(r, p), randomVec(r, p)
		h, inter := 0, 0
		for i := 0; i < p; i++ {
			if a.Get(i) != b.Get(i) {
				h++
			}
			if a.Get(i) && b.Get(i) {
				inter++
			}
		}
		return a.HammingDistance(b) == h && a.IntersectionSize(b) == inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMapperAgainstDirectContainment(t *testing.T) {
	// Features: single edge (C-C), path (C-C-C); graphs: path and star.
	cc := graph.New(2)
	cc.MustAddEdge(0, 1, 0)
	ccc := graph.New(3)
	ccc.MustAddEdge(0, 1, 0)
	ccc.MustAddEdge(1, 2, 0)
	big := graph.New(4) // star: contains both
	big.MustAddEdge(0, 1, 0)
	big.MustAddEdge(0, 2, 0)
	big.MustAddEdge(0, 3, 0)
	single := graph.New(2)
	single.MustAddEdge(0, 1, 0)

	m := NewMapper([]*graph.Graph{cc, ccc})
	vb := m.Map(big)
	if !vb.Get(0) || !vb.Get(1) {
		t.Errorf("star should contain both features")
	}
	vs := m.Map(single)
	if !vs.Get(0) || vs.Get(1) {
		t.Errorf("single edge should contain only feature 0")
	}
	all := m.MapAll([]*graph.Graph{big, single})
	if all[0].Ones() != 2 || all[1].Ones() != 1 {
		t.Errorf("MapAll inconsistent with Map")
	}
	if m.Dim() != 2 || len(m.Features()) != 2 {
		t.Errorf("Dim/Features wrong")
	}
}

func TestBuildIndexConsistency(t *testing.T) {
	feats := []*gspan.Feature{
		{Support: []int{0, 2}},
		{Support: []int{1}},
		{Support: []int{0, 1, 2}},
	}
	idx := BuildIndex(3, feats)
	if idx.N != 3 || idx.P != 3 {
		t.Fatalf("index shape wrong")
	}
	wantIG := [][]int{{0, 2}, {1, 2}, {0, 2}}
	for i, w := range wantIG {
		if len(idx.IG[i]) != len(w) {
			t.Fatalf("IG[%d] = %v, want %v", i, idx.IG[i], w)
		}
		for k := range w {
			if idx.IG[i][k] != w[k] {
				t.Fatalf("IG[%d] = %v, want %v", i, idx.IG[i], w)
			}
		}
	}
	v := idx.Vector(1)
	if v.Get(0) || !v.Get(1) || !v.Get(2) {
		t.Errorf("Vector(1) wrong")
	}
}

func TestBuildIndexFromVectorsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, p := 2+r.Intn(10), 1+r.Intn(12)
		vs := make([]*BitVector, n)
		for i := range vs {
			vs[i] = randomVec(r, p)
		}
		idx := BuildIndexFromVectors(vs)
		for i := range vs {
			got := idx.Vector(i)
			for r2 := 0; r2 < p; r2++ {
				if got.Get(r2) != vs[i].Get(r2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSymmetricDifferenceFeatures(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, p := 2+r.Intn(8), 1+r.Intn(20)
		vs := make([]*BitVector, n)
		for i := range vs {
			vs[i] = randomVec(r, p)
		}
		idx := BuildIndexFromVectors(vs)
		i, j := r.Intn(n), r.Intn(n)
		got := map[int]bool{}
		idx.SymmetricDifferenceFeatures(i, j, func(r int) { got[r] = true })
		for r2 := 0; r2 < p; r2++ {
			want := vs[i].Get(r2) != vs[j].Get(r2)
			if got[r2] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJaccardCorrelation(t *testing.T) {
	feats := []*gspan.Feature{
		{Support: []int{0, 1, 2}},
		{Support: []int{1, 2, 3}},
		{Support: []int{4}},
		{Support: nil},
	}
	idx := BuildIndex(5, feats)
	if got, want := idx.JaccardCorrelation(0, 1), 2.0/4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard(0,1) = %v, want %v", got, want)
	}
	if got := idx.JaccardCorrelation(0, 2); got != 0 {
		t.Errorf("disjoint supports must have 0 correlation, got %v", got)
	}
	if got := idx.JaccardCorrelation(3, 3); got != 0 {
		t.Errorf("empty supports must have 0 correlation, got %v", got)
	}
	if got := idx.JaccardCorrelation(0, 0); got != 1 {
		t.Errorf("self correlation must be 1, got %v", got)
	}
	// Total over {0,1,2}: J(0,1)+J(0,2)+J(1,2) = 0.5.
	if got := idx.TotalCorrelation([]int{0, 1, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TotalCorrelation = %v, want 0.5", got)
	}
}

func TestSubindex(t *testing.T) {
	feats := []*gspan.Feature{
		{Support: []int{0, 2}},
		{Support: []int{1}},
		{Support: []int{0, 1, 2}},
	}
	idx := BuildIndex(3, feats)
	sub := idx.Subindex([]int{2, 0})
	if sub.P != 2 || sub.N != 3 {
		t.Fatalf("subindex shape wrong")
	}
	// Renumbered: feature 0 of sub = old 2, feature 1 = old 0.
	if len(sub.IF[0]) != 3 || len(sub.IF[1]) != 2 {
		t.Errorf("subindex IF wrong: %v", sub.IF)
	}
	v := sub.Vector(1)
	if !v.Get(0) || v.Get(1) {
		t.Errorf("subindex Vector(1) wrong")
	}
}
