package vecspace

import (
	"math/rand"
	"strconv"
	"testing"
)

// BenchmarkKernelBatch isolates the scan kernel from the engines: one
// query's Hamming counts against a packed 4096-vector database, scalar
// one-vector-at-a-time (width=1, the pre-SoA shape) versus the SoA
// tile kernel at widths 8 and 16. The width-16 over width-1 ratio is
// the raw layout win BENCH_pr9.json records; the engine-level effect
// shows up in BenchmarkSearchSparse/*/flat.
func BenchmarkKernelBatch(b *testing.B) {
	const n, p = 4096, 128
	rng := rand.New(rand.NewSource(7))
	vecs := randVectors(rng, n, p)
	q := randVectors(rng, 1, p)[0]
	out := make([]int32, n)

	b.Run("width=1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for id, v := range vecs {
				out[id] = int32(q.HammingDistance(v))
			}
		}
	})
	for _, width := range []int{8, 16} {
		blk := PackWidth(vecs, p, width)
		b.Run("width="+strconv.Itoa(width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				blk.HammingInto(q, out)
			}
		})
	}
}
