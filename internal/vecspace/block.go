package vecspace

import "math/bits"

// Block is the structure-of-arrays form of a database of binary feature
// vectors — the layout the hot mapped scan streams instead of chasing
// one *BitVector pointer per candidate.
//
// Vectors are grouped into tiles of Width consecutive ids (8 or 16;
// see Pack). Inside a tile the packed words are word-major:
//
//	tile[w*Width + j]  =  word w of vector (t*Width + j)
//
// so one query word XORs against Width contiguous graph words per inner
// iteration, and math/bits.OnesCount64 (the POPCNT instruction) counts
// each lane. The last tile is zero-padded past N; kernels clip their
// output to N, so the padding lanes are never observed.
//
// A Block is immutable to readers and shares the same copy-on-write
// lifecycle as posting.Index: Append returns an extended Block reusing
// every full tile of the receiver (only the trailing partial tile is
// copied), Appends must be serialized by the caller and applied only to
// the newest Block of a chain, and removals are not Block events —
// tombstoned ids keep their lanes and are filtered by the scan's
// liveness predicate.
type Block struct {
	n, p  int
	words int // (p+63)/64
	width int // vectors per tile: 8 or 16
	tiles [][]uint64
	// zones is the per-ZoneSpan skip metadata (ones-count min/max plus a
	// dimension-presence bitmap) the bounded top-k scan consults before
	// touching a zone's tiles. Derived from the tiles — Pack and Append
	// maintain it, BlockFromWords may adopt a precomputed one from a
	// segment trailer — and never part of any durable record.
	zones *ZoneMap
}

// DefaultBlockWidth is the tile width Pack uses: 16 graphs per inner
// iteration. Measured against width 8 the wider tile amortizes the
// per-word loop overhead better on every tested shape while staying
// inside one cache line pair per word row (16 lanes × 8 bytes = 128 B);
// see BenchmarkKernelBatch.
const DefaultBlockWidth = 16

// Pack builds the SoA block of vecs, all of dimension p, at the default
// tile width.
func Pack(vecs []*BitVector, p int) *Block {
	return PackWidth(vecs, p, DefaultBlockWidth)
}

// PackWidth is Pack with an explicit tile width, which must be 8 or 16.
// Every vector must have dimension p; the block is usable (and
// Append-able) even when vecs is empty.
func PackWidth(vecs []*BitVector, p, width int) *Block {
	if width != 8 && width != 16 {
		panic("vecspace: block width must be 8 or 16")
	}
	b := &Block{p: p, words: (p + 63) / 64, width: width}
	b.zones = deriveZones(b, nil, 0)
	return b.Append(vecs)
}

// BlockFromWords builds a Block whose tiles are subslices of data —
// zero-copy adoption of an on-disk tile section (internal/segment maps a
// checkpoint and hands the words straight to the kernel). data holds
// ceil(n/width) tiles of words·width uint64s each, in exactly the layout
// Pack produces, and must never be written afterwards: Append already
// treats full tiles as shared/immutable, and the trailing partial tile
// (the only one Append would touch) is copied to the heap before any
// lane is filled. zones may be nil, in which case the map is derived
// from the tiles.
func BlockFromWords(n, p, width int, data []uint64, zones *ZoneMap) *Block {
	if width != 8 && width != 16 {
		panic("vecspace: block width must be 8 or 16")
	}
	words := (p + 63) / 64
	stride := words * width
	nt := (n + width - 1) / width
	if len(data) != nt*stride {
		panic("vecspace: tile data length mismatch")
	}
	b := &Block{n: n, p: p, words: words, width: width, tiles: make([][]uint64, nt)}
	for t := 0; t < nt; t++ {
		// Cap-clipped so an append can never scribble past a tile into
		// the next one (mapped tiles are read-only).
		b.tiles[t] = data[t*stride : (t+1)*stride : (t+1)*stride]
	}
	if zones == nil {
		zones = deriveZones(b, nil, 0)
	}
	b.zones = zones
	return b
}

// N returns the number of vectors packed.
func (b *Block) N() int { return b.n }

// P returns the dimension p every packed vector has.
func (b *Block) P() int { return b.p }

// Width returns the tile width (vectors per inner kernel iteration).
func (b *Block) Width() int { return b.width }

// Words returns the number of 64-bit words each packed vector spans.
func (b *Block) Words() int { return b.words }

// Tiles returns the number of tiles.
func (b *Block) Tiles() int { return len(b.tiles) }

// Tile returns tile t's packed words — read-only, for serialization.
func (b *Block) Tile(t int) []uint64 { return b.tiles[t] }

// Zones returns the block's zone map (nil only on a WithoutZones copy).
func (b *Block) Zones() *ZoneMap { return b.zones }

// WithoutZones returns a view of b with no zone map, so benchmarks can
// measure the scan with data skipping ablated. The tiles are shared.
func (b *Block) WithoutZones() *Block {
	c := *b
	c.zones = nil
	return &c
}

// Append returns a Block extended with vecs as ids [N, N+len(vecs)).
// Full tiles of the receiver are shared, the trailing partial tile (if
// any) is copied before being filled, so the receiver stays valid for
// concurrent readers. Callers must serialize Appends and always append
// to the newest Block of a chain.
func (b *Block) Append(vecs []*BitVector) *Block {
	if len(vecs) == 0 {
		return b
	}
	next := &Block{
		n:     b.n + len(vecs),
		p:     b.p,
		words: b.words,
		width: b.width,
		tiles: append([][]uint64(nil), b.tiles...),
	}
	// Re-copy the trailing partial tile: its free lanes are about to be
	// written, and the receiver's readers must never observe that.
	if rem := b.n % b.width; rem != 0 {
		last := len(next.tiles) - 1
		next.tiles[last] = append([]uint64(nil), next.tiles[last]...)
	}
	for i, v := range vecs {
		id := b.n + i
		t, j := id/b.width, id%b.width
		if t == len(next.tiles) {
			next.tiles = append(next.tiles, make([]uint64, b.words*b.width))
		}
		tile := next.tiles[t]
		for w, word := range v.bits {
			tile[w*b.width+j] = word
		}
	}
	// Zone metadata is maintained incrementally like the tiles: zones
	// entirely below the old N are shared facts, only the trailing
	// partial zone and the new ids' zones are recomputed.
	next.zones = deriveZones(next, b.zones, b.n)
	return next
}

// Vector unpacks vector id back into its AoS form — the inverse of Pack
// for one id.
func (b *Block) Vector(id int) *BitVector {
	v := NewBitVector(b.p)
	tile := b.tiles[id/b.width]
	j := id % b.width
	for w := range v.bits {
		v.bits[w] = tile[w*b.width+j]
	}
	return v
}

// Unpack rebuilds the full AoS vector slice — Pack's inverse, used by
// tests to prove the round trip is a fixed point.
func (b *Block) Unpack() []*BitVector {
	out := make([]*BitVector, b.n)
	for i := range out {
		out[i] = b.Vector(i)
	}
	return out
}

// HammingID returns the Hamming distance between q and packed vector id
// — the gather form of the kernel, used to score the posting planner's
// matched candidates from the same storage the flat scan streams.
func (b *Block) HammingID(q *BitVector, id int) int {
	tile := b.tiles[id/b.width]
	j := id % b.width
	c := 0
	for w, qw := range q.bits {
		c += bits.OnesCount64(qw ^ tile[w*b.width+j])
	}
	return c
}

// HammingInto writes the Hamming distance between q and every packed
// vector into out[0:N]. q must have dimension P and out at least N
// entries. Equivalent to calling q.HammingDistance per vector —
// bit-identical counts — but streaming word-major: one query word
// against Width contiguous lanes per inner iteration.
func (b *Block) HammingInto(q *BitVector, out []int32) {
	b.HammingSlice(q, 0, b.n, out)
}

// HammingSlice is HammingInto restricted to ids [lo, hi), writing
// out[lo:hi]. lo must be tile-aligned (lo % Width == 0); hi is clamped
// to N. It exists so a long scan can interleave cancellation checks
// between chunks without giving up the batched inner loop.
func (b *Block) HammingSlice(q *BitVector, lo, hi int, out []int32) {
	if lo%b.width != 0 {
		panic("vecspace: HammingSlice lo must be tile-aligned")
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return
	}
	switch b.width {
	case 16:
		b.hamming16(q.bits, lo, hi, out)
	default:
		b.hamming8(q.bits, lo, hi, out)
	}
}

// hamming16 is the width-16 kernel: per tile, accumulate each query
// word against 16 contiguous lanes. The array-pointer conversion pins
// the row length so the inner loop runs without bounds checks.
func (b *Block) hamming16(qw []uint64, lo, hi int, out []int32) {
	for base := lo; base < hi; base += 16 {
		tile := b.tiles[base/16]
		var acc [16]int32
		for w, q := range qw {
			row := (*[16]uint64)(tile[w*16:])
			for j := 0; j < 16; j++ {
				acc[j] += int32(bits.OnesCount64(q ^ row[j]))
			}
		}
		n := hi - base
		if n > 16 {
			n = 16
		}
		copy(out[base:base+n], acc[:n])
	}
}

// HammingGather computes the Hamming distance between q and each of the
// listed packed vectors, writing out[i] for ids[i] — the batched form of
// per-id HammingID calls for the pruned scan's matched-candidate lists.
// Candidate rows are gathered Width at a time into the contiguous
// scratch tile and then run through the same bounds-check-free inner
// loop as the flat kernel, so a long candidate list pays the gather
// (pure copies) instead of Width separate strided walks with per-access
// bounds checks. Counts are bit-identical to HammingID's.
//
// scratch is the gather tile; if its capacity is below Words()*Width()
// a fresh one is allocated. The (possibly grown) scratch is returned so
// callers can pool it.
func (b *Block) HammingGather(q *BitVector, ids []int32, scratch []uint64, out []int32) []uint64 {
	stride := b.words * b.width
	if cap(scratch) < stride {
		scratch = make([]uint64, stride)
	}
	g := scratch[:stride]
	for base := 0; base < len(ids); base += b.width {
		m := len(ids) - base
		if m > b.width {
			m = b.width
		}
		for j := 0; j < m; j++ {
			id := int(ids[base+j])
			tile := b.tiles[id/b.width]
			col := id % b.width
			for w := 0; w < b.words; w++ {
				g[w*b.width+j] = tile[w*b.width+col]
			}
		}
		switch b.width {
		case 16:
			var acc [16]int32
			for w, qw := range q.bits {
				row := (*[16]uint64)(g[w*16:])
				for j := 0; j < 16; j++ {
					acc[j] += int32(bits.OnesCount64(qw ^ row[j]))
				}
			}
			copy(out[base:base+m], acc[:m])
		default:
			var acc [8]int32
			for w, qw := range q.bits {
				row := (*[8]uint64)(g[w*8:])
				for j := 0; j < 8; j++ {
					acc[j] += int32(bits.OnesCount64(qw ^ row[j]))
				}
			}
			copy(out[base:base+m], acc[:m])
		}
	}
	return scratch
}

// hamming8 is the width-8 kernel, identical in shape to hamming16.
func (b *Block) hamming8(qw []uint64, lo, hi int, out []int32) {
	for base := lo; base < hi; base += 8 {
		tile := b.tiles[base/8]
		var acc [8]int32
		for w, q := range qw {
			row := (*[8]uint64)(tile[w*8:])
			for j := 0; j < 8; j++ {
				acc[j] += int32(bits.OnesCount64(q ^ row[j]))
			}
		}
		n := hi - base
		if n > 8 {
			n = 8
		}
		copy(out[base:base+n], acc[:n])
	}
}
