package vecspace

import (
	"math/rand"
	"testing"
)

func randVectors(rng *rand.Rand, n, p int) []*BitVector {
	vs := make([]*BitVector, n)
	for i := range vs {
		v := NewBitVector(p)
		for r := 0; r < p; r++ {
			if rng.Intn(3) == 0 {
				v.Set(r)
			}
		}
		vs[i] = v
	}
	return vs
}

func assertSameVectors(t *testing.T, label string, got, want []*BitVector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vectors, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Len() != want[i].Len() {
			t.Fatalf("%s: vector %d dimension %d, want %d", label, i, got[i].Len(), want[i].Len())
		}
		gw, ww := got[i].Words(), want[i].Words()
		for w := range ww {
			if gw[w] != ww[w] {
				t.Fatalf("%s: vector %d word %d = %#x, want %#x", label, i, w, gw[w], ww[w])
			}
		}
	}
}

// TestBlockPackUnpackRoundTrip drives Pack/Unpack through the boundary
// shapes: n on both sides of every tile edge, p on both sides of every
// word edge, both widths.
func TestBlockPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{8, 16} {
		for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 33, 100} {
			for _, p := range []int{0, 1, 63, 64, 65, 128, 200} {
				vecs := randVectors(rng, n, p)
				b := PackWidth(vecs, p, width)
				if b.N() != n || b.P() != p || b.Width() != width {
					t.Fatalf("PackWidth(n=%d,p=%d,w=%d): N=%d P=%d Width=%d",
						n, p, width, b.N(), b.P(), b.Width())
				}
				assertSameVectors(t, "unpack", b.Unpack(), vecs)
				for id := 0; id < n; id++ {
					if got, want := b.Vector(id).Words(), vecs[id].Words(); len(got) > 0 && &got[0] == &want[0] {
						t.Fatalf("Vector(%d) aliases the packed input", id)
					}
				}
			}
		}
	}
}

// TestBlockAppendCopyOnWrite proves the Append contract the snapshot
// lifecycle depends on: the appended block equals a from-scratch pack
// of the full set, the receiver is untouched (readers of the old
// snapshot keep seeing exactly the old vectors), and full tiles are
// shared, not copied.
func TestBlockAppendCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const p = 130
	for _, width := range []int{8, 16} {
		for _, split := range []int{0, 1, width - 1, width, width + 3, 3 * width} {
			all := randVectors(rng, split+2*width+5, p)
			old := PackWidth(all[:split], p, width)
			oldSnapshot := old.Unpack()
			next := old.Append(all[split:])
			assertSameVectors(t, "appended", next.Unpack(), all)
			assertSameVectors(t, "receiver after Append", old.Unpack(), oldSnapshot)
			// Full tiles of the receiver must be shared by reference.
			for tidx := 0; tidx < split/width; tidx++ {
				if &old.tiles[tidx][0] != &next.tiles[tidx][0] {
					t.Fatalf("w=%d split=%d: full tile %d was copied, not shared", width, split, tidx)
				}
			}
			// The trailing partial tile must NOT be shared: Append writes
			// its free lanes.
			if rem := split % width; rem != 0 {
				tidx := split / width
				if &old.tiles[tidx][0] == &next.tiles[tidx][0] {
					t.Fatalf("w=%d split=%d: partial tile %d is shared with the receiver", width, split, tidx)
				}
			}
		}
	}
	// Appending nothing returns the receiver itself.
	b := Pack(randVectors(rng, 10, p), p)
	if b.Append(nil) != b {
		t.Fatal("Append(nil) did not return the receiver")
	}
}

// TestBlockHammingMatchesScalar checks the kernels (both widths, the
// gather form, and tile-aligned slices) against the scalar
// HammingDistance on ragged shapes.
func TestBlockHammingMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, width := range []int{8, 16} {
		for _, n := range []int{0, 1, width - 1, width, width + 1, 3*width + 5} {
			for _, p := range []int{0, 1, 64, 65, 190} {
				vecs := randVectors(rng, n, p)
				q := randVectors(rng, 1, p)[0]
				b := PackWidth(vecs, p, width)
				out := make([]int32, n)
				b.HammingInto(q, out)
				for id, v := range vecs {
					want := int32(q.HammingDistance(v))
					if out[id] != want {
						t.Fatalf("w=%d n=%d p=%d: HammingInto[%d] = %d, want %d", width, n, p, id, out[id], want)
					}
					if got := b.HammingID(q, id); int32(got) != want {
						t.Fatalf("w=%d n=%d p=%d: HammingID(%d) = %d, want %d", width, n, p, id, got, want)
					}
				}
				// Chunked slices must agree with the one-shot scan,
				// including a clamped over-length hi.
				chunked := make([]int32, n)
				for lo := 0; lo < n; lo += width {
					b.HammingSlice(q, lo, lo+width, chunked)
				}
				for id := range out {
					if chunked[id] != out[id] {
						t.Fatalf("w=%d n=%d p=%d: chunked[%d] = %d, want %d", width, n, p, id, chunked[id], out[id])
					}
				}
			}
		}
	}
}

func TestBlockPanics(t *testing.T) {
	assertPanics := func(label string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", label)
			}
		}()
		fn()
	}
	assertPanics("width 7", func() { PackWidth(nil, 8, 7) })
	assertPanics("width 32", func() { PackWidth(nil, 8, 32) })
	b := Pack(randVectors(rand.New(rand.NewSource(4)), 20, 64), 64)
	assertPanics("unaligned lo", func() { b.HammingSlice(NewBitVector(64), 3, 20, make([]int32, 20)) })
}
