// Package vecspace implements the multidimensional feature space the
// graphs are mapped into: binary containment vectors over a feature set F,
// the normalized Euclidean distance d(yi, yj) of Section 4, the inverted
// lists IF (feature → graphs) and IG (graph → features) of Section 5.1.2,
// and the Jaccard-coefficient feature-correlation score of Fig. 2.
package vecspace

import (
	"context"
	"math"
	"math/bits"
	"sort"

	"repro/internal/graph"
	"repro/internal/gspan"
	"repro/internal/pool"
	"repro/internal/subiso"
)

// BitVector is a packed binary feature vector y_i ∈ {0,1}^p.
type BitVector struct {
	bits []uint64
	p    int
}

// NewBitVector returns an all-zero vector of dimension p.
func NewBitVector(p int) *BitVector {
	return &BitVector{bits: make([]uint64, (p+63)/64), p: p}
}

// Len returns the dimension p.
func (v *BitVector) Len() int { return v.p }

// Set turns bit r on.
func (v *BitVector) Set(r int) { v.bits[r/64] |= 1 << (uint(r) % 64) }

// Get reports bit r.
func (v *BitVector) Get(r int) bool { return v.bits[r/64]&(1<<(uint(r)%64)) != 0 }

// Words returns the packed 64-bit words backing the vector, bit r stored
// at words[r/64] bit r%64. The slice is owned by the vector and must not
// be modified — it exists for compact serialization.
func (v *BitVector) Words() []uint64 { return v.bits }

// BitVectorFromWords reconstructs a vector of dimension p from packed
// words as returned by Words. The words are copied; bits at or beyond p
// must be zero (the caller is expected to validate untrusted input).
func BitVectorFromWords(p int, words []uint64) *BitVector {
	v := NewBitVector(p)
	copy(v.bits, words)
	return v
}

// Ones returns the number of set bits |F(g)|.
func (v *BitVector) Ones() int {
	c := 0
	for _, w := range v.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// HammingDistance returns the number of differing bits between v and o.
func (v *BitVector) HammingDistance(o *BitVector) int {
	c := 0
	for i := range v.bits {
		c += bits.OnesCount64(v.bits[i] ^ o.bits[i])
	}
	return c
}

// IntersectionSize returns |F(a) ∩ F(b)|.
func (v *BitVector) IntersectionSize(o *BitVector) int {
	c := 0
	for i := range v.bits {
		c += bits.OnesCount64(v.bits[i] & o.bits[i])
	}
	return c
}

// ForEach calls fn for every set bit of v in ascending order — the
// iteration primitive posting-list construction transposes vectors with.
func (v *BitVector) ForEach(fn func(r int)) {
	for wi, w := range v.bits {
		for w != 0 {
			fn(wi*64 + bits.TrailingZeros64(w))
			w &^= w & -w
		}
	}
}

// Distance returns the normalized Euclidean distance of Section 4:
// d(yi,yj) = sqrt( (1/p) Σ (yir-yjr)^2 ) ∈ [0,1]. For binary vectors the
// sum of squared differences is the Hamming distance.
func (v *BitVector) Distance(o *BitVector) float64 {
	if v.p == 0 {
		return 0
	}
	return math.Sqrt(float64(v.HammingDistance(o)) / float64(v.p))
}

// Mapper maps graphs onto a fixed feature set F = {f1..fp} by subgraph
// isomorphism tests (φ in the paper). It is how unseen query graphs enter
// the multidimensional space. A Mapper is immutable after construction
// and therefore safe for concurrent use: every Map call allocates its own
// VF2 matcher state.
type Mapper struct {
	features []*graph.Graph
}

// NewMapper builds a mapper over the given ordered feature list.
func NewMapper(features []*graph.Graph) *Mapper {
	return &Mapper{features: features}
}

// Dim returns p = |F|.
func (m *Mapper) Dim() int { return len(m.features) }

// Features returns the ordered feature list (shared storage).
func (m *Mapper) Features() []*graph.Graph { return m.features }

// Map computes the binary vector of g: bit r is 1 iff f_r ⊆ g.
func (m *Mapper) Map(g *graph.Graph) *BitVector {
	v, _ := m.MapContext(context.Background(), g)
	return v
}

// MapContext is Map with cancellation: ctx is checked before each of the
// p subgraph-isomorphism tests (each test is the expensive unit), and a
// cancelled call returns (nil, ctx.Err()).
func (m *Mapper) MapContext(ctx context.Context, g *graph.Graph) (*BitVector, error) {
	v := NewBitVector(len(m.features))
	for r, f := range m.features {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Cheap size filter before the isomorphism test.
		if f.N() > g.N() || f.M() > g.M() {
			continue
		}
		if subiso.Contains(g, f) {
			v.Set(r)
		}
	}
	return v, nil
}

// MapAll maps a whole database sequentially.
func (m *Mapper) MapAll(db []*graph.Graph) []*BitVector {
	return m.MapAllWorkers(db, 1)
}

// MapAllWorkers maps a whole database with a bounded worker pool, one
// graph per task (workers <= 0 means one per CPU). Per-graph mapping is
// embarrassingly parallel — the p subgraph-isomorphism tests of graph i
// share nothing with those of graph j — so the result is identical to
// MapAll for every worker count.
func (m *Mapper) MapAllWorkers(db []*graph.Graph, workers int) []*BitVector {
	out := make([]*BitVector, len(db))
	pool.For(pool.DefaultWorkers(workers), len(db), func(i int) {
		out[i] = m.Map(db[i])
	})
	return out
}

// Index holds the inverted lists of Section 5.1.2 for a database mapped
// onto a feature set:
//
//	IF[r] = { i | f_r ⊆ g_i }   (feature → graphs, sorted)
//	IG[i] = { r | f_r ⊆ g_i }   (graph → features, sorted)
type Index struct {
	N, P int
	IF   [][]int
	IG   [][]int
}

// BuildIndex derives the inverted lists from mined features' support sets.
// Feature r's support set must list database indices in [0,n).
func BuildIndex(n int, features []*gspan.Feature) *Index {
	idx := &Index{N: n, P: len(features)}
	idx.IF = make([][]int, len(features))
	idx.IG = make([][]int, n)
	for r, f := range features {
		idx.IF[r] = append([]int(nil), f.Support...)
		for _, i := range f.Support {
			idx.IG[i] = append(idx.IG[i], r)
		}
	}
	for i := range idx.IG {
		sort.Ints(idx.IG[i])
	}
	return idx
}

// BuildIndexFromVectors derives the inverted lists from explicit binary
// vectors (used by tests and the ablations).
func BuildIndexFromVectors(vs []*BitVector) *Index {
	p := 0
	if len(vs) > 0 {
		p = vs[0].Len()
	}
	idx := &Index{N: len(vs), P: p}
	idx.IF = make([][]int, p)
	idx.IG = make([][]int, len(vs))
	for i, v := range vs {
		for r := 0; r < p; r++ {
			if v.Get(r) {
				idx.IF[r] = append(idx.IF[r], i)
				idx.IG[i] = append(idx.IG[i], r)
			}
		}
	}
	return idx
}

// Vector materializes graph i's binary vector from IG.
func (idx *Index) Vector(i int) *BitVector {
	v := NewBitVector(idx.P)
	for _, r := range idx.IG[i] {
		v.Set(r)
	}
	return v
}

// SymmetricDifferenceFeatures calls fn for every feature contained in
// exactly one of graphs i and j — the iteration pattern of Algorithm 4
// (Computeobj walks IGi ∪ IGj − IGi ∩ IGj).
func (idx *Index) SymmetricDifferenceFeatures(i, j int, fn func(r int)) {
	a, b := idx.IG[i], idx.IG[j]
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			x++
			y++
		case a[x] < b[y]:
			fn(a[x])
			x++
		default:
			fn(b[y])
			y++
		}
	}
	for ; x < len(a); x++ {
		fn(a[x])
	}
	for ; y < len(b); y++ {
		fn(b[y])
	}
}

// JaccardCorrelation returns the correlation score between features r and
// s, defined as the Jaccard coefficient of their support sets
// |sup(r) ∩ sup(s)| / |sup(r) ∪ sup(s)| (Fig. 2; Cheng et al. [35]).
func (idx *Index) JaccardCorrelation(r, s int) float64 {
	a, b := idx.IF[r], idx.IF[s]
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] == b[y]:
			inter++
			x++
			y++
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// TotalCorrelation sums the pairwise Jaccard correlation over the given
// feature subset — the y-axis of Fig. 2.
func (idx *Index) TotalCorrelation(selected []int) float64 {
	total := 0.0
	for i := 0; i < len(selected); i++ {
		for j := i + 1; j < len(selected); j++ {
			total += idx.JaccardCorrelation(selected[i], selected[j])
		}
	}
	return total
}

// Subindex restricts the index to the given feature subset (in the given
// order), renumbering features 0..len(sel)-1.
func (idx *Index) Subindex(sel []int) *Index {
	sub := &Index{N: idx.N, P: len(sel)}
	sub.IF = make([][]int, len(sel))
	sub.IG = make([][]int, idx.N)
	for newR, r := range sel {
		sub.IF[newR] = append([]int(nil), idx.IF[r]...)
		for _, i := range idx.IF[r] {
			sub.IG[i] = append(sub.IG[i], newR)
		}
	}
	for i := range sub.IG {
		sort.Ints(sub.IG[i])
	}
	return sub
}
