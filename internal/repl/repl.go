// Package repl implements WAL-shipped replication between gserve
// processes: the wire protocol a primary's streaming WAL-tail endpoint
// speaks, the tailing client a follower runs per collection, and the
// small durable state file that gives a follower a stable identity and
// resume position across restarts.
//
// # Protocol
//
// A tail response (GET /v1/replication/{collection}/wal?after=N) is an
// unbounded chunked stream of envelopes, each a one-byte tag plus a
// payload:
//
//	0x01  record     — one WAL record in the exact on-disk segment
//	                   framing (seq uvarint, type, len, payload, crc32),
//	                   so the follower persists bytes position- and
//	                   content-compatible with the primary's log
//	0x02  heartbeat  — uvarint: the primary's applied (settled) sequence.
//	                   Sent whenever the stream catches up and then
//	                   periodically; it doubles as the follower's signal
//	                   that no amendment is in flight for the last add
//	                   batch, so buffered batches can be applied
//	0x03  truncated  — the requested position predates the oldest
//	                   retained segment; the follower must re-bootstrap
//	                   from a snapshot. The stream ends after this tag
//
// The primary only streams records at or below its applied watermark:
// a TypeAdd whose application outcome (clean, partial, or voided —
// settled by an immediately following TypeApplied amendment) is not yet
// final is held back. The follower may therefore treat "no next record"
// (a heartbeat) as proof that its buffered add batch has no amendment
// coming.
package repl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/wal"
)

// Envelope tags of the tail stream.
const (
	tagRecord    = 0x01
	tagHeartbeat = 0x02
	tagTruncated = 0x03
)

// ErrNeedsBootstrap reports that the primary no longer retains the
// records the follower needs: tailing cannot continue and the follower
// must fetch a fresh snapshot before reconnecting.
var ErrNeedsBootstrap = errors.New("repl: position truncated on primary; snapshot bootstrap required")

// WriteRecord writes one record envelope.
func WriteRecord(w io.Writer, rec wal.Record) error {
	frame, err := wal.EncodeFrame(rec)
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte{tagRecord}); err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// WriteHeartbeat writes a heartbeat envelope carrying the sender's
// applied sequence.
func WriteHeartbeat(w io.Writer, applied uint64) error {
	var buf [1 + binary.MaxVarintLen64]byte
	buf[0] = tagHeartbeat
	n := binary.PutUvarint(buf[1:], applied)
	_, err := w.Write(buf[:1+n])
	return err
}

// WriteTruncated writes the stream-ending truncation signal.
func WriteTruncated(w io.Writer) error {
	_, err := w.Write([]byte{tagTruncated})
	return err
}

// Event is one decoded envelope.
type Event struct {
	// Record is set for record envelopes (Seq > 0 exactly then).
	Record wal.Record
	// Heartbeat is true for heartbeat envelopes; Applied carries the
	// sender's applied sequence.
	Heartbeat bool
	Applied   uint64
	// Truncated is true for the truncation signal.
	Truncated bool
}

// StreamReader decodes a tail stream's envelopes.
type StreamReader struct {
	fr *wal.FrameReader
}

// NewStreamReader wraps the response body; nothing else may read it.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{fr: wal.NewFrameReader(r)}
}

// Next decodes one envelope. io.EOF reports a clean end of stream (the
// sender closed between envelopes); everything else mid-envelope is an
// error.
func (sr *StreamReader) Next() (Event, error) {
	tag, err := sr.fr.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("repl: reading envelope: %w", err)
	}
	switch tag {
	case tagRecord:
		rec, err := sr.fr.Next()
		if err != nil {
			return Event{}, fmt.Errorf("repl: reading record: %w", err)
		}
		return Event{Record: rec}, nil
	case tagHeartbeat:
		applied, err := sr.fr.Uvarint()
		if err != nil {
			return Event{}, fmt.Errorf("repl: reading heartbeat: %w", err)
		}
		return Event{Heartbeat: true, Applied: applied}, nil
	case tagTruncated:
		return Event{Truncated: true}, nil
	default:
		return Event{}, fmt.Errorf("repl: unknown envelope tag 0x%02x", tag)
	}
}

// State is the follower's durable replication identity: a stable id
// (the primary keys retention holds on it) and the last sequence the
// follower acknowledged — informational; the authoritative resume
// position is the follower's own WAL and manifest.
type State struct {
	FollowerID string `json:"follower_id"`
	AckedSeq   uint64 `json:"acked_seq"`
}

// LoadState reads the state file; a missing file returns a zero State
// and no error.
func LoadState(path string) (State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return State{}, nil
		}
		return State{}, fmt.Errorf("repl: reading state: %w", err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return State{}, fmt.Errorf("repl: decoding state %s: %w", path, err)
	}
	return st, nil
}

// Save writes the state atomically (temp file + rename).
func (st State) Save(path string) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("repl: encoding state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("repl: writing state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: writing state: %w", err)
	}
	return nil
}
