package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/wal"
)

// Applier is the follower-side sink the Tailer feeds. The store layer
// implements it: Apply persists and replays a batch of records, Settle
// flushes any buffered add batch once a heartbeat proves its amendment
// (if any) has already been delivered, AckSeq reports the durable resume
// position, and AppliedSeq the locally applied watermark.
type Applier interface {
	Apply(ctx context.Context, recs []wal.Record) error
	Settle(ctx context.Context) error
	AckSeq() uint64
	AppliedSeq() uint64
}

// Config configures a Tailer.
type Config struct {
	// PrimaryURL is the primary's base URL, e.g. "http://primary:8080".
	PrimaryURL string
	// Collection to replicate.
	Collection string
	// FollowerID is this follower's stable identity; the primary keys
	// its retention holds on it.
	FollowerID string
	// Applier receives the records.
	Applier Applier
	// Client is the HTTP client; http.DefaultClient when nil. It must
	// not impose a response timeout (the tail stream is unbounded).
	Client *http.Client

	// MinBackoff/MaxBackoff bound the jittered reconnect delay.
	// Defaults: 100ms and 5s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// BatchMax caps how many records are buffered before Apply is
	// called mid-stream. Default 64.
	BatchMax int
}

// Status is a point-in-time snapshot of a Tailer, for metrics and
// health reporting.
type Status struct {
	Connected      bool
	NeedsBootstrap bool
	LastError      string
	Reconnects     uint64
	RecordsApplied uint64
	// PrimaryApplied is the primary's applied sequence from its most
	// recent heartbeat; LocalApplied and LocalDurable come from the
	// Applier. The replay lag in records is PrimaryApplied−LocalApplied.
	PrimaryApplied uint64
	LocalApplied   uint64
	LocalDurable   uint64
	// LastProgress is when a record or heartbeat last arrived.
	LastProgress time.Time
}

// Tailer maintains the follower's connection to the primary's WAL-tail
// endpoint: it connects, streams envelopes into the Applier, acks
// progress, and reconnects with jittered exponential backoff.
type Tailer struct {
	cfg Config

	mu sync.Mutex
	st Status
}

// NewTailer validates cfg and returns a tailer ready to Run.
func NewTailer(cfg Config) (*Tailer, error) {
	if cfg.PrimaryURL == "" || cfg.Collection == "" || cfg.FollowerID == "" || cfg.Applier == nil {
		return nil, fmt.Errorf("repl: tailer config missing primary URL, collection, follower id, or applier")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	return &Tailer{cfg: cfg}, nil
}

// Status returns a snapshot of the tailer's progress.
func (t *Tailer) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.LocalApplied = t.cfg.Applier.AppliedSeq()
	st.LocalDurable = t.cfg.Applier.AckSeq()
	return st
}

// Run tails the primary until ctx is cancelled or the primary reports
// the follower's position truncated (ErrNeedsBootstrap) — every other
// failure is retried with backoff. On a clean cancel it returns
// ctx.Err().
func (t *Tailer) Run(ctx context.Context) error {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := t.cfg.MinBackoff
	for {
		madeProgress, err := t.tailOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrNeedsBootstrap) {
			t.setState(func(st *Status) {
				st.Connected = false
				st.NeedsBootstrap = true
				st.LastError = err.Error()
			})
			return err
		}
		t.setState(func(st *Status) {
			st.Connected = false
			st.Reconnects++
			if err != nil {
				st.LastError = err.Error()
			}
		})
		if madeProgress {
			backoff = t.cfg.MinBackoff
		}
		// Jittered exponential backoff: sleep in [backoff/2, backoff).
		delay := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
		if backoff *= 2; backoff > t.cfg.MaxBackoff {
			backoff = t.cfg.MaxBackoff
		}
	}
}

func (t *Tailer) setState(f func(*Status)) {
	t.mu.Lock()
	f(&t.st)
	t.mu.Unlock()
}

// tailOnce runs one connection lifetime and reports whether any
// progress (records or heartbeats) was made on it.
func (t *Tailer) tailOnce(ctx context.Context) (progress bool, err error) {
	after := t.cfg.Applier.AckSeq()
	tailURL := fmt.Sprintf("%s/v1/replication/%s/wal?after=%d&follower=%s",
		t.cfg.PrimaryURL, url.PathEscape(t.cfg.Collection), after, url.QueryEscape(t.cfg.FollowerID))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, tailURL, nil)
	if err != nil {
		return false, err
	}
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		return false, fmt.Errorf("repl: connecting to primary: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return false, ErrNeedsBootstrap
	default:
		return false, fmt.Errorf("repl: primary answered %s", resp.Status)
	}
	t.setState(func(st *Status) {
		st.Connected = true
		st.LastError = ""
	})

	sr := NewStreamReader(resp.Body)
	var batch []wal.Record
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := t.cfg.Applier.Apply(ctx, batch); err != nil {
			return fmt.Errorf("repl: applying records: %w", err)
		}
		n := uint64(len(batch))
		t.setState(func(st *Status) { st.RecordsApplied += n })
		batch = batch[:0]
		return nil
	}
	for {
		ev, err := sr.Next()
		if err != nil {
			if err == io.EOF {
				return progress, flush()
			}
			if ferr := flush(); ferr != nil {
				return progress, ferr
			}
			return progress, err
		}
		progress = true
		switch {
		case ev.Truncated:
			return progress, ErrNeedsBootstrap
		case ev.Heartbeat:
			// The stream is caught up: no amendment can be in flight for
			// anything delivered so far, so the batch (and any pending add
			// the applier buffered) is safe to settle.
			if err := flush(); err != nil {
				return progress, err
			}
			if err := t.cfg.Applier.Settle(ctx); err != nil {
				return progress, fmt.Errorf("repl: settling: %w", err)
			}
			t.setState(func(st *Status) {
				st.PrimaryApplied = ev.Applied
				st.LastProgress = time.Now()
			})
			t.ack(ctx)
		default:
			batch = append(batch, ev.Record)
			if ev.Record.Seq > 0 {
				seq := ev.Record.Seq
				t.setState(func(st *Status) {
					if seq > st.PrimaryApplied {
						st.PrimaryApplied = seq
					}
					st.LastProgress = time.Now()
				})
			}
			if len(batch) >= t.cfg.BatchMax {
				if err := flush(); err != nil {
					return progress, err
				}
			}
		}
	}
}

// ack reports the follower's durable position so the primary can
// release retention holds. Best-effort: a lost ack only delays
// truncation.
func (t *Tailer) ack(ctx context.Context) {
	seq := t.cfg.Applier.AckSeq()
	ackURL := fmt.Sprintf("%s/v1/replication/%s/ack?follower=%s&seq=%d",
		t.cfg.PrimaryURL, url.PathEscape(t.cfg.Collection), url.QueryEscape(t.cfg.FollowerID), seq)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ackURL, nil)
	if err != nil {
		return
	}
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}
