package repl

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/wal"
)

// testGraph builds a small distinguishable graph: a path of n vertices
// labeled base, base+1, ...
func testGraph(n int, base int) *graph.Graph {
	g := graph.New(0)
	for v := 0; v < n; v++ {
		g.AddVertex(graph.Label(base + v))
	}
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, graph.Label(base))
	}
	return g
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := []wal.Record{
		{Seq: 1, Type: wal.TypeAdd, First: 1, Total: 2, Graphs: []*graph.Graph{testGraph(3, 1), testGraph(2, 5)}},
		{Seq: 2, Type: wal.TypeApplied, First: 1, Total: 2, IDs: []int{1}},
		{Seq: 3, Type: wal.TypeRemove, IDs: []int{2, 7}},
	}
	for _, rec := range recs {
		if err := WriteRecord(&buf, rec); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
	}
	if err := WriteHeartbeat(&buf, 3); err != nil {
		t.Fatalf("WriteHeartbeat: %v", err)
	}
	if err := WriteTruncated(&buf); err != nil {
		t.Fatalf("WriteTruncated: %v", err)
	}

	sr := NewStreamReader(&buf)
	for i, want := range recs {
		ev, err := sr.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Heartbeat || ev.Truncated {
			t.Fatalf("event %d: wanted a record, got %+v", i, ev)
		}
		got := ev.Record
		if got.Seq != want.Seq || got.Type != want.Type || got.First != want.First || got.Total != want.Total {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
		if len(got.Graphs) != len(want.Graphs) || len(got.IDs) != len(want.IDs) {
			t.Fatalf("event %d: payload mismatch: got %+v, want %+v", i, got, want)
		}
		for j := range want.Graphs {
			if got.Graphs[j].Signature() != want.Graphs[j].Signature() {
				t.Fatalf("event %d graph %d: got %v, want %v", i, j, got.Graphs[j], want.Graphs[j])
			}
		}
		for j := range want.IDs {
			if got.IDs[j] != want.IDs[j] {
				t.Fatalf("event %d id %d: got %d, want %d", i, j, got.IDs[j], want.IDs[j])
			}
		}
	}
	ev, err := sr.Next()
	if err != nil || !ev.Heartbeat || ev.Applied != 3 {
		t.Fatalf("heartbeat: got %+v, %v", ev, err)
	}
	ev, err = sr.Next()
	if err != nil || !ev.Truncated {
		t.Fatalf("truncated: got %+v, %v", ev, err)
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

func TestEnvelopeRejectsUnknownTag(t *testing.T) {
	sr := NewStreamReader(bytes.NewReader([]byte{0x7f}))
	if _, err := sr.Next(); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestEncodeFrameRequiresSeq(t *testing.T) {
	if err := WriteRecord(io.Discard, wal.Record{Type: wal.TypeAdd}); err == nil {
		t.Fatal("record without sequence accepted")
	}
}

func TestStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repl-state.json")

	st, err := LoadState(path)
	if err != nil {
		t.Fatalf("LoadState on missing file: %v", err)
	}
	if st != (State{}) {
		t.Fatalf("missing file should load as zero state, got %+v", st)
	}

	want := State{FollowerID: "f-42", AckedSeq: 99}
	if err := want.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadState(path)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

// memApplier is a test Applier that records everything it receives.
type memApplier struct {
	mu      sync.Mutex
	recs    []wal.Record
	settles int
	applied uint64
	failOn  uint64 // Apply fails when a batch contains this seq
}

func (m *memApplier) Apply(ctx context.Context, recs []wal.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range recs {
		if m.failOn != 0 && r.Seq == m.failOn {
			return errors.New("injected apply failure")
		}
	}
	m.recs = append(m.recs, recs...)
	m.applied = recs[len(recs)-1].Seq
	return nil
}

func (m *memApplier) Settle(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.settles++
	return nil
}

func (m *memApplier) AckSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applied
}

func (m *memApplier) AppliedSeq() uint64 { return m.AckSeq() }

func (m *memApplier) seqs() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, len(m.recs))
	for i, r := range m.recs {
		out[i] = r.Seq
	}
	return out
}

// fakePrimary serves the tail endpoint from a fixed record slice,
// sending a heartbeat once caught up, and records acks.
type fakePrimary struct {
	mu      sync.Mutex
	recs    []wal.Record // all seqs contiguous from 1
	acks    []uint64
	hangups int // connections served that ended after one pass
}

func (p *fakePrimary) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/{collection}/wal", func(w http.ResponseWriter, r *http.Request) {
		after, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
		p.mu.Lock()
		recs := p.recs
		p.mu.Unlock()
		for _, rec := range recs {
			if rec.Seq <= after {
				continue
			}
			if err := WriteRecord(w, rec); err != nil {
				return
			}
		}
		WriteHeartbeat(w, uint64(len(recs)))
		p.mu.Lock()
		p.hangups++
		p.mu.Unlock()
		// Hang up; the tailer reconnects from its acked offset.
	})
	mux.HandleFunc("POST /v1/replication/{collection}/ack", func(w http.ResponseWriter, r *http.Request) {
		seq, _ := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
		p.mu.Lock()
		p.acks = append(p.acks, seq)
		p.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func makeRecs(n int) []wal.Record {
	recs := make([]wal.Record, n)
	for i := range recs {
		recs[i] = wal.Record{Seq: uint64(i + 1), Type: wal.TypeRemove, IDs: []int{i}}
	}
	return recs
}

func TestTailerStreamsAppliesAndAcks(t *testing.T) {
	prim := &fakePrimary{recs: makeRecs(10)}
	srv := httptest.NewServer(prim.handler())
	defer srv.Close()

	app := &memApplier{}
	tl, err := NewTailer(Config{
		PrimaryURL: srv.URL, Collection: "c", FollowerID: "f1", Applier: app,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, BatchMax: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for app.AckSeq() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("tailer never caught up: applied %d/10", app.AckSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Extend the log; a reconnect must resume past the acked prefix with
	// no replays or gaps.
	prim.mu.Lock()
	prim.recs = makeRecs(15)
	prim.mu.Unlock()
	for app.AckSeq() < 15 {
		if time.Now().After(deadline) {
			t.Fatalf("tailer never saw extended log: applied %d/15", app.AckSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}

	seqs := app.seqs()
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("applied sequence %d at position %d: records replayed or skipped: %v", s, i, seqs)
		}
	}
	if len(seqs) != 15 {
		t.Fatalf("applied %d records, want 15", len(seqs))
	}
	prim.mu.Lock()
	defer prim.mu.Unlock()
	if len(prim.acks) == 0 || prim.acks[len(prim.acks)-1] != 15 {
		t.Fatalf("primary acks %v, want final ack 15", prim.acks)
	}
	st := tl.Status()
	if st.RecordsApplied != 15 || st.PrimaryApplied != 15 || st.LocalDurable != 15 {
		t.Fatalf("status %+v, want 15 records applied/primary/durable", st)
	}
}

func TestTailerBootstrapSignal(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/{collection}/wal", func(w http.ResponseWriter, r *http.Request) {
		WriteTruncated(w)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	app := &memApplier{}
	tl, err := NewTailer(Config{PrimaryURL: srv.URL, Collection: "c", FollowerID: "f1", Applier: app})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tl.Run(ctx); !errors.Is(err, ErrNeedsBootstrap) {
		t.Fatalf("Run returned %v, want ErrNeedsBootstrap", err)
	}
	if st := tl.Status(); !st.NeedsBootstrap {
		t.Fatalf("status %+v, want NeedsBootstrap", st)
	}
}

func TestTailerBootstrapOnGone(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/{collection}/wal", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "truncated", http.StatusGone)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	app := &memApplier{}
	tl, err := NewTailer(Config{PrimaryURL: srv.URL, Collection: "c", FollowerID: "f1", Applier: app})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tl.Run(ctx); !errors.Is(err, ErrNeedsBootstrap) {
		t.Fatalf("Run returned %v, want ErrNeedsBootstrap", err)
	}
}

func TestTailerRetriesAfterApplyFailure(t *testing.T) {
	prim := &fakePrimary{recs: makeRecs(5)}
	srv := httptest.NewServer(prim.handler())
	defer srv.Close()

	app := &memApplier{failOn: 3}
	tl, err := NewTailer(Config{
		PrimaryURL: srv.URL, Collection: "c", FollowerID: "f1", Applier: app,
		MinBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, BatchMax: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tl.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for app.AckSeq() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("tailer made no progress before the injected failure")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Clear the fault: the tailer must recover via reconnect.
	app.mu.Lock()
	app.failOn = 0
	app.mu.Unlock()
	for app.AckSeq() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("tailer never recovered: applied %d/5", app.AckSeq())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	<-done
	seqs := app.seqs()
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("applied out of order after retry: %v", seqs)
		}
	}
}
