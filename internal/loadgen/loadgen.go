// Package loadgen drives a mixed search/add/ingest workload against a
// running gserve and reports the latency distribution — the shared
// engine behind cmd/gload and the in-process load smoke test.
//
// Arrivals are open-loop: operation start times are fixed on a clock at
// the target rate before any response comes back, and each operation's
// latency is measured from its *scheduled* start. A server that stalls
// therefore accumulates queue delay in the reported percentiles instead
// of silently slowing the generator down (the coordinated-omission trap
// closed-loop harnesses fall into).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

// Mix is the workload composition in percent; the fields should sum to
// 100 (Run normalizes whatever they sum to). FollowerSearchPct routes
// searches to Config.FollowerURL — a replica read mix — and falls back
// to the primary when no follower is configured.
type Mix struct {
	SearchPct         int `json:"search_pct"`
	AddPct            int `json:"add_pct"`
	IngestPct         int `json:"ingest_pct"`
	FollowerSearchPct int `json:"follower_search_pct,omitempty"`
	// PipelinePct routes requests to the /query pipeline endpoint
	// (filter → search → group_by documents).
	PipelinePct int `json:"pipeline_pct,omitempty"`
}

// DefaultMix is a read-heavy serving mix with a steady write trickle
// and a slice of analytics pipelines.
var DefaultMix = Mix{SearchPct: 75, AddPct: 15, IngestPct: 5, PipelinePct: 5}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Collection is the target collection name.
	Collection string
	// Rate is the open-loop arrival rate in operations/second.
	Rate float64
	// Ops is the total number of arrivals; the nominal run length is
	// Ops/Rate seconds.
	Ops int
	// Concurrency is the number of dispatch workers — the bound on
	// client-side outstanding requests. Zero means 32.
	Concurrency int
	// Mix is the workload composition; the zero value means DefaultMix.
	Mix Mix
	// K is the search result count; zero means 5.
	K int
	// IngestBatch is the number of graphs per ingest request (the
	// server-side WAL batch is set to match); zero means 64.
	IngestBatch int
	// FollowerURL is the root of a replication follower; follower_search
	// ops go here. Empty demotes follower searches to primary searches.
	FollowerURL string
	// Seed makes the op sequence and payloads reproducible.
	Seed int64
	// Client is the HTTP client to use; nil means http.DefaultClient.
	Client *http.Client
}

// OpReport is the per-operation slice of a Report.
type OpReport struct {
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	Rejected int64   `json:"rejected_429"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
	MaxMs    float64 `json:"max_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// Report is the outcome of a run, JSON-ready for the bench trajectory.
type Report struct {
	DurationSeconds float64 `json:"duration_seconds"`
	TargetRate      float64 `json:"target_rate_per_sec"`
	AchievedRate    float64 `json:"achieved_rate_per_sec"`
	Ops             int64   `json:"ops"`
	Errors          int64   `json:"errors"`
	Rejected        int64   `json:"rejected_429"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	P999Ms          float64 `json:"p999_ms"`
	SampleError     string  `json:"sample_error,omitempty"`

	PerOp map[string]*OpReport `json:"per_op"`
}

type opKind int

const (
	opSearch opKind = iota
	opAdd
	opIngest
	opFollowerSearch
	opPipeline
	nKinds
)

func (k opKind) String() string {
	return [...]string{"search", "add", "ingest", "follower_search", "pipeline"}[k]
}

// arrival is one scheduled operation.
type arrival struct {
	at   time.Time
	kind opKind
	n    int // payload selector
}

type opStats struct {
	hist     metrics.Histogram
	count    atomic.Int64
	errors   atomic.Int64
	rejected atomic.Int64
}

// runner holds the immutable state the workers share.
type runner struct {
	cfg     Config
	client  *http.Client
	stats   [nKinds]opStats
	overall metrics.Histogram

	errOnce sync.Once
	errMsg  atomic.Value // string

	queries   []string // rendered search bodies
	adds      []string // rendered add bodies (single graph)
	ingests   []string // rendered NDJSON ingest bodies
	pipelines []string // rendered JSON pipeline bodies
}

// Run executes the configured workload and blocks until every arrival
// completed or ctx was cancelled. The error is only for setup failures;
// per-request failures land in the Report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" || cfg.Collection == "" {
		return nil, fmt.Errorf("loadgen: BaseURL and Collection are required")
	}
	if cfg.Rate <= 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("loadgen: Rate and Ops must be positive")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 32
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix
	}
	if cfg.K <= 0 {
		cfg.K = 5
	}
	if cfg.IngestBatch <= 0 {
		cfg.IngestBatch = 64
	}
	r := &runner{cfg: cfg, client: cfg.Client}
	if r.client == nil {
		r.client = http.DefaultClient
	}
	if err := r.buildPayloads(); err != nil {
		return nil, err
	}

	// Schedule every arrival up front — the open-loop clock.
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := []int{cfg.Mix.SearchPct, cfg.Mix.AddPct, cfg.Mix.IngestPct, cfg.Mix.FollowerSearchPct, cfg.Mix.PipelinePct}
	totalW := weights[0] + weights[1] + weights[2] + weights[3] + weights[4]
	if totalW <= 0 {
		return nil, fmt.Errorf("loadgen: mix sums to zero")
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	arrivals := make(chan arrival, cfg.Ops)
	start := time.Now()
	for i := 0; i < cfg.Ops; i++ {
		w := rng.Intn(totalW)
		kind := opSearch
		switch {
		case w < weights[0]:
			kind = opSearch
		case w < weights[0]+weights[1]:
			kind = opAdd
		case w < weights[0]+weights[1]+weights[2]:
			kind = opIngest
		case w < weights[0]+weights[1]+weights[2]+weights[3]:
			kind = opFollowerSearch
			if cfg.FollowerURL == "" {
				kind = opSearch
			}
		default:
			kind = opPipeline
		}
		arrivals <- arrival{at: start.Add(time.Duration(i) * interval), kind: kind, n: rng.Int()}
	}
	close(arrivals)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range arrivals {
				if ctx.Err() != nil {
					return
				}
				if d := time.Until(a.at); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				r.execute(ctx, a)
			}
		}()
	}
	wg.Wait()
	return r.report(time.Since(start)), nil
}

// buildPayloads renders the request bodies once, from a synthetic
// chemical dataset: searches and adds are single graphs, ingests are
// NDJSON batches.
func (r *runner) buildPayloads() error {
	const variants = 16
	db := dataset.Chemical(dataset.ChemConfig{
		N: variants * 2, MinVertices: 8, MaxVertices: 14, Seed: r.cfg.Seed + 1,
	})
	render := func(gs []*graphdim.Graph) (string, error) {
		var buf bytes.Buffer
		if err := graphdim.WriteGraphs(&buf, gs); err != nil {
			return "", err
		}
		return buf.String(), nil
	}
	for i := 0; i < variants; i++ {
		q, err := render(db[i : i+1])
		if err != nil {
			return err
		}
		a, err := render(db[variants+i : variants+i+1])
		if err != nil {
			return err
		}
		r.queries = append(r.queries, q)
		r.adds = append(r.adds, a)
	}
	// A handful of distinct ingest bodies so the WAL sees varied batches.
	for i := 0; i < 4; i++ {
		batch := dataset.Chemical(dataset.ChemConfig{
			N: r.cfg.IngestBatch, MinVertices: 6, MaxVertices: 10, Seed: r.cfg.Seed + 100 + int64(i),
		})
		var buf bytes.Buffer
		for _, g := range batch {
			line := struct {
				Labels []int    `json:"labels"`
				Edges  [][3]int `json:"edges"`
			}{Labels: make([]int, g.N())}
			for v := 0; v < g.N(); v++ {
				line.Labels[v] = int(g.VertexLabel(v))
			}
			for _, e := range g.Edges() {
				line.Edges = append(line.Edges, [3]int{e.U, e.V, int(e.Label)})
			}
			b, err := json.Marshal(line)
			if err != nil {
				return err
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
		r.ingests = append(r.ingests, buf.String())
	}
	// Pipeline bodies: a label filter (posting pushdown) in front of a
	// grouped search, and a pure filtered count — the two shapes the
	// /query endpoint serves most.
	for i := 0; i < 4; i++ {
		g := db[i%variants]
		labels := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			labels[v] = int(g.VertexLabel(v))
		}
		edges := make([][3]int, 0, g.M())
		for _, e := range g.Edges() {
			edges = append(edges, [3]int{e.U, e.V, int(e.Label)})
		}
		filter := map[string]any{"filter": map[string]any{
			"vertex_labels": []map[string]any{{"label": labels[0]}},
		}}
		var stages []any
		if i%2 == 0 {
			stages = []any{filter,
				map[string]any{"search": map[string]any{
					"query": map[string]any{"labels": labels, "edges": edges},
					"k":     r.cfg.K,
				}},
				map[string]any{"group_by": map[string]any{"key": "score_bucket"}},
			}
		} else {
			stages = []any{filter, map[string]any{"count": map[string]any{}}}
		}
		b, err := json.Marshal(map[string]any{"stages": stages})
		if err != nil {
			return err
		}
		r.pipelines = append(r.pipelines, string(b))
	}
	return nil
}

func (r *runner) execute(ctx context.Context, a arrival) {
	var url, body string
	base := strings.TrimSuffix(r.cfg.BaseURL, "/") + "/v1/collections/" + r.cfg.Collection
	switch a.kind {
	case opSearch:
		url = fmt.Sprintf("%s/search?k=%d", base, r.cfg.K)
		body = r.queries[a.n%len(r.queries)]
	case opFollowerSearch:
		fbase := strings.TrimSuffix(r.cfg.FollowerURL, "/") + "/v1/collections/" + r.cfg.Collection
		url = fmt.Sprintf("%s/search?k=%d", fbase, r.cfg.K)
		body = r.queries[a.n%len(r.queries)]
	case opAdd:
		url = base + "/add"
		body = r.adds[a.n%len(r.adds)]
	case opIngest:
		url = fmt.Sprintf("%s/ingest?batch=%d", base, r.cfg.IngestBatch)
		body = r.ingests[a.n%len(r.ingests)]
	case opPipeline:
		url = base + "/query"
		body = r.pipelines[a.n%len(r.pipelines)]
	}
	st := &r.stats[a.kind]
	st.count.Add(1)

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		st.errors.Add(1)
		r.sampleError(fmt.Sprintf("%s: %v", a.kind, err))
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			st.errors.Add(1)
			r.sampleError(fmt.Sprintf("%s: %v", a.kind, err))
		}
		return
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// Latency from the scheduled arrival: queue delay counts.
	lat := time.Since(a.at)

	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		st.rejected.Add(1)
		return // shed load is the server working as designed, not an error
	case resp.StatusCode >= 300:
		st.errors.Add(1)
		r.sampleError(fmt.Sprintf("%s: status %d: %.200s", a.kind, resp.StatusCode, respBody))
		return
	case a.kind == opIngest:
		// A 200 ingest can still end with an in-band error line.
		if tail := lastLine(respBody); !strings.Contains(tail, `"done":true`) {
			st.errors.Add(1)
			r.sampleError(fmt.Sprintf("ingest: stream ended without done summary: %.200s", tail))
			return
		}
	}
	st.hist.Observe(int64(lat))
	r.overall.Observe(int64(lat))
}

func lastLine(b []byte) string {
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	return lines[len(lines)-1]
}

func (r *runner) sampleError(msg string) {
	r.errOnce.Do(func() { r.errMsg.Store(msg) })
}

const msPerNs = 1e-6

func (r *runner) report(elapsed time.Duration) *Report {
	rep := &Report{
		DurationSeconds: elapsed.Seconds(),
		TargetRate:      r.cfg.Rate,
		P50Ms:           float64(r.overall.Quantile(0.5)) * msPerNs,
		P99Ms:           float64(r.overall.Quantile(0.99)) * msPerNs,
		P999Ms:          float64(r.overall.Quantile(0.999)) * msPerNs,
		PerOp:           map[string]*OpReport{},
	}
	for k := opKind(0); k < nKinds; k++ {
		st := &r.stats[k]
		if st.count.Load() == 0 {
			continue
		}
		op := &OpReport{
			Count:    st.count.Load(),
			Errors:   st.errors.Load(),
			Rejected: st.rejected.Load(),
			P50Ms:    float64(st.hist.Quantile(0.5)) * msPerNs,
			P99Ms:    float64(st.hist.Quantile(0.99)) * msPerNs,
			P999Ms:   float64(st.hist.Quantile(0.999)) * msPerNs,
			MaxMs:    float64(st.hist.Quantile(1)) * msPerNs,
		}
		if n := st.hist.Count(); n > 0 {
			op.MeanMs = float64(st.hist.Sum()) / float64(n) * msPerNs
		}
		rep.PerOp[k.String()] = op
		rep.Ops += op.Count
		rep.Errors += op.Errors
		rep.Rejected += op.Rejected
	}
	if rep.DurationSeconds > 0 {
		rep.AchievedRate = float64(rep.Ops) / rep.DurationSeconds
	}
	if msg, ok := r.errMsg.Load().(string); ok {
		rep.SampleError = msg
	}
	return rep
}
