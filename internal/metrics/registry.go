package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// quantiles are the summary quantiles every histogram exposes — the
// tail shape ISSUE 6 asks for (p50/p99/p999).
var quantiles = []float64{0.5, 0.99, 0.999}

type family struct {
	name string
	typ  string // "counter", "gauge", "summary"
	help string
}

type series struct {
	fam    int    // index into families
	labels string // rendered `k="v",...` without braces, "" for none
	kind   byte   // 'c' counter, 'g' gauge, 's' summary
	c      *Counter
	g      func() float64
	h      *Histogram
	scale  float64 // summary/gauge multiplier (e.g. 1e-9 for ns → s)
}

// Registry holds named metric series and renders them as Prometheus
// text. Registration (typically at server start) takes a lock; the
// registered counters and histograms themselves are lock-free on the
// hot path. Rendering sorts series, so output order is deterministic —
// golden-testable — regardless of registration order.
type Registry struct {
	mu       sync.Mutex
	families []family
	byName   map[string]int
	series   []series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

func (r *Registry) familyLocked(name, typ, help string) int {
	if i, ok := r.byName[name]; ok {
		if r.families[i].typ != typ {
			panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, r.families[i].typ, typ))
		}
		return i
	}
	r.families = append(r.families, family{name: name, typ: typ, help: help})
	r.byName[name] = len(r.families) - 1
	return len(r.families) - 1
}

// Counter registers (or returns the existing) counter series name{labels}.
// labels is the rendered label list without braces, e.g.
// `endpoint="search",code="200"`; empty means no labels.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.familyLocked(name, "counter", help)
	for i := range r.series {
		if s := &r.series[i]; s.fam == fam && s.labels == labels {
			return s.c
		}
	}
	c := &Counter{}
	r.series = append(r.series, series{fam: fam, labels: labels, kind: 'c', c: c})
	return c
}

// Gauge registers a gauge series whose value is read from fn at render
// time — the natural fit for values another subsystem already tracks
// (cache hit ratio, WAL max batch).
func (r *Registry) Gauge(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.familyLocked(name, "gauge", help)
	r.series = append(r.series, series{fam: fam, labels: labels, kind: 'g', g: fn})
}

// Summary registers h as a Prometheus summary: quantile series for
// p50/p99/p999 plus _sum and _count. Rendered values (and the sum) are
// multiplied by scale — pass 1e-9 for a histogram observed in
// nanoseconds to expose seconds, or 1 for unitless sizes.
func (r *Registry) Summary(name, labels, help string, h *Histogram, scale float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.familyLocked(name, "summary", help)
	r.series = append(r.series, series{fam: fam, labels: labels, kind: 's', h: h, scale: scale})
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// withQuantile appends a quantile label to an existing label list.
func withQuantile(labels string, q float64) string {
	ql := `quantile="` + formatFloat(q) + `"`
	if labels == "" {
		return ql
	}
	return labels + "," + ql
}

// WriteText renders every registered series in Prometheus text format,
// families sorted by name, series within a family sorted by labels.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	famOrder := make([]int, len(r.families))
	for i := range famOrder {
		famOrder[i] = i
	}
	sort.Slice(famOrder, func(a, b int) bool {
		return r.families[famOrder[a]].name < r.families[famOrder[b]].name
	})
	byFam := make(map[int][]series)
	for _, s := range r.series {
		byFam[s.fam] = append(byFam[s.fam], s)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fi := range famOrder {
		fam := r.families[fi]
		ss := byFam[fi]
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, fam.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, s := range ss {
			switch s.kind {
			case 'c':
				fmt.Fprintf(&b, "%s %d\n", seriesName(fam.name, s.labels), s.c.Value())
			case 'g':
				fmt.Fprintf(&b, "%s %s\n", seriesName(fam.name, s.labels), formatFloat(s.g()))
			case 's':
				for _, q := range quantiles {
					v := float64(s.h.Quantile(q)) * s.scale
					fmt.Fprintf(&b, "%s %s\n", seriesName(fam.name, withQuantile(s.labels, q)), formatFloat(v))
				}
				fmt.Fprintf(&b, "%s %s\n", seriesName(fam.name+"_sum", s.labels), formatFloat(float64(s.h.Sum())*s.scale))
				fmt.Fprintf(&b, "%s %d\n", seriesName(fam.name+"_count", s.labels), s.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP exposes the registry as a Prometheus scrape target.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}
