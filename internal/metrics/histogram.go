// Package metrics is the observability layer behind gserve's /metrics
// endpoint: lock-free latency histograms plus a small registry that
// renders them — with counters and gauges — in the Prometheus text
// exposition format.
//
// The histogram is HDR-style log-linear: values land in one of 32
// linear sub-buckets per power-of-two octave, so a recorded value is
// off by at most 1/32 (~3%) of its magnitude no matter whether it is a
// 50µs cache hit or a 2s cold scan. Buckets are fixed at construction
// and counted with atomics, so Observe is wait-free and safe from any
// number of request goroutines; quantile reads see a live snapshot.
package metrics

import (
	"math/bits"
	"sync/atomic"
)

const (
	// subBits is the log2 of the linear sub-buckets per octave. 5 gives
	// 32 sub-buckets and a worst-case relative error of 1/32.
	subBits = 5
	subMask = 1<<subBits - 1

	// nBuckets covers every int64: values below 2^subBits get an exact
	// bucket each; each of the remaining 64-subBits octaves gets 2^subBits
	// linear sub-buckets.
	nBuckets = 1 << subBits * (64 - subBits + 1)
)

// Histogram is a fixed-memory log-linear histogram of non-negative
// int64 samples (latencies in nanoseconds, batch sizes, ...). The zero
// value is ready to use. All methods are safe for concurrent use.
type Histogram struct {
	buckets [nBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketIndex maps v to its bucket: identity below 2^subBits, then
// log-linear — octave by the value's bit length, sub-bucket by the
// subBits bits under the leading one.
func bucketIndex(v int64) int {
	if v < 1<<subBits {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int(v>>(exp-subBits)) & subMask
	return (exp-subBits+1)<<subBits | sub
}

// bucketMax returns the largest value bucket idx can hold — the value
// Quantile reports, so estimates err high by at most one sub-bucket.
func bucketMax(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	exp := idx>>subBits + subBits - 1
	sub := int64(idx & subMask)
	return 1<<exp + (sub+1)<<(exp-subBits) - 1
}

// Observe records one sample; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper estimate of the q-quantile (q in [0,1]) of
// everything observed so far: the highest value the target sample's
// bucket can hold, so the true quantile is never under-reported and is
// overshot by at most ~3%. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			seen += n
			if seen >= target {
				return bucketMax(i)
			}
		}
	}
	// Racing Observes can leave count ahead of the bucket sums for an
	// instant; fall back to the highest occupied bucket.
	for i := nBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			return bucketMax(i)
		}
	}
	return 0
}
