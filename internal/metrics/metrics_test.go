package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestBucketRoundTrip checks the bucket mapping invariants across
// magnitudes: indexes are monotone, dense, and bucketMax(bucketIndex(v))
// is >= v but within the 1/32 relative-error bound.
func TestBucketRoundTrip(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 5, 31, 32, 33, 63, 64, 100, 1023, 1024, 4096, 1 << 20, 1<<40 + 12345, 1<<62 + 99} {
		idx := bucketIndex(v)
		if idx <= prev && v > 0 {
			// indexes must not go backwards as v grows
			t.Fatalf("bucketIndex(%d) = %d, not above previous %d", v, idx, prev)
		}
		prev = idx
		max := bucketMax(idx)
		if max < v {
			t.Fatalf("bucketMax(bucketIndex(%d)) = %d < value", v, max)
		}
		if v >= 1<<subBits && float64(max-v) > float64(v)/float64(1<<subBits) {
			t.Fatalf("bucketMax(%d) = %d overshoots by more than 1/%d", v, max, 1<<subBits)
		}
	}
	// Exhaustively: small values get exact buckets.
	for v := int64(0); v < 1<<subBits; v++ {
		if bucketMax(bucketIndex(v)) != v {
			t.Fatalf("small value %d not exact", v)
		}
	}
}

// TestQuantileAccuracy fills a histogram from a known distribution and
// checks the estimated quantiles against the exact ones within the
// histogram's error bound.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	samples := make([]int64, 10000)
	for i := range samples {
		// log-uniform across ~5 decades, like real latencies
		samples[i] = int64(1000 * (1 << rng.Intn(16)) * (rng.Intn(9) + 1) / 9)
		h.Observe(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("Quantile(%g) = %d under-reports exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*1.05 {
			t.Fatalf("Quantile(%g) = %d overshoots exact %d by more than 5%%", q, got, exact)
		}
	}
	if h.Count() != int64(len(samples)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(samples))
	}
}

func TestHistogramEdges(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", h.Quantile(0.5))
	}
	h.Observe(-5) // clamps to 0
	if h.Quantile(1) != 0 || h.Sum() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation not clamped: q=%d sum=%d count=%d", h.Quantile(1), h.Sum(), h.Count())
	}
	h.Observe(1 << 62)
	if got := h.Quantile(1); got < 1<<62 {
		t.Fatalf("Quantile(1) = %d, want >= 2^62", got)
	}
	// Out-of-range q clamps rather than panics.
	if h.Quantile(-1) != 0 {
		t.Fatalf("Quantile(-1) = %d, want 0 (clamped to min)", h.Quantile(-1))
	}
	_ = h.Quantile(2)
}

// TestHistogramConcurrent hammers Observe from many goroutines with
// concurrent Quantile reads; run under -race this is the wait-freedom
// check, and the final count must balance exactly.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
				if i%1000 == 0 {
					_ = h.Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), writers*per)
	}
}

// TestRegistryRender is the golden test for the exposition format:
// families sorted by name, series by labels, summaries expanded to
// p50/p99/p999 + _sum + _count, scale applied.
func TestRegistryRender(t *testing.T) {
	reg := NewRegistry()
	// Register out of order to prove rendering sorts.
	reg.Gauge("z_ratio", "", "a ratio", func() float64 { return 0.25 })
	c := reg.Counter("a_requests_total", `endpoint="search"`, "requests served")
	c.Add(41)
	c.Inc()
	c.Add(-10) // ignored
	h := &Histogram{}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	reg.Summary("m_latency_seconds", `endpoint="add"`, "latency", h, 1e-9)
	reg.Counter("a_requests_total", `endpoint="add"`, "requests served").Inc()

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got := b.String()
	want := strings.Join([]string{
		`# HELP a_requests_total requests served`,
		`# TYPE a_requests_total counter`,
		`a_requests_total{endpoint="add"} 1`,
		`a_requests_total{endpoint="search"} 42`,
		`# HELP m_latency_seconds latency`,
		`# TYPE m_latency_seconds summary`,
		`m_latency_seconds{endpoint="add",quantile="0.5"} 5.0175e-05`,
		`m_latency_seconds{endpoint="add",quantile="0.99"} 0.000100351`,
		`m_latency_seconds{endpoint="add",quantile="0.999"} 0.000100351`,
		`m_latency_seconds_sum{endpoint="add"} 0.005050000000000001`,
		`m_latency_seconds_count{endpoint="add"} 100`,
		`# HELP z_ratio a ratio`,
		`# TYPE z_ratio gauge`,
		`z_ratio 0.25`,
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryReuse checks that re-registering the same counter series
// returns the same underlying counter, and that a name registered under
// two types panics loudly instead of rendering garbage.
func TestRegistryReuse(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "", "")
	b := reg.Counter("x_total", "", "")
	if a != b {
		t.Fatalf("same series registered twice returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("aliased counter out of sync")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("conflicting type registration did not panic")
		}
	}()
	reg.Gauge("x_total", "", "", func() float64 { return 0 })
}
