package dataset

import (
	"testing"

	"repro/internal/graph"
)

func TestChemicalShape(t *testing.T) {
	db := Chemical(ChemConfig{N: 50, Seed: 1})
	if len(db) != 50 {
		t.Fatalf("got %d graphs, want 50", len(db))
	}
	for i, g := range db {
		if g.N() < 4 || g.N() > 22 {
			t.Errorf("graph %d has %d vertices, outside molecule range", i, g.N())
		}
		if !g.Connected() {
			t.Errorf("graph %d disconnected", i)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) > 5 {
				t.Errorf("graph %d vertex %d degree %d, molecules stay <= 5", i, v, g.Degree(v))
			}
		}
	}
}

func TestChemicalSizeBounds(t *testing.T) {
	db := Chemical(ChemConfig{N: 100, MinVertices: 10, MaxVertices: 20, Seed: 2})
	for i, g := range db {
		// Scaffolds are at least 3 vertices; growth targets [10,20] but a
		// saturated molecule may stop early — never above max+1 (one ring
		// closure adds no vertex).
		if g.N() > 20 {
			t.Errorf("graph %d has %d vertices > max 20", i, g.N())
		}
	}
}

func TestChemicalDeterministic(t *testing.T) {
	a := Chemical(ChemConfig{N: 10, Seed: 7})
	b := Chemical(ChemConfig{N: 10, Seed: 7})
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("same seed produced different graph %d", i)
		}
	}
	c := Chemical(ChemConfig{N: 10, Seed: 8})
	same := true
	for i := range a {
		if a[i].String() != c[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical databases")
	}
}

func TestChemicalLabelSkew(t *testing.T) {
	db := Chemical(ChemConfig{N: 200, Seed: 3})
	counts := map[graph.Label]int{}
	total := 0
	for _, g := range db {
		vh, _ := g.LabelHistogram()
		for l, c := range vh {
			counts[l] += c
			total += c
		}
	}
	carbonFrac := float64(counts[Carbon]) / float64(total)
	if carbonFrac < 0.5 {
		t.Errorf("carbon fraction %v, want organic-like dominance >= 0.5", carbonFrac)
	}
}

func TestSyntheticShape(t *testing.T) {
	db := Synthetic(SynthConfig{N: 60, AvgEdges: 20, Labels: 20, Density: 0.2, Seed: 4})
	if len(db) != 60 {
		t.Fatalf("got %d graphs, want 60", len(db))
	}
	sumEdges := 0
	for i, g := range db {
		if !g.Connected() {
			t.Errorf("graph %d disconnected", i)
		}
		sumEdges += g.M()
	}
	avg := float64(sumEdges) / float64(len(db))
	if avg < 15 || avg > 25 {
		t.Errorf("average edges %v, want ≈20", avg)
	}
}

func TestSyntheticDensity(t *testing.T) {
	for _, density := range []float64{0.1, 0.2, 0.3} {
		db := Synthetic(SynthConfig{N: 80, AvgEdges: 20, Density: density, Seed: 5})
		sum := 0.0
		for _, g := range db {
			v := float64(g.N())
			sum += 2 * float64(g.M()) / (v * (v - 1))
		}
		avg := sum / float64(len(db))
		if avg < density*0.7 || avg > density*1.4 {
			t.Errorf("target density %v, measured %v", density, avg)
		}
	}
}

func TestSyntheticVariesSize(t *testing.T) {
	small := Synthetic(SynthConfig{N: 40, AvgEdges: 12, Density: 0.2, Seed: 6})
	large := Synthetic(SynthConfig{N: 40, AvgEdges: 20, Density: 0.2, Seed: 6})
	sumS, sumL := 0, 0
	for i := range small {
		sumS += small[i].M()
		sumL += large[i].M()
	}
	if sumS >= sumL {
		t.Errorf("AvgEdges=12 produced more edges (%d) than AvgEdges=20 (%d)", sumS, sumL)
	}
}

func TestSyntheticLabelCount(t *testing.T) {
	db := Synthetic(SynthConfig{N: 50, Labels: 5, Seed: 7})
	seen := map[graph.Label]bool{}
	for _, g := range db {
		vh, _ := g.LabelHistogram()
		for l := range vh {
			seen[l] = true
			if int(l) >= 5 {
				t.Fatalf("label %d outside [0,5)", l)
			}
		}
	}
	if len(seen) < 4 {
		t.Errorf("only %d of 5 labels used across 50 graphs", len(seen))
	}
}
