package dataset

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// SynthConfig configures the GraphGen-like synthetic generator with the
// three parameters the paper varies (Section 6): average edge count,
// number of distinct labels, and average density.
type SynthConfig struct {
	// N is the number of graphs.
	N int
	// AvgEdges is the average number of edges per graph; zero means 20
	// (the paper's default).
	AvgEdges int
	// Labels is the number of distinct vertex labels; zero means 20.
	Labels int
	// EdgeLabels is the number of distinct edge labels; zero means 4.
	EdgeLabels int
	// Density is the average graph density 2|E|/(|V|(|V|−1)); zero means
	// 0.2 (the paper's default).
	Density float64
	// Seed drives all randomness.
	Seed int64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.AvgEdges == 0 {
		c.AvgEdges = 20
	}
	if c.Labels == 0 {
		c.Labels = 20
	}
	if c.EdgeLabels == 0 {
		c.EdgeLabels = 4
	}
	if c.Density == 0 {
		c.Density = 0.2
	}
	return c
}

// Synthetic generates cfg.N random connected labeled graphs. Each graph's
// edge count is drawn within ±25% of AvgEdges; the vertex count is derived
// from the target density so that 2e/(v(v−1)) ≈ Density; connectivity is
// ensured with a random spanning tree before the remaining edges are
// placed uniformly, mirroring GraphGen's behaviour.
func Synthetic(cfg SynthConfig) []*graph.Graph {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*graph.Graph, cfg.N)
	for i := range out {
		out[i] = synthGraph(r, cfg)
	}
	return out
}

func synthGraph(r *rand.Rand, cfg SynthConfig) *graph.Graph {
	e := cfg.AvgEdges
	span := e / 4
	if span > 0 {
		e += r.Intn(2*span+1) - span
	}
	if e < 1 {
		e = 1
	}
	// Solve 2e/(v(v-1)) = density for v.
	v := int(math.Round((1 + math.Sqrt(1+8*float64(e)/cfg.Density)) / 2))
	if v < 2 {
		v = 2
	}
	if e < v-1 {
		e = v - 1 // connectivity floor
	}
	if max := v * (v - 1) / 2; e > max {
		e = max
	}
	g := &graph.Graph{}
	for i := 0; i < v; i++ {
		g.AddVertex(graph.Label(r.Intn(cfg.Labels)))
	}
	// Random spanning tree.
	perm := r.Perm(v)
	for i := 1; i < v; i++ {
		g.MustAddEdge(perm[r.Intn(i)], perm[i], graph.Label(r.Intn(cfg.EdgeLabels)))
	}
	for g.M() < e {
		a, b := r.Intn(v), r.Intn(v)
		if a != b && !g.HasEdge(a, b) {
			g.MustAddEdge(a, b, graph.Label(r.Intn(cfg.EdgeLabels)))
		}
	}
	return g
}
