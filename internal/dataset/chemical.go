// Package dataset generates the two workloads of the paper's evaluation:
// a chemical-compound-like database standing in for the PubChem extract
// (Section 6, "real dataset": 10–20 vertices per graph) and a GraphGen-like
// synthetic database with controllable average edge count, label count and
// density.
//
// Substitution note (see DESIGN.md §3): the original PubChem files are not
// available offline, so Chemical synthesizes organic-molecule-like labeled
// graphs with the properties the pipeline actually consumes — small
// skewed-label graphs with scaffold-induced cluster structure. All
// generators are deterministic in their seed.
package dataset

import (
	"math/rand"

	"repro/internal/graph"
)

// Element labels for the chemical generator, ordered by organic abundance.
const (
	Carbon graph.Label = iota
	Oxygen
	Nitrogen
	Sulfur
	Phosphorus
	Chlorine
	Fluorine
	Bromine
)

// Bond labels.
const (
	Single graph.Label = iota
	Double
	Triple
)

// elementDist is the cumulative sampling distribution over elements for
// branch atoms (carbon-dominated, like organic chemistry).
var elementDist = []struct {
	l graph.Label
	w float64
}{
	{Carbon, 0.68},
	{Oxygen, 0.12},
	{Nitrogen, 0.09},
	{Sulfur, 0.04},
	{Phosphorus, 0.02},
	{Chlorine, 0.02},
	{Fluorine, 0.02},
	{Bromine, 0.01},
}

func sampleElement(r *rand.Rand) graph.Label {
	x := r.Float64()
	acc := 0.0
	for _, e := range elementDist {
		acc += e.w
		if x < acc {
			return e.l
		}
	}
	return Carbon
}

func sampleBond(r *rand.Rand) graph.Label {
	switch x := r.Float64(); {
	case x < 0.80:
		return Single
	case x < 0.95:
		return Double
	default:
		return Triple
	}
}

// ChemConfig configures the chemical-compound generator.
type ChemConfig struct {
	// N is the number of graphs.
	N int
	// MinVertices and MaxVertices bound graph sizes; zero means the
	// paper's 10–20.
	MinVertices, MaxVertices int
	// Scaffolds is the number of distinct ring-system templates molecules
	// are grown from; it controls the cluster structure. Zero means 8.
	Scaffolds int
	// ScaffoldOffset rotates the template family the scaffolds are drawn
	// from, so two generators with Scaffolds=1 and different offsets
	// produce structurally distinct compound families.
	ScaffoldOffset int
	// Seed drives all randomness.
	Seed int64
}

func (c ChemConfig) withDefaults() ChemConfig {
	if c.MinVertices == 0 {
		c.MinVertices = 10
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 20
	}
	if c.Scaffolds == 0 {
		c.Scaffolds = 8
	}
	return c
}

// Chemical generates cfg.N organic-molecule-like labeled graphs. Each
// molecule grows from one of a fixed set of scaffold ring systems by
// attaching tree-like substituents, so molecules sharing a scaffold form a
// natural similarity cluster (like compound families in PubChem).
func Chemical(cfg ChemConfig) []*graph.Graph {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	scaffolds := makeScaffolds(r, cfg.Scaffolds, cfg.ScaffoldOffset)
	out := make([]*graph.Graph, cfg.N)
	for i := range out {
		out[i] = growMolecule(r, scaffolds[r.Intn(len(scaffolds))], cfg)
	}
	return out
}

// scaffold is a template ring system molecules grow from.
type scaffold struct {
	g *graph.Graph
}

// makeScaffolds builds k distinct ring systems: single rings of size 5–6
// with varying heteroatom substitutions and bond patterns, plus fused
// bicyclic systems for larger k.
func makeScaffolds(r *rand.Rand, k, offset int) []scaffold {
	out := make([]scaffold, 0, k)
	for len(out) < k {
		g := &graph.Graph{}
		switch (len(out) + offset) % 4 {
		case 0: // benzene-like hexagon with alternating double bonds
			ring(g, 6, r, true)
		case 1: // pentagon with one heteroatom
			ring(g, 5, r, false)
		case 2: // fused bicyclic (naphthalene-like): hexagon + shared edge
			ring(g, 6, r, true)
			a, b := 0, 1
			c := g.AddVertex(Carbon)
			d := g.AddVertex(Carbon)
			e := g.AddVertex(sampleElement(r))
			f := g.AddVertex(Carbon)
			g.MustAddEdge(a, c, Single)
			g.MustAddEdge(c, d, Double)
			g.MustAddEdge(d, e, Single)
			g.MustAddEdge(e, f, Single)
			g.MustAddEdge(f, b, Double)
		case 3: // chain scaffold with a branching heteroatom core
			v0 := g.AddVertex(sampleElement(r))
			v1 := g.AddVertex(Carbon)
			v2 := g.AddVertex(Carbon)
			v3 := g.AddVertex(Oxygen)
			g.MustAddEdge(v0, v1, sampleBond(r))
			g.MustAddEdge(v1, v2, Single)
			g.MustAddEdge(v2, v3, Double)
		}
		out = append(out, scaffold{g: g})
	}
	return out
}

// ring appends a cycle of size n to g. When aromatic, bonds alternate
// single/double and atoms are mostly carbon; otherwise one heteroatom is
// inserted.
func ring(g *graph.Graph, n int, r *rand.Rand, aromatic bool) {
	base := g.N()
	hetero := r.Intn(n)
	for i := 0; i < n; i++ {
		l := Carbon
		if !aromatic && i == hetero {
			l = sampleElement(r)
		}
		g.AddVertex(l)
	}
	for i := 0; i < n; i++ {
		b := Single
		if aromatic && i%2 == 0 {
			b = Double
		}
		g.MustAddEdge(base+i, base+(i+1)%n, b)
	}
}

// growMolecule copies the scaffold and attaches random substituents until
// the target size is reached, occasionally closing an extra ring.
func growMolecule(r *rand.Rand, s scaffold, cfg ChemConfig) *graph.Graph {
	g := s.g.Clone()
	target := cfg.MinVertices + r.Intn(cfg.MaxVertices-cfg.MinVertices+1)
	for g.N() < target {
		// Attach a new atom to a random existing atom with spare valence
		// (degree < 4 keeps it molecule-like).
		for tries := 0; tries < 8; tries++ {
			at := r.Intn(g.N())
			if g.Degree(at) >= 4 {
				continue
			}
			v := g.AddVertex(sampleElement(r))
			g.MustAddEdge(at, v, sampleBond(r))
			break
		}
		// Guard against pathological stalls.
		if allSaturated(g) {
			break
		}
	}
	// Occasionally close one extra ring for structural variety.
	if r.Float64() < 0.3 && g.N() >= 5 {
		for tries := 0; tries < 10; tries++ {
			u, v := r.Intn(g.N()), r.Intn(g.N())
			if u != v && !g.HasEdge(u, v) && g.Degree(u) < 4 && g.Degree(v) < 4 {
				g.MustAddEdge(u, v, Single)
				break
			}
		}
	}
	return g
}

func allSaturated(g *graph.Graph) bool {
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) < 4 {
			return false
		}
	}
	return true
}
