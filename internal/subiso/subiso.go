// Package subiso implements subgraph isomorphism testing for undirected
// labeled graphs in the style of the VF2 algorithm of Cordella et al.
// (IEEE TPAMI 2004), the matcher the paper uses for feature matching
// (Section 6, Exp-4).
//
// The semantics are (non-induced) subgraph isomorphism: pattern p is a
// subgraph of target g if there is an injective vertex mapping that
// preserves vertex labels and maps every pattern edge to a target edge with
// the same label. Extra target edges between mapped vertices are allowed,
// matching the containment relation f ⊆ g used for feature vectors.
package subiso

import (
	"sort"

	"repro/internal/graph"
)

// Contains reports whether pattern is subgraph-isomorphic to target.
func Contains(target, pattern *graph.Graph) bool {
	m := newMatcher(target, pattern)
	return m.match(0)
}

// FindMapping returns one injective mapping pattern→target witnessing
// subgraph isomorphism, or nil if none exists. mapping[i] is the target
// vertex matched to pattern vertex i.
func FindMapping(target, pattern *graph.Graph) []int {
	m := newMatcher(target, pattern)
	if !m.match(0) {
		return nil
	}
	return m.snapshot
}

// CountMappings returns the number of distinct injective mappings of
// pattern into target, up to the given limit (0 means unlimited). It is
// used by tests comparing against brute force and by the occurrence-count
// vector ablation.
func CountMappings(target, pattern *graph.Graph, limit int) int {
	m := newMatcher(target, pattern)
	m.countLimit = limit
	m.counting = true
	m.match(0)
	return m.found
}

// matcher carries the VF2 search state. Pattern vertices are matched in a
// fixed connectivity-aware order; candidate target vertices are filtered by
// label, degree, and adjacency consistency with already-mapped vertices.
type matcher struct {
	t, p       *graph.Graph
	order      []int // pattern vertices in match order
	anchor     []int // anchor[i]: index into order of an already-matched neighbour of order[i], or -1
	anchorLbl  []graph.Label
	core       []int  // pattern vertex -> target vertex (-1 unmatched)
	used       []bool // target vertex used
	counting   bool
	countLimit int
	found      int
	snapshot   []int // core copied at the first full match
}

func newMatcher(target, pattern *graph.Graph) *matcher {
	m := &matcher{
		t:    target,
		p:    pattern,
		core: make([]int, pattern.N()),
		used: make([]bool, target.N()),
	}
	for i := range m.core {
		m.core[i] = -1
	}
	m.buildOrder()
	return m
}

// buildOrder computes a match order that keeps the partial pattern
// connected where possible (BFS from the highest-degree vertex of each
// component), which lets each new vertex be constrained by an already
// matched neighbour (its anchor).
func (m *matcher) buildOrder() {
	n := m.p.N()
	m.order = make([]int, 0, n)
	m.anchor = make([]int, n)
	m.anchorLbl = make([]graph.Label, n)
	placed := make([]bool, n)
	posInOrder := make([]int, n)

	for len(m.order) < n {
		// Pick the unplaced vertex with the highest degree as the next root.
		root, best := -1, -1
		for v := 0; v < n; v++ {
			if !placed[v] && m.p.Degree(v) > best {
				root, best = v, m.p.Degree(v)
			}
		}
		m.anchor[len(m.order)] = -1
		posInOrder[root] = len(m.order)
		m.order = append(m.order, root)
		placed[root] = true
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			// Sort neighbours by descending degree for tighter pruning.
			hs := append([]graph.Half(nil), m.p.Neighbors(v)...)
			sort.Slice(hs, func(i, j int) bool {
				return m.p.Degree(hs[i].To) > m.p.Degree(hs[j].To)
			})
			for _, h := range hs {
				if placed[h.To] {
					continue
				}
				idx := len(m.order)
				m.anchor[idx] = posInOrder[v]
				m.anchorLbl[idx] = h.Label
				posInOrder[h.To] = idx
				m.order = append(m.order, h.To)
				placed[h.To] = true
				queue = append(queue, h.To)
			}
		}
	}
}

// match extends the partial mapping at position depth in the order.
// It returns true when a full mapping is found (and counting is off).
func (m *matcher) match(depth int) bool {
	if depth == len(m.order) {
		m.found++
		if m.counting {
			return m.countLimit > 0 && m.found >= m.countLimit
		}
		m.snapshot = append([]int(nil), m.core...)
		return true
	}
	pv := m.order[depth]
	if a := m.anchor[depth]; a >= 0 {
		// Candidates are neighbours of the matched anchor with the right
		// edge label.
		tAnchor := m.core[m.order[a]]
		for _, h := range m.t.Neighbors(tAnchor) {
			if h.Label != m.anchorLbl[depth] || m.used[h.To] {
				continue
			}
			if m.feasible(pv, h.To) {
				if m.assign(pv, h.To, depth) {
					return true
				}
			}
		}
		return false
	}
	// Root of a new component: try every target vertex.
	for tv := 0; tv < m.t.N(); tv++ {
		if m.used[tv] {
			continue
		}
		if m.feasible(pv, tv) {
			if m.assign(pv, tv, depth) {
				return true
			}
		}
	}
	return false
}

func (m *matcher) assign(pv, tv, depth int) bool {
	m.core[pv] = tv
	m.used[tv] = true
	done := m.match(depth + 1)
	m.core[pv] = -1
	m.used[tv] = false
	return done
}

// feasible checks label, degree, and consistency with every already-mapped
// pattern neighbour of pv.
func (m *matcher) feasible(pv, tv int) bool {
	if m.p.VertexLabel(pv) != m.t.VertexLabel(tv) {
		return false
	}
	if m.p.Degree(pv) > m.t.Degree(tv) {
		return false
	}
	for _, h := range m.p.Neighbors(pv) {
		mapped := m.core[h.To]
		if mapped < 0 {
			continue
		}
		l, ok := m.t.EdgeLabel(tv, mapped)
		if !ok || l != h.Label {
			return false
		}
	}
	return true
}

// Isomorphic reports whether a and b are isomorphic labeled graphs.
// It requires equal sizes plus containment both ways being unnecessary:
// with equal vertex and edge counts, a single non-induced embedding of a
// into b is automatically edge-surjective, hence an isomorphism.
func Isomorphic(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	if a.Signature() != b.Signature() {
		return false
	}
	return Contains(b, a)
}
