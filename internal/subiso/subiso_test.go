package subiso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// bruteContains is an independent reference: try every injective mapping
// of pattern vertices into target vertices.
func bruteContains(target, pattern *graph.Graph) bool {
	n, k := target.N(), pattern.N()
	if k > n {
		return false
	}
	assign := make([]int, k)
	used := make([]bool, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == k {
			return true
		}
		for tv := 0; tv < n; tv++ {
			if used[tv] || target.VertexLabel(tv) != pattern.VertexLabel(i) {
				continue
			}
			ok := true
			for _, h := range pattern.Neighbors(i) {
				if h.To < i {
					l, has := target.EdgeLabel(tv, assign[h.To])
					if !has || l != h.Label {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			assign[i] = tv
			used[tv] = true
			if rec(i + 1) {
				return true
			}
			used[tv] = false
		}
		return false
	}
	return rec(0)
}

func randomGraph(r *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	g := &graph.Graph{}
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(r.Intn(v), v, graph.Label(r.Intn(labels)))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, graph.Label(r.Intn(labels)))
		}
	}
	return g
}

func TestContainsAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		target := randomGraph(r, 4+r.Intn(5), r.Intn(6), 2)
		pattern := randomGraph(r, 2+r.Intn(4), r.Intn(3), 2)
		return Contains(target, pattern) == bruteContains(target, pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContainsSelf(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 3+r.Intn(6), r.Intn(5), 3)
		return Contains(g, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestContainsSubgraphOfSelf(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 4+r.Intn(6), r.Intn(5), 3)
		// Take an induced subgraph on a random vertex subset.
		var vs []int
		for v := 0; v < g.N(); v++ {
			if r.Intn(2) == 0 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			vs = []int{0}
		}
		sub, _ := g.InducedSubgraph(vs)
		return Contains(g, sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFindMappingWitness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		target := randomGraph(r, 5+r.Intn(4), r.Intn(6), 2)
		pattern := randomGraph(r, 2+r.Intn(3), r.Intn(2), 2)
		m := FindMapping(target, pattern)
		if m == nil {
			return !bruteContains(target, pattern)
		}
		// Verify the mapping is a genuine witness.
		seen := map[int]bool{}
		for pv, tv := range m {
			if tv < 0 || tv >= target.N() || seen[tv] {
				return false
			}
			seen[tv] = true
			if target.VertexLabel(tv) != pattern.VertexLabel(pv) {
				return false
			}
		}
		for _, e := range pattern.Edges() {
			l, ok := target.EdgeLabel(m[e.U], m[e.V])
			if !ok || l != e.Label {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLabelMismatchFails(t *testing.T) {
	target := graph.New(2)
	target.MustAddEdge(0, 1, 5)
	pattern := &graph.Graph{}
	pattern.AddVertex(1) // label differs from target's 0
	if Contains(target, pattern) {
		t.Errorf("pattern with unseen vertex label reported contained")
	}
}

func TestEdgeLabelMismatchFails(t *testing.T) {
	target := graph.New(2)
	target.MustAddEdge(0, 1, 5)
	pattern := graph.New(2)
	pattern.MustAddEdge(0, 1, 6)
	if Contains(target, pattern) {
		t.Errorf("pattern with wrong edge label reported contained")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// Pattern with two isolated labeled vertices; target must provide both.
	target := &graph.Graph{}
	target.AddVertex(1)
	target.AddVertex(2)
	pattern := &graph.Graph{}
	pattern.AddVertex(1)
	pattern.AddVertex(2)
	if !Contains(target, pattern) {
		t.Errorf("disconnected pattern should match")
	}
	pattern2 := &graph.Graph{}
	pattern2.AddVertex(1)
	pattern2.AddVertex(1)
	if Contains(target, pattern2) {
		t.Errorf("needs two label-1 vertices, target has one")
	}
}

func TestIsomorphic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		g := randomGraph(r, 3+r.Intn(6), r.Intn(5), 3)
		perm := r.Perm(g.N())
		inv := make([]int, g.N())
		for newID, oldID := range perm {
			inv[oldID] = newID
		}
		h := &graph.Graph{}
		lbl := make([]graph.Label, g.N())
		for old := 0; old < g.N(); old++ {
			lbl[inv[old]] = g.VertexLabel(old)
		}
		for _, l := range lbl {
			h.AddVertex(l)
		}
		for _, e := range g.Edges() {
			h.MustAddEdge(inv[e.U], inv[e.V], e.Label)
		}
		if !Isomorphic(g, h) {
			t.Fatalf("permuted copy not isomorphic (seed iter %d)", i)
		}
	}
}

func TestCountMappings(t *testing.T) {
	// Path a-b with labels (0)-(0), edge label 0; target triangle of
	// label-0 vertices: each ordered pair of adjacent vertices is a
	// mapping: 6 mappings.
	target := graph.New(3)
	target.MustAddEdge(0, 1, 0)
	target.MustAddEdge(1, 2, 0)
	target.MustAddEdge(0, 2, 0)
	pattern := graph.New(2)
	pattern.MustAddEdge(0, 1, 0)
	if got := CountMappings(target, pattern, 0); got != 6 {
		t.Errorf("CountMappings = %d, want 6", got)
	}
	if got := CountMappings(target, pattern, 4); got != 4 {
		t.Errorf("CountMappings limited = %d, want 4", got)
	}
}
