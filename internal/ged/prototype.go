package ged

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// PrototypeEmbedding is the vector-space embedding of Riesen et al. [9]:
// pick k prototype graphs from the database and map every graph to the
// k-vector of its edit distances to the prototypes. It is the main
// related-work alternative to the paper's subgraph dimensions; its flaw —
// reproduced by our experiments — is that mapping a query costs k GED
// computations, so the online query is barely cheaper than exact search.
type PrototypeEmbedding struct {
	Prototypes []*graph.Graph
	Costs      Costs
	// Budget bounds each GED branch-and-bound; 0 = exact.
	Budget int64
}

// SelectPrototypes picks k spanning prototypes: the first is random, each
// subsequent prototype is the graph farthest (by approximate GED) from the
// already-chosen set — the "spanning" strategy of Riesen et al.
func SelectPrototypes(db []*graph.Graph, k int, c Costs, seed int64) *PrototypeEmbedding {
	if k > len(db) {
		k = len(db)
	}
	rng := rand.New(rand.NewSource(seed))
	chosen := []int{rng.Intn(len(db))}
	minDist := make([]float64, len(db))
	for i := range minDist {
		minDist[i] = Approximate(db[i], db[chosen[0]], c)
	}
	for len(chosen) < k {
		best, bestD := -1, -1.0
		for i := range db {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		chosen = append(chosen, best)
		for i := range db {
			if d := Approximate(db[i], db[best], c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Ints(chosen)
	protos := make([]*graph.Graph, len(chosen))
	for i, id := range chosen {
		protos[i] = db[id]
	}
	return &PrototypeEmbedding{Prototypes: protos, Costs: c}
}

// Embed maps g to its prototype-distance vector.
func (pe *PrototypeEmbedding) Embed(g *graph.Graph) []float64 {
	out := make([]float64, len(pe.Prototypes))
	for i, p := range pe.Prototypes {
		if pe.Budget > 0 {
			out[i] = Exact(g, p, Options{Costs: pe.Costs, MaxNodes: pe.Budget})
		} else {
			out[i] = Approximate(g, p, pe.Costs)
		}
	}
	return out
}

// EmbedAll maps a whole database.
func (pe *PrototypeEmbedding) EmbedAll(db []*graph.Graph) [][]float64 {
	out := make([][]float64, len(db))
	for i, g := range db {
		out[i] = pe.Embed(g)
	}
	return out
}

// Distance is the Euclidean distance between embedded vectors.
func Distance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
