package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func randomGraph(r *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	g := &graph.Graph{}
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(r.Intn(v), v, graph.Label(r.Intn(labels)))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, graph.Label(r.Intn(labels)))
		}
	}
	return g
}

func TestExactSelfDistanceZero(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(5), r.Intn(3), 2)
		return Exact(g, g, Options{Costs: DefaultCosts()}) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 2+r.Intn(4), r.Intn(2), 2)
		b := randomGraph(r, 2+r.Intn(4), r.Intn(2), 2)
		opt := Options{Costs: DefaultCosts()}
		return math.Abs(Exact(a, b, opt)-Exact(b, a, opt)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 2+r.Intn(3), r.Intn(2), 2)
		b := randomGraph(r, 2+r.Intn(3), r.Intn(2), 2)
		c := randomGraph(r, 2+r.Intn(3), r.Intn(2), 2)
		opt := Options{Costs: DefaultCosts()}
		return Exact(a, c, opt) <= Exact(a, b, opt)+Exact(b, c, opt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExactKnownValues(t *testing.T) {
	c := DefaultCosts()
	// Single vertex label 0 vs single vertex label 1: one substitution.
	a := &graph.Graph{}
	a.AddVertex(0)
	b := &graph.Graph{}
	b.AddVertex(1)
	if got := Exact(a, b, Options{Costs: c}); got != 1 {
		t.Errorf("relabel cost = %v, want 1", got)
	}
	// Edge vs no edge (same vertices): one edge deletion.
	a2 := graph.New(2)
	a2.MustAddEdge(0, 1, 0)
	b2 := graph.New(2)
	if got := Exact(a2, b2, Options{Costs: c}); got != 1 {
		t.Errorf("edge deletion cost = %v, want 1", got)
	}
	// Empty vs two isolated vertices: two insertions.
	if got := Exact(&graph.Graph{}, graph.New(2), Options{Costs: c}); got != 2 {
		t.Errorf("two insertions = %v, want 2", got)
	}
}

func TestApproximateUpperBoundsExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomGraph(r, 2+r.Intn(4), r.Intn(3), 2)
		b := randomGraph(r, 2+r.Intn(4), r.Intn(3), 2)
		c := DefaultCosts()
		approx := Approximate(a, b, c)
		exact := Exact(a, b, Options{Costs: c})
		return approx >= exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBudgetedNeverBelowExact(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		a := randomGraph(r, 5, 3, 2)
		b := randomGraph(r, 5, 3, 2)
		c := DefaultCosts()
		exact := Exact(a, b, Options{Costs: c})
		budgeted := Exact(a, b, Options{Costs: c, MaxNodes: 30})
		if budgeted < exact-1e-9 {
			t.Fatalf("budgeted GED %v below exact %v", budgeted, exact)
		}
	}
}

func TestHungarianSimple(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match := hungarian(cost)
	total := 0.0
	for i, j := range match {
		total += cost[i][j]
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("assignment cost %v, want 5 (match %v)", total, match)
	}
}

func TestPrototypeEmbedding(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := make([]*graph.Graph, 12)
	for i := range db {
		db[i] = randomGraph(r, 4+r.Intn(3), r.Intn(3), 2)
	}
	pe := SelectPrototypes(db, 4, DefaultCosts(), 1)
	if len(pe.Prototypes) != 4 {
		t.Fatalf("got %d prototypes, want 4", len(pe.Prototypes))
	}
	vecs := pe.EmbedAll(db)
	for i, v := range vecs {
		if len(v) != 4 {
			t.Fatalf("embedding %d has dim %d", i, len(v))
		}
		for _, d := range v {
			if d < 0 {
				t.Fatalf("negative GED in embedding")
			}
		}
	}
	// A prototype's own embedding has a zero coordinate.
	pv := pe.Embed(pe.Prototypes[0])
	min := math.Inf(1)
	for _, d := range pv {
		if d < min {
			min = d
		}
	}
	if min != 0 {
		t.Errorf("prototype self-embedding min coordinate %v, want 0", min)
	}
	if Distance([]float64{0, 3}, []float64{4, 0}) != 5 {
		t.Errorf("Distance wrong")
	}
}
