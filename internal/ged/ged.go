// Package ged implements graph edit distance (GED), the other costly
// graph operation the paper names in its problem statement, together with
// the bipartite-assignment approximation of Riesen and Bunke. It powers
// the prototype-embedding baseline of the related work (Riesen et al. [9],
// Bunke and Riesen [10]): map each graph to its vector of edit distances
// from k prototype graphs. The paper argues that approach cannot reduce
// online cost because every query still pays k GED computations; the
// repository reproduces that comparison quantitatively (see the
// experiments package and EXPERIMENTS.md).
package ged

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// Costs configures the edit operations. The zero value is invalid; use
// DefaultCosts for the standard unit-cost model.
type Costs struct {
	// VertexSub is the cost of relabeling a vertex (applied when labels
	// differ; matching labels cost 0).
	VertexSub float64
	// VertexIns is the cost of inserting or deleting a vertex.
	VertexIns float64
	// EdgeSub is the cost of relabeling an edge.
	EdgeSub float64
	// EdgeIns is the cost of inserting or deleting an edge.
	EdgeIns float64
}

// DefaultCosts is the unit-cost model common in the GED literature.
func DefaultCosts() Costs {
	return Costs{VertexSub: 1, VertexIns: 1, EdgeSub: 1, EdgeIns: 1}
}

// Options bounds the exact search.
type Options struct {
	Costs Costs
	// MaxNodes caps the branch-and-bound tree; 0 means unlimited. When
	// exceeded, the best (upper-bound) distance found so far is returned.
	MaxNodes int64
}

// Exact computes the graph edit distance between a and b by
// branch-and-bound over vertex assignments (each vertex of a maps to a
// vertex of b or is deleted; unassigned b vertices are inserted; edge
// costs follow from the vertex mapping).
func Exact(a, b *graph.Graph, opt Options) float64 {
	s := &solver{a: a, b: b, c: opt.Costs, maxNodes: opt.MaxNodes}
	return s.run()
}

type solver struct {
	a, b     *graph.Graph
	c        Costs
	maxNodes int64

	assign   []int // a-vertex -> b-vertex or -1 (deleted)
	used     []bool
	best     float64
	nodes    int64
	exceeded bool
}

func (s *solver) run() float64 {
	s.assign = make([]int, s.a.N())
	s.used = make([]bool, s.b.N())
	for i := range s.assign {
		s.assign[i] = -1
	}
	// Start from the bipartite approximation as the incumbent: it is an
	// upper bound, so branch-and-bound only improves it.
	s.best = Approximate(s.a, s.b, s.c)
	s.search(0, 0)
	return s.best
}

// search assigns a-vertex v with accumulated cost so far.
func (s *solver) search(v int, cost float64) {
	s.nodes++
	if s.maxNodes > 0 && s.nodes > s.maxNodes {
		s.exceeded = true
		return
	}
	if cost >= s.best {
		return
	}
	if v == s.a.N() {
		// Remaining b vertices are insertions, with their edges.
		total := cost
		for w := 0; w < s.b.N(); w++ {
			if !s.used[w] {
				total += s.c.VertexIns
			}
		}
		total += s.remainingEdgeInsertions()
		if total < s.best {
			s.best = total
		}
		return
	}
	// Try mapping v to each unused b vertex.
	for w := 0; w < s.b.N(); w++ {
		if s.used[w] {
			continue
		}
		step := 0.0
		if s.a.VertexLabel(v) != s.b.VertexLabel(w) {
			step += s.c.VertexSub
		}
		step += s.edgeDelta(v, w)
		s.assign[v] = w
		s.used[w] = true
		s.search(v+1, cost+step)
		s.used[w] = false
		s.assign[v] = -1
		if s.exceeded {
			return
		}
	}
	// Delete v (and its edges to already-processed vertices).
	del := s.c.VertexIns
	for _, h := range s.a.Neighbors(v) {
		if h.To < v {
			del += s.c.EdgeIns
		}
	}
	s.search(v+1, cost+del)
}

// edgeDelta is the edge cost incurred by mapping v→w, considering edges
// between v and already-processed a-vertices.
func (s *solver) edgeDelta(v, w int) float64 {
	d := 0.0
	for u := 0; u < v; u++ {
		la, hasA := s.a.EdgeLabel(v, u)
		mu := s.assign[u]
		var lb graph.Label
		hasB := false
		if mu >= 0 {
			lb, hasB = s.b.EdgeLabel(w, mu)
		}
		switch {
		case hasA && hasB:
			if la != lb {
				d += s.c.EdgeSub
			}
		case hasA != hasB:
			// Covers both a-edge deletion (including edges to deleted
			// a-vertices, where hasB stays false) and b-edge insertion.
			d += s.c.EdgeIns
		}
	}
	return d
}

// remainingEdgeInsertions counts b edges with at least one unused endpoint
// (they must be inserted) once all a vertices are processed.
func (s *solver) remainingEdgeInsertions() float64 {
	d := 0.0
	for _, e := range s.b.Edges() {
		if !s.used[e.U] || !s.used[e.V] {
			d += s.c.EdgeIns
		}
	}
	return d
}

// Approximate is the Riesen–Bunke bipartite (assignment-based) upper
// bound: build the (n1+n2)×(n1+n2) cost matrix of vertex substitutions,
// deletions and insertions — each entry augmented with the local edge-cost
// estimate — solve the assignment problem optimally, and derive the edit
// cost implied by the resulting vertex mapping.
func Approximate(a, b *graph.Graph, c Costs) float64 {
	n1, n2 := a.N(), b.N()
	size := n1 + n2
	if size == 0 {
		return 0
	}
	const inf = math.MaxFloat64 / 4
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
	}
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			v := 0.0
			if a.VertexLabel(i) != b.VertexLabel(j) {
				v += c.VertexSub
			}
			v += localEdgeCost(a, i, b, j, c)
			cost[i][j] = v
		}
		for j := n2; j < size; j++ {
			if j-n2 == i {
				cost[i][j] = c.VertexIns + float64(a.Degree(i))*c.EdgeIns/2
			} else {
				cost[i][j] = inf
			}
		}
	}
	for i := n1; i < size; i++ {
		for j := 0; j < n2; j++ {
			if i-n1 == j {
				cost[i][j] = c.VertexIns + float64(b.Degree(j))*c.EdgeIns/2
			} else {
				cost[i][j] = inf
			}
		}
		for j := n2; j < size; j++ {
			cost[i][j] = 0
		}
	}
	match := hungarian(cost)
	// Translate the assignment into an actual edit path cost.
	assign := make([]int, n1)
	for i := 0; i < n1; i++ {
		if match[i] < n2 {
			assign[i] = match[i]
		} else {
			assign[i] = -1
		}
	}
	return editCost(a, b, assign, c)
}

// localEdgeCost estimates the edge cost of substituting vertex i of a by
// vertex j of b from their incident label multisets.
func localEdgeCost(a *graph.Graph, i int, b *graph.Graph, j int, c Costs) float64 {
	la := incidentLabels(a, i)
	lb := incidentLabels(b, j)
	// Greedy multiset matching on sorted labels.
	x, y := 0, 0
	matched := 0
	for x < len(la) && y < len(lb) {
		switch {
		case la[x] == lb[y]:
			matched++
			x++
			y++
		case la[x] < lb[y]:
			x++
		default:
			y++
		}
	}
	unmatched := float64(len(la)+len(lb)-2*matched) * c.EdgeIns
	return unmatched / 2
}

func incidentLabels(g *graph.Graph, v int) []graph.Label {
	hs := g.Neighbors(v)
	out := make([]graph.Label, len(hs))
	for i, h := range hs {
		out[i] = h.Label
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// editCost computes the exact cost of the edit path implied by a full
// vertex assignment (a-vertex -> b-vertex or -1).
func editCost(a, b *graph.Graph, assign []int, c Costs) float64 {
	total := 0.0
	usedB := make([]bool, b.N())
	for i, j := range assign {
		if j < 0 {
			total += c.VertexIns
			continue
		}
		usedB[j] = true
		if a.VertexLabel(i) != b.VertexLabel(j) {
			total += c.VertexSub
		}
	}
	for _, w := range usedB {
		_ = w
	}
	for j := 0; j < b.N(); j++ {
		if !usedB[j] {
			total += c.VertexIns
		}
	}
	// Edge costs over all a edges and unmatched b edges.
	matchedB := map[[2]int]bool{}
	for _, e := range a.Edges() {
		ma, mb := assign[e.U], assign[e.V]
		if ma >= 0 && mb >= 0 {
			if lb, has := b.EdgeLabel(ma, mb); has {
				if lb != e.Label {
					total += c.EdgeSub
				}
				x, y := ma, mb
				if x > y {
					x, y = y, x
				}
				matchedB[[2]int{x, y}] = true
				continue
			}
		}
		total += c.EdgeIns // deleted edge
	}
	for _, e := range b.Edges() {
		if !matchedB[[2]int{e.U, e.V}] {
			total += c.EdgeIns // inserted edge
		}
	}
	return total
}

// hungarian solves the square assignment problem, returning match[i] = j.
// O(n^3) Jonker-style implementation with potentials.
func hungarian(cost [][]float64) []int {
	n := len(cost)
	const inf = math.MaxFloat64 / 2
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j (1-based)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	match := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			match[p[j]-1] = j - 1
		}
	}
	return match
}
