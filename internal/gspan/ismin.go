package gspan

import (
	"sort"

	"repro/internal/graph"
)

// isMin reports whether code is the minimal DFS code of the pattern it
// describes. gSpan prunes any search branch whose code is non-minimal,
// which guarantees each pattern is enumerated exactly once.
func isMin(code dfsCode) bool {
	if len(code) == 1 {
		return true
	}
	g := patternAsMineGraph(code)
	c := &minChecker{g: g, code: code}

	// Minimal first edge: the lexicographically smallest
	// (fromLabel, eLabel, toLabel) arc of the pattern itself.
	roots := map[rootKey]projected{}
	for v := range g.adj {
		for _, a := range g.adj[v] {
			if g.vlabel[a.from] > g.vlabel[a.to] {
				continue
			}
			k := rootKey{g.vlabel[a.from], a.label, g.vlabel[a.to]}
			roots[k] = append(roots[k], &pdfs{gid: 0, edge: a})
		}
	}
	var minKey rootKey
	first := true
	for k := range roots {
		if first || lessRootKey(k, minKey) {
			minKey, first = k, false
		}
	}
	d := dfs{from: 0, to: 1, fromLabel: minKey.fromLabel, eLabel: minKey.eLabel, toLabel: minKey.toLabel}
	if d != code[0] {
		return false
	}
	c.minCode = dfsCode{d}
	return c.project(roots[minKey])
}

func lessRootKey(a, b rootKey) bool {
	if a.fromLabel != b.fromLabel {
		return a.fromLabel < b.fromLabel
	}
	if a.eLabel != b.eLabel {
		return a.eLabel < b.eLabel
	}
	return a.toLabel < b.toLabel
}

// patternAsMineGraph converts a pattern code into the arc representation
// used by the extension helpers.
func patternAsMineGraph(code dfsCode) *mineGraph {
	pg := code.toGraph()
	return makeMineGraphs([]*graph.Graph{pg})[0]
}

// minChecker incrementally rebuilds the minimal DFS code of the pattern,
// comparing each step against the candidate code and failing fast on the
// first mismatch.
type minChecker struct {
	g       *mineGraph
	code    dfsCode // candidate being tested
	minCode dfsCode // minimal code built so far
}

func (c *minChecker) project(p projected) bool {
	rmpath := c.minCode.rightmostPath()
	maxtoc := c.minCode[rmpath[0]].to
	minLabel := c.code[0].fromLabel

	// Backward extensions: the most root-ward rightmost-path vertex that
	// admits one yields the minimal next edge.
	for i := len(rmpath) - 1; i >= 1; i-- {
		root := map[graph.Label]projected{}
		for _, cur := range p {
			h := buildHistory(cur)
			if e := getBackward(c.g, h.edges[rmpath[i]], h.edges[rmpath[0]], h); e != nil {
				root[e.label] = append(root[e.label], &pdfs{gid: 0, edge: e, prev: cur})
			}
		}
		if len(root) == 0 {
			continue
		}
		minE := minLabelKey(root)
		d := dfs{
			from: maxtoc, to: c.minCode[rmpath[i]].from,
			fromLabel: c.labelOf(maxtoc), eLabel: minE, toLabel: c.labelOf(c.minCode[rmpath[i]].from),
		}
		idx := len(c.minCode)
		if c.code[idx] != d {
			return false
		}
		c.minCode = append(c.minCode, d)
		if len(c.minCode) == len(c.code) {
			return true
		}
		return c.project(root[minE])
	}

	// Forward extensions: pure forward from the rightmost vertex is
	// minimal; otherwise walk up the rightmost path.
	type fkey struct {
		eLabel, toLabel graph.Label
	}
	root := map[fkey]projected{}
	newFrom := -1
	for _, cur := range p {
		h := buildHistory(cur)
		for _, e := range getForwardPure(c.g, h.edges[rmpath[0]], minLabel, h) {
			root[fkey{e.label, c.g.vlabel[e.to]}] = append(root[fkey{e.label, c.g.vlabel[e.to]}], &pdfs{gid: 0, edge: e, prev: cur})
		}
	}
	if len(root) > 0 {
		newFrom = maxtoc
	} else {
		for _, i := range rmpath {
			for _, cur := range p {
				h := buildHistory(cur)
				for _, e := range getForwardRmpath(c.g, h.edges[i], minLabel, h) {
					root[fkey{e.label, c.g.vlabel[e.to]}] = append(root[fkey{e.label, c.g.vlabel[e.to]}], &pdfs{gid: 0, edge: e, prev: cur})
				}
			}
			if len(root) > 0 {
				newFrom = c.minCode[i].from
				break
			}
		}
	}
	if len(root) == 0 {
		// Pattern fully covered; codes of equal length would have matched
		// already, so reaching here means the candidate has extra edges
		// the minimal growth cannot reach — impossible for valid input.
		return true
	}
	keys := make([]fkey, 0, len(root))
	for k := range root {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].eLabel != keys[j].eLabel {
			return keys[i].eLabel < keys[j].eLabel
		}
		return keys[i].toLabel < keys[j].toLabel
	})
	k := keys[0]
	d := dfs{
		from: newFrom, to: maxtoc + 1,
		fromLabel: c.labelOf(newFrom), eLabel: k.eLabel, toLabel: k.toLabel,
	}
	idx := len(c.minCode)
	if c.code[idx] != d {
		return false
	}
	c.minCode = append(c.minCode, d)
	if len(c.minCode) == len(c.code) {
		return true
	}
	return c.project(root[k])
}

// labelOf returns the label of minCode discovery vertex v. Discovery ids
// in minCode are its own numbering, distinct from the candidate code's, so
// the label must be read off the minCode entries rather than the pattern
// graph.
func (c *minChecker) labelOf(v int) graph.Label {
	for _, d := range c.minCode {
		if d.from == v {
			return d.fromLabel
		}
		if d.to == v {
			return d.toLabel
		}
	}
	panic("gspan: vertex not in minCode")
}

func minLabelKey(m map[graph.Label]projected) graph.Label {
	first := true
	var min graph.Label
	for k := range m {
		if first || k < min {
			min, first = k, false
		}
	}
	return min
}
