package gspan

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/subiso"
)

func randomGraph(r *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	g := &graph.Graph{}
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(r.Intn(v), v, graph.Label(r.Intn(labels)))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, graph.Label(r.Intn(labels)))
		}
	}
	return g
}

// bruteFrequent enumerates all connected subgraph patterns with up to
// maxEdges edges by breadth-first pattern growth with isomorphism dedup,
// counting support by subgraph isomorphism. Reference implementation for
// correctness only.
func bruteFrequent(db []*graph.Graph, minSup, maxEdges int) []*graph.Graph {
	support := func(p *graph.Graph) int {
		c := 0
		for _, g := range db {
			if subiso.Contains(g, p) {
				c++
			}
		}
		return c
	}
	var patterns []*graph.Graph
	seen := map[string][]*graph.Graph{} // signature -> patterns (for iso dedup)
	isNew := func(p *graph.Graph) bool {
		sig := p.Signature()
		for _, q := range seen[sig] {
			if subiso.Isomorphic(p, q) {
				return false
			}
		}
		seen[sig] = append(seen[sig], p)
		return true
	}

	// Level 1: single edges.
	var frontier []*graph.Graph
	for _, g := range db {
		for _, e := range g.Edges() {
			p := &graph.Graph{}
			a := p.AddVertex(g.VertexLabel(e.U))
			b := p.AddVertex(g.VertexLabel(e.V))
			p.MustAddEdge(a, b, e.Label)
			if isNew(p) && support(p) >= minSup {
				patterns = append(patterns, p)
				frontier = append(frontier, p)
			}
		}
	}

	// Grow: extend each frontier pattern by one edge in all ways that keep
	// it a subgraph of some database graph (generate candidates from
	// database labels).
	vlabels := map[graph.Label]bool{}
	elabels := map[graph.Label]bool{}
	for _, g := range db {
		vh, eh := g.LabelHistogram()
		for l := range vh {
			vlabels[l] = true
		}
		for l := range eh {
			elabels[l] = true
		}
	}
	for size := 2; size <= maxEdges; size++ {
		var next []*graph.Graph
		for _, p := range frontier {
			// Forward: new vertex attached to any existing vertex.
			for v := 0; v < p.N(); v++ {
				for vl := range vlabels {
					for el := range elabels {
						q := p.Clone()
						w := q.AddVertex(vl)
						q.MustAddEdge(v, w, el)
						if isNew(q) && support(q) >= minSup {
							patterns = append(patterns, q)
							next = append(next, q)
						}
					}
				}
			}
			// Backward: close a cycle between existing vertices.
			for u := 0; u < p.N(); u++ {
				for v := u + 1; v < p.N(); v++ {
					if p.HasEdge(u, v) {
						continue
					}
					for el := range elabels {
						q := p.Clone()
						q.MustAddEdge(u, v, el)
						if isNew(q) && support(q) >= minSup {
							patterns = append(patterns, q)
							next = append(next, q)
						}
					}
				}
			}
		}
		frontier = next
	}
	return patterns
}

func TestMineMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 15; iter++ {
		db := make([]*graph.Graph, 5)
		for i := range db {
			db[i] = randomGraph(r, 4+r.Intn(3), r.Intn(3), 2)
		}
		const minSup, maxEdges = 2, 4
		want := bruteFrequent(db, minSup, maxEdges)
		got, err := Mine(db, Options{MinSupport: minSup, MaxEdges: maxEdges})
		if err != nil {
			t.Fatalf("Mine: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: mined %d patterns, brute force found %d", iter, len(got), len(want))
		}
		// Every mined pattern must be isomorphic to one brute-force pattern.
		for _, f := range got {
			found := false
			for _, w := range want {
				if subiso.Isomorphic(f.Graph, w) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: mined pattern not in brute-force set:\n%s", iter, f.Graph)
			}
		}
	}
}

func TestMineSupportSetsCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	db := make([]*graph.Graph, 8)
	for i := range db {
		db[i] = randomGraph(r, 5, 2, 2)
	}
	feats, err := Mine(db, Options{MinSupport: 3, MaxEdges: 4})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if len(feats) == 0 {
		t.Fatalf("no features mined")
	}
	for _, f := range feats {
		inSet := map[int]bool{}
		for _, gid := range f.Support {
			inSet[gid] = true
		}
		for gid, g := range db {
			want := subiso.Contains(g, f.Graph)
			if inSet[gid] != want {
				t.Fatalf("feature support wrong for graph %d: got %v want %v\npattern:\n%s", gid, inSet[gid], want, f.Graph)
			}
		}
	}
}

func TestMinePatternsUnique(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := make([]*graph.Graph, 6)
	for i := range db {
		db[i] = randomGraph(r, 5, 3, 2)
	}
	feats, err := Mine(db, Options{MinSupport: 2, MaxEdges: 5})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	for i := range feats {
		for j := i + 1; j < len(feats); j++ {
			if subiso.Isomorphic(feats[i].Graph, feats[j].Graph) {
				t.Fatalf("duplicate patterns %d and %d:\n%s", i, j, feats[i].Graph)
			}
		}
	}
}

func TestMinePatternsConnected(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	db := make([]*graph.Graph, 6)
	for i := range db {
		db[i] = randomGraph(r, 6, 3, 3)
	}
	feats, err := Mine(db, Options{MinSupport: 2, MaxEdges: 5})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	for _, f := range feats {
		if !f.Graph.Connected() {
			t.Fatalf("mined disconnected pattern:\n%s", f.Graph)
		}
	}
}

func TestMineAntiMonotone(t *testing.T) {
	// Support of any pattern must be <= support of each of its sub-edges'
	// patterns; spot-check: larger patterns never have larger support than
	// the global max single-edge support.
	r := rand.New(rand.NewSource(17))
	db := make([]*graph.Graph, 8)
	for i := range db {
		db[i] = randomGraph(r, 5, 2, 2)
	}
	feats, err := Mine(db, Options{MinSupport: 2, MaxEdges: 4})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	best1 := 0
	for _, f := range feats {
		if f.Graph.M() == 1 && len(f.Support) > best1 {
			best1 = len(f.Support)
		}
	}
	for _, f := range feats {
		if f.Graph.M() > 1 && len(f.Support) > best1 {
			t.Fatalf("anti-monotonicity violated: %d-edge pattern support %d > best single-edge %d", f.Graph.M(), len(f.Support), best1)
		}
	}
}

func TestMineOptionsValidation(t *testing.T) {
	if _, err := Mine(nil, Options{MinSupport: 1}); err == nil {
		t.Errorf("empty database must error")
	}
	db := []*graph.Graph{graph.New(1)}
	if _, err := Mine(db, Options{MinSupport: 0}); err == nil {
		t.Errorf("MinSupport 0 must error")
	}
}

func TestMineMaxFeatures(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	db := make([]*graph.Graph, 6)
	for i := range db {
		db[i] = randomGraph(r, 6, 4, 2)
	}
	feats, err := Mine(db, Options{MinSupport: 2, MaxEdges: 5, MaxFeatures: 7})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if len(feats) != 7 {
		t.Errorf("MaxFeatures: got %d features, want 7", len(feats))
	}
}

func TestMinSupportRatio(t *testing.T) {
	if got := MinSupportRatio(0.05, 1000); got != 50 {
		t.Errorf("MinSupportRatio(0.05, 1000) = %d, want 50", got)
	}
	if got := MinSupportRatio(0.0001, 10); got != 1 {
		t.Errorf("tiny ratio must clamp to 1, got %d", got)
	}
}

func TestFreq(t *testing.T) {
	f := &Feature{Support: []int{0, 1, 2}}
	if got := f.Freq(6); got != 0.5 {
		t.Errorf("Freq = %v, want 0.5", got)
	}
}

func TestRightmostPath(t *testing.T) {
	// Path pattern 0-1-2: rmpath should be [edge1, edge0] (deepest first).
	c := dfsCode{
		{from: 0, to: 1, fromLabel: 0, eLabel: 0, toLabel: 0},
		{from: 1, to: 2, fromLabel: 0, eLabel: 0, toLabel: 0},
	}
	rm := c.rightmostPath()
	if len(rm) != 2 || rm[0] != 1 || rm[1] != 0 {
		t.Errorf("rightmostPath = %v, want [1 0]", rm)
	}
	// With a backward edge appended, rmpath unchanged.
	c = append(c, dfs{from: 2, to: 0, fromLabel: 0, eLabel: 0, toLabel: 0})
	rm = c.rightmostPath()
	if len(rm) != 2 || rm[0] != 1 || rm[1] != 0 {
		t.Errorf("rightmostPath with backward edge = %v, want [1 0]", rm)
	}
}

func TestIsMinTriangleCodes(t *testing.T) {
	// For an unlabeled triangle there is exactly one minimal code:
	// (0,1)(1,2)(2,0). Any code starting differently is non-minimal.
	min := dfsCode{
		{from: 0, to: 1},
		{from: 1, to: 2},
		{from: 2, to: 0},
	}
	if !isMin(min) {
		t.Errorf("canonical triangle code reported non-minimal")
	}
	// A path-then-jump variant that is not in DFS form would be invalid;
	// instead test a two-edge path code in both orientations with labels.
	a := dfsCode{{from: 0, to: 1, fromLabel: 0, eLabel: 0, toLabel: 1}, {from: 1, to: 2, fromLabel: 1, eLabel: 0, toLabel: 1}}
	if !isMin(a) {
		t.Errorf("code (0)-(1)-(1) should be minimal")
	}
	b := dfsCode{{from: 0, to: 1, fromLabel: 1, eLabel: 0, toLabel: 1}, {from: 1, to: 2, fromLabel: 1, eLabel: 0, toLabel: 0}}
	if isMin(b) {
		t.Errorf("code starting with larger label should be non-minimal")
	}
}
