// Package gspan implements the gSpan frequent subgraph mining algorithm of
// Yan and Han (ICDM 2002), the miner the paper uses to produce the
// candidate feature set F (Section 6: "The frequent feature set F is mined
// by gSpan with a minimum support 5%").
//
// gSpan enumerates connected subgraph patterns in DFS-code canonical order:
// each pattern is represented by the lexicographically minimal sequence of
// edge tuples (i, j, l_i, l_ij, l_j) produced by a depth-first traversal,
// grown only along the rightmost path, and a pattern is reported exactly
// once thanks to a minimality test on its code.
package gspan

import "repro/internal/graph"

// dfs is one edge of a DFS code: discovery indices (from, to) plus the
// vertex/edge labels. A forward edge has to == from's subtree growth
// (to > from); a backward edge closes a cycle (to < from).
type dfs struct {
	from, to                   int
	fromLabel, eLabel, toLabel graph.Label
}

// dfsCode is a sequence of dfs edges describing a connected pattern.
type dfsCode []dfs

// toGraph materializes the pattern graph described by the code.
func (c dfsCode) toGraph() *graph.Graph {
	g := &graph.Graph{}
	n := 0
	for _, d := range c {
		if d.from >= n {
			n = d.from + 1
		}
		if d.to >= n {
			n = d.to + 1
		}
	}
	labels := make([]graph.Label, n)
	for _, d := range c {
		labels[d.from] = d.fromLabel
		labels[d.to] = d.toLabel
	}
	for _, l := range labels {
		g.AddVertex(l)
	}
	for _, d := range c {
		g.MustAddEdge(d.from, d.to, d.eLabel)
	}
	return g
}

// rightmostPath returns indices into c of the edges on the rightmost path,
// ordered deepest-first (index 0 is the edge reaching the rightmost
// vertex), mirroring the reference gSpan implementation.
func (c dfsCode) rightmostPath() []int {
	var path []int
	oldFrom := -1
	for i := len(c) - 1; i >= 0; i-- {
		d := c[i]
		if d.from < d.to && (len(path) == 0 || oldFrom == d.to) {
			path = append(path, i)
			oldFrom = d.from
		}
	}
	return path
}

// maxVertex returns the number of vertices in the pattern.
func (c dfsCode) maxVertex() int {
	n := 0
	for _, d := range c {
		if d.from >= n {
			n = d.from + 1
		}
		if d.to >= n {
			n = d.to + 1
		}
	}
	return n
}
