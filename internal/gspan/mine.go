package gspan

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/pool"
)

// Feature is a mined frequent connected subgraph together with its support
// in the database. The support set doubles as the inverted list IF used by
// DSPM (Section 5.1.2).
type Feature struct {
	// Graph is the pattern.
	Graph *graph.Graph
	// Support is the set of database graph indices containing the pattern,
	// sorted ascending.
	Support []int
}

// Freq returns the relative frequency |sup(f)| / |DG|.
func (f *Feature) Freq(dbSize int) float64 {
	return float64(len(f.Support)) / float64(dbSize)
}

// Options configures mining.
type Options struct {
	// MinSupport is the absolute minimum support (number of graphs). Use
	// MinSupportRatio to derive it from a fraction τ of the database.
	MinSupport int
	// MaxEdges caps pattern size in edges; 0 means unlimited. The paper's
	// experiments rely on a size-bounded frequent subgraph set comparable
	// to gIndex-style indexing features.
	MaxEdges int
	// MaxFeatures stops mining after this many patterns; 0 means
	// unlimited. Patterns are still each canonical and frequent.
	MaxFeatures int
	// Workers bounds the worker pool mining root-pattern subtrees
	// concurrently; <= 0 means one per CPU. The output — patterns, their
	// order, and their support sets — is identical for every worker
	// count: each frequent single-edge root spans an independent DFS-code
	// subtree, subtrees are mined in isolation, and results are
	// concatenated in the canonical root order. When MaxFeatures > 0
	// mining is sequential regardless of Workers, preserving the global
	// early-exit: a capped run must not pay for subtrees whose output
	// would be truncated away.
	Workers int
}

// MinSupportRatio converts a relative threshold τ ∈ (0,1] into Options'
// absolute MinSupport for a database of n graphs (at least 1).
func MinSupportRatio(tau float64, n int) int {
	s := int(tau * float64(n))
	if s < 1 {
		s = 1
	}
	return s
}

// Mine returns all frequent connected subgraphs of db with at least
// opt.MinSupport supporting graphs, each with its support set.
func Mine(db []*graph.Graph, opt Options) ([]*Feature, error) {
	return MineContext(context.Background(), db, opt)
}

// MineContext is Mine with cancellation: the DFS-code walk checks ctx at
// every pattern node (sequential mining) or subtree boundary (parallel
// mining) and returns (nil, ctx.Err()) once ctx is done, discarding any
// partial pattern set.
func MineContext(ctx context.Context, db []*graph.Graph, opt Options) ([]*Feature, error) {
	if opt.MinSupport < 1 {
		return nil, fmt.Errorf("gspan: MinSupport must be >= 1, got %d", opt.MinSupport)
	}
	if len(db) == 0 {
		return nil, fmt.Errorf("gspan: empty database")
	}
	m := &miner{ctx: ctx, db: makeMineGraphs(db), opt: opt}
	m.run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.out, nil
}

// ---- internal mining structures ----

// arc is a directed view of an undirected edge; each database edge
// contributes two arcs sharing the same id.
type arc struct {
	from, to int
	label    graph.Label
	id       int
}

// mineGraph is a database graph preprocessed for mining.
type mineGraph struct {
	vlabel []graph.Label
	adj    [][]*arc // arcs grouped by source vertex
	nEdges int
}

func makeMineGraphs(db []*graph.Graph) []*mineGraph {
	out := make([]*mineGraph, len(db))
	for gi, g := range db {
		mg := &mineGraph{
			vlabel: make([]graph.Label, g.N()),
			adj:    make([][]*arc, g.N()),
			nEdges: g.M(),
		}
		for v := 0; v < g.N(); v++ {
			mg.vlabel[v] = g.VertexLabel(v)
		}
		for id, e := range g.Edges() {
			a := &arc{from: e.U, to: e.V, label: e.Label, id: id}
			b := &arc{from: e.V, to: e.U, label: e.Label, id: id}
			mg.adj[e.U] = append(mg.adj[e.U], a)
			mg.adj[e.V] = append(mg.adj[e.V], b)
		}
		out[gi] = mg
	}
	return out
}

// pdfs is one embedding step: the arc matched to the last code edge in
// graph gid, chained to the embedding of the code prefix.
type pdfs struct {
	gid  int
	edge *arc
	prev *pdfs
}

// projected is the embedding list of a DFS code across the database.
type projected []*pdfs

// supportSet returns the sorted distinct graph ids in p.
func (p projected) supportSet() []int {
	seen := map[int]bool{}
	var ids []int
	for _, e := range p {
		if !seen[e.gid] {
			seen[e.gid] = true
			ids = append(ids, e.gid)
		}
	}
	sort.Ints(ids)
	return ids
}

// history unrolls a pdfs chain into the ordered edge list of one
// embedding, with fast edge/vertex membership tests.
type history struct {
	edges     []*arc
	hasEdge   map[int]bool
	hasVertex map[int]bool
}

func buildHistory(p *pdfs) *history {
	h := &history{hasEdge: map[int]bool{}, hasVertex: map[int]bool{}}
	var chain []*pdfs
	for cur := p; cur != nil; cur = cur.prev {
		chain = append(chain, cur)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i].edge
		h.edges = append(h.edges, e)
		h.hasEdge[e.id] = true
		h.hasVertex[e.from] = true
		h.hasVertex[e.to] = true
	}
	return h
}

type miner struct {
	ctx  context.Context
	db   []*mineGraph
	opt  Options
	code dfsCode
	out  []*Feature
	done bool // MaxFeatures reached or ctx cancelled
}

// key types for grouping extensions.
type fwdKey struct {
	from    int
	eLabel  graph.Label
	toLabel graph.Label
}
type bwdKey struct {
	to     int
	eLabel graph.Label
}
type rootKey struct {
	fromLabel, eLabel, toLabel graph.Label
}

func (m *miner) run() {
	// Seed: all frequent single-edge patterns, canonical orientation
	// (fromLabel <= toLabel).
	roots := map[rootKey]projected{}
	for gid, g := range m.db {
		for v := range g.adj {
			for _, a := range g.adj[v] {
				if g.vlabel[a.from] > g.vlabel[a.to] {
					continue
				}
				k := rootKey{g.vlabel[a.from], a.label, g.vlabel[a.to]}
				roots[k] = append(roots[k], &pdfs{gid: gid, edge: a})
			}
		}
	}
	keys := make([]rootKey, 0, len(roots))
	for k := range roots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.fromLabel != b.fromLabel {
			return a.fromLabel < b.fromLabel
		}
		if a.eLabel != b.eLabel {
			return a.eLabel < b.eLabel
		}
		return a.toLabel < b.toLabel
	})
	frequent := keys[:0]
	for _, k := range keys {
		if len(roots[k].supportSet()) >= m.opt.MinSupport {
			frequent = append(frequent, k)
		}
	}

	// Sequential in-order walk when there is nothing to parallelize or a
	// MaxFeatures cap is set: the cap's global early-exit (stop as soon
	// as the running output reaches it, skipping every later subtree)
	// only exists on an ordered walk, and losing it would multiply a
	// capped run's work by the number of frequent roots.
	workers := pool.DefaultWorkers(m.opt.Workers)
	if workers <= 1 || m.opt.MaxFeatures > 0 {
		for _, k := range frequent {
			m.code = dfsCode{{from: 0, to: 1, fromLabel: k.fromLabel, eLabel: k.eLabel, toLabel: k.toLabel}}
			m.grow(roots[k])
			m.code = nil
			if m.done {
				return
			}
		}
		return
	}

	// Each frequent root spans an independent DFS-code subtree: mine the
	// subtrees with a bounded worker pool, each in its own miner so the
	// mutable DFS state (code, out) is never shared, then splice the
	// per-root pattern lists back together in canonical root order —
	// the same output the sequential walk produces.
	perRoot := make([][]*Feature, len(frequent))
	pool.For(workers, len(frequent), func(i int) {
		k := frequent[i]
		sub := &miner{
			ctx:  m.ctx,
			db:   m.db,
			opt:  m.opt,
			code: dfsCode{{from: 0, to: 1, fromLabel: k.fromLabel, eLabel: k.eLabel, toLabel: k.toLabel}},
		}
		sub.grow(roots[k])
		perRoot[i] = sub.out
	})
	for _, feats := range perRoot {
		m.out = append(m.out, feats...)
	}
}

// grow reports the current pattern and recursively extends it along the
// rightmost path (the core gSpan step).
func (m *miner) grow(p projected) {
	if m.done {
		return
	}
	if m.ctx != nil && m.ctx.Err() != nil {
		// Cancelled: unwind the whole DFS; MineContext discards out.
		m.done = true
		return
	}
	if !isMin(m.code) {
		return
	}
	sup := p.supportSet()
	m.out = append(m.out, &Feature{Graph: m.code.toGraph(), Support: sup})
	if m.opt.MaxFeatures > 0 && len(m.out) >= m.opt.MaxFeatures {
		m.done = true
		return
	}
	if m.opt.MaxEdges > 0 && len(m.code) >= m.opt.MaxEdges {
		return
	}

	rmpath := m.code.rightmostPath()
	maxtoc := m.code[rmpath[0]].to
	minLabel := m.code[0].fromLabel

	fwdRoot := map[fwdKey]projected{}
	bwdRoot := map[bwdKey]projected{}

	for _, cur := range p {
		g := m.db[cur.gid]
		h := buildHistory(cur)
		// Backward extensions from the rightmost vertex to rightmost-path
		// vertices, root-most first.
		for i := len(rmpath) - 1; i >= 1; i-- {
			if e := getBackward(g, h.edges[rmpath[i]], h.edges[rmpath[0]], h); e != nil {
				k := bwdKey{to: m.code[rmpath[i]].from, eLabel: e.label}
				bwdRoot[k] = append(bwdRoot[k], &pdfs{gid: cur.gid, edge: e, prev: cur})
			}
		}
		// Pure forward from the rightmost vertex.
		for _, e := range getForwardPure(g, h.edges[rmpath[0]], minLabel, h) {
			k := fwdKey{from: maxtoc, eLabel: e.label, toLabel: g.vlabel[e.to]}
			fwdRoot[k] = append(fwdRoot[k], &pdfs{gid: cur.gid, edge: e, prev: cur})
		}
		// Forward from the other rightmost-path vertices.
		for _, i := range rmpath {
			for _, e := range getForwardRmpath(g, h.edges[i], minLabel, h) {
				k := fwdKey{from: m.code[i].from, eLabel: e.label, toLabel: g.vlabel[e.to]}
				fwdRoot[k] = append(fwdRoot[k], &pdfs{gid: cur.gid, edge: e, prev: cur})
			}
		}
	}

	// Recurse: backward children first in (to, eLabel) order, then forward
	// children in (from desc, eLabel, toLabel) order — the DFS-code
	// lexicographic order.
	bks := make([]bwdKey, 0, len(bwdRoot))
	for k := range bwdRoot {
		bks = append(bks, k)
	}
	sort.Slice(bks, func(i, j int) bool {
		if bks[i].to != bks[j].to {
			return bks[i].to < bks[j].to
		}
		return bks[i].eLabel < bks[j].eLabel
	})
	for _, k := range bks {
		p2 := bwdRoot[k]
		if len(p2.supportSet()) < m.opt.MinSupport {
			continue
		}
		m.code = append(m.code, dfs{
			from: maxtoc, to: k.to,
			fromLabel: m.vertexLabelInCode(maxtoc), eLabel: k.eLabel, toLabel: m.vertexLabelInCode(k.to),
		})
		m.grow(p2)
		m.code = m.code[:len(m.code)-1]
		if m.done {
			return
		}
	}

	fks := make([]fwdKey, 0, len(fwdRoot))
	for k := range fwdRoot {
		fks = append(fks, k)
	}
	sort.Slice(fks, func(i, j int) bool {
		if fks[i].from != fks[j].from {
			return fks[i].from > fks[j].from
		}
		if fks[i].eLabel != fks[j].eLabel {
			return fks[i].eLabel < fks[j].eLabel
		}
		return fks[i].toLabel < fks[j].toLabel
	})
	for _, k := range fks {
		p2 := fwdRoot[k]
		if len(p2.supportSet()) < m.opt.MinSupport {
			continue
		}
		m.code = append(m.code, dfs{
			from: k.from, to: maxtoc + 1,
			fromLabel: m.vertexLabelInCode(k.from), eLabel: k.eLabel, toLabel: k.toLabel,
		})
		m.grow(p2)
		m.code = m.code[:len(m.code)-1]
		if m.done {
			return
		}
	}
}

// vertexLabelInCode returns the label of pattern vertex v in the current code.
func (m *miner) vertexLabelInCode(v int) graph.Label {
	for _, d := range m.code {
		if d.from == v {
			return d.fromLabel
		}
		if d.to == v {
			return d.toLabel
		}
	}
	panic(fmt.Sprintf("gspan: vertex %d not in code", v))
}

// getBackward returns the unique admissible backward arc from the
// rightmost vertex (e2.to) to e1.from, or nil. The label condition keeps
// only extensions that cannot produce a smaller code than the current one.
func getBackward(g *mineGraph, e1, e2 *arc, h *history) *arc {
	if e1 == e2 {
		return nil
	}
	for _, e := range g.adj[e2.to] {
		if h.hasEdge[e.id] {
			continue
		}
		if e.to == e1.from &&
			(e1.label < e.label || (e1.label == e.label && g.vlabel[e1.to] <= g.vlabel[e2.to])) {
			return e
		}
	}
	return nil
}

// getForwardPure returns forward arcs growing a new vertex from the
// rightmost vertex e.to.
func getForwardPure(g *mineGraph, e *arc, minLabel graph.Label, h *history) []*arc {
	var out []*arc
	for _, e2 := range g.adj[e.to] {
		if g.vlabel[e2.to] < minLabel || h.hasVertex[e2.to] {
			continue
		}
		out = append(out, e2)
	}
	return out
}

// getForwardRmpath returns forward arcs growing a new vertex from the
// source side of the rightmost-path edge e.
func getForwardRmpath(g *mineGraph, e *arc, minLabel graph.Label, h *history) []*arc {
	var out []*arc
	toLabel := g.vlabel[e.to]
	for _, e2 := range g.adj[e.from] {
		l2 := g.vlabel[e2.to]
		if e.to == e2.to || l2 < minLabel || h.hasVertex[e2.to] {
			continue
		}
		if e.label < e2.label || (e.label == e2.label && toLabel <= l2) {
			out = append(out, e2)
		}
	}
	return out
}
