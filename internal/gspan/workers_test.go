package gspan

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestMineDeterministicAcrossWorkers asserts that the parallel root-subtree
// miner produces exactly the sequential output — same patterns, same
// order, same support sets — at any worker count, with and without a
// MaxFeatures cap.
func TestMineDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := make([]*graph.Graph, 20)
	for i := range db {
		db[i] = randomGraph(r, 8, 4, 3)
	}
	for _, maxFeatures := range []int{0, 7} {
		base := Options{MinSupport: 3, MaxEdges: 5, MaxFeatures: maxFeatures}
		seqOpt := base
		seqOpt.Workers = 1
		want, err := Mine(db, seqOpt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5, 16} {
			parOpt := base
			parOpt.Workers = workers
			got, err := Mine(db, parOpt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("maxFeatures=%d workers=%d: %d patterns, want %d", maxFeatures, workers, len(got), len(want))
			}
			for i := range want {
				if got[i].Graph.String() != want[i].Graph.String() {
					t.Fatalf("maxFeatures=%d workers=%d: pattern %d differs", maxFeatures, workers, i)
				}
				if !reflect.DeepEqual(got[i].Support, want[i].Support) {
					t.Fatalf("maxFeatures=%d workers=%d: support of pattern %d differs", maxFeatures, workers, i)
				}
			}
		}
	}
}
