// Package experiments assembles the full evaluation pipeline of Section 6:
// dataset construction (real-like chemical and synthetic), candidate
// feature mining, ground-truth and benchmark rankings, algorithm adapters
// for DSPM/DSPMap and the seven baselines, and one driver per figure of
// the paper that regenerates the corresponding series.
//
// Scale note: the paper's experiments run 1k–10k graphs with 1,000 queries
// on a 2.66 GHz Windows XP PC over hours. The drivers here default to a
// proportionally scaled-down configuration (Config.Scale) so the full
// suite executes in CI time, and every parameter can be raised to paper
// scale through Config. EXPERIMENTS.md records the shapes obtained.
package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/gspan"
	"repro/internal/mcs"
	"repro/internal/pool"
	"repro/internal/topk"
	"repro/internal/vecspace"
)

// Config scales a dataset build.
type Config struct {
	// DBSize is |DG|; QueryCount the number of query graphs.
	DBSize, QueryCount int
	// Tau is the minimum support ratio for mining; zero means 0.05, the
	// paper's setting.
	Tau float64
	// MaxEdges caps mined pattern size; zero means 7.
	MaxEdges int
	// MaxFeatures caps the candidate set m; zero means unlimited. The
	// full anti-monotone redundancy of the frequent subgraph set is what
	// makes Original/Sample degrade, so capping it would erase the
	// paper's effect.
	MaxFeatures int
	// BaselineCap truncates the candidate set (by support) for the
	// baselines whose cost is quadratic-or-worse in m (SFS, MICI, MCFS's
	// lasso, UDFS, NDFS); zero means 250. This is the harness analog of
	// the paper's observation that those methods stop scaling first.
	BaselineCap int
	// MCSBudget bounds each MCS search (0 = exact). The scaled harness
	// uses a generous budget that is exact for nearly all 10–20 vertex
	// molecule pairs.
	MCSBudget int64
	// Seed drives dataset generation.
	Seed int64
	// Workers bounds the worker pools building the dataset (δ matrix,
	// mining, exact rankings); <= 0 means one per CPU.
	Workers int
	// Synth configures the synthetic generator (used by BuildSynthetic).
	Synth dataset.SynthConfig
	// Chem configures the chemical generator (used by BuildChemical).
	Chem dataset.ChemConfig
}

func (c Config) withDefaults() Config {
	if c.DBSize == 0 {
		c.DBSize = 150
	}
	if c.QueryCount == 0 {
		c.QueryCount = 40
	}
	if c.Tau == 0 {
		c.Tau = 0.05
	}
	if c.MaxEdges == 0 {
		c.MaxEdges = 7
	}
	if c.BaselineCap == 0 {
		c.BaselineCap = 250
	}
	if c.MCSBudget == 0 {
		c.MCSBudget = 3000
	}
	return c
}

// Dataset bundles everything the figure drivers need: graphs, queries,
// mined candidate features with inverted lists, the pairwise dissimilarity
// matrix, and the cached exact and fingerprint-benchmark rankings.
type Dataset struct {
	Name    string
	DB      []*graph.Graph
	Queries []*graph.Graph

	Features []*gspan.Feature
	Index    *vecspace.Index
	Mapper   *vecspace.Mapper

	Metric mcs.Metric
	MCSOpt mcs.Options
	Delta  [][]float64 // pairwise δ over DB

	// BaselineCap is the candidate-truncation size for the
	// quadratic-in-m baselines (see Config.BaselineCap).
	BaselineCap int
	// Workers is the pool bound used for the parallel build stages.
	Workers int

	ExactRankings []topk.Ranking // per query, full exact ranking of DB
	FPRankings    []topk.Ranking // per query, Tanimoto benchmark ranking
}

// BuildChemical constructs the "real dataset" surrogate: chemical-like
// molecules, mined candidates, δ2 matrix and cached rankings.
func BuildChemical(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	chem := cfg.Chem
	chem.N = cfg.DBSize + cfg.QueryCount
	if chem.Seed == 0 {
		chem.Seed = cfg.Seed + 1
	}
	all := dataset.Chemical(chem)
	return assemble("chemical", all[:cfg.DBSize], all[cfg.DBSize:], cfg)
}

// BuildSynthetic constructs the GraphGen-like dataset.
func BuildSynthetic(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	sy := cfg.Synth
	sy.N = cfg.DBSize + cfg.QueryCount
	if sy.Seed == 0 {
		sy.Seed = cfg.Seed + 2
	}
	all := dataset.Synthetic(sy)
	return assemble("synthetic", all[:cfg.DBSize], all[cfg.DBSize:], cfg)
}

func assemble(name string, db, queries []*graph.Graph, cfg Config) (*Dataset, error) {
	ds := &Dataset{
		Name:        name,
		DB:          db,
		Queries:     queries,
		Metric:      mcs.Delta2,
		MCSOpt:      mcs.Options{MaxNodes: cfg.MCSBudget},
		BaselineCap: cfg.BaselineCap,
		Workers:     pool.DefaultWorkers(cfg.Workers),
	}
	minSup := gspan.MinSupportRatio(cfg.Tau, len(db))
	feats, err := gspan.Mine(db, gspan.Options{
		MinSupport:  minSup,
		MaxEdges:    cfg.MaxEdges,
		MaxFeatures: cfg.MaxFeatures,
		Workers:     ds.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: mining %s: %w", name, err)
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("experiments: no frequent subgraphs mined from %s", name)
	}
	ds.Features = feats
	ds.Index = vecspace.BuildIndex(len(db), feats)
	fgs := make([]*graph.Graph, len(feats))
	for i, f := range feats {
		fgs[i] = f.Graph
	}
	ds.Mapper = vecspace.NewMapper(fgs)

	ds.Delta = ds.parallelDelta()
	ds.ExactRankings = ds.parallelExactRankings()
	ds.FPRankings = ds.fingerprintRankings()
	return ds, nil
}

// parallelDelta computes the symmetric δ matrix over DB with the
// dataset's worker pool.
func (ds *Dataset) parallelDelta() [][]float64 {
	return ds.Metric.MatrixWorkers(ds.DB, ds.MCSOpt, ds.Workers)
}

// parallelExactRankings computes the ground-truth ranking per query.
func (ds *Dataset) parallelExactRankings() []topk.Ranking {
	out := make([]topk.Ranking, len(ds.Queries))
	pool.For(ds.Workers, len(ds.Queries), func(qi int) {
		out[qi] = topk.Exact(ds.DB, ds.Queries[qi], ds.Metric, ds.MCSOpt)
	})
	return out
}

func (ds *Dataset) fingerprintRankings() []topk.Ranking {
	dbFP := fingerprint.ComputeAll(ds.DB)
	out := make([]topk.Ranking, len(ds.Queries))
	for qi, q := range ds.Queries {
		out[qi] = topk.Tanimoto(dbFP, fingerprint.Compute(q), fingerprint.Tanimoto)
	}
	return out
}
