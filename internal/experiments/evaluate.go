package experiments

import (
	"time"

	"repro/internal/graph"
	"repro/internal/subiso"
	"repro/internal/topk"
	"repro/internal/vecspace"
)

// Quality holds the three measures of Section 6 averaged over the query
// set, either absolute or relative to the benchmark.
type Quality struct {
	Precision  float64
	KendallTau float64
	RankDist   float64
}

// QueryTiming splits online query cost into the two parts the paper
// analyses in Exp-4: feature matching (VF2 per selected feature) and
// multidimensional search (the linear scan).
type QueryTiming struct {
	Match  time.Duration
	Search time.Duration
}

// Total returns end-to-end query latency.
func (q QueryTiming) Total() time.Duration { return q.Match + q.Search }

// mapQuery maps query graph q onto the selected feature subset.
func mapQuery(ds *Dataset, sel []int, q *graph.Graph) *vecspace.BitVector {
	v := vecspace.NewBitVector(len(sel))
	for pos, r := range sel {
		f := ds.Features[r].Graph
		if f.N() > q.N() || f.M() > q.M() {
			continue
		}
		if subiso.Contains(q, f) {
			v.Set(pos)
		}
	}
	return v
}

// EvaluateSelection runs every query through the mapped space restricted
// to sel and returns the average absolute quality at top-k plus the mean
// per-query timing.
func EvaluateSelection(ds *Dataset, sel []int, k int) (Quality, QueryTiming) {
	dbVecs := SelectionVectors(ds, sel)
	var q Quality
	var timing QueryTiming
	for qi, query := range ds.Queries {
		t0 := time.Now()
		qv := mapQuery(ds, sel, query)
		t1 := time.Now()
		ranking := topk.Mapped(dbVecs, qv)
		t2 := time.Now()
		timing.Match += t1.Sub(t0)
		timing.Search += t2.Sub(t1)

		approx := ranking.TopK(k)
		exact := ds.ExactRankings[qi]
		q.Precision += topk.Precision(approx, exact, k)
		q.KendallTau += topk.KendallTau(approx, exact, k)
		q.RankDist += topk.InverseRankDistance(approx, exact, k)
	}
	nq := float64(len(ds.Queries))
	q.Precision /= nq
	q.KendallTau /= nq
	q.RankDist /= nq
	timing.Match /= time.Duration(len(ds.Queries))
	timing.Search /= time.Duration(len(ds.Queries))
	return q, timing
}

// BenchmarkQuality evaluates the fingerprint/Tanimoto engine against the
// exact rankings — the denominator of the paper's relative measures on
// the real dataset.
func BenchmarkQuality(ds *Dataset, k int) Quality {
	var q Quality
	for qi := range ds.Queries {
		approx := ds.FPRankings[qi].TopK(k)
		exact := ds.ExactRankings[qi]
		q.Precision += topk.Precision(approx, exact, k)
		q.KendallTau += topk.KendallTau(approx, exact, k)
		q.RankDist += topk.InverseRankDistance(approx, exact, k)
	}
	nq := float64(len(ds.Queries))
	q.Precision /= nq
	q.KendallTau /= nq
	q.RankDist /= nq
	return q
}

// RelativeTo divides q by the benchmark component-wise (the paper reports
// "the ratio of the value achieved by each algorithm to the value
// achieved by the fingerprint algorithm"). Zero benchmark components keep
// the absolute value.
func (q Quality) RelativeTo(bench Quality) Quality {
	div := func(a, b float64) float64 {
		if b == 0 {
			return a
		}
		return a / b
	}
	return Quality{
		Precision:  div(q.Precision, bench.Precision),
		KendallTau: div(q.KendallTau, bench.KendallTau),
		RankDist:   div(q.RankDist, bench.RankDist),
	}
}

// ExactQueryTiming measures the exact top-k engine (MCS per database
// graph) averaged over at most maxQueries queries — the "Exact" series of
// Figs. 7(b) and 9(b). The exact engine is orders of magnitude slower, so
// the sample is kept small.
func ExactQueryTiming(ds *Dataset, maxQueries int) time.Duration {
	if maxQueries > len(ds.Queries) {
		maxQueries = len(ds.Queries)
	}
	if maxQueries == 0 {
		return 0
	}
	start := time.Now()
	for qi := 0; qi < maxQueries; qi++ {
		topk.Exact(ds.DB, ds.Queries[qi], ds.Metric, ds.MCSOpt)
	}
	return time.Since(start) / time.Duration(maxQueries)
}
