package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// tiny returns a fast-to-build harness configuration for integration
// tests. Everything downstream (figures, benches) runs on this shape.
// The feature set must keep the anti-monotone redundancy of real frequent
// subgraph sets (low tau, pattern depth) or the Original/Sample baselines
// become artificially strong and the paper's ordering disappears.
func tiny() Config {
	return Config{
		DBSize:      60,
		QueryCount:  12,
		Tau:         0.05,
		MaxEdges:    6,
		MCSBudget:   1500,
		BaselineCap: 150,
		Seed:        1,
	}
}

var chemCache *Dataset

func chemDS(t *testing.T) *Dataset {
	t.Helper()
	if chemCache != nil {
		return chemCache
	}
	ds, err := BuildChemical(tiny())
	if err != nil {
		t.Fatalf("BuildChemical: %v", err)
	}
	chemCache = ds
	return ds
}

func TestBuildChemicalShape(t *testing.T) {
	ds := chemDS(t)
	if len(ds.DB) != 60 || len(ds.Queries) != 12 {
		t.Fatalf("dataset shape wrong: %d db, %d queries", len(ds.DB), len(ds.Queries))
	}
	if ds.Index.P == 0 {
		t.Fatalf("no candidate features mined")
	}
	if len(ds.Delta) != 60 {
		t.Fatalf("delta matrix wrong size")
	}
	for i := range ds.Delta {
		if ds.Delta[i][i] != 0 {
			t.Errorf("delta diagonal not zero at %d", i)
		}
		for j := range ds.Delta {
			if ds.Delta[i][j] != ds.Delta[j][i] {
				t.Fatalf("delta not symmetric at %d,%d", i, j)
			}
			if ds.Delta[i][j] < 0 || ds.Delta[i][j] > 1 {
				t.Fatalf("delta out of range at %d,%d: %v", i, j, ds.Delta[i][j])
			}
		}
	}
	if len(ds.ExactRankings) != 12 || len(ds.FPRankings) != 12 {
		t.Fatalf("rankings not cached for all queries")
	}
	for qi, r := range ds.ExactRankings {
		if len(r) != 60 {
			t.Fatalf("exact ranking %d has %d entries", qi, len(r))
		}
	}
}

func TestBuildSyntheticShape(t *testing.T) {
	cfg := tiny()
	cfg.DBSize = 30
	cfg.QueryCount = 5
	ds, err := BuildSynthetic(cfg)
	if err != nil {
		t.Fatalf("BuildSynthetic: %v", err)
	}
	if len(ds.DB) != 30 || ds.Index.P == 0 {
		t.Fatalf("synthetic dataset malformed")
	}
}

func TestEvaluateSelectionBounds(t *testing.T) {
	ds := chemDS(t)
	algos := StandardAlgorithms(1)
	// DSPM only (algos[0]) for speed.
	sel, dur, err := algos[0].Run(ds, 10)
	if err != nil {
		t.Fatalf("DSPM run: %v", err)
	}
	if dur <= 0 {
		t.Errorf("indexing time not measured")
	}
	q, timing := EvaluateSelection(ds, sel, 4)
	if q.Precision < 0 || q.Precision > 1 {
		t.Errorf("precision out of range: %v", q.Precision)
	}
	if q.KendallTau < 0 {
		t.Errorf("negative tau: %v", q.KendallTau)
	}
	if q.RankDist < 0 {
		t.Errorf("negative rank distance: %v", q.RankDist)
	}
	if timing.Total() <= 0 {
		t.Errorf("query timing not measured")
	}
}

// binaryStress is the evaluation-space stress Σ_{i<j} (d(yi,yj) − δij)²
// over the binary vectors restricted to sel — the distance-preservation
// quantity DSPM exists to minimize.
func binaryStress(ds *Dataset, sel []int) float64 {
	vecs := SelectionVectors(ds, sel)
	e := 0.0
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			d := vecs[i].Distance(vecs[j]) - ds.Delta[i][j]
			e += d * d
		}
	}
	return e
}

func TestDSPMBeatsBaselinesOnDistancePreservation(t *testing.T) {
	// The paper's core claim (Fig. 1, Exp-1): DSPM's dimensions preserve
	// the graph dissimilarity better than both random sampling and the
	// full frequent-subgraph space. Binary stress is the direct measure;
	// top-k precision is its noisy downstream at this scale and is
	// exercised in the figure benches at larger scale.
	ds := chemDS(t)
	p := ds.Index.P / 4
	dspmSel, _, err := DSPMAlgorithm(core.Config{MaxIter: 60}).Run(ds, p)
	if err != nil {
		t.Fatalf("DSPM: %v", err)
	}
	sd := binaryStress(ds, dspmSel)
	var sampleSum float64
	const trials = 3
	for s := int64(0); s < trials; s++ {
		sampleSel, _, err := StandardAlgorithms(3 + s)[2].Run(ds, p)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		sampleSum += binaryStress(ds, sampleSel)
	}
	all := make([]int, ds.Index.P)
	for i := range all {
		all[i] = i
	}
	so := binaryStress(ds, all)
	if sd >= sampleSum/trials {
		t.Errorf("DSPM stress %v not below Sample average %v", sd, sampleSum/trials)
	}
	if sd >= so {
		t.Errorf("DSPM stress %v not below Original %v", sd, so)
	}
}

func TestBenchmarkQualityAndRelative(t *testing.T) {
	ds := chemDS(t)
	bench := BenchmarkQuality(ds, 4)
	if bench.Precision < 0 || bench.Precision > 1 {
		t.Fatalf("benchmark precision out of range: %v", bench.Precision)
	}
	q := Quality{Precision: 0.5, KendallTau: 0.2, RankDist: 1}
	rel := q.RelativeTo(Quality{Precision: 0.5, KendallTau: 0.4, RankDist: 0})
	if rel.Precision != 1 || rel.KendallTau != 0.5 || rel.RankDist != 1 {
		t.Errorf("RelativeTo wrong: %+v", rel)
	}
}

func TestHistogramAndEMD(t *testing.T) {
	h := NewHistogram([]float64{0.05, 0.05, 0.95, 1.0}, 10)
	if h.Bins[0] != 0.5 || h.Bins[9] != 0.5 {
		t.Errorf("histogram binning wrong: %v", h.Bins)
	}
	if NewHistogram(nil, 4).Bins[0] != 0 {
		t.Errorf("empty histogram should be zero")
	}
	same := NewHistogram([]float64{0.1, 0.9}, 10)
	if same.EMD(same) != 0 {
		t.Errorf("EMD to self must be 0")
	}
	a := NewHistogram([]float64{0.0}, 10)
	b := NewHistogram([]float64{0.99}, 10)
	if a.EMD(b) <= 0 {
		t.Errorf("EMD between disjoint masses must be positive")
	}
}

func TestFig1Shapes(t *testing.T) {
	ds := chemDS(t)
	res, err := Fig1(ds, ds.Index.P/4, 10)
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	for _, h := range []Histogram{res.DeltaDB, res.DSPMDB, res.OriginalDB, res.DeltaQ, res.DSPMQ, res.OriginalQ} {
		sum := 0.0
		for _, b := range h.Bins {
			sum += b
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("histogram mass %v, want 1", sum)
		}
	}
	// The paper's Fig 1 claim: DSPM's distance distribution tracks delta
	// better than Original's.
	if res.DSPMDB.EMD(res.DeltaDB) > res.OriginalDB.EMD(res.DeltaDB) {
		t.Errorf("DSPM EMD %v worse than Original %v",
			res.DSPMDB.EMD(res.DeltaDB), res.OriginalDB.EMD(res.DeltaDB))
	}
}

func TestFig2CorrelationLower(t *testing.T) {
	ds := chemDS(t)
	pts, err := Fig2(ds, []int{8, 16}, 1)
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		if pt.DSPMScore < 0 || pt.SampleScore < 0 {
			t.Errorf("negative correlation score")
		}
	}
}

func TestFigQualityAndWrite(t *testing.T) {
	ds := chemDS(t)
	// Subset of fast algorithms to keep the test quick.
	algos := []Algorithm{DSPMAlgorithm(core.Config{}), StandardAlgorithms(1)[2]}
	ks := []int{2, 4}
	series := FigQuality(ds, algos, 10, ks, true)
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if s.Err != nil {
			t.Fatalf("%s failed: %v", s.Name, s.Err)
		}
		for _, k := range ks {
			if _, ok := s.ByK[k]; !ok {
				t.Fatalf("%s missing k=%d", s.Name, k)
			}
		}
	}
	RelativeToBest(series, ks)
	for _, s := range series {
		for _, k := range ks {
			if s.ByK[k].Precision > 1.0001 {
				t.Errorf("relative-to-best precision above 1: %v", s.ByK[k].Precision)
			}
		}
	}
	var buf bytes.Buffer
	WriteSeries(&buf, "test", series, ks)
	if buf.Len() == 0 {
		t.Errorf("WriteSeries produced nothing")
	}
}

func TestFig7Buckets(t *testing.T) {
	ds := chemDS(t)
	res, err := Fig7(ds, 10, []int{0, 12, 22}, 1)
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if len(res.Buckets) != 2 {
		t.Fatalf("bucket count wrong: %v", res.Buckets)
	}
}

func TestFig8Points(t *testing.T) {
	ds := chemDS(t)
	pts, err := Fig8(ds, 10, 4, []int{10, 20}, 1)
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		if pt.DSPMapPrec < 0 || pt.DSPMapPrec > 1 {
			t.Errorf("DSPMap precision out of range: %v", pt.DSPMapPrec)
		}
		if pt.DSPMapIndexing <= 0 || pt.DSPMIndexing <= 0 {
			t.Errorf("indexing times not measured")
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	cfg := tiny()
	cfg.DBSize = 0 // let Fig9 set sizes
	pts, err := Fig9([]int{30}, cfg, nil, 10, 3, 1)
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(pts) != 1 || pts[0].N != 30 {
		t.Fatalf("Fig9 points wrong: %+v", pts)
	}
	if _, ok := pts[0].Precision["DSPMap"]; !ok {
		t.Errorf("DSPMap missing from Fig9 results")
	}
	if pts[0].ExactQuery <= 0 {
		t.Errorf("exact query time not measured")
	}
}

func TestExactQueryTimingZeroQueries(t *testing.T) {
	ds := chemDS(t)
	if ExactQueryTiming(ds, 0) != 0 {
		t.Errorf("zero queries must return 0")
	}
}
